// Package repro_bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Accuracy series are attached as custom
// benchmark metrics (acc@k), so `go test -bench=. -benchmem` both measures
// the runtime feasibility numbers of §5.2.2 and reproduces the accuracy
// shapes of Figs. 11–13, the distribution comparison of Fig. 14, the
// annotator coverage of §4.5.3, and the ablations called out in DESIGN.md.
//
// The paper-scale corpus (7,500 bundles) is generated once and shared.
// Individual cross-validation runs take seconds to tens of seconds each —
// they are full 5-fold CVs over 6,782 bundles, exactly the experiment the
// paper ran.
package repro_bench

import (
	"sync"
	"testing"

	"repro/internal/annotate"
	"repro/internal/bundle"
	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/nhtsa"
	"repro/internal/qatk"
	"repro/internal/taxext"
	"repro/internal/textproc"
)

var (
	corpusOnce sync.Once
	corpus     *datagen.Corpus
)

func paperCorpus(b *testing.B) *datagen.Corpus {
	b.Helper()
	corpusOnce.Do(func() {
		c, err := datagen.Generate(datagen.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		corpus = c
	})
	return corpus
}

// reportAccuracy attaches the accuracy@k curve as benchmark metrics.
func reportAccuracy(b *testing.B, r *eval.Result) {
	for _, k := range eval.DefaultKs {
		b.ReportMetric(r.Accuracy[k], "acc@"+itoa(k))
	}
	b.ReportMetric(r.SecPerBundle*1000, "ms/bundle")
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// runVariant cross-validates one variant b.N times (the work is
// deterministic; b.N is 1 for these macro benchmarks in practice).
func runVariant(b *testing.B, v eval.Variant) {
	c := paperCorpus(b)
	e := eval.New(c.Taxonomy, c.Bundles)
	b.ResetTimer()
	var r *eval.Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = e.Run(v); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportAccuracy(b, r)
}

// --- Figure 11: experiment 1, all reports --------------------------------

func BenchmarkFig11_BagOfWordsJaccard(b *testing.B) {
	runVariant(b, eval.Variant{Name: "bow-j", Model: kb.BagOfWords, Sim: core.Jaccard{}})
}

func BenchmarkFig11_BagOfWordsOverlap(b *testing.B) {
	runVariant(b, eval.Variant{Name: "bow-o", Model: kb.BagOfWords, Sim: core.Overlap{}})
}

func BenchmarkFig11_BagOfConceptsJaccard(b *testing.B) {
	runVariant(b, eval.Variant{Name: "boc-j", Model: kb.BagOfConcepts, Sim: core.Jaccard{}})
}

func BenchmarkFig11_BagOfConceptsOverlap(b *testing.B) {
	runVariant(b, eval.Variant{Name: "boc-o", Model: kb.BagOfConcepts, Sim: core.Overlap{}})
}

func BenchmarkFig11_CodeFrequencyBaseline(b *testing.B) {
	c := paperCorpus(b)
	e := eval.New(c.Taxonomy, c.Bundles)
	b.ResetTimer()
	var r *eval.Result
	for i := 0; i < b.N; i++ {
		r = e.RunFrequencyBaseline()
	}
	b.StopTimer()
	reportAccuracy(b, r)
}

func BenchmarkFig11_CandidateSetBaseline(b *testing.B) {
	c := paperCorpus(b)
	e := eval.New(c.Taxonomy, c.Bundles)
	b.ResetTimer()
	var r *eval.Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = e.RunCandidateSetBaseline(kb.BagOfWords, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportAccuracy(b, r)
}

// --- Figure 12: mechanic reports only ------------------------------------

func BenchmarkFig12_MechanicOnly_BagOfWordsJaccard(b *testing.B) {
	runVariant(b, eval.Variant{Name: "mech-bow-j", Model: kb.BagOfWords, Sim: core.Jaccard{},
		TestSources: []bundle.Source{bundle.SourceMechanic}})
}

func BenchmarkFig12_MechanicOnly_BagOfConceptsJaccard(b *testing.B) {
	runVariant(b, eval.Variant{Name: "mech-boc-j", Model: kb.BagOfConcepts, Sim: core.Jaccard{},
		TestSources: []bundle.Source{bundle.SourceMechanic}})
}

// --- Figure 13: supplier reports only ------------------------------------

func BenchmarkFig13_SupplierOnly_BagOfWordsJaccard(b *testing.B) {
	runVariant(b, eval.Variant{Name: "sup-bow-j", Model: kb.BagOfWords, Sim: core.Jaccard{},
		TestSources: []bundle.Source{bundle.SourceSupplier}})
}

func BenchmarkFig13_SupplierOnly_BagOfConceptsJaccard(b *testing.B) {
	runVariant(b, eval.Variant{Name: "sup-boc-j", Model: kb.BagOfConcepts, Sim: core.Jaccard{},
		TestSources: []bundle.Source{bundle.SourceSupplier}})
}

// --- Figure 14: cross-source error distribution --------------------------

func BenchmarkFig14_DistributionComparison(b *testing.B) {
	c := paperCorpus(b)
	filtered := bundle.FilterMultiOccurrence(c.Bundles)
	tk := qatk.New(c.Taxonomy, qatk.WithModel(kb.BagOfConcepts))
	store, err := tk.Train(filtered)
	if err != nil {
		b.Fatal(err)
	}
	// Fig. 14 shows the comparison for one component class: restrict both
	// sides to the part with the most data, like cmd/experiments -fig 14.
	counts := map[string]int{}
	part := ""
	for _, bd := range filtered {
		counts[bd.PartID]++
		if part == "" || counts[bd.PartID] > counts[part] {
			part = bd.PartID
		}
	}
	var partBundles []*bundle.Bundle
	for _, bd := range filtered {
		if bd.PartID == part {
			partBundles = append(partBundles, bd)
		}
	}
	all := nhtsa.Generate(nhtsa.DefaultGenerateConfig(), c)
	var complaints []nhtsa.Complaint
	for _, cm := range all {
		if cm.Component == part {
			complaints = append(complaints, cm)
		}
	}
	clf := compare.NewClassifier(store, c.Taxonomy, kb.BagOfConcepts, core.Jaccard{})
	b.ResetTimer()
	var public *compare.Distribution
	for i := 0; i < b.N; i++ {
		public, err = clf.ComplaintDistribution(complaints)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	internal := compare.InternalDistribution(partBundles)
	b.ReportMetric(float64(compare.HeadOverlap(internal, public, 10)), "head-overlap@10")
	b.ReportMetric(internal.Top(1)[0].Fraction, "internal-top1-share")
	b.ReportMetric(public.Top(1)[0].Fraction, "public-top1-share")
}

// --- §5.2.2 feasibility: per-bundle classification cost ------------------

func BenchmarkFeasibility_BagOfWords(b *testing.B) {
	benchFeasibility(b, kb.BagOfWords, false)
}

func BenchmarkFeasibility_BagOfWordsStopwordRemoval(b *testing.B) {
	benchFeasibility(b, kb.BagOfWords, true)
}

func BenchmarkFeasibility_BagOfConcepts(b *testing.B) {
	benchFeasibility(b, kb.BagOfConcepts, false)
}

// benchFeasibility measures the steady-state cost of classifying one data
// bundle against a fully built knowledge base — the §5.2.2 numbers.
func benchFeasibility(b *testing.B, model kb.FeatureModel, stopwords bool) {
	c := paperCorpus(b)
	filtered := bundle.FilterMultiOccurrence(c.Bundles)
	opts := []qatk.Option{qatk.WithModel(model)}
	if stopwords {
		opts = append(opts, qatk.WithStopwordRemoval())
	}
	tk := qatk.New(c.Taxonomy, opts...)
	store, err := tk.Train(filtered)
	if err != nil {
		b.Fatal(err)
	}
	clf := tk.Classifier(store)
	// Pre-extract features so the loop measures pure classification.
	feats := make([][]string, len(filtered))
	for i, bd := range filtered {
		f, err := tk.Features(bd, bundle.TestSources())
		if err != nil {
			b.Fatal(err)
		}
		feats[i] = f
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd := filtered[i%len(filtered)]
		clf.Recommend(bd.PartID, feats[i%len(feats)])
	}
}

// --- §4.5.3 annotator coverage + throughput ------------------------------

func BenchmarkAnnotatorCoverage(b *testing.B) {
	c := paperCorpus(b)
	legacy := annotate.NewLegacyAnnotator(c.Taxonomy)
	modern := annotate.NewConceptAnnotator(c.Taxonomy)
	b.ResetTimer()
	var legacyZero, modernZero int
	for i := 0; i < b.N; i++ {
		legacyZero, modernZero = 0, 0
		for _, bd := range c.Bundles {
			cl := bd.CAS()
			if err := (textproc.Tokenizer{}).Process(cl); err != nil {
				b.Fatal(err)
			}
			if err := legacy.Process(cl); err != nil {
				b.Fatal(err)
			}
			if len(cl.Select(annotate.TypeConcept)) == 0 {
				legacyZero++
			}
			cm := bd.CAS()
			if err := (textproc.Tokenizer{}).Process(cm); err != nil {
				b.Fatal(err)
			}
			if err := modern.Process(cm); err != nil {
				b.Fatal(err)
			}
			if len(cm.Select(annotate.TypeConcept)) == 0 {
				modernZero++
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(legacyZero), "legacy-zero-bundles")
	b.ReportMetric(float64(modernZero), "trie-zero-bundles")
}

// --- DESIGN.md §5 ablations ----------------------------------------------

// BenchmarkAblationMajorityVote contrasts standard majority-vote kNN with
// the paper's ranked-list adaptation (§4.3, Fig. 6/7): accuracy@1 of the
// vote winner for k=6 and k=15 vs the ranked list's top suggestion.
func BenchmarkAblationMajorityVote(b *testing.B) {
	c := paperCorpus(b)
	filtered := bundle.FilterMultiOccurrence(c.Bundles)
	tk := qatk.New(c.Taxonomy, qatk.WithModel(kb.BagOfWords))
	n := len(filtered) * 4 / 5
	store, err := tk.Train(filtered[:n])
	if err != nil {
		b.Fatal(err)
	}
	clf := tk.Classifier(store)
	test := filtered[n:]
	feats := make([][]string, len(test))
	for i, bd := range test {
		f, err := tk.Features(bd, bundle.TestSources())
		if err != nil {
			b.Fatal(err)
		}
		feats[i] = f
	}
	b.ResetTimer()
	var vote6, vote15, ranked, flips int
	for it := 0; it < b.N; it++ {
		vote6, vote15, ranked, flips = 0, 0, 0, 0
		for i, bd := range test {
			v6 := clf.MajorityVote(bd.PartID, feats[i], 6)
			v15 := clf.MajorityVote(bd.PartID, feats[i], 15)
			if v6 == bd.ErrorCode {
				vote6++
			}
			if v15 == bd.ErrorCode {
				vote15++
			}
			if v6 != v15 {
				flips++
			}
			list := clf.Recommend(bd.PartID, feats[i])
			if core.Rank(list, bd.ErrorCode) == 1 {
				ranked++
			}
		}
	}
	b.StopTimer()
	total := float64(len(test))
	b.ReportMetric(float64(vote6)/total, "vote6-acc@1")
	b.ReportMetric(float64(vote15)/total, "vote15-acc@1")
	b.ReportMetric(float64(ranked)/total, "ranked-acc@1")
	b.ReportMetric(float64(flips)/total, "k-sensitivity")
}

// BenchmarkAblationCandidateFiltering measures what the §4.3 candidate
// selection saves over scoring the full knowledge base.
func BenchmarkAblationCandidateFiltering(b *testing.B) {
	c := paperCorpus(b)
	filtered := bundle.FilterMultiOccurrence(c.Bundles)
	tk := qatk.New(c.Taxonomy, qatk.WithModel(kb.BagOfConcepts))
	store, err := tk.Train(filtered)
	if err != nil {
		b.Fatal(err)
	}
	var filteredCands, allNodes int64
	for i, bd := range filtered {
		if i >= 500 {
			break
		}
		f, err := tk.Features(bd, bundle.TestSources())
		if err != nil {
			b.Fatal(err)
		}
		filteredCands += int64(len(store.Candidates(bd.PartID, f)))
		allNodes += int64(store.NodeCount())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd := filtered[i%500]
		f, _ := tk.Features(bd, bundle.TestSources())
		store.Candidates(bd.PartID, f)
	}
	b.StopTimer()
	b.ReportMetric(float64(filteredCands)/500, "candidates/query")
	b.ReportMetric(float64(allNodes)/500, "full-scan-nodes/query")
}

// BenchmarkAblationNodeDedup quantifies the configuration-instance
// abstraction of §4.3 (kNN-Model style): knowledge-base size with and
// without deduplication.
func BenchmarkAblationNodeDedup(b *testing.B) {
	c := paperCorpus(b)
	filtered := bundle.FilterMultiOccurrence(c.Bundles)
	tk := qatk.New(c.Taxonomy, qatk.WithModel(kb.BagOfConcepts))
	b.ResetTimer()
	var store *kb.Memory
	for i := 0; i < b.N; i++ {
		var err error
		store, err = tk.Train(filtered)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(store.NodeCount()), "nodes-dedup")
	b.ReportMetric(float64(store.BundleCount()), "nodes-raw")
	b.ReportMetric(float64(store.NodeCount())/float64(store.BundleCount()), "dedup-ratio")
}

// BenchmarkAblationTaxonomyAdaptation runs the §6 extension: per-fold
// taxonomy mining recovers most of the bag-of-words advantage for the
// industrially feasible bag-of-concepts model.
func BenchmarkAblationTaxonomyAdaptation(b *testing.B) {
	c := paperCorpus(b)
	b.ResetTimer()
	var acc eval.AccuracyAtK
	var added int
	for i := 0; i < b.N; i++ {
		var err error
		acc, added, err = taxext.Evaluate(c.Taxonomy, c.Bundles,
			taxext.DefaultConfig(), core.Jaccard{}, 5, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(acc[1], "adapted-acc@1")
	b.ReportMetric(acc[10], "adapted-acc@10")
	b.ReportMetric(float64(added), "mined-concepts")
}

// --- §3.2 corpus statistics ----------------------------------------------

func BenchmarkCorpusGeneration(b *testing.B) {
	var st datagen.CorpusStats
	for i := 0; i < b.N; i++ {
		c, err := datagen.Generate(datagen.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		st = c.Stats()
	}
	b.ReportMetric(float64(st.Bundles), "bundles")
	b.ReportMetric(float64(st.ErrorCodes), "codes")
	b.ReportMetric(float64(st.SingletonCodes), "singletons")
	b.ReportMetric(st.AvgWordsPerText, "words/text")
	b.ReportMetric(st.AvgConceptsPerText, "concepts/text")
}
