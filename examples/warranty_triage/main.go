// Warranty triage: the motivating workload of the paper (§1.1, §3.1). A
// synthetic warranty corpus stands in for the OEM's evaluation database;
// the toolkit trains on the historical bundles and then triages a batch of
// incoming damaged-part bundles, showing for each the top-10 error-code
// recommendations a quality expert would see in QUEST — and how often the
// eventually-correct code is already in that list.
package main

import (
	"fmt"
	"log"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/qatk"
)

func main() {
	cfg := datagen.SmallConfig()
	cfg.Seed = 11
	corpus, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	all := bundle.FilterMultiOccurrence(corpus.Bundles)

	// The last 40 bundles play the incoming queue; the rest is history.
	history, incoming := all[:len(all)-40], all[len(all)-40:]

	// The industrial configuration: domain-specific bag-of-concepts with
	// Jaccard similarity (§5.2.2 explains why bag-of-words, though more
	// accurate offline, is not the feasible production choice).
	tk := qatk.New(corpus.Taxonomy,
		qatk.WithModel(kb.BagOfConcepts),
		qatk.WithSimilarity(core.Jaccard{}))
	store, err := tk.Train(history)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d bundles -> %d knowledge nodes\n\n", store.BundleCount(), store.NodeCount())

	top10 := 0
	for i, b := range incoming {
		list, err := tk.Recommend(store, b)
		if err != nil {
			log.Fatal(err)
		}
		rank := core.Rank(list, b.ErrorCode)
		if rank > 0 && rank <= 10 {
			top10++
		}
		if i < 5 { // print the first few triage screens
			fmt.Printf("bundle %s (part %s) — mechanic says: %.60q\n",
				b.RefNo, b.PartID, b.ReportText(bundle.SourceMechanic))
			limit := 10
			if len(list) < limit {
				limit = len(list)
			}
			for j := 0; j < limit; j++ {
				marker := ""
				if list[j].Code == b.ErrorCode {
					marker = "  <- code the expert finally assigned"
				}
				fmt.Printf("  %2d. %-7s %.3f%s\n", j+1, list[j].Code, list[j].Score, marker)
			}
			fmt.Println()
		}
	}
	fmt.Printf("correct code within the top-10 list for %d of %d incoming bundles (%.0f%%)\n",
		top10, len(incoming), 100*float64(top10)/float64(len(incoming)))
}
