// Market comparison: the §5.4 use-case extension. The internal knowledge
// base classifies complaints from a public source (an ODI-style consumer
// complaints corpus covering several makes) into the OEM's own error-code
// schema, and the error distributions of both sources are contrasted —
// the business-intelligence view behind Fig. 14.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bundle"
	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/nhtsa"
	"repro/internal/qatk"
)

func main() {
	cfg := datagen.SmallConfig()
	cfg.Seed = 21
	corpus, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	internalBundles := bundle.FilterMultiOccurrence(corpus.Bundles)

	// Bag-of-concepts is the right model across sources: it is "in
	// principle independent of the document language or other text
	// features" (§5.4), and ODI complaints are a very different text type.
	tk := qatk.New(corpus.Taxonomy, qatk.WithModel(kb.BagOfConcepts))
	store, err := tk.Train(internalBundles)
	if err != nil {
		log.Fatal(err)
	}

	complaints := nhtsa.Generate(nhtsa.GenerateConfig{Seed: 22, Complaints: 600, ZipfS: 1.1}, corpus)
	fmt.Printf("classifying %d public complaints covering makes %v\n\n",
		len(complaints), nhtsa.MakesIn(complaints))

	clf := compare.NewClassifier(store, corpus.Taxonomy, kb.BagOfConcepts, core.Jaccard{})
	public, err := clf.ComplaintDistribution(complaints)
	if err != nil {
		log.Fatal(err)
	}
	internal := compare.InternalDistribution(internalBundles)

	compare.PrintSideBySide(os.Stdout, internal, public, 5)
	fmt.Printf("\ncodes shared between the two top-10 lists: %d\n", compare.HeadOverlap(internal, public, 10))
	fmt.Println("\ninterpretation: codes over-represented in the public source relative to")
	fmt.Println("the internal data hint at brand-specific weaknesses or shared-supplier")
	fmt.Println("issues worth investigating (§5.4).")
}
