// Taxonomy tools: working with the domain-specific resource (§4.5.3) —
// saving/loading the custom XML format, editing concepts, expanding
// synonyms, and measuring the coverage difference between the legacy
// annotator and the optimized trie annotator on messy multilingual text.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/annotate"
	"repro/internal/bundle"
	"repro/internal/cas"
	"repro/internal/datagen"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
)

func main() {
	cfg := datagen.SmallConfig()
	corpus, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tax := corpus.Taxonomy

	// --- XML round trip --------------------------------------------------
	dir, err := os.MkdirTemp("", "taxonomy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "taxonomy.xml")
	if err := tax.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	loaded, err := taxonomy.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	st := loaded.ComputeStats()
	fmt.Printf("taxonomy: %d concepts (%d components, %d symptoms), %d multiword terms\n",
		st.Concepts, st.ByKind[taxonomy.KindComponent], st.ByKind[taxonomy.KindSymptom], st.Multiwords)

	// --- editor operations ------------------------------------------------
	first := loaded.Concepts()[0]
	if err := loaded.AddSynonym(first.ID, "en", "wobbly bracket"); err != nil {
		log.Fatal(err)
	}
	if err := loaded.Rename(first.ID, first.Path+"/Renamed"); err != nil {
		log.Fatal(err)
	}
	added := loaded.ExpandSynonyms()
	fmt.Printf("editor: added 1 synonym + 1 rename; synonym expansion generated %d variants\n\n", added)

	// --- annotator ablation: legacy vs trie -------------------------------
	legacy := annotate.NewLegacyAnnotator(tax)
	modern := annotate.NewConceptAnnotator(tax)
	legacyZero, modernZero, legacyMentions, modernMentions := 0, 0, 0, 0
	for _, b := range corpus.Bundles {
		lc, mc := analyze(b, legacy), analyze(b, modern)
		if lc == 0 {
			legacyZero++
		}
		if mc == 0 {
			modernZero++
		}
		legacyMentions += lc
		modernMentions += mc
	}
	n := len(corpus.Bundles)
	fmt.Println("annotator coverage on the messy corpus (cf. §4.5.3):")
	fmt.Printf("  legacy (single-word, case-sensitive, German-only): %4d mentions, %d/%d bundles with none\n",
		legacyMentions, legacyZero, n)
	fmt.Printf("  trie   (multiword, multilingual, synonym-rich):    %4d mentions, %d/%d bundles with none\n",
		modernMentions, modernZero, n)
}

// analyze runs tokenizer + the given annotator and counts concept mentions.
func analyze(b *bundle.Bundle, engine interface{ Process(*cas.CAS) error }) int {
	c := b.CAS()
	if err := (textproc.Tokenizer{}).Process(c); err != nil {
		log.Fatal(err)
	}
	if err := engine.Process(c); err != nil {
		log.Fatal(err)
	}
	return len(c.Select(annotate.TypeConcept))
}
