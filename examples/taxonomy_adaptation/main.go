// Taxonomy adaptation: the paper's own roadmap, executed (§5.2.2:
// "Adapting the taxonomy thus suggests itself as a next step"; §6:
// "enhancing the domain-specific taxonomy"). The example mines the
// classified warranty bundles for domain terms the legacy taxonomy misses,
// extends the taxonomy with them, and shows how far the industrially
// feasible bag-of-concepts classifier moves toward — and past —
// bag-of-words once the resource fits the task.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/taxext"
)

func main() {
	cfg := datagen.SmallConfig()
	cfg.Bundles = 900
	cfg.Singletons = 70
	cfg.CodesPerPart = []int{44, 32, 22, 15, 11}
	cfg.ArticleCodes = 70
	corpus, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: see what the miner proposes on the full corpus.
	proposals, err := taxext.Mine(corpus.Taxonomy, corpus.Bundles, taxext.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d uncovered domain terms; the strongest:\n", len(proposals))
	for i, p := range proposals {
		if i == 8 {
			break
		}
		fmt.Printf("  %-18s habitual wording of %s (support %d, confidence %.2f)\n",
			p.Term, p.ErrorCode, p.Support, p.Confidence)
	}

	// Step 2: the honest measurement — mining per CV fold from training
	// data only, then classifying the held-out fold with the extended
	// taxonomy.
	e := eval.New(corpus.Taxonomy, corpus.Bundles)
	plain, err := e.Run(eval.Variant{Name: "boc", Model: kb.BagOfConcepts, Sim: core.Jaccard{}})
	if err != nil {
		log.Fatal(err)
	}
	bow, err := e.Run(eval.Variant{Name: "bow", Model: kb.BagOfWords, Sim: core.Jaccard{}})
	if err != nil {
		log.Fatal(err)
	}
	adapted, added, err := taxext.Evaluate(corpus.Taxonomy, corpus.Bundles,
		taxext.DefaultConfig(), core.Jaccard{}, 5, 1, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n5-fold cross-validated accuracy@1 / @10:\n")
	fmt.Printf("  bag-of-words                     %5.1f%% / %5.1f%%   (accurate but slow, not language-independent)\n",
		100*bow.Accuracy[1], 100*bow.Accuracy[10])
	fmt.Printf("  bag-of-concepts, legacy taxonomy %5.1f%% / %5.1f%%   (fast, but the resource misses task vocabulary)\n",
		100*plain.Accuracy[1], 100*plain.Accuracy[10])
	fmt.Printf("  bag-of-concepts, adapted (+%d)   %5.1f%% / %5.1f%%   (fast AND accurate)\n",
		added, 100*adapted[1], 100*adapted[10])
}
