// Quickstart: the smallest complete tour of the QATK API — build a
// taxonomy, create a couple of historical data bundles, train the
// knowledge base, and rank error codes for a new damaged-part report.
package main

import (
	"fmt"
	"log"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/qatk"
	"repro/internal/taxonomy"
)

func main() {
	// 1. A miniature domain-specific taxonomy (normally loaded from XML,
	//    see internal/taxonomy and examples/taxonomy_tools).
	tax := taxonomy.New()
	must(tax.Add(taxonomy.Concept{
		ID: 1, Kind: taxonomy.KindComponent, Path: "Electric/Radio",
		Synonyms: map[string][]string{"en": {"radio", "head unit"}, "de": {"radio", "radiogerät"}},
	}))
	must(tax.Add(taxonomy.Concept{
		ID: 2, Kind: taxonomy.KindSymptom, Path: "Electric/Short",
		Synonyms: map[string][]string{"en": {"crackling sound", "crackles"}, "de": {"knistern"}},
	}))
	must(tax.Add(taxonomy.Concept{
		ID: 3, Kind: taxonomy.KindSymptom, Path: "Electric/Dead",
		Synonyms: map[string][]string{"en": {"no function", "dead"}, "de": {"ohne funktion"}},
	}))

	// 2. Historical data bundles with assigned error codes.
	history := []*bundle.Bundle{
		mkBundle("R1", "E100", "Kleint says taht radio turns on and off. crackling sound", "Kontakt defekt, knistern, durchgeschmort."),
		mkBundle("R2", "E100", "customer hears crackles from the head unit", "radio crackles, contact burnt"),
		mkBundle("R3", "E200", "radio dead on arrival, no function", "unit dead, internal fuse blown"),
		mkBundle("R4", "E200", "radiogerät ohne funktion", "sicherung defekt, ohne funktion"),
	}

	// 3. Train the domain-specific (bag-of-concepts) toolkit.
	tk := qatk.New(tax, qatk.WithModel(kb.BagOfConcepts), qatk.WithSimilarity(core.Jaccard{}))
	store, err := tk.Train(history)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge base: %d nodes from %d bundles\n\n", store.NodeCount(), store.BundleCount())

	// 4. A new damaged part arrives — only mechanic + supplier reports, no
	//    final error code yet.
	incoming := &bundle.Bundle{
		RefNo: "R5", ArticleCode: "A1", PartID: "P1",
		Reports: []bundle.Report{
			{Source: bundle.SourceMechanic, Text: "customer says radio makes knistern noise"},
			{Source: bundle.SourceSupplier, Text: "head unit crackles when warm"},
		},
	}
	list, err := tk.Recommend(store, incoming)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recommended error codes for", incoming.RefNo)
	for i, sc := range list {
		fmt.Printf("%d. %s (score %.3f)\n", i+1, sc.Code, sc.Score)
	}
}

func mkBundle(ref, code, mechanic, supplier string) *bundle.Bundle {
	return &bundle.Bundle{
		RefNo: ref, ArticleCode: "A1", PartID: "P1", ErrorCode: code,
		Reports: []bundle.Report{
			{Source: bundle.SourceMechanic, Text: mechanic},
			{Source: bundle.SourceSupplier, Text: supplier},
			{Source: bundle.SourcePartDesc, Text: "radio, head unit, Radiogerät"},
		},
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
