GO ?= go

.PHONY: build test vet lint race crash check bench

## build: compile every package and command
build:
	$(GO) build ./...

## test: tier-1 test suite (the CI gate)
test:
	$(GO) test ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## lint: project-specific invariants (qatklint); exit 1 on any finding
lint:
	$(GO) run ./cmd/qatklint ./...

## race: full test suite under the race detector
race:
	$(GO) test -race ./...

## crash: power-cut recovery harness — the fixed-seed enumeration (every
## VFS op index, every retention mode, no -short truncation) plus one
## randomized smoke run with a fresh seed.
crash:
	$(GO) test -run 'TestPowerCut' -count 1 ./internal/reldb/crashharness
	CRASH_RANDOM_SEED=1 $(GO) test -run 'TestPowerCutSmokeRandomSeed' -count 1 ./internal/reldb/crashharness

## check: the pre-merge tier — vet, qatklint, the race-enabled suite and
## the crash harness
check: vet lint race crash

## bench: full benchmark suite -> BENCH_pr5.json (see EXPERIMENTS.md).
## The root-package paper replications are full 5-fold CVs, so they run
## -benchtime=1x; the micro benchmarks use the default sampling.
bench:
	{ $(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . ; \
	  $(GO) test -run '^$$' -bench . -benchmem ./internal/... ; } | \
	  $(GO) run ./cmd/benchjson -o BENCH_pr5.json
