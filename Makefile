GO ?= go

.PHONY: build test vet lint race check

## build: compile every package and command
build:
	$(GO) build ./...

## test: tier-1 test suite (the CI gate)
test:
	$(GO) test ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## lint: project-specific invariants (qatklint); exit 1 on any finding
lint:
	$(GO) run ./cmd/qatklint ./...

## race: full test suite under the race detector
race:
	$(GO) test -race ./...

## check: the pre-merge tier — vet, qatklint and the race-enabled suite
check: vet lint race
