GO ?= go

# PR is the ordinal stamped into freshly written benchmark baselines
# (BENCH_pr$(PR).json); bump it per PR so benchtrend orders them.
PR ?= 10

.PHONY: build test vet lint lint-json race crash chaos chaos-repl check bench bench-load bench-alloc bench-trend bench-gate prof-smoke

## build: compile every package and command
build:
	$(GO) build ./...

## test: tier-1 test suite (the CI gate)
test:
	$(GO) test ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## lint: project-specific invariants (qatklint); exit 1 on any finding
lint:
	$(GO) run ./cmd/qatklint ./...

## lint-json: qatklint findings as machine-readable JSON -> lint.json
## (the CI artifact; written even when there are findings, so a red run
## still leaves the evidence behind)
lint-json:
	$(GO) run ./cmd/qatklint -json ./... > lint.json; \
	  status=$$?; cat lint.json; exit $$status

## race: full test suite under the race detector
race:
	$(GO) test -race ./...

## crash: power-cut recovery harness — the fixed-seed enumeration (every
## VFS op index, every retention mode, no -short truncation) plus one
## randomized smoke run with a fresh seed.
crash:
	$(GO) test -run 'TestPowerCut' -count 1 ./internal/reldb/crashharness
	CRASH_RANDOM_SEED=1 $(GO) test -run 'TestPowerCutSmokeRandomSeed' -count 1 ./internal/reldb/crashharness

## chaos: the shard fault matrix under the race detector — {slow, error,
## wedged} × {owning, non-owning} plus hedging/breaker/goroutine hygiene.
## On failure the chaos fixture dumps its tail-sample wide-event ring to
## chaos_requests.json as a single-file flight bundle (render it with
## `qatk requests chaos_requests.json`); CI uploads it as an artifact.
chaos:
	@rm -f chaos_requests.json
	CHAOS_ARTIFACT=$(CURDIR)/chaos_requests.json $(GO) test -race -count 1 ./internal/shard || \
	  { [ -f chaos_requests.json ] && echo "chaos: tail-sample ring -> chaos_requests.json"; exit 1; }

## chaos-repl: the replication fault matrix under the race detector —
## {link drop, link delay, truncate-mid-frame, replica wedge, primary
## fsync latch, replica crash mid-apply} — asserting the router answers
## throughout (degraded/stale at worst, never divergent) and every broken
## replica re-syncs to the primary's exact state digest. On failure the
## fixture dumps its wide-event ring to repl_requests.json (render it
## with `qatk requests repl_requests.json`); CI uploads it as an artifact.
chaos-repl:
	@rm -f repl_requests.json
	CHAOS_ARTIFACT=$(CURDIR)/repl_requests.json $(GO) test -race -count 1 ./internal/repl || \
	  { [ -f repl_requests.json ] && echo "chaos-repl: tail-sample ring -> repl_requests.json"; exit 1; }

## check: the pre-merge tier — vet, qatklint, the race-enabled suite, the
## crash harness, the shard + replication chaos matrices, and the
## benchmark regression gate
check: vet lint race crash chaos chaos-repl bench-gate

# The full benchmark sweep shared by bench (committing a baseline) and
# bench-gate (comparing a fresh run against one). The root-package paper
# replications are full 5-fold CVs, so they run -benchtime=1x; the micro
# benchmarks use the default sampling.
BENCH_SWEEP = { $(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . ; \
	  $(GO) test -run '^$$' -bench . -benchmem ./internal/... ; }

## bench: full benchmark suite -> BENCH_pr$(PR).json (see EXPERIMENTS.md),
## stamped with the PR ordinal so benchtrend orders baselines structurally.
bench:
	$(BENCH_SWEEP) | $(GO) run ./cmd/benchjson -pr $(PR) -o BENCH_pr$(PR).json

## bench-trend: render the cross-PR trend table (ns/op, B/op, allocs/op,
## acc@k, stage timings) over every committed baseline -> benchtrend-report.md
bench-trend:
	$(GO) run ./cmd/benchtrend -dir . -o benchtrend-report.md

## bench-gate: the benchmark regression gate — run the sweep fresh and
## compare against the newest committed BENCH_pr*.json. Hard-fails on
## allocs/op growth and acc@k drift (both machine-independent); ns/op only
## fails beyond a generous growth threshold (wall clock varies by runner).
## Always writes benchtrend-report.md (trend + gate verdict); the fresh
## run survives as bench_fresh.json on failure for diffing.
bench-gate:
	$(BENCH_SWEEP) | $(GO) run ./cmd/benchjson -pr $(PR) -o bench_fresh.json
	$(GO) run ./cmd/benchtrend -dir . -gate -fresh bench_fresh.json -o benchtrend-report.md
	@rm -f bench_fresh.json

## bench-load: closed-loop load against a 4-shard in-process server with
## one artificially slow shard and two WAL-shipped read replicas ->
## BENCH_pr9.json. The hedged fan-out must keep p99 inside the 50ms SLO
## despite the 50ms-slow primary, with the hedges served by a fresh
## replica (the replica-served column); the line also carries the
## wide-event per-stage breakdown (stage-*-ms) plus the hedged/degraded/
## stale counts.
bench-load:
	$(GO) run ./cmd/loadgen -shards 4 -slow-shard 2 -slow-delay 50ms \
	  -replicas 2 -rps 200 -duration 10s -slo-p99 50ms | \
	  $(GO) run ./cmd/benchjson -o BENCH_pr9.json

## bench-alloc: the //qatk:hotpath contract in numbers -> BENCH_pr7.json.
## Runs the hot-path benchmarks with -benchmem and fails unless every
## metric mutator (BenchmarkHot*) and disabled-observability fast path
## (*Disabled) reports exactly 0 allocs/op.
bench-alloc:
	$(GO) test -run '^$$' -bench 'BenchmarkHot|Disabled$$' -benchmem \
	  ./internal/obs ./internal/obs/flight ./internal/obs/prof ./internal/obs/reqlog ./internal/pipeline ./internal/repl | \
	  $(GO) run ./cmd/benchjson -assert-zero-allocs '/BenchmarkHot|Disabled$$' \
	  -o BENCH_pr7.json

## prof-smoke: boot questd against a tiny generated corpus with a fast
## profiler cadence, render one live capture through `qatk prof`, and
## assert the ring is non-empty. The run arms -flight-dir so a crash
## during the smoke leaves a diagnosable bundle behind (CI uploads it).
prof-smoke:
	@rm -rf .profsmoke && mkdir -p .profsmoke/flight
	$(GO) run ./cmd/datagen -small -out .profsmoke/data
	$(GO) build -o .profsmoke/questd ./cmd/questd
	$(GO) build -o .profsmoke/qatk ./cmd/qatk
	@set -e; \
	.profsmoke/questd -data .profsmoke/data -addr 127.0.0.1:18080 \
	  -debug-addr 127.0.0.1:16060 -flight-dir .profsmoke/flight \
	  -prof-interval 150ms -prof-window 50ms -prof-ring 4 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT INT TERM; \
	ok=0; \
	for i in $$(seq 1 60); do \
	  sleep 0.25; \
	  if .profsmoke/qatk prof http://127.0.0.1:16060 > .profsmoke/report.txt 2>/dev/null \
	     && grep -q 'CONTINUOUS PROFILE' .profsmoke/report.txt; then ok=1; break; fi; \
	done; \
	if [ $$ok -ne 1 ]; then \
	  echo "prof-smoke: /debug/prof never served a non-empty ring"; \
	  cat .profsmoke/report.txt 2>/dev/null; exit 1; \
	fi; \
	head -20 .profsmoke/report.txt; \
	echo "prof-smoke: OK"
