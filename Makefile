GO ?= go

.PHONY: build test vet race check

## build: compile every package and command
build:
	$(GO) build ./...

## test: tier-1 test suite (the CI gate)
test:
	$(GO) test ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## race: full test suite under the race detector
race:
	$(GO) test -race ./...

## check: the pre-merge tier — vet plus the race-enabled suite
check: vet race
