GO ?= go

.PHONY: build test vet lint race check bench

## build: compile every package and command
build:
	$(GO) build ./...

## test: tier-1 test suite (the CI gate)
test:
	$(GO) test ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## lint: project-specific invariants (qatklint); exit 1 on any finding
lint:
	$(GO) run ./cmd/qatklint ./...

## race: full test suite under the race detector
race:
	$(GO) test -race ./...

## check: the pre-merge tier — vet, qatklint and the race-enabled suite
check: vet lint race

## bench: full benchmark suite -> BENCH_pr3.json (see EXPERIMENTS.md).
## The root-package paper replications are full 5-fold CVs, so they run
## -benchtime=1x; the micro benchmarks use the default sampling.
bench:
	{ $(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . ; \
	  $(GO) test -run '^$$' -bench . -benchmem ./internal/... ; } | \
	  $(GO) run ./cmd/benchjson -o BENCH_pr3.json
