// Command experiments regenerates every table and figure of the paper's
// evaluation (chapter 5) on the synthetic corpus:
//
//	experiments -fig 11        error-code prediction, all reports (Fig. 11)
//	experiments -fig 12        mechanic report only (Fig. 12)
//	experiments -fig 13        supplier report only (Fig. 13)
//	experiments -fig 14        error distribution vs public source (Fig. 14)
//	experiments -stats         corpus statistics vs §3.2
//	experiments -feasibility   runtime per bundle, §5.2.2
//	experiments -coverage      legacy vs trie annotator coverage, §4.5.3
//	experiments -extension     taxonomy-adaptation extension experiment, §6
//	experiments -preproc       linguistic-preprocessing extension experiment, §6
//	experiments -all           everything above
//
// Use -small for a fast scaled-down corpus (shapes become noisier) and
// -csv <dir> to export the accuracy tables for plotting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/annotate"
	"repro/internal/bundle"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/textproc"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (11, 12, 13, 14)")
	stats := flag.Bool("stats", false, "print corpus statistics (§3.2)")
	feas := flag.Bool("feasibility", false, "print runtime feasibility (§5.2.2)")
	coverage := flag.Bool("coverage", false, "print annotator coverage ablation (§4.5.3)")
	extension := flag.Bool("extension", false, "print the taxonomy-adaptation extension experiment (§5.2.2/§6)")
	preproc := flag.Bool("preproc", false, "print the linguistic-preprocessing extension experiment (§6)")
	all := flag.Bool("all", false, "run everything")
	small := flag.Bool("small", false, "use the small test corpus instead of paper scale")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	csvDir := flag.String("csv", "", "also write accuracy tables as CSV into this directory")
	flag.Parse()
	csvOut = *csvDir
	if csvOut != "" {
		if err := os.MkdirAll(csvOut, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "csv dir:", err)
			os.Exit(1)
		}
	}

	cfg := datagen.DefaultConfig()
	if *small {
		cfg = datagen.SmallConfig()
	}
	cfg.Seed = *seed

	fmt.Fprintf(os.Stderr, "generating corpus (%d bundles, seed %d)...\n", cfg.Bundles, cfg.Seed)
	corpus, err := datagen.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	ran := false
	if *stats || *all {
		runStats(corpus, !*small)
		ran = true
	}
	if *fig == 11 || *all {
		runFig11(corpus)
		ran = true
	}
	if *fig == 12 || *all {
		runFig1213(corpus, bundle.SourceMechanic, "Figure 12 — mechanic reports only")
		ran = true
	}
	if *fig == 13 || *all {
		runFig1213(corpus, bundle.SourceSupplier, "Figure 13 — supplier reports only")
		ran = true
	}
	if *fig == 14 || *all {
		runFig14(corpus)
		ran = true
	}
	if *feas || *all {
		runFeasibility(corpus)
		ran = true
	}
	if *coverage || *all {
		runCoverage(corpus)
		ran = true
	}
	if *extension || *all {
		runExtension(corpus)
		ran = true
	}
	if *preproc || *all {
		runPreprocessing(corpus)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func runStats(corpus *datagen.Corpus, paperScale bool) {
	fmt.Println("== Corpus statistics (§3.2) ==")
	corpus.Stats().Print(os.Stdout, paperScale)
	fmt.Println()
}

// csvOut is the directory for CSV exports ("" = disabled).
var csvOut string

// writeCSV exports one figure's accuracy table when -csv is set.
func writeCSV(name string, results []*eval.Result) {
	if csvOut == "" {
		return
	}
	f, err := os.Create(csvOut + "/" + name + ".csv")
	if err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	defer f.Close()
	if err := eval.WriteCSV(f, results, nil); err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
	}
}

// must aborts the experiment run when an evaluation fails; the figures
// are meaningless on partial data.
func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	return v
}

func runFig11(corpus *datagen.Corpus) {
	e := eval.New(corpus.Taxonomy, corpus.Bundles)
	results := must(e.RunAll(eval.StandardVariants()))
	results = append(results, e.RunFrequencyBaseline())
	results = append(results, must(e.RunCandidateSetBaseline(kb.BagOfWords, nil)))
	results = append(results, must(e.RunCandidateSetBaseline(kb.BagOfConcepts, nil)))
	eval.PrintTable(os.Stdout, "== Figure 11 — experiment 1: all reports ==", results, nil)
	writeCSV("fig11", results)
	fmt.Println()
}

func runFig1213(corpus *datagen.Corpus, src bundle.Source, title string) {
	e := eval.New(corpus.Taxonomy, corpus.Bundles)
	variants := eval.SourceVariants(string(src)+":", src)
	results := must(e.RunAll(variants))
	results = append(results, e.RunFrequencyBaseline())
	results = append(results, must(e.RunCandidateSetBaseline(kb.BagOfWords, []bundle.Source{src})))
	results = append(results, must(e.RunCandidateSetBaseline(kb.BagOfConcepts, []bundle.Source{src})))
	eval.PrintTable(os.Stdout, "== "+title+" ==", results, nil)
	writeCSV("fig"+map[bundle.Source]string{bundle.SourceMechanic: "12", bundle.SourceSupplier: "13"}[src], results)
	fmt.Println()
}

func runFeasibility(corpus *datagen.Corpus) {
	e := eval.New(corpus.Taxonomy, corpus.Bundles)
	variants := []eval.Variant{
		{Name: "bag-of-words + jaccard", Model: kb.BagOfWords, Sim: jaccard()},
		{Name: "bag-of-words + jaccard + stopword removal", Model: kb.BagOfWords, Sim: jaccard(), Stopwords: true},
		{Name: "bag-of-concepts + jaccard", Model: kb.BagOfConcepts, Sim: jaccard()},
	}
	results := must(e.RunAll(variants))
	fmt.Println("== Feasibility (§5.2.2) — classification runtime ==")
	eval.PrintTiming(os.Stdout, results)
	fmt.Println()
	fmt.Println("accuracy (stopword removal must not change accuracy materially):")
	eval.PrintTable(os.Stdout, "", results, nil)
	fmt.Println()

	// Per-engine preprocessing cost over the full corpus, via the traced
	// pipeline (where the time goes before classification): each engine
	// invocation is a span, and the tracer's per-name aggregation yields
	// the per-engine table.
	p, err := pipeline.New(
		textproc.Tokenizer{},
		textproc.LanguageDetector{},
		annotate.NewConceptAnnotator(corpus.Taxonomy),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipeline:", err)
		os.Exit(1)
	}
	tracer := obs.NewTracer(256)
	reader := bundle.NewReader(corpus.Bundles, bundle.TrainingSources())
	stats, err := p.RunWithConfig(context.Background(), reader, nil, pipeline.RunConfig{
		DeadLetter: func(d pipeline.DeadLetter) error {
			fmt.Fprintf(os.Stderr, "pipeline: skipping bundle %d (%s): %v\n", d.Index, d.DocID, d.Err)
			return nil
		},
		ErrorBudget: 25,
		Tracer:      tracer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipeline:", err)
		os.Exit(1)
	}
	fmt.Println("preprocessing cost per engine (full corpus):")
	pipeline.PrintSpanReport(os.Stdout, tracer.Stats())
	pipeline.PrintRunStats(os.Stdout, stats)
	fmt.Println()
}
