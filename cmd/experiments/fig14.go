package main

import (
	"fmt"
	"os"

	"repro/internal/annotate"
	"repro/internal/bundle"
	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/nhtsa"
	"repro/internal/qatk"
	"repro/internal/taxext"
	"repro/internal/textproc"
)

func jaccard() core.Similarity { return core.Jaccard{} }

// largestPart returns the part ID with the most bundles.
func largestPart(bundles []*bundle.Bundle) string {
	counts := map[string]int{}
	best := ""
	for _, b := range bundles {
		counts[b.PartID]++
		if best == "" || counts[b.PartID] > counts[best] ||
			(counts[b.PartID] == counts[best] && b.PartID < best) {
			best = b.PartID
		}
	}
	return best
}

// runFig14 regenerates the error-distribution comparison of §5.4/Fig. 14:
// the internal knowledge base classifies ODI-style complaints, and the two
// sources' top error codes are printed side by side.
func runFig14(corpus *datagen.Corpus) {
	// Build the full knowledge base from all internal bundles
	// (bag-of-concepts: language-independent, the §5.4 choice).
	filtered := bundle.FilterMultiOccurrence(corpus.Bundles)
	ann := annotate.NewConceptAnnotator(corpus.Taxonomy)
	ex := &kb.Extractor{Model: kb.BagOfConcepts}
	mem := kb.NewMemory()
	for _, b := range filtered {
		c := b.CAS()
		if err := (textproc.Tokenizer{}).Process(c); err != nil {
			fmt.Fprintln(os.Stderr, "tokenize:", err)
			os.Exit(1)
		}
		if err := ann.Process(c); err != nil {
			fmt.Fprintln(os.Stderr, "annotate:", err)
			os.Exit(1)
		}
		mem.AddBundle(b.PartID, b.ErrorCode, ex.Features(c))
	}

	gcfg := nhtsa.DefaultGenerateConfig()
	if len(corpus.Bundles) < 1000 {
		gcfg.Complaints = 300
	}
	complaints, labels := nhtsa.GenerateLabeled(gcfg, corpus)
	clf := compare.NewClassifier(mem, corpus.Taxonomy, kb.BagOfConcepts, core.Jaccard{})

	// The QUEST comparison screen (Fig. 14) shows the distribution for one
	// component class; use the part with the most data.
	part := largestPart(filtered)
	var partBundles []*bundle.Bundle
	for _, b := range filtered {
		if b.PartID == part {
			partBundles = append(partBundles, b)
		}
	}
	var partComplaints []nhtsa.Complaint
	for _, cm := range complaints {
		if cm.Component == part {
			partComplaints = append(partComplaints, cm)
		}
	}
	public, err := clf.ComplaintDistribution(partComplaints)
	if err != nil {
		fmt.Fprintln(os.Stderr, "classify complaints:", err)
		os.Exit(1)
	}
	internal := compare.InternalDistribution(partBundles)

	fmt.Printf("== Figure 14 — error distribution for part %s: internal vs public source ==\n", part)
	compare.PrintSideBySide(os.Stdout, internal, public, 3)
	fmt.Printf("top-10 head overlap: %d codes shared\n", compare.HeadOverlap(internal, public, 10))

	// The §5.4 cross-source accuracy claim, measurable on the synthetic
	// labels: bag-of-concepts transfers across text types, bag-of-words
	// does not.
	bocAcc, err := compare.CrossSourceAccuracy(clf, complaints, labels)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cross-source:", err)
		os.Exit(1)
	}
	exBow := &kb.Extractor{Model: kb.BagOfWords}
	memBow := kb.NewMemory()
	for _, b := range filtered {
		c := b.CAS()
		if err := (textproc.Tokenizer{}).Process(c); err != nil {
			fmt.Fprintln(os.Stderr, "tokenize:", err)
			os.Exit(1)
		}
		memBow.AddBundle(b.PartID, b.ErrorCode, exBow.Features(c))
	}
	bowClf := compare.NewClassifier(memBow, corpus.Taxonomy, kb.BagOfWords, core.Jaccard{})
	bowAcc, err := compare.CrossSourceAccuracy(bowClf, complaints, labels)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cross-source:", err)
		os.Exit(1)
	}
	fmt.Printf("cross-source top-1 accuracy: bag-of-concepts %.1f%%, bag-of-words %.1f%% (§5.4)\n\n",
		100*bocAcc, 100*bowAcc)
}

// runExtension runs the taxonomy-adaptation experiment the paper names as
// future work: per-fold mining of uncovered domain terms, then
// bag-of-concepts CV with the extended taxonomy.
func runExtension(corpus *datagen.Corpus) {
	e := eval.New(corpus.Taxonomy, corpus.Bundles)
	plain := must(e.Run(eval.Variant{Name: "bag-of-concepts + jaccard (legacy taxonomy)",
		Model: kb.BagOfConcepts, Sim: core.Jaccard{}}))
	adapted, added, err := taxext.Evaluate(corpus.Taxonomy, corpus.Bundles,
		taxext.DefaultConfig(), core.Jaccard{}, 5, 1, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "extension:", err)
		os.Exit(1)
	}
	fmt.Println("== Extension — taxonomy adaptation (§5.2.2 outlook, §6) ==")
	fmt.Printf("%-52s", "variant")
	for _, k := range eval.DefaultKs {
		fmt.Printf("  @%-5d", k)
	}
	fmt.Println()
	fmt.Printf("%-52s", plain.Variant)
	for _, k := range eval.DefaultKs {
		fmt.Printf("  %5.1f%%", 100*plain.Accuracy[k])
	}
	fmt.Println()
	fmt.Printf("%-52s", fmt.Sprintf("bag-of-concepts + jaccard (adapted, +%d concepts)", added))
	for _, k := range eval.DefaultKs {
		fmt.Printf("  %5.1f%%", 100*adapted[k])
	}
	fmt.Println()
	fmt.Println()
}

// runPreprocessing runs the second §6 future-work experiment: the optional
// linguistic preprocessing engines (taxonomy-vocabulary spelling
// normalization and language-dependent stemming) cross-validated against
// the plain pipeline.
func runPreprocessing(corpus *datagen.Corpus) {
	configs := []struct {
		name string
		opts []qatk.Option
	}{
		{"bag-of-words + jaccard (plain)", []qatk.Option{qatk.WithModel(kb.BagOfWords)}},
		{"bag-of-words + jaccard + spell norm", []qatk.Option{qatk.WithModel(kb.BagOfWords), qatk.WithSpellNormalization()}},
		{"bag-of-words + jaccard + spell norm + stems", []qatk.Option{qatk.WithModel(kb.BagOfWords), qatk.WithSpellNormalization(), qatk.WithStemming()}},
		{"bag-of-concepts + jaccard (plain)", []qatk.Option{qatk.WithModel(kb.BagOfConcepts)}},
		{"bag-of-concepts + jaccard + spell norm", []qatk.Option{qatk.WithModel(kb.BagOfConcepts), qatk.WithSpellNormalization()}},
	}
	var results []*eval.Result
	for _, c := range configs {
		tk := qatk.New(corpus.Taxonomy, c.opts...)
		res, err := tk.CrossValidate(corpus.Bundles, 5, 1, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "preproc:", err)
			os.Exit(1)
		}
		res.Variant = c.name
		results = append(results, res)
	}
	eval.PrintTable(os.Stdout, "== Extension — linguistic preprocessing (§6) ==", results, nil)
	fmt.Println()
}

// runCoverage reproduces the §4.5.3 annotator comparison: the legacy
// annotator finds no taxonomy concepts in a large share of the bundles
// (2,530 of 7,500 in the paper), the trie annotator covers all of them.
func runCoverage(corpus *datagen.Corpus) {
	legacy := annotate.NewLegacyAnnotator(corpus.Taxonomy)
	modern := annotate.NewConceptAnnotator(corpus.Taxonomy)
	legacyZero, modernZero := 0, 0
	for _, b := range corpus.Bundles {
		cl := b.CAS()
		if err := (textproc.Tokenizer{}).Process(cl); err != nil {
			continue
		}
		cm := b.CAS()
		if err := (textproc.Tokenizer{}).Process(cm); err != nil {
			continue
		}
		if err := legacy.Process(cl); err == nil && len(cl.Select(annotate.TypeConcept)) == 0 {
			legacyZero++
		}
		if err := modern.Process(cm); err == nil && len(cm.Select(annotate.TypeConcept)) == 0 {
			modernZero++
		}
	}
	fmt.Println("== Annotator coverage (§4.5.3) ==")
	fmt.Printf("%-36s %10s %18s\n", "annotator", "zero-concept bundles", "paper")
	fmt.Printf("%-36s %10d of %d %12s\n", "legacy (single-word, case-sensitive)", legacyZero, len(corpus.Bundles), "2530 of 7500")
	fmt.Printf("%-36s %10d of %d %12s\n", "trie (multiword, multilingual)", modernZero, len(corpus.Bundles), "0 of 7500")
	fmt.Println()
}
