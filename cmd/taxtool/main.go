// Command taxtool maintains the domain-specific taxonomy (the role of the
// legacy editor GUI in the paper's stack, §4.5.3) and automates its
// extension (§6, [12]):
//
//	taxtool stats   -tax taxonomy.xml
//	taxtool list    -tax taxonomy.xml -kind symptom
//	taxtool add     -tax taxonomy.xml -id 9001 -kind symptom -path Noise/Rattle -lang en -terms "rattle,rattling noise"
//	taxtool synonym -tax taxonomy.xml -id 9001 -lang de -terms klappern
//	taxtool rename  -tax taxonomy.xml -id 9001 -path Noise/Rattling
//	taxtool remove  -tax taxonomy.xml -id 9001
//	taxtool expand  -tax taxonomy.xml
//	taxtool mine    -tax taxonomy.xml -data ./data [-apply]
//
// Mutating commands rewrite the XML file in place.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bundle"
	"repro/internal/reldb"
	"repro/internal/taxext"
	"repro/internal/taxonomy"
)

func main() {
	taxPath := flag.String("tax", "taxonomy.xml", "taxonomy XML file")
	id := flag.Int("id", 0, "concept ID")
	kind := flag.String("kind", "", "concept kind (component|symptom|location|solution)")
	path := flag.String("path", "", "concept path")
	lang := flag.String("lang", "", "language code")
	terms := flag.String("terms", "", "comma-separated synonym terms")
	data := flag.String("data", "data", "data directory (for mine)")
	apply := flag.Bool("apply", false, "apply mined proposals to the taxonomy")
	if len(os.Args) < 2 || strings.HasPrefix(os.Args[1], "-") {
		flag.Usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if err := flag.CommandLine.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if err := run(cmd, *taxPath, *id, *kind, *path, *lang, *terms, *data, *apply); err != nil {
		fmt.Fprintln(os.Stderr, "taxtool:", err)
		os.Exit(1)
	}
}

func run(cmd, taxPath string, id int, kind, path, lang, terms, data string, apply bool) error {
	tax, err := taxonomy.LoadFile(taxPath)
	if err != nil {
		return err
	}
	save := func() error { return tax.SaveFile(taxPath) }
	splitTerms := func() []string {
		var out []string
		for _, t := range strings.Split(terms, ",") {
			if t = strings.TrimSpace(t); t != "" {
				out = append(out, t)
			}
		}
		return out
	}

	switch cmd {
	case "stats":
		st := tax.ComputeStats()
		fmt.Printf("concepts: %d\n", st.Concepts)
		for _, k := range taxonomy.Kinds() {
			fmt.Printf("  %-10s %d\n", k, st.ByKind[k])
		}
		for _, l := range tax.Languages() {
			fmt.Printf("language %s: %d concepts, %d synonym entries\n",
				l, st.PerLang[l], st.Synonyms[l])
		}
		fmt.Printf("multiword terms: %d\n", st.Multiwords)
		return nil
	case "list":
		concepts := tax.Concepts()
		if kind != "" {
			concepts = tax.ByKind(taxonomy.Kind(kind))
		}
		for _, c := range concepts {
			fmt.Printf("%6d  %-10s %-40s", c.ID, c.Kind, c.Path)
			for _, l := range c.Languages() {
				fmt.Printf("  %s: %s", l, strings.Join(c.Synonyms[l], " | "))
			}
			fmt.Println()
		}
		return nil
	case "add":
		if id == 0 {
			id = tax.MaxID() + 1
		}
		if lang == "" || len(splitTerms()) == 0 {
			return fmt.Errorf("add needs -lang and -terms")
		}
		err := tax.Add(taxonomy.Concept{
			ID: id, Kind: taxonomy.Kind(kind), Path: path,
			Synonyms: map[string][]string{lang: splitTerms()},
		})
		if err != nil {
			return err
		}
		fmt.Printf("added concept %d\n", id)
		return save()
	case "synonym":
		for _, t := range splitTerms() {
			if err := tax.AddSynonym(id, lang, t); err != nil {
				return err
			}
		}
		return save()
	case "rename":
		if err := tax.Rename(id, path); err != nil {
			return err
		}
		return save()
	case "remove":
		if !tax.Remove(id) {
			return fmt.Errorf("no concept %d", id)
		}
		return save()
	case "expand":
		added := tax.ExpandSynonyms()
		fmt.Printf("synonym expansion generated %d variants\n", added)
		return save()
	case "mine":
		db, err := reldb.Open(filepath.Join(data, "db"))
		if err != nil {
			return err
		}
		defer db.Close()
		bundles, err := bundle.LoadAll(db)
		if err != nil {
			return err
		}
		var assigned []*bundle.Bundle
		for _, b := range bundles {
			if b.ErrorCode != "" {
				assigned = append(assigned, b)
			}
		}
		proposals, err := taxext.Mine(tax, bundle.FilterMultiOccurrence(assigned), taxext.DefaultConfig())
		if err != nil {
			return err
		}
		fmt.Printf("%d proposals:\n", len(proposals))
		limit := 30
		if len(proposals) < limit {
			limit = len(proposals)
		}
		for _, p := range proposals[:limit] {
			fmt.Printf("  %-20s -> %-8s support %3d  confidence %.2f\n",
				p.Term, p.ErrorCode, p.Support, p.Confidence)
		}
		if len(proposals) > limit {
			fmt.Printf("  ... and %d more\n", len(proposals)-limit)
		}
		if apply {
			ext, added, err := taxext.Apply(tax, proposals)
			if err != nil {
				return err
			}
			if err := ext.SaveFile(taxPath); err != nil {
				return err
			}
			fmt.Printf("applied: %d new concepts written to %s\n", added, taxPath)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q (stats | list | add | synonym | rename | remove | expand | mine)", cmd)
	}
}
