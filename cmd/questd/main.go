// Command questd serves the QUEST web application over a data directory
// produced by cmd/datagen (and, for the suggestion screens, classified by
// `qatk train` + `qatk classify`):
//
//	questd -data ./data -addr :8080
//
// Log in as "admin" (extended rights) or "expert".
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/bundle"
	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/nhtsa"
	"repro/internal/quest"
	"repro/internal/reldb"
	"repro/internal/taxonomy"
)

func main() {
	data := flag.String("data", "data", "data directory (from cmd/datagen)")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	if err := run(*data, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "questd:", err)
		os.Exit(1)
	}
}

func run(data, addr string) error {
	db, err := reldb.Open(filepath.Join(data, "db"))
	if err != nil {
		return err
	}
	defer db.Close()

	cfg := quest.Config{DB: db}
	if internal, public, err := buildComparison(data, db); err != nil {
		fmt.Fprintf(os.Stderr, "comparison screen disabled: %v\n", err)
	} else {
		cfg.Internal, cfg.Public = internal, public
	}

	srv, err := quest.NewServer(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "QUEST listening on %s\n", addr)
	return http.ListenAndServe(addr, srv)
}

// buildComparison classifies the imported ODI complaints through the
// persisted knowledge base and prepares both distributions (§5.4).
func buildComparison(data string, db *reldb.DB) (*compare.Distribution, *compare.Distribution, error) {
	tax, err := taxonomy.LoadFile(filepath.Join(data, "taxonomy.xml"))
	if err != nil {
		return nil, nil, err
	}
	store, err := kb.OpenDB(db)
	if err != nil {
		return nil, nil, fmt.Errorf("knowledge base not trained yet: %w", err)
	}
	complaints, err := nhtsa.LoadAll(db)
	if err != nil || len(complaints) == 0 {
		return nil, nil, fmt.Errorf("no ODI complaints imported: %w", err)
	}
	clf := compare.NewClassifier(store, tax, kb.BagOfConcepts, core.Jaccard{})
	public, err := clf.ComplaintDistribution(complaints)
	if err != nil {
		return nil, nil, err
	}
	bundles, err := bundle.LoadAll(db)
	if err != nil {
		return nil, nil, err
	}
	return compare.InternalDistribution(bundles), public, nil
}
