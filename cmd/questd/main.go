// Command questd serves the QUEST web application over a data directory
// produced by cmd/datagen (and, for the suggestion screens, classified by
// `qatk train` + `qatk classify`):
//
//	questd -data ./data -addr :8080
//
// Log in as "admin" (extended rights) or "expert".
//
// The server is hardened for unattended field-study deployments: request
// handlers run under panic recovery and a request timeout, the listener has
// read/write/idle timeouts, /healthz and /readyz expose liveness and
// readiness (including the degraded state of the §5.4 comparison screen),
// and SIGINT/SIGTERM drain in-flight requests for -shutdown-timeout before
// the process exits.
//
// Observability: /metrics serves a Prometheus text exposition (request
// rate/latency/in-flight, panics, timeouts, WAL activity, build_info, and
// the pre-registered pipeline families), structured key=value logs go to
// stderr, and -debug-addr optionally serves net/http/pprof on a separate
// loopback-only listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/bundle"
	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/nhtsa"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/quest"
	"repro/internal/reldb"
	"repro/internal/taxonomy"
)

func main() {
	data := flag.String("data", "data", "data directory (from cmd/datagen)")
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "pprof listen address (e.g. localhost:6060; empty disables)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request handler time budget (0 disables)")
	dbSync := flag.String("db-sync", "always", "WAL durability: always | interval | never")
	dbSyncEvery := flag.Duration("db-sync-interval", reldb.DefaultSyncEvery, "group-commit fsync cadence (with -db-sync=interval)")
	flag.Parse()

	if err := run(*data, *addr, *debugAddr, *dbSync, *shutdownTimeout, *requestTimeout, *dbSyncEvery); err != nil {
		fmt.Fprintln(os.Stderr, "questd:", err)
		os.Exit(1)
	}
}

// pprofMux builds an explicit pprof mux rather than relying on the
// DefaultServeMux side effects of importing net/http/pprof.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(data, addr, debugAddr, dbSync string, shutdownTimeout, requestTimeout, dbSyncEvery time.Duration) error {
	logger := obs.NewLogger(os.Stderr, obs.LevelInfo)
	metrics := obs.NewRegistry()
	tracer := obs.NewTracer(1024)
	// Pre-register the pipeline families: questd does not run collection
	// processing itself, but the exposition presents the full QATK metric
	// inventory so dashboards bind to stable names.
	pipeline.RegisterMetrics(metrics)

	sync, err := reldb.ParseSyncPolicy(dbSync)
	if err != nil {
		return err
	}
	db, err := reldb.OpenWith(filepath.Join(data, "db"), reldb.Options{Sync: sync, SyncEvery: dbSyncEvery})
	if err != nil {
		return err
	}
	defer db.Close()
	db.Instrument(logger, metrics)

	cfg := quest.Config{
		DB: db, RequestTimeout: requestTimeout,
		Logger: logger, Metrics: metrics, Tracer: tracer,
	}
	if internal, public, err := buildComparison(data, db); err != nil {
		fmt.Fprintf(os.Stderr, "comparison screen disabled: %v\n", err)
		cfg.ComparisonNote = err.Error()
	} else {
		cfg.Internal, cfg.Public = internal, public
	}

	app, err := quest.NewServer(cfg)
	if err != nil {
		return err
	}

	if debugAddr != "" {
		dbg := &http.Server{Addr: debugAddr, Handler: pprofMux()}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server failed", obs.L("addr", debugAddr), obs.L("err", err.Error()))
			}
		}()
		logger.Info("pprof listening", obs.L("addr", debugAddr))
	}

	// WriteTimeout must outlast the handler budget, or the timeout
	// middleware could never deliver its 503.
	writeTimeout := requestTimeout + 5*time.Second
	if requestTimeout <= 0 {
		writeTimeout = 0
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           app,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "QUEST listening on %s\n", addr)
	err = quest.ServeUntil(srv, shutdownTimeout, ctx.Done())
	if err == nil && ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "QUEST drained and stopped")
	}
	return err
}

// errNoComplaints reports an empty (but readable) ODI complaint table; the
// comparison screen then runs degraded rather than failing a wrapped nil.
var errNoComplaints = errors.New("no ODI complaints imported")

// buildComparison classifies the imported ODI complaints through the
// persisted knowledge base and prepares both distributions (§5.4).
func buildComparison(data string, db *reldb.DB) (*compare.Distribution, *compare.Distribution, error) {
	tax, err := taxonomy.LoadFile(filepath.Join(data, "taxonomy.xml"))
	if err != nil {
		return nil, nil, err
	}
	store, err := kb.OpenDB(db)
	if err != nil {
		return nil, nil, fmt.Errorf("knowledge base not trained yet: %w", err)
	}
	complaints, err := nhtsa.LoadAll(db)
	if err != nil {
		return nil, nil, fmt.Errorf("load ODI complaints: %w", err)
	}
	if len(complaints) == 0 {
		return nil, nil, errNoComplaints
	}
	clf := compare.NewClassifier(store, tax, kb.BagOfConcepts, core.Jaccard{})
	public, err := clf.ComplaintDistribution(complaints)
	if err != nil {
		return nil, nil, err
	}
	bundles, err := bundle.LoadAll(db)
	if err != nil {
		return nil, nil, err
	}
	return compare.InternalDistribution(bundles), public, nil
}
