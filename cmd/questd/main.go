// Command questd serves the QUEST web application over a data directory
// produced by cmd/datagen (and, for the suggestion screens, classified by
// `qatk train` + `qatk classify`):
//
//	questd -data ./data -addr :8080
//
// Log in as "admin" (extended rights) or "expert".
//
// The server is hardened for unattended field-study deployments: request
// handlers run under panic recovery and a request timeout, the listener has
// read/write/idle timeouts, /healthz and /readyz expose liveness and
// readiness (including the degraded state of the §5.4 comparison screen),
// and SIGINT/SIGTERM drain in-flight requests for -shutdown-timeout before
// the process exits.
//
// Observability: /metrics serves a Prometheus text exposition (request
// rate/latency/in-flight, panics, timeouts, WAL activity, build_info, and
// the pre-registered pipeline families), structured key=value logs go to
// stderr (tune with -log-level, redirect with -log-file), and -debug-addr
// optionally serves net/http/pprof plus GET /debug/bundle (on-demand
// flight-recorder capture + download), GET /debug/requests (the
// tail-sampled wide-event ring, read it with `qatk requests`), and
// GET /debug/prof (the continuous-profiler ring, read it with
// `qatk prof`) on a separate loopback-only listener.
//
// Wide events: every request assembles one structured event along the
// whole serving path (stage timers, per-shard attempts, degradation).
// A tail sampler retains the interesting ones — slow against a rolling
// p99-proportional threshold, degraded, hedged, non-2xx, panicking —
// in a -req-ring sized ring; -req-sample N head-samples 1 in N requests
// regardless, and -exemplars attaches the retained requests' trace IDs
// to /metrics latency buckets as OpenMetrics exemplars.
//
// Flight recorder: -flight-dir arms a black-box recorder that retains
// recent spans, log lines, and metric deltas, and snapshots a diagnostic
// bundle (read it with `qatk diagnose <dir>`) when an anomaly fires — the
// serving p99 exceeding -slo-p99 for consecutive windows, a recovered
// handler panic, a reldb fsync-failure latch, or a goroutine-count spike.
//
// Continuous profiling: unless -prof-interval is 0, a background sampler
// captures a CPU window plus heap/mutex/block/goroutine summaries every
// -prof-interval into a -prof-ring sized ring, computing heap deltas
// between consecutive snapshots. Breach-class flight triggers freeze the
// ring (plus a fresh breach-window CPU profile) into the bundle's
// profiles section.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"repro/internal/bundle"
	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/nhtsa"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	obsprof "repro/internal/obs/prof"
	"repro/internal/obs/reqlog"
	"repro/internal/pipeline"
	"repro/internal/quest"
	"repro/internal/reldb"
	"repro/internal/repl"
	"repro/internal/shard"
	"repro/internal/taxonomy"
)

// options collects the parsed questd flags.
type options struct {
	data, addr, debugAddr         string
	dbSync                        string
	shutdownTimeout               time.Duration
	requestTimeout                time.Duration
	dbSyncEvery                   time.Duration
	logLevel, logFile             string
	flightDir                     string
	sloP99, sloWindow             time.Duration
	flightInterval, stallDeadline time.Duration
	shards                        int
	hedgeAfter, shardTimeout      time.Duration
	replicas                      int
	maxApplyLag                   time.Duration
	reqRing, reqSample            int
	exemplars                     bool
	profInterval, profWindow      time.Duration
	profRing                      int
}

func main() {
	var o options
	flag.StringVar(&o.data, "data", "data", "data directory (from cmd/datagen)")
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "pprof + /debug/bundle listen address (e.g. localhost:6060; empty disables)")
	flag.DurationVar(&o.shutdownTimeout, "shutdown-timeout", 10*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	flag.DurationVar(&o.requestTimeout, "request-timeout", 30*time.Second, "per-request handler time budget (0 disables)")
	flag.StringVar(&o.dbSync, "db-sync", "always", "WAL durability: always | interval | never")
	flag.DurationVar(&o.dbSyncEvery, "db-sync-interval", reldb.DefaultSyncEvery, "group-commit fsync cadence (with -db-sync=interval)")
	flag.StringVar(&o.logLevel, "log-level", "info", "log severity: debug | info | warn | error")
	flag.StringVar(&o.logFile, "log-file", "", "log destination file (empty = stderr); appended, never truncated")
	flag.StringVar(&o.flightDir, "flight-dir", "", "flight-recorder bundle directory (empty disables the recorder)")
	flag.DurationVar(&o.sloP99, "slo-p99", 0, "serving-path p99 latency budget for the SLO watchdog (0 disables it)")
	flag.DurationVar(&o.sloWindow, "slo-window", flight.DefaultSLOWindow, "SLO watchdog sliding-window length")
	flag.DurationVar(&o.flightInterval, "flight-interval", 5*time.Second, "flight recorder watchdog tick interval")
	flag.DurationVar(&o.stallDeadline, "stall-deadline", flight.DefaultStallDeadline, "heartbeat deadline before the stall trigger fires")
	flag.IntVar(&o.shards, "shards", 1, "shard count for the live /api/recommend fan-out tier")
	flag.DurationVar(&o.hedgeAfter, "hedge-after", shard.DefaultHedgeAfter, "delay before a shard sub-query is hedged with a second attempt (0 disables hedging)")
	flag.DurationVar(&o.shardTimeout, "shard-timeout", shard.DefaultShardTimeout, "per-shard sub-query deadline")
	flag.IntVar(&o.replicas, "replicas", 0, "WAL-shipped read replicas tailing the database as hedge/failover targets (0 disables)")
	flag.DurationVar(&o.maxApplyLag, "max-apply-lag", shard.DefaultMaxApplyLag, "replica staleness bound: beyond it a replica only serves rescues, flagged stale")
	flag.IntVar(&o.reqRing, "req-ring", reqlog.DefaultCapacity, "retained wide-event ring capacity for /debug/requests")
	flag.IntVar(&o.reqSample, "req-sample", 0, "head-sample 1 in N requests into the wide-event ring regardless of tail criteria (0 disables)")
	flag.BoolVar(&o.exemplars, "exemplars", false, "attach OpenMetrics trace exemplars to retained requests' latency buckets on /metrics")
	flag.DurationVar(&o.profInterval, "prof-interval", obsprof.DefaultInterval, "continuous-profiler sampling cadence (0 disables the profiler)")
	flag.DurationVar(&o.profWindow, "prof-window", obsprof.DefaultWindowSize, "CPU capture window per continuous-profiler sample")
	flag.IntVar(&o.profRing, "prof-ring", obsprof.DefaultRing, "retained continuous-profiler snapshot ring size")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "questd:", err)
		os.Exit(1)
	}
}

// pprofMux builds an explicit pprof mux rather than relying on the
// DefaultServeMux side effects of importing net/http/pprof.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(o options) error {
	logger, sink, closeLogs, err := flight.NewLogging(o.logLevel, o.logFile)
	if err != nil {
		return err
	}
	defer closeLogs()
	metrics := obs.NewRegistry()
	tracer := obs.NewTracer(1024)
	tracer.Instrument(metrics.Counter(obs.MetricSpanNamesDroppedTotal))
	// Pre-register the pipeline families: questd does not run collection
	// processing itself, but the exposition presents the full QATK metric
	// inventory so dashboards bind to stable names.
	pipeline.RegisterMetrics(metrics)

	// The wide-event request log: one canonical event per request, tail
	// sampled into a fixed ring, served at /debug/requests on the debug mux
	// and frozen into flight-recorder bundles.
	reqLog := reqlog.New(reqlog.Config{
		Capacity:  o.reqRing,
		HeadEvery: o.reqSample,
		Registry:  metrics,
	})

	// The continuous profiler keeps a bounded ring of recent CPU windows
	// and heap/mutex/block/goroutine summaries so a breach bundle carries
	// the minutes BEFORE the trigger, not just the moment of capture.
	var profiler *obsprof.Sampler
	if o.profInterval > 0 {
		profiler = obsprof.New(obsprof.Config{
			Interval:   o.profInterval,
			WindowSize: o.profWindow,
			Ring:       o.profRing,
			Registry:   metrics,
			Logger:     logger,
		})
		profiler.Start()
		defer profiler.Close()
	}

	// The flight recorder runs whenever a bundle directory OR the debug
	// mux could use it; without -flight-dir triggers still log and count
	// but nothing is persisted.
	recorder := flight.New(flight.Config{
		Dir:           o.flightDir,
		Registry:      metrics,
		Tracer:        tracer,
		Logs:          sink,
		Logger:        logger,
		SLOTarget:     o.sloP99,
		SLOWindow:     o.sloWindow,
		StallDeadline: o.stallDeadline,
		Requests:      reqLog,
		Profiles:      profiler,
	})
	defer recorder.Close()
	recorder.Watch(o.flightInterval)

	sync, err := reldb.ParseSyncPolicy(o.dbSync)
	if err != nil {
		return err
	}
	db, err := reldb.OpenWith(filepath.Join(o.data, "db"), reldb.Options{Sync: sync, SyncEvery: o.dbSyncEvery})
	if err != nil {
		return err
	}
	defer db.Close()
	db.Instrument(logger, metrics)
	db.WithFlight(recorder)

	cfg := quest.Config{
		DB: db, RequestTimeout: o.requestTimeout,
		Logger: logger, Metrics: metrics, Tracer: tracer, Flight: recorder,
		Requests: reqLog, Exemplars: o.exemplars,
	}
	if internal, public, err := buildComparison(o.data, db); err != nil {
		fmt.Fprintf(os.Stderr, "comparison screen disabled: %v\n", err)
		cfg.ComparisonNote = err.Error()
	} else {
		cfg.Internal, cfg.Public = internal, public
	}

	// The live /api/recommend fan-out tier: the persisted knowledge base is
	// partitioned by part ID into -shards in-process workers behind the
	// hedging/breaker router. An untrained knowledge base disables the tier
	// (the batch-persisted suggestion screens still work) rather than
	// failing startup.
	if store, err := kb.OpenDB(db); err != nil {
		fmt.Fprintf(os.Stderr, "sharded serving disabled: %v\n", err)
	} else {
		// -replicas N stands up N in-memory read replicas tailing the
		// serving database's WAL over an in-process link: snapshot
		// bootstrap, then continuous apply. The router hedges to fresh
		// replicas and rescues from stale ones (flagged), and the flight
		// recorder hard-triggers when the worst apply lag stays beyond the
		// bound for consecutive watchdog ticks.
		var targets []shard.ReplicaTarget
		if o.replicas > 0 {
			primary, err := repl.NewPrimary(db)
			if err != nil {
				return fmt.Errorf("replication: %w", err)
			}
			for i := 0; i < o.replicas; i++ {
				rep, err := repl.New(repl.Config{
					ID:      "r" + strconv.Itoa(i),
					Link:    primary,
					Metrics: metrics,
					Logger:  logger,
				})
				if err != nil {
					return fmt.Errorf("replication: %w", err)
				}
				rep.Start()
				defer rep.Close()
				targets = append(targets, rep)
			}
			reps := targets
			recorder.WatchReplicaLag(func() (time.Duration, string) {
				worst, id := time.Duration(0), ""
				for _, t := range reps {
					r := t.(*repl.Replica)
					if lag := r.ApplyLag(); lag > worst {
						worst, id = lag, r.ID()
					}
				}
				return worst, id
			}, o.maxApplyLag, flight.DefaultReplicaLagTicks)
		}
		router, err := shard.New(shard.Config{
			Stores:       shard.PartitionStores(store, o.shards),
			ShardTimeout: o.shardTimeout,
			HedgeAfter:   o.hedgeAfter,
			Replicas:     targets,
			MaxApplyLag:  o.maxApplyLag,
			Metrics:      metrics,
			Tracer:       tracer,
			Logger:       logger,
			Flight:       recorder,
		})
		if err != nil {
			return err
		}
		defer router.Close()
		cfg.Shards = router
		logger.Info("sharded serving enabled",
			obs.L("shards", strconv.Itoa(router.Shards())),
			obs.L("replicas", strconv.Itoa(len(targets))),
			obs.L("hedge_after", o.hedgeAfter.String()),
			obs.L("shard_timeout", o.shardTimeout.String()))
	}

	app, err := quest.NewServer(cfg)
	if err != nil {
		return err
	}

	if o.debugAddr != "" {
		mux := pprofMux()
		mux.Handle("/debug/bundle", recorder.Handler())
		mux.Handle("/debug/requests", reqLog.Handler())
		mux.Handle("/debug/prof", profiler.Handler())
		dbg := &http.Server{Addr: o.debugAddr, Handler: mux}
		//lint:ignore qatklint/goroleak the debug listener is process-lifetime by design: it dies with the daemon, and tearing it down on drain would cut off pprof exactly when a stuck shutdown needs diagnosing
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server failed", obs.L("addr", o.debugAddr), obs.L("err", err.Error()))
			}
		}()
		logger.Info("debug mux listening (pprof + /debug/bundle + /debug/requests + /debug/prof)", obs.L("addr", o.debugAddr))
	}

	// WriteTimeout must outlast the handler budget, or the timeout
	// middleware could never deliver its 503.
	writeTimeout := o.requestTimeout + 5*time.Second
	if o.requestTimeout <= 0 {
		writeTimeout = 0
	}
	srv := &http.Server{
		Addr:              o.addr,
		Handler:           app,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "QUEST listening on %s\n", o.addr)
	err = quest.ServeUntil(srv, o.shutdownTimeout, ctx.Done())
	if err == nil && ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "QUEST drained and stopped")
	}
	return err
}

// errNoComplaints reports an empty (but readable) ODI complaint table; the
// comparison screen then runs degraded rather than failing a wrapped nil.
var errNoComplaints = errors.New("no ODI complaints imported")

// buildComparison classifies the imported ODI complaints through the
// persisted knowledge base and prepares both distributions (§5.4).
func buildComparison(data string, db *reldb.DB) (*compare.Distribution, *compare.Distribution, error) {
	tax, err := taxonomy.LoadFile(filepath.Join(data, "taxonomy.xml"))
	if err != nil {
		return nil, nil, err
	}
	store, err := kb.OpenDB(db)
	if err != nil {
		return nil, nil, fmt.Errorf("knowledge base not trained yet: %w", err)
	}
	complaints, err := nhtsa.LoadAll(db)
	if err != nil {
		return nil, nil, fmt.Errorf("load ODI complaints: %w", err)
	}
	if len(complaints) == 0 {
		return nil, nil, errNoComplaints
	}
	clf := compare.NewClassifier(store, tax, kb.BagOfConcepts, core.Jaccard{})
	public, err := clf.ComplaintDistribution(complaints)
	if err != nil {
		return nil, nil, err
	}
	bundles, err := bundle.LoadAll(db)
	if err != nil {
		return nil, nil, err
	}
	return compare.InternalDistribution(bundles), public, nil
}
