// Command loadgen is a closed-loop load generator for the QUEST live
// recommendation path (GET /api/recommend). It drives a target request
// rate through a bounded worker pool, records latencies into the obs
// package's fixed histogram buckets, and reports the run in `go test
// -bench` text format so cmd/benchjson can turn it into a committed
// BENCH file:
//
//	loadgen -shards 4 -slow-shard 2 -rps 200 -duration 10s | benchjson -o BENCH_pr8.json
//
// By default loadgen is self-contained: it synthesizes a deterministic
// knowledge base, partitions it across -shards in-process shard workers
// behind the hedging/breaker router (exactly questd's serving tier), and
// serves it from an in-process QUEST server — so a run measures the
// serving architecture, not a network. -slow-shard injects a
// deterministic slow-primary fault (internal/faults) into one shard to
// demonstrate the hedge keeping tail latency inside the SLO. With
// -replicas N the knowledge base is additionally persisted to a
// throwaway reldb primary and N WAL-shipped read replicas
// (internal/repl) tail it as hedge/failover targets — a slow-primary run
// then shows hedged reads rescued by a replica (the replica-served
// column). Point it at a running questd instead with -url.
//
// With -slo-p99 the run fails (exit 1) when the measured p99 exceeds the
// budget, making the SLO check scriptable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/obs/reqlog"
	"repro/internal/quest"
	"repro/internal/reldb"
	"repro/internal/repl"
	"repro/internal/shard"

	"repro/internal/bundle"
)

type options struct {
	url          string
	rps          float64
	duration     time.Duration
	workers      int
	shards       int
	slowShard    int
	slowDelay    time.Duration
	hedgeAfter   time.Duration
	shardTimeout time.Duration
	poolSize     int
	replicas     int
	maxApplyLag  time.Duration
	parts        int
	seed         int64
	sloP99       time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.url, "url", "", "base URL of a running questd (empty = self-contained in-process server)")
	flag.Float64Var(&o.rps, "rps", 200, "target request rate")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "run length")
	flag.IntVar(&o.workers, "workers", 32, "closed-loop worker pool size")
	flag.IntVar(&o.shards, "shards", 4, "shard count (self-contained mode)")
	flag.IntVar(&o.slowShard, "slow-shard", -1, "shard whose primary attempts are artificially slow (-1 = none; self-contained mode)")
	flag.DurationVar(&o.slowDelay, "slow-delay", 50*time.Millisecond, "injected primary-attempt delay on -slow-shard")
	flag.DurationVar(&o.hedgeAfter, "hedge-after", 5*time.Millisecond, "router hedge delay (self-contained mode)")
	flag.DurationVar(&o.shardTimeout, "shard-timeout", shard.DefaultShardTimeout, "router per-shard deadline (self-contained mode)")
	flag.IntVar(&o.poolSize, "workers-per-shard", 8, "shard worker-pool size — the in-process replica capacity hedges draw on (self-contained mode)")
	flag.IntVar(&o.replicas, "replicas", 0, "WAL-shipped read replicas tailing a throwaway persisted primary as hedge/failover targets (0 disables; self-contained mode)")
	flag.DurationVar(&o.maxApplyLag, "max-apply-lag", shard.DefaultMaxApplyLag, "replica staleness bound (self-contained mode)")
	flag.IntVar(&o.parts, "parts", 40, "distinct part IDs in the synthetic knowledge base")
	flag.Int64Var(&o.seed, "seed", 1, "workload seed")
	flag.DurationVar(&o.sloP99, "slo-p99", 0, "fail the run when measured p99 exceeds this budget (0 disables)")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// buildKB synthesizes the deterministic workload knowledge base.
func buildKB(seed int64, parts int) *kb.Memory {
	rng := rand.New(rand.NewSource(seed))
	m := kb.NewMemory()
	for i := 0; i < parts*30; i++ {
		part := fmt.Sprintf("P%03d", rng.Intn(parts))
		code := fmt.Sprintf("E%03d", rng.Intn(25))
		n := 3 + rng.Intn(6)
		set := map[string]bool{}
		for len(set) < n {
			set[fmt.Sprintf("f%02d", rng.Intn(60))] = true
		}
		feats := make([]string, 0, len(set))
		for f := range set {
			feats = append(feats, f)
		}
		sort.Strings(feats)
		m.AddBundle(part, code, feats)
	}
	return m
}

// selfContained stands up the in-process target: synthetic KB, sharded
// router (with the optional slow-shard fault), QUEST server. The wide-event
// request log rides along so the run can report the per-stage breakdown.
func selfContained(o options, rl *reqlog.Log) (baseURL string, stop func(), err error) {
	db, err := reldb.Open("")
	if err != nil {
		return "", nil, err
	}
	if err := bundle.CreateTables(db); err != nil {
		db.Close()
		return "", nil, err
	}
	src := buildKB(o.seed, o.parts)
	// -replicas: persist the workload KB into a throwaway durable primary
	// and stand up WAL-shipped read replicas tailing it; the router hedges
	// to them when a primary attempt is slow.
	var targets []shard.ReplicaTarget
	var reps []*repl.Replica
	var repClose func()
	if o.replicas > 0 {
		dir, err := os.MkdirTemp("", "loadgen-kb-*")
		if err != nil {
			db.Close()
			return "", nil, err
		}
		pdb, err := reldb.Open(dir)
		if err == nil {
			err = kb.CreateTables(pdb)
		}
		if err == nil {
			err = kb.Persist(pdb, src)
		}
		if err != nil {
			db.Close()
			os.RemoveAll(dir)
			return "", nil, err
		}
		primary, err := repl.NewPrimary(pdb)
		if err != nil {
			pdb.Close()
			db.Close()
			os.RemoveAll(dir)
			return "", nil, err
		}
		for i := 0; i < o.replicas; i++ {
			rep, err := repl.New(repl.Config{ID: fmt.Sprintf("r%d", i), Link: primary})
			if err != nil {
				db.Close()
				os.RemoveAll(dir)
				return "", nil, err
			}
			rep.Start()
			reps = append(reps, rep)
			targets = append(targets, rep)
		}
		deadline := time.Now().Add(10 * time.Second)
		for _, rep := range reps {
			for !(rep.Ready() && rep.ApplyLag() < o.maxApplyLag) {
				if time.Now().After(deadline) {
					db.Close()
					os.RemoveAll(dir)
					return "", nil, fmt.Errorf("replica %s never caught up", rep.ID())
				}
				time.Sleep(time.Millisecond)
			}
		}
		repClose = func() {
			for _, rep := range reps {
				rep.Close()
			}
			pdb.Close()
			os.RemoveAll(dir)
		}
	}
	var hook shard.FaultHook
	if o.slowShard >= 0 {
		// FirstAttempts=1 slows only each sub-query's primary attempt: the
		// hedged second attempt lands on a healthy worker, which is the
		// tail-rescue this tool exists to demonstrate.
		hook = faults.ShardHook(map[int]faults.ShardFault{
			o.slowShard: {Mode: faults.ShardSlow, Delay: o.slowDelay, FirstAttempts: 1},
		})
	}
	router, err := shard.New(shard.Config{
		Stores:          shard.PartitionStores(src, o.shards),
		WorkersPerShard: o.poolSize,
		ShardTimeout:    o.shardTimeout,
		HedgeAfter:      o.hedgeAfter,
		Hook:            hook,
		Replicas:        targets,
		MaxApplyLag:     o.maxApplyLag,
	})
	if err != nil {
		if repClose != nil {
			repClose()
		}
		db.Close()
		return "", nil, err
	}
	srv, err := quest.NewServer(quest.Config{DB: db, Shards: router, Requests: rl})
	if err != nil {
		router.Close()
		if repClose != nil {
			repClose()
		}
		db.Close()
		return "", nil, err
	}
	ts := httptest.NewServer(srv)
	return ts.URL, func() {
		ts.Close()
		router.Close()
		if repClose != nil {
			repClose()
		}
		db.Close()
	}, nil
}

// decodeJSON decodes a response body, tolerating trailing data.
func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// result is one request's outcome.
type result struct {
	latency  time.Duration
	status   int
	degraded bool
	hedged   bool
	replica  bool
	stale    bool
	err      bool
}

func run(o options, out io.Writer) error {
	base := o.url
	var reqLog *reqlog.Log
	if base == "" {
		reqLog = reqlog.New(reqlog.Config{})
		var stop func()
		var err error
		base, stop, err = selfContained(o, reqLog)
		if err != nil {
			return err
		}
		defer stop()
	}
	base = strings.TrimRight(base, "/")

	// Deterministic query mix: known parts plus ~10% unknown (scatter).
	rng := rand.New(rand.NewSource(o.seed + 1))
	type query struct{ part, features string }
	queries := make([]query, 256)
	for i := range queries {
		part := fmt.Sprintf("P%03d", rng.Intn(o.parts))
		if rng.Intn(10) == 0 {
			part = fmt.Sprintf("PX%02d", rng.Intn(50))
		}
		n := 2 + rng.Intn(4)
		feats := make([]string, 0, n)
		seen := map[string]bool{}
		for len(feats) < n {
			f := fmt.Sprintf("f%02d", rng.Intn(60))
			if !seen[f] {
				seen[f] = true
				feats = append(feats, f)
			}
		}
		queries[i] = query{part, strings.Join(feats, ",")}
	}

	client := &http.Client{Timeout: 5 * time.Second}
	jobs := make(chan query)
	results := make(chan result, 1024)
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range jobs {
				u := base + "/api/recommend?part=" + url.QueryEscape(q.part) + "&features=" + url.QueryEscape(q.features)
				start := time.Now()
				var res result
				resp, err := client.Get(u)
				res.latency = time.Since(start)
				if err != nil {
					res.err = true
				} else {
					res.status = resp.StatusCode
					var env struct {
						Degraded bool `json:"degraded"`
						Hedged   bool `json:"hedged"`
						Replica  bool `json:"replica"`
						Stale    bool `json:"stale"`
					}
					dec := decodeJSON(resp.Body, &env)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK || dec != nil {
						res.err = true
					}
					res.degraded, res.hedged = env.Degraded, env.Hedged
					res.replica, res.stale = env.Replica, env.Stale
				}
				results <- res
			}
		}()
	}

	// Closed-loop dispatch at the target rate: arrivals are scheduled on
	// the ideal clock, and when the pool is saturated the dispatcher
	// blocks (coordinated omission is visible as a lower achieved rate,
	// not silently dropped arrivals).
	interval := time.Duration(float64(time.Second) / o.rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	//lint:ignore qatklint/goroleak the dispatcher self-terminates when the run duration elapses and hands the workers their exit by closing jobs; the workers' WaitGroup is the join
	go func() {
		defer close(jobs)
		start := time.Now()
		for i := 0; ; i++ {
			next := start.Add(time.Duration(i) * interval)
			if next.Sub(start) >= o.duration {
				return
			}
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			jobs <- queries[i%len(queries)]
		}
	}()

	// Collect into the obs fixed-bucket histogram shape.
	bounds := obs.DefBuckets
	counts := make([]uint64, len(bounds)+1) // +Inf overflow bucket
	var (
		total, errors, degraded, hedged uint64
		replicaServed, stale            uint64
		sum                             time.Duration
		maxLat                          time.Duration
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for res := range results {
			total++
			if res.err {
				errors++
			}
			if res.degraded {
				degraded++
			}
			if res.hedged {
				hedged++
			}
			if res.replica {
				replicaServed++
			}
			if res.stale {
				stale++
			}
			sum += res.latency
			if res.latency > maxLat {
				maxLat = res.latency
			}
			sec := res.latency.Seconds()
			i := sort.SearchFloat64s(bounds, sec)
			counts[i]++
		}
	}()

	wallStart := time.Now()
	wg.Wait()
	close(results)
	<-done
	wall := time.Since(wallStart)
	if total == 0 {
		return fmt.Errorf("no requests completed")
	}

	quantile := func(q float64) float64 {
		rank := uint64(q * float64(total))
		cum := uint64(0)
		for i, c := range counts {
			cum += c
			if cum > rank {
				if i < len(bounds) {
					return bounds[i]
				}
				return maxLat.Seconds() // beyond the last bound
			}
		}
		return maxLat.Seconds()
	}
	p50, p95, p99 := quantile(0.50), quantile(0.95), quantile(0.99)
	achieved := float64(total) / wall.Seconds()
	avgNs := float64(sum.Nanoseconds()) / float64(total)

	// The wide-event stage totals (self-contained mode only: a remote
	// questd keeps its request log on its own debug mux) become extra
	// value-unit pairs, average milliseconds per timed request.
	stageCols := ""
	for _, st := range reqLog.StageTotals() {
		avgMs := st.Total.Seconds() * 1000 / float64(st.Count)
		stageCols += fmt.Sprintf("\t%.4f stage-%s-ms", avgMs, st.Name)
	}

	// `go test -bench` text format, one synthetic result line, so the
	// stream pipes straight into cmd/benchjson.
	fmt.Fprintln(out, "pkg: repro/cmd/loadgen")
	fmt.Fprintf(out,
		"BenchmarkQuestRecommendLoad \t%8d\t%12.0f ns/op\t%8.1f rps\t%.4f p50-s\t%.4f p95-s\t%.4f p99-s\t%d errors\t%d degraded\t%d hedged\t%d replica-served\t%d stale%s\n",
		total, avgNs, achieved, p50, p95, p99, errors, degraded, hedged, replicaServed, stale, stageCols)

	if errors > 0 {
		return fmt.Errorf("%d/%d requests failed", errors, total)
	}
	if o.sloP99 > 0 && p99 > o.sloP99.Seconds() {
		return fmt.Errorf("p99 %.4fs exceeds SLO budget %v", p99, o.sloP99)
	}
	return nil
}
