// Command qatklint runs the QATK's project-specific static-analysis
// suite (internal/analysis) over the given packages and exits non-zero
// when any invariant is violated. It is the `make lint` gate.
//
// Usage:
//
//	qatklint [-json] [-C dir] [packages]
package main

import (
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(analysis.RunCommand(os.Args[1:], os.Stdout, os.Stderr))
}
