// Command benchjson converts `go test -bench` text output into a stable
// machine-readable JSON file, so benchmark runs can be committed and
// diffed across PRs:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Input lines pass through to stdout unchanged (the stream stays watchable
// while it is being parsed). Every benchmark result line becomes one entry
// keyed "pkg/BenchmarkName" mapping the standard ns/op, B/op and allocs/op
// columns to fields and any custom b.ReportMetric units (acc@01,
// ms/bundle, ...) into a metrics object. See EXPERIMENTS.md for the file
// format contract.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the committed JSON document.
type File struct {
	// PR is the monotonically increasing PR ordinal this baseline was
	// committed under (-pr flag). benchtrend orders baselines by it
	// structurally; 0 means unstamped (pre-PR 10 files), for which
	// benchtrend falls back to parsing the BENCH_pr<N>.json filename.
	PR         int               `json:"pr,omitempty"`
	Go         string            `json:"go,omitempty"`
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	GOMAXPROCS int               `json:"gomaxprocs,omitempty"`
	NumCPU     int               `json:"num_cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout only echoes input)")
	pr := flag.Int("pr", 0, "PR ordinal stamped into the output so benchtrend orders baselines structurally (0 = unstamped)")
	assertZero := flag.String("assert-zero-allocs", "",
		"regexp of benchmark keys (pkg/BenchmarkName) that must report 0 allocs/op; any violation, or a match without an allocs/op column, fails the run")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *out, *pr, *assertZero); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in *os.File, echo *os.File, outPath string, pr int, assertZero string) error {
	doc := File{
		PR:         pr,
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Benchmarks: map[string]Result{},
	}
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(pkg, line); ok {
				doc.Benchmarks[r.Pkg+"/"+r.Name] = r
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}
	if assertZero != "" {
		if err := checkZeroAllocs(doc, assertZero); err != nil {
			return err
		}
	}
	if outPath == "" {
		return nil
	}
	data, err := marshal(doc)
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(echo, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), outPath)
	return nil
}

// checkZeroAllocs enforces the hot-path allocation contract on the parsed
// results: every benchmark whose key matches the pattern must carry an
// allocs/op column reading exactly 0. A pattern matching no benchmark at
// all is its own failure — a vacuous gate would pass silently when the
// benchmarks are renamed away.
func checkZeroAllocs(doc File, pattern string) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("-assert-zero-allocs: %w", err)
	}
	keys := make([]string, 0, len(doc.Benchmarks))
	for key := range doc.Benchmarks {
		if re.MatchString(key) {
			keys = append(keys, key)
		}
	}
	if len(keys) == 0 {
		return fmt.Errorf("-assert-zero-allocs %q matched no benchmark", pattern)
	}
	sort.Strings(keys)
	var bad []string
	for _, key := range keys {
		r := doc.Benchmarks[key]
		switch {
		case r.AllocsOp == nil:
			bad = append(bad, key+": no allocs/op column (run with -benchmem)")
		case *r.AllocsOp != 0:
			bad = append(bad, fmt.Sprintf("%s: %g allocs/op, want 0", key, *r.AllocsOp))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("hot-path allocation gate failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// parseBench parses one result line:
//
//	BenchmarkName-8  1  123456 ns/op  42 B/op  7 allocs/op  0.516 acc@01
func parseBench(pkg, line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix go test appends.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Pkg: pkg, Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			allocs := v
			r.AllocsOp = &allocs
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// marshal renders the document indented with a trailing newline;
// encoding/json emits map keys sorted, so committed files diff cleanly.
func marshal(doc File) ([]byte, error) {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
