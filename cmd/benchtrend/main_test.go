package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const pr1Body = `{
  "go": "go1.24.0",
  "benchmarks": {
    "repro/BenchmarkScore": {"pkg": "repro", "name": "BenchmarkScore", "iterations": 100,
      "ns_per_op": 1000, "bytes_per_op": 64, "allocs_per_op": 2,
      "metrics": {"acc@1": 0.516, "ms/bundle": 1.5}},
    "repro/internal/kb/BenchmarkLookupDisabled": {"pkg": "repro/internal/kb",
      "name": "BenchmarkLookupDisabled", "iterations": 100, "ns_per_op": 5, "allocs_per_op": 0}
  }
}`

// pr2 carries a stamped pr field (post-PR 10 format) under a filename
// whose ordinal would sort it WRONG if filenames were still authoritative.
const pr2Body = `{
  "pr": 12,
  "go": "go1.24.0",
  "gomaxprocs": 8,
  "num_cpu": 8,
  "benchmarks": {
    "repro/BenchmarkScore": {"pkg": "repro", "name": "BenchmarkScore", "iterations": 100,
      "ns_per_op": 900, "bytes_per_op": 64, "allocs_per_op": 2,
      "metrics": {"acc@1": 0.516, "ms/bundle": 1.4}},
    "repro/internal/kb/BenchmarkLookupDisabled": {"pkg": "repro/internal/kb",
      "name": "BenchmarkLookupDisabled", "iterations": 100, "ns_per_op": 5, "allocs_per_op": 0}
  }
}`

func loadTwo(t *testing.T) (string, []baseline) {
	t.Helper()
	dir := t.TempDir()
	writeBaseline(t, dir, "BENCH_pr1.json", pr1Body)
	// Filename says pr2; the stamped field says pr12. The field must win.
	writeBaseline(t, dir, "BENCH_pr2.json", pr2Body)
	bases, err := loadBaselines(dir)
	if err != nil {
		t.Fatal(err)
	}
	return dir, bases
}

func TestLoadBaselinesOrdersByStampedPRWithFilenameFallback(t *testing.T) {
	_, bases := loadTwo(t)
	if len(bases) != 2 {
		t.Fatalf("got %d baselines", len(bases))
	}
	if bases[0].PR != 1 || bases[1].PR != 12 {
		t.Fatalf("order = pr%d, pr%d; want pr1 (filename fallback), pr12 (stamped field)", bases[0].PR, bases[1].PR)
	}
}

func TestTrendReportTabulatesAllValueKinds(t *testing.T) {
	_, bases := loadTwo(t)
	var sb strings.Builder
	writeTrend(&sb, bases, true)
	out := sb.String()
	for _, want := range []string{
		"## ns/op", "## B/op", "## allocs/op", "## reported metrics",
		"| pr1 | pr12 |",
		"BenchmarkScore acc@1", "0.516",
		"BenchmarkScore ms/bundle",
		"internal/kb/BenchmarkLookupDisabled",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trend report missing %q:\n%s", want, out)
		}
	}
}

// TestGatePassesOnIdenticalRun: a fresh run identical to the newest
// baseline clears the gate.
func TestGatePassesOnIdenticalRun(t *testing.T) {
	dir, bases := loadTwo(t)
	fresh := writeBaseline(t, dir, "fresh.json", pr2Body)
	var doc benchFile
	if err := readJSON(fresh, &doc); err != nil {
		t.Fatal(err)
	}
	violations, err := gateRun(doc, bases[len(bases)-1], 400, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("identical run flagged: %v", violations)
	}
}

// TestGateFailsOnInjectedRegressions is the meta-test for the gate
// itself: a fresh run with 10x ns/op, +1 allocs/op, and drifted acc@1
// must produce one violation per regression, and run() must exit non-nil.
func TestGateFailsOnInjectedRegressions(t *testing.T) {
	dir, bases := loadTwo(t)
	freshBody := `{
  "pr": 13,
  "benchmarks": {
    "repro/BenchmarkScore": {"pkg": "repro", "name": "BenchmarkScore", "iterations": 100,
      "ns_per_op": 9000, "bytes_per_op": 64, "allocs_per_op": 3,
      "metrics": {"acc@1": 0.511, "ms/bundle": 1.4}},
    "repro/internal/kb/BenchmarkLookupDisabled": {"pkg": "repro/internal/kb",
      "name": "BenchmarkLookupDisabled", "iterations": 100, "ns_per_op": 5, "allocs_per_op": 0}
  }
}`
	fresh := writeBaseline(t, dir, "fresh.json", freshBody)
	var doc benchFile
	if err := readJSON(fresh, &doc); err != nil {
		t.Fatal(err)
	}
	violations, err := gateRun(doc, bases[len(bases)-1], 400, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 3 {
		t.Fatalf("want 3 violations (allocs, acc@1, ns/op), got %d: %v", len(violations), violations)
	}
	joined := strings.Join(violations, "\n")
	for _, want := range []string{"allocs/op grew 2 -> 3", "acc@1 drifted", "ns/op grew"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("violations missing %q:\n%s", want, joined)
		}
	}

	// End-to-end: run() in gate mode writes the report with a FAIL
	// section and returns an error so main exits 1.
	report := filepath.Join(dir, "report.md")
	var stdout strings.Builder
	err = run(&stdout, dir, report, "md", true, fresh, 400, 1e-6)
	if err == nil || !strings.Contains(err.Error(), "3 regression(s)") {
		t.Fatalf("run() err = %v, want gate failure", err)
	}
	data, rerr := os.ReadFile(report)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !strings.Contains(string(data), "FAIL (3 regressions)") {
		t.Fatalf("report missing gate FAIL section:\n%s", data)
	}
}

// TestGateRejectsVacuousComparison: no shared benchmark keys is an error,
// not a silent pass.
func TestGateRejectsVacuousComparison(t *testing.T) {
	_, bases := loadTwo(t)
	doc := benchFile{Benchmarks: map[string]result{
		"repro/BenchmarkRenamedAway": {Pkg: "repro", Name: "BenchmarkRenamedAway", NsPerOp: 1},
	}}
	if _, err := gateRun(doc, bases[len(bases)-1], 400, 1e-6); err == nil {
		t.Fatal("vacuous gate passed")
	}
}

// TestGateAgainstCommittedBaselines: the repo's own newest committed
// baseline gates cleanly against itself — proving `make bench-gate`
// cannot fail on re-running an unchanged tree except through genuine
// machine-noise beyond the generous ns/op threshold.
func TestGateAgainstCommittedBaselines(t *testing.T) {
	repoRoot := filepath.Join("..", "..")
	bases, err := loadBaselines(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	newest := bases[len(bases)-1]
	violations, err := gateRun(newest.File, newest, 400, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("committed baseline fails against itself: %v", violations)
	}

	// The trend report over the real baselines must mention every PR.
	var sb strings.Builder
	writeTrend(&sb, bases, false)
	for _, b := range bases {
		if !strings.Contains(sb.String(), "pr"+strconv.Itoa(b.PR)) {
			t.Fatalf("trend report missing pr%d column", b.PR)
		}
	}
}
