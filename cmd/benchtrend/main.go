// Command benchtrend turns the committed BENCH_pr*.json baselines into a
// per-benchmark trend report and, in -gate mode, a regression gate for a
// fresh `make bench` run:
//
//	benchtrend -dir . -o benchtrend-report.md
//	benchtrend -dir . -gate -fresh /tmp/BENCH_fresh.json -o benchtrend-report.md
//
// The trend report tabulates ns/op, B/op, allocs/op and every custom
// b.ReportMetric unit (acc@k, ms/bundle, stage timings, ...) across PRs, so
// a drift in any of them is visible in one table instead of N file diffs.
//
// The gate compares the fresh run against the newest committed baseline and
// fails hard on allocs/op growth and on acc@k movement beyond -acc-epsilon
// (accuracy is deterministic — any drift is a behavior change, not noise),
// while ns/op only fails beyond -ns-threshold percent growth (wall-clock is
// machine-dependent; the default is deliberately generous so CI across
// heterogeneous runners only trips on order-of-magnitude regressions).
//
// Baselines are ordered by the `pr` field benchjson stamps since PR 10;
// older unstamped files fall back to the BENCH_pr<N>.json filename.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result mirrors benchjson's Result; the two commands share a committed
// file format (EXPERIMENTS.md) rather than a Go package, so each side
// only declares the fields it reads.
type result struct {
	Pkg      string             `json:"pkg"`
	Name     string             `json:"name"`
	NsPerOp  float64            `json:"ns_per_op"`
	BytesOp  float64            `json:"bytes_per_op"`
	AllocsOp *float64           `json:"allocs_per_op"`
	Metrics  map[string]float64 `json:"metrics"`
}

// benchFile mirrors benchjson's File.
type benchFile struct {
	PR         int               `json:"pr"`
	Go         string            `json:"go"`
	CPU        string            `json:"cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	Benchmarks map[string]result `json:"benchmarks"`
}

// baseline is one committed benchmark file with its resolved PR ordinal.
type baseline struct {
	Path string
	PR   int
	File benchFile
}

func main() {
	dir := flag.String("dir", ".", "directory holding committed BENCH_pr*.json baselines")
	out := flag.String("o", "", "write the trend report to this file (default stdout)")
	format := flag.String("format", "md", "report format: md or text")
	gate := flag.Bool("gate", false, "compare -fresh against the newest baseline and exit 1 on regression")
	fresh := flag.String("fresh", "", "fresh benchjson output to gate (required with -gate)")
	nsThreshold := flag.Float64("ns-threshold", 400, "max allowed ns/op growth over baseline, percent")
	accEpsilon := flag.Float64("acc-epsilon", 1e-6, "max allowed absolute acc@k movement")
	flag.Parse()
	if err := run(os.Stdout, *dir, *out, *format, *gate, *fresh, *nsThreshold, *accEpsilon); err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, dir, outPath, format string, gate bool, freshPath string, nsThreshold, accEpsilon float64) error {
	if format != "md" && format != "text" {
		return fmt.Errorf("unknown -format %q (want md or text)", format)
	}
	bases, err := loadBaselines(dir)
	if err != nil {
		return err
	}
	var report strings.Builder
	writeTrend(&report, bases, format == "md")

	var violations []string
	if gate {
		if freshPath == "" {
			return fmt.Errorf("-gate requires -fresh")
		}
		var freshDoc benchFile
		if err := readJSON(freshPath, &freshDoc); err != nil {
			return err
		}
		newest := bases[len(bases)-1]
		violations, err = gateRun(freshDoc, newest, nsThreshold, accEpsilon)
		if err != nil {
			return err
		}
		writeGateSection(&report, newest, freshPath, violations, format == "md")
	}

	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(report.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchtrend: wrote report to %s\n", outPath)
	} else {
		fmt.Fprint(stdout, report.String())
	}
	if len(violations) > 0 {
		return fmt.Errorf("gate failed with %d regression(s):\n  %s",
			len(violations), strings.Join(violations, "\n  "))
	}
	if gate {
		fmt.Fprintf(stdout, "benchtrend: gate passed against %s\n", filepath.Base(newestPath(bases)))
	}
	return nil
}

func newestPath(bases []baseline) string { return bases[len(bases)-1].Path }

var prFromName = regexp.MustCompile(`^BENCH_pr(\d+)\.json$`)

// loadBaselines parses every BENCH_pr*.json in dir and orders them by PR.
// Files stamped with benchjson's `pr` field are ordered structurally;
// the seven pre-stamp files fall back to the filename ordinal.
func loadBaselines(dir string) ([]baseline, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_pr*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no BENCH_pr*.json baselines in %s", dir)
	}
	bases := make([]baseline, 0, len(paths))
	for _, path := range paths {
		var doc benchFile
		if err := readJSON(path, &doc); err != nil {
			return nil, err
		}
		pr := doc.PR
		if pr <= 0 {
			m := prFromName.FindStringSubmatch(filepath.Base(path))
			if m == nil {
				return nil, fmt.Errorf("%s: no pr field and filename does not match BENCH_pr<N>.json", path)
			}
			pr, _ = strconv.Atoi(m[1])
		}
		bases = append(bases, baseline{Path: path, PR: pr, File: doc})
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i].PR < bases[j].PR })
	for i := 1; i < len(bases); i++ {
		if bases[i].PR == bases[i-1].PR {
			return nil, fmt.Errorf("duplicate PR ordinal %d: %s and %s", bases[i].PR, bases[i-1].Path, bases[i].Path)
		}
	}
	return bases, nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// --- trend report -----------------------------------------------------------

// cell extractors: each section of the report maps (benchmark result) to an
// optional value. A benchmark absent from a PR renders as a dot.
type section struct {
	Title string
	Get   func(r result) (float64, bool)
	Fmt   func(v float64) string
}

func writeTrend(w *strings.Builder, bases []baseline, md bool) {
	if md {
		fmt.Fprintf(w, "# Benchmark trend\n\n")
	} else {
		fmt.Fprintf(w, "BENCHMARK TREND\n\n")
	}
	fmt.Fprintf(w, "%d baselines, PR %d..%d.", len(bases), bases[0].PR, bases[len(bases)-1].PR)
	newest := bases[len(bases)-1].File
	if newest.CPU != "" {
		fmt.Fprintf(w, " Newest: %s, %s, GOMAXPROCS=%d/%d.", newest.Go, newest.CPU, newest.GOMAXPROCS, newest.NumCPU)
	}
	fmt.Fprint(w, "\n\n")

	sections := []section{
		{"ns/op", func(r result) (float64, bool) { return r.NsPerOp, r.NsPerOp > 0 }, fmtNum},
		{"B/op", func(r result) (float64, bool) { return r.BytesOp, r.BytesOp > 0 }, fmtNum},
		{"allocs/op", func(r result) (float64, bool) {
			if r.AllocsOp == nil {
				return 0, false
			}
			return *r.AllocsOp, true
		}, fmtNum},
	}
	for _, s := range sections {
		writeSection(w, bases, s, md)
	}
	writeMetricSection(w, bases, md)
}

// writeSection renders one value (ns/op, B/op, allocs/op) for every
// benchmark that reports it, one column per PR.
func writeSection(w *strings.Builder, bases []baseline, s section, md bool) {
	keys := map[string]bool{}
	for _, b := range bases {
		for k, r := range b.File.Benchmarks {
			if _, ok := s.Get(r); ok {
				keys[k] = true
			}
		}
	}
	if len(keys) == 0 {
		return
	}
	rows := make([][]string, 0, len(keys))
	for _, key := range sortedKeys(keys) {
		row := []string{shortKey(key)}
		for _, b := range bases {
			row = append(row, cellFor(b, key, s))
		}
		rows = append(rows, row)
	}
	writeTable(w, s.Title, headerRow(bases), rows, md)
}

// writeMetricSection renders every custom b.ReportMetric unit — acc@k,
// ms/bundle, stage-*-ms, throughput counters — as "benchmark · unit" rows.
func writeMetricSection(w *strings.Builder, bases []baseline, md bool) {
	type mkey struct{ bench, unit string }
	keys := map[mkey]bool{}
	for _, b := range bases {
		for k, r := range b.File.Benchmarks {
			for unit := range r.Metrics {
				keys[mkey{k, unit}] = true
			}
		}
	}
	if len(keys) == 0 {
		return
	}
	ordered := make([]mkey, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].bench != ordered[j].bench {
			return ordered[i].bench < ordered[j].bench
		}
		return ordered[i].unit < ordered[j].unit
	})
	rows := make([][]string, 0, len(ordered))
	for _, k := range ordered {
		row := []string{shortKey(k.bench) + " " + k.unit}
		for _, b := range bases {
			cell := "·"
			if r, ok := b.File.Benchmarks[k.bench]; ok {
				if v, ok := r.Metrics[k.unit]; ok {
					cell = fmtNum(v)
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	writeTable(w, "reported metrics", headerRow(bases), rows, md)
}

func cellFor(b baseline, key string, s section) string {
	r, ok := b.File.Benchmarks[key]
	if !ok {
		return "·"
	}
	v, ok := s.Get(r)
	if !ok {
		return "·"
	}
	return s.Fmt(v)
}

func headerRow(bases []baseline) []string {
	h := []string{"benchmark"}
	for _, b := range bases {
		h = append(h, fmt.Sprintf("pr%d", b.PR))
	}
	return h
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// shortKey drops the module prefix: repro/internal/reldb/BenchmarkInsert
// becomes internal/reldb/BenchmarkInsert, root benchmarks keep their name.
func shortKey(key string) string {
	key = strings.TrimPrefix(key, "repro/")
	return key
}

// fmtNum renders values compactly: integers bare, large numbers with few
// decimals, small fractions with enough precision to see acc@k movement.
func fmtNum(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case math.Abs(v) >= 100:
		return strconv.FormatFloat(v, 'f', 1, 64)
	case math.Abs(v) >= 1:
		return strconv.FormatFloat(v, 'f', 2, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

func writeTable(w *strings.Builder, title string, header []string, rows [][]string, md bool) {
	if md {
		fmt.Fprintf(w, "## %s\n\n", title)
		fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | "))
		seps := make([]string, len(header))
		for i := range seps {
			seps[i] = "---"
			if i > 0 {
				seps[i] = "---:"
			}
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
		for _, row := range rows {
			fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
		}
		fmt.Fprint(w, "\n")
		return
	}
	fmt.Fprintf(w, "%s\n", strings.ToUpper(title))
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
	fmt.Fprint(w, "\n")
}

// --- regression gate --------------------------------------------------------

// gateRun compares a fresh run against the newest committed baseline.
// Only benchmarks present in BOTH are judged (benchmarks come and go
// across PRs); an empty intersection is an error, not a pass — a gate
// that compared nothing would green-light anything.
func gateRun(fresh benchFile, base baseline, nsThresholdPct, accEpsilon float64) ([]string, error) {
	shared := make([]string, 0, len(fresh.Benchmarks))
	for key := range fresh.Benchmarks {
		if _, ok := base.File.Benchmarks[key]; ok {
			shared = append(shared, key)
		}
	}
	if len(shared) == 0 {
		return nil, fmt.Errorf("gate is vacuous: no benchmark shared between fresh run and %s", base.Path)
	}
	sort.Strings(shared)
	var violations []string
	for _, key := range shared {
		f, b := fresh.Benchmarks[key], base.File.Benchmarks[key]
		// allocs/op growth is a hard failure: allocation counts are
		// deterministic per build, so any increase is a real change.
		if f.AllocsOp != nil && b.AllocsOp != nil && *f.AllocsOp > *b.AllocsOp {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op grew %g -> %g", shortKey(key), *b.AllocsOp, *f.AllocsOp))
		}
		// acc@k drift is a hard failure beyond epsilon: the evaluation is
		// bit-identical by contract, so accuracy moving means the model
		// changed, not the machine.
		for unit, bv := range b.Metrics {
			if !strings.Contains(unit, "acc@") {
				continue
			}
			if fv, ok := f.Metrics[unit]; ok && math.Abs(fv-bv) > accEpsilon {
				violations = append(violations, fmt.Sprintf(
					"%s: %s drifted %g -> %g (|Δ| > %g)", shortKey(key), unit, bv, fv, accEpsilon))
			}
		}
		// ns/op is machine-dependent; only order-of-magnitude growth fails.
		if b.NsPerOp > 0 && f.NsPerOp > 0 {
			limit := b.NsPerOp * (1 + nsThresholdPct/100)
			if f.NsPerOp > limit {
				violations = append(violations, fmt.Sprintf(
					"%s: ns/op grew %s -> %s (limit %s at +%g%%)",
					shortKey(key), fmtNum(b.NsPerOp), fmtNum(f.NsPerOp), fmtNum(limit), nsThresholdPct))
			}
		}
	}
	return violations, nil
}

func writeGateSection(w *strings.Builder, base baseline, freshPath string, violations []string, md bool) {
	if md {
		fmt.Fprint(w, "## gate\n\n")
	} else {
		fmt.Fprint(w, "GATE\n")
	}
	fmt.Fprintf(w, "Fresh run %s vs baseline %s (pr%d): ", filepath.Base(freshPath), filepath.Base(base.Path), base.PR)
	if len(violations) == 0 {
		fmt.Fprint(w, "PASS\n")
		return
	}
	fmt.Fprintf(w, "FAIL (%d regressions)\n\n", len(violations))
	for _, v := range violations {
		fmt.Fprintf(w, "- %s\n", v)
	}
}
