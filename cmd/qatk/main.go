// Command qatk drives the Quality Analytics Toolkit over a database
// directory produced by cmd/datagen:
//
//	qatk -data ./data train                   build + persist the knowledge base
//	qatk -data ./data classify                classify pending bundles, store suggestions
//	qatk -data ./data recommend -ref R000042  print the ranked codes for one bundle
//	qatk -data ./data sql "SELECT COUNT(*) FROM bundles"
//	qatk -data ./data export                  dump bundles as TSV interchange files
//	qatk -data ./data import                  load bundles from TSV interchange files
//
// Flags -model (concepts|words) and -sim (jaccard|overlap) select the
// classifier variant; the default is the industrial configuration of the
// paper: bag-of-concepts with Jaccard similarity.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/qatk"
	"repro/internal/reldb"
	"repro/internal/taxonomy"
)

func main() {
	data := flag.String("data", "data", "data directory (from cmd/datagen)")
	model := flag.String("model", "concepts", "feature model: concepts | words")
	sim := flag.String("sim", "jaccard", "similarity: jaccard | overlap")
	ref := flag.String("ref", "", "bundle reference number (for recommend)")
	errorBudget := flag.Int("error-budget", 25, "consecutive bundle failures tolerated before train aborts (0 = abort on first failure)")
	dbSync := flag.String("db-sync", "always", "WAL durability: always | interval | never")
	flag.Parse()

	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*data, *model, *sim, *ref, *dbSync, *errorBudget, flag.Arg(0), flag.Args()[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qatk:", err)
		os.Exit(1)
	}
}

func run(data, model, sim, ref, dbSync string, errorBudget int, cmd string, rest []string) error {
	sync, err := reldb.ParseSyncPolicy(dbSync)
	if err != nil {
		return err
	}
	db, err := reldb.OpenWith(filepath.Join(data, "db"), reldb.Options{Sync: sync})
	if err != nil {
		return err
	}
	defer db.Close()

	if cmd == "sql" {
		if len(rest) != 1 {
			return fmt.Errorf("usage: qatk sql <statement>")
		}
		res, n, err := db.Exec(rest[0])
		if err != nil {
			return err
		}
		if res == nil {
			fmt.Printf("%d rows affected\n", n)
			return nil
		}
		for _, c := range res.Cols {
			fmt.Printf("%v\t", c)
		}
		fmt.Println()
		for _, row := range res.Rows {
			for _, v := range row {
				fmt.Printf("%v\t", v)
			}
			fmt.Println()
		}
		return nil
	}

	tax, err := taxonomy.LoadFile(filepath.Join(data, "taxonomy.xml"))
	if err != nil {
		return err
	}
	opts := []qatk.Option{}
	switch model {
	case "concepts":
		opts = append(opts, qatk.WithModel(kb.BagOfConcepts))
	case "words":
		opts = append(opts, qatk.WithModel(kb.BagOfWords))
	default:
		return fmt.Errorf("unknown model %q", model)
	}
	switch sim {
	case "jaccard":
		opts = append(opts, qatk.WithSimilarity(core.Jaccard{}))
	case "overlap":
		opts = append(opts, qatk.WithSimilarity(core.Overlap{}))
	default:
		return fmt.Errorf("unknown similarity %q", sim)
	}
	tk := qatk.New(tax, opts...)

	bundles, err := bundle.LoadAll(db)
	if err != nil {
		return err
	}
	assigned := make([]*bundle.Bundle, 0, len(bundles))
	for _, b := range bundles {
		if b.ErrorCode != "" {
			assigned = append(assigned, b)
		}
	}
	assigned = bundle.FilterMultiOccurrence(assigned)

	switch cmd {
	case "train":
		// Fault-isolated training over messy collections: a malformed
		// bundle is reported and skipped; only a run of consecutive
		// failures (a systemic fault) aborts. The run is fully observed:
		// dead letters come out as structured log lines, engine timings as
		// trace spans aggregated into the closing report.
		tracer := obs.NewTracer(256)
		cfg := pipeline.RunConfig{
			ErrorBudget: errorBudget,
			Tracer:      tracer,
			Logger:      obs.NewLogger(os.Stderr, obs.LevelInfo),
		}
		if errorBudget > 0 {
			cfg.DeadLetter = func(pipeline.DeadLetter) error { return nil }
		}
		mem, stats, err := tk.TrainRun(assigned, cfg)
		if err != nil {
			return err
		}
		if err := tk.PersistKB(db, mem); err != nil {
			return err
		}
		fmt.Printf("knowledge base: %d nodes from %d bundles (%d distinct codes)\n",
			mem.NodeCount(), mem.BundleCount(), mem.DistinctCodes())
		fmt.Printf("collection run: %s\n", stats)
		pipeline.PrintSpanReport(os.Stdout, tracer.Stats())
		return db.Checkpoint()
	case "classify":
		store, err := kb.OpenDB(db)
		if err != nil {
			return fmt.Errorf("open knowledge base (run train first): %w", err)
		}
		n, err := tk.ClassifyAndPersist(db, store, bundles)
		if err != nil {
			return err
		}
		fmt.Printf("classified %d pending bundles\n", n)
		return db.Checkpoint()
	case "recommend":
		if ref == "" && len(rest) > 0 {
			// Accept `qatk recommend -ref R…` (flags after the subcommand).
			fs := flag.NewFlagSet("recommend", flag.ContinueOnError)
			fs.StringVar(&ref, "ref", "", "bundle reference number")
			if err := fs.Parse(rest); err != nil {
				return err
			}
		}
		if ref == "" {
			return fmt.Errorf("recommend needs -ref")
		}
		b, err := bundle.Load(db, ref)
		if err != nil {
			return err
		}
		store, err := kb.OpenDB(db)
		if err != nil {
			return fmt.Errorf("open knowledge base (run train first): %w", err)
		}
		list, err := tk.Recommend(store, b)
		if err != nil {
			return err
		}
		fmt.Printf("bundle %s (part %s):\n", b.RefNo, b.PartID)
		for i, sc := range list {
			marker := ""
			if sc.Code == b.ErrorCode {
				marker = "  <- assigned code"
			}
			fmt.Printf("%3d. %-8s %.4f%s\n", i+1, sc.Code, sc.Score, marker)
		}
		return nil
	case "export":
		// Dump the bundle data as the two-file TSV interchange format.
		bf, err := os.Create(filepath.Join(data, "bundles.tsv"))
		if err != nil {
			return err
		}
		rf, err := os.Create(filepath.Join(data, "reports.tsv"))
		if err != nil {
			bf.Close()
			return err
		}
		if err := bundle.WriteTSV(bf, rf, bundles); err != nil {
			bf.Close()
			rf.Close()
			return err
		}
		if err := bf.Close(); err != nil {
			return err
		}
		if err := rf.Close(); err != nil {
			return err
		}
		fmt.Printf("exported %d bundles to %s/{bundles,reports}.tsv\n", len(bundles), data)
		return nil
	case "import":
		// Load additional bundles from the TSV interchange files.
		bf, err := os.Open(filepath.Join(data, "bundles.tsv"))
		if err != nil {
			return err
		}
		defer bf.Close()
		rf, err := os.Open(filepath.Join(data, "reports.tsv"))
		if err != nil {
			return err
		}
		defer rf.Close()
		imported, err := bundle.ReadTSV(bf, rf)
		if err != nil {
			return err
		}
		n := 0
		for _, b := range imported {
			if err := bundle.Store(db, b); err != nil {
				fmt.Fprintf(os.Stderr, "skipping %s: %v\n", b.RefNo, err)
				continue
			}
			n++
		}
		fmt.Printf("imported %d of %d bundles\n", n, len(imported))
		return db.Checkpoint()
	case "evaluate":
		// Stratified 5-fold CV of the selected variant over the assigned
		// bundles, exactly the §5.1 protocol.
		e := eval.New(tax, assigned)
		var simObj core.Similarity = core.Jaccard{}
		if sim == "overlap" {
			simObj = core.Overlap{}
		}
		modelObj := kb.BagOfConcepts
		if model == "words" {
			modelObj = kb.BagOfWords
		}
		res, err := e.Run(eval.Variant{
			Name:  fmt.Sprintf("bag-of-%s + %s", model, sim),
			Model: modelObj, Sim: simObj,
		})
		if err != nil {
			return err
		}
		freq := e.RunFrequencyBaseline()
		eval.PrintTable(os.Stdout, "5-fold cross-validation", []*eval.Result{res, freq}, nil)
		fmt.Printf("\nclassification: %.2f ms/bundle, %d knowledge nodes/fold\n",
			1000*res.SecPerBundle, res.KBNodes)
		return nil
	default:
		return fmt.Errorf("unknown command %q (train | classify | recommend | evaluate | export | import | sql)", cmd)
	}
}
