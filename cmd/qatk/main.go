// Command qatk drives the Quality Analytics Toolkit over a database
// directory produced by cmd/datagen:
//
//	qatk -data ./data train                   build + persist the knowledge base
//	qatk -data ./data classify                classify pending bundles, store suggestions
//	qatk -data ./data recommend -ref R000042  print the ranked codes for one bundle
//	qatk -data ./data sql "SELECT COUNT(*) FROM bundles"
//	qatk -data ./data export                  dump bundles as TSV interchange files
//	qatk -data ./data import                  load bundles from TSV interchange files
//	qatk diagnose <bundle>                    render a flight-recorder bundle as an incident report
//	qatk requests <url|bundle>                render the tail-sampled wide-event request log
//	qatk prof <url|bundle>                    render the continuous-profiler ring (top frames, heap deltas, goroutine growth)
//
// Flags -model (concepts|words) and -sim (jaccard|overlap) select the
// classifier variant; the default is the industrial configuration of the
// paper: bag-of-concepts with Jaccard similarity.
//
// Observability: structured key=value logs go to stderr (tune with
// -log-level, redirect with -log-file), and -flight-dir arms the same
// black-box flight recorder questd carries: a tripped circuit breaker
// during train, a stalled pipeline or cross-validation fold, a latched
// reldb fsync failure, or a goroutine spike snapshots a diagnostic
// bundle that `qatk diagnose` (or `qatk diagnose -v`, verbose) turns
// into a readable incident report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/prof"
	"repro/internal/obs/reqlog"
	"repro/internal/pipeline"
	"repro/internal/qatk"
	"repro/internal/reldb"
	"repro/internal/taxonomy"
)

// options collects the parsed qatk flags.
type options struct {
	data, model, sim, ref string
	dbSync                string
	errorBudget           int
	logLevel, logFile     string
	flightDir             string
	sloP99                time.Duration
	stallDeadline         time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.data, "data", "data", "data directory (from cmd/datagen)")
	flag.StringVar(&o.model, "model", "concepts", "feature model: concepts | words")
	flag.StringVar(&o.sim, "sim", "jaccard", "similarity: jaccard | overlap")
	flag.StringVar(&o.ref, "ref", "", "bundle reference number (for recommend)")
	flag.IntVar(&o.errorBudget, "error-budget", 25, "consecutive bundle failures tolerated before train aborts (0 = abort on first failure)")
	flag.StringVar(&o.dbSync, "db-sync", "always", "WAL durability: always | interval | never")
	flag.StringVar(&o.logLevel, "log-level", "info", "log severity: debug | info | warn | error")
	flag.StringVar(&o.logFile, "log-file", "", "log destination file (empty = stderr); appended, never truncated")
	flag.StringVar(&o.flightDir, "flight-dir", "", "flight-recorder bundle directory (empty disables persistence)")
	flag.DurationVar(&o.sloP99, "slo-p99", 0, "p99 latency budget for the SLO watchdog (0 disables it)")
	flag.DurationVar(&o.stallDeadline, "stall-deadline", flight.DefaultStallDeadline, "heartbeat deadline before the stall trigger fires")
	flag.Parse()

	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd, rest := flag.Arg(0), flag.Args()[1:]
	var err error
	if cmd == "diagnose" {
		// Reads a bundle from disk; needs no database, logger, or live
		// recorder, so it must work even when -data points nowhere.
		err = diagnose(rest)
	} else if cmd == "requests" {
		// Reads the wide-event request log from a live questd or a frozen
		// flight bundle; like diagnose it needs no database.
		err = requests(rest)
	} else if cmd == "prof" {
		// Reads the continuous-profiler ring from a live questd or a
		// frozen flight bundle; like diagnose it needs no database.
		err = profCmd(rest)
	} else {
		err = run(o, cmd, rest)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qatk:", err)
		os.Exit(1)
	}
}

// diagnose implements `qatk diagnose [-v] <bundle>`: it accepts either a
// bundle directory or a single-file JSON export (as served by questd's
// /debug/bundle) and pretty-prints the incident report.
func diagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ContinueOnError)
	verbose := fs.Bool("v", false, "full metric movement, span list, log tail, and goroutine dump")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: qatk diagnose [-v] <bundle dir or .json>")
	}
	b, err := flight.ReadBundle(fs.Arg(0))
	if err != nil {
		return err
	}
	return flight.WriteReport(os.Stdout, b, *verbose)
}

// requests implements `qatk requests [-reason r] [-n N] <url|bundle>`:
// it renders the tail-sampled wide-event request log, fetched either
// live from a questd debug listener (any http(s) URL; /debug/requests is
// appended when missing) or from a frozen flight-recorder bundle
// (directory or single-file JSON export).
func requests(args []string) error {
	fs := flag.NewFlagSet("requests", flag.ContinueOnError)
	reason := fs.String("reason", "", "only events retained for this reason (slow | degraded | hedged | status | panic | breaker | always | head_sample)")
	n := fs.Int("n", 0, "at most N newest events (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: qatk requests [-reason r] [-n N] <url or flight bundle>")
	}
	arg := fs.Arg(0)
	var events []reqlog.Event
	if strings.HasPrefix(arg, "http://") || strings.HasPrefix(arg, "https://") {
		target := strings.TrimRight(arg, "/")
		if !strings.HasSuffix(target, "/debug/requests") {
			target += "/debug/requests"
		}
		q := url.Values{}
		if *reason != "" {
			q.Set("reason", *reason)
		}
		if *n > 0 {
			q.Set("n", strconv.Itoa(*n))
		}
		if enc := q.Encode(); enc != "" {
			target += "?" + enc
		}
		resp, err := http.Get(target)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("requests: %s answered %s", target, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
			return fmt.Errorf("requests: decode %s: %w", target, err)
		}
	} else {
		b, err := flight.ReadBundle(arg)
		if err != nil {
			return err
		}
		events = b.Requests
		if *reason != "" {
			events = reqlog.FilterByReason(events, *reason)
		}
		if *n > 0 && *n < len(events) {
			events = events[:*n]
		}
	}
	return reqlog.WriteReport(os.Stdout, events)
}

// profCmd implements `qatk prof [-v] [-cpu out.pprof] <url|bundle>`: it
// renders the continuous-profiler capture — goroutine growth across the
// ring, heap deltas between the newest snapshots, and top frames per
// profile — fetched either live from a questd debug listener (any
// http(s) URL; /debug/prof is appended when missing) or from a frozen
// flight-recorder bundle's profiles section. -cpu extracts the raw
// gzipped pprof CPU profile (the breach window when present, otherwise
// the newest ring snapshot) for `go tool pprof`.
func profCmd(args []string) error {
	fs := flag.NewFlagSet("prof", flag.ContinueOnError)
	verbose := fs.Bool("v", false, "include the full ring history")
	cpuOut := fs.String("cpu", "", "write the raw CPU pprof profile to this file (live URLs also capture a fresh window)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: qatk prof [-v] [-cpu out.pprof] <url or flight bundle>")
	}
	arg := fs.Arg(0)
	var capture *prof.Capture
	if strings.HasPrefix(arg, "http://") || strings.HasPrefix(arg, "https://") {
		target := strings.TrimRight(arg, "/")
		if !strings.HasSuffix(target, "/debug/prof") {
			target += "/debug/prof"
		}
		if *cpuOut != "" {
			// Ask the sampler for a fresh breach-window CPU capture so the
			// extracted profile covers "now", not the last sampling tick.
			target += "?cpu=1"
		}
		resp, err := http.Get(target)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("prof: %s answered %s", target, resp.Status)
		}
		capture = &prof.Capture{}
		if err := json.NewDecoder(resp.Body).Decode(capture); err != nil {
			return fmt.Errorf("prof: decode %s: %w", target, err)
		}
	} else {
		b, err := flight.ReadBundle(arg)
		if err != nil {
			return err
		}
		if b.Profiles == nil {
			return fmt.Errorf("prof: bundle %s has no profiles section (captured before PR 10, or the profiler was disabled)", arg)
		}
		capture = b.Profiles
	}
	if *cpuOut != "" {
		raw := capture.BreachCPU
		if len(raw) == 0 && len(capture.Ring) > 0 {
			raw = capture.Ring[len(capture.Ring)-1].CPUPprof
		}
		if len(raw) == 0 {
			return fmt.Errorf("prof: capture carries no CPU profile to extract")
		}
		if err := os.WriteFile(*cpuOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d-byte CPU profile to %s (inspect with `go tool pprof %s`)\n", len(raw), *cpuOut, *cpuOut)
	}
	return prof.WriteReport(os.Stdout, capture, *verbose)
}

func run(o options, cmd string, rest []string) error {
	logger, sink, closeLogs, err := flight.NewLogging(o.logLevel, o.logFile)
	if err != nil {
		return err
	}
	defer closeLogs()
	metrics := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	tracer.Instrument(metrics.Counter(obs.MetricSpanNamesDroppedTotal))
	pipeline.RegisterMetrics(metrics)

	recorder := flight.New(flight.Config{
		Dir:           o.flightDir,
		Registry:      metrics,
		Tracer:        tracer,
		Logs:          sink,
		Logger:        logger,
		SLOTarget:     o.sloP99,
		StallDeadline: o.stallDeadline,
	})
	defer recorder.Close()
	recorder.Watch(time.Second)

	sync, err := reldb.ParseSyncPolicy(o.dbSync)
	if err != nil {
		return err
	}
	db, err := reldb.OpenWith(filepath.Join(o.data, "db"), reldb.Options{Sync: sync})
	if err != nil {
		return err
	}
	defer db.Close()
	db.Instrument(logger, metrics)
	db.WithFlight(recorder)

	if cmd == "sql" {
		if len(rest) != 1 {
			return fmt.Errorf("usage: qatk sql <statement>")
		}
		res, n, err := db.Exec(rest[0])
		if err != nil {
			return err
		}
		if res == nil {
			fmt.Printf("%d rows affected\n", n)
			return nil
		}
		for _, c := range res.Cols {
			fmt.Printf("%v\t", c)
		}
		fmt.Println()
		for _, row := range res.Rows {
			for _, v := range row {
				fmt.Printf("%v\t", v)
			}
			fmt.Println()
		}
		return nil
	}

	tax, err := taxonomy.LoadFile(filepath.Join(o.data, "taxonomy.xml"))
	if err != nil {
		return err
	}
	opts := []qatk.Option{}
	switch o.model {
	case "concepts":
		opts = append(opts, qatk.WithModel(kb.BagOfConcepts))
	case "words":
		opts = append(opts, qatk.WithModel(kb.BagOfWords))
	default:
		return fmt.Errorf("unknown model %q", o.model)
	}
	switch o.sim {
	case "jaccard":
		opts = append(opts, qatk.WithSimilarity(core.Jaccard{}))
	case "overlap":
		opts = append(opts, qatk.WithSimilarity(core.Overlap{}))
	default:
		return fmt.Errorf("unknown similarity %q", o.sim)
	}
	tk := qatk.New(tax, opts...)

	bundles, err := bundle.LoadAll(db)
	if err != nil {
		return err
	}
	assigned := make([]*bundle.Bundle, 0, len(bundles))
	for _, b := range bundles {
		if b.ErrorCode != "" {
			assigned = append(assigned, b)
		}
	}
	assigned = bundle.FilterMultiOccurrence(assigned)

	switch cmd {
	case "train":
		// Fault-isolated training over messy collections: a malformed
		// bundle is reported and skipped; only a run of consecutive
		// failures (a systemic fault) aborts. The run is fully observed:
		// dead letters come out as structured log lines, engine timings as
		// trace spans aggregated into the closing report, and the flight
		// recorder snapshots a bundle if the breaker trips or the run
		// stalls past -stall-deadline.
		cfg := pipeline.RunConfig{
			ErrorBudget: o.errorBudget,
			Metrics:     metrics,
			Tracer:      tracer,
			Logger:      logger,
			Flight:      recorder,
		}
		if o.errorBudget > 0 {
			cfg.DeadLetter = func(pipeline.DeadLetter) error { return nil }
		}
		mem, stats, err := tk.TrainRun(context.Background(), assigned, cfg)
		if err != nil {
			return err
		}
		if err := tk.PersistKB(db, mem); err != nil {
			return err
		}
		fmt.Printf("knowledge base: %d nodes from %d bundles (%d distinct codes)\n",
			mem.NodeCount(), mem.BundleCount(), mem.DistinctCodes())
		fmt.Printf("collection run: %s\n", stats)
		pipeline.PrintSpanReport(os.Stdout, tracer.Stats())
		return db.Checkpoint()
	case "classify":
		store, err := kb.OpenDB(db)
		if err != nil {
			return fmt.Errorf("open knowledge base (run train first): %w", err)
		}
		n, err := tk.ClassifyAndPersist(db, store, bundles)
		if err != nil {
			return err
		}
		fmt.Printf("classified %d pending bundles\n", n)
		return db.Checkpoint()
	case "recommend":
		ref := o.ref
		if ref == "" && len(rest) > 0 {
			// Accept `qatk recommend -ref R…` (flags after the subcommand).
			fs := flag.NewFlagSet("recommend", flag.ContinueOnError)
			fs.StringVar(&ref, "ref", "", "bundle reference number")
			if err := fs.Parse(rest); err != nil {
				return err
			}
		}
		if ref == "" {
			return fmt.Errorf("recommend needs -ref")
		}
		b, err := bundle.Load(db, ref)
		if err != nil {
			return err
		}
		store, err := kb.OpenDB(db)
		if err != nil {
			return fmt.Errorf("open knowledge base (run train first): %w", err)
		}
		list, err := tk.Recommend(store, b)
		if err != nil {
			return err
		}
		fmt.Printf("bundle %s (part %s):\n", b.RefNo, b.PartID)
		for i, sc := range list {
			marker := ""
			if sc.Code == b.ErrorCode {
				marker = "  <- assigned code"
			}
			fmt.Printf("%3d. %-8s %.4f%s\n", i+1, sc.Code, sc.Score, marker)
		}
		return nil
	case "export":
		// Dump the bundle data as the two-file TSV interchange format.
		bf, err := os.Create(filepath.Join(o.data, "bundles.tsv"))
		if err != nil {
			return err
		}
		rf, err := os.Create(filepath.Join(o.data, "reports.tsv"))
		if err != nil {
			bf.Close()
			return err
		}
		if err := bundle.WriteTSV(bf, rf, bundles); err != nil {
			bf.Close()
			rf.Close()
			return err
		}
		if err := bf.Close(); err != nil {
			return err
		}
		if err := rf.Close(); err != nil {
			return err
		}
		fmt.Printf("exported %d bundles to %s/{bundles,reports}.tsv\n", len(bundles), o.data)
		return nil
	case "import":
		// Load additional bundles from the TSV interchange files.
		bf, err := os.Open(filepath.Join(o.data, "bundles.tsv"))
		if err != nil {
			return err
		}
		defer bf.Close()
		rf, err := os.Open(filepath.Join(o.data, "reports.tsv"))
		if err != nil {
			return err
		}
		defer rf.Close()
		imported, err := bundle.ReadTSV(bf, rf)
		if err != nil {
			return err
		}
		n := 0
		for _, b := range imported {
			if err := bundle.Store(db, b); err != nil {
				fmt.Fprintf(os.Stderr, "skipping %s: %v\n", b.RefNo, err)
				continue
			}
			n++
		}
		fmt.Printf("imported %d of %d bundles\n", n, len(imported))
		return db.Checkpoint()
	case "evaluate":
		// Stratified 5-fold CV of the selected variant over the assigned
		// bundles, exactly the §5.1 protocol. Each fold heartbeats the
		// flight recorder's stall guard.
		e := eval.New(tax, assigned)
		e.Tracer = tracer
		e.Flight = recorder
		var simObj core.Similarity = core.Jaccard{}
		if o.sim == "overlap" {
			simObj = core.Overlap{}
		}
		modelObj := kb.BagOfConcepts
		if o.model == "words" {
			modelObj = kb.BagOfWords
		}
		res, err := e.Run(eval.Variant{
			Name:  fmt.Sprintf("bag-of-%s + %s", o.model, o.sim),
			Model: modelObj, Sim: simObj,
		})
		if err != nil {
			return err
		}
		freq := e.RunFrequencyBaseline()
		eval.PrintTable(os.Stdout, "5-fold cross-validation", []*eval.Result{res, freq}, nil)
		fmt.Printf("\nclassification: %.2f ms/bundle, %d knowledge nodes/fold\n",
			1000*res.SecPerBundle, res.KBNodes)
		return nil
	default:
		return fmt.Errorf("unknown command %q (train | classify | recommend | evaluate | export | import | sql | diagnose | requests | prof)", cmd)
	}
}
