// Command datagen materializes the synthetic corpus into a durable QATK
// database directory plus the taxonomy XML and an ODI-style complaints
// flat file:
//
//	datagen -out ./data [-small] [-seed 1] [-complaints 2500]
//
// The directory then serves cmd/qatk and cmd/questd.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/nhtsa"
	"repro/internal/quest"
	"repro/internal/reldb"
)

func main() {
	out := flag.String("out", "data", "output directory")
	small := flag.Bool("small", false, "generate the small test corpus")
	seed := flag.Int64("seed", 1, "generation seed")
	complaints := flag.Int("complaints", 2500, "number of ODI-style complaints")
	dbSync := flag.String("db-sync", "never", "WAL durability: always | interval | never (bulk load is regenerable, and the final checkpoint syncs)")
	flag.Parse()

	if err := run(*out, *small, *seed, *complaints, *dbSync); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out string, small bool, seed int64, complaints int, dbSync string) error {
	cfg := datagen.DefaultConfig()
	if small {
		cfg = datagen.SmallConfig()
	}
	cfg.Seed = seed
	fmt.Fprintf(os.Stderr, "generating %d bundles (seed %d)...\n", cfg.Bundles, seed)
	corpus, err := datagen.Generate(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	// Taxonomy XML.
	taxPath := filepath.Join(out, "taxonomy.xml")
	if err := corpus.Taxonomy.SaveFile(taxPath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d concepts)\n", taxPath, corpus.Taxonomy.Len())

	// Relational database with bundles, QUEST catalog and users.
	dbDir := filepath.Join(out, "db")
	sync, err := reldb.ParseSyncPolicy(dbSync)
	if err != nil {
		return err
	}
	db, err := reldb.OpenWith(dbDir, reldb.Options{Sync: sync})
	if err != nil {
		return err
	}
	defer db.Close()
	for _, create := range []func(*reldb.DB) error{
		bundle.CreateTables, core.CreateResultsTable,
		quest.CreateUserTables, quest.CreateCatalogTables,
		quest.CreateAuditTables, nhtsa.CreateTables,
	} {
		if err := create(db); err != nil {
			return err
		}
	}
	// Every 20th bundle is stored as pending: no final error code yet, and
	// consequently no final OEM report and no error-code description — the
	// application-phase state the QUEST suggestion screen works on (§3.2).
	for i, b := range corpus.Bundles {
		if i%20 == 7 {
			pending := *b
			pending.ErrorCode = ""
			pending.Reports = nil
			for _, r := range b.Reports {
				if r.Source == bundle.SourceFinalOEM || r.Source == bundle.SourceErrorDesc {
					continue
				}
				pending.Reports = append(pending.Reports, r)
			}
			corpus.Bundles[i] = &pending
		}
	}
	if err := bundle.StoreAll(db, corpus.Bundles); err != nil {
		return err
	}
	for _, spec := range corpus.SortedCodes() {
		if err := quest.AddCode(db, quest.CatalogEntry{
			Code: spec.Code, PartID: spec.PartID,
			Description: fmt.Sprintf("standardized description of %s", spec.Code),
		}); err != nil {
			return err
		}
	}
	if _, err := quest.AddUser(db, "admin", quest.RoleAdmin); err != nil {
		return err
	}
	if _, err := quest.AddUser(db, "expert", quest.RoleExpert); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bundles)\n", dbDir, len(corpus.Bundles))

	// ODI-style complaints: flat file plus relational import.
	gcfg := nhtsa.DefaultGenerateConfig()
	gcfg.Complaints = complaints
	gcfg.Seed = seed + 1
	odi := nhtsa.Generate(gcfg, corpus)
	flatPath := filepath.Join(out, "odi_complaints.tsv")
	f, err := os.Create(flatPath)
	if err != nil {
		return err
	}
	if err := nhtsa.WriteFlat(f, odi); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := nhtsa.Store(db, odi); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d complaints)\n", flatPath, len(odi))
	return db.Checkpoint()
}
