package repro_bench

import (
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/bundle"
	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/nhtsa"
	"repro/internal/qatk"
	"repro/internal/quest"
	"repro/internal/reldb"
	"repro/internal/taxonomy"
)

// TestEndToEnd drives the full production flow on a durable database:
// corpus generation → relational storage → taxonomy XML round trip →
// knowledge-base training and persistence → classification of pending
// bundles → database reopen → QUEST web app serving suggestions → final
// code assignment with audit trail. This is the life of one damaged car
// part through the whole system (Fig. 2 + Fig. 8 + §4.5.4).
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end flow in -short mode")
	}
	dir := t.TempDir()

	// 1. Generate and store the corpus.
	cfg := datagen.SmallConfig()
	corpus, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	taxPath := dir + "/taxonomy.xml"
	if err := corpus.Taxonomy.SaveFile(taxPath); err != nil {
		t.Fatal(err)
	}
	db, err := reldb.Open(dir + "/db")
	if err != nil {
		t.Fatal(err)
	}
	for _, create := range []func(*reldb.DB) error{
		bundle.CreateTables, core.CreateResultsTable,
		quest.CreateUserTables, quest.CreateCatalogTables, quest.CreateAuditTables,
		nhtsa.CreateTables,
	} {
		if err := create(db); err != nil {
			t.Fatal(err)
		}
	}
	// Mark a few bundles pending (application phase).
	pendingRefs := map[string]bool{}
	for i, b := range corpus.Bundles {
		if i%25 == 3 {
			cp := *b
			cp.ErrorCode = ""
			var reports []bundle.Report
			for _, r := range b.Reports {
				if r.Source != bundle.SourceFinalOEM && r.Source != bundle.SourceErrorDesc {
					reports = append(reports, r)
				}
			}
			cp.Reports = reports
			corpus.Bundles[i] = &cp
			pendingRefs[cp.RefNo] = true
		}
	}
	if err := bundle.StoreAll(db, corpus.Bundles); err != nil {
		t.Fatal(err)
	}
	for _, spec := range corpus.SortedCodes() {
		if err := quest.AddCode(db, quest.CatalogEntry{Code: spec.Code, PartID: spec.PartID}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := quest.AddUser(db, "expert", quest.RoleExpert); err != nil {
		t.Fatal(err)
	}

	// 2. Train from the assigned bundles, persist the knowledge base,
	//    classify the pending ones.
	tax, err := taxonomy.LoadFile(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	tk := qatk.New(tax, qatk.WithModel(kb.BagOfConcepts))
	all, err := bundle.LoadAll(db)
	if err != nil {
		t.Fatal(err)
	}
	var assigned []*bundle.Bundle
	for _, b := range all {
		if b.ErrorCode != "" {
			assigned = append(assigned, b)
		}
	}
	mem, err := tk.Train(bundle.FilterMultiOccurrence(assigned))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.PersistKB(db, mem); err != nil {
		t.Fatal(err)
	}
	n, err := tk.ClassifyAndPersist(db, mem, all)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(pendingRefs) {
		t.Fatalf("classified %d, want %d", n, len(pendingRefs))
	}

	// 3. Close and reopen: everything must survive the WAL/snapshot cycle.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = reldb.Open(dir + "/db")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	store, err := kb.OpenDB(db)
	if err != nil {
		t.Fatal(err)
	}
	if store.NodeCount() != mem.NodeCount() {
		t.Fatalf("knowledge base lost rows: %d vs %d", store.NodeCount(), mem.NodeCount())
	}

	// 4. Serve QUEST and walk the expert flow over HTTP.
	internal := compare.InternalDistribution(assigned)
	srv, err := quest.NewServer(quest.Config{DB: db, Internal: internal, Public: internal})
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(srv)
	defer web.Close()

	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar}
	if _, err := client.PostForm(web.URL+"/login", url.Values{"name": {"expert"}}); err != nil {
		t.Fatal(err)
	}

	var ref string
	for r := range pendingRefs {
		ref = r
		break
	}
	resp, err := client.Get(web.URL + "/bundle/" + ref)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if !strings.Contains(body, "Suggested error codes") {
		t.Fatalf("bundle page missing suggestions:\n%.400s", body)
	}
	sugg, err := core.LoadRecommendations(db, ref, 1)
	if err != nil || len(sugg) == 0 {
		t.Fatalf("no stored suggestions for %s: %v", ref, err)
	}
	if !strings.Contains(body, sugg[0].Code) {
		t.Fatal("top suggestion not rendered")
	}

	// Assign the top suggestion.
	if _, err := client.PostForm(web.URL+"/bundle/"+ref+"/assign",
		url.Values{"code": {sugg[0].Code}}); err != nil {
		t.Fatal(err)
	}
	got, err := bundle.Load(db, ref)
	if err != nil || got.ErrorCode != sugg[0].Code {
		t.Fatalf("assignment not persisted: %+v, %v", got, err)
	}
	entries, err := quest.RecentAssignments(db, 5)
	if err != nil || len(entries) != 1 || entries[0].SuggRank != 1 {
		t.Fatalf("audit = %+v, %v", entries, err)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 8192)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
