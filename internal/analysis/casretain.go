package analysis

import (
	"go/ast"
	"go/types"
)

// CasRetain enforces the pipeline's CAS ownership contract: an
// Engine.Process implementation borrows its *cas.CAS strictly for the
// duration of the call. The collection runner recycles and dead-letters
// CASes after Process returns, so a retained reference — in a struct
// field, a package-level variable, or a goroutine that outlives the call
// — is a use-after-handoff bug waiting for concurrency to expose it.
var CasRetain = &Analyzer{
	Name: "casretain",
	Doc: "Engine.Process must not retain its *cas.CAS argument (or memory reachable " +
		"from it) in struct fields, package-level variables, or escaping goroutines.",
	Run: runCasRetain,
}

func runCasRetain(pass *Pass) error {
	eachFunc(pass, func(decl *ast.FuncDecl) {
		if decl.Recv == nil || decl.Name.Name != "Process" {
			return
		}
		casParam := casParamObj(pass, decl)
		if casParam == nil {
			return
		}
		recv := receiverObj(pass, decl)
		checkRetention(pass, decl.Body, casParam, recv)
	})
	return nil
}

// casParamObj returns the *types.Var of the first parameter whose type is
// *cas.CAS (matched by package path suffix, so test fixtures with their
// own module path are covered), nil if none.
func casParamObj(pass *Pass, decl *ast.FuncDecl) *types.Var {
	for _, field := range decl.Type.Params.List {
		t := pass.Info.TypeOf(field.Type)
		ptr, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok || named.Obj().Name() != "CAS" || named.Obj().Pkg() == nil {
			continue
		}
		if !pathIs(named.Obj().Pkg().Path(), "internal/cas") {
			continue
		}
		for _, name := range field.Names {
			if obj, ok := pass.Info.Defs[name].(*types.Var); ok {
				return obj
			}
		}
	}
	return nil
}

// receiverObj returns the receiver variable's object, nil for anonymous
// receivers.
func receiverObj(pass *Pass, decl *ast.FuncDecl) types.Object {
	for _, field := range decl.Recv.List {
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

// checkRetention walks a Process body for stores of CAS-derived memory
// into locations that outlive the call.
func checkRetention(pass *Pass, body *ast.BlockStmt, casParam *types.Var, recv types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, stmt, casParam, recv)
		case *ast.GoStmt:
			if usesObject(pass.Info, stmt.Call, casParam) {
				pass.Reportf(stmt.Pos(), "goroutine",
					"goroutine launched from Process captures the CAS parameter %q; it may outlive the call", casParam.Name())
			}
		}
		return true
	})
}

// checkAssign flags `escaping = casDerived` assignments.
func checkAssign(pass *Pass, stmt *ast.AssignStmt, casParam *types.Var, recv types.Object) {
	for i, lhs := range stmt.Lhs {
		loc := escapeKind(pass, lhs, recv)
		if loc == "" {
			continue
		}
		// Align RHS with LHS; for n:=1 tuple assignments check the single RHS.
		var rhs ast.Expr
		if len(stmt.Rhs) == len(stmt.Lhs) {
			rhs = stmt.Rhs[i]
		} else {
			rhs = stmt.Rhs[0]
		}
		if !usesObject(pass.Info, rhs, casParam) {
			continue
		}
		if t := pass.Info.TypeOf(rhs); t != nil && !carriesReference(t) {
			continue // a copied string/int cannot retain CAS memory
		}
		pass.Reportf(stmt.Pos(), loc,
			"Process stores CAS-derived memory (via parameter %q) into a %s; the CAS is only borrowed for the call", casParam.Name(), escapeNoun(loc))
	}
}

// escapeKind classifies an assignment target: "field-store" when rooted
// at the method receiver, "global-store" when rooted at a package-level
// variable, "" for locals.
func escapeKind(pass *Pass, lhs ast.Expr, recv types.Object) string {
	root := rootIdent(lhs)
	if root == nil {
		return ""
	}
	obj := pass.Info.Uses[root]
	if obj == nil {
		obj = pass.Info.Defs[root]
	}
	if obj == nil {
		return ""
	}
	if recv != nil && obj == recv {
		// Plain `recv = ...` rebinding is not a store; require a selector
		// or index so we only flag writes *through* the receiver.
		if _, ok := lhs.(*ast.Ident); ok {
			return ""
		}
		return "field-store"
	}
	if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
		return "global-store"
	}
	return ""
}

func escapeNoun(kind string) string {
	if kind == "global-store" {
		return "package-level variable"
	}
	return "struct field"
}

// carriesReference reports whether a value of type t can hold a pointer
// into CAS-owned memory. Basic values (and strings, which are immutable
// copies once extracted) are safe.
func carriesReference(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesReference(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return carriesReference(u.Elem())
	default:
		return true // pointers, slices, maps, chans, interfaces, funcs
	}
}
