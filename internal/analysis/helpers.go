package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// All returns the registered analyzers in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		CasRetain,
		ErrAttr,
		Determinism,
		PanicContract,
		LockCopy,
		MetricName,
		VFSOnly,
	}
}

// isInternalPkg reports whether path is inside the module's internal tree.
func isInternalPkg(path string) bool {
	return strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/")
}

// pathIs reports whether an import path is the named project package,
// module prefix notwithstanding (e.g. pathIs(p, "internal/cas") matches
// both "repro/internal/cas" and a test module's "qatktest/internal/cas").
func pathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// depends reports whether the pass package transitively imports the
// project package identified by suffix (see pathIs).
func depends(pass *Pass, suffix string) bool {
	for dep := range pass.Deps {
		if pathIs(dep, suffix) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call expression invokes, nil for
// builtins, function values and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// isBuiltinCall reports whether a call invokes the named builtin
// (e.g. panic, recover, append).
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// rootIdent returns the leftmost identifier of a selector/index/deref
// chain, nil when the expression is rooted elsewhere (e.g. a call).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// usesObject reports whether the expression mentions the given object.
func usesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// eachFunc invokes fn for every function or method declaration with a
// body in the pass's files.
func eachFunc(pass *Pass, fn func(decl *ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface (and is
// not the untyped nil).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorType)
}
