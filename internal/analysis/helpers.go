package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// All returns the registered analyzers in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		CasRetain,
		ErrAttr,
		Determinism,
		PanicContract,
		LockCopy,
		MetricName,
		VFSOnly,
		CtxFlow,
		GoroLeak,
		GuardedBy,
		HotAlloc,
		Suppression,
	}
}

// Suppression is the driver-implemented check over //lint:ignore comments
// themselves: malformed suppressions (unknown analyzer, missing reason)
// and stale suppressions (ones that matched no diagnostic this run) are
// findings. It is registered so -help-checks documents it and so the
// driver accepts qatklint/suppression in lint:ignore comments (which only
// makes sense for the malformed category; unused-suppression findings can
// never be suppressed — delete the stale comment instead). Run is a no-op
// because the work happens in the driver, which sees every suppression
// and every diagnostic at once.
var Suppression = &Analyzer{
	Name: "suppression",
	Doc: "lint:ignore comments must be well-formed (qatklint/<check> + mandatory reason) " +
		"and must actually suppress something: a suppression that matches no diagnostic " +
		"during the run is reported as category \"unused\" so suppressions cannot outlive " +
		"the code they excused.",
	Run: func(*Pass) error { return nil },
}

// isInternalPkg reports whether path is inside the module's internal tree.
func isInternalPkg(path string) bool {
	return strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/")
}

// pathIs reports whether an import path is the named project package,
// module prefix notwithstanding (e.g. pathIs(p, "internal/cas") matches
// both "repro/internal/cas" and a test module's "qatktest/internal/cas").
func pathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// depends reports whether the pass package transitively imports the
// project package identified by suffix (see pathIs).
func depends(pass *Pass, suffix string) bool {
	for dep := range pass.Deps {
		if pathIs(dep, suffix) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call expression invokes, nil for
// builtins, function values and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// isBuiltinCall reports whether a call invokes the named builtin
// (e.g. panic, recover, append).
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// rootIdent returns the leftmost identifier of a selector/index/deref
// chain, nil when the expression is rooted elsewhere (e.g. a call).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// usesObject reports whether the expression mentions the given object.
func usesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// eachFunc invokes fn for every function or method declaration with a
// body in the pass's files.
func eachFunc(pass *Pass, fn func(decl *ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// --- intra-procedural held-lock analysis ---------------------------------
//
// walkHeld is the reusable block analysis underneath guardedby (and any
// future "must hold X here" check): a single source-order walk of a
// function body that tracks which sync.Mutex / sync.RWMutex expressions
// are held at each visited node. The tracking is deliberately
// flow-conservative:
//
//   - branch and loop bodies see a copy of the held set, so a release on
//     one path never unlocks a sibling path;
//   - defer X.Unlock() does not release (the lock stays held to return);
//   - a `go` statement's payload is visited with an empty held set — the
//     goroutine does not inherit the caller's critical section.
//
// Locks are keyed by the object identity of the root identifier plus the
// selected field path, so `t := s.tracer; t.mu.Lock(); t.ring[0] = x`
// resolves the lock and the access to the same key.

// lockMode distinguishes shared from exclusive acquisition.
type lockMode int

const (
	lockRead  lockMode = iota // RLock
	lockWrite                 // Lock
)

// heldSet maps a lock key (see lockExprKey) to the strongest mode held.
type heldSet map[string]lockMode

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// lockMethods maps the sync (R)Lock/(R)Unlock methods to their effect.
var lockMethods = map[string]struct {
	acquire bool
	mode    lockMode
}{
	"(*sync.Mutex).Lock":      {true, lockWrite},
	"(*sync.Mutex).Unlock":    {false, lockWrite},
	"(*sync.RWMutex).Lock":    {true, lockWrite},
	"(*sync.RWMutex).Unlock":  {false, lockWrite},
	"(*sync.RWMutex).RLock":   {true, lockRead},
	"(*sync.RWMutex).RUnlock": {false, lockRead},
}

// lockExprKey renders a lock (or access base) expression as a stable key:
// the root identifier's object identity followed by the selected field
// path. ok is false for expressions rooted in calls, indexes or other
// shapes the analysis does not model.
func lockExprKey(info *types.Info, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("%p", obj), true
	case *ast.SelectorExpr:
		if _, isField := info.Selections[x]; !isField {
			// Package-qualified name: key by the named object itself.
			if obj := info.Uses[x.Sel]; obj != nil {
				return fmt.Sprintf("%p", obj), true
			}
			return "", false
		}
		base, ok := lockExprKey(info, x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.StarExpr:
		return lockExprKey(info, x.X)
	default:
		return "", false
	}
}

// lockCallEffect reports whether call is a sync lock acquire/release and
// returns the affected lock key.
func lockCallEffect(info *types.Info, call *ast.CallExpr) (key string, acquire bool, mode lockMode, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false, 0, false
	}
	eff, isLock := lockMethods[fn.FullName()]
	if !isLock {
		return "", false, 0, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, 0, false
	}
	key, keyOK := lockExprKey(info, sel.X)
	if !keyOK {
		return "", false, 0, false
	}
	return key, eff.acquire, eff.mode, true
}

// walkHeld walks a function body in source order, invoking visit for
// every leaf statement and every header expression of compound
// statements, together with the lock set held at that point. The visitor
// must not recurse into nested statements itself — walkHeld hands them
// over with their own (copied) held sets.
func walkHeld(info *types.Info, body *ast.BlockStmt, visit func(n ast.Node, held heldSet)) {
	walkHeldStmts(info, body.List, heldSet{}, visit)
}

func walkHeldStmts(info *types.Info, stmts []ast.Stmt, held heldSet, visit func(n ast.Node, held heldSet)) {
	for _, stmt := range stmts {
		walkHeldStmt(info, stmt, held, visit)
	}
}

func walkHeldStmt(info *types.Info, stmt ast.Stmt, held heldSet, visit func(n ast.Node, held heldSet)) {
	visitExpr := func(e ast.Expr) {
		if e != nil {
			visit(e, held)
		}
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		walkHeldStmts(info, s.List, held.clone(), visit)
	case *ast.IfStmt:
		if s.Init != nil {
			walkHeldStmt(info, s.Init, held, visit)
		}
		visitExpr(s.Cond)
		walkHeldStmt(info, s.Body, held.clone(), visit)
		if s.Else != nil {
			walkHeldStmt(info, s.Else, held.clone(), visit)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			walkHeldStmt(info, s.Init, held, visit)
		}
		visitExpr(s.Cond)
		inner := held.clone()
		walkHeldStmt(info, s.Body, inner, visit)
		if s.Post != nil {
			walkHeldStmt(info, s.Post, inner, visit)
		}
	case *ast.RangeStmt:
		visitExpr(s.Key)
		visitExpr(s.Value)
		visitExpr(s.X)
		walkHeldStmt(info, s.Body, held.clone(), visit)
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkHeldStmt(info, s.Init, held, visit)
		}
		visitExpr(s.Tag)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				visitExpr(e)
			}
			walkHeldStmts(info, cc.Body, held.clone(), visit)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			walkHeldStmt(info, s.Init, held, visit)
		}
		walkHeldStmt(info, s.Assign, held, visit)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			walkHeldStmts(info, cc.Body, held.clone(), visit)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			inner := held.clone()
			if cc.Comm != nil {
				walkHeldStmt(info, cc.Comm, inner, visit)
			}
			walkHeldStmts(info, cc.Body, inner, visit)
		}
	case *ast.LabeledStmt:
		walkHeldStmt(info, s.Stmt, held, visit)
	case *ast.GoStmt:
		// The goroutine body runs outside this critical section.
		visit(s.Call, heldSet{})
	case *ast.DeferStmt:
		// Visited under the current set; deliberately no release effect,
		// so `defer mu.Unlock()` keeps the lock held to function end.
		visit(s.Call, held)
	case *ast.ExprStmt:
		visit(s, held)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, acquire, mode, ok := lockCallEffect(info, call); ok {
				if acquire {
					if cur, has := held[key]; !has || mode > cur {
						held[key] = mode
					}
				} else {
					delete(held, key)
				}
			}
		}
	default:
		// Leaf statements: assignments, returns, sends, declarations...
		visit(stmt, held)
	}
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface (and is
// not the untyped nil).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorType)
}
