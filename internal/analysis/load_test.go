package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under a temp dir: files maps
// relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadNoPackages: a module with no Go files is a load error, not an
// empty (vacuously clean) analysis run.
func TestLoadNoPackages(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":       "module nogo.test\n\ngo 1.22\n",
		"README.md":    "no Go code here\n",
		"doc/note.txt": "still none\n",
	})
	_, err := Load(token.NewFileSet(), dir)
	if err == nil {
		t.Fatal("Load succeeded on a module with no Go files, want error")
	}
	if !strings.Contains(err.Error(), "no packages matched") {
		t.Errorf("err = %v, want mention of no packages matched", err)
	}
}

// TestLoadToleratesBrokenDependency: a type error inside a dependency's
// function body must not sink the analysis of the root that imports it —
// the dependency's exported surface still type-checks, which is all the
// root needs. (Load mirrors the stdlib tolerance: DepOnly packages that
// do not check perfectly remain usable as imports.)
func TestLoadToleratesBrokenDependency(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module brokendep.test\n\ngo 1.22\n",
		"a/a.go": `package a

import "brokendep.test/internal/bad"

// Use calls through to the broken dependency's healthy export.
func Use() int { return bad.Healthy() }
`,
		"internal/bad/bad.go": `package bad

// Healthy has a fine signature; the analysis of importers only needs
// the exported surface.
func Healthy() int { return 1 }

// broken fails the type check inside its body.
func broken() string { return 42 }
`,
	})
	fset := token.NewFileSet()
	pkgs, err := Load(fset, dir, "./a")
	if err != nil {
		t.Fatalf("Load failed on a root with a broken dependency: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "brokendep.test/a" {
		t.Fatalf("roots = %v, want exactly brokendep.test/a", importPaths(pkgs))
	}
	if !pkgs[0].Deps["brokendep.test/internal/bad"] {
		t.Error("root package is missing its broken dependency in Deps")
	}

	// The same type error in a *root* package stays fatal: the code under
	// analysis itself must type check.
	if _, err := Load(token.NewFileSet(), dir, "./..."); err == nil {
		t.Error("Load succeeded with the broken package as a root, want type-check error")
	}
}

// TestLoadBrokenRootReportsPackage: the fatal type-check error names the
// offending package so the finding is actionable.
func TestLoadBrokenRootReportsPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module brokenroot.test\n\ngo 1.22\n",
		"b/b.go": `package b

func Bad() string { return 42 }
`,
	})
	_, err := Load(token.NewFileSet(), dir)
	if err == nil {
		t.Fatal("Load succeeded on a broken root package, want error")
	}
	if !strings.Contains(err.Error(), "brokenroot.test/b") {
		t.Errorf("err = %v, want the failing package named", err)
	}
}

func importPaths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.ImportPath)
	}
	return out
}
