package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// ErrAttr enforces the error-attribution contract behind the pipeline's
// dead-letter layer: every error that can cross an internal package
// boundary names its origin package, wrapped causes stay inspectable with
// errors.Is/errors.As (%w, never %v), and sentinel comparisons go through
// errors.Is so wrapping cannot silently break them.
// The prefix rule applies where errors are born at the package boundary:
// inside exported functions and methods, and in exported package-level
// sentinel variables. Errors built by unexported helpers are exempt — the
// contract there is that the exported entry point wraps them once with
// the package prefix (e.g. reldb.Exec wrapping its parser's errors), and
// prefixing both layers would double-attribute every message.
var ErrAttr = &Analyzer{
	Name: "errattr",
	Doc: "errors born at an internal package's boundary (exported funcs, exported sentinels) " +
		"must carry a \"<pkg>: \" prefix; fmt.Errorf must wrap error arguments with %w; " +
		"compare errors with errors.Is/errors.As, not ==.",
	Run: runErrAttr,
}

func runErrAttr(pass *Pass) error {
	internal := isInternalPkg(pass.Pkg.Path())
	pkgName := pass.Pkg.Name()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			boundary := false
			switch d := decl.(type) {
			case *ast.FuncDecl:
				boundary = internal && ast.IsExported(d.Name.Name)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							if ast.IsExported(name.Name) {
								boundary = internal
							}
						}
					}
				}
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.CallExpr:
					checkErrorCall(pass, e, boundary, pkgName)
				case *ast.BinaryExpr:
					checkErrorComparison(pass, e)
				}
				return true
			})
		}
	}
	return nil
}

// checkErrorCall inspects errors.New and fmt.Errorf call sites.
func checkErrorCall(pass *Pass, call *ast.CallExpr, boundary bool, pkgName string) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return
	}
	full := fn.Pkg().Path() + "." + fn.Name()
	switch full {
	case "errors.New":
		if boundary {
			checkPrefix(pass, call.Args[0], pkgName)
		}
	case "fmt.Errorf":
		if boundary {
			checkPrefix(pass, call.Args[0], pkgName)
		}
		checkWrapVerbs(pass, call)
	}
}

// checkPrefix requires the (constant) message to start with "<pkg>: " or
// "<pkg> " — the latter admits formats like "bundle %s: ..." that splice
// an identifier between package name and colon. Formats beginning with %w
// are pure wraps whose cause already carries attribution.
func checkPrefix(pass *Pass, arg ast.Expr, pkgName string) {
	lit, ok := ast.Unparen(arg).(*ast.BasicLit)
	if !ok {
		return // dynamic format strings are out of scope
	}
	text, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if strings.HasPrefix(text, pkgName+": ") || strings.HasPrefix(text, pkgName+" ") ||
		strings.HasPrefix(text, "%w") {
		return
	}
	pass.Reportf(lit.Pos(), "missing-prefix",
		"error message %q does not carry the %q package prefix; errors crossing an internal boundary must be attributable", abbreviate(text), pkgName+": ")
}

// checkWrapVerbs flags fmt.Errorf verbs that format an error-typed
// argument with %v/%s/%q instead of wrapping it with %w.
func checkWrapVerbs(pass *Pass, call *ast.CallExpr) {
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := parseVerbs(format)
	if !ok {
		return // indexed or otherwise exotic format; do not guess
	}
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) {
			return // malformed call; vet's printf check owns this
		}
		if verb != 'v' && verb != 's' && verb != 'q' {
			continue
		}
		t := pass.Info.TypeOf(args[i])
		if t == nil || !isErrorType(t) {
			continue
		}
		pass.Reportf(args[i].Pos(), "verbatim-error",
			"error argument formatted with %%%c; use %%w so the cause stays inspectable with errors.Is/errors.As", verb)
	}
}

// parseVerbs returns the verb letter consuming each successive argument.
// Star width/precision count as arguments (reported as '*'). ok=false on
// explicit argument indexes, which this simple scanner does not model.
func parseVerbs(format string) (verbs []rune, ok bool) {
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i < len(runes) && runes[i] == '%' {
			continue
		}
		for i < len(runes) {
			c := runes[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*')
			}
			if strings.ContainsRune("+-# 0123456789.*", c) {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs, true
}

// checkErrorComparison flags ==/!= between two error values (nil stays
// allowed: `err != nil` is the idiom, not a sentinel comparison).
func checkErrorComparison(pass *Pass, e *ast.BinaryExpr) {
	if e.Op.String() != "==" && e.Op.String() != "!=" {
		return
	}
	xt, yt := pass.Info.TypeOf(e.X), pass.Info.TypeOf(e.Y)
	if !isErrorType(xt) || !isErrorType(yt) {
		return
	}
	pass.Reportf(e.Pos(), "sentinel-compare",
		"direct %s comparison of errors breaks under wrapping; use errors.Is or errors.As", e.Op)
}

// abbreviate shortens long message literals for diagnostics.
func abbreviate(s string) string {
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}
