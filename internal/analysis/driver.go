package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
)

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	file     string
	line     int // line the comment sits on
	col      int
	analyzer string
	reason   string
}

// parseSuppressions extracts //lint:ignore qatklint/<name> comments from a
// file. Malformed suppressions (unknown analyzer, missing reason) are
// reported as diagnostics themselves: a silent, reasonless escape hatch
// would defeat the point of machine-checked invariants.
func parseSuppressions(fset *token.FileSet, f *ast.File, known map[string]bool, report func(Diagnostic)) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:ignore") {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			bad := func(msg string) {
				report(Diagnostic{
					Analyzer: "suppression",
					Category: "malformed",
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  msg,
				})
			}
			if len(fields) < 2 || !strings.HasPrefix(fields[1], "qatklint/") {
				bad("lint:ignore must name a qatklint/<analyzer> check")
				continue
			}
			name := strings.TrimPrefix(fields[1], "qatklint/")
			if !known[name] {
				bad(fmt.Sprintf("lint:ignore names unknown check qatklint/%s", name))
				continue
			}
			if len(fields) < 3 {
				bad(fmt.Sprintf("suppression of qatklint/%s requires a reason", name))
				continue
			}
			out = append(out, suppression{
				file:     pos.Filename,
				line:     pos.Line,
				col:      pos.Column,
				analyzer: name,
				reason:   strings.Join(fields[2:], " "),
			})
		}
	}
	return out
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by file, line, column and analyzer. A finding is
// dropped when a well-formed suppression for its analyzer sits on the
// same line or the line directly above. A suppression that drops nothing
// is itself a finding (analyzer "suppression", category "unused"): stale
// suppressions must not outlive the code they excused. Unused-suppression
// findings cannot be suppressed in turn — delete the stale comment.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }

	var supps []suppression
	covering := map[string][]int{} // "file:line:analyzer" -> supps indices
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, s := range parseSuppressions(fset, f, known, collect) {
				supps = append(supps, s)
				i := len(supps) - 1
				for _, line := range []int{s.line, s.line + 1} {
					key := fmt.Sprintf("%s:%d:%s", s.file, line, s.analyzer)
					covering[key] = append(covering[key], i)
				}
			}
		}
	}

	prog := BuildProgram(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Deps:     pkg.Deps,
				Prog:     prog,
				report:   collect,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}

	used := make([]bool, len(supps))
	kept := diags[:0]
	for _, d := range diags {
		if idxs := covering[fmt.Sprintf("%s:%d:%s", d.File, d.Line, d.Analyzer)]; len(idxs) > 0 {
			for _, i := range idxs {
				used[i] = true
			}
			continue
		}
		kept = append(kept, d)
	}
	for i, s := range supps {
		if used[i] {
			continue
		}
		kept = append(kept, Diagnostic{
			Analyzer: "suppression",
			Category: "unused",
			File:     s.file,
			Line:     s.line,
			Col:      s.col,
			Message:  fmt.Sprintf("suppression of qatklint/%s matched no diagnostic; delete the stale comment", s.analyzer),
		})
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// WriteText renders diagnostics in the human `file:line:col: ...` format.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}

// WriteJSON renders diagnostics as a JSON object keyed by "file:line",
// each key holding the findings on that line.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	grouped := map[string][]Diagnostic{}
	for _, d := range diags {
		grouped[d.Key()] = append(grouped[d.Key()], d)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(grouped)
}
