package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// progFixture builds the whole-module Program over the shared fixture
// load; the graph is immutable so one build serves every test below.
func progFixture(t *testing.T) *Program {
	t.Helper()
	_, pkgs, _ := loadFixtures(t)
	return BuildProgram(pkgs)
}

// fixtureFunc locates a declared function of the fixture program by a
// FullName substring ("qatktest/ctxflow.Handle").
func fixtureFunc(t *testing.T, prog *Program, fullName string) *types.Func {
	t.Helper()
	for obj := range prog.Decls {
		if strings.Contains(obj.FullName(), fullName) {
			return obj
		}
	}
	t.Fatalf("function %q not declared in the fixture program", fullName)
	return nil
}

// TestCallGraphResolvesInterfaceEdges: a call through the ctxflow fixture's
// store interface must resolve to the declared memstore.get implementation —
// the edge the sleep-on-path finding depends on.
func TestCallGraphResolvesInterfaceEdges(t *testing.T) {
	prog := progFixture(t)
	useStore := fixtureFunc(t, prog, "ctxflow.useStore")
	get := fixtureFunc(t, prog, "ctxflow.memstore).get")

	found := false
	for _, callee := range prog.Calls[useStore] {
		if callee == get {
			found = true
		}
	}
	if !found {
		t.Errorf("useStore's interface call did not resolve to memstore.get; callees: %v", prog.Calls[useStore])
	}
}

// TestRequestPathReachability: everything Handle calls — including the
// interface-resolved memstore.get two hops down — is request-path
// reachable; the offline function is not.
func TestRequestPathReachability(t *testing.T) {
	prog := progFixture(t)
	reach := prog.RequestPathReachable()

	for _, name := range []string{
		"ctxflow.Handle",        // the //qatk:ctxroot root itself
		"ctxflow.detach",        // direct callee
		"ctxflow.lookup",        // via relay
		"ctxflow.memstore).get", // through the store interface
	} {
		if !reach[fixtureFunc(t, prog, name)] {
			t.Errorf("%s is not request-path reachable, want reachable", name)
		}
	}
	if reach[fixtureFunc(t, prog, "ctxflow.offline")] {
		t.Error("offline is request-path reachable, want unreachable (no root calls it)")
	}
}

// TestReachableIsTransitiveClosure: Reachable from an explicit root walks
// edges transitively and includes the root.
func TestReachableIsTransitiveClosure(t *testing.T) {
	prog := progFixture(t)
	relay := fixtureFunc(t, prog, "ctxflow.relay")
	lookup := fixtureFunc(t, prog, "ctxflow.lookup")
	handle := fixtureFunc(t, prog, "ctxflow.Handle")

	reach := prog.Reachable([]*types.Func{relay})
	if !reach[relay] {
		t.Error("root not in its own reachable set")
	}
	if !reach[lookup] {
		t.Error("lookup not reachable from relay")
	}
	if reach[handle] {
		t.Error("Handle reachable from relay: edges must not be walked backwards")
	}
}

// TestFuncsOfSourceOrder: FuncsOf returns one package's declarations in
// source position order, so analyzers report deterministically.
func TestFuncsOfSourceOrder(t *testing.T) {
	prog := progFixture(t)
	handle := fixtureFunc(t, prog, "ctxflow.Handle")
	pkg := handle.Pkg()

	fns := prog.FuncsOf(pkg)
	if len(fns) == 0 {
		t.Fatal("FuncsOf returned no functions for the ctxflow fixture")
	}
	for i := 1; i < len(fns); i++ {
		if prog.Decls[fns[i-1]].Pos() >= prog.Decls[fns[i]].Pos() {
			t.Errorf("FuncsOf out of source order at %d: %s before %s",
				i, fns[i-1].Name(), fns[i].Name())
		}
	}
	for _, fn := range fns {
		if fn.Pkg() != pkg {
			t.Errorf("FuncsOf leaked a foreign function: %s", fn.FullName())
		}
	}
}
