package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

const fixtureDir = "testdata/src/qatktest"

// The fixture module is loaded once: type checking its stdlib
// dependencies from source is the expensive part, and every test below
// reads the same immutable results.
var (
	fixOnce  sync.Once
	fixFset  *token.FileSet
	fixPkgs  []*Package
	fixDiags []Diagnostic
	fixErr   error
)

func loadFixtures(t *testing.T) (*token.FileSet, []*Package, []Diagnostic) {
	t.Helper()
	fixOnce.Do(func() {
		fixFset = token.NewFileSet()
		fixPkgs, fixErr = Load(fixFset, fixtureDir)
		if fixErr != nil {
			return
		}
		fixDiags, fixErr = Run(fixFset, fixPkgs, All())
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixFset, fixPkgs, fixDiags
}

// TestLoadFixtureModule checks the driver loads a multi-package module
// with go list + go/parser + go/types: every fixture package is present,
// type checked, and carries its transitive dependency set.
func TestLoadFixtureModule(t *testing.T) {
	_, pkgs, _ := loadFixtures(t)

	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	for _, want := range []string{
		"qatktest/internal/cas",
		"qatktest/internal/retain",
		"qatktest/internal/errs",
		"qatktest/internal/panics",
		"qatktest/internal/pipeline",
		"qatktest/internal/obs",
		"qatktest/internal/reldb",
		"qatktest/datagen",
		"qatktest/metrics",
		"qatktest/locks",
		"qatktest/suppress",
		"qatktest/ctxflow",
		"qatktest/goroleak",
		"qatktest/guarded",
		"qatktest/hotalloc",
	} {
		p := byPath[want]
		if p == nil {
			t.Fatalf("package %s not loaded (got %v)", want, keys(byPath))
		}
		if !p.Root {
			t.Errorf("%s: not marked as a root package", want)
		}
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("%s: incomplete package: types=%v info=%v files=%d", want, p.Types, p.Info, len(p.Files))
		}
	}
	if !byPath["qatktest/internal/retain"].Deps["qatktest/internal/cas"] {
		t.Error("retain package is missing its cas dependency in Deps")
	}
	if len(byPath["qatktest/internal/errs"].Info.Uses) == 0 {
		t.Error("errs package was not type checked (empty Uses map)")
	}
}

// wantRe matches `// want <analyzer> "substring"` expectation comments in
// the fixture sources.
var wantRe = regexp.MustCompile(`// want (\w+) "([^"]+)"`)

type expectation struct {
	file     string // absolute
	line     int
	analyzer string
	substr   string
}

// fixtureExpectations scans the fixture sources for want comments,
// skipping the suppress package (asserted explicitly in TestSuppression).
func fixtureExpectations(t *testing.T) []expectation {
	t.Helper()
	var exps []expectation
	err := filepath.Walk(fixtureDir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		if strings.Contains(filepath.ToSlash(path), "/suppress/") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				exps = append(exps, expectation{file: abs, line: i + 1, analyzer: m[1], substr: m[2]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) == 0 {
		t.Fatal("no want comments found in fixtures")
	}
	return exps
}

// TestAnalyzersMatchWantComments is the golden-file check: every want
// comment must be satisfied by a finding on that exact file:line, and
// every finding (outside the suppress fixtures) must be announced by a
// want comment — unexpected findings are failures too.
func TestAnalyzersMatchWantComments(t *testing.T) {
	_, _, diags := loadFixtures(t)
	exps := fixtureExpectations(t)

	var surplus []Diagnostic
	for _, d := range diags {
		if strings.Contains(filepath.ToSlash(d.File), "/suppress/") {
			continue
		}
		matched := false
		for i, e := range exps {
			if e.file == d.File && e.line == d.Line && e.analyzer == d.Analyzer &&
				strings.Contains(d.Message, e.substr) {
				exps = append(exps[:i], exps[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			surplus = append(surplus, d)
		}
	}
	for _, e := range exps {
		t.Errorf("missing finding: %s:%d: %s (message containing %q)",
			e.file, e.line, e.analyzer, e.substr)
	}
	for _, d := range surplus {
		t.Errorf("unexpected finding: %s", d.String())
	}
}

// TestPositions checks every diagnostic carries a plausible position:
// an absolute file inside the fixture tree, a positive line and column.
func TestPositions(t *testing.T) {
	_, _, diags := loadFixtures(t)
	absFixtures, err := filepath.Abs(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("fixtures produced no diagnostics")
	}
	for _, d := range diags {
		if !filepath.IsAbs(d.File) || !strings.HasPrefix(d.File, absFixtures) {
			t.Errorf("%s: file not under the fixture tree", d.String())
		}
		if d.Line <= 0 || d.Col <= 0 {
			t.Errorf("%s: non-positive position", d.String())
		}
	}
	// Diagnostics come out sorted by file, then line, then column.
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	}) {
		t.Error("diagnostics are not sorted by position")
	}
}

// TestSuppression asserts the //lint:ignore semantics on the suppress
// fixture package: a reasoned suppression silences the next line, a
// reasonless or unknown-check one is itself a finding and silences
// nothing.
func TestSuppression(t *testing.T) {
	_, _, diags := loadFixtures(t)
	var inFile []Diagnostic
	for _, d := range diags {
		if strings.HasSuffix(filepath.ToSlash(d.File), "/suppress/suppress.go") {
			inFile = append(inFile, d)
		}
	}
	var malformed, unused, errattr, lockcopy int
	for _, d := range inFile {
		switch {
		case d.Analyzer == "suppression" && d.Category == "unused":
			unused++
			if !strings.Contains(d.Message, "matched no diagnostic") {
				t.Errorf("unexpected stale-suppression diagnostic: %s", d.String())
			}
		case d.Analyzer == "suppression":
			malformed++
			if !strings.Contains(d.Message, "requires a reason") && !strings.Contains(d.Message, "unknown check") {
				t.Errorf("unexpected suppression diagnostic: %s", d.String())
			}
		case d.Analyzer == "errattr":
			errattr++
		case d.Analyzer == "lockcopy":
			lockcopy++
		default:
			t.Errorf("unexpected analyzer in suppress fixture: %s", d.String())
		}
	}
	if malformed != 2 {
		t.Errorf("malformed suppressions reported = %d, want 2 (reasonless + unknown check)", malformed)
	}
	// Unused's suppression matches nothing: exactly one stale finding.
	if unused != 1 {
		t.Errorf("stale suppressions reported = %d, want 1", unused)
	}
	// Four %v sites exist; the well-formed suppressions silence the ones
	// in Wrapped and MultiDiag.
	if errattr != 2 {
		t.Errorf("surviving errattr findings = %d, want 2 (two suppressed)", errattr)
	}
	// MultiDiag's suppression names errattr only: the lockcopy finding
	// sharing the line survives.
	if lockcopy != 1 {
		t.Errorf("surviving lockcopy findings = %d, want 1 (multi-diagnostic line)", lockcopy)
	}
}

// TestHotAllocGate pins the acceptance behavior of the allocation gate:
// a //qatk:hotpath function that heap-allocates IS a finding (the fixture
// would fail the lint), while stack-only, acknowledged and suppressed
// allocations are not.
func TestHotAllocGate(t *testing.T) {
	_, _, diags := loadFixtures(t)
	var hits []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "hotalloc" && strings.HasSuffix(filepath.ToSlash(d.File), "/hotalloc/hotalloc.go") {
			hits = append(hits, d)
		}
	}
	if len(hits) == 0 {
		t.Fatal("hotalloc produced no findings on its fixture: the gate does not fail on heap escapes")
	}
	var boxed, moved bool
	for _, d := range hits {
		if strings.Contains(d.Message, "escapes to heap") && strings.Contains(d.Message, "Box") {
			boxed = true
		}
		if strings.Contains(d.Message, "moved to heap") && strings.Contains(d.Message, "Escape") {
			moved = true
		}
		for _, clean := range []string{"Sum", "Cold", "Acknowledged", "Tolerated"} {
			if strings.Contains(d.Message, "function "+clean) {
				t.Errorf("hotalloc flagged %s, want clean (stack-only/unannotated/acknowledged/suppressed): %s", clean, d.String())
			}
		}
	}
	if !boxed {
		t.Error("interface boxing in Box was not reported")
	}
	if !moved {
		t.Error("heap move in Escape was not reported")
	}
}

// TestWriteJSONRoundTrip checks the machine-readable output: parseable
// JSON, keyed by "file:line", round-tripping every field.
func TestWriteJSONRoundTrip(t *testing.T) {
	_, _, diags := loadFixtures(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var decoded map[string][]Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	total := 0
	for key, group := range decoded {
		for _, d := range group {
			total++
			if d.Key() != key {
				t.Errorf("finding %s filed under wrong key %q", d.String(), key)
			}
		}
	}
	if total != len(diags) {
		t.Fatalf("JSON round trip lost findings: %d in, %d out", len(diags), total)
	}
	want := map[string][]Diagnostic{}
	for _, d := range diags {
		want[d.Key()] = append(want[d.Key()], d)
	}
	if !reflect.DeepEqual(decoded, want) {
		t.Error("decoded JSON does not match the source diagnostics")
	}
}

// TestRunCommand drives the CLI end to end: exit 1 iff findings, exit 0
// on a clean module, exit 2 on load failure, -json and -help-checks.
func TestRunCommand(t *testing.T) {
	t.Run("findings", func(t *testing.T) {
		var out, errs bytes.Buffer
		code := RunCommand([]string{"-C", fixtureDir, "./..."}, &out, &errs)
		if code != ExitFindings {
			t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errs.String())
		}
		text := out.String()
		if !strings.Contains(text, "qatklint/casretain") || !strings.Contains(text, "qatklint/lockcopy") {
			t.Errorf("text output is missing analyzer IDs:\n%s", text)
		}
		// Paths are relativized against -C and keyed file:line:col.
		if !regexp.MustCompile(`(?m)^internal/retain/retain\.go:\d+:\d+: qatklint/casretain: `).MatchString(text) {
			t.Errorf("output lines are not relative file:line:col format:\n%s", text)
		}
	})

	t.Run("json", func(t *testing.T) {
		var out, errs bytes.Buffer
		code := RunCommand([]string{"-json", "-C", fixtureDir, "./..."}, &out, &errs)
		if code != ExitFindings {
			t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errs.String())
		}
		var decoded map[string][]Diagnostic
		if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
			t.Fatalf("-json output is not valid JSON: %v", err)
		}
		if len(decoded) == 0 {
			t.Fatal("-json output is empty")
		}
		for key := range decoded {
			if !regexp.MustCompile(`:\d+$`).MatchString(key) {
				t.Errorf("JSON key %q is not file:line", key)
			}
		}
	})

	t.Run("clean", func(t *testing.T) {
		var out, errs bytes.Buffer
		code := RunCommand([]string{"-C", "testdata/src/clean", "./..."}, &out, &errs)
		if code != ExitClean {
			t.Fatalf("exit = %d, want %d (stdout: %s stderr: %s)", code, ExitClean, out.String(), errs.String())
		}
		if out.Len() != 0 {
			t.Errorf("clean module produced output: %s", out.String())
		}
	})

	t.Run("load-error", func(t *testing.T) {
		var out, errs bytes.Buffer
		code := RunCommand([]string{"-C", "testdata/no-such-dir", "./..."}, &out, &errs)
		if code != ExitError {
			t.Fatalf("exit = %d, want %d", code, ExitError)
		}
		if errs.Len() == 0 {
			t.Error("load failure reported nothing on stderr")
		}
	})

	t.Run("help-checks", func(t *testing.T) {
		var out, errs bytes.Buffer
		code := RunCommand([]string{"-help-checks"}, &out, &errs)
		if code != ExitClean {
			t.Fatalf("exit = %d, want %d", code, ExitClean)
		}
		for _, a := range All() {
			if !strings.Contains(out.String(), a.ID()) {
				t.Errorf("-help-checks output is missing %s", a.ID())
			}
		}
	})
}

// TestDiagnosticFormats pins the two output shapes the Makefile and
// editors consume.
func TestDiagnosticFormats(t *testing.T) {
	d := Diagnostic{
		Analyzer: "errattr", Category: "missing-prefix",
		File: "internal/kb/store.go", Line: 42, Col: 9,
		Message: "error message lacks prefix",
	}
	if got, want := d.String(), "internal/kb/store.go:42:9: qatklint/errattr: error message lacks prefix"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := d.Key(), "internal/kb/store.go:42"; got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}
}

func keys(m map[string]*Package) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
