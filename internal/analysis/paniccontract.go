package analysis

import (
	"go/ast"
	"strings"
)

// PanicContract enforces the fault-tolerance layer's division of labor:
// internal/pipeline owns panic recovery (safeProcess converts engine
// panics into attributable *EngineError values), so no other package may
// install its own recover(); and code on the engine/consumer paths — any
// package that depends on internal/cas — must report failures as errors,
// not panics, so they stay attributable and dead-letterable. Functions
// following the Must* convention are exempt: a documented panicking
// wrapper is an API contract, not an error path.
var PanicContract = &Analyzer{
	Name: "paniccontract",
	Doc: "panics are reserved for the pipeline recovery layer: no recover() outside " +
		"internal/pipeline, no naked panic on engine/consumer code paths (Must* functions exempt).",
	Run: runPanicContract,
}

func runPanicContract(pass *Pass) error {
	inPipeline := pathIs(pass.Pkg.Path(), "internal/pipeline")
	// Engine/consumer scope: anything that (transitively) touches the CAS.
	engineScope := !inPipeline && depends(pass, "internal/cas")

	eachFunc(pass, func(decl *ast.FuncDecl) {
		exempt := strings.HasPrefix(decl.Name.Name, "Must")
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				// Function literals inherit the enclosing declaration's
				// exemption status; keep walking.
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isBuiltinCall(pass.Info, call, "recover") && !inPipeline {
				pass.Reportf(call.Pos(), "recover",
					"recover() outside internal/pipeline; panic recovery is owned by the pipeline so failures stay attributed to engines")
			}
			if engineScope && !exempt && isBuiltinCall(pass.Info, call, "panic") {
				pass.Reportf(call.Pos(), "panic",
					"panic on an engine/consumer code path; return an error so the pipeline can attribute and dead-letter the document")
			}
			return true
		})
	})
	return nil
}
