// Package locks exercises the lockcopy analyzer: by-value receivers,
// parameters, assignments and range copies of mutex-bearing structs.
package locks

import "sync"

// Counter guards n with a mutex; copying it forks the critical section.
type Counter struct {
	mu sync.Mutex
	n  int
}

func (c Counter) Bad() int { // want lockcopy "pointer receiver"
	return c.n
}

func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func Snapshot(c Counter) int { // want lockcopy "by value"
	return c.n
}

func ByPointer(c *Counter) int {
	return c.n
}

func CopyOut(c *Counter) {
	snapshot := *c // want lockcopy "copies lock-bearing value"
	_ = snapshot
}

func Sum(cs []Counter) int {
	total := 0
	for _, c := range cs { // want lockcopy "range copies"
		total += c.n
	}
	return total
}

func SumByIndex(cs []Counter) int {
	total := 0
	for i := range cs {
		total += cs[i].n
	}
	return total
}
