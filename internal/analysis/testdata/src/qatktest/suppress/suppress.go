// Package suppress exercises //lint:ignore handling: a well-formed
// suppression silences the finding on the next line, a reasonless or
// unknown-check suppression is itself reported and silences nothing.
// (This file is asserted explicitly by the driver tests, not via want
// comments.)
package suppress

import "fmt"

// Wrapped carries a sanctioned suppression with a reason.
func Wrapped(err error) error {
	//lint:ignore qatklint/errattr the legacy log format is parsed downstream
	return fmt.Errorf("legacy: %v", err)
}

// MissingReason omits the mandatory reason: the suppression is reported
// and the finding below survives.
func MissingReason(err error) error {
	//lint:ignore qatklint/errattr
	return fmt.Errorf("legacy: %v", err)
}

// UnknownCheck names an analyzer that does not exist.
func UnknownCheck(err error) error {
	//lint:ignore qatklint/nosuchcheck the check name is misspelled
	return fmt.Errorf("legacy: %v", err)
}
