// Package suppress exercises //lint:ignore handling: a well-formed
// suppression silences the finding on the next line, a reasonless or
// unknown-check suppression is itself reported and silences nothing.
// (This file is asserted explicitly by the driver tests, not via want
// comments.)
package suppress

import (
	"fmt"
	"sync"
)

// Wrapped carries a sanctioned suppression with a reason.
func Wrapped(err error) error {
	//lint:ignore qatklint/errattr the legacy log format is parsed downstream
	return fmt.Errorf("legacy: %v", err)
}

// MissingReason omits the mandatory reason: the suppression is reported
// and the finding below survives.
func MissingReason(err error) error {
	//lint:ignore qatklint/errattr
	return fmt.Errorf("legacy: %v", err)
}

// UnknownCheck names an analyzer that does not exist.
func UnknownCheck(err error) error {
	//lint:ignore qatklint/nosuchcheck the check name is misspelled
	return fmt.Errorf("legacy: %v", err)
}

// Unused carries a suppression that matches nothing: the wrapped error
// below is errattr-clean, so the stale comment is itself a finding.
func Unused(err error) error {
	//lint:ignore qatklint/errattr nothing below actually trips errattr
	return fmt.Errorf("suppress: wrapped: %w", err)
}

// mutexed lets lockcopy fire on the same line as an errattr finding.
type mutexed struct{ mu sync.Mutex }

// MultiDiag puts two analyzers on one statement line: the suppression
// names only errattr, so the lockcopy finding on the same line survives.
//
//lint:ignore qatklint/errattr the legacy log format is parsed downstream
func MultiDiag(m mutexed, err error) error { return fmt.Errorf("legacy: %v", err) }
