module qatktest

go 1.22
