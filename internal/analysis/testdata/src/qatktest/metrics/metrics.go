// Package metrics exercises the metricname analyzer: instrument
// resolutions with conforming constants pass, inline literals,
// unprefixed, unsuffixed, camel-cased and function-local names are
// findings.
package metrics

import "qatktest/internal/obs"

// Conforming package-level metric name constants.
const (
	MetricRunsTotal       = "qatk_pipeline_runs_total"
	MetricLatencySeconds  = "quest_http_request_duration_seconds"
	MetricWALBytes        = "reldb_wal_bytes"
	MetricInflight        = "quest_http_requests_inflight"
	MetricFlightBundles   = "obs_flight_bundles_total"
	MetricSLOBreaches     = "quest_slo_breaches_total"
	MetricShardRequests   = "quest_shard_requests_total"
	MetricShardHedges     = "quest_shard_hedges_total"
	MetricShardDuration   = "quest_shard_query_duration_seconds"
	MetricShardInflight   = "quest_shard_queries_inflight"
	MetricSpanNamesDrop   = "obs_span_names_dropped_total"
	MetricReqObserved     = "obs_req_observed_total"
	MetricReqRetained     = "obs_req_retained_total"
	MetricReqDropped      = "obs_req_dropped_total"
	MetricReqThreshold    = "obs_req_tail_threshold_seconds"
	MetricReqExemplars    = "quest_req_exemplars_total"
	MetricApplyLag        = "repl_apply_lag_seconds"
	MetricAppliedFrames   = "repl_applied_frames_total"
	MetricProfCaptures    = "prof_captures_total"
	MetricProfRingBytes   = "prof_ring_bytes"
	MetricProfCaptureSec  = "prof_capture_seconds"
	MetricBuildInfo       = "build_info" // sanctioned prefix-free exception
	metricNoPrefixTotal   = "pipeline_runs_total"
	metricNoUnit          = "qatk_pipeline_runs"
	metricCamelCase       = "qatk_PipelineRuns_total"
	metricDoubleUnderline = "qatk__runs_total"
)

// Register resolves every shape the analyzer distinguishes.
func Register(r *obs.Registry) {
	r.Counter(MetricRunsTotal)
	r.Histogram(MetricLatencySeconds, []float64{0.1, 1})
	r.Gauge(MetricWALBytes, obs.L("dir", "db"))
	r.Gauge(MetricInflight)
	r.Counter(MetricFlightBundles, obs.L("reason", "slo_breach"))
	r.Counter(MetricSLOBreaches)
	r.Counter(MetricShardRequests, obs.L("shard", "0"))
	r.Counter(MetricShardHedges, obs.L("shard", "0"))
	r.Histogram(MetricShardDuration, []float64{0.01, 0.1})
	r.Gauge(MetricShardInflight)
	r.Counter(MetricSpanNamesDrop)
	r.Counter(MetricReqObserved)
	r.Counter(MetricReqRetained, obs.L("reason", "slow"))
	r.Counter(MetricReqDropped)
	r.Gauge(MetricReqThreshold)
	r.Counter(MetricReqExemplars)
	r.Gauge(MetricApplyLag, obs.L("replica", "r0"))
	r.Counter(MetricAppliedFrames, obs.L("replica", "r0"))
	r.Counter(MetricProfCaptures, obs.L("profile", "cpu"))
	r.Gauge(MetricProfRingBytes)
	r.Histogram(MetricProfCaptureSec, []float64{0.01, 0.25})
	r.Gauge(MetricBuildInfo).Set(1)

	r.Counter("qatk_inline_total")    // want metricname "package-level constant"
	r.Counter(metricNoPrefixTotal)    // want metricname "subsystem prefix"
	r.Gauge(metricNoUnit)             // want metricname "unit suffix"
	r.Histogram(metricCamelCase, nil) // want metricname "not snake_case"
	r.Counter(metricDoubleUnderline)  // want metricname "not snake_case"
	r.Counter(name())                 // want metricname "package-level constant"

	const local = "quest_local_requests_total"
	r.Counter(local) // want metricname "declared at package level"
}

// name builds a metric name dynamically — exactly what the analyzer
// forbids at resolution sites.
func name() string { return "qatk_dynamic_total" }
