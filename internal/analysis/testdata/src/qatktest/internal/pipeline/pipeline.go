// Package pipeline may recover: it is the designated recovery layer
// (matched by import-path suffix internal/pipeline).
package pipeline

// Safe converts a panic from f into a return value.
func Safe(f func()) (recovered any) {
	defer func() {
		recovered = recover()
	}()
	f()
	return nil
}
