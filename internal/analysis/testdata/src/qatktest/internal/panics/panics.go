// Package panics exercises the paniccontract analyzer. It imports the
// cas stub, which puts it on the engine/consumer path: panics here rob
// the pipeline of its chance to attribute and dead-letter the document.
package panics

import "qatktest/internal/cas"

// Consume panics on an engine/consumer code path.
func Consume(c *cas.CAS) int {
	if c == nil {
		panic("nil CAS") // want paniccontract "engine/consumer"
	}
	return len(c.Segments())
}

// MustConsume follows the Must* convention: a documented panicking
// wrapper is exempt.
func MustConsume(c *cas.CAS) int {
	if c == nil {
		panic("panics: nil CAS")
	}
	return len(c.Segments())
}

// Guard installs its own recovery, which belongs to internal/pipeline.
func Guard(f func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil { // want paniccontract "recover"
			ok = false
		}
	}()
	f()
	return true
}
