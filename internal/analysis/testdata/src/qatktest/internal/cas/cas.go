// Package cas is a minimal stand-in for the repository's internal/cas
// package. The analyzers match *cas.CAS parameters and the engine scope
// by import-path suffix, so this fixture module exercises them without
// importing the real implementation.
package cas

// CAS holds an analysis structure whose memory is owned by the pipeline.
type CAS struct {
	segments []string
	text     string
}

// Segments exposes memory reachable from the CAS.
func (c *CAS) Segments() []string { return c.segments }

// First returns an immutable copy; retaining it is safe.
func (c *CAS) First() string { return c.text }
