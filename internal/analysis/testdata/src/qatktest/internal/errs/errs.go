// Package errs exercises the errattr analyzer: attribution prefixes at
// the package boundary, %w wrapping and sentinel comparisons.
package errs

import (
	"errors"
	"fmt"
)

// ErrMissing carries the package prefix; exported sentinels are boundary
// errors.
var ErrMissing = errors.New("errs: not found")

// ErrBad does not name its origin.
var ErrBad = errors.New("bad input") // want errattr "package prefix"

// Open is exported: its errors cross the package boundary unlabeled.
func Open(name string) error {
	return fmt.Errorf("cannot open %s", name) // want errattr "package prefix"
}

// Wrap formats its cause verbatim instead of wrapping it.
func Wrap(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("errs: open failed: %v", err) // want errattr "%w"
}

// Good wraps properly.
func Good(err error) error {
	return fmt.Errorf("errs: open failed: %w", err)
}

// IsMissing compares a sentinel directly; wrapping breaks it.
func IsMissing(err error) bool {
	return err == ErrMissing // want errattr "errors.Is"
}

// helper errors are wrapped once at the exported boundary, so the prefix
// rule does not apply to unexported functions.
func helper() error {
	return errors.New("short read")
}

var _ = helper
