// Package obs is a minimal stand-in for the repository's internal/obs
// package. The metricname analyzer matches the Registry instrument
// methods by import-path suffix, so this fixture module exercises it
// without importing the real implementation.
package obs

// Label is one metric label pair.
type Label struct{ Key, Value string }

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry resolves named instruments.
type Registry struct{}

// Counter mirrors the real resolution signature.
func (r *Registry) Counter(name string, labels ...Label) *Counter { return &Counter{} }

// Gauge mirrors the real resolution signature.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge { return &Gauge{} }

// Histogram mirrors the real resolution signature.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	return &Histogram{}
}

// Counter is a monotonic counter stub.
type Counter struct{}

// Inc stubs the increment.
func (c *Counter) Inc() {}

// Gauge is a settable gauge stub.
type Gauge struct{}

// Set stubs the assignment.
func (g *Gauge) Set(v float64) {}

// Histogram is a distribution stub.
type Histogram struct{}

// Observe stubs the observation.
func (h *Histogram) Observe(v float64) {}
