// Package retain exercises the casretain analyzer: Process methods that
// stash their borrowed *cas.CAS (or memory reachable from it) in places
// that outlive the call.
package retain

import "qatktest/internal/cas"

// Engine retains its CAS argument in every way the contract forbids.
type Engine struct {
	last   *cas.CAS
	tokens []string
}

var lastSeen *cas.CAS

func (e *Engine) Process(c *cas.CAS) error {
	e.last = c                       // want casretain "struct field"
	lastSeen = c                     // want casretain "package-level variable"
	e.tokens = c.Segments()          // want casretain "struct field"
	go func() { _ = c.Segments() }() // want casretain "goroutine" // want goroleak "no provable join"
	return nil
}

// Safe derives only values from the CAS; nothing is retained.
type Safe struct {
	n     int
	first string
}

func (s *Safe) Process(c *cas.CAS) error {
	segs := c.Segments() // a local borrow is fine
	s.n = len(segs)      // an int cannot retain CAS memory
	s.first = c.First()  // strings are immutable copies
	return nil
}

// NotProcess is not the Engine.Process entry point; the contract does
// not apply.
func (e *Engine) Warm(c *cas.CAS) {
	e.last = c
}
