// Package reldb exercises the vfsonly analyzer: this import path is the
// storage tier, where all file I/O must flow through the vfs.FS
// abstraction so crash and disk-fault injection cannot be bypassed.
// Direct package-os file calls and *os.File method calls are findings.
package reldb

import (
	"io/fs"
	"os"
)

// FS is a stand-in for the real vfs.FS; calls through an abstraction are
// the sanctioned pattern and produce no findings.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (*os.File, error)
	Rename(oldpath, newpath string) error
}

// WriteSnapshot uses the os package directly at every step.
func WriteSnapshot(dir string) error {
	f, err := os.Create(dir + "/db.snapshot.tmp") // want vfsonly "os.Create"
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("state")); err != nil { // want vfsonly "Write"
		f.Close() // want vfsonly "Close"
		return err
	}
	if err := f.Sync(); err != nil { // want vfsonly "Sync"
		return err
	}
	if err := f.Close(); err != nil { // want vfsonly "Close"
		return err
	}
	return os.Rename(dir+"/db.snapshot.tmp", dir+"/db.snapshot") // want vfsonly "os.Rename"
}

// OpenWAL opens the log file directly.
func OpenWAL(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644) // want vfsonly "os.OpenFile"
}

// Cleanup removes and recreates state with direct calls.
func Cleanup(dir string) error {
	if err := os.RemoveAll(dir); err != nil { // want vfsonly "os.RemoveAll"
		return err
	}
	return os.MkdirAll(dir, 0o755) // want vfsonly "os.MkdirAll"
}

// ThroughVFS routes the same operations through the abstraction; no
// findings here.
func ThroughVFS(fsys FS, dir string) error {
	f, err := fsys.OpenFile(dir+"/db.wal", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	_ = f
	return fsys.Rename(dir+"/a", dir+"/b")
}

// Getenv is an os call that does not touch the filesystem; out of scope.
func Getenv() string {
	return os.Getenv("RELDB_DIR")
}
