// Package guarded exercises the guardedby analyzer: fields annotated
// //qatk:guardedby <lock> may only be touched while the named sibling
// lock is statically held; writes need the exclusive lock; *Locked
// functions and composite-literal construction are exempt.
package guarded

import "sync"

// counter machine-checks its mutable state against mu.
type counter struct {
	mu   sync.RWMutex
	n    int      //qatk:guardedby mu
	log  []string //qatk:guardedby mu
	name string   // unannotated: free access
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.log = append(c.log, c.name)
}

func (c *counter) read() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

func (c *counter) bad() int {
	return c.n // want guardedby "requires holding mu"
}

func (c *counter) badWrite() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n = 0 // want guardedby "only RLock is held"
}

func (c *counter) afterUnlock() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.log = nil // want guardedby "requires holding mu"
}

// resetLocked follows the caller-holds-the-lock convention: exempt.
func (c *counter) resetLocked() {
	c.n = 0
	c.log = c.log[:0]
}

func (c *counter) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetLocked()
}

// newCounter constructs via composite literal: initialization before the
// value is shared is not an access.
func newCounter() *counter {
	return &counter{name: "fresh", log: make([]string, 0, 4)}
}

// aliased locks through a local alias; lock and access must key to the
// same root object.
type wrapper struct{ c *counter }

func (w *wrapper) aliased() int {
	c := w.c
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// goroutineEscape: the launched body does not inherit the critical
// section.
func (c *counter) goroutineEscape() chan struct{} {
	done := make(chan struct{}, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n = 2 // want guardedby "requires holding mu"
		done <- struct{}{}
	}()
	c.n = 3
	return done
}

// badAnnotation names a lock that is not a sibling field.
type badAnnotation struct {
	mu sync.Mutex
	v  int //qatk:guardedby missing // want guardedby "sibling field"
}

// monitor tolerates a racy read; the suppression records why.
func (c *counter) monitor() int {
	//lint:ignore qatklint/guardedby fixture: racy monitoring read tolerated by design
	return c.n
}
