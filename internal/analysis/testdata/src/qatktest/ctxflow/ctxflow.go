// Package ctxflow exercises the ctxflow analyzer: context propagation
// below a request-path root (declared here with //qatk:ctxroot so the
// fixture does not need net/http), Background/TODO severing the budget,
// sleeping on the request path, contexts stored in fields, and the
// unreachable-code negative cases.
package ctxflow

import (
	"context"
	"time"
)

// holder stashes a context for later: the budget no longer follows the
// call path.
type holder struct {
	ctx context.Context // want ctxflow "stored in a struct field"
}

// store's get is called through the interface below; the analyzer must
// resolve the edge to memstore.get to see its sleep.
type store interface {
	get(ctx context.Context) error
}

type memstore struct{}

func (memstore) get(ctx context.Context) error {
	time.Sleep(time.Millisecond) // want ctxflow "ignores cancellation"
	return ctx.Err()
}

// Handle is this fixture's request-path root.
//
//qatk:ctxroot
func Handle(ctx context.Context, s store) error {
	detach()
	drain()
	if err := relay(); err != nil {
		return err
	}
	if err := useStore(ctx, s); err != nil {
		return err
	}
	return lookup(ctx)
}

// detach severs the request budget.
func detach() {
	ctx := context.Background() // want ctxflow "severs the request's deadline"
	_ = ctx
}

// relay has nothing legitimate to forward to a context-taking callee.
func relay() error {
	return lookup(todoCtx()) // want ctxflow "no context parameter"
}

func todoCtx() context.Context {
	return context.TODO() // want ctxflow "severs the request's deadline"
}

// useStore forwards properly through the interface call.
func useStore(ctx context.Context, s store) error {
	return s.get(ctx)
}

// lookup is the clean shape: ctx in, honored, forwarded nowhere.
func lookup(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// drain detaches on purpose; the suppression records why.
func drain() {
	//lint:ignore qatklint/ctxflow fixture: drain path detaches by design
	ctx := context.Background()
	_ = ctx
}

// offline is reachable from no root: its Background is not the request
// path's problem.
func offline() *holder {
	return &holder{ctx: context.Background()}
}
