// Package datagen exercises the determinism analyzer: this package name
// is on the reproducibility-critical list, so ambient entropy and
// unsorted map-derived output are findings.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().Unix() // want determinism "time.Now"
}

// Draw uses the global generator.
func Draw() int {
	return rand.Intn(10) // want determinism "rand.Intn"
}

// Seeded draws from an injected generator; methods are fine.
func Seeded(r *rand.Rand) int {
	return r.Intn(10)
}

// NewGen builds a generator from an explicit seed; the seeded
// constructors are the sanctioned entry points.
func NewGen(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SortedKeys collects map keys and sorts them afterwards — the
// sanctioned pattern.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RawKeys leaks map iteration order into its result.
func RawKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want determinism "map iteration"
	}
	return keys
}

// Dump prints during map iteration.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want determinism "map iteration"
	}
}
