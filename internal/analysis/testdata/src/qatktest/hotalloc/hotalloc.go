// Package hotalloc exercises the hotalloc analyzer: //qatk:hotpath
// functions are gated on the compiler's escape analysis. Box and
// Escape demonstrate the gate failing when a hot function heap-allocates;
// Sum stays on the stack; Acknowledged and Tolerated show the two escape
// hatches (//qatk:allowalloc and //lint:ignore).
package hotalloc

// Box boxes its argument into an interface: one heap allocation per call.
//
//qatk:hotpath
func Box(v int) any {
	return v // want hotalloc "escapes to heap"
}

// Escape returns the address of a local, forcing it to the heap.
//
//qatk:hotpath
func Escape() *int {
	x := 42 // want hotalloc "moved to heap"
	return &x
}

// Sum never allocates: the gate stays quiet.
//
//qatk:hotpath
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Acknowledged returns fresh memory on purpose; allowalloc records why.
//
//qatk:hotpath
func Acknowledged(n int) []int {
	//qatk:allowalloc the result buffer is the function's product
	return make([]int, n)
}

// Tolerated keeps a known escape under a reasoned lint suppression.
//
//qatk:hotpath
func Tolerated() *int {
	//lint:ignore qatklint/hotalloc fixture: demonstrating suppression of the gate
	y := 7
	return &y
}

// Cold allocates freely: no annotation, no gate.
func Cold() *int {
	z := 9
	return &z
}
