// Package goroleak exercises the goroleak analyzer: goroutines must
// carry a provable join or cancel path — WaitGroup.Done, a channel
// receive/select/range, or all sends provably buffered.
package goroleak

import (
	"context"
	"sync"
)

func compute() int { return 42 }

// LeakFireAndForget launches a function value: unresolvable statically.
func LeakFireAndForget(work func()) {
	go work() // want goroleak "cannot resolve"
}

// LeakNoSignal resolves but shows no join evidence.
func LeakNoSignal() {
	go func() { // want goroleak "no provable join"
		_ = compute()
	}()
}

// UnbufferedSend blocks forever once the receiver gives up.
func UnbufferedSend() chan int {
	out := make(chan int)
	go func() { out <- compute() }() // want goroleak "no provable join"
	return out
}

// JoinWaitGroup is the classic join.
func JoinWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = compute()
		}()
	}
	wg.Wait()
}

// CancelCtx has a ctx-done select.
func CancelCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// DrainRange ranges over a channel until it closes.
func DrainRange(ch chan int) int {
	done := make(chan struct{}, 1)
	go func() {
		sum := 0
		for v := range ch {
			sum += v
		}
		done <- struct{}{}
	}()
	<-done
	return 0
}

// BufferedSends sizes the buffer to the fan-out: losers cannot block.
func BufferedSends(n int) chan int {
	out := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) { out <- i }(i)
	}
	return out
}

// worker.loop is joined via its quit channel; start's `go w.loop()` must
// be resolved through the call graph to see it.
type worker struct {
	quit chan struct{}
	reqs chan int
}

func (w *worker) loop() {
	for {
		select {
		case <-w.quit:
			return
		case r := <-w.reqs:
			_ = r
		}
	}
}

func (w *worker) start() {
	go w.loop()
}

// Pump runs for the process lifetime on purpose; the suppression records
// why a human vouches for it.
func Pump(lines chan int) {
	//lint:ignore qatklint/goroleak fixture: process-lifetime pump, killed with the process
	go func() {
		for {
			lines <- compute()
		}
	}()
}
