module cleanmod

go 1.22
