// Package clean gives qatklint nothing to object to; the command must
// exit 0 on it.
package clean

// Add is as deterministic as it gets.
func Add(a, b int) int { return a + b }
