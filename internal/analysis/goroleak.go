package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak checks that every `go` statement has a provable join or
// cancel path — the hygiene internal/shard's hedging hand-proves with
// goroutine-count bracketing in its tests, promoted to a compile-time
// contract. A goroutine with none of the shapes below can outlive its
// request forever: blocked on an unbuffered send after the receiver gave
// up, or spinning with no one able to tell it to stop.
//
// Accepted evidence, looked for in the goroutine's body (a function
// literal, or the declaration of the called function/method resolved
// through the call graph, one level deep):
//
//   - a (*sync.WaitGroup).Done call — the launcher can Wait for it;
//   - any channel receive (<-ch, a select with a receive case, or
//     for-range over a channel) — the goroutine has a signal it drains
//     or blocks on, including ctx.Done() and quit channels;
//   - every channel send in the body targets a channel provably created
//     with a non-zero buffer in the surrounding function, so senders
//     cannot block even if the receiver abandoned the rendezvous (the
//     hedging pattern: make(chan out, len(attempts)) outlives losers).
//
// A `go` call that cannot be resolved (function value, method of an
// unloaded type) is reported as category "unresolved": the analyzer
// cannot vouch for it, and a suppression must say why a human can.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every `go` statement needs a provable join or cancel path: a WaitGroup.Done, " +
		"a channel receive/select/range in the body, or all sends on provably " +
		"buffered channels; anything else can leak the goroutine permanently.",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	eachFunc(pass, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, info, search := goroutineBody(pass, fd, gs)
			if body == nil {
				pass.Reportf(gs.Pos(), "unresolved",
					"cannot resolve the goroutine body statically, so no join or cancel path can be proven")
				return true
			}
			if !goroutineJoinEvidence(info, body, search) {
				pass.Reportf(gs.Pos(), "no-join",
					"goroutine has no provable join or cancel path (no WaitGroup.Done, no channel receive, and not all sends provably buffered); it can leak permanently")
			}
			return true
		})
	})
	return nil
}

// goroutineBody resolves the body a `go` statement will execute: the
// literal itself, or — one level through the call graph — the declared
// function or method being launched. search is the declaration enclosing
// the body, used to resolve channel buffer capacities.
func goroutineBody(pass *Pass, enclosing *ast.FuncDecl, gs *ast.GoStmt) (ast.Node, *types.Info, *ast.FuncDecl) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, pass.Info, enclosing
	}
	callee := calleeFunc(pass.Info, gs.Call)
	if callee == nil || pass.Prog == nil {
		return nil, nil, nil
	}
	fd, ok := pass.Prog.Decls[callee]
	if !ok {
		return nil, nil, nil
	}
	return fd.Body, pass.Prog.PkgOf[callee].Info, fd
}

// goroutineJoinEvidence reports whether the body contains any accepted
// join/cancel shape (see the analyzer doc).
func goroutineJoinEvidence(info *types.Info, body ast.Node, search *ast.FuncDecl) bool {
	joined := false
	var sends []*ast.SendStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil && fn.FullName() == "(*sync.WaitGroup).Done" {
				joined = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				joined = true // a receive: the goroutine drains or blocks on a signal
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		case *ast.SendStmt:
			sends = append(sends, x)
		}
		return !joined
	})
	if joined {
		return true
	}
	if len(sends) == 0 {
		return false
	}
	for _, s := range sends {
		if !chanProvablyBuffered(info, s.Chan, search) {
			return false
		}
	}
	return true
}

// chanProvablyBuffered reports whether ch resolves to a local channel
// created with a non-zero buffer inside search. A constant capacity must
// be non-zero; a non-constant capacity (make(chan T, len(xs))) is
// accepted — the launcher sized the buffer to its fan-out.
func chanProvablyBuffered(info *types.Info, ch ast.Expr, search *ast.FuncDecl) bool {
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok || search == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	buffered := false
	ast.Inspect(search, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || info.Defs[lid] != obj || i >= len(x.Rhs) {
					continue
				}
				if makeChanBuffered(info, x.Rhs[i]) {
					buffered = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if info.Defs[name] != obj || i >= len(x.Values) {
					continue
				}
				if makeChanBuffered(info, x.Values[i]) {
					buffered = true
				}
			}
		}
		return !buffered
	})
	return buffered
}

// makeChanBuffered reports whether e is make(chan T, n) with n provably
// non-zero (non-zero constant, or any non-constant capacity expression).
func makeChanBuffered(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || !isBuiltinCall(info, call, "make") || len(call.Args) < 2 {
		return false
	}
	if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil {
		return tv.Value.String() != "0"
	}
	return true
}
