package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// MetricName enforces the observability naming contract at every
// obs.Registry instrument call site: the metric name must be a
// package-level constant (so the inventory is greppable and stable), in
// snake_case, carrying a subsystem prefix and a conventional unit
// suffix. Ad-hoc string literals drift into dashboards that can never be
// renamed; constants keep the exposition reviewable in one place.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "metric names passed to obs.Registry Counter/Gauge/Histogram must be package-level " +
		"string constants, snake_case, prefixed qatk_/quest_/reldb_/repl_/obs_/prof_ and suffixed with a unit " +
		"(_total, _seconds, _bytes, _info, _inflight); build_info is the one sanctioned exception.",
	Run: runMetricName,
}

// instrumentMethods are the Registry methods whose first argument is a
// metric family name.
var instrumentMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// metricPrefixes are the sanctioned subsystem prefixes.
var metricPrefixes = []string{"qatk_", "quest_", "reldb_", "repl_", "obs_", "prof_"}

// metricSuffixes are the conventional unit suffixes.
var metricSuffixes = []string{"_total", "_seconds", "_bytes", "_info", "_inflight"}

// snakeCaseRe matches lower-snake-case identifiers with no leading,
// trailing or doubled underscores.
var snakeCaseRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func runMetricName(pass *Pass) error {
	if !pathIs(pass.Pkg.Path(), "internal/obs") && !depends(pass, "internal/obs") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkMetricNameCall(pass, call)
			}
			return true
		})
	}
	return nil
}

// checkMetricNameCall validates the name argument of one instrument
// resolution call.
func checkMetricNameCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || !instrumentMethods[fn.Name()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !pathIs(fn.Pkg().Path(), "internal/obs") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	arg := ast.Unparen(call.Args[0])

	c := constArg(pass.Info, arg)
	if c == nil {
		pass.Reportf(arg.Pos(), "literal-name",
			"metric name passed to %s must be a package-level constant, not an inline expression", fn.Name())
		return
	}
	if c.Pkg() == nil || c.Parent() != c.Pkg().Scope() {
		pass.Reportf(arg.Pos(), "local-constant",
			"metric name constant %q must be declared at package level, not inside a function", c.Name())
		return
	}
	if c.Val().Kind() != constant.String {
		return
	}
	name := constant.StringVal(c.Val())
	if !snakeCaseRe.MatchString(name) {
		pass.Reportf(arg.Pos(), "not-snake-case",
			"metric name %q is not snake_case (lowercase words joined by single underscores)", name)
		return
	}
	if name == "build_info" {
		return // the conventional prefix-free build identity gauge
	}
	if !hasAnyPrefix(name, metricPrefixes) {
		pass.Reportf(arg.Pos(), "missing-prefix",
			"metric name %q lacks a subsystem prefix (%s)", name, strings.Join(metricPrefixes, ", "))
		return
	}
	if !hasAnySuffix(name, metricSuffixes) {
		pass.Reportf(arg.Pos(), "missing-unit",
			"metric name %q lacks a conventional unit suffix (%s)", name, strings.Join(metricSuffixes, ", "))
	}
}

// constArg resolves an identifier or selector expression to the
// *types.Const it names, nil for anything else.
func constArg(info *types.Info, e ast.Expr) *types.Const {
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	}
	c, _ := obj.(*types.Const)
	return c
}

func hasAnyPrefix(s string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

func hasAnySuffix(s string, suffixes []string) bool {
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}
