package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// HotAlloc is the compile-time allocation gate for hot-path functions.
// PR 3/5 pinned the observability fast paths at "0 allocs/op" with
// benchmarks; a benchmark only fails after someone runs it. This
// analyzer turns the claim into a static contract: annotate a function
//
//	//qatk:hotpath
//	func (c *Counter) Add(delta float64) { ... }
//
// and the analyzer shells out to `go build -gcflags=<pkg>=-m=2` for the
// annotated package, parses the compiler's escape-analysis diagnostics,
// and reports every heap escape ("x escapes to heap", interface boxing
// included) or heap move ("moved to heap: x") whose position falls
// inside an annotated function. The evidence is the real compiler's
// escape analysis, so the gate cannot drift from what the binary does —
// and the inverted-index kernel can be held to zero allocations from
// day one.
//
// An allocation that is the point of the function (a returned result
// slice) is acknowledged in place with
//
//	//qatk:allowalloc <reason>
//
// on the allocating line or the line above; the reason is mandatory.
// Unlike //lint:ignore, allowalloc is scoped to hotalloc and reads as
// API documentation: "this function returns fresh memory".
//
// String-literal subjects (`"..." escapes to heap`) are ignored — they
// are the compiler accounting for panic/error message constants on cold
// paths inlined into the function, not per-call allocations.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //qatk:hotpath must not heap-allocate: the analyzer " +
		"runs the compiler's escape analysis (go build -gcflags=-m=2) and fails on " +
		"any escape or heap move inside an annotated function unless the line " +
		"carries //qatk:allowalloc <reason>.",
	Run: runHotAlloc,
}

// hotFunc is one annotated function's position range.
type hotFunc struct {
	name      string
	file      string
	startLine int
	endLine   int
}

func runHotAlloc(pass *Pass) error {
	hot := collectHotFuncs(pass)
	if len(hot) == 0 {
		return nil
	}
	allow := collectAllowAlloc(pass)

	dir, importPath := passPackageDir(pass)
	if dir == "" {
		return nil // no build context (driver was handed no Program)
	}
	diags, err := escapeDiagnostics(dir, importPath)
	if err != nil {
		return fmt.Errorf("analysis: hotalloc: %w", err)
	}
	for _, d := range diags {
		fn := containingHotFunc(hot, d.file, d.line)
		if fn == nil {
			continue
		}
		// Report under the function's fset-absolute filename so
		// //lint:ignore suppression keys line up.
		if allow[fmt.Sprintf("%s:%d", fn.file, d.line)] {
			continue
		}
		pass.ReportPosf(token.Position{Filename: fn.file, Line: d.line, Column: d.col}, "escape",
			"%s in hot-path function %s (//qatk:hotpath); restructure to stay on the stack or acknowledge with //qatk:allowalloc <reason>", d.msg, fn.name)
	}
	return nil
}

// collectHotFuncs finds //qatk:hotpath annotated declarations.
func collectHotFuncs(pass *Pass) []hotFunc {
	var out []hotFunc
	eachFunc(pass, func(fd *ast.FuncDecl) {
		if !hasDirective(fd.Doc, "qatk:hotpath") {
			return
		}
		start := pass.Fset.Position(fd.Pos())
		end := pass.Fset.Position(fd.End())
		out = append(out, hotFunc{
			name:      fd.Name.Name,
			file:      start.Filename,
			startLine: start.Line,
			endLine:   end.Line,
		})
	})
	return out
}

// collectAllowAlloc maps "file:line" keys covered by a
// //qatk:allowalloc comment (its own line and the line below). A bare
// allowalloc with no reason is a finding: acknowledged allocations need
// the why recorded next to them.
func collectAllowAlloc(pass *Pass) map[string]bool {
	allow := map[string]bool{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "qatk:allowalloc") {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				reason := strings.TrimSpace(strings.TrimPrefix(text, "qatk:allowalloc"))
				if reason == "" {
					pass.Reportf(c.Pos(), "bad-annotation",
						"//qatk:allowalloc requires a reason explaining the acknowledged allocation")
					continue
				}
				allow[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = true
				allow[fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)] = true
			}
		}
	}
	return allow
}

// passPackageDir recovers the directory and import path of the pass's
// package from the shared Program.
func passPackageDir(pass *Pass) (dir, importPath string) {
	if pass.Prog == nil {
		return "", ""
	}
	for _, pkg := range pass.Prog.Pkgs {
		if pkg.Types == pass.Pkg {
			return pkg.Dir, pkg.ImportPath
		}
	}
	return "", ""
}

// escapeDiag is one parsed compiler escape diagnostic.
type escapeDiag struct {
	file string // absolute
	line int
	col  int
	msg  string
}

// escapeDiagnostics builds the package with -m=2 and parses the escape
// analysis output. The go build cache replays compiler diagnostics on
// cache hits, so repeated runs stay fast without -a.
func escapeDiagnostics(dir, importPath string) ([]escapeDiag, error) {
	cmd := exec.Command("go", "build", "-gcflags="+importPath+"=-m=2", importPath)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build %s: %w (%s)", importPath, err, lastLines(out.String(), 5))
	}

	// -m=2 prints each escape twice: a detail header ("x escapes to
	// heap:" with the flow trace) and a summary line, which for heap
	// moves reads "moved to heap: x". Dedupe by position, keeping the
	// later (summary) message.
	var diags []escapeDiag
	seen := map[string]int{}
	for _, line := range strings.Split(out.String(), "\n") {
		d, ok := parseEscapeLine(dir, line)
		if !ok {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d", d.file, d.line, d.col)
		if i, dup := seen[key]; dup {
			diags[i].msg = d.msg
			continue
		}
		seen[key] = len(diags)
		diags = append(diags, d)
	}
	return diags, nil
}

// parseEscapeLine extracts an escape/move diagnostic from one line of
// `-m=2` output ("file.go:10:12: x escapes to heap"). Indented flow
// detail, non-escape chatter (inlining decisions) and string-literal
// subjects are rejected.
func parseEscapeLine(dir, line string) (escapeDiag, bool) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 {
		return escapeDiag{}, false
	}
	lineNo, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return escapeDiag{}, false
	}
	msg := parts[3]
	if strings.HasPrefix(msg, "   ") {
		return escapeDiag{}, false // flow detail line
	}
	msg = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(msg), ":"))
	var subject string
	switch {
	case strings.HasSuffix(msg, " escapes to heap"):
		subject = strings.TrimSuffix(msg, " escapes to heap")
	case strings.HasPrefix(msg, "moved to heap: "):
		subject = strings.TrimPrefix(msg, "moved to heap: ")
	default:
		return escapeDiag{}, false
	}
	if strings.HasPrefix(subject, `"`) {
		return escapeDiag{}, false // message constant on an inlined cold path
	}
	// Keep the path as printed; containingHotFunc suffix-matches it
	// against fset-absolute filenames.
	return escapeDiag{file: parts[0], line: lineNo, col: col, msg: msg}, true
}

// containingHotFunc returns the annotated function covering file:line.
// The compiler prints file paths relative to a directory it chooses (the
// module root in practice), so the match is by path suffix against the
// annotated function's fset-absolute filename.
func containingHotFunc(hot []hotFunc, file string, line int) *hotFunc {
	for i := range hot {
		h := &hot[i]
		if line < h.startLine || line > h.endLine {
			continue
		}
		if h.file == file || strings.HasSuffix(h.file, "/"+file) {
			return h
		}
	}
	return nil
}

// lastLines returns the last n non-empty lines of s for error context.
func lastLines(s string, n int) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, " | ")
}
