package analysis

import (
	"go/ast"
	"go/types"
)

// LockCopy flags by-value copies of lock-bearing structs — by-value
// method receivers, by-value parameters, plain assignments and range
// copies. internal/quest and internal/reldb guard shared state with
// sync.Mutex/RWMutex; a copied lock splits what should be one critical
// section into two independent ones, a corruption bug the race detector
// only catches when the schedule cooperates.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc: "structs containing sync.Mutex/RWMutex (or other sync primitives) must not be " +
		"copied: no by-value receivers, parameters, assignments or range copies.",
	Run: runLockCopy,
}

// noCopyTypes are the sync package types that must not be copied after
// first use.
var noCopyTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

func runLockCopy(pass *Pass) error {
	memo := map[types.Type]bool{}
	locky := func(t types.Type) bool { return containsLock(t, memo) }

	eachFunc(pass, func(decl *ast.FuncDecl) {
		if decl.Recv != nil {
			for _, field := range decl.Recv.List {
				if t := pass.Info.TypeOf(field.Type); t != nil && locky(t) {
					pass.Reportf(field.Pos(), "receiver",
						"method %s has a by-value receiver of lock-bearing type %s; use a pointer receiver", decl.Name.Name, t)
				}
			}
		}
		for _, field := range decl.Type.Params.List {
			if t := pass.Info.TypeOf(field.Type); t != nil && locky(t) {
				pass.Reportf(field.Pos(), "param",
					"parameter of lock-bearing type %s is passed by value; pass a pointer", t)
			}
		}
	})

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range e.Rhs {
					if i >= len(e.Lhs) {
						break
					}
					if id, ok := e.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue // discarded, not retained as a second copy
					}
					if t := pass.Info.TypeOf(rhs); t != nil && locky(t) && copiesValue(rhs) {
						pass.Reportf(e.Pos(), "assign",
							"assignment copies lock-bearing value of type %s", t)
					}
				}
			case *ast.GenDecl:
				for _, spec := range e.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						if t := pass.Info.TypeOf(v); t != nil && locky(t) && copiesValue(v) {
							pass.Reportf(v.Pos(), "assign",
								"variable initialization copies lock-bearing value of type %s", t)
						}
					}
				}
			case *ast.RangeStmt:
				if e.Value == nil {
					return true
				}
				if t := pass.Info.TypeOf(e.Value); t != nil && locky(t) {
					pass.Reportf(e.Value.Pos(), "range",
						"range copies lock-bearing values of type %s; iterate by index or over pointers", t)
				}
			case *ast.CallExpr:
				if isBuiltinCall(pass.Info, e, "append") || isBuiltinCall(pass.Info, e, "len") || isBuiltinCall(pass.Info, e, "cap") {
					return true
				}
				for _, arg := range e.Args {
					if t := pass.Info.TypeOf(arg); t != nil && locky(t) && copiesValue(arg) {
						pass.Reportf(arg.Pos(), "argument",
							"call passes lock-bearing value of type %s by value", t)
					}
				}
			}
			return true
		})
	}
	return nil
}

// copiesValue reports whether the expression reads an *existing* value
// (which an enclosing assignment or call then copies). Composite literals
// and function results are fresh values and safe to bind once.
func copiesValue(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		_ = x
		return true
	}
	return false
}

// containsLock reports whether t (transitively through struct fields,
// embedded fields and arrays) contains one of the sync no-copy types.
func containsLock(t types.Type, memo map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if v, ok := memo[t]; ok {
		return v
	}
	memo[t] = false // cycle guard
	result := false
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && noCopyTypes[obj.Name()] {
			result = true
		} else {
			result = containsLock(u.Underlying(), memo)
		}
	case *types.Alias:
		result = containsLock(types.Unalias(u), memo)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), memo) {
				result = true
				break
			}
		}
	case *types.Array:
		result = containsLock(u.Elem(), memo)
	}
	memo[t] = result
	return result
}
