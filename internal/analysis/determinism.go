package analysis

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the package names whose outputs must be
// bit-identical across runs for a fixed seed: corpus generation, the
// 5-fold evaluation, the baselines, and chaos-fault schedules. Drawing
// from ambient sources of entropy there silently breaks reproducibility
// of every experiment figure.
var deterministicPkgs = map[string]bool{
	"datagen":  true,
	"eval":     true,
	"baseline": true,
	"faults":   true,
}

// Determinism forbids ambient entropy in the reproducibility-critical
// packages: no time.Now/time.Since calls, no global math/rand draws
// (seeded *rand.Rand instances must be injected), and no map iteration
// feeding ordered output unless the result is sorted afterwards.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "datagen, eval, baseline and faults must not call time.Now or the global " +
		"math/rand functions, and must sort map-derived output; inject a seeded *rand.Rand.",
	Run: runDeterminism,
}

// seededConstructors are the math/rand package-level functions that build
// generators from an injected seed rather than drawing from global state.
var seededConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func runDeterminism(pass *Pass) error {
	if !deterministicPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkEntropyCall(pass, call)
			}
			return true
		})
	}
	eachFunc(pass, func(decl *ast.FuncDecl) { checkMapOrder(pass, decl) })
	return nil
}

// checkEntropyCall flags calls into ambient entropy sources.
func checkEntropyCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on an injected *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
			pass.Reportf(call.Pos(), "wall-clock",
				"call to time.%s in deterministic package %q; inject a clock instead", fn.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "global-rand",
				"call to global rand.%s in deterministic package %q; inject a seeded *rand.Rand", fn.Name(), pass.Pkg.Name())
		}
	}
}

// checkMapOrder flags map-range loops that emit ordered output: appending
// to a slice declared outside the loop (unless that slice is sorted later
// in the same function) or writing/printing inside the loop body.
func checkMapOrder(pass *Pass, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.Info.TypeOf(rng.X); t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, decl, rng)
		return true
	})
}

func checkMapRangeBody(pass *Pass, decl *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range e.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinCall(pass.Info, call, "append") || len(call.Args) == 0 {
					continue
				}
				root := rootIdent(call.Args[0])
				if root == nil {
					continue
				}
				obj := pass.Info.Uses[root]
				if obj == nil || obj.Pos() > rng.Pos() {
					continue // loop-local accumulator
				}
				if sortedAfter(pass, decl, rng, obj) {
					continue // collect-then-sort is the sanctioned pattern
				}
				pass.Reportf(e.Pos(), "map-order",
					"append to %q inside map iteration emits random order; sort the result or iterate sorted keys", root.Name)
			}
		case *ast.CallExpr:
			if isOutputCall(pass, e) {
				pass.Reportf(e.Pos(), "map-order",
					"output emitted inside map iteration has random order; iterate sorted keys instead")
			}
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sort function after the
// range loop within the same function body.
func sortedAfter(pass *Pass, decl *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && pass.Info.Uses[root] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// isOutputCall recognizes direct output inside a loop body: fmt printing
// and Write/WriteString-style methods.
func isOutputCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() != "Sprintf" && fn.Name() != "Sprint" &&
		fn.Name() != "Sprintln" && fn.Name() != "Errorf" {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}
