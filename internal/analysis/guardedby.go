package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GuardedBy enforces a machine-checked lock-ownership vocabulary:
//
//	type Breaker struct {
//		mu    sync.Mutex
//		state State //qatk:guardedby mu
//	}
//
// Every read or write of an annotated field must happen while the named
// sibling lock is statically held (see walkHeld in helpers.go): between
// an X.Lock()/X.RLock() and the matching release on the same path, with
// defer X.Unlock() holding to function end. Writes additionally require
// the exclusive lock — mutating a field under RLock is its own category.
//
// Escape hatches that match the repository's idioms rather than fight
// them:
//
//   - functions whose name ends in "Locked" are skipped entirely — the
//     caller-holds-the-lock convention (reldb's writableLocked et al.)
//     is exactly the case the annotation cannot see locally;
//   - composite literals do not count as accesses, so constructors can
//     initialize fields before the value is shared;
//   - code inside `go` statements is analyzed with an empty lock set —
//     a goroutine does not inherit the launcher's critical section.
//
// The annotation must name a sibling field of the same struct; anything
// else is reported as category "bad-annotation". Annotations are checked
// within the declaring package (all current annotations guard unexported
// fields, which cannot be accessed elsewhere anyway).
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "fields annotated //qatk:guardedby <lock> may only be accessed while the " +
		"named sibling sync.Mutex/RWMutex is statically held; writes require the " +
		"exclusive lock. Functions named *Locked are exempt (caller holds it).",
	Run: runGuardedBy,
}

func runGuardedBy(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	eachFunc(pass, func(fd *ast.FuncDecl) {
		if isLockedSuffixed(fd.Name.Name) {
			return
		}
		walkHeld(pass.Info, fd.Body, func(n ast.Node, held heldSet) {
			writes := writeTargets(n)
			ast.Inspect(n, func(m ast.Node) bool {
				sel, ok := m.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := pass.Info.Selections[sel]
				if !ok {
					return true
				}
				fieldVar, ok := selection.Obj().(*types.Var)
				if !ok {
					return true
				}
				lockName, guarded := guards[fieldVar]
				if !guarded {
					return true
				}
				base, ok := lockExprKey(pass.Info, sel.X)
				if !ok {
					return true // unmodeled base (call result etc.): cannot key the lock
				}
				lockKey := base + "." + lockName
				mode, heldAtAll := held[lockKey]
				isWrite := writes[sel]
				switch {
				case !heldAtAll:
					pass.Reportf(sel.Pos(), "unguarded",
						"access to %s requires holding %s (//qatk:guardedby)", fieldVar.Name(), lockName)
				case isWrite && mode == lockRead:
					pass.Reportf(sel.Pos(), "write-under-rlock",
						"write to %s requires the exclusive %s lock, but only RLock is held", fieldVar.Name(), lockName)
				}
				return true
			})
		})
	})
	return nil
}

// isLockedSuffixed reports the caller-holds-the-lock naming convention.
func isLockedSuffixed(name string) bool {
	return len(name) > len("Locked") && name[len(name)-len("Locked"):] == "Locked" || name == "Locked"
}

// collectGuards gathers //qatk:guardedby annotations from the pass's
// struct declarations, validating that each names a sibling field.
func collectGuards(pass *Pass) map[*types.Var]string {
	guards := map[*types.Var]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			siblings := map[string]bool{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					siblings[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				arg, ok := directiveArg(field.Doc, "qatk:guardedby")
				if !ok {
					arg, ok = directiveArg(field.Comment, "qatk:guardedby")
				}
				if !ok {
					continue
				}
				// The lock name is the first token; anything after is
				// free-form commentary.
				lockName := ""
				if fields := strings.Fields(arg); len(fields) > 0 {
					lockName = fields[0]
				}
				if lockName == "" || !siblings[lockName] {
					pass.Reportf(field.Pos(), "bad-annotation",
						"//qatk:guardedby must name a sibling field of the struct (got %q)", lockName)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guards[v] = lockName
					}
				}
			}
			return true
		})
	}
	return guards
}

// writeTargets collects the expressions written to within one visited
// node: assignment left-hand sides (stripped of index/star/paren
// wrapping), inc/dec operands, and unary & operands (taking the address
// hands out mutable access).
func writeTargets(n ast.Node) map[ast.Expr]bool {
	writes := map[ast.Expr]bool{}
	mark := func(e ast.Expr) {
		for {
			writes[e] = true
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				return
			}
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(x.X)
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				mark(x.X)
			}
		}
		return true
	})
	return writes
}
