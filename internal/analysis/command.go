package analysis

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"strings"
)

// Exit codes of the qatklint command.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitError    = 2 // usage or load failure
)

// RunCommand implements the qatklint CLI: it loads the packages matching
// the pattern arguments (default ./...), runs every registered analyzer
// and writes findings to stdout. The exit code is ExitFindings iff
// findings exist, so `make lint` can gate merges on it.
func RunCommand(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qatklint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON keyed by file:line")
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	list := fs.Bool("help-checks", false, "list the registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: qatklint [-json] [-C dir] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return ExitError
	}
	if *list {
		for _, a := range All() {
			fmt.Fprintf(stdout, "%s\n    %s\n", a.ID(), a.Doc)
		}
		return ExitClean
	}

	fset := token.NewFileSet()
	pkgs, err := Load(fset, *dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return ExitError
	}
	diags, err := Run(fset, pkgs, All())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return ExitError
	}
	relativize(diags, *dir)
	if *jsonOut {
		if err := WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return ExitError
		}
	} else {
		WriteText(stdout, diags)
	}
	if len(diags) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// relativize rewrites absolute file names relative to dir when possible,
// keeping output stable across checkouts.
func relativize(diags []Diagnostic, dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(abs, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
}
