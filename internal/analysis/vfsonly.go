package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// VFSOnly keeps the storage tier honest about its I/O: inside
// internal/reldb (and its subpackages) every file operation must go
// through vfs.FS, because that indirection is what lets the crash
// harness enumerate power-cut points and inject disk faults. One direct
// os.OpenFile or (*os.File).Sync bypasses the fault matrix silently —
// the harness would keep passing while the bypassed call sites stay
// untested.
var VFSOnly = &Analyzer{
	Name: "vfsonly",
	Doc: "inside internal/reldb, direct file I/O through package os (Create, Open, OpenFile, " +
		"Rename, Remove, Mkdir, ReadFile, WriteFile, ...) or *os.File methods is forbidden; " +
		"all storage I/O must flow through vfs.FS so fault injection cannot be bypassed.",
	Run: runVFSOnly,
}

// osFileFuncs are the package-level os functions that touch the
// filesystem in ways reldb must route through vfs.FS.
var osFileFuncs = map[string]bool{
	"Create":     true,
	"Open":       true,
	"OpenFile":   true,
	"Rename":     true,
	"Remove":     true,
	"RemoveAll":  true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"ReadFile":   true,
	"WriteFile":  true,
	"Truncate":   true,
	"CreateTemp": true,
}

func runVFSOnly(pass *Pass) error {
	if !strings.Contains(pass.Pkg.Path(), "internal/reldb") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() != "os" {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil {
				// A method on an os type: *os.File I/O (Sync, Write,
				// Truncate, ...) is exactly the durability surface the
				// fault matrix must see.
				pass.Reportf(call.Pos(), "direct-file-method",
					"direct (*os.%s).%s call in reldb bypasses fault injection; use the vfs.File handle instead",
					recvTypeName(sig), fn.Name())
				return true
			}
			if osFileFuncs[fn.Name()] {
				pass.Reportf(call.Pos(), "direct-os-call",
					"direct os.%s call in reldb bypasses fault injection; route it through vfs.FS", fn.Name())
			}
			return true
		})
	}
	return nil
}

// recvTypeName names a method's receiver type without package qualifier
// or pointer marker.
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
