package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow checks that the request path propagates context.Context.
//
// The serving tier budgets every request with a deadline (per-shard
// timeouts, hedged attempts cancelled via context); that machinery only
// works if the context actually flows from the entry point to the code
// doing the waiting. A context.Background() three calls below a handler
// silently detaches everything beneath it from the request budget.
//
// The analyzer computes the set of functions reachable (over the static
// call graph, interface methods resolved to in-repo implementations)
// from the request-path roots:
//
//   - HTTP handlers: declared functions and methods whose parameters
//     include net/http.ResponseWriter and *net/http.Request;
//   - exported context-taking methods of internal/shard.Router;
//   - internal/pipeline.RunWithConfig, the batch entry point whose
//     per-document loop honors cancellation;
//   - anything annotated //qatk:ctxroot.
//
// The root set is deliberately scoped to request ENTRY points.
// Lifecycle and shutdown code — quest.ServeUntil's graceful-drain
// timeout, main()'s signal context — is not a root: a drain path
// legitimately derives a fresh context.Background() because the request
// contexts are exactly what is being drained. Scoping the roots keeps
// those paths exempt by design instead of by suppression.
//
// Within the reachable set, four shapes are findings:
//
//	background-call  context.Background()/context.TODO() severs the
//	                 caller's deadline and cancellation;
//	sleep-on-path    time.Sleep ignores cancellation — select on the
//	                 context's Done channel and a timer instead;
//	missing-ctx      a reachable function with no context parameter (and
//	                 no *http.Request to derive one from) calls an
//	                 in-repo context-taking function, so it has nothing
//	                 legitimate to forward;
//	ctx-field        a struct field of type context.Context (checked in
//	                 every loaded package, reachable or not): contexts
//	                 are call-scoped values, and storing one hides the
//	                 request budget from this analysis and from readers.
//
// Calls through function values and hook seams (shard.FaultHook,
// pipeline's dead-letter func) are not in the static call graph, so code
// reached only through them is not checked.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "functions reachable from request-path roots (HTTP handlers, shard.Router " +
		"entry points, pipeline.RunWithConfig, //qatk:ctxroot) must propagate " +
		"context.Context: no context.Background()/TODO() below a root, no " +
		"time.Sleep on the request path, no context stored in struct fields.",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	// ctx-field: flagged at the declaration wherever it appears.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if isContextType(pass.Info.TypeOf(field.Type)) {
					pass.Reportf(field.Pos(), "ctx-field",
						"context.Context stored in a struct field; contexts are call-scoped — pass one as a parameter so cancellation follows the call path")
				}
			}
			return true
		})
	}

	if pass.Prog == nil {
		return nil
	}
	reach := pass.Prog.RequestPathReachable()
	for _, fn := range pass.Prog.FuncsOf(pass.Pkg) {
		if !reach[fn] {
			continue
		}
		fd := pass.Prog.Decls[fn]
		hasCtx := hasCtxParam(fn)
		hasReq := hasRequestParam(fn)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil {
				return true
			}
			switch callee.FullName() {
			case "context.Background", "context.TODO":
				pass.Reportf(call.Pos(), "background-call",
					"context.%s in %s severs the request's deadline and cancellation; derive from the inbound context", callee.Name(), fn.Name())
			case "time.Sleep":
				pass.Reportf(call.Pos(), "sleep-on-path",
					"time.Sleep in request-path %s ignores cancellation; select on the context's Done channel and a timer instead", fn.Name())
			}
			if !hasCtx && !hasReq && hasCtxParam(callee) {
				if _, declared := pass.Prog.Decls[callee]; declared {
					pass.Reportf(call.Pos(), "missing-ctx",
						"request-path %s has no context parameter but calls context-taking %s; add a ctx parameter and forward it", fn.Name(), callee.Name())
				}
			}
			return true
		})
	}
	return nil
}

// hasRequestParam reports whether fn receives a *http.Request, giving it
// a legitimate context source via r.Context().
func hasRequestParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if types.TypeString(sig.Params().At(i).Type(), nil) == "*net/http.Request" {
			return true
		}
	}
	return false
}
