package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Root       bool // named by the requested patterns (vs. a dependency)
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Deps       map[string]bool // transitive import paths
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Deps       []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load locates the packages matching patterns below dir with
// `go list -json -deps`, parses them with go/parser and type checks them
// with go/types, dependencies first. It returns the packages named by the
// patterns (dependencies are type checked but not returned for analysis).
//
// CGO_ENABLED=0 is forced so that every dependency — including the
// standard library — can be type checked from pure Go source without a C
// toolchain or network access.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	checked := make(map[string]*types.Package, len(pkgs))
	var roots []*Package
	for _, lp := range pkgs {
		if lp.ImportPath == "unsafe" {
			checked["unsafe"] = types.Unsafe
			continue
		}
		if lp.Error != nil && !lp.DepOnly {
			return nil, fmt.Errorf("analysis: load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, lp, checked)
		if err != nil {
			if lp.DepOnly || lp.Standard {
				// A dependency that does not type check perfectly (e.g.
				// an assembly-backed stdlib package) is still usable for
				// analysis of the packages that import it.
				if pkg != nil && pkg.Types != nil {
					checked[lp.ImportPath] = pkg.Types
				}
				continue
			}
			return nil, err
		}
		checked[lp.ImportPath] = pkg.Types
		if !lp.DepOnly && !lp.Standard {
			pkg.Root = true
			roots = append(roots, pkg)
		}
	}
	if len(roots) == 0 {
		return nil, errors.New("analysis: no packages matched")
	}
	return roots, nil
}

// goList shells out to the go command, decoding the JSON stream.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %w", err)
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(out)
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			_ = cmd.Wait()
			return nil, fmt.Errorf("analysis: go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %w (%s)", err, strings.TrimSpace(stderr.String()))
	}
	return pkgs, nil
}

// mapImporter resolves import paths against already-checked packages,
// honoring the package's vendor ImportMap (e.g. net/http's vendored
// golang.org/x dependencies).
type mapImporter struct {
	checked   map[string]*types.Package
	importMap map[string]string
	fallback  types.Importer
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	if m.fallback != nil {
		return m.fallback.Import(path)
	}
	return nil, fmt.Errorf("analysis: import %q not loaded", path)
}

// check parses and type checks one package whose dependencies are already
// in checked.
func check(fset *token.FileSet, lp *listPkg, checked map[string]*types.Package) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var firstErr error
	conf := types.Config{
		Importer: &mapImporter{
			checked:   checked,
			importMap: lp.ImportMap,
			// The source importer covers test-only corner cases where a
			// dependency was not part of the go list stream.
			fallback: importer.ForCompiler(fset, "source", nil),
		},
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Deps:       make(map[string]bool, len(lp.Deps)),
	}
	for _, d := range lp.Deps {
		pkg.Deps[d] = true
	}
	if firstErr != nil {
		return pkg, fmt.Errorf("analysis: type check %s: %w", lp.ImportPath, firstErr)
	}
	return pkg, nil
}
