package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Cross-function dataflow support. The single-pass analyzers inspect one
// package at a time; the request-path analyzers (ctxflow, goroleak) need
// to know how control flows *between* functions — a context dropped three
// calls below a handler is just as lost as one dropped in the handler.
// Program is the whole-module view the driver builds once per run: every
// declared function, a static-dispatch call graph over them, and
// interface-method edges resolved to the in-repo implementations.
//
// The graph is deliberately static: calls through function values, fields
// of func type, and reflection are not resolved (the repository's hook
// seams — shard.FaultHook, pipeline.DeadLetterFunc — are therefore edges
// the graph does not see; analyzers that care must say so in their docs).

// Program is the whole-load view shared by every pass of one driver run.
type Program struct {
	Pkgs []*Package

	// Decls maps every function and method declared (with a body) in the
	// loaded root packages to its declaration.
	Decls map[*types.Func]*ast.FuncDecl
	// PkgOf maps each declared function to the package declaring it.
	PkgOf map[*types.Func]*Package
	// Calls holds the static call edges: caller to the set of resolved
	// callees, including in-repo implementations of called interface
	// methods. Calls made inside function literals belong to the
	// enclosing declared function.
	Calls map[*types.Func][]*types.Func

	// methodsByName indexes declared methods by name for interface
	// resolution.
	methodsByName map[string][]*types.Func

	reach     map[*types.Func]bool // memoized request-path reachability
	reachDone bool
}

// BuildProgram constructs the call graph over the loaded root packages.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:          pkgs,
		Decls:         map[*types.Func]*ast.FuncDecl{},
		PkgOf:         map[*types.Func]*Package{},
		Calls:         map[*types.Func][]*types.Func{},
		methodsByName: map[string][]*types.Func{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				prog.Decls[obj] = fd
				prog.PkgOf[obj] = pkg
				if fd.Recv != nil {
					prog.methodsByName[obj.Name()] = append(prog.methodsByName[obj.Name()], obj)
				}
			}
		}
	}
	for obj, fd := range prog.Decls {
		prog.addEdges(obj, fd)
	}
	// Deterministic edge order: analyzers iterate callees while reporting.
	for caller, callees := range prog.Calls {
		sort.Slice(callees, func(i, j int) bool {
			return callees[i].FullName() < callees[j].FullName()
		})
		prog.Calls[caller] = dedupeFuncs(callees)
	}
	return prog
}

// addEdges records every resolvable call made inside fn's declaration
// (function literals included — a goroutine launched in fn is still fn's
// control flow).
func (prog *Program) addEdges(fn *types.Func, fd *ast.FuncDecl) {
	info := prog.PkgOf[fn].Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return true
		}
		if _, declared := prog.Decls[callee]; declared {
			prog.Calls[fn] = append(prog.Calls[fn], callee)
			return true
		}
		if impls := prog.implementations(callee); len(impls) > 0 {
			prog.Calls[fn] = append(prog.Calls[fn], impls...)
		}
		return true
	})
}

// implementations resolves an interface method to the in-repo methods
// that implement it: declared methods of the same name whose receiver
// type satisfies the interface.
func (prog *Program) implementations(callee *types.Func) []*types.Func {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, m := range prog.methodsByName[callee.Name()] {
		recv := m.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		t := recv.Type()
		if types.Implements(t, iface) || types.Implements(types.NewPointer(derefType(t)), iface) {
			out = append(out, m)
		}
	}
	return out
}

// Reachable computes the transitive callee closure of the given roots.
func (prog *Program) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), roots...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		queue = append(queue, prog.Calls[fn]...)
	}
	return seen
}

// FuncsOf returns the declared functions of one package in source order.
func (prog *Program) FuncsOf(pkg *types.Package) []*types.Func {
	var out []*types.Func
	for obj, p := range prog.PkgOf {
		if p.Types == pkg {
			out = append(out, obj)
		}
	}
	sort.Slice(out, func(i, j int) bool { return prog.Decls[out[i]].Pos() < prog.Decls[out[j]].Pos() })
	return out
}

// derefType unwraps one pointer level.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// dedupeFuncs removes adjacent duplicates from a sorted callee list.
func dedupeFuncs(fns []*types.Func) []*types.Func {
	out := fns[:0]
	for i, fn := range fns {
		if i > 0 && fn == fns[i-1] {
			continue
		}
		out = append(out, fn)
	}
	return out
}

// --- request-path roots --------------------------------------------------

// Request-path roots are where a request's context budget is born. The
// set is deliberately scoped to request entry points and excludes
// lifecycle and shutdown code: a graceful-drain path (quest.ServeUntil's
// shutdown timeout, main's signal context) legitimately derives a fresh
// context.Background() because the request contexts are exactly what is
// being drained. The roots are:
//
//   - HTTP handlers: any declared function or method whose parameters
//     include net/http.ResponseWriter and *net/http.Request.
//   - Serving-tier entry points: exported methods of a type named Router
//     in a package path ending in internal/shard taking a
//     context.Context.
//   - The collection pipeline: a function named RunWithConfig in a
//     package path ending in internal/pipeline.
//   - Any function annotated with a //qatk:ctxroot doc comment.
func (prog *Program) requestPathRoots() []*types.Func {
	var roots []*types.Func
	for obj, fd := range prog.Decls {
		if prog.isRequestRoot(obj, fd) {
			roots = append(roots, obj)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })
	return roots
}

func (prog *Program) isRequestRoot(obj *types.Func, fd *ast.FuncDecl) bool {
	if hasDirective(fd.Doc, "qatk:ctxroot") {
		return true
	}
	if isHandlerShaped(obj) {
		return true
	}
	pkgPath := obj.Pkg().Path()
	if pathIs(pkgPath, "internal/pipeline") && obj.Name() == "RunWithConfig" {
		return true
	}
	if pathIs(pkgPath, "internal/shard") && fd.Recv != nil && ast.IsExported(obj.Name()) {
		if named, ok := derefType(obj.Type().(*types.Signature).Recv().Type()).(*types.Named); ok &&
			named.Obj().Name() == "Router" && hasCtxParam(obj) {
			return true
		}
	}
	return false
}

// RequestPathReachable returns (memoized) the set of declared functions
// reachable from the request-path roots.
func (prog *Program) RequestPathReachable() map[*types.Func]bool {
	if !prog.reachDone {
		prog.reach = prog.Reachable(prog.requestPathRoots())
		prog.reachDone = true
	}
	return prog.reach
}

// isHandlerShaped reports whether fn's parameters include an
// http.ResponseWriter and a *http.Request — the net/http handler
// contract, whose request carries the context.
func isHandlerShaped(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	var w, r bool
	for i := 0; i < sig.Params().Len(); i++ {
		switch types.TypeString(sig.Params().At(i).Type(), nil) {
		case "net/http.ResponseWriter":
			w = true
		case "*net/http.Request":
			r = true
		}
	}
	return w && r
}

// hasCtxParam reports whether fn takes a context.Context parameter.
func hasCtxParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && types.TypeString(t, nil) == "context.Context"
}

// hasDirective reports whether a comment group contains a //qatk:<name>
// machine directive (exact token, optionally followed by arguments).
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	_, ok := directiveArg(cg, directive)
	return ok
}

// directiveArg extracts the argument text of a //qatk:<name> directive
// from a comment group ("" when the directive is bare).
func directiveArg(cg *ast.CommentGroup, directive string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == directive {
			return "", true
		}
		if strings.HasPrefix(text, directive+" ") {
			return strings.TrimSpace(strings.TrimPrefix(text, directive+" ")), true
		}
	}
	return "", false
}
