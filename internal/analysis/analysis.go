// Package analysis is a stdlib-only static-analysis framework for the
// QATK repository. It exists because the pipeline's fault-tolerance layer
// (PR 1) encodes its correctness contracts — attributable errors, no
// retained CAS references, deterministic evaluation — by convention, and
// conventions rot as engines are added. qatklint turns them into
// machine-checked invariants.
//
// The framework deliberately avoids golang.org/x/tools: packages are
// located with `go list -json -deps`, parsed with go/parser and type
// checked with go/types, so the build stays dependency-free and offline.
//
// An Analyzer inspects one type-checked package at a time through a Pass
// and reports Diagnostics keyed by file:line. Findings can be suppressed
// in source with
//
//	//lint:ignore qatklint/<name> reason
//
// on the flagged line or the line directly above it; the reason string is
// mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the short analyzer name; the full diagnostic identifier is
	// "qatklint/<Name>".
	Name string
	// Doc is a one-paragraph description of the contract the analyzer
	// guards, shown by `qatklint -help`.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// ID returns the full diagnostic identifier, e.g. "qatklint/casretain".
func (a *Analyzer) ID() string { return "qatklint/" + a.Name }

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File // parsed non-test source files of the package
	Pkg      *types.Package
	Info     *types.Info
	// Deps holds the transitive import paths of the package (from
	// `go list -deps`), letting analyzers scope themselves to packages
	// that depend on a subsystem without walking the import graph.
	Deps map[string]bool
	// Prog is the whole-load call-graph view shared by every pass of one
	// driver run; nil when the driver was handed no packages.
	Prog *Program

	report func(Diagnostic)
}

// Reportf records a finding at pos. Category is a short machine-readable
// grouping within the analyzer (e.g. "field-store", "global-rand") that
// the JSON output carries for tooling.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Category: category,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportPosf records a finding at an already-resolved file position. It
// exists for analyzers whose evidence comes from outside the AST —
// hotalloc's findings originate in compiler escape diagnostics that only
// carry file:line:col text, not a token.Pos.
func (p *Pass) ReportPosf(position token.Position, category, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Category: category,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, addressable as file:line.
type Diagnostic struct {
	Analyzer string `json:"analyzer"` // short name; full ID is qatklint/<analyzer>
	Category string `json:"category,omitempty"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Key returns the file:line key the output formats group findings under.
func (d Diagnostic) Key() string { return fmt.Sprintf("%s:%d", d.File, d.Line) }

// String renders the diagnostic in the human output format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: qatklint/%s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}
