// Package datagen synthesizes the corpus the paper could not publish: the
// proprietary, anonymized warranty data set of §3.2 and the automotive
// part-and-error taxonomy of §4.5.3. The generator is fully deterministic
// under a seed and is built to reproduce every statistic the paper reports
// (bundle, part, article-code, error-code and singleton counts; ~70 words
// and ~26 concept mentions per text) as well as the *information structure*
// the experiments depend on: supplier reports are detailed and carry
// error-specific vocabulary, mechanic reports are superficial and noisy,
// and part of the discriminative vocabulary lies outside the taxonomy —
// the mechanism behind every result shape in §5. See DESIGN.md §2.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// wordGen builds unique pseudo-words from language-flavored syllables.
type wordGen struct {
	rng       *rand.Rand
	syllables []string
	used      map[string]bool
	counter   int
}

var syllablesDE = []string{
	"schm", "or", "lüft", "dicht", "ung", "kolb", "en", "well", "ge", "trieb",
	"häus", "fed", "er", "brems", "rad", "luft", "kühl", "schalt", "riem",
	"lag", "bolz", "zahn", "stift", "rohr", "klemm", "deck", "el", "halt",
	"blech", "schraub", "mutt", "keil", "dros", "sel", "pump", "ventil",
	"falt", "glüh", "zünd", "kerz", "wisch", "spann", "rast", "nab", "flansch",
}

var syllablesEN = []string{
	"brack", "et", "hous", "ing", "seal", "shaft", "gear", "valve", "pump",
	"sens", "or", "clip", "mount", "lin", "er", "bear", "ring", "cool",
	"switch", "belt", "bolt", "tooth", "pin", "pipe", "clamp", "cov",
	"hold", "plate", "screw", "nut", "wedge", "throt", "tle", "plug",
	"wip", "ten", "sion", "latch", "hub", "flange", "duct", "rail",
}

// syllablesTech flavor the language-neutral technical detail vocabulary
// (material names, measurement jargon) that supplier reports use and the
// taxonomy does not cover.
var syllablesTech = []string{
	"ox", "id", "carb", "res", "du", "al", "torq", "volt", "amp", "therm",
	"crack", "fray", "wear", "melt", "brit", "tle", "lam", "in", "corr",
	"os", "shear", "fat", "igue", "leak", "clog", "mis", "align", "burr",
}

func newWordGen(rng *rand.Rand, syllables []string) *wordGen {
	return &wordGen{rng: rng, syllables: syllables, used: make(map[string]bool)}
}

// next produces a fresh unique word of 2–3 syllables.
func (g *wordGen) next() string {
	for tries := 0; ; tries++ {
		n := 2 + g.rng.Intn(2)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(g.syllables[g.rng.Intn(len(g.syllables))])
		}
		w := b.String()
		if tries > 20 {
			// Guarantee termination on exhausted combination space.
			g.counter++
			w = fmt.Sprintf("%s%d", w, g.counter)
		}
		if len(w) >= 4 && !g.used[w] {
			g.used[w] = true
			return w
		}
	}
}

// Generic complaint / processing vocabulary. These words carry no
// error-specific information; they pad the reports to realistic length and
// are exactly what the stopword experiment and the mechanic-report failure
// mode feed on.
var genericDE = []string{
	"kunde", "beanstandet", "fahrzeug", "werkstatt", "teil", "ausgebaut",
	"geprüft", "prüfung", "befund", "ohne", "eindeutig", "ergebnis",
	"zeitweise", "sporadisch", "reklamation", "austausch", "erneuert",
	"funktion", "gestört", "nicht", "mehr", "seit", "wochen", "tagen",
	"beim", "fahren", "kalt", "warm", "laut", "leise", "wieder", "immer",
	"montiert", "demontiert", "gewechselt", "überprüft", "festgestellt",
	"keine", "auffälligkeit", "leider", "erneut", "aufgetreten", "siehe",
	"bericht", "anbei", "garantie", "gewährleistung", "km-stand", "einsatz",
}

var genericEN = []string{
	"customer", "complains", "vehicle", "workshop", "part", "removed",
	"checked", "inspection", "finding", "without", "clear", "result",
	"intermittent", "sporadic", "claim", "exchange", "renewed",
	"function", "disturbed", "not", "anymore", "since", "weeks", "days",
	"when", "driving", "cold", "warm", "loud", "quiet", "again", "always",
	"mounted", "removed", "replaced", "verified", "found",
	"no", "abnormality", "unfortunately", "reoccurred", "see",
	"report", "attached", "warranty", "mileage", "operation", "duty",
}

// Supplier-side analysis phrases (per language).
var supplierPhrasesDE = []string{
	"analyse durchgeführt", "ursache ermittelt", "bauteil zerlegt",
	"messung im toleranzbereich", "fehlerbild reproduziert",
	"weitere untersuchung folgt", "lieferant übernimmt verantwortung",
}

var supplierPhrasesEN = []string{
	"analysis performed", "root cause identified", "component disassembled",
	"measurement within tolerance", "failure pattern reproduced",
	"further investigation follows", "supplier accepts responsibility",
}

// Initial OEM processing notes.
var initialPhrasesDE = []string{
	"eingang erfasst", "keine klaren ergebnisse", "weiterleitung an lieferant",
	"sichtprüfung ohne befund", "etwas schmutz entfernt",
}

var initialPhrasesEN = []string{
	"intake recorded", "no clear results", "forwarding to supplier",
	"visual inspection without findings", "removed some dirt",
}

// Final OEM conclusions.
var finalPhrasesDE = []string{
	"fehler bestätigt", "schlussbewertung abgeschlossen", "vorgang geschlossen",
}

var finalPhrasesEN = []string{
	"error confirmed", "final evaluation completed", "case closed",
}

// abbreviations maps long generic words to OEM-internal short forms; the
// "messy data" of §1.2 is riddled with them.
var abbreviations = map[string]string{
	"funktioniert":    "funkt.",
	"beanstandet":     "beanst.",
	"ausgetauscht":    "ausgt.",
	"gewährleistung":  "gewl.",
	"auffälligkeit":   "auffk.",
	"customer":        "cust",
	"intermittent":    "intermit.",
	"replaced":        "repl.",
	"inspection":      "insp.",
	"abnormality":     "abnorm.",
	"reklamation":     "rekla",
	"untersuchung":    "unters.",
	"verantwortung":   "verantw.",
	"responsibility":  "resp.",
	"investigation":   "invest.",
	"measurement":     "measurem.",
	"toleranzbereich": "tol-bereich",
}

// typo injects one character-level error into a word: adjacent swap,
// deletion or duplication — the spelling errors of "messy" reports.
func typo(rng *rand.Rand, w string) string {
	r := []rune(w)
	if len(r) < 3 {
		return w
	}
	switch rng.Intn(3) {
	case 0: // swap adjacent
		i := rng.Intn(len(r) - 1)
		r[i], r[i+1] = r[i+1], r[i]
	case 1: // drop one
		i := rng.Intn(len(r))
		r = append(r[:i], r[i+1:]...)
	default: // duplicate one
		i := rng.Intn(len(r))
		r = append(r[:i+1], r[i:]...)
	}
	return string(r)
}

// mangle applies messiness to a generic word: typos with probability
// typoP, abbreviation with probability abbrevP.
func mangle(rng *rand.Rand, w string, typoP, abbrevP float64) string {
	if a, ok := abbreviations[w]; ok && rng.Float64() < abbrevP {
		return a
	}
	if rng.Float64() < typoP {
		return typo(rng, w)
	}
	return w
}

// pick returns a uniformly random element.
func pick[T any](rng *rand.Rand, items []T) T {
	return items[rng.Intn(len(items))]
}

// sample returns n distinct elements (or all if n >= len).
func sample[T any](rng *rand.Rand, items []T, n int) []T {
	if n >= len(items) {
		out := append([]T(nil), items...)
		return out
	}
	idx := rng.Perm(len(items))[:n]
	out := make([]T, n)
	for i, j := range idx {
		out[i] = items[j]
	}
	return out
}
