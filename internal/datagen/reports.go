package datagen

import (
	"fmt"
	"math/rand"
	"strings"
	"unicode"

	"repro/internal/bundle"
)

// Report synthesis. The information structure mirrors what the paper
// reports about its sources (§5.3.2): "Mechanic reports tend to be poor in
// detail, focused on superficial problem description and often
// error-riddled, such that even human experts cannot draw conclusions about
// the detailed nature of the problem, whereas supplier reports tend to
// contain more detail and include descriptions of potential causes."

// synonym picks a random surface form of a concept in the given language.
// German concept mentions are nouns and are capitalized most of the time
// (sloppy writers skip it); the trie annotator lowercases and does not
// care, but the case-sensitive legacy annotator misses capitalized
// mentions — the §4.5.3 coverage gap.
func (c *Corpus) synonym(rng *rand.Rand, conceptID int, lang string) string {
	concept, ok := c.Taxonomy.Get(conceptID)
	if !ok {
		return ""
	}
	syns := concept.Synonyms[lang]
	s := concept.Label(lang)
	if len(syns) > 0 {
		s = pick(rng, syns)
	}
	if lang == "de" && rng.Float64() < 0.67 {
		s = capitalize(s)
	}
	return s
}

// capitalize upper-cases the first rune of each word (German noun style).
func capitalize(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		r := []rune(w)
		r[0] = unicode.ToUpper(r[0])
		words[i] = string(r)
	}
	return strings.Join(words, " ")
}

// stopwordsSprinkle are genuine closed-class words (all present in the
// textproc stopword lists) interleaved into the reports; they inflate the
// bag-of-words feature sets and are what the §5.2.2 stopword-removal
// optimization strips away.
var stopwordsSprinkleDE = []string{
	"der", "die", "das", "ist", "nicht", "und", "bei", "mit", "von", "auf",
	"eine", "wurde", "hat", "kein", "auch", "durch", "nach", "sehr",
}

var stopwordsSprinkleEN = []string{
	"the", "is", "not", "and", "at", "with", "of", "on",
	"a", "was", "has", "no", "this", "from", "after", "very",
}

// stopwordGlue returns the stopwords woven into one report. The reports
// are "mostly a mix of German and English" (§3.2) with heavy
// code-switching, so the top glue words of BOTH languages appear in
// essentially every report. Their constant presence inflates every
// bag-of-words feature set equally, which is why removing them shortens
// the runtime without changing accuracy (§5.2.2). A couple of random tail
// stopwords of the report's main language are added on top.
func stopwordGlue(rng *rand.Rand, lang string) []string {
	main, other := stopwordsSprinkleDE, stopwordsSprinkleEN
	if lang == "en" {
		main, other = other, main
	}
	out := append([]string(nil), main[:8]...)
	out = append(out, other[:4]...)
	for i := rng.Intn(3); i > 0; i-- {
		out = append(out, pick(rng, main[8:]))
	}
	return out
}

func (c *Corpus) lang(rng *rand.Rand, deShare float64) string {
	if rng.Float64() < deShare {
		return "de"
	}
	return "en"
}

func genericPool(lang string) []string {
	if lang == "de" {
		return genericDE
	}
	return genericEN
}

// mechanicReport: superficial, noisy, mostly generic complaint vocabulary;
// one symptom mention that is sometimes wrong or missing.
func (c *Corpus) mechanicReport(rng *rand.Rand, spec *CodeSpec, part *PartSpec) string {
	lang := c.lang(rng, 0.55)
	pool := genericPool(lang)
	var words []string
	for i := 6 + rng.Intn(5); i > 0; i-- {
		words = append(words, mangle(rng, pick(rng, pool), c.Config.MechanicTypoP, c.Config.AbbrevP))
	}
	words = append(words, stopwordGlue(rng, lang)...)
	// Symptom mention: 55% the true symptom, 30% a random symptom from the
	// part's pool (mechanic misdiagnosis), 15% none.
	r := rng.Float64()
	switch {
	case r < 0.55:
		words = append(words, maybeTypo(rng, c.synonym(rng, pick(rng, spec.Symptoms), lang), c.Config.MechanicTypoP))
	case r < 0.85:
		words = append(words, maybeTypo(rng, c.synonym(rng, pick(rng, part.SymptomPool), lang), c.Config.MechanicTypoP))
	}
	// Sometimes names the part itself.
	if rng.Float64() < 0.5 {
		words = append(words, maybeTypo(rng, c.synonym(rng, pick(rng, part.DescConcepts), lang), c.Config.MechanicTypoP))
	}
	// Occasionally the mechanic uses the habitual wording of a known
	// problem ("the usual ... issue") — a weak but real signal that makes
	// the full report set slightly stronger than the supplier report alone.
	if len(spec.UncoveredWords) > 0 && rng.Float64() < 0.15 {
		words = append(words, pick(rng, spec.UncoveredWords))
	}
	rng.Shuffle(len(words), func(i, j int) { words[i], words[j] = words[j], words[i] })
	return sentenceize(rng, words)
}

// initialOEMReport: short processing note, occasionally leaking one detail.
func (c *Corpus) initialOEMReport(rng *rand.Rand, spec *CodeSpec) string {
	lang := c.lang(rng, 0.7)
	phrases := initialPhrasesDE
	if lang == "en" {
		phrases = initialPhrasesEN
	}
	var words []string
	words = append(words, strings.Fields(pick(rng, phrases))...)
	for i := 2 + rng.Intn(4); i > 0; i-- {
		words = append(words, pick(rng, genericPool(lang)))
	}
	if rng.Float64() < 0.30 {
		words = append(words, pick(rng, spec.DetailWords))
	}
	words = append(words, stopwordGlue(rng, lang)...)
	return sentenceize(rng, words)
}

// supplierReport: detailed and discriminative — several correct symptom and
// component mentions, the error-specific detail vocabulary, and the cause.
func (c *Corpus) supplierReport(rng *rand.Rand, spec *CodeSpec) string {
	lang := c.lang(rng, 0.5)
	phrases := supplierPhrasesDE
	if lang == "en" {
		phrases = supplierPhrasesEN
	}
	var words []string
	words = append(words, strings.Fields(pick(rng, phrases))...)
	// About one supplier report in five is terse: it names no symptom in
	// taxonomy vocabulary at all, only the habitual wording and the
	// technical detail. The resulting bag-of-concepts knowledge nodes
	// carry little more than the part's component concepts — under the
	// overlap coefficient such small sets saturate at 1.0 for every query
	// of the part, which is precisely why overlap performs worst in §5.2.
	terse := rng.Float64() < 0.05
	// All symptoms of the error, each mentioned twice (symptom analysis is
	// the supplier's job), components once or twice. Where the code has an
	// uncovered habitual wording, that wording replaces one taxonomy
	// synonym — bag-of-words sees a code-consistent feature, the concept
	// annotator sees nothing.
	for i, s := range spec.Symptoms {
		if terse {
			words = append(words, spec.UncoveredWords...)
			break
		}
		if i == 0 && len(spec.UncoveredWords) > 0 {
			words = append(words, spec.UncoveredWords...)
			if rng.Float64() < 0.3 { // occasionally the covered term appears too
				words = append(words, c.synonym(rng, s, lang))
			}
			continue
		}
		words = append(words, maybeTypo(rng, c.synonym(rng, s, lang), c.Config.SupplierTypoP))
		words = append(words, c.synonym(rng, s, lang))
	}
	for _, comp := range spec.Components {
		words = append(words, maybeTypo(rng, c.synonym(rng, comp, lang), c.Config.SupplierTypoP))
		if rng.Float64() < 0.5 {
			words = append(words, c.synonym(rng, comp, lang))
		}
	}
	// 3–4 detail words plus the cause phrase. One supplier report in ten is
	// sparse and omits them (no deep analysis done) — for those bundles the
	// other report sources carry the only usable signal, which is why
	// classification on all reports stays slightly ahead of supplier-only
	// (§5.3: Fig. 13 is "nearly as good" as Fig. 11, not better).
	if rng.Float64() >= 0.1 {
		words = append(words, sample(rng, spec.DetailWords, 3+rng.Intn(2))...)
		words = append(words, spec.Cause...)
	}
	for i := 2 + rng.Intn(4); i > 0; i-- {
		words = append(words, mangle(rng, pick(rng, genericPool(lang)), c.Config.SupplierTypoP, c.Config.AbbrevP))
	}
	words = append(words, stopwordGlue(rng, lang)...)
	words = append(words, strings.Fields(pick(rng, phrases))...)
	rng.Shuffle(len(words), func(i, j int) { words[i], words[j] = words[j], words[i] })
	return sentenceize(rng, words)
}

// finalOEMReport: the expert's confirmation — training-phase text only.
func (c *Corpus) finalOEMReport(rng *rand.Rand, spec *CodeSpec) string {
	lang := c.lang(rng, 0.7)
	phrases := finalPhrasesDE
	if lang == "en" {
		phrases = finalPhrasesEN
	}
	var words []string
	words = append(words, strings.Fields(pick(rng, phrases))...)
	words = append(words, c.synonym(rng, pick(rng, spec.Symptoms), lang))
	for _, w := range sample(rng, spec.DetailWords, 2) {
		words = append(words, w)
	}
	for i := 3 + rng.Intn(4); i > 0; i-- {
		words = append(words, pick(rng, genericPool(lang)))
	}
	words = append(words, stopwordGlue(rng, lang)...)
	return sentenceize(rng, words)
}

// partDescription: the standardized part ID description in German and
// English — a rich source of component concept mentions. Standardized
// descriptions enumerate term variants, so each concept appears several
// times across both languages.
func (c *Corpus) partDescription(rng *rand.Rand, part *PartSpec) string {
	var words []string
	for _, comp := range part.DescConcepts {
		words = append(words, c.synonym(rng, comp, "de"))
		words = append(words, c.synonym(rng, comp, "en"))
		words = append(words, c.synonym(rng, comp, pick(rng, []string{"de", "en"})))
		if rng.Float64() < 0.6 {
			words = append(words, c.synonym(rng, comp, pick(rng, []string{"de", "en"})))
		}
	}
	// Standardized descriptions are Title Case throughout — invisible to
	// the lowercasing trie annotator, fatal for the case-sensitive legacy
	// matcher (§4.5.3).
	return capitalize(strings.Join(words, ", "))
}

// errorDescription: the standardized error code description (training
// phase only, §3.2). Codes with an uncovered habitual wording are also
// *described* in that wording — the error-code texts predate the taxonomy,
// which was built for social-media information extraction, not for this
// schema (§5.2.2) — so their primary symptom carries no taxonomy concept.
func (c *Corpus) errorDescription(rng *rand.Rand, spec *CodeSpec) string {
	var words []string
	for i, s := range spec.Symptoms {
		if i == 0 && len(spec.UncoveredWords) > 0 {
			words = append(words, spec.UncoveredWords...)
			continue
		}
		words = append(words, c.synonym(rng, s, "de"))
		words = append(words, c.synonym(rng, s, "en"))
	}
	words = append(words, sample(rng, spec.DetailWords, 2)...)
	return strings.Join(words, ", ")
}

func maybeTypo(rng *rand.Rand, w string, p float64) string {
	if rng.Float64() < p {
		return typo(rng, w)
	}
	return w
}

// sentenceize joins words into short pseudo-sentences with messy
// punctuation, as in the Fig. 3 example text.
func sentenceize(rng *rand.Rand, words []string) string {
	var b strings.Builder
	for i, w := range words {
		if i > 0 {
			switch {
			case rng.Float64() < 0.12:
				b.WriteString(". ")
			case rng.Float64() < 0.10:
				b.WriteString(", ")
			default:
				b.WriteString(" ")
			}
		}
		b.WriteString(w)
	}
	b.WriteString(".")
	return b.String()
}

// generateBundles materializes the data bundles from the code specs.
func (c *Corpus) generateBundles(rng *rand.Rand) {
	type job struct {
		spec *CodeSpec
		part *PartSpec
	}
	var jobs []job
	for pi := range c.Parts {
		p := &c.Parts[pi]
		for _, code := range p.Codes {
			spec := c.Codes[code]
			for k := 0; k < spec.Count; k++ {
				jobs = append(jobs, job{spec: spec, part: p})
			}
		}
	}
	rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })

	articleCursor := make(map[string]int, len(c.Parts))
	for i, j := range jobs {
		// Article code: the first len(pool) bundles of a part cover the
		// pool once (every article code appears); afterwards Zipf-ish.
		pool := j.part.Articles
		cur := articleCursor[j.part.ID]
		var article string
		if cur < len(pool) {
			article = pool[cur]
		} else {
			article = pool[rng.Intn(len(pool)/2+1)]
		}
		articleCursor[j.part.ID] = cur + 1

		b := &bundle.Bundle{
			RefNo:              fmt.Sprintf("R%06d", i+1),
			ArticleCode:        article,
			PartID:             j.part.ID,
			ErrorCode:          j.spec.Code,
			ResponsibilityCode: pick(rng, []string{"SUP", "OEM", "EXT", "N/A"}),
		}
		b.Reports = append(b.Reports, bundle.Report{
			Source: bundle.SourceMechanic,
			Text:   c.mechanicReport(rng, j.spec, j.part),
		})
		if rng.Float64() < 0.4 { // the initial OEM report is optional (§3.2)
			b.Reports = append(b.Reports, bundle.Report{
				Source: bundle.SourceInitialOEM,
				Text:   c.initialOEMReport(rng, j.spec),
			})
		}
		b.Reports = append(b.Reports,
			bundle.Report{Source: bundle.SourceSupplier, Text: c.supplierReport(rng, j.spec)},
			bundle.Report{Source: bundle.SourceFinalOEM, Text: c.finalOEMReport(rng, j.spec)},
			bundle.Report{Source: bundle.SourcePartDesc, Text: c.partDescription(rng, j.part)},
			bundle.Report{Source: bundle.SourceErrorDesc, Text: c.errorDescription(rng, j.spec)},
		)
		c.Bundles = append(c.Bundles, b)
	}
}
