package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/bundle"
	"repro/internal/taxonomy"
)

// Config parameterizes the corpus generator. The default reproduces the
// data-set statistics of paper §3.2 exactly.
type Config struct {
	Seed int64

	// Corpus shape.
	Bundles      int   // total data bundles
	Singletons   int   // error codes appearing exactly once
	ArticleCodes int   // distinct article codes
	CodesPerPart []int // distinct error codes per part ID (len = #parts)

	// Taxonomy shape.
	Components int
	Symptoms   int
	Locations  int
	Solutions  int

	// Zipf exponent for bundle counts across non-singleton codes within a
	// part; higher = steeper head (drives the code-frequency baseline).
	ZipfS float64

	// Messiness.
	MechanicTypoP float64
	SupplierTypoP float64
	AbbrevP       float64
}

// DefaultConfig is the paper-scale corpus: 7,500 bundles, 31 part IDs, 831
// article codes, 1,271 error codes of which 718 are singletons, taxonomy
// with ≈1,850 concepts.
func DefaultConfig() Config {
	return Config{
		Seed:       1,
		Bundles:    7500,
		Singletons: 718,
		// Sums to 1,271; max 146; 26 of 31 parts have > 10 codes (§3.2).
		CodesPerPart: []int{
			146, 114, 95, 85, 75, 70, 65, 60, 55, 50, 46, 42, 38, 35, 32,
			30, 28, 26, 24, 22, 20, 18, 16, 14, 13, 12, 10, 9, 8, 7, 6,
		},
		ArticleCodes:  831,
		Components:    880,
		Symptoms:      850,
		Locations:     60,
		Solutions:     60,
		ZipfS:         1.35,
		MechanicTypoP: 0.10,
		SupplierTypoP: 0.02,
		AbbrevP:       0.15,
	}
}

// SmallConfig is a scaled-down corpus for fast tests.
func SmallConfig() Config {
	return Config{
		Seed:          7,
		Bundles:       420,
		Singletons:    40,
		CodesPerPart:  []int{30, 20, 14, 8, 6},
		ArticleCodes:  45,
		Components:    120,
		Symptoms:      110,
		Locations:     10,
		Solutions:     10,
		ZipfS:         1.35,
		MechanicTypoP: 0.10,
		SupplierTypoP: 0.02,
		AbbrevP:       0.15,
	}
}

// PartSpec describes one part ID of the synthetic domain.
type PartSpec struct {
	ID           string
	Class        string // one of the three larger component classes (§3.2)
	DescConcepts []int  // component concepts in the part description
	SymptomPool  []int  // symptoms plausible for this part
	Articles     []string
	Codes        []string // error codes of this part, head (frequent) first
}

// CodeSpec describes one error code: which taxonomy concepts its bundles
// mention and which out-of-taxonomy detail vocabulary identifies it.
type CodeSpec struct {
	Code        string
	PartID      string
	Symptoms    []int    // 1–2 symptom concepts
	Components  []int    // 1–2 component concepts
	DetailWords []string // error-specific, language-neutral, NOT in taxonomy
	// UncoveredWords are symptom wordings habitually used for this code
	// that the legacy taxonomy does not cover (§5.2.2: the taxonomy "has
	// not yet been adapted to the current data source").
	UncoveredWords []string
	Cause          []string // cause phrase words (also detail vocabulary)
	Count          int      // number of data bundles carrying this code
}

// Corpus is the full synthetic data set.
type Corpus struct {
	Config   Config
	Taxonomy *taxonomy.Taxonomy
	Bundles  []*bundle.Bundle
	Parts    []PartSpec
	Codes    map[string]*CodeSpec
}

// Generate builds the corpus deterministically from the config.
func Generate(cfg Config) (*Corpus, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{Config: cfg, Codes: make(map[string]*CodeSpec)}

	tax, components, symptoms, err := generateTaxonomy(rng, cfg)
	if err != nil {
		return nil, err
	}
	c.Taxonomy = tax

	c.generateParts(rng, components, symptoms)
	c.generateCodes(rng)
	c.assignCounts(rng)
	c.assignArticles(rng)
	c.generateBundles(rng)
	return c, nil
}

func validate(cfg Config) error {
	totalCodes := 0
	for _, n := range cfg.CodesPerPart {
		if n < 2 {
			return fmt.Errorf("datagen: every part needs at least 2 codes, got %d", n)
		}
		totalCodes += n
	}
	if len(cfg.CodesPerPart) == 0 {
		return fmt.Errorf("datagen: CodesPerPart is empty")
	}
	if cfg.Singletons >= totalCodes {
		return fmt.Errorf("datagen: singletons (%d) must be < total codes (%d)", cfg.Singletons, totalCodes)
	}
	multi := totalCodes - cfg.Singletons
	if cfg.Bundles < cfg.Singletons+2*multi {
		return fmt.Errorf("datagen: %d bundles cannot cover %d singletons + 2×%d multi codes",
			cfg.Bundles, cfg.Singletons, multi)
	}
	if cfg.ArticleCodes < len(cfg.CodesPerPart) {
		return fmt.Errorf("datagen: need at least one article code per part")
	}
	if cfg.Components < 8 || cfg.Symptoms < 8 {
		return fmt.Errorf("datagen: taxonomy too small")
	}
	return nil
}

// generateTaxonomy builds the synthetic multilingual part-and-error
// taxonomy. Returns the component and symptom concept IDs.
func generateTaxonomy(rng *rand.Rand, cfg Config) (*taxonomy.Taxonomy, []int, []int, error) {
	tax := taxonomy.New()
	genDE := newWordGen(rng, syllablesDE)
	genEN := newWordGen(rng, syllablesEN)

	nextID := 10001
	build := func(kind taxonomy.Kind, pathRoot string, n int) ([]int, error) {
		ids := make([]int, 0, n)
		for i := 0; i < n; i++ {
			id := nextID
			nextID++
			de := []string{genDE.next()}
			en := []string{genEN.next()}
			// Synonym richness: 0–2 extra synonyms per language.
			for j := rng.Intn(3); j > 0; j-- {
				de = append(de, genDE.next())
			}
			for j := rng.Intn(3); j > 0; j-- {
				en = append(en, genEN.next())
			}
			// ~15% multiword terms ("squeaking noise" style).
			if rng.Float64() < 0.15 {
				de = append(de, de[0]+" "+pick(rng, []string{"einheit", "geräusch", "bereich", "modul"}))
				en = append(en, en[0]+" "+pick(rng, []string{"unit", "noise", "area", "module"}))
			}
			err := tax.Add(taxonomy.Concept{
				ID:   id,
				Kind: kind,
				Path: fmt.Sprintf("%s/Group%02d/C%d", pathRoot, i%24, id),
				Synonyms: map[string][]string{
					"de": de,
					"en": en,
				},
			})
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		return ids, nil
	}

	components, err := build(taxonomy.KindComponent, "Component", cfg.Components)
	if err != nil {
		return nil, nil, nil, err
	}
	symptoms, err := build(taxonomy.KindSymptom, "Symptom", cfg.Symptoms)
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := build(taxonomy.KindLocation, "Location", cfg.Locations); err != nil {
		return nil, nil, nil, err
	}
	if _, err := build(taxonomy.KindSolution, "Solution", cfg.Solutions); err != nil {
		return nil, nil, nil, err
	}
	return tax, components, symptoms, nil
}

// generateParts creates the part IDs with their component classes, part
// description concepts and symptom pools.
func (c *Corpus) generateParts(rng *rand.Rand, components, symptoms []int) {
	nParts := len(c.Config.CodesPerPart)
	classes := []string{"electronics", "powertrain", "chassis"}
	for i := 0; i < nParts; i++ {
		p := PartSpec{
			ID:    fmt.Sprintf("P%02d", i+1),
			Class: classes[i%len(classes)],
		}
		// 4–6 component concepts describe the part.
		p.DescConcepts = sample(rng, components, 4+rng.Intn(3))
		// A small pool of plausible symptoms; codes of this part draw
		// 1–2 from it, so many codes share identical concept sets — one
		// of the two reasons bag-of-concepts is less discriminative than
		// bag-of-words (§5.2.2: the taxonomy "was originally developed
		// for a different task").
		p.SymptomPool = sample(rng, symptoms, 6+rng.Intn(4))
		c.Parts = append(c.Parts, p)
	}
}

// generateCodes creates the error codes of every part with their concept
// and detail vocabularies.
func (c *Corpus) generateCodes(rng *rand.Rand) {
	genTech := newWordGen(rng, syllablesTech)
	// Error-code labels carry no meaning: assign numbers from a shuffled
	// pool so that label order correlates with neither part nor frequency.
	total := 0
	for _, n := range c.Config.CodesPerPart {
		total += n
	}
	numbers := rng.Perm(total)
	codeNo := 0
	for pi := range c.Parts {
		p := &c.Parts[pi]
		n := c.Config.CodesPerPart[pi]
		for j := 0; j < n; j++ {
			code := fmt.Sprintf("E%04d", numbers[codeNo]+1)
			codeNo++
			spec := &CodeSpec{
				Code:       code,
				PartID:     p.ID,
				Symptoms:   sample(rng, p.SymptomPool, 1+rng.Intn(3)),
				Components: sample(rng, p.DescConcepts, 1+rng.Intn(2)),
			}
			// The second reason bag-of-concepts underperforms: about half
			// the codes are habitually described with wordings the legacy
			// taxonomy does not cover. The wording is consistent across
			// the bundles of a code (it is how this problem is talked
			// about), so bag-of-words can exploit it and bag-of-concepts
			// cannot.
			if rng.Float64() < 0.5 {
				spec.UncoveredWords = []string{genTech.next()}
				if rng.Float64() < 0.4 {
					spec.UncoveredWords = append(spec.UncoveredWords, genTech.next())
				}
			}
			// 3–6 error-specific detail words plus a measurement token;
			// unique per code, language-neutral, outside the taxonomy.
			nd := 3 + rng.Intn(4)
			for k := 0; k < nd; k++ {
				spec.DetailWords = append(spec.DetailWords, genTech.next())
			}
			spec.DetailWords = append(spec.DetailWords, fmt.Sprintf("t%03d", rng.Intn(1000)))
			spec.Cause = []string{genTech.next(), genTech.next()}
			p.Codes = append(p.Codes, code)
			c.Codes[code] = spec
		}
	}
}

// assignCounts distributes the data bundles over the codes: the configured
// number of singleton codes get one bundle; the remaining codes get 2 plus
// a Zipf-weighted share of the rest, producing the steep per-part frequency
// head that the code-frequency baseline exploits (§5.1).
func (c *Corpus) assignCounts(rng *rand.Rand) {
	totalCodes := len(c.Codes)
	// Singletons per part, proportional with largest-remainder fix-up.
	singles := apportion(c.Config.Singletons, c.Config.CodesPerPart, totalCodes)
	type multiCode struct {
		spec   *CodeSpec
		rank   int // frequency rank within its part (0 = most frequent)
		weight float64
	}
	var multis []multiCode
	for pi := range c.Parts {
		p := &c.Parts[pi]
		nSingle := singles[pi]
		// The tail codes of each part become the singletons.
		nMulti := len(p.Codes) - nSingle
		for j, code := range p.Codes {
			if j < nMulti {
				multis = append(multis, multiCode{spec: c.Codes[code], rank: j})
				c.Codes[code].Count = 2
			} else {
				c.Codes[code].Count = 1
			}
		}
	}
	remaining := c.Config.Bundles - c.Config.Singletons - 2*len(multis)
	// Zipf weights by within-part rank.
	var wsum float64
	for i := range multis {
		multis[i].weight = 1.0 / math.Pow(float64(multis[i].rank+1), c.Config.ZipfS)
		wsum += multis[i].weight
	}
	assigned := 0
	for _, m := range multis {
		extra := int(math.Floor(float64(remaining) * m.weight / wsum))
		m.spec.Count += extra
		assigned += extra
	}
	// Distribute the rounding remainder over the heaviest codes.
	sort.SliceStable(multis, func(i, j int) bool { return multis[i].weight > multis[j].weight })
	for i := 0; assigned < remaining; i++ {
		multis[i%len(multis)].spec.Count++
		assigned++
	}
}

// apportion splits total proportionally to weights (largest remainder).
func apportion(total int, weights []int, weightSum int) []int {
	out := make([]int, len(weights))
	type rem struct {
		idx  int
		frac float64
	}
	var rems []rem
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * float64(w) / float64(weightSum)
		out[i] = int(math.Floor(exact))
		// Every part keeps at least 2 non-singleton codes where possible.
		if max := weights[i] - 2; out[i] > max && max >= 0 {
			out[i] = max
		}
		assigned += out[i]
		rems = append(rems, rem{i, exact - float64(out[i])})
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for i := 0; assigned < total; i = (i + 1) % len(rems) {
		idx := rems[i].idx
		if out[idx] < weights[idx]-2 {
			out[idx]++
			assigned++
		}
	}
	return out
}

// assignArticles allocates the article-code pools per part, proportional to
// each part's bundle volume.
func (c *Corpus) assignArticles(rng *rand.Rand) {
	volumes := make([]int, len(c.Parts))
	totalVol := 0
	for pi, p := range c.Parts {
		for _, code := range p.Codes {
			volumes[pi] += c.Codes[code].Count
		}
		totalVol += volumes[pi]
	}
	pools := apportionMin1(c.Config.ArticleCodes, volumes, totalVol)
	artNo := 1
	for pi := range c.Parts {
		n := pools[pi]
		if n > volumes[pi] {
			n = volumes[pi] // a pool larger than the bundle count cannot be fully used
		}
		for j := 0; j < n; j++ {
			c.Parts[pi].Articles = append(c.Parts[pi].Articles, fmt.Sprintf("A%06d", artNo))
			artNo++
		}
	}
	// If capping left article codes unassigned, give them to the largest parts.
	for artNo <= c.Config.ArticleCodes {
		big := 0
		for pi := range c.Parts {
			if volumes[pi]-len(c.Parts[pi].Articles) > volumes[big]-len(c.Parts[big].Articles) {
				big = pi
			}
		}
		c.Parts[big].Articles = append(c.Parts[big].Articles, fmt.Sprintf("A%06d", artNo))
		artNo++
	}
}

func apportionMin1(total int, weights []int, weightSum int) []int {
	out := make([]int, len(weights))
	assigned := 0
	for i, w := range weights {
		out[i] = int(math.Floor(float64(total) * float64(w) / float64(weightSum)))
		if out[i] < 1 {
			out[i] = 1
		}
		assigned += out[i]
	}
	for i := 0; assigned > total; i = (i + 1) % len(out) {
		if out[i] > 1 {
			out[i]--
			assigned--
		}
	}
	for i := 0; assigned < total; i = (i + 1) % len(out) {
		out[i]++
		assigned++
	}
	return out
}
