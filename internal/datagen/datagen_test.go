package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bundle"
)

func TestSmallCorpusShape(t *testing.T) {
	c, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := SmallConfig()
	if len(c.Bundles) != cfg.Bundles {
		t.Fatalf("bundles = %d, want %d", len(c.Bundles), cfg.Bundles)
	}
	if len(c.Parts) != len(cfg.CodesPerPart) {
		t.Fatalf("parts = %d", len(c.Parts))
	}
	st := c.Stats()
	if st.ErrorCodes != totalCodes(cfg) {
		t.Fatalf("codes = %d, want %d", st.ErrorCodes, totalCodes(cfg))
	}
	if st.SingletonCodes != cfg.Singletons {
		t.Fatalf("singletons = %d, want %d", st.SingletonCodes, cfg.Singletons)
	}
	if st.ArticleCodes != cfg.ArticleCodes {
		t.Fatalf("articles = %d, want %d", st.ArticleCodes, cfg.ArticleCodes)
	}
	// Consistency: filtered classes/bundles.
	if st.MultiCodes != st.ErrorCodes-st.SingletonCodes {
		t.Fatal("multi codes inconsistent")
	}
	if st.MultiBundles != st.Bundles-st.SingletonCodes {
		t.Fatal("multi bundles inconsistent")
	}
}

func totalCodes(cfg Config) int {
	n := 0
	for _, c := range cfg.CodesPerPart {
		n += c
	}
	return n
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Bundles) != len(b.Bundles) {
		t.Fatal("bundle counts differ")
	}
	for i := range a.Bundles {
		x, y := a.Bundles[i], b.Bundles[i]
		if x.RefNo != y.RefNo || x.ErrorCode != y.ErrorCode || x.Text() != y.Text() {
			t.Fatalf("bundle %d differs between runs", i)
		}
	}
}

func TestSeedChangesCorpus(t *testing.T) {
	cfg := SmallConfig()
	a, _ := Generate(cfg)
	cfg.Seed = 99
	b, _ := Generate(cfg)
	same := 0
	for i := range a.Bundles {
		if a.Bundles[i].Text() == b.Bundles[i].Text() {
			same++
		}
	}
	if same == len(a.Bundles) {
		t.Fatal("different seeds produced identical texts")
	}
}

func TestBundlesValid(t *testing.T) {
	c, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	refs := map[string]bool{}
	for _, b := range c.Bundles {
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
		if refs[b.RefNo] {
			t.Fatalf("duplicate ref %s", b.RefNo)
		}
		refs[b.RefNo] = true
		// Mandatory reports present.
		for _, src := range []bundle.Source{
			bundle.SourceMechanic, bundle.SourceSupplier,
			bundle.SourceFinalOEM, bundle.SourcePartDesc, bundle.SourceErrorDesc,
		} {
			if !b.HasReport(src) {
				t.Fatalf("bundle %s missing %s", b.RefNo, src)
			}
		}
		// Error code belongs to the right part.
		spec, ok := c.Codes[b.ErrorCode]
		if !ok || spec.PartID != b.PartID {
			t.Fatalf("bundle %s: code %s not of part %s", b.RefNo, b.ErrorCode, b.PartID)
		}
	}
}

func TestInitialReportOptional(t *testing.T) {
	c, _ := Generate(SmallConfig())
	st := c.Stats()
	frac := float64(st.BundlesWithInitial) / float64(st.Bundles)
	if frac < 0.25 || frac > 0.55 {
		t.Fatalf("initial-report share = %.2f, want ≈0.4", frac)
	}
}

func TestCodeCountsMatchSpecs(t *testing.T) {
	c, _ := Generate(SmallConfig())
	counts := map[string]int{}
	for _, b := range c.Bundles {
		counts[b.ErrorCode]++
	}
	for code, spec := range c.Codes {
		if counts[code] != spec.Count {
			t.Fatalf("code %s: %d bundles, spec says %d", code, counts[code], spec.Count)
		}
		if spec.Count < 1 {
			t.Fatalf("code %s has zero bundles", code)
		}
	}
}

func TestDetailWordsNotInTaxonomy(t *testing.T) {
	c, _ := Generate(SmallConfig())
	// Collect all taxonomy surface forms.
	surface := map[string]bool{}
	for _, concept := range c.Taxonomy.Concepts() {
		for _, lang := range concept.Languages() {
			for _, s := range concept.Synonyms[lang] {
				surface[strings.ToLower(s)] = true
			}
		}
	}
	for _, spec := range c.Codes {
		for _, w := range spec.DetailWords {
			if surface[w] {
				t.Fatalf("detail word %q of %s collides with a taxonomy term", w, spec.Code)
			}
		}
	}
}

func TestMessinessPresent(t *testing.T) {
	c, _ := Generate(SmallConfig())
	abbrevs := 0
	langsSeen := map[string]bool{}
	for _, b := range c.Bundles {
		text := b.Text()
		if strings.Contains(text, ".") {
			// fine — sentence punctuation exists
		}
		for _, a := range abbreviations {
			if strings.Contains(text, a) {
				abbrevs++
				break
			}
		}
		// Track rough language mixing via two marker words.
		if strings.Contains(text, "kunde") || strings.Contains(text, "geprüft") {
			langsSeen["de"] = true
		}
		if strings.Contains(text, "customer") || strings.Contains(text, "checked") {
			langsSeen["en"] = true
		}
	}
	if abbrevs == 0 {
		t.Fatal("no abbreviations in any bundle")
	}
	if !langsSeen["de"] || !langsSeen["en"] {
		t.Fatal("corpus is not multilingual")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{}, // empty
		func() Config { c := SmallConfig(); c.CodesPerPart = []int{1}; return c }(), // <2 codes
		func() Config { c := SmallConfig(); c.Singletons = 1000; return c }(),       // too many singletons
		func() Config { c := SmallConfig(); c.Bundles = 10; return c }(),            // too few bundles
		func() Config { c := SmallConfig(); c.ArticleCodes = 1; return c }(),        // too few articles
		func() Config { c := SmallConfig(); c.Components = 2; return c }(),          // taxonomy too small
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestPaperScaleStats generates the full corpus and asserts every §3.2
// statistic. This is the TestCorpusStatistics target of DESIGN.md §4.
func TestCorpusStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale corpus generation in -short mode")
	}
	c, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Bundles != 7500 {
		t.Errorf("bundles = %d, want 7500", st.Bundles)
	}
	if st.PartIDs != 31 {
		t.Errorf("parts = %d, want 31", st.PartIDs)
	}
	if st.ArticleCodes != 831 {
		t.Errorf("articles = %d, want 831", st.ArticleCodes)
	}
	if st.ErrorCodes != 1271 {
		t.Errorf("codes = %d, want 1271", st.ErrorCodes)
	}
	if st.SingletonCodes != 718 {
		t.Errorf("singletons = %d, want 718", st.SingletonCodes)
	}
	if st.MultiCodes != 553 {
		t.Errorf("classes = %d, want 553", st.MultiCodes)
	}
	if st.MultiBundles != 6782 {
		t.Errorf("filtered bundles = %d, want 6782", st.MultiBundles)
	}
	if st.MaxCodesPerPart != 146 {
		t.Errorf("max codes per part = %d, want 146", st.MaxCodesPerPart)
	}
	if st.PartsWithOver10 < 25 {
		t.Errorf("parts with >10 codes = %d, want >= 25", st.PartsWithOver10)
	}
	if st.AvgWordsPerText < 50 || st.AvgWordsPerText > 90 {
		t.Errorf("avg words = %.1f, want ≈70", st.AvgWordsPerText)
	}
	if st.AvgConceptsPerText < 18 || st.AvgConceptsPerText > 34 {
		t.Errorf("avg concept mentions = %.1f, want ≈26", st.AvgConceptsPerText)
	}
	if st.TaxonomyConceptsDE < 1500 || st.TaxonomyConceptsEN < 1500 {
		t.Errorf("taxonomy size = %d/%d, want ≈1800/1900", st.TaxonomyConceptsDE, st.TaxonomyConceptsEN)
	}
}

// TestRandomSmallConfigsInvariants fuzzes the generator over random small
// configurations: every valid config must yield a corpus whose counts are
// internally consistent.
func TestRandomSmallConfigsInvariants(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nParts := 2 + rng.Intn(4)
		codes := make([]int, nParts)
		total := 0
		for i := range codes {
			codes[i] = 4 + rng.Intn(20)
			total += codes[i]
		}
		singles := total / 3
		cfg := Config{
			Seed:          seed,
			Bundles:       singles + 2*(total-singles) + 50 + rng.Intn(200),
			Singletons:    singles,
			CodesPerPart:  codes,
			ArticleCodes:  nParts + rng.Intn(20),
			Components:    40 + rng.Intn(40),
			Symptoms:      40 + rng.Intn(40),
			Locations:     5,
			Solutions:     5,
			ZipfS:         1.0 + rng.Float64(),
			MechanicTypoP: rng.Float64() * 0.2,
			SupplierTypoP: rng.Float64() * 0.05,
			AbbrevP:       rng.Float64() * 0.3,
		}
		c, err := Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(c.Bundles) != cfg.Bundles {
			t.Fatalf("seed %d: bundles = %d, want %d", seed, len(c.Bundles), cfg.Bundles)
		}
		counts := map[string]int{}
		for _, b := range c.Bundles {
			if err := b.Validate(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			counts[b.ErrorCode]++
		}
		singletons := 0
		for _, n := range counts {
			if n == 1 {
				singletons++
			}
		}
		if len(counts) != total {
			t.Fatalf("seed %d: codes = %d, want %d", seed, len(counts), total)
		}
		if singletons != cfg.Singletons {
			t.Fatalf("seed %d: singletons = %d, want %d", seed, singletons, cfg.Singletons)
		}
	}
}
