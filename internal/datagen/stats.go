package datagen

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/annotate"
	"repro/internal/bundle"
	"repro/internal/textproc"
)

// CorpusStats are the §3.2 statistics of a generated corpus, used both in
// tests (asserting the paper's numbers) and by `experiments -stats`.
type CorpusStats struct {
	Bundles             int
	PartIDs             int
	ArticleCodes        int
	ErrorCodes          int
	SingletonCodes      int
	MultiCodes          int
	MultiBundles        int // bundles whose code appears more than once
	MaxCodesPerPart     int
	PartsWithOver10     int
	AvgWordsPerText     float64
	AvgConceptsPerText  float64 // concept *mentions*, as the paper counts
	TaxonomyConceptsDE  int
	TaxonomyConceptsEN  int
	BundlesWithInitial  int
	DistinctSymptomSets int
}

// Stats computes the corpus statistics. Token and concept counts run the
// actual QATK preprocessing over every bundle's test-phase text, so they
// measure exactly what the classifier sees.
func (c *Corpus) Stats() CorpusStats {
	st := CorpusStats{
		Bundles:            len(c.Bundles),
		PartIDs:            len(c.Parts),
		TaxonomyConceptsDE: c.Taxonomy.CountConceptsWithLanguage("de"),
		TaxonomyConceptsEN: c.Taxonomy.CountConceptsWithLanguage("en"),
	}
	articles := map[string]bool{}
	codeCounts := map[string]int{}
	for _, b := range c.Bundles {
		articles[b.ArticleCode] = true
		codeCounts[b.ErrorCode]++
		if b.HasReport(bundle.SourceInitialOEM) {
			st.BundlesWithInitial++
		}
	}
	st.ArticleCodes = len(articles)
	st.ErrorCodes = len(codeCounts)
	for _, n := range codeCounts {
		if n == 1 {
			st.SingletonCodes++
		} else {
			st.MultiCodes++
			st.MultiBundles += n
		}
	}
	for pi, p := range c.Parts {
		n := len(p.Codes)
		if n > st.MaxCodesPerPart {
			st.MaxCodesPerPart = n
		}
		if n > 10 {
			st.PartsWithOver10++
		}
		_ = pi
	}

	ann := annotate.NewConceptAnnotator(c.Taxonomy)
	totalWords, totalConcepts := 0, 0
	symptomSets := map[string]bool{}
	for _, spec := range c.Codes {
		key := fmt.Sprint(spec.Symptoms)
		symptomSets[key] = true
	}
	st.DistinctSymptomSets = len(symptomSets)
	for _, b := range c.Bundles {
		cs := b.CAS(bundle.TestSources()...)
		if err := (textproc.Tokenizer{}).Process(cs); err != nil {
			continue
		}
		if err := ann.Process(cs); err != nil {
			continue
		}
		totalWords += len(cs.Select(textproc.TypeToken))
		totalConcepts += len(cs.Select(annotate.TypeConcept))
	}
	if len(c.Bundles) > 0 {
		st.AvgWordsPerText = float64(totalWords) / float64(len(c.Bundles))
		st.AvgConceptsPerText = float64(totalConcepts) / float64(len(c.Bundles))
	}
	return st
}

// Print writes a human-readable stats table next to the paper's numbers.
func (st CorpusStats) Print(w io.Writer, paperScale bool) {
	type row struct {
		name  string
		got   string
		paper string
	}
	rows := []row{
		{"data bundles", fmt.Sprint(st.Bundles), "7500"},
		{"part IDs", fmt.Sprint(st.PartIDs), "31"},
		{"article codes", fmt.Sprint(st.ArticleCodes), "831"},
		{"distinct error codes", fmt.Sprint(st.ErrorCodes), "1271"},
		{"singleton error codes", fmt.Sprint(st.SingletonCodes), "718"},
		{"classes after filtering", fmt.Sprint(st.MultiCodes), "553"},
		{"bundles after filtering", fmt.Sprint(st.MultiBundles), "6782"},
		{"max codes for one part ID", fmt.Sprint(st.MaxCodesPerPart), "146"},
		{"part IDs with >10 codes", fmt.Sprint(st.PartsWithOver10), "25 of 31 (min)"},
		{"avg words per text", fmt.Sprintf("%.1f", st.AvgWordsPerText), "~70"},
		{"avg concept mentions per text", fmt.Sprintf("%.1f", st.AvgConceptsPerText), "~26"},
		{"taxonomy concepts (de)", fmt.Sprint(st.TaxonomyConceptsDE), "~1800"},
		{"taxonomy concepts (en)", fmt.Sprint(st.TaxonomyConceptsEN), "~1900"},
	}
	fmt.Fprintf(w, "%-32s %12s %16s\n", "statistic", "generated", "paper (§3.2)")
	for _, r := range rows {
		paper := r.paper
		if !paperScale {
			paper = "-"
		}
		fmt.Fprintf(w, "%-32s %12s %16s\n", r.name, r.got, paper)
	}
}

// SortedCodes returns all code specs ordered by code, for deterministic
// iteration in tools.
func (c *Corpus) SortedCodes() []*CodeSpec {
	out := make([]*CodeSpec, 0, len(c.Codes))
	for _, s := range c.Codes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}
