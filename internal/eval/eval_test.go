package eval

import (
	"reflect"
	"testing"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/kb"
)

// mediumCorpus is big enough for the experiment shapes to be visible but
// fast enough for the unit-test loop.
func mediumCorpus(t testing.TB) *datagen.Corpus {
	t.Helper()
	cfg := datagen.Config{
		Seed:          3,
		Bundles:       1600,
		Singletons:    150,
		CodesPerPart:  []int{60, 45, 35, 28, 22, 18, 14, 12, 8, 6},
		ArticleCodes:  120,
		Components:    300,
		Symptoms:      280,
		Locations:     20,
		Solutions:     20,
		ZipfS:         1.35,
		MechanicTypoP: 0.10,
		SupplierTypoP: 0.02,
		AbbrevP:       0.15,
	}
	c, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// mustRun is Run for tests, failing the test on engine errors.
func mustRun(t *testing.T, e *Experiment, v Variant) *Result {
	t.Helper()
	r, err := e.Run(v)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestStratifiedFoldsPartitionAndBalance(t *testing.T) {
	c := mediumCorpus(t)
	bundles := bundle.FilterMultiOccurrence(c.Bundles)
	folds := StratifiedFolds(bundles, 5, 1)
	seen := map[int]bool{}
	total := 0
	for _, f := range folds {
		total += len(f)
		for _, idx := range f {
			if seen[idx] {
				t.Fatalf("index %d in two folds", idx)
			}
			seen[idx] = true
		}
	}
	if total != len(bundles) {
		t.Fatalf("folds cover %d of %d", total, len(bundles))
	}
	// Balance: folds within ±10% of each other.
	min, max := len(folds[0]), len(folds[0])
	for _, f := range folds {
		if len(f) < min {
			min = len(f)
		}
		if len(f) > max {
			max = len(f)
		}
	}
	if max-min > len(bundles)/10 {
		t.Fatalf("folds unbalanced: min %d max %d", min, max)
	}
}

func TestStratifiedFoldsSpreadCodes(t *testing.T) {
	// A code with >= folds bundles must appear in more than one fold.
	bundles := []*bundle.Bundle{}
	for i := 0; i < 10; i++ {
		bundles = append(bundles, &bundle.Bundle{RefNo: string(rune('a' + i)), PartID: "P", ErrorCode: "X"})
	}
	folds := StratifiedFolds(bundles, 5, 1)
	for _, f := range folds {
		if len(f) != 2 {
			t.Fatalf("stratification uneven: %v", folds)
		}
	}
}

func TestStratifiedFoldsDeterministic(t *testing.T) {
	c := mediumCorpus(t)
	bundles := bundle.FilterMultiOccurrence(c.Bundles)
	a := StratifiedFolds(bundles, 5, 42)
	b := StratifiedFolds(bundles, 5, 42)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("folds differ between runs")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("folds differ between runs")
			}
		}
	}
}

// TestEvaluationBitIdentical runs the full stratified 5-fold
// cross-validation twice with the same seed and requires bit-identical
// results — the reproducibility contract qatklint/determinism guards.
// The clock is disabled so wall-clock timing cannot differ between runs.
func TestEvaluationBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation in -short mode")
	}
	c := mediumCorpus(t)
	run := func() (*Result, *Result) {
		e := New(c.Taxonomy, c.Bundles)
		e.Clock = nil
		r := mustRun(t, e, Variant{Name: "bow-j", Model: kb.BagOfWords, Sim: core.Jaccard{}})
		return r, e.RunFrequencyBaseline()
	}
	r1, f1 := run()
	r2, f2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("5-fold evaluation not bit-identical across runs:\n%#v\n%#v", r1, r2)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("frequency baseline not bit-identical across runs:\n%#v\n%#v", f1, f2)
	}
	for _, k := range DefaultKs {
		if r1.Accuracy[k] != r2.Accuracy[k] {
			t.Fatalf("accuracy@%d differs: %v vs %v", k, r1.Accuracy[k], r2.Accuracy[k])
		}
	}
}

// TestExperimentShapes checks the qualitative result structure of the
// paper's experiments on a mid-sized corpus (the exact paper-scale numbers
// are produced by cmd/experiments and the benchmarks).
func TestExperimentShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation in -short mode")
	}
	c := mediumCorpus(t)
	e := New(c.Taxonomy, c.Bundles)

	bowJ := mustRun(t, e, Variant{Name: "bow-j", Model: kb.BagOfWords, Sim: core.Jaccard{}})
	bocJ := mustRun(t, e, Variant{Name: "boc-j", Model: kb.BagOfConcepts, Sim: core.Jaccard{}})
	bocO := mustRun(t, e, Variant{Name: "boc-o", Model: kb.BagOfConcepts, Sim: core.Overlap{}})
	freq := e.RunFrequencyBaseline()
	cand, err := e.RunCandidateSetBaseline(kb.BagOfWords, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Fig. 11 ordering at k=1: bag-of-words > bag-of-concepts > frequency
	// baseline > candidate set; bag-of-concepts+overlap below baseline.
	if !(bowJ.Accuracy[1] > bocJ.Accuracy[1]) {
		t.Errorf("bag-of-words (%.2f) should beat bag-of-concepts (%.2f) at k=1",
			bowJ.Accuracy[1], bocJ.Accuracy[1])
	}
	if !(bocJ.Accuracy[1] > freq.Accuracy[1]) {
		t.Errorf("bag-of-concepts+jaccard (%.2f) should beat the frequency baseline (%.2f)",
			bocJ.Accuracy[1], freq.Accuracy[1])
	}
	if !(bocO.Accuracy[1] < freq.Accuracy[1]) {
		t.Errorf("bag-of-concepts+overlap (%.2f) should fall below the frequency baseline (%.2f) at k=1",
			bocO.Accuracy[1], freq.Accuracy[1])
	}
	if !(cand.Accuracy[1] < freq.Accuracy[1]) {
		t.Errorf("candidate-set baseline (%.2f) should be the weakest at k=1", cand.Accuracy[1])
	}
	// Curves are monotone in k and high by k=25 for the real classifiers.
	prev := 0.0
	for _, k := range DefaultKs {
		if bowJ.Accuracy[k] < prev {
			t.Fatalf("accuracy not monotone in k: %v", bowJ.Accuracy)
		}
		prev = bowJ.Accuracy[k]
	}
	if bowJ.Accuracy[25] < 0.9 {
		t.Errorf("bag-of-words @25 = %.2f, want >= 0.9", bowJ.Accuracy[25])
	}
}

func TestExperimentSourceShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation in -short mode")
	}
	c := mediumCorpus(t)
	e := New(c.Taxonomy, c.Bundles)
	freq := e.RunFrequencyBaseline()

	// Fig. 12: mechanic-only below the frequency baseline at every k.
	mech := mustRun(t, e, Variant{Name: "mech", Model: kb.BagOfWords, Sim: core.Jaccard{},
		TestSources: []bundle.Source{bundle.SourceMechanic}})
	for _, k := range []int{1, 5, 10} {
		if mech.Accuracy[k] >= freq.Accuracy[k] {
			t.Errorf("mechanic-only @%d = %.2f not below baseline %.2f", k, mech.Accuracy[k], freq.Accuracy[k])
		}
	}

	// Fig. 13: supplier-only close to the full test sources.
	full := mustRun(t, e, Variant{Name: "full", Model: kb.BagOfWords, Sim: core.Jaccard{}})
	sup := mustRun(t, e, Variant{Name: "sup", Model: kb.BagOfWords, Sim: core.Jaccard{},
		TestSources: []bundle.Source{bundle.SourceSupplier}})
	if diff := full.Accuracy[1] - sup.Accuracy[1]; diff > 0.15 || diff < -0.15 {
		t.Errorf("supplier-only @1 = %.2f too far from full %.2f", sup.Accuracy[1], full.Accuracy[1])
	}
	if sup.Accuracy[1] <= mech.Accuracy[1] {
		t.Error("supplier report should be far more informative than the mechanic report")
	}
}

func TestFeasibilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation in -short mode")
	}
	c := mediumCorpus(t)
	e := New(c.Taxonomy, c.Bundles)
	bow := mustRun(t, e, Variant{Name: "bow", Model: kb.BagOfWords, Sim: core.Jaccard{}})
	boc := mustRun(t, e, Variant{Name: "boc", Model: kb.BagOfConcepts, Sim: core.Jaccard{}})
	// §5.2.2: bag-of-concepts classifies several times faster and its
	// knowledge base is smaller (configuration-instance dedup + fewer
	// features).
	if boc.SecPerBundle >= bow.SecPerBundle {
		t.Errorf("bag-of-concepts (%.6fs) should be faster than bag-of-words (%.6fs)",
			boc.SecPerBundle, bow.SecPerBundle)
	}
	if boc.KBNodes >= bow.KBNodes {
		t.Errorf("bag-of-concepts KB (%d nodes) should be smaller than bag-of-words (%d)",
			boc.KBNodes, bow.KBNodes)
	}
	if boc.CandidateSize >= bow.CandidateSize {
		t.Errorf("bag-of-concepts candidate sets (%.1f) should be smaller than bag-of-words (%.1f)",
			boc.CandidateSize, bow.CandidateSize)
	}
}

func TestStopwordRemovalKeepsAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation in -short mode")
	}
	c := mediumCorpus(t)
	e := New(c.Taxonomy, c.Bundles)
	plain := mustRun(t, e, Variant{Name: "bow", Model: kb.BagOfWords, Sim: core.Jaccard{}})
	nostop := mustRun(t, e, Variant{Name: "bow-nostop", Model: kb.BagOfWords, Sim: core.Jaccard{}, Stopwords: true})
	diff := nostop.Accuracy[1] - plain.Accuracy[1]
	if diff < -0.05 || diff > 0.08 {
		t.Errorf("stopword removal changed accuracy materially: %.3f vs %.3f", nostop.Accuracy[1], plain.Accuracy[1])
	}
}

func TestResultSeries(t *testing.T) {
	r := &Result{Accuracy: AccuracyAtK{5: 0.5, 1: 0.1, 25: 0.9}}
	s := r.Series()
	if len(s) != 3 || s[0][0] != 1 || s[2][0] != 25 || s[1][1] != 0.5 {
		t.Fatalf("series = %v", s)
	}
}

func TestPrintTables(t *testing.T) {
	r := &Result{Variant: "v", Accuracy: AccuracyAtK{1: 0.5, 5: 0.75}, SecPerBundle: 0.001, KBNodes: 10}
	var sbA, sbB testWriter
	PrintTable(&sbA, "title", []*Result{r}, []int{1, 5})
	if sbA.String() == "" || !contains(sbA.String(), "50.0%") {
		t.Fatalf("table output: %q", sbA.String())
	}
	PrintTiming(&sbB, []*Result{r})
	if !contains(sbB.String(), "v") {
		t.Fatalf("timing output: %q", sbB.String())
	}
}

type testWriter struct{ b []byte }

func (w *testWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *testWriter) String() string              { return string(w.b) }

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestWriteCSV(t *testing.T) {
	r := &Result{Variant: "v,with comma", Accuracy: AccuracyAtK{1: 0.5, 5: 0.75}}
	var w testWriter
	if err := WriteCSV(&w, []*Result{r}, []int{1, 5}); err != nil {
		t.Fatal(err)
	}
	out := w.String()
	if !contains(out, "acc@1") || !contains(out, "0.5000") || !contains(out, "\"v,with comma\"") {
		t.Fatalf("csv:\n%s", out)
	}
}

func TestSourceVariantsShape(t *testing.T) {
	vs := SourceVariants("mech:", bundle.SourceMechanic)
	if len(vs) != 4 {
		t.Fatalf("variants = %d", len(vs))
	}
	for _, v := range vs {
		if len(v.TestSources) != 1 || v.TestSources[0] != bundle.SourceMechanic {
			t.Fatalf("variant %q sources = %v", v.Name, v.TestSources)
		}
		if v.Name[:5] != "mech:" {
			t.Fatalf("variant name %q", v.Name)
		}
	}
}

func TestStdDev(t *testing.T) {
	r := &Result{PerFold: []AccuracyAtK{{1: 0.5}, {1: 0.7}, {1: 0.6}}}
	got := r.StdDev(1)
	if got < 0.099 || got > 0.101 { // sample stddev of {0.5,0.7,0.6} = 0.1
		t.Fatalf("stddev = %v", got)
	}
	if (&Result{}).StdDev(1) != 0 {
		t.Fatal("stddev of no folds should be 0")
	}
	if (&Result{PerFold: []AccuracyAtK{{1: 0.5}}}).StdDev(1) != 0 {
		t.Fatal("stddev of one fold should be 0")
	}
}
