// Package eval runs the paper's experiments (§5): stratified 5-fold
// cross-validation over the data bundles whose error code appears more than
// once, reporting Accuracy@k for k ∈ {1, 5, 10, 15, 20, 25} for every
// classifier variant and both baselines, plus the wall-clock feasibility
// numbers of §5.2.2.
package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/annotate"
	"repro/internal/baseline"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
)

// Span names opened by Run.
const (
	spanVariant = "eval.variant"
	spanFold    = "eval.fold"
)

// DefaultKs are the cutoffs of the paper's accuracy curves.
var DefaultKs = []int{1, 5, 10, 15, 20, 25}

// AccuracyAtK maps a cutoff k to the share of test bundles whose correct
// error code appears within the first k suggestions (A@k of §5.1).
type AccuracyAtK map[int]float64

// Variant is one configuration of the adapted classification algorithm.
type Variant struct {
	Name        string
	Model       kb.FeatureModel
	Sim         core.Similarity
	Stopwords   bool            // remove stopwords (bag-of-words only, §5.2.2)
	TestSources []bundle.Source // report sources for the test features; nil = all test-phase sources
}

// StandardVariants are the four variants of experiment 1 (Fig. 11).
func StandardVariants() []Variant {
	return []Variant{
		{Name: "bag-of-words + jaccard", Model: kb.BagOfWords, Sim: core.Jaccard{}},
		{Name: "bag-of-words + overlap", Model: kb.BagOfWords, Sim: core.Overlap{}},
		{Name: "bag-of-concepts + jaccard", Model: kb.BagOfConcepts, Sim: core.Jaccard{}},
		{Name: "bag-of-concepts + overlap", Model: kb.BagOfConcepts, Sim: core.Overlap{}},
	}
}

// SourceVariants restricts the standard variants to a single test report
// source (experiment 2, Figs. 12/13).
func SourceVariants(prefix string, src bundle.Source) []Variant {
	out := StandardVariants()
	for i := range out {
		out[i].Name = prefix + " " + out[i].Name
		out[i].TestSources = []bundle.Source{src}
	}
	return out
}

// Result is the cross-validated outcome of one variant.
type Result struct {
	Variant       string
	Accuracy      AccuracyAtK // mean over folds
	PerFold       []AccuracyAtK
	SecPerBundle  float64 // mean classification seconds per test bundle
	TestBundles   int     // average test-set size per fold
	KBNodes       int     // average knowledge-base size per fold
	Comparisons   int64   // total candidate similarity computations
	CandidateSize float64 // mean candidate-set size per query
}

// Experiment holds a prepared evaluation over a corpus.
type Experiment struct {
	Taxonomy *taxonomy.Taxonomy
	Bundles  []*bundle.Bundle // already filtered to multi-occurrence codes
	Folds    int
	Seed     int64
	Ks       []int
	// Clock times the classification loop for the §5.2.2 feasibility
	// numbers. It is an injected dependency (qatklint/determinism forbids
	// calling time.Now here): tests substitute a fake to keep results
	// bit-identical across runs. Nil disables timing.
	Clock func() time.Time
	// Tracer records one span per cross-validated variant with a child
	// span per fold. Nil disables tracing. (The tracer carries its own
	// clock; spans do not affect the deterministic results.)
	Tracer *obs.Tracer
	// Flight is the black-box flight recorder: Run heartbeats a stall
	// guard per cross-validation fold, so a wedged variant trips the
	// stall watchdog with fold attribution. Nil disables it.
	Flight *flight.Recorder

	annotator *annotate.ConceptAnnotator
	stopwords textproc.StopwordSet
}

// New prepares an experiment: it filters singleton-code bundles exactly as
// §3.2 prescribes and fixes folds and cutoffs to the paper's setup.
func New(tax *taxonomy.Taxonomy, bundles []*bundle.Bundle) *Experiment {
	return &Experiment{
		Taxonomy:  tax,
		Bundles:   bundle.FilterMultiOccurrence(bundles),
		Folds:     5,
		Seed:      1,
		Ks:        DefaultKs,
		Clock:     time.Now,
		annotator: annotate.NewConceptAnnotator(tax),
		stopwords: textproc.NewStopwordSet(),
	}
}

// elapsed returns the seconds since start according to the injected
// clock, 0 when timing is disabled.
func (e *Experiment) elapsed(start time.Time) float64 {
	if e.Clock == nil {
		return 0
	}
	return e.Clock().Sub(start).Seconds()
}

// now reads the injected clock (zero time when disabled).
func (e *Experiment) now() time.Time {
	if e.Clock == nil {
		return time.Time{}
	}
	return e.Clock()
}

// StratifiedFolds partitions bundle indexes into folds so that every error
// code's bundles are spread as evenly as possible across folds ("stratified
// 5-fold cross-validation", §5.1).
func StratifiedFolds(bundles []*bundle.Bundle, folds int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	byCode := map[string][]int{}
	var codes []string
	for i, b := range bundles {
		if len(byCode[b.ErrorCode]) == 0 {
			codes = append(codes, b.ErrorCode)
		}
		byCode[b.ErrorCode] = append(byCode[b.ErrorCode], i)
	}
	sort.Strings(codes)
	out := make([][]int, folds)
	next := 0
	for _, code := range codes {
		idxs := byCode[code]
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		for _, idx := range idxs {
			out[next%folds] = append(out[next%folds], idx)
			next++
		}
	}
	return out
}

// featureKey identifies a precomputed feature configuration.
type featureKey struct {
	model     kb.FeatureModel
	stopwords bool
	sources   string // joined source list; "" = default
}

// features computes the feature sets of every bundle for one
// configuration. Engine failures are returned, not panicked: the
// preprocessing engines run outside a pipeline here, so the error
// attribution the recovery layer would add must be preserved by hand
// (qatklint/paniccontract forbids panicking on engine paths).
func (e *Experiment) features(model kb.FeatureModel, stop bool, sources []bundle.Source) ([][]string, error) {
	ex := &kb.Extractor{Model: model}
	if stop && model == kb.BagOfWords {
		ex.Stopwords = e.stopwords
	}
	out := make([][]string, len(e.Bundles))
	for i, b := range e.Bundles {
		c := b.CAS(sources...)
		if err := (textproc.Tokenizer{}).Process(c); err != nil {
			return nil, fmt.Errorf("eval: tokenize bundle %s: %w", b.RefNo, err)
		}
		if model == kb.BagOfConcepts {
			if err := e.annotator.Process(c); err != nil {
				return nil, fmt.Errorf("eval: annotate bundle %s: %w", b.RefNo, err)
			}
		}
		out[i] = ex.Features(c)
	}
	return out, nil
}

// Run cross-validates one variant.
func (e *Experiment) Run(v Variant) (*Result, error) {
	trainFeats, err := e.features(v.Model, v.Stopwords, bundle.TrainingSources())
	if err != nil {
		return nil, err
	}
	testSources := v.TestSources
	if testSources == nil {
		testSources = bundle.TestSources()
	}
	testFeats, err := e.features(v.Model, v.Stopwords, testSources)
	if err != nil {
		return nil, err
	}

	folds := StratifiedFolds(e.Bundles, e.Folds, e.Seed)
	res := &Result{Variant: v.Name, Accuracy: AccuracyAtK{}}
	vspan := e.Tracer.Start(nil, spanVariant, obs.L("variant", v.Name))
	defer vspan.End(nil)
	guard := e.Flight.Guard(spanVariant + ":" + v.Name)
	defer guard.Stop()
	hits := map[int]int{}
	total := 0
	var classifySeconds float64
	var kbNodes int
	var comparisons int64
	var candTotal int64

	for f := 0; f < e.Folds; f++ {
		guard.Beat()
		fspan := e.Tracer.Start(vspan, spanFold, obs.L("fold", strconv.Itoa(f)))
		mem := kb.NewMemory()
		inTest := make(map[int]bool, len(folds[f]))
		for _, idx := range folds[f] {
			inTest[idx] = true
		}
		for i, b := range e.Bundles {
			if !inTest[i] {
				mem.AddBundle(b.PartID, b.ErrorCode, trainFeats[i])
			}
		}
		kbNodes += mem.NodeCount()
		clf := core.New(mem, v.Sim)

		foldAcc := AccuracyAtK{}
		foldHits := map[int]int{}
		start := e.now()
		for _, idx := range folds[f] {
			b := e.Bundles[idx]
			cands := mem.Candidates(b.PartID, testFeats[idx])
			comparisons += int64(len(cands))
			candTotal += int64(len(cands))
			list := clf.Recommend(b.PartID, testFeats[idx])
			r := core.Rank(list, b.ErrorCode)
			for _, k := range e.Ks {
				if r > 0 && r <= k {
					foldHits[k]++
				}
			}
		}
		classifySeconds += e.elapsed(start)
		n := len(folds[f])
		total += n
		for _, k := range e.Ks {
			foldAcc[k] = float64(foldHits[k]) / float64(n)
			hits[k] += foldHits[k]
		}
		res.PerFold = append(res.PerFold, foldAcc)
		fspan.End(nil)
	}
	for _, k := range e.Ks {
		res.Accuracy[k] = float64(hits[k]) / float64(total)
	}
	res.SecPerBundle = classifySeconds / float64(total)
	res.TestBundles = total / e.Folds
	res.KBNodes = kbNodes / e.Folds
	res.Comparisons = comparisons
	if total > 0 {
		res.CandidateSize = float64(candTotal) / float64(total)
	}
	return res, nil
}

// RunAll cross-validates several variants, stopping at the first failure.
func (e *Experiment) RunAll(variants []Variant) ([]*Result, error) {
	out := make([]*Result, len(variants))
	for i, v := range variants {
		r, err := e.Run(v)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// RunFrequencyBaseline evaluates the code-frequency baseline (§5.1).
func (e *Experiment) RunFrequencyBaseline() *Result {
	folds := StratifiedFolds(e.Bundles, e.Folds, e.Seed)
	res := &Result{Variant: "code frequency baseline", Accuracy: AccuracyAtK{}}
	hits := map[int]int{}
	total := 0
	for f := 0; f < e.Folds; f++ {
		mem := kb.NewMemory()
		inTest := make(map[int]bool, len(folds[f]))
		for _, idx := range folds[f] {
			inTest[idx] = true
		}
		for i, b := range e.Bundles {
			if !inTest[i] {
				// The baseline only needs frequencies; features are irrelevant.
				mem.AddBundle(b.PartID, b.ErrorCode, nil)
			}
		}
		bl := baseline.CodeFrequency{Store: mem}
		foldAcc := AccuracyAtK{}
		foldHits := map[int]int{}
		for _, idx := range folds[f] {
			b := e.Bundles[idx]
			r := core.Rank(bl.Recommend(b.PartID), b.ErrorCode)
			for _, k := range e.Ks {
				if r > 0 && r <= k {
					foldHits[k]++
				}
			}
		}
		n := len(folds[f])
		total += n
		for _, k := range e.Ks {
			foldAcc[k] = float64(foldHits[k]) / float64(n)
			hits[k] += foldHits[k]
		}
		res.PerFold = append(res.PerFold, foldAcc)
	}
	for _, k := range e.Ks {
		res.Accuracy[k] = float64(hits[k]) / float64(total)
	}
	res.TestBundles = total / e.Folds
	return res
}

// RunCandidateSetBaseline evaluates the unsorted candidate-set baseline for
// one feature model (§5.1 baseline 2).
func (e *Experiment) RunCandidateSetBaseline(model kb.FeatureModel, testSources []bundle.Source) (*Result, error) {
	trainFeats, err := e.features(model, false, bundle.TrainingSources())
	if err != nil {
		return nil, err
	}
	if testSources == nil {
		testSources = bundle.TestSources()
	}
	testFeats, err := e.features(model, false, testSources)
	if err != nil {
		return nil, err
	}
	folds := StratifiedFolds(e.Bundles, e.Folds, e.Seed)
	res := &Result{
		Variant:  fmt.Sprintf("candidate set baseline (%s)", model),
		Accuracy: AccuracyAtK{},
	}
	hits := map[int]int{}
	total := 0
	for f := 0; f < e.Folds; f++ {
		mem := kb.NewMemory()
		inTest := make(map[int]bool, len(folds[f]))
		for _, idx := range folds[f] {
			inTest[idx] = true
		}
		for i, b := range e.Bundles {
			if !inTest[i] {
				mem.AddBundle(b.PartID, b.ErrorCode, trainFeats[i])
			}
		}
		bl := baseline.CandidateSet{Store: mem}
		foldAcc := AccuracyAtK{}
		foldHits := map[int]int{}
		for _, idx := range folds[f] {
			b := e.Bundles[idx]
			r := core.Rank(bl.Recommend(b.PartID, testFeats[idx]), b.ErrorCode)
			for _, k := range e.Ks {
				if r > 0 && r <= k {
					foldHits[k]++
				}
			}
		}
		n := len(folds[f])
		total += n
		for _, k := range e.Ks {
			foldAcc[k] = float64(foldHits[k]) / float64(n)
			hits[k] += foldHits[k]
		}
		res.PerFold = append(res.PerFold, foldAcc)
	}
	for _, k := range e.Ks {
		res.Accuracy[k] = float64(hits[k]) / float64(total)
	}
	res.TestBundles = total / e.Folds
	return res, nil
}
