package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
)

// PrintTable renders results as the accuracy@k table behind the paper's
// figures (one row per variant, one column per k).
func PrintTable(w io.Writer, title string, results []*Result, ks []int) {
	if ks == nil {
		ks = DefaultKs
	}
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-42s", "variant")
	for _, k := range ks {
		fmt.Fprintf(w, "  @%-5d", k)
	}
	fmt.Fprintln(w)
	for _, r := range results {
		fmt.Fprintf(w, "%-42s", r.Variant)
		for _, k := range ks {
			fmt.Fprintf(w, "  %5.1f%%", 100*r.Accuracy[k])
		}
		fmt.Fprintln(w)
	}
}

// PrintTiming renders the feasibility numbers of §5.2.2.
func PrintTiming(w io.Writer, results []*Result) {
	fmt.Fprintf(w, "%-42s %14s %10s %12s\n", "variant", "ms/bundle", "kb nodes", "cand size")
	for _, r := range results {
		fmt.Fprintf(w, "%-42s %14.4f %10d %12.1f\n", r.Variant, 1000*r.SecPerBundle, r.KBNodes, r.CandidateSize)
	}
}

// WriteCSV emits the accuracy table as CSV (variant, then one column per
// k), for regenerating the paper's figures with external plotting tools.
func WriteCSV(w io.Writer, results []*Result, ks []int) error {
	if ks == nil {
		ks = DefaultKs
	}
	cw := csv.NewWriter(w)
	header := []string{"variant"}
	for _, k := range ks {
		header = append(header, fmt.Sprintf("acc@%d", k))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		row := []string{r.Variant}
		for _, k := range ks {
			row = append(row, fmt.Sprintf("%.4f", r.Accuracy[k]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// StdDev returns the across-fold standard deviation of accuracy@k — the
// dispersion behind the cross-validated mean (0 when fewer than two folds
// were recorded).
func (r *Result) StdDev(k int) float64 {
	if len(r.PerFold) < 2 {
		return 0
	}
	mean := 0.0
	for _, f := range r.PerFold {
		mean += f[k]
	}
	mean /= float64(len(r.PerFold))
	varsum := 0.0
	for _, f := range r.PerFold {
		d := f[k] - mean
		varsum += d * d
	}
	return math.Sqrt(varsum / float64(len(r.PerFold)-1))
}

// Series returns the accuracy curve of a result as (k, accuracy) pairs in
// ascending k, for plotting or comparisons in code.
func (r *Result) Series() [][2]float64 {
	ks := make([]int, 0, len(r.Accuracy))
	for k := range r.Accuracy {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	out := make([][2]float64, len(ks))
	for i, k := range ks {
		out[i] = [2]float64{float64(k), r.Accuracy[k]}
	}
	return out
}
