package taxonomy

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Taxonomy {
	t := New()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(t.Add(Concept{ID: 100, Kind: KindComponent, Path: "Body/Fender", Synonyms: map[string][]string{
		"de": {"kotflügel", "schmutzfänger"},
		"en": {"fender", "mud guard", "splashboard"},
	}}))
	must(t.Add(Concept{ID: 200, Kind: KindSymptom, Path: "Noise/HighNoise/Squeak", Synonyms: map[string][]string{
		"de": {"quietschen"},
		"en": {"squeak", "squeaking noise"},
	}}))
	must(t.Add(Concept{ID: 300, Kind: KindSymptom, Path: "Noise/DeepNoise/Hum", Synonyms: map[string][]string{
		"de": {"brummen"},
		"en": {"hum", "humming noise"},
	}}))
	must(t.Add(Concept{ID: 400, Kind: KindSolution, Path: "Replace", Synonyms: map[string][]string{
		"de": {"austauschen"},
		"en": {"replace"},
	}}))
	return t
}

func TestAddValidation(t *testing.T) {
	tax := New()
	bad := []Concept{
		{ID: 0, Kind: KindComponent, Path: "x", Synonyms: map[string][]string{"de": {"a"}}},
		{ID: 1, Kind: "weird", Path: "x", Synonyms: map[string][]string{"de": {"a"}}},
		{ID: 1, Kind: KindComponent, Path: "", Synonyms: map[string][]string{"de": {"a"}}},
		{ID: 1, Kind: KindComponent, Path: "x"},
		{ID: 1, Kind: KindComponent, Path: "x", Synonyms: map[string][]string{"de": {"  "}}},
		{ID: 1, Kind: KindComponent, Path: "x", Synonyms: map[string][]string{"": {"a"}}},
	}
	for i, c := range bad {
		if err := tax.Add(c); err == nil {
			t.Errorf("case %d: invalid concept accepted", i)
		}
	}
	ok := Concept{ID: 1, Kind: KindComponent, Path: "x", Synonyms: map[string][]string{"de": {"a"}}}
	if err := tax.Add(ok); err != nil {
		t.Fatal(err)
	}
	if err := tax.Add(ok); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestAddCopiesConcept(t *testing.T) {
	tax := New()
	syns := map[string][]string{"de": {"a"}}
	if err := tax.Add(Concept{ID: 1, Kind: KindComponent, Path: "x", Synonyms: syns}); err != nil {
		t.Fatal(err)
	}
	syns["de"][0] = "mutated"
	c, _ := tax.Get(1)
	if c.Synonyms["de"][0] != "a" {
		t.Fatal("Add did not copy synonyms")
	}
}

func TestEditorOps(t *testing.T) {
	tax := sample()
	if err := tax.AddSynonym(100, "en", "wing"); err != nil {
		t.Fatal(err)
	}
	c, _ := tax.Get(100)
	if len(c.Synonyms["en"]) != 4 {
		t.Fatalf("en synonyms = %v", c.Synonyms["en"])
	}
	// Duplicate (case-insensitive) is a no-op.
	if err := tax.AddSynonym(100, "en", "WING"); err != nil {
		t.Fatal(err)
	}
	if len(c.Synonyms["en"]) != 4 {
		t.Fatal("duplicate synonym added")
	}
	if err := tax.AddSynonym(999, "en", "x"); err == nil {
		t.Error("synonym on missing concept accepted")
	}
	if err := tax.AddSynonym(100, "", "x"); err == nil {
		t.Error("empty language accepted")
	}
	if err := tax.Rename(200, "Noise/Squeal"); err != nil {
		t.Fatal(err)
	}
	c2, _ := tax.Get(200)
	if c2.Path != "Noise/Squeal" {
		t.Fatalf("path = %q", c2.Path)
	}
	if !tax.Remove(400) {
		t.Fatal("remove failed")
	}
	if tax.Remove(400) {
		t.Fatal("double remove succeeded")
	}
	if tax.Len() != 3 {
		t.Fatalf("len = %d", tax.Len())
	}
}

func TestLabelAndLanguages(t *testing.T) {
	tax := sample()
	c, _ := tax.Get(100)
	if c.Label("en") != "fender" || c.Label("de") != "kotflügel" {
		t.Fatalf("labels = %q / %q", c.Label("en"), c.Label("de"))
	}
	if c.Label("fr") != "Fender" {
		t.Fatalf("fallback label = %q", c.Label("fr"))
	}
	langs := c.Languages()
	if len(langs) != 2 || langs[0] != "de" || langs[1] != "en" {
		t.Fatalf("languages = %v", langs)
	}
}

func TestByKindAndStats(t *testing.T) {
	tax := sample()
	if got := len(tax.ByKind(KindSymptom)); got != 2 {
		t.Fatalf("symptoms = %d", got)
	}
	st := tax.ComputeStats()
	if st.Concepts != 4 || st.ByKind[KindSymptom] != 2 || st.ByKind[KindComponent] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Multiwords != 3 { // "mud guard", "squeaking noise", "humming noise"
		t.Fatalf("multiwords = %d", st.Multiwords)
	}
	if tax.CountConceptsWithLanguage("en") != 4 {
		t.Fatalf("en concepts = %d", tax.CountConceptsWithLanguage("en"))
	}
	if tax.CountSynonyms("en") != 8 {
		t.Fatalf("en synonyms = %d", tax.CountSynonyms("en"))
	}
}

func TestXMLRoundTrip(t *testing.T) {
	tax := sample()
	var buf bytes.Buffer
	if err := tax.Save(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `kind="symptom"`) || !strings.Contains(out, "squeaking noise") {
		t.Fatalf("xml missing content:\n%s", out)
	}
	got, err := Load(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tax.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), tax.Len())
	}
	c, ok := got.Get(200)
	if !ok || c.Path != "Noise/HighNoise/Squeak" || c.Kind != KindSymptom {
		t.Fatalf("concept 200 = %+v", c)
	}
	if len(c.Synonyms["en"]) != 2 || c.Synonyms["en"][1] != "squeaking noise" {
		t.Fatalf("synonyms = %v", c.Synonyms)
	}
}

func TestXMLFileRoundTrip(t *testing.T) {
	tax := sample()
	path := t.TempDir() + "/tax.xml"
	if err := tax.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("len = %d", got.Len())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not xml")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`<taxonomy version="99"></taxonomy>`)); err == nil {
		t.Error("future version accepted")
	}
	// Invalid concept content inside valid XML.
	bad := `<taxonomy version="1"><concept id="0" kind="component" path="x"><label lang="de">a</label></concept></taxonomy>`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("invalid concept accepted")
	}
}

func TestExpandSynonyms(t *testing.T) {
	tax := New()
	if err := tax.Add(Concept{ID: 1, Kind: KindComponent, Path: "Guard", Synonyms: map[string][]string{
		"en": {"guard", "shield"},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := tax.Add(Concept{ID: 2, Kind: KindComponent, Path: "MudGuard", Synonyms: map[string][]string{
		"en": {"mud guard"},
	}}); err != nil {
		t.Fatal(err)
	}
	added := tax.ExpandSynonyms()
	if added == 0 {
		t.Fatal("no synonyms generated")
	}
	c, _ := tax.Get(2)
	found := false
	for _, s := range c.Synonyms["en"] {
		if s == "mud shield" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected generated variant, got %v", c.Synonyms["en"])
	}
}

func TestLanguagesUnion(t *testing.T) {
	tax := sample()
	langs := tax.Languages()
	if len(langs) != 2 || langs[0] != "de" || langs[1] != "en" {
		t.Fatalf("languages = %v", langs)
	}
}
