package taxonomy

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"sort"
)

// The custom XML representation of the taxonomy (§4.5.3):
//
//	<taxonomy version="1">
//	  <concept id="87402" kind="symptom" path="Noise/HighNoise/Squeak">
//	    <label lang="de">quietschen</label>
//	    <label lang="en">squeak</label>
//	    <label lang="en">squeaking noise</label>
//	  </concept>
//	</taxonomy>

type xmlTaxonomy struct {
	XMLName  xml.Name     `xml:"taxonomy"`
	Version  int          `xml:"version,attr"`
	Concepts []xmlConcept `xml:"concept"`
}

type xmlConcept struct {
	ID     int        `xml:"id,attr"`
	Kind   string     `xml:"kind,attr"`
	Path   string     `xml:"path,attr"`
	Labels []xmlLabel `xml:"label"`
}

type xmlLabel struct {
	Lang string `xml:"lang,attr"`
	Term string `xml:",chardata"`
}

// currentVersion is the format version written by Save.
const currentVersion = 1

// Save writes the taxonomy to w in the custom XML format, concepts sorted
// by ID and labels sorted by language for stable output.
func (t *Taxonomy) Save(w io.Writer) error {
	doc := xmlTaxonomy{Version: currentVersion}
	for _, c := range t.Concepts() {
		xc := xmlConcept{ID: c.ID, Kind: string(c.Kind), Path: c.Path}
		langs := c.Languages()
		for _, lang := range langs {
			for _, s := range c.Synonyms[lang] {
				xc.Labels = append(xc.Labels, xmlLabel{Lang: lang, Term: s})
			}
		}
		doc.Concepts = append(doc.Concepts, xc)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("taxonomy: encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Load reads a taxonomy from the custom XML format.
func Load(r io.Reader) (*Taxonomy, error) {
	var doc xmlTaxonomy
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("taxonomy: decode: %w", err)
	}
	if doc.Version != currentVersion {
		return nil, fmt.Errorf("taxonomy: unsupported format version %d", doc.Version)
	}
	t := New()
	for _, xc := range doc.Concepts {
		c := Concept{ID: xc.ID, Kind: Kind(xc.Kind), Path: xc.Path, Synonyms: map[string][]string{}}
		for _, l := range xc.Labels {
			c.Synonyms[l.Lang] = append(c.Synonyms[l.Lang], l.Term)
		}
		if err := t.Add(c); err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// SaveFile writes the taxonomy to a file path.
func (t *Taxonomy) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a taxonomy from a file path.
func LoadFile(path string) (*Taxonomy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Stats summarizes a taxonomy for diagnostics.
type Stats struct {
	Concepts   int
	ByKind     map[Kind]int
	PerLang    map[string]int // concepts with ≥1 synonym in the language
	Synonyms   map[string]int // synonym entries per language
	Multiwords int            // synonyms with more than one word
}

// ComputeStats gathers summary statistics.
func (t *Taxonomy) ComputeStats() Stats {
	st := Stats{
		Concepts: t.Len(),
		ByKind:   make(map[Kind]int),
		PerLang:  make(map[string]int),
		Synonyms: make(map[string]int),
	}
	for _, c := range t.concepts {
		st.ByKind[c.Kind]++
		for lang, syns := range c.Synonyms {
			if len(syns) > 0 {
				st.PerLang[lang]++
			}
			st.Synonyms[lang] += len(syns)
			for _, s := range syns {
				if containsSpace(s) {
					st.Multiwords++
				}
			}
		}
	}
	return st
}

func containsSpace(s string) bool {
	for _, r := range s {
		if r == ' ' {
			return true
		}
	}
	return false
}

// sortedLangs returns the union of language codes across concepts, sorted.
func (t *Taxonomy) sortedLangs() []string {
	set := map[string]bool{}
	for _, c := range t.concepts {
		for lang := range c.Synonyms {
			set[lang] = true
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Languages returns all language codes used anywhere in the taxonomy.
func (t *Taxonomy) Languages() []string { return t.sortedLangs() }
