package taxonomy_test

import (
	"fmt"
	"os"

	"repro/internal/taxonomy"
)

// Example shows building a taxonomy with synonym-rich multilingual leaves
// and saving it in the custom XML format of §4.5.3.
func Example() {
	tax := taxonomy.New()
	_ = tax.Add(taxonomy.Concept{
		ID:   100,
		Kind: taxonomy.KindComponent,
		Path: "Body/Fender",
		Synonyms: map[string][]string{
			"de": {"kotflügel"},
			"en": {"fender", "mud guard", "splashboard"},
		},
	})
	c, _ := tax.Get(100)
	fmt.Println(c.Label("en"), "|", c.Label("de"))
	_ = tax.Save(os.Stdout)
	// Output:
	// fender | kotflügel
	// <?xml version="1.0" encoding="UTF-8"?>
	// <taxonomy version="1">
	//   <concept id="100" kind="component" path="Body/Fender">
	//     <label lang="de">kotflügel</label>
	//     <label lang="en">fender</label>
	//     <label lang="en">mud guard</label>
	//     <label lang="en">splashboard</label>
	//   </concept>
	// </taxonomy>
}
