// Package taxonomy models the multilingual automotive part-and-error
// taxonomy of the paper (§4.5.3, Fig. 10): a shallow structure that
// distinguishes components, symptoms, locations and solutions, whose upper
// category levels are language-independent with multilingual labels and
// whose leaf categories are language-specific synonym sets for the same
// concept ("mud guard", "splashboard" and "fender" all map to one concept
// ID). The taxonomy is persisted in a custom XML format and maintained
// through editor operations; prior research used it for information
// extraction, here it supplies the classification features of the
// bag-of-concepts model.
package taxonomy

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is the top-level category of a concept.
type Kind string

// The four top-level categories of the automotive taxonomy.
const (
	KindComponent Kind = "component"
	KindSymptom   Kind = "symptom"
	KindLocation  Kind = "location"
	KindSolution  Kind = "solution"
)

// Kinds lists all valid kinds in canonical order.
func Kinds() []Kind {
	return []Kind{KindComponent, KindSymptom, KindLocation, KindSolution}
}

func validKind(k Kind) bool {
	switch k {
	case KindComponent, KindSymptom, KindLocation, KindSolution:
		return true
	}
	return false
}

// Concept is one node of the taxonomy. Path holds the language-independent
// upper category levels ("Noise/HighNoise/Squeak"); Synonyms holds the
// language-specific leaf terms per language code ("de", "en"). Synonyms may
// be multiword.
type Concept struct {
	ID       int
	Kind     Kind
	Path     string
	Synonyms map[string][]string
}

// Label returns the preferred (first) synonym in the given language, or
// the last path element if the language is absent.
func (c *Concept) Label(lang string) string {
	if s := c.Synonyms[lang]; len(s) > 0 {
		return s[0]
	}
	if i := strings.LastIndexByte(c.Path, '/'); i >= 0 {
		return c.Path[i+1:]
	}
	return c.Path
}

// Languages returns the language codes the concept has synonyms for, sorted.
func (c *Concept) Languages() []string {
	langs := make([]string, 0, len(c.Synonyms))
	for l := range c.Synonyms {
		langs = append(langs, l)
	}
	sort.Strings(langs)
	return langs
}

// Taxonomy is a set of concepts with unique IDs.
type Taxonomy struct {
	concepts map[int]*Concept
}

// New creates an empty taxonomy.
func New() *Taxonomy {
	return &Taxonomy{concepts: make(map[int]*Concept)}
}

// Add inserts a concept after validation. The concept is copied.
func (t *Taxonomy) Add(c Concept) error {
	if c.ID <= 0 {
		return fmt.Errorf("taxonomy: concept ID must be positive, got %d", c.ID)
	}
	if !validKind(c.Kind) {
		return fmt.Errorf("taxonomy: concept %d has invalid kind %q", c.ID, c.Kind)
	}
	if c.Path == "" {
		return fmt.Errorf("taxonomy: concept %d has empty path", c.ID)
	}
	if _, exists := t.concepts[c.ID]; exists {
		return fmt.Errorf("taxonomy: duplicate concept ID %d", c.ID)
	}
	nonEmpty := 0
	for lang, syns := range c.Synonyms {
		if lang == "" {
			return fmt.Errorf("taxonomy: concept %d has empty language code", c.ID)
		}
		for _, s := range syns {
			if strings.TrimSpace(s) == "" {
				return fmt.Errorf("taxonomy: concept %d has blank synonym in %q", c.ID, lang)
			}
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		return fmt.Errorf("taxonomy: concept %d has no synonyms", c.ID)
	}
	cp := c
	cp.Synonyms = make(map[string][]string, len(c.Synonyms))
	for lang, syns := range c.Synonyms {
		cp.Synonyms[lang] = append([]string(nil), syns...)
	}
	t.concepts[c.ID] = &cp
	return nil
}

// Get returns the concept with the given ID.
func (t *Taxonomy) Get(id int) (*Concept, bool) {
	c, ok := t.concepts[id]
	return c, ok
}

// Remove deletes a concept; it reports whether the ID existed.
func (t *Taxonomy) Remove(id int) bool {
	if _, ok := t.concepts[id]; !ok {
		return false
	}
	delete(t.concepts, id)
	return true
}

// AddSynonym appends a synonym to a concept in the given language.
func (t *Taxonomy) AddSynonym(id int, lang, synonym string) error {
	c, ok := t.concepts[id]
	if !ok {
		return fmt.Errorf("taxonomy: no concept %d", id)
	}
	if strings.TrimSpace(synonym) == "" {
		return fmt.Errorf("taxonomy: blank synonym")
	}
	if lang == "" {
		return fmt.Errorf("taxonomy: empty language code")
	}
	for _, s := range c.Synonyms[lang] {
		if strings.EqualFold(s, synonym) {
			return nil // already present
		}
	}
	if c.Synonyms == nil {
		c.Synonyms = make(map[string][]string)
	}
	c.Synonyms[lang] = append(c.Synonyms[lang], synonym)
	return nil
}

// Rename changes a concept's path.
func (t *Taxonomy) Rename(id int, newPath string) error {
	c, ok := t.concepts[id]
	if !ok {
		return fmt.Errorf("taxonomy: no concept %d", id)
	}
	if newPath == "" {
		return fmt.Errorf("taxonomy: empty path")
	}
	c.Path = newPath
	return nil
}

// Len reports the number of concepts.
func (t *Taxonomy) Len() int { return len(t.concepts) }

// Concepts returns all concepts sorted by ID.
func (t *Taxonomy) Concepts() []*Concept {
	out := make([]*Concept, 0, len(t.concepts))
	for _, c := range t.concepts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByKind returns all concepts of one kind, sorted by ID.
func (t *Taxonomy) ByKind(kind Kind) []*Concept {
	var out []*Concept
	for _, c := range t.concepts {
		if c.Kind == kind {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CountSynonyms returns the total number of synonym entries in a language
// (the paper reports "about 1.800 / 1.900 distinct concepts in German and
// English respectively" — i.e. concepts carrying terms per language).
func (t *Taxonomy) CountSynonyms(lang string) int {
	n := 0
	for _, c := range t.concepts {
		n += len(c.Synonyms[lang])
	}
	return n
}

// CountConceptsWithLanguage returns how many concepts have at least one
// synonym in the given language.
func (t *Taxonomy) CountConceptsWithLanguage(lang string) int {
	n := 0
	for _, c := range t.concepts {
		if len(c.Synonyms[lang]) > 0 {
			n++
		}
	}
	return n
}

// ExpandSynonyms generates additional multiword synonyms by substituting
// sub-phrases: if a multiword synonym of concept A contains the full
// synonym of another concept B, variants are added that replace it with
// B's other synonyms of the same language. This mirrors the original
// approach of expanding "the concepts of the taxonomy with synonyms of
// concept label substrings as found in the taxonomy itself" (§4.5.3).
// It returns the number of synonyms added.
func (t *Taxonomy) ExpandSynonyms() int {
	// Synonym → sibling synonyms of the same concept, per language.
	type key struct{ lang, term string }
	groups := make(map[key][]string)
	for _, c := range t.concepts {
		for lang, syns := range c.Synonyms {
			for _, s := range syns {
				groups[key{lang, strings.ToLower(s)}] = syns
			}
		}
	}
	added := 0
	for _, c := range t.concepts {
		for lang, syns := range c.Synonyms {
			existing := make(map[string]bool, len(syns))
			for _, s := range syns {
				existing[strings.ToLower(s)] = true
			}
			var fresh []string
			for _, s := range syns {
				words := strings.Fields(strings.ToLower(s))
				if len(words) < 2 {
					continue
				}
				for _, w := range words {
					siblings, ok := groups[key{lang, w}]
					if !ok || len(siblings) < 2 {
						continue
					}
					for _, alt := range siblings {
						la := strings.ToLower(alt)
						if la == w {
							continue
						}
						variant := strings.Replace(strings.ToLower(s), w, la, 1)
						if !existing[variant] {
							existing[variant] = true
							fresh = append(fresh, variant)
							added++
						}
					}
				}
			}
			c.Synonyms[lang] = append(c.Synonyms[lang], fresh...)
		}
	}
	return added
}

// Clone returns a deep copy of the taxonomy, for task-specific adaptation
// without touching the shared resource (cf. [12], "Taxonomy Transfer").
func (t *Taxonomy) Clone() *Taxonomy {
	out := New()
	for _, c := range t.concepts {
		cp := *c
		cp.Synonyms = make(map[string][]string, len(c.Synonyms))
		for lang, syns := range c.Synonyms {
			cp.Synonyms[lang] = append([]string(nil), syns...)
		}
		out.concepts[cp.ID] = &cp
	}
	return out
}

// MaxID returns the highest concept ID in use (0 if empty), so extensions
// can allocate fresh IDs.
func (t *Taxonomy) MaxID() int {
	max := 0
	for id := range t.concepts {
		if id > max {
			max = id
		}
	}
	return max
}

// Validate checks global invariants; it is run after loading from XML.
func (t *Taxonomy) Validate() error {
	for id, c := range t.concepts {
		if id != c.ID {
			return fmt.Errorf("taxonomy: concept map key %d != ID %d", id, c.ID)
		}
		if !validKind(c.Kind) {
			return fmt.Errorf("taxonomy: concept %d has invalid kind %q", id, c.Kind)
		}
	}
	return nil
}
