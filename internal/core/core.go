// Package core implements the paper's primary contribution (§4.2–4.3): a
// classification algorithm derived from k-Nearest-Neighbors, adapted to the
// extreme multi-class setting of error-code assignment. Instead of a
// majority vote over the k nearest neighbors — which Fig. 6 shows to be
// unstable under the sparsity of 553 classes — the classifier outputs a
// list of all potential error codes ranked by the similarity of the
// knowledge-base instances to the data bundle, cut off at the 25
// best-scored candidate nodes for presentation to the quality expert.
//
// The similarity measure, the feature model and the class-assignment rule
// are all pluggable, realizing the "bare-bones classification algorithm
// with maximum parametrizability" of §4.2.
package core

import (
	"cmp"
	"slices"

	"repro/internal/kb"
	"repro/internal/obs/reqlog"
)

// Similarity scores two feature sets from their intersection size and
// cardinalities. Implementations must be in [0, 1].
type Similarity interface {
	Name() string
	Score(shared, sizeA, sizeB int) float64
}

// Jaccard is the Jaccard similarity coefficient |A∩B| / |A∪B|.
type Jaccard struct{}

// Name implements Similarity.
func (Jaccard) Name() string { return "jaccard" }

// Score implements Similarity.
func (Jaccard) Score(shared, sizeA, sizeB int) float64 {
	union := sizeA + sizeB - shared
	if union == 0 {
		return 0
	}
	return float64(shared) / float64(union)
}

// Overlap is the overlap coefficient |A∩B| / min(|A|, |B|).
type Overlap struct{}

// Name implements Similarity.
func (Overlap) Name() string { return "overlap" }

// Score implements Similarity.
func (Overlap) Score(shared, sizeA, sizeB int) float64 {
	m := sizeA
	if sizeB < m {
		m = sizeB
	}
	if m == 0 {
		return 0
	}
	return float64(shared) / float64(m)
}

// ScoredCode is one ranked recommendation.
type ScoredCode struct {
	Code  string
	Score float64
}

// DefaultNodeCutoff is the number of best-scored candidate nodes whose
// error codes are retrieved (§4.3: "We retrieve the error codes of the 25
// best-scored candidate nodes").
const DefaultNodeCutoff = 25

// Classifier is the ranked-list kNN-derived classifier.
type Classifier struct {
	Store kb.Store
	Sim   Similarity
	// NodeCutoff caps how many best-scored nodes contribute codes;
	// 0 means DefaultNodeCutoff.
	NodeCutoff int
}

// New creates a classifier over a knowledge base with the given similarity.
func New(store kb.Store, sim Similarity) *Classifier {
	return &Classifier{Store: store, Sim: sim}
}

// scoredNode pairs a candidate node with its similarity to the query.
type scoredNode struct {
	node  *kb.Node
	score float64
}

// rankNodes computes pairwise similarities for the candidate set and sorts
// descending (ties broken by error code, then node ID, for determinism).
// The comparator is a total order — every tie is broken down to the
// globally unique node ID — so the unstable generic sort yields the same
// bit-identical ranking sort.Slice did. sc (nil when request logging is
// off) splits the work into the score and rank stages of the request's
// wide event; the timing is observation-only and never alters the ranking.
//
//qatk:hotpath
func (c *Classifier) rankNodes(sc *reqlog.StageClock, partID string, features []string) []scoredNode {
	t := sc.Start()
	//qatk:allowalloc the feature set and scored list are the ranking workspace, sized once per query
	featSet := make(map[string]bool, len(features))
	for _, f := range features {
		featSet[f] = true
	}
	cands := c.Store.Candidates(partID, features)
	//qatk:allowalloc the ranked slice is the function's product
	scored := make([]scoredNode, 0, len(cands))
	for _, n := range cands {
		shared := 0
		for _, f := range n.Features {
			if featSet[f] {
				shared++
			}
		}
		s := c.Sim.Score(shared, len(features), len(n.Features))
		scored = append(scored, scoredNode{node: n, score: s})
	}
	t = sc.Lap(reqlog.StageScore, t)
	slices.SortFunc(scored, func(a, b scoredNode) int {
		if a.score != b.score {
			return cmp.Compare(b.score, a.score)
		}
		if a.node.ErrorCode != b.node.ErrorCode {
			return cmp.Compare(a.node.ErrorCode, b.node.ErrorCode)
		}
		return cmp.Compare(a.node.ID, b.node.ID)
	})
	sc.Lap(reqlog.StageRank, t)
	return scored
}

// ScoredNode is one best-scored candidate node, pre-deduplication: the
// sharded serving tier merges these across partitions before collapsing to
// codes, so the merge ranks exactly like a single-store ranking. The node
// ID is the global tie-breaker (kb.Subset preserves IDs).
type ScoredNode struct {
	ID    int64
	Code  string
	Score float64
}

// RecommendNodes returns the best-scored candidate nodes (at most
// NodeCutoff) in rank order, before codes are deduplicated. Recommend is
// CodesFromNodes(RecommendNodes(...)).
func (c *Classifier) RecommendNodes(partID string, features []string) []ScoredNode {
	return c.RecommendNodesTimed(nil, partID, features)
}

// RecommendNodesTimed is RecommendNodes with per-stage attribution: the
// scoring loop and ranking sort are credited to the request's wide event
// through sc. A nil clock (request logging off, or callers outside the
// serving path) makes the timing free.
func (c *Classifier) RecommendNodesTimed(sc *reqlog.StageClock, partID string, features []string) []ScoredNode {
	cutoff := c.NodeCutoff
	if cutoff <= 0 {
		cutoff = DefaultNodeCutoff
	}
	scored := c.rankNodes(sc, partID, features)
	if len(scored) > cutoff {
		scored = scored[:cutoff]
	}
	out := make([]ScoredNode, len(scored))
	for i, sn := range scored {
		out[i] = ScoredNode{ID: sn.node.ID, Code: sn.node.ErrorCode, Score: sn.score}
	}
	return out
}

// CodesFromNodes collapses a ranked node list to the distinct error codes
// in rank order, each carrying the score of its best node.
//
//qatk:hotpath
func CodesFromNodes(nodes []ScoredNode) []ScoredCode {
	//qatk:allowalloc the dedup set and result list are the function's product, bounded by the node cutoff
	seen := make(map[string]bool, len(nodes))
	out := make([]ScoredCode, 0, len(nodes))
	for _, sn := range nodes {
		if seen[sn.Code] {
			continue
		}
		seen[sn.Code] = true
		out = append(out, ScoredCode{Code: sn.Code, Score: sn.Score})
	}
	return out
}

// Recommend returns the ranked error-code list for a data bundle given its
// part ID and extracted feature set: the distinct error codes of the
// best-scored candidate nodes, each with the score of its best node, in
// rank order. At most NodeCutoff nodes are consumed, so the list holds at
// most that many codes.
func (c *Classifier) Recommend(partID string, features []string) []ScoredCode {
	return CodesFromNodes(c.RecommendNodes(partID, features))
}

// MajorityVote is the standard unweighted instance-based kNN assignment
// (Fig. 6), kept as an ablation: the class of the query is the most common
// error code among the k nearest nodes. Ties are broken toward the code
// whose best node scores higher, then lexicographically. It returns ""
// when there are no candidates.
func (c *Classifier) MajorityVote(partID string, features []string, k int) string {
	if k <= 0 {
		k = 6
	}
	scored := c.rankNodes(nil, partID, features)
	if len(scored) == 0 {
		return ""
	}
	if len(scored) > k {
		scored = scored[:k]
	}
	votes := map[string]int{}
	best := map[string]float64{}
	for _, sn := range scored {
		code := sn.node.ErrorCode
		votes[code]++
		if sn.score > best[code] {
			best[code] = sn.score
		}
	}
	winner := ""
	for code, v := range votes {
		if winner == "" {
			winner = code
			continue
		}
		switch {
		case v > votes[winner]:
			winner = code
		case v == votes[winner] && best[code] > best[winner]:
			winner = code
		case v == votes[winner] && best[code] == best[winner] && code < winner:
			winner = code
		}
	}
	return winner
}

// WeightedVote is the similarity-weighted variant of majority voting that
// §4.2 mentions ("this majority vote can also be weighted by the
// individual nearness of neighbors"): each of the k nearest nodes votes
// with its similarity score. Kept alongside MajorityVote as an ablation;
// the ranked list remains the paper's adaptation of choice.
func (c *Classifier) WeightedVote(partID string, features []string, k int) string {
	if k <= 0 {
		k = 6
	}
	scored := c.rankNodes(nil, partID, features)
	if len(scored) == 0 {
		return ""
	}
	if len(scored) > k {
		scored = scored[:k]
	}
	weights := map[string]float64{}
	for _, sn := range scored {
		weights[sn.node.ErrorCode] += sn.score
	}
	winner := ""
	for code, w := range weights {
		if winner == "" || w > weights[winner] || (w == weights[winner] && code < winner) {
			winner = code
		}
	}
	return winner
}

// Rank returns the 1-based position of the correct code in a ranked list,
// or 0 when absent. Evaluation helpers use it for Accuracy@k.
func Rank(list []ScoredCode, code string) int {
	for i, sc := range list {
		if sc.Code == code {
			return i + 1
		}
	}
	return 0
}
