package core

import (
	"fmt"

	"repro/internal/reldb"
)

// Result persistence (pipeline step 3c, "Result Persistence: store scored
// error code suggestions in a relational database"): the QUEST web app
// reads the top suggestions for each data bundle from this table.

// TableRecommendations holds the persisted scored suggestions.
const TableRecommendations = "recommendations"

// CreateResultsTable creates the recommendations schema.
func CreateResultsTable(db *reldb.DB) error {
	if err := db.CreateTable(reldb.Schema{
		Name: TableRecommendations,
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.TInt},
			{Name: "ref_no", Type: reldb.TString, NotNull: true},
			{Name: "rank", Type: reldb.TInt, NotNull: true},
			{Name: "error_code", Type: reldb.TString, NotNull: true},
			{Name: "score", Type: reldb.TFloat, NotNull: true},
		},
		PrimaryKey: "id",
	}); err != nil {
		return err
	}
	return db.CreateIndex(TableRecommendations, "ix_rec_ref", false, "ref_no")
}

// SaveRecommendations replaces the stored suggestions for a bundle.
func SaveRecommendations(db *reldb.DB, refNo string, list []ScoredCode) error {
	if _, err := db.DeleteWhere(TableRecommendations, reldb.Eq("ref_no", refNo)); err != nil {
		return err
	}
	tx := db.Begin()
	for i, sc := range list {
		tx.Insert(TableRecommendations, reldb.Row{nil, refNo, int64(i + 1), sc.Code, sc.Score})
	}
	return tx.Commit()
}

// LoadRecommendations reads the stored suggestions for a bundle in rank
// order, up to limit entries (0 = all).
func LoadRecommendations(db *reldb.DB, refNo string, limit int) ([]ScoredCode, error) {
	res, err := db.Select(reldb.Query{
		Table:   TableRecommendations,
		Where:   []reldb.Cond{reldb.Eq("ref_no", refNo)},
		OrderBy: "rank",
		Limit:   limit,
	})
	if err != nil {
		return nil, fmt.Errorf("core: load recommendations: %w", err)
	}
	out := make([]ScoredCode, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, ScoredCode{Code: row[3].(string), Score: row[4].(float64)})
	}
	return out, nil
}
