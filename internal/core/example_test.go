package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kb"
)

// ExampleClassifier_Recommend shows the ranked-list classification of
// §4.3: knowledge nodes are built from classified data bundles, and a new
// bundle's feature set is answered with a ranked error-code list.
func ExampleClassifier_Recommend() {
	store := kb.NewMemory()
	store.AddBundle("P1", "E100", []string{"crackle", "radio", "smell"})
	store.AddBundle("P1", "E100", []string{"contact", "crackle", "radio"})
	store.AddBundle("P1", "E200", []string{"dead", "fuse", "radio"})

	clf := core.New(store, core.Jaccard{})
	for _, sc := range clf.Recommend("P1", []string{"crackle", "radio"}) {
		fmt.Printf("%s %.2f\n", sc.Code, sc.Score)
	}
	// Output:
	// E100 0.67
	// E200 0.25
}

// ExampleJaccard contrasts the two similarity measures of §4.3 on the same
// feature sets.
func ExampleJaccard() {
	shared, a, b := 2, 4, 2 // B ⊂ A
	fmt.Printf("jaccard %.2f overlap %.2f\n",
		core.Jaccard{}.Score(shared, a, b),
		core.Overlap{}.Score(shared, a, b))
	// Output:
	// jaccard 0.50 overlap 1.00
}
