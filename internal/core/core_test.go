package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/kb"
	"repro/internal/reldb"
)

func TestJaccard(t *testing.T) {
	j := Jaccard{}
	cases := []struct {
		shared, a, b int
		want         float64
	}{
		{0, 0, 0, 0},
		{2, 3, 3, 0.5},  // |A∪B| = 4
		{3, 3, 3, 1},    // identical sets
		{0, 5, 5, 0},    // disjoint
		{1, 1, 10, 0.1}, // subset
	}
	for i, c := range cases {
		if got := j.Score(c.shared, c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: jaccard = %v, want %v", i, got, c.want)
		}
	}
	if j.Name() != "jaccard" {
		t.Error("name wrong")
	}
}

func TestOverlap(t *testing.T) {
	o := Overlap{}
	cases := []struct {
		shared, a, b int
		want         float64
	}{
		{0, 0, 0, 0},
		{2, 2, 10, 1},  // A ⊂ B
		{1, 2, 4, 0.5}, // min = 2
		{0, 3, 3, 0},
	}
	for i, c := range cases {
		if got := o.Score(c.shared, c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: overlap = %v, want %v", i, got, c.want)
		}
	}
	if o.Name() != "overlap" {
		t.Error("name wrong")
	}
}

// Property: both similarities stay in [0,1] and overlap >= jaccard for any
// consistent (shared, a, b).
func TestSimilarityBoundsProperty(t *testing.T) {
	f := func(shared, a, b uint8) bool {
		s, sa, sb := int(shared%20), int(a%40), int(b%40)
		if s > sa || s > sb {
			return true // inconsistent triple, skip
		}
		j := Jaccard{}.Score(s, sa, sb)
		o := Overlap{}.Score(s, sa, sb)
		return j >= 0 && j <= 1 && o >= 0 && o <= 1 && o >= j-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func classifierFixture() *Classifier {
	m := kb.NewMemory()
	// P1 has three codes with distinctive and overlapping features.
	m.AddBundle("P1", "E_RADIO", []string{"crackle", "radio", "smell"})
	m.AddBundle("P1", "E_RADIO", []string{"crackle", "radio"})
	m.AddBundle("P1", "E_FAN", []string{"fan", "hum", "radio"})
	m.AddBundle("P1", "E_FUSE", []string{"blown", "fuse", "smell"})
	m.AddBundle("P2", "E_BRAKE", []string{"brake", "squeak"})
	return New(m, Jaccard{})
}

func TestRecommendRanksMostSimilarFirst(t *testing.T) {
	c := classifierFixture()
	got := c.Recommend("P1", []string{"crackle", "radio"})
	if len(got) == 0 || got[0].Code != "E_RADIO" {
		t.Fatalf("recommendations = %v", got)
	}
	if got[0].Score != 1.0 {
		t.Fatalf("top score = %v, want 1.0 (exact feature match)", got[0].Score)
	}
	// Codes are unique in the list.
	seen := map[string]bool{}
	for _, sc := range got {
		if seen[sc.Code] {
			t.Fatalf("duplicate code in list: %v", got)
		}
		seen[sc.Code] = true
	}
	// Scores are non-increasing.
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("scores not sorted: %v", got)
		}
	}
}

func TestRecommendCandidateFiltering(t *testing.T) {
	c := classifierFixture()
	// "smell" is shared by E_RADIO and E_FUSE only.
	got := c.Recommend("P1", []string{"smell"})
	if len(got) != 2 {
		t.Fatalf("recommendations = %v", got)
	}
	for _, sc := range got {
		if sc.Code == "E_FAN" {
			t.Fatal("E_FAN should not be a candidate")
		}
	}
	// No shared features at all: empty list.
	if got := c.Recommend("P1", []string{"zzz"}); len(got) != 0 {
		t.Fatalf("recommendations = %v", got)
	}
}

func TestRecommendUnknownPartFallsBackToAllNodes(t *testing.T) {
	c := classifierFixture()
	got := c.Recommend("P_UNKNOWN", []string{"brake", "squeak"})
	if len(got) == 0 || got[0].Code != "E_BRAKE" {
		t.Fatalf("recommendations = %v", got)
	}
}

func TestRecommendNodeCutoff(t *testing.T) {
	m := kb.NewMemory()
	for i := 0; i < 60; i++ {
		code := string(rune('A' + i%40))
		m.AddBundle("P", "E_"+code+string(rune('0'+i/40)), []string{"x", feature(i)})
	}
	c := New(m, Jaccard{})
	got := c.Recommend("P", []string{"x"})
	if len(got) > DefaultNodeCutoff {
		t.Fatalf("list length %d exceeds node cutoff", len(got))
	}
	c.NodeCutoff = 5
	if got := c.Recommend("P", []string{"x"}); len(got) > 5 {
		t.Fatalf("custom cutoff ignored: %d", len(got))
	}
}

func feature(i int) string { return "f" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) }

func TestRecommendDeterministicTieBreak(t *testing.T) {
	m := kb.NewMemory()
	m.AddBundle("P", "E_B", []string{"x"})
	m.AddBundle("P", "E_A", []string{"x"})
	c := New(m, Jaccard{})
	got := c.Recommend("P", []string{"x"})
	if len(got) != 2 || got[0].Code != "E_A" || got[1].Code != "E_B" {
		t.Fatalf("tie-break = %v", got)
	}
}

func TestMajorityVote(t *testing.T) {
	c := classifierFixture()
	// Among candidates sharing "radio": two E_RADIO nodes, one E_FAN.
	if got := c.MajorityVote("P1", []string{"radio"}, 3); got != "E_RADIO" {
		t.Fatalf("majority = %q", got)
	}
	if got := c.MajorityVote("P1", []string{"zzz"}, 3); got != "" {
		t.Fatalf("majority on empty candidates = %q", got)
	}
	// k <= 0 defaults sensibly instead of panicking.
	if got := c.MajorityVote("P1", []string{"radio"}, 0); got == "" {
		t.Fatal("default k returned nothing")
	}
}

// TestMajorityVoteInstability reproduces the Fig. 6 phenomenon: with
// different k the assigned class can flip, while the ranked list stays
// stable — the motivation for the ranked-list adaptation.
func TestMajorityVoteInstability(t *testing.T) {
	m := kb.NewMemory()
	// 2 very close A nodes, 4 more distant B nodes.
	m.AddBundle("P", "A", []string{"q1", "q2", "q3"})
	m.AddBundle("P", "A", []string{"q1", "q2", "q4"})
	m.AddBundle("P", "B", []string{"q1", "r1", "r2", "r3"})
	m.AddBundle("P", "B", []string{"q1", "r1", "r2", "r4"})
	m.AddBundle("P", "B", []string{"q1", "r1", "r3", "r5"})
	m.AddBundle("P", "B", []string{"q1", "r2", "r4", "r6"})
	c := New(m, Jaccard{})
	query := []string{"q1", "q2", "q3"}
	small := c.MajorityVote("P", query, 2)
	large := c.MajorityVote("P", query, 6)
	if small != "A" || large != "B" {
		t.Fatalf("votes = %q (k=2), %q (k=6); expected flip A→B", small, large)
	}
	// The ranked list puts A first regardless.
	if got := c.Recommend("P", query); got[0].Code != "A" {
		t.Fatalf("ranked list top = %v", got)
	}
}

func TestRank(t *testing.T) {
	list := []ScoredCode{{Code: "A"}, {Code: "B"}, {Code: "C"}}
	if Rank(list, "A") != 1 || Rank(list, "C") != 3 || Rank(list, "Z") != 0 {
		t.Fatal("Rank wrong")
	}
}

func TestResultsPersistence(t *testing.T) {
	db, _ := reldb.Open("")
	if err := CreateResultsTable(db); err != nil {
		t.Fatal(err)
	}
	list := []ScoredCode{{"E1", 0.9}, {"E2", 0.5}, {"E3", 0.1}}
	if err := SaveRecommendations(db, "R1", list); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecommendations(db, "R1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Code != "E1" || got[2].Code != "E3" {
		t.Fatalf("loaded = %v", got)
	}
	// Limit.
	got, _ = LoadRecommendations(db, "R1", 2)
	if len(got) != 2 {
		t.Fatalf("limited = %v", got)
	}
	// Re-saving replaces.
	if err := SaveRecommendations(db, "R1", list[:1]); err != nil {
		t.Fatal(err)
	}
	got, _ = LoadRecommendations(db, "R1", 0)
	if len(got) != 1 {
		t.Fatalf("after replace = %v", got)
	}
	// Unknown bundle: empty, no error.
	got, err = LoadRecommendations(db, "R_missing", 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("missing = %v, %v", got, err)
	}
}

// Property: Recommend never returns duplicate codes, scores within [0,1]
// for Jaccard, and the list is sorted by descending score.
func TestRecommendInvariantsProperty(t *testing.T) {
	f := func(seed uint8) bool {
		m := kb.NewMemory()
		n := int(seed%13) + 3
		for i := 0; i < n; i++ {
			feats := []string{feature(i), feature(i + 1), "common"}
			m.AddBundle("P", "E"+string(rune('0'+i%7)), feats)
		}
		c := New(m, Jaccard{})
		got := c.Recommend("P", []string{"common", feature(int(seed) % 5)})
		seen := map[string]bool{}
		prev := 2.0
		for _, sc := range got {
			if seen[sc.Code] || sc.Score < 0 || sc.Score > 1 || sc.Score > prev {
				return false
			}
			seen[sc.Code] = true
			prev = sc.Score
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedVote(t *testing.T) {
	m := kb.NewMemory()
	// One very close A node vs two distant B nodes: unweighted k=3 voting
	// picks B, weighting picks A.
	m.AddBundle("P", "A", []string{"x", "y", "z"})
	m.AddBundle("P", "B", []string{"x", "r1", "r2", "r3", "r4", "r5"})
	m.AddBundle("P", "B", []string{"x", "s1", "s2", "s3", "s4", "s5"})
	c := New(m, Jaccard{})
	query := []string{"x", "y", "z"}
	if got := c.MajorityVote("P", query, 3); got != "B" {
		t.Fatalf("unweighted vote = %q, want B", got)
	}
	if got := c.WeightedVote("P", query, 3); got != "A" {
		t.Fatalf("weighted vote = %q, want A", got)
	}
	if got := c.WeightedVote("P", []string{"zzz"}, 3); got != "" {
		t.Fatalf("weighted vote on empty candidates = %q", got)
	}
	if got := c.WeightedVote("P", query, 0); got == "" {
		t.Fatal("default k returned nothing")
	}
}
