package pipeline

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

func appendEngine(name, mark string) Engine {
	return EngineFunc{EngineName: name, Fn: func(c *cas.CAS) error {
		c.SetMetadata("trace", c.Metadata("trace")+mark)
		return nil
	}}
}

func TestPipelineRunsEnginesInOrder(t *testing.T) {
	p, err := New(appendEngine("a", "A"), appendEngine("b", "B"), appendEngine("c", "C"))
	if err != nil {
		t.Fatal(err)
	}
	c := cas.New("doc")
	if err := p.Process(c); err != nil {
		t.Fatal(err)
	}
	if c.Metadata("trace") != "ABC" {
		t.Fatalf("trace = %q", c.Metadata("trace"))
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty pipeline accepted")
	}
	if _, err := New(nil); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(EngineFunc{EngineName: "", Fn: func(*cas.CAS) error { return nil }}); err == nil {
		t.Error("unnamed engine accepted")
	}
	if _, err := New(appendEngine("x", "1"), appendEngine("x", "2")); err == nil {
		t.Error("duplicate engine names accepted")
	}
}

func TestPipelineErrorWrapsEngineName(t *testing.T) {
	boom := errors.New("boom")
	p, _ := New(appendEngine("ok", "A"), EngineFunc{EngineName: "fails", Fn: func(*cas.CAS) error { return boom }})
	err := p.Process(cas.New("doc"))
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "fails") {
		t.Fatalf("error does not name the engine: %v", err)
	}
}

func TestRunStreamsCollection(t *testing.T) {
	p, _ := New(appendEngine("a", "A"))
	reader := &SliceReader{CASes: []*cas.CAS{cas.New("1"), cas.New("2"), cas.New("3")}}
	var seen []string
	n, err := p.Run(reader, ConsumerFunc(func(c *cas.CAS) error {
		seen = append(seen, c.Text())
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(seen) != 3 {
		t.Fatalf("n=%d seen=%v", n, seen)
	}
	for _, c := range reader.CASes {
		if c.Metadata("trace") != "A" {
			t.Fatal("engine did not run on all documents")
		}
	}
}

func TestRunConsumerError(t *testing.T) {
	p, _ := New(appendEngine("a", "A"))
	reader := &SliceReader{CASes: []*cas.CAS{cas.New("1"), cas.New("2")}}
	bad := errors.New("consumer bad")
	n, err := p.Run(reader, ConsumerFunc(func(c *cas.CAS) error { return bad }))
	if !errors.Is(err, bad) || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestRunNilConsumer(t *testing.T) {
	p, _ := New(appendEngine("a", "A"))
	n, err := p.Run(&SliceReader{CASes: []*cas.CAS{cas.New("1")}}, nil)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestEnginesNames(t *testing.T) {
	p, _ := New(appendEngine("a", "A"), appendEngine("b", "B"))
	got := p.Engines()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("engines = %v", got)
	}
}

// TestRunCancellationStopsAtDocumentBoundary: a context cancelled mid-run
// stops the pipeline before the next document is pulled, returning the
// stats accumulated so far and an error chaining to context.Canceled.
func TestRunCancellationStopsAtDocumentBoundary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	processed := 0
	tripwire := EngineFunc{EngineName: "tripwire", Fn: func(c *cas.CAS) error {
		processed++
		if processed == 2 {
			cancel() // cancel mid-run: documents 3..5 must never start
		}
		return nil
	}}
	p, err := New(tripwire)
	if err != nil {
		t.Fatal(err)
	}
	reader := &SliceReader{CASes: []*cas.CAS{
		cas.New("1"), cas.New("2"), cas.New("3"), cas.New("4"), cas.New("5"),
	}}
	stats, err := p.RunWithConfig(ctx, reader, nil, RunConfig{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want chain to context.Canceled", err)
	}
	if processed != 2 {
		t.Errorf("engine ran %d times, want 2 (no documents after cancel)", processed)
	}
	if stats.Read != 2 || stats.Processed != 2 {
		t.Errorf("stats = %+v, want Read=2 Processed=2", stats)
	}
}

// TestRunRecordsSpansAndMetrics: a traced run produces the span hierarchy
// run → document → engine and the pipeline counters.
func TestRunRecordsSpansAndMetrics(t *testing.T) {
	slow := EngineFunc{EngineName: "slow", Fn: func(c *cas.CAS) error {
		time.Sleep(time.Millisecond)
		return nil
	}}
	p, err := New(appendEngine("a", "A"), slow)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	reader := &SliceReader{CASes: []*cas.CAS{cas.New("1"), cas.New("2"), cas.New("3")}}
	stats, err := p.RunWithConfig(context.Background(), reader, nil, RunConfig{Metrics: reg, Tracer: tr})
	if err != nil || stats.Processed != 3 {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
	if got := reg.Counter(MetricDocumentsTotal).Value(); got != 3 {
		t.Errorf("documents counter = %d, want 3", got)
	}
	if got := reg.Counter(MetricDeadLettersTotal).Value(); got != 0 {
		t.Errorf("dead-letter counter = %d, want 0", got)
	}

	byName := map[string]obs.SpanStat{}
	for _, s := range tr.Stats() {
		byName[s.Name] = s
	}
	if byName["pipeline.run"].Count != 1 || byName["pipeline.document"].Count != 3 {
		t.Fatalf("run/document spans: %+v", byName)
	}
	if byName["engine:a"].Count != 3 || byName["engine:slow"].Count != 3 {
		t.Fatalf("engine spans: %+v", byName)
	}
	if byName["engine:slow"].Total < 3*time.Millisecond {
		t.Errorf("engine:slow total = %v, want >= 3ms", byName["engine:slow"].Total)
	}
	// Structural check on the recorded spans: every engine span is parented
	// by a document span, every document span by the single run span.
	ids := map[uint64]string{}
	for _, s := range tr.Snapshot() {
		ids[s.SpanID] = s.Name
	}
	for _, s := range tr.Snapshot() {
		switch s.Name {
		case "pipeline.run":
			if s.ParentID != 0 {
				t.Errorf("run span has parent %d", s.ParentID)
			}
		case "pipeline.document":
			if ids[s.ParentID] != "pipeline.run" {
				t.Errorf("document span parented by %q", ids[s.ParentID])
			}
		default:
			if ids[s.ParentID] != "pipeline.document" {
				t.Errorf("engine span parented by %q", ids[s.ParentID])
			}
		}
	}
}

// TestSpanReportReproducesTimedTotals: the aggregated span table carries
// the same per-engine document counts and error tallies the retired Timed
// wrapper reported, rendered slowest first.
func TestSpanReportReproducesTimedTotals(t *testing.T) {
	boom := errors.New("x")
	p, _ := New(
		appendEngine("a", "A"),
		EngineFunc{EngineName: "flaky", Fn: func(c *cas.CAS) error {
			if c.Text() == "bad" {
				return boom
			}
			return nil
		}},
	)
	tr := obs.NewTracer(64)
	reader := &SliceReader{CASes: []*cas.CAS{cas.New("1"), cas.New("bad"), cas.New("2")}}
	stats, err := p.RunWithConfig(context.Background(), reader, nil, RunConfig{
		Tracer:     tr,
		DeadLetter: func(DeadLetter) error { return nil },
	})
	if err != nil || stats.Processed != 2 || stats.DeadLettered != 1 {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
	rows := EngineStats(tr.Stats())
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	byName := map[string]obs.SpanStat{}
	for _, s := range rows {
		byName[s.Name] = s
	}
	if byName["a"].Count != 3 || byName["a"].Errors != 0 {
		t.Errorf("engine a stat = %+v", byName["a"])
	}
	if byName["flaky"].Count != 3 || byName["flaky"].Errors != 1 {
		t.Errorf("engine flaky stat = %+v", byName["flaky"])
	}
	var sb strings.Builder
	PrintSpanReport(&sb, tr.Stats())
	out := sb.String()
	if !strings.Contains(out, "flaky") || !strings.Contains(out, "per document") {
		t.Fatalf("report:\n%s", out)
	}
	if strings.Contains(out, "pipeline.run") {
		t.Fatalf("report leaks non-engine spans:\n%s", out)
	}
}

// TestRunObsDeadLetterEvents: dead letters and circuit breaks surface as
// counters and structured log lines.
func TestRunObsDeadLetterEvents(t *testing.T) {
	boom := errors.New("boom")
	p, _ := New(EngineFunc{EngineName: "f", Fn: func(*cas.CAS) error { return boom }})
	reg := obs.NewRegistry()
	var logged strings.Builder
	cfg := RunConfig{
		DeadLetter:  func(DeadLetter) error { return nil },
		ErrorBudget: 2,
		Metrics:     reg,
		Logger:      obs.NewLogger(&logged, obs.LevelInfo),
	}
	reader := &SliceReader{CASes: []*cas.CAS{cas.New("1"), cas.New("2"), cas.New("3")}}
	_, err := p.RunWithConfig(context.Background(), reader, nil, cfg)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v", err)
	}
	if got := reg.Counter(MetricDeadLettersTotal).Value(); got != 2 {
		t.Errorf("dead-letter counter = %d, want 2", got)
	}
	if got := reg.Counter(MetricCircuitBreaksTotal).Value(); got != 1 {
		t.Errorf("circuit-break counter = %d, want 1", got)
	}
	out := logged.String()
	if !strings.Contains(out, `msg="document dead-lettered"`) || !strings.Contains(out, "engine=f") {
		t.Errorf("missing dead-letter event:\n%s", out)
	}
	if !strings.Contains(out, `msg="circuit breaker tripped"`) {
		t.Errorf("missing circuit-break event:\n%s", out)
	}
}

// TestRegisterMetricsPreTouch: families render at zero before any run, so
// a scraper sees the inventory from process start.
func TestRegisterMetricsPreTouch(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		MetricDocumentsTotal, MetricDeadLettersTotal,
		MetricCircuitBreaksTotal, MetricRetriesTotal,
	} {
		if !strings.Contains(sb.String(), name+" 0") {
			t.Errorf("exposition missing %s at zero:\n%s", name, sb.String())
		}
	}
}

// TestProcessDisabledObsZeroAllocs proves the acceptance bound: with
// observability disabled (nil registry/tracer), Process allocates nothing.
func TestProcessDisabledObsZeroAllocs(t *testing.T) {
	p, _ := New(EngineFunc{EngineName: "noop", Fn: func(*cas.CAS) error { return nil }})
	c := cas.New("doc")
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := p.Process(c); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Process with disabled observability allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkProcessObsDisabled is the hot path without observability; its
// allocs/op must stay 0 (see TestProcessDisabledObsZeroAllocs).
func BenchmarkProcessObsDisabled(b *testing.B) {
	p, _ := New(EngineFunc{EngineName: "noop", Fn: func(*cas.CAS) error { return nil }})
	c := cas.New("doc")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Process(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessObsEnabled quantifies the cost of live tracing on the
// same path for comparison against the disabled baseline.
func BenchmarkProcessObsEnabled(b *testing.B) {
	p, _ := New(EngineFunc{EngineName: "noop", Fn: func(*cas.CAS) error { return nil }})
	tr := obs.NewTracer(1024)
	c := cas.New("doc")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Start(nil, "bench")
		if err := p.process(c, tr, root, nil); err != nil {
			b.Fatal(err)
		}
		root.End(nil)
	}
}

// TestCircuitBreakerTriggersFlightBundle: a tripped error-budget breaker
// is a hard anomaly — the flight recorder wired through RunConfig.Flight
// captures a diagnostic bundle attributing the failing document.
func TestCircuitBreakerTriggersFlightBundle(t *testing.T) {
	boom := errors.New("boom")
	p, _ := New(EngineFunc{EngineName: "f", Fn: func(*cas.CAS) error { return boom }})
	fr := flight.New(flight.Config{
		Dir:         t.TempDir(),
		Logger:      obs.NewLogger(io.Discard, obs.LevelError),
		MinInterval: -1,
	})
	defer fr.Close()
	cfg := RunConfig{
		DeadLetter:  func(DeadLetter) error { return nil },
		ErrorBudget: 2,
		Flight:      fr,
	}
	reader := &SliceReader{CASes: []*cas.CAS{cas.New("1"), cas.New("2"), cas.New("3")}}
	if _, err := p.RunWithConfig(context.Background(), reader, nil, cfg); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v", err)
	}
	bdir := fr.LastBundleDir()
	if bdir == "" {
		t.Fatal("circuit trip did not produce a flight bundle")
	}
	b, err := flight.ReadBundle(bdir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != flight.ReasonCircuitBreaker {
		t.Fatalf("bundle reason = %q", b.Reason)
	}
	if b.Details["consecutive"] != "2" || !strings.Contains(b.Details["err"], "boom") {
		t.Fatalf("bundle details = %v", b.Details)
	}
}

// TestRunHeartbeatsStallGuard: each document read re-arms the stall guard
// and the guard is disarmed when the run returns, so a completed run can
// never fire a stale stall trigger.
func TestRunHeartbeatsStallGuard(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	fr := flight.New(flight.Config{
		Dir:           t.TempDir(),
		Clock:         clock,
		Logger:        obs.NewLogger(io.Discard, obs.LevelError),
		StallDeadline: time.Minute,
		MinInterval:   -1,
	})
	defer fr.Close()
	p, _ := New(appendEngine("a", "x"))
	reader := &SliceReader{CASes: []*cas.CAS{cas.New("1"), cas.New("2")}}
	if _, err := p.RunWithConfig(context.Background(), reader, nil, RunConfig{Flight: fr}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Hour)
	fr.Tick(now)
	if got := fr.LastBundleDir(); got != "" {
		t.Fatalf("completed run left an armed stall guard: %s", got)
	}
}
