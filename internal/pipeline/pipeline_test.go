package pipeline

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cas"
)

func appendEngine(name, mark string) Engine {
	return EngineFunc{EngineName: name, Fn: func(c *cas.CAS) error {
		c.SetMetadata("trace", c.Metadata("trace")+mark)
		return nil
	}}
}

func TestPipelineRunsEnginesInOrder(t *testing.T) {
	p, err := New(appendEngine("a", "A"), appendEngine("b", "B"), appendEngine("c", "C"))
	if err != nil {
		t.Fatal(err)
	}
	c := cas.New("doc")
	if err := p.Process(c); err != nil {
		t.Fatal(err)
	}
	if c.Metadata("trace") != "ABC" {
		t.Fatalf("trace = %q", c.Metadata("trace"))
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty pipeline accepted")
	}
	if _, err := New(nil); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(EngineFunc{EngineName: "", Fn: func(*cas.CAS) error { return nil }}); err == nil {
		t.Error("unnamed engine accepted")
	}
	if _, err := New(appendEngine("x", "1"), appendEngine("x", "2")); err == nil {
		t.Error("duplicate engine names accepted")
	}
}

func TestPipelineErrorWrapsEngineName(t *testing.T) {
	boom := errors.New("boom")
	p, _ := New(appendEngine("ok", "A"), EngineFunc{EngineName: "fails", Fn: func(*cas.CAS) error { return boom }})
	err := p.Process(cas.New("doc"))
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "fails") {
		t.Fatalf("error does not name the engine: %v", err)
	}
}

func TestRunStreamsCollection(t *testing.T) {
	p, _ := New(appendEngine("a", "A"))
	reader := &SliceReader{CASes: []*cas.CAS{cas.New("1"), cas.New("2"), cas.New("3")}}
	var seen []string
	n, err := p.Run(reader, ConsumerFunc(func(c *cas.CAS) error {
		seen = append(seen, c.Text())
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(seen) != 3 {
		t.Fatalf("n=%d seen=%v", n, seen)
	}
	for _, c := range reader.CASes {
		if c.Metadata("trace") != "A" {
			t.Fatal("engine did not run on all documents")
		}
	}
}

func TestRunConsumerError(t *testing.T) {
	p, _ := New(appendEngine("a", "A"))
	reader := &SliceReader{CASes: []*cas.CAS{cas.New("1"), cas.New("2")}}
	bad := errors.New("consumer bad")
	n, err := p.Run(reader, ConsumerFunc(func(c *cas.CAS) error { return bad }))
	if !errors.Is(err, bad) || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestRunNilConsumer(t *testing.T) {
	p, _ := New(appendEngine("a", "A"))
	n, err := p.Run(&SliceReader{CASes: []*cas.CAS{cas.New("1")}}, nil)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestEnginesNames(t *testing.T) {
	p, _ := New(appendEngine("a", "A"), appendEngine("b", "B"))
	got := p.Engines()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("engines = %v", got)
	}
}

func TestTimedEngine(t *testing.T) {
	slow := EngineFunc{EngineName: "slow", Fn: func(c *cas.CAS) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	}}
	timed := NewTimed(slow)
	p, err := New(timed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.Process(cas.New("doc")); err != nil {
			t.Fatal(err)
		}
	}
	docs, total := timed.Stats()
	if docs != 3 {
		t.Fatalf("docs = %d", docs)
	}
	if total < 6*time.Millisecond {
		t.Fatalf("total = %v, want >= 6ms", total)
	}
	timed.Reset()
	if docs, total := timed.Stats(); docs != 0 || total != 0 {
		t.Fatal("reset did not clear stats")
	}
	if timed.Name() != "slow" {
		t.Fatal("name not forwarded")
	}
}

func TestInstrumentAllAndReport(t *testing.T) {
	engines, timed := InstrumentAll(appendEngine("a", "A"), appendEngine("b", "B"))
	p, err := New(engines...)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Process(cas.New("doc")); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintReport(&sb, timed)
	out := sb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "per document") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestTimedPropagatesErrors(t *testing.T) {
	boom := errors.New("x")
	timed := NewTimed(EngineFunc{EngineName: "f", Fn: func(*cas.CAS) error { return boom }})
	if err := timed.Process(cas.New("d")); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if docs, _ := timed.Stats(); docs != 1 {
		t.Fatal("failed document not counted")
	}
}
