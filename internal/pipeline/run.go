package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/pprof"
	"strconv"

	"repro/internal/cas"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/reqlog"
)

// Fault-isolated collection processing. The paper positions the QATK at
// *messy* industrial data (§1, §5.2): a production run over thousands of
// bundles must survive individual malformed documents. RunWithConfig routes
// failing documents to a dead-letter consumer instead of aborting, trips a
// circuit breaker only when an error budget of consecutive failures is
// exhausted, and reports run-level statistics for the §5.2.2 feasibility
// view of where processing degrades.

// MetaDocID is the CAS metadata key consulted for a human-readable document
// identifier in errors and dead letters (bundle readers store the bundle
// reference number under this key).
const MetaDocID = "ref_no"

// DocumentError wraps a per-document failure with its position in the
// collection and, when available, the document's reference number.
type DocumentError struct {
	Index int    // zero-based position in the reader's stream
	DocID string // CAS metadata under MetaDocID, "" if unset
	Err   error
}

// Error formats the failure with document attribution.
func (e *DocumentError) Error() string {
	if e.DocID != "" {
		return fmt.Sprintf("pipeline: document %d (%s): %v", e.Index, e.DocID, e.Err)
	}
	return fmt.Sprintf("pipeline: document %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying error.
func (e *DocumentError) Unwrap() error { return e.Err }

// DeadLetter describes one document that failed processing and was routed
// out of the run instead of aborting it.
type DeadLetter struct {
	Index  int      // zero-based position in the reader's stream
	DocID  string   // CAS metadata under MetaDocID, "" if unset
	Engine string   // failing engine name; "(consumer)" for consumer errors
	Err    error    // the document's failure, unwrapped of attribution
	CAS    *cas.CAS // the document, as far as it was processed
}

// DeadLetterFunc receives failed documents. Returning an error aborts the
// run (e.g. when the dead-letter sink itself is broken).
type DeadLetterFunc func(DeadLetter) error

// consumerEngine names consumer failures in dead letters.
const consumerEngine = "(consumer)"

// RunConfig tunes fault isolation for one collection run.
type RunConfig struct {
	// DeadLetter receives failing documents. Nil restores strict behavior:
	// the first document failure aborts the run.
	DeadLetter DeadLetterFunc
	// ErrorBudget is how many *consecutive* document failures are tolerated
	// before the circuit breaker trips the run with ErrCircuitOpen. Zero or
	// negative means no breaker: any number of isolated failures is allowed.
	ErrorBudget int
	// Metrics receives run counters (documents, dead letters, circuit
	// breaks, retries). Nil disables metrics at zero cost.
	Metrics *obs.Registry
	// Tracer records one root span per run ("pipeline.run"), one child per
	// document ("pipeline.document"), and one grandchild per engine
	// invocation ("engine:<name>"). Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// Logger receives structured dead-letter and circuit-break events.
	// Nil disables logging.
	Logger *obs.Logger
	// Flight is the black-box flight recorder: the run heartbeats a stall
	// guard per document (so a wedged reader, engine, or consumer trips
	// the stall watchdog) and a tripped circuit breaker captures a
	// diagnostic bundle. Nil disables flight recording at zero cost.
	Flight *flight.Recorder
}

// ErrCircuitOpen reports a tripped consecutive-failure circuit breaker.
var ErrCircuitOpen = errors.New("pipeline: circuit open")

// Stats summarizes one collection run. Read = Processed + DeadLettered
// always holds on a completed run; on an aborted run the failing document
// is counted as read but neither processed nor dead-lettered.
type Stats struct {
	Read         int // documents pulled from the reader
	Processed    int // documents that passed every engine and the consumer
	Retried      int // retry attempts accumulated by Retry-wrapped engines
	DeadLettered int // documents routed to the dead-letter consumer
}

// String renders the run summary as a single report line.
func (s Stats) String() string {
	return fmt.Sprintf("read %d, processed %d, retried %d, dead-lettered %d",
		s.Read, s.Processed, s.Retried, s.DeadLettered)
}

// retryCounter is implemented by Retry-wrapped engines.
type retryCounter interface{ Retries() int }

// Retries sums the retry attempts of all Retry-wrapped engines in the
// pipeline (0 when none are wrapped).
func (p *Pipeline) Retries() int {
	n := 0
	for _, e := range p.engines {
		if rc, ok := e.(retryCounter); ok {
			n += rc.Retries()
		}
	}
	return n
}

// Span names opened by RunWithConfig. Per-engine spans are named by
// EngineSpanPrefix plus the engine name (see instrument.go).
const (
	spanRun      = "pipeline.run"
	spanDocument = "pipeline.document"
)

// RunWithConfig streams every CAS from r through the pipeline into consumer
// with document-level error isolation: a failing document is handed to
// cfg.DeadLetter (with engine attribution) and the run continues. Reader
// errors other than io.EOF remain fatal — a broken source cannot be skipped
// past. The returned Stats are valid even when the run aborts early.
//
// Cancellation is honored at document boundaries: when ctx is done the
// run stops before pulling the next document and returns ctx's error
// (wrapped) alongside the Stats accumulated so far. A long ingest can
// therefore be shut down without waiting for the corpus to drain.
//
// Observability rides on the config: a root span covers the run, each
// document gets a child span, each engine invocation a grandchild, and
// counters/log events record documents, dead letters, circuit breaks and
// retries. All of it is nil-safe — a zero RunConfig processes documents on
// the exact pre-observability path.
func (p *Pipeline) RunWithConfig(ctx context.Context, r Reader, consumer Consumer, cfg RunConfig) (stats Stats, err error) {
	consecutive := 0
	docsRead := cfg.Metrics.Counter(MetricDocumentsTotal)
	deadLetters := cfg.Metrics.Counter(MetricDeadLettersTotal)
	circuitBreaks := cfg.Metrics.Counter(MetricCircuitBreaksTotal)
	retries := cfg.Metrics.Counter(MetricRetriesTotal)
	startRetries := p.Retries()
	run := cfg.Tracer.Start(nil, spanRun)
	log := cfg.Logger.WithSpan(run)
	guard := cfg.Flight.Guard(spanRun)
	defer guard.Stop()
	defer func() {
		stats.Retried = p.Retries()
		if delta := stats.Retried - startRetries; delta > 0 {
			retries.Add(uint64(delta))
		}
		run.End(err)
	}()
	for index := 0; ; index++ {
		if cerr := ctx.Err(); cerr != nil {
			return stats, fmt.Errorf("pipeline: run cancelled after %d documents: %w", stats.Read, cerr)
		}
		c, rerr := r.Next()
		if errors.Is(rerr, io.EOF) {
			return stats, nil
		}
		if rerr != nil {
			return stats, fmt.Errorf("pipeline: reader: %w", rerr)
		}
		stats.Read++
		docsRead.Inc()
		guard.Beat()

		doc := cfg.Tracer.Start(run, spanDocument)
		// The document work runs under pprof labels so CPU profiles
		// attribute engine and consumer time to pipeline documents, the way
		// shard workers label their serving goroutines. The stage clock (nil
		// unless this run serves a live request) credits the tokenize and
		// annotate engines to the request's wide event.
		var docErr error
		engine := ""
		pprof.Do(ctx, pprof.Labels("pipeline", "document"), func(ctx context.Context) {
			docErr = p.process(c, cfg.Tracer, doc, reqlog.ClockFrom(ctx))
			if docErr != nil {
				var ee *EngineError
				if errors.As(docErr, &ee) {
					engine = ee.Engine
				}
			} else if consumer != nil {
				if cerr := consumer.Consume(c); cerr != nil {
					docErr = fmt.Errorf("pipeline: consumer: %w", cerr)
					engine = consumerEngine
				}
			}
		})
		doc.End(docErr)

		if docErr == nil {
			stats.Processed++
			consecutive = 0
			continue
		}

		wrapped := &DocumentError{Index: index, DocID: c.Metadata(MetaDocID), Err: docErr}
		if cfg.DeadLetter == nil {
			return stats, wrapped
		}
		dl := DeadLetter{Index: index, DocID: wrapped.DocID, Engine: engine, Err: docErr, CAS: c}
		if dlErr := cfg.DeadLetter(dl); dlErr != nil {
			return stats, fmt.Errorf("pipeline: dead-letter consumer: %w", dlErr)
		}
		stats.DeadLettered++
		deadLetters.Inc()
		log.Warn("document dead-lettered",
			obs.L("engine", engine),
			obs.L("doc", dl.DocID),
			obs.L("index", strconv.Itoa(index)),
			obs.L("err", docErr.Error()))
		consecutive++
		if cfg.ErrorBudget > 0 && consecutive >= cfg.ErrorBudget {
			circuitBreaks.Inc()
			log.Error("circuit breaker tripped",
				obs.L("consecutive", strconv.Itoa(consecutive)),
				obs.L("doc", dl.DocID))
			cfg.Flight.Trigger(flight.ReasonCircuitBreaker,
				obs.L("consecutive", strconv.Itoa(consecutive)),
				obs.L("doc", dl.DocID),
				obs.L("err", docErr.Error()))
			// Both the sentinel and the last document failure are wrapped:
			// callers match the breaker with errors.Is(err, ErrCircuitOpen)
			// and still extract the *DocumentError with errors.As for
			// attribution (which %v used to sever).
			return stats, fmt.Errorf("%w: %d consecutive document failures (last: %w)",
				ErrCircuitOpen, consecutive, wrapped)
		}
	}
}
