package pipeline

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/cas"
)

// flaky fails the first n Process calls, then succeeds.
func flaky(name string, failures int, err error) Engine {
	n := 0
	return EngineFunc{EngineName: name, Fn: func(*cas.CAS) error {
		if n < failures {
			n++
			return err
		}
		return nil
	}}
}

func noSleepPolicy(p Policy) Policy {
	p.Sleep = func(time.Duration) {}
	p.Rand = func() float64 { return 0.5 } // zero jitter offset
	return p
}

func TestRetrySucceedsWithinBudget(t *testing.T) {
	boom := errors.New("transient")
	re := Retry(flaky("f", 2, boom), noSleepPolicy(Policy{MaxAttempts: 3}))
	if err := re.Process(cas.New("d")); err != nil {
		t.Fatalf("err = %v", err)
	}
	if re.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", re.Retries())
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	boom := errors.New("always")
	attempts := 0
	e := EngineFunc{EngineName: "f", Fn: func(*cas.CAS) error { attempts++; return boom }}
	re := Retry(e, noSleepPolicy(Policy{MaxAttempts: 4}))
	if err := re.Process(cas.New("d")); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	if re.Retries() != 3 {
		t.Fatalf("retries = %d, want 3", re.Retries())
	}
}

func TestRetryNonRetryableFailsFast(t *testing.T) {
	fatal := errors.New("fatal")
	attempts := 0
	e := EngineFunc{EngineName: "f", Fn: func(*cas.CAS) error { attempts++; return fatal }}
	p := noSleepPolicy(Policy{MaxAttempts: 5, Retryable: func(err error) bool { return !errors.Is(err, fatal) }})
	re := Retry(e, p)
	if err := re.Process(cas.New("d")); !errors.Is(err, fatal) {
		t.Fatalf("err = %v", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (fail fast)", attempts)
	}
}

func TestRetryDoesNotRetryPanicsByDefault(t *testing.T) {
	attempts := 0
	e := EngineFunc{EngineName: "p", Fn: func(*cas.CAS) error { attempts++; panic("bug") }}
	re := Retry(e, noSleepPolicy(Policy{MaxAttempts: 5}))
	err := re.Process(cas.New("d"))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
}

func TestBackoffGrowsExponentiallyAndCaps(t *testing.T) {
	p := Policy{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     80 * time.Millisecond,
		Multiplier:     2,
		Jitter:         -1, // disabled
	}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterStaysInBounds(t *testing.T) {
	p := Policy{InitialBackoff: 100 * time.Millisecond, Jitter: 0.2}
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 1} {
		rr := r
		p.Rand = func() float64 { return rr }
		got := p.Backoff(1)
		if got < 80*time.Millisecond || got > 120*time.Millisecond {
			t.Fatalf("Backoff with rand=%v = %v, outside ±20%%", r, got)
		}
	}
}

func TestRetrySleepsBetweenAttempts(t *testing.T) {
	var slept []time.Duration
	boom := errors.New("x")
	p := Policy{
		MaxAttempts: 3, InitialBackoff: 10 * time.Millisecond, Multiplier: 2,
		Jitter: -1, Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	re := Retry(flaky("f", 5, boom), p)
	if err := re.Process(cas.New("d")); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Fatalf("slept = %v, want [10ms 20ms]", slept)
	}
}

func TestProcessRecoversPanicsWithEngineAttribution(t *testing.T) {
	p, _ := New(appendEngine("ok", "A"), EngineFunc{EngineName: "bad", Fn: func(*cas.CAS) error { panic("boom") }})
	err := p.Process(cas.New("d"))
	var ee *EngineError
	if !errors.As(err, &ee) || ee.Engine != "bad" {
		t.Fatalf("err = %v, want *EngineError for \"bad\"", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || len(pe.Stack) == 0 {
		t.Fatalf("err = %v, want wrapped *PanicError with stack", err)
	}
}

func TestRunWrapsDocumentIndexAndID(t *testing.T) {
	boom := errors.New("boom")
	docs := []*cas.CAS{cas.New("a"), cas.New("b"), cas.New("c")}
	docs[1].SetMetadata(MetaDocID, "R000042")
	fail := EngineFunc{EngineName: "f", Fn: func(c *cas.CAS) error {
		if c.Text() == "b" {
			return boom
		}
		return nil
	}}
	p, _ := New(fail)
	reader := &SliceReader{CASes: docs}
	n, err := p.Run(reader, nil)
	if n != 1 || !errors.Is(err, boom) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	var de *DocumentError
	if !errors.As(err, &de) || de.Index != 1 || de.DocID != "R000042" {
		t.Fatalf("err = %v, want *DocumentError{Index: 1, DocID: R000042}", err)
	}

	// SliceReader.Reset allows a second pass over the same documents.
	reader.Reset()
	if c, err := reader.Next(); err != nil || c.Text() != "a" {
		t.Fatalf("after Reset: c=%v err=%v", c, err)
	}
}

func TestRunWithConfigDeadLettersAndReconciles(t *testing.T) {
	boom := errors.New("bad doc")
	var docs []*cas.CAS
	for i := 0; i < 10; i++ {
		c := cas.New(string(rune('a' + i)))
		docs = append(docs, c)
	}
	fail := EngineFunc{EngineName: "f", Fn: func(c *cas.CAS) error {
		if c.Text() == "c" || c.Text() == "g" {
			return boom
		}
		return nil
	}}
	p, _ := New(fail)
	var dead []DeadLetter
	consumed := 0
	stats, err := p.RunWithConfig(context.Background(), &SliceReader{CASes: docs},
		ConsumerFunc(func(*cas.CAS) error { consumed++; return nil }),
		RunConfig{DeadLetter: func(d DeadLetter) error { dead = append(dead, d); return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Read != 10 || stats.Processed != 8 || stats.DeadLettered != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Processed+stats.DeadLettered != stats.Read {
		t.Fatalf("stats do not reconcile: %+v", stats)
	}
	if consumed != 8 {
		t.Fatalf("consumed = %d", consumed)
	}
	if len(dead) != 2 || dead[0].Index != 2 || dead[1].Index != 6 {
		t.Fatalf("dead letters = %+v", dead)
	}
	for _, d := range dead {
		if d.Engine != "f" || !errors.Is(d.Err, boom) || d.CAS == nil {
			t.Fatalf("dead letter missing attribution: %+v", d)
		}
	}
}

func TestRunWithConfigConsumerFailureDeadLetters(t *testing.T) {
	bad := errors.New("sink full")
	p, _ := New(appendEngine("a", "A"))
	var dead []DeadLetter
	stats, err := p.RunWithConfig(
		context.Background(),
		&SliceReader{CASes: []*cas.CAS{cas.New("1"), cas.New("2")}},
		ConsumerFunc(func(c *cas.CAS) error {
			if c.Text() == "1" {
				return bad
			}
			return nil
		}),
		RunConfig{DeadLetter: func(d DeadLetter) error { dead = append(dead, d); return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processed != 1 || stats.DeadLettered != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(dead) != 1 || dead[0].Engine != "(consumer)" || !errors.Is(dead[0].Err, bad) {
		t.Fatalf("dead = %+v", dead)
	}
}

func TestCircuitBreakerTripsOnConsecutiveFailures(t *testing.T) {
	boom := errors.New("down")
	var docs []*cas.CAS
	for i := 0; i < 20; i++ {
		docs = append(docs, cas.New("d"))
	}
	alwaysFail := EngineFunc{EngineName: "f", Fn: func(*cas.CAS) error { return boom }}
	p, _ := New(alwaysFail)
	dead := 0
	stats, err := p.RunWithConfig(context.Background(), &SliceReader{CASes: docs}, nil,
		RunConfig{
			DeadLetter:  func(DeadLetter) error { dead++; return nil },
			ErrorBudget: 5,
		})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if dead != 5 || stats.DeadLettered != 5 || stats.Read != 5 {
		t.Fatalf("dead=%d stats=%+v", dead, stats)
	}
}

// Regression: the tripped-breaker error used to format the last document
// failure with %v, severing its chain — errors.As could no longer
// extract the *DocumentError for attribution (found by qatklint/errattr).
func TestCircuitBreakerErrorKeepsDocumentChain(t *testing.T) {
	boom := errors.New("down")
	var docs []*cas.CAS
	for i := 0; i < 5; i++ {
		docs = append(docs, cas.New("d"))
	}
	alwaysFail := EngineFunc{EngineName: "f", Fn: func(*cas.CAS) error { return boom }}
	p, _ := New(alwaysFail)
	_, err := p.RunWithConfig(context.Background(), &SliceReader{CASes: docs}, nil,
		RunConfig{
			DeadLetter:  func(DeadLetter) error { return nil },
			ErrorBudget: 3,
		})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	var de *DocumentError
	if !errors.As(err, &de) {
		t.Fatalf("errors.As found no *DocumentError in %v", err)
	}
	if de.Index != 2 {
		t.Errorf("DocumentError.Index = %d, want 2 (the tripping document)", de.Index)
	}
	if !errors.Is(err, boom) {
		t.Errorf("errors.Is lost the root engine error in %v", err)
	}
}

func TestCircuitBreakerResetsOnSuccess(t *testing.T) {
	boom := errors.New("flaky")
	// Alternate fail/ok: consecutive failures never reach the budget.
	i := 0
	e := EngineFunc{EngineName: "f", Fn: func(*cas.CAS) error {
		i++
		if i%2 == 1 {
			return boom
		}
		return nil
	}}
	var docs []*cas.CAS
	for j := 0; j < 12; j++ {
		docs = append(docs, cas.New("d"))
	}
	p, _ := New(e)
	stats, err := p.RunWithConfig(context.Background(), &SliceReader{CASes: docs}, nil,
		RunConfig{DeadLetter: func(DeadLetter) error { return nil }, ErrorBudget: 2})
	if err != nil {
		t.Fatalf("breaker tripped on non-consecutive failures: %v (stats %+v)", err, stats)
	}
	if stats.Processed != 6 || stats.DeadLettered != 6 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRunWithConfigDeadLetterSinkErrorAborts(t *testing.T) {
	boom := errors.New("bad")
	sinkErr := errors.New("sink broken")
	p, _ := New(EngineFunc{EngineName: "f", Fn: func(*cas.CAS) error { return boom }})
	_, err := p.RunWithConfig(context.Background(), &SliceReader{CASes: []*cas.CAS{cas.New("1")}}, nil,
		RunConfig{DeadLetter: func(DeadLetter) error { return sinkErr }})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunWithConfigCountsRetries(t *testing.T) {
	boom := errors.New("transient")
	re := Retry(flaky("f", 2, boom), noSleepPolicy(Policy{MaxAttempts: 5}))
	p, _ := New(re)
	stats, err := p.RunWithConfig(context.Background(), &SliceReader{CASes: []*cas.CAS{cas.New("1")}}, nil, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retried != 2 {
		t.Fatalf("retried = %d, want 2", stats.Retried)
	}
}

// errReader fails after yielding one document.
type errReader struct{ n int }

func (r *errReader) Next() (*cas.CAS, error) {
	if r.n == 0 {
		r.n++
		return cas.New("ok"), nil
	}
	return nil, errors.New("source offline")
}

func TestReaderErrorsStayFatal(t *testing.T) {
	p, _ := New(appendEngine("a", "A"))
	stats, err := p.RunWithConfig(context.Background(), &errReader{}, nil,
		RunConfig{DeadLetter: func(DeadLetter) error { return nil }})
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want fatal reader error", err)
	}
	if stats.Processed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}
