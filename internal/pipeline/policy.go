package pipeline

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/cas"
)

// Per-engine retry with exponential backoff. Engines backed by flaky
// resources (remote annotators, storage) recover from transient failures
// without surfacing them to the collection run; deterministic failures and
// recovered panics fail fast by default.

// Policy configures retries for one engine. The zero value is usable:
// unset fields fall back to the defaults documented per field.
type Policy struct {
	// MaxAttempts is the total number of attempts per document, including
	// the first (default 3; 1 disables retries).
	MaxAttempts int
	// InitialBackoff is the delay before the first retry (default 10ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
	// Multiplier is the per-attempt backoff growth factor (default 2).
	Multiplier float64
	// Jitter randomizes each backoff within ±Jitter fraction of its value
	// to decorrelate retry storms (default 0.2; negative disables).
	Jitter float64
	// Retryable decides whether an error is worth another attempt. The
	// default retries everything except recovered panics (*PanicError),
	// which indicate a deterministic bug rather than a transient fault.
	Retryable func(error) bool
	// Sleep and Rand are test seams; nil means time.Sleep and the shared
	// math/rand source.
	Sleep func(time.Duration)
	Rand  func() float64
}

// DefaultRetryable is the default Policy predicate: retry any error except
// a recovered engine panic.
func DefaultRetryable(err error) bool {
	var pe *PanicError
	return !errors.As(err, &pe)
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.Multiplier <= 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Retryable == nil {
		p.Retryable = DefaultRetryable
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	return p
}

// Backoff returns the delay before retry number retry (1-based): exponential
// growth from InitialBackoff, capped at MaxBackoff, with symmetric jitter.
func (p Policy) Backoff(retry int) time.Duration {
	p = p.withDefaults()
	d := float64(p.InitialBackoff)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*p.Rand()-1)
	}
	if d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	return time.Duration(d)
}

// RetryEngine wraps an engine with a retry Policy. Panics in the inner
// engine are recovered into *PanicError before the policy sees them, so a
// panicking engine surfaces as an error, never as a crashed run.
type RetryEngine struct {
	inner   Engine
	policy  Policy
	retries atomic.Int64
}

// Retry wraps an engine with the given policy.
func Retry(inner Engine, p Policy) *RetryEngine {
	return &RetryEngine{inner: inner, policy: p.withDefaults()}
}

// Name implements Engine.
func (r *RetryEngine) Name() string { return r.inner.Name() }

// Retries reports how many retry attempts (beyond first tries) this engine
// has made across all documents. Safe for concurrent use.
func (r *RetryEngine) Retries() int { return int(r.retries.Load()) }

// Process attempts the inner engine up to MaxAttempts times, backing off
// between attempts, and returns the last error when the budget is spent or
// the error is not retryable.
func (r *RetryEngine) Process(c *cas.CAS) error {
	for attempt := 1; ; attempt++ {
		err := safeProcess(r.inner, c)
		if err == nil {
			return nil
		}
		if attempt >= r.policy.MaxAttempts || !r.policy.Retryable(err) {
			return err
		}
		r.retries.Add(1)
		r.policy.Sleep(r.policy.Backoff(attempt))
	}
}
