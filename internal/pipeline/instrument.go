package pipeline

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/obs"
)

// Engine instrumentation: UIMA ships per-annotator performance reports;
// the QATK feasibility discussion (§5.2.2) needs the same visibility to
// attribute per-bundle cost to pipeline steps. Timing rides on trace
// spans now — RunWithConfig opens one span per engine invocation under
// the name "engine:<name>", and the tracer's per-name aggregation yields
// the same count/total/per-document table the retired Timed wrapper
// produced, without wrapping engines.

// EngineSpanPrefix namespaces per-engine spans so reports can separate
// engine timings from run- and document-level spans sharing the tracer.
const EngineSpanPrefix = "engine:"

// EngineStats filters a tracer aggregation down to per-engine rows,
// stripping the span-name prefix. Order (descending total) is preserved.
func EngineStats(stats []obs.SpanStat) []obs.SpanStat {
	var out []obs.SpanStat
	for _, s := range stats {
		if name, ok := strings.CutPrefix(s.Name, EngineSpanPrefix); ok {
			s.Name = name
			out = append(out, s)
		}
	}
	return out
}

// PrintSpanReport writes a per-engine timing table, slowest first, from a
// tracer aggregation (tr.Stats()). Rows without the engine span prefix —
// run, document, fold spans — are skipped.
func PrintSpanReport(w io.Writer, stats []obs.SpanStat) {
	fmt.Fprintf(w, "%-28s %10s %10s %14s %8s\n", "engine", "documents", "total", "per document", "errors")
	for _, s := range EngineStats(stats) {
		fmt.Fprintf(w, "%-28s %10d %10s %14s %8d\n",
			s.Name, s.Count, s.Total.Round(time.Microsecond), s.Per(), s.Errors)
	}
}

// PrintRunStats appends the run-level fault-tolerance summary to a timing
// report: how many documents were read, how many survived, and where the
// rest went (§5.2.2 visibility into degraded processing).
func PrintRunStats(w io.Writer, s Stats) {
	fmt.Fprintf(w, "%-28s %10d\n", "documents read", s.Read)
	fmt.Fprintf(w, "%-28s %10d\n", "documents processed", s.Processed)
	fmt.Fprintf(w, "%-28s %10d\n", "engine retries", s.Retried)
	fmt.Fprintf(w, "%-28s %10d\n", "dead-lettered", s.DeadLettered)
}
