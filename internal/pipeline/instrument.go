package pipeline

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/cas"
)

// Engine instrumentation: UIMA ships per-annotator performance reports;
// the QATK feasibility discussion (§5.2.2) needs the same visibility to
// attribute per-bundle cost to pipeline steps.

// Timed wraps an engine and accumulates its wall-clock time and document
// count. Safe for concurrent use.
type Timed struct {
	inner Engine
	mu    sync.Mutex
	total time.Duration
	docs  int
}

// NewTimed wraps an engine with timing instrumentation.
func NewTimed(inner Engine) *Timed { return &Timed{inner: inner} }

// Name implements Engine.
func (t *Timed) Name() string { return t.inner.Name() }

// Process times the wrapped engine.
func (t *Timed) Process(c *cas.CAS) error {
	start := time.Now()
	err := t.inner.Process(c)
	d := time.Since(start)
	t.mu.Lock()
	t.total += d
	t.docs++
	t.mu.Unlock()
	return err
}

// Stats reports accumulated totals.
func (t *Timed) Stats() (docs int, total time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.docs, t.total
}

// Reset clears the accumulated totals.
func (t *Timed) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total, t.docs = 0, 0
}

// InstrumentAll wraps every engine with timing and returns both the
// instrumented engines (for pipeline.New) and the wrappers (for reports).
func InstrumentAll(engines ...Engine) ([]Engine, []*Timed) {
	out := make([]Engine, len(engines))
	timed := make([]*Timed, len(engines))
	for i, e := range engines {
		t := NewTimed(e)
		out[i] = t
		timed[i] = t
	}
	return out, timed
}

// PrintReport writes a per-engine timing table, slowest first.
func PrintReport(w io.Writer, timed []*Timed) {
	rows := append([]*Timed(nil), timed...)
	sort.SliceStable(rows, func(i, j int) bool {
		_, a := rows[i].Stats()
		_, b := rows[j].Stats()
		return a > b
	})
	fmt.Fprintf(w, "%-28s %10s %10s %14s\n", "engine", "documents", "total", "per document")
	for _, t := range rows {
		docs, total := t.Stats()
		per := time.Duration(0)
		if docs > 0 {
			per = total / time.Duration(docs)
		}
		fmt.Fprintf(w, "%-28s %10d %10s %14s\n", t.Name(), docs, total.Round(time.Microsecond), per)
	}
}

// PrintRunStats appends the run-level fault-tolerance summary to a timing
// report: how many documents were read, how many survived, and where the
// rest went (§5.2.2 visibility into degraded processing).
func PrintRunStats(w io.Writer, s Stats) {
	fmt.Fprintf(w, "%-28s %10d\n", "documents read", s.Read)
	fmt.Fprintf(w, "%-28s %10d\n", "documents processed", s.Processed)
	fmt.Fprintf(w, "%-28s %10d\n", "engine retries", s.Retried)
	fmt.Fprintf(w, "%-28s %10d\n", "dead-lettered", s.DeadLettered)
}
