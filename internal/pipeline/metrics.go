package pipeline

import "repro/internal/obs"

// Metric names the pipeline layer emits. Names follow the repository
// convention enforced by qatklint's metricname analyzer: snake_case,
// subsystem prefix, conventional unit suffix, declared as package-level
// constants.
const (
	// MetricDocumentsTotal counts documents pulled from the reader into a
	// collection run, whatever their fate.
	MetricDocumentsTotal = "qatk_pipeline_documents_total"
	// MetricDeadLettersTotal counts documents routed to the dead-letter
	// consumer instead of completing the run.
	MetricDeadLettersTotal = "qatk_pipeline_dead_letters_total"
	// MetricCircuitBreaksTotal counts runs aborted by the
	// consecutive-failure circuit breaker.
	MetricCircuitBreaksTotal = "qatk_pipeline_circuit_breaks_total"
	// MetricRetriesTotal counts retry attempts accumulated by
	// Retry-wrapped engines during collection runs.
	MetricRetriesTotal = "qatk_pipeline_retries_total"
)

// RegisterMetrics pre-registers every pipeline metric family on r so the
// families render (at zero) in a /metrics exposition before the first
// collection run — scrapers see the full inventory from process start.
func RegisterMetrics(r *obs.Registry) {
	r.Counter(MetricDocumentsTotal)
	r.Counter(MetricDeadLettersTotal)
	r.Counter(MetricCircuitBreaksTotal)
	r.Counter(MetricRetriesTotal)
}
