// Package pipeline composes analysis engines into the modular linguistic
// processing pipelines of the QATK (paper §4.4, Fig. 8). Engines receive a
// CAS, add annotations or metadata, and pass it on; collection processing
// streams CASes from a reader through the engines into a consumer. The
// classification step is an ordinary engine, realizing the extension point
// where different classification algorithms can be plugged in (§4.4).
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"repro/internal/cas"
	"repro/internal/obs"
	"repro/internal/obs/reqlog"
)

// Engine is one analysis step. Process may mutate the CAS.
type Engine interface {
	Name() string
	Process(c *cas.CAS) error
}

// EngineFunc adapts a function to the Engine interface.
type EngineFunc struct {
	EngineName string
	Fn         func(c *cas.CAS) error
}

// Name returns the engine name.
func (e EngineFunc) Name() string { return e.EngineName }

// Process invokes the wrapped function.
func (e EngineFunc) Process(c *cas.CAS) error { return e.Fn(c) }

// Pipeline runs a fixed sequence of engines.
type Pipeline struct {
	engines []Engine
	// spanNames holds the per-engine trace span names ("engine:<name>"),
	// precomputed so the processing hot path never concatenates strings.
	spanNames []string
	// stages maps each engine to its wide-event stage (-1 = untimed),
	// precomputed so the hot path does an index lookup, not a name match.
	stages []reqlog.Stage
}

// stageForEngine maps the engines that realize a serving-path stage onto
// the wide event's stage set: tokenization and concept annotation are the
// live annotate path of a request; everything else is untimed (-1).
func stageForEngine(name string) reqlog.Stage {
	switch name {
	case "tokenizer":
		return reqlog.StageTokenize
	case "concept-annotator":
		return reqlog.StageAnnotate
	}
	return -1
}

// New builds a pipeline from the given engines, in order.
func New(engines ...Engine) (*Pipeline, error) {
	if len(engines) == 0 {
		return nil, errors.New("pipeline: no engines")
	}
	seen := make(map[string]bool, len(engines))
	spanNames := make([]string, len(engines))
	stages := make([]reqlog.Stage, len(engines))
	for i, e := range engines {
		if e == nil {
			return nil, errors.New("pipeline: nil engine")
		}
		if e.Name() == "" {
			return nil, errors.New("pipeline: engine without name")
		}
		if seen[e.Name()] {
			return nil, fmt.Errorf("pipeline: duplicate engine name %q", e.Name())
		}
		seen[e.Name()] = true
		spanNames[i] = EngineSpanPrefix + e.Name()
		stages[i] = stageForEngine(e.Name())
	}
	return &Pipeline{engines: engines, spanNames: spanNames, stages: stages}, nil
}

// Engines returns the engine names in execution order.
func (p *Pipeline) Engines() []string {
	names := make([]string, len(p.engines))
	for i, e := range p.engines {
		names[i] = e.Name()
	}
	return names
}

// EngineError attributes a processing failure to the engine that raised it.
type EngineError struct {
	Engine string
	Err    error
}

// Error formats the failure with its engine name.
func (e *EngineError) Error() string {
	return fmt.Sprintf("pipeline: engine %q: %v", e.Engine, e.Err)
}

// Unwrap exposes the underlying engine error.
func (e *EngineError) Unwrap() error { return e.Err }

// PanicError is a recovered engine panic, surfaced as an ordinary error so
// one malformed document cannot take down a whole collection run.
type PanicError struct {
	Value any
	Stack []byte
}

// Error describes the recovered panic value.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// safeProcess runs one engine over one CAS, converting panics to errors.
func safeProcess(e Engine, c *cas.CAS) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return e.Process(c)
}

// Process runs all engines over one CAS. The first engine error aborts the
// document and is returned as an *EngineError naming the engine; a panicking
// engine is recovered and reported the same way (as an *EngineError wrapping
// a *PanicError).
func (p *Pipeline) Process(c *cas.CAS) error {
	return p.process(c, nil, nil, nil)
}

// ProcessTimed is Process with per-stage attribution: engines realizing a
// wide-event stage (tokenizer, concept annotator) credit their time to sc,
// so a serving path that annotates live shows those stages in its event.
// A nil clock is free.
func (p *Pipeline) ProcessTimed(sc *reqlog.StageClock, c *cas.CAS) error {
	return p.process(c, nil, nil, sc)
}

// process is Process with a trace seam: every engine runs under its own
// span (a child of parent) when tr is non-nil. A nil tracer makes every
// span call a no-op, keeping the disabled path allocation-free; likewise a
// nil stage clock costs one nil check per engine.
func (p *Pipeline) process(c *cas.CAS, tr *obs.Tracer, parent *obs.Span, sc *reqlog.StageClock) error {
	for i, e := range p.engines {
		span := tr.Start(parent, p.spanNames[i])
		var t0 time.Time
		timed := sc != nil && p.stages[i] >= 0
		if timed {
			t0 = sc.Start()
		}
		err := safeProcess(e, c)
		if timed {
			sc.Lap(p.stages[i], t0)
		}
		span.End(err)
		if err != nil {
			return &EngineError{Engine: e.Name(), Err: err}
		}
	}
	return nil
}

// Reader produces CASes for collection processing. Next returns io.EOF
// when the collection is exhausted.
type Reader interface {
	Next() (*cas.CAS, error)
}

// Consumer receives fully processed CASes.
type Consumer interface {
	Consume(c *cas.CAS) error
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(c *cas.CAS) error

// Consume invokes the function.
func (f ConsumerFunc) Consume(c *cas.CAS) error { return f(c) }

// Run streams every CAS from r through the pipeline into consumer,
// returning the number of documents processed. The first document failure
// aborts the run, wrapped as a *DocumentError carrying the document index
// (and reference number, when the reader set one); use RunWithConfig for
// fault-isolated collection processing.
func (p *Pipeline) Run(r Reader, consumer Consumer) (int, error) {
	stats, err := p.RunWithConfig(context.Background(), r, consumer, RunConfig{})
	return stats.Processed, err
}

// SliceReader yields a fixed slice of CASes; useful in tests and batch jobs.
type SliceReader struct {
	CASes []*cas.CAS
	pos   int
}

// Next returns the next CAS or io.EOF.
func (r *SliceReader) Next() (*cas.CAS, error) {
	if r.pos >= len(r.CASes) {
		return nil, io.EOF
	}
	c := r.CASes[r.pos]
	r.pos++
	return c, nil
}

// Reset rewinds the reader so the same slice can be streamed again.
func (r *SliceReader) Reset() { r.pos = 0 }
