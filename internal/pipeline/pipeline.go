// Package pipeline composes analysis engines into the modular linguistic
// processing pipelines of the QATK (paper §4.4, Fig. 8). Engines receive a
// CAS, add annotations or metadata, and pass it on; collection processing
// streams CASes from a reader through the engines into a consumer. The
// classification step is an ordinary engine, realizing the extension point
// where different classification algorithms can be plugged in (§4.4).
package pipeline

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/cas"
)

// Engine is one analysis step. Process may mutate the CAS.
type Engine interface {
	Name() string
	Process(c *cas.CAS) error
}

// EngineFunc adapts a function to the Engine interface.
type EngineFunc struct {
	EngineName string
	Fn         func(c *cas.CAS) error
}

// Name returns the engine name.
func (e EngineFunc) Name() string { return e.EngineName }

// Process invokes the wrapped function.
func (e EngineFunc) Process(c *cas.CAS) error { return e.Fn(c) }

// Pipeline runs a fixed sequence of engines.
type Pipeline struct {
	engines []Engine
}

// New builds a pipeline from the given engines, in order.
func New(engines ...Engine) (*Pipeline, error) {
	if len(engines) == 0 {
		return nil, errors.New("pipeline: no engines")
	}
	seen := make(map[string]bool, len(engines))
	for _, e := range engines {
		if e == nil {
			return nil, errors.New("pipeline: nil engine")
		}
		if e.Name() == "" {
			return nil, errors.New("pipeline: engine without name")
		}
		if seen[e.Name()] {
			return nil, fmt.Errorf("pipeline: duplicate engine name %q", e.Name())
		}
		seen[e.Name()] = true
	}
	return &Pipeline{engines: engines}, nil
}

// Engines returns the engine names in execution order.
func (p *Pipeline) Engines() []string {
	names := make([]string, len(p.engines))
	for i, e := range p.engines {
		names[i] = e.Name()
	}
	return names
}

// Process runs all engines over one CAS. The first engine error aborts the
// run and is returned wrapped with the engine name.
func (p *Pipeline) Process(c *cas.CAS) error {
	for _, e := range p.engines {
		if err := e.Process(c); err != nil {
			return fmt.Errorf("pipeline: engine %q: %w", e.Name(), err)
		}
	}
	return nil
}

// Reader produces CASes for collection processing. Next returns io.EOF
// when the collection is exhausted.
type Reader interface {
	Next() (*cas.CAS, error)
}

// Consumer receives fully processed CASes.
type Consumer interface {
	Consume(c *cas.CAS) error
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(c *cas.CAS) error

// Consume invokes the function.
func (f ConsumerFunc) Consume(c *cas.CAS) error { return f(c) }

// Run streams every CAS from r through the pipeline into consumer,
// returning the number of documents processed.
func (p *Pipeline) Run(r Reader, consumer Consumer) (int, error) {
	n := 0
	for {
		c, err := r.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("pipeline: reader: %w", err)
		}
		if err := p.Process(c); err != nil {
			return n, err
		}
		if consumer != nil {
			if err := consumer.Consume(c); err != nil {
				return n, fmt.Errorf("pipeline: consumer: %w", err)
			}
		}
		n++
	}
}

// SliceReader yields a fixed slice of CASes; useful in tests and batch jobs.
type SliceReader struct {
	CASes []*cas.CAS
	pos   int
}

// Next returns the next CAS or io.EOF.
func (r *SliceReader) Next() (*cas.CAS, error) {
	if r.pos >= len(r.CASes) {
		return nil, io.EOF
	}
	c := r.CASes[r.pos]
	r.pos++
	return c, nil
}
