package reldb

import (
	"errors"
	"fmt"
)

// Tx is a write transaction. Mutations are staged in order and applied
// atomically at Commit: either every staged operation succeeds, or the
// database is left unchanged (already-applied operations are undone).
//
// Reads inside a transaction see the committed state only (read
// committed); the engine has a single writer, so a transaction never races
// with another writer between Begin and Commit within one goroutine's use.
type Tx struct {
	db   *DB
	ops  []txOp
	done bool
}

type txKind uint8

const (
	txInsert txKind = iota + 1
	txUpdate
	txDelete
)

type txOp struct {
	kind  txKind
	table string
	id    int64
	row   Row
}

// Begin starts a new transaction.
func (db *DB) Begin() *Tx { return &Tx{db: db} }

// Insert stages an insert. The row id is assigned at Commit.
func (tx *Tx) Insert(table string, row Row) {
	tx.ops = append(tx.ops, txOp{kind: txInsert, table: table, row: row.Clone()})
}

// Update stages an update of the row with the given id.
func (tx *Tx) Update(table string, id int64, row Row) {
	tx.ops = append(tx.ops, txOp{kind: txUpdate, table: table, id: id, row: row.Clone()})
}

// Delete stages a delete of the row with the given id.
func (tx *Tx) Delete(table string, id int64) {
	tx.ops = append(tx.ops, txOp{kind: txDelete, table: table, id: id})
}

// Rollback discards all staged operations. Safe to call after Commit.
func (tx *Tx) Rollback() {
	tx.ops = nil
	tx.done = true
}

// undo records how to reverse one applied operation.
type undo struct {
	kind  txKind
	table string
	id    int64
	old   Row // previous row for update/delete
}

// Commit applies all staged operations atomically and appends them to the
// WAL as one frame, so recovery replays the transaction all-or-nothing
// even if the frame is torn by a crash. On error nothing is persisted and
// memory state is restored.
func (tx *Tx) Commit() error {
	if tx.done {
		return errors.New("reldb: transaction already finished")
	}
	tx.done = true
	db := tx.db
	return db.commit(tx.applyLocked)
}

// applyLocked applies the staged operations and logs them as one batch.
// Caller holds db.mu via DB.commit.
func (tx *Tx) applyLocked() error {
	db := tx.db
	var undos []undo
	var recs []walRecord
	fail := func(err error) error {
		// Reverse in LIFO order.
		for i := len(undos) - 1; i >= 0; i-- {
			u := undos[i]
			switch u.kind {
			case txInsert:
				_ = db.deleteLocked(u.table, u.id)
			case txUpdate:
				_ = db.updateLocked(u.table, u.id, u.old)
			case txDelete:
				t := db.tables[u.table]
				for _, ix := range t.indexes {
					_ = ix.insert(u.old, u.id)
				}
				t.rows[u.id] = u.old
			}
		}
		return err
	}

	for _, op := range tx.ops {
		switch op.kind {
		case txInsert:
			id, err := db.insertLocked(op.table, op.row)
			if err != nil {
				return fail(err)
			}
			undos = append(undos, undo{kind: txInsert, table: op.table, id: id})
			recs = append(recs, walRecord{Op: opInsert, Table: op.table, RowID: id, Row: db.tables[op.table].rows[id]})
		case txUpdate:
			t, ok := db.tables[op.table]
			if !ok {
				return fail(fmt.Errorf("reldb: no such table %q", op.table))
			}
			old, ok := t.rows[op.id]
			if !ok {
				return fail(fmt.Errorf("reldb: table %q has no row %d", op.table, op.id))
			}
			oldCopy := old.Clone()
			if err := db.updateLocked(op.table, op.id, op.row); err != nil {
				return fail(err)
			}
			undos = append(undos, undo{kind: txUpdate, table: op.table, id: op.id, old: oldCopy})
			recs = append(recs, walRecord{Op: opUpdate, Table: op.table, RowID: op.id, Row: t.rows[op.id]})
		case txDelete:
			t, ok := db.tables[op.table]
			if !ok {
				return fail(fmt.Errorf("reldb: no such table %q", op.table))
			}
			old, ok := t.rows[op.id]
			if !ok {
				return fail(fmt.Errorf("reldb: table %q has no row %d", op.table, op.id))
			}
			oldCopy := old.Clone()
			if err := db.deleteLocked(op.table, op.id); err != nil {
				return fail(err)
			}
			undos = append(undos, undo{kind: txDelete, table: op.table, id: op.id, old: oldCopy})
			recs = append(recs, walRecord{Op: opDelete, Table: op.table, RowID: op.id})
		}
	}
	if err := db.logRecords(recs...); err != nil {
		return fail(err)
	}
	return nil
}
