package crashharness

import (
	"repro/internal/reldb"
)

// DefaultWorkload is the canonical enumeration workload: it exercises
// every WAL record kind (create table, insert, update, delete, index
// create), multi-operation transactions (one WAL frame), and mid-history
// checkpoints (snapshot rename + WAL reset), so the cut points cover
// every distinct durability transition the storage layer has.
func DefaultWorkload() []Step {
	schema := reldb.Schema{
		Name: "parts",
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.TInt},
			{Name: "name", Type: reldb.TString, NotNull: true},
			{Name: "weight", Type: reldb.TFloat},
		},
		PrimaryKey: "id",
	}
	insert := func(name string, weight float64) Step {
		return Step{
			Name: "insert " + name,
			Apply: func(db *reldb.DB) error {
				_, err := db.Insert("parts", reldb.Row{nil, name, weight})
				return err
			},
		}
	}
	return []Step{
		{Name: "create table", Apply: func(db *reldb.DB) error {
			return db.CreateTable(schema)
		}},
		insert("fender", 4.2),
		insert("radio", 1.1),
		insert("lamp", 0.4),
		{Name: "tx insert+update+delete", Apply: func(db *reldb.DB) error {
			tx := db.Begin()
			tx.Insert("parts", reldb.Row{nil, "mirror", 0.7})
			tx.Update("parts", 2, reldb.Row{int64(2), "radio mk2", 1.2})
			tx.Delete("parts", 3)
			return tx.Commit()
		}},
		{Name: "create index", Apply: func(db *reldb.DB) error {
			return db.CreateIndex("parts", "ix_name", false, "name")
		}},
		insert("bumper", 6.0),
		{Name: "checkpoint", Apply: func(db *reldb.DB) error {
			return db.Checkpoint()
		}},
		{Name: "update post-checkpoint", Apply: func(db *reldb.DB) error {
			return db.Update("parts", 1, reldb.Row{int64(1), "fender mk2", 4.5})
		}},
		{Name: "delete post-checkpoint", Apply: func(db *reldb.DB) error {
			return db.Delete("parts", 4)
		}},
		{Name: "tx two inserts", Apply: func(db *reldb.DB) error {
			tx := db.Begin()
			tx.Insert("parts", reldb.Row{nil, "seal", 0.1})
			tx.Insert("parts", reldb.Row{nil, "hinge", 0.3})
			return tx.Commit()
		}},
		{Name: "second checkpoint", Apply: func(db *reldb.DB) error {
			return db.Checkpoint()
		}},
		insert("strut", 2.2),
	}
}

// Smoke runs the default workload under every retention mode with the
// given seed and sync policy; it is the entry point for randomized
// smoke testing.
func Smoke(seed int64, sync reldb.SyncPolicy) (Result, error) {
	return Run(DefaultWorkload(), Config{
		Seed: seed,
		Opts: reldb.Options{Sync: sync},
	})
}
