package crashharness

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/reldb"
	"repro/internal/vfs"
)

// TestPowerCutEnumerationSyncAlways is the acceptance test for the
// durability contract: every mutating filesystem operation of the
// default workload is taken as a power-cut point, under every retention
// mode, and recovery must always be a prefix of the committed history
// that includes every acknowledged commit.
func TestPowerCutEnumerationSyncAlways(t *testing.T) {
	res, err := Run(DefaultWorkload(), Config{
		Seed: 1,
		Opts: reldb.Options{Sync: reldb.SyncAlways},
		Log:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < len(DefaultWorkload()) {
		t.Fatalf("suspiciously few cut points: %d", res.Ops)
	}
	t.Logf("enumerated %d cut points, %d cases", res.Ops, res.Cuts)
}

// TestPowerCutEnumerationSyncNever checks the weaker contract of
// SyncNever: recovery must still be prefix-consistent (no partial
// transaction or double-apply), it just has no durability floor.
func TestPowerCutEnumerationSyncNever(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := Run(DefaultWorkload(), Config{
		Seed: 2,
		Opts: reldb.Options{Sync: reldb.SyncNever},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPowerCutSmokeRandomSeed re-runs the enumeration with a randomized
// seed when CRASH_RANDOM_SEED is set (the Makefile crash target), so CI
// gradually explores different retention draws.
func TestPowerCutSmokeRandomSeed(t *testing.T) {
	v := os.Getenv("CRASH_RANDOM_SEED")
	if v == "" {
		t.Skip("CRASH_RANDOM_SEED not set")
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil || seed == 0 {
		seed = rand.Int63() //lint:ignore determinism randomized smoke is explicitly opt-in via CRASH_RANDOM_SEED
	}
	t.Logf("seed = %d", seed)
	if _, err := Smoke(seed, reldb.SyncAlways); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
}

// TestHarnessDetectsDurabilityViolation sanity-checks the harness itself
// (a checker that can never fail proves nothing): running the workload
// with SyncNever while still enforcing the SyncAlways durability floor
// must report a violation at some cut point, because unsynced commits are
// acknowledged but do not survive.
func TestHarnessDetectsDurabilityViolation(t *testing.T) {
	workload := DefaultWorkload()
	cfg := Config{Seed: 3, Opts: reldb.Options{Sync: reldb.SyncNever}}
	digests, ops, err := record(workload, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut <= ops; cut++ {
		if err := runCut(workload, cfg, digests, cut, vfs.RetainNone, true); err != nil {
			t.Logf("harness correctly reported at cut %d: %v", cut, err)
			return
		}
	}
	t.Fatal("harness accepted unsynced commits as durable")
}
