// Package crashharness proves reldb's crash-consistency contract by
// exhaustive power-cut enumeration: it runs a scripted workload once on a
// fault-free simulated disk to count the filesystem operations it
// performs, then replays the workload once per operation index with the
// power dying exactly there, reboots, re-opens the database, and checks
// the recovered state against the trail of per-commit state digests.
//
// The invariant checked is prefix consistency with a durability floor:
// after any cut, the recovered state must equal the state after some
// prefix of the committed steps (no partial transaction, no reordering,
// no double-apply — a double-applied record produces a state that matches
// no prefix digest), and under SyncAlways that prefix must include every
// step that had already returned success before the power died.
package crashharness

import (
	"errors"
	"fmt"

	"repro/internal/reldb"
	"repro/internal/vfs"
)

// Step is one unit of committed work in a workload. Apply must be
// deterministic: the enumeration replays the workload once per cut point
// and the state after step k must be identical in every run.
type Step struct {
	Name  string
	Apply func(db *reldb.DB) error
}

// Config tunes a harness run.
type Config struct {
	// Seed drives the FaultFS retention draws.
	Seed int64
	// Opts configures the database under test; Opts.FS is overwritten by
	// the harness with its own FaultFS.
	Opts reldb.Options
	// Retain lists the crash-retention modes exercised at every cut
	// point. Empty means all three.
	Retain []vfs.RetainMode
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// Result summarizes an enumeration.
type Result struct {
	// Ops is the number of mutating filesystem operations the fault-free
	// run performed; the harness tested a power cut at every index 1..Ops.
	Ops int
	// Cuts is the number of (cut point, retention mode) cases exercised.
	Cuts int
}

const dbDir = "data/db"

// Run executes the full enumeration and returns an error describing the
// first violated invariant.
func Run(workload []Step, cfg Config) (Result, error) {
	if len(workload) == 0 {
		return Result{}, errors.New("crashharness: empty workload")
	}
	retain := cfg.Retain
	if len(retain) == 0 {
		retain = []vfs.RetainMode{vfs.RetainNone, vfs.RetainPrefix, vfs.RetainAll}
	}

	// Recording run on a fault-free disk: capture the digest after every
	// step and the total operation count.
	digests, ops, err := record(workload, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("crashharness: recording run: %w", err)
	}
	if ops == 0 {
		return Result{}, errors.New("crashharness: workload performed no filesystem operations")
	}
	res := Result{Ops: ops}
	floor := cfg.Opts.Sync == reldb.SyncAlways
	for cut := 1; cut <= ops; cut++ {
		for _, mode := range retain {
			res.Cuts++
			if err := runCut(workload, cfg, digests, cut, mode, floor); err != nil {
				return res, fmt.Errorf("crashharness: cut=%d retain=%d: %w", cut, mode, err)
			}
		}
		if cfg.Log != nil && cut%50 == 0 {
			cfg.Log("crashharness: %d/%d cut points done", cut, ops)
		}
	}
	return res, nil
}

// record runs the workload without faults and returns the digest after
// Open and after each step, plus the total mutating-op count (including
// Close, whose checkpoint is part of the enumerated surface).
func record(workload []Step, cfg Config) ([]string, int, error) {
	fsys := vfs.NewFaultFS(vfs.FaultConfig{Seed: cfg.Seed})
	opts := cfg.Opts
	opts.FS = fsys
	db, err := reldb.OpenWith(dbDir, opts)
	if err != nil {
		return nil, 0, err
	}
	digests := make([]string, 0, len(workload)+1)
	d, err := db.StateDigest()
	if err != nil {
		return nil, 0, err
	}
	digests = append(digests, d)
	for _, s := range workload {
		if err := s.Apply(db); err != nil {
			return nil, 0, fmt.Errorf("step %q: %w", s.Name, err)
		}
		if d, err = db.StateDigest(); err != nil {
			return nil, 0, err
		}
		digests = append(digests, d)
	}
	if err := db.Close(); err != nil {
		return nil, 0, err
	}
	return digests, fsys.OpCount(), nil
}

// runCut replays the workload with the power dying at mutating operation
// index cut, reboots with the given retention, and verifies recovery.
// With floor set, every step acknowledged before the cut must survive
// (the SyncAlways durability contract).
func runCut(workload []Step, cfg Config, digests []string, cut int, mode vfs.RetainMode, floor bool) error {
	fsys := vfs.NewFaultFS(vfs.FaultConfig{Seed: cfg.Seed, CrashAt: cut})
	opts := cfg.Opts
	opts.FS = fsys

	// committed counts the steps that returned success before the cut:
	// the durability floor under SyncAlways.
	committed := 0

	db, err := reldb.OpenWith(dbDir, opts)
	if err == nil {
		for _, s := range workload {
			stepErr := s.Apply(db)
			if stepErr == nil {
				committed++
				continue
			}
			if !expectedCrashErr(stepErr) {
				return fmt.Errorf("step %q failed for a non-crash reason: %w", s.Name, stepErr)
			}
			break
		}
		// The cut may only trip during Close's checkpoint; either way the
		// handle is dead or closed now.
		if closeErr := db.Close(); closeErr != nil && !expectedCrashErr(closeErr) {
			return fmt.Errorf("close failed for a non-crash reason: %w", closeErr)
		}
	} else if !expectedCrashErr(err) {
		return fmt.Errorf("open failed for a non-crash reason: %w", err)
	}

	// Reboot into the surviving image and recover.
	fsys.Crash(mode)
	re, err := reldb.OpenWith(dbDir, reldb.Options{FS: fsys, Sync: opts.Sync, SyncEvery: opts.SyncEvery})
	if err != nil {
		return fmt.Errorf("recovery open failed: %w", err)
	}
	defer re.Close()
	got, err := re.StateDigest()
	if err != nil {
		return fmt.Errorf("digest of recovered state: %w", err)
	}

	// The recovered state must be exactly some prefix of the committed
	// history... (scan from the end: steps that leave the logical state
	// unchanged, like a checkpoint, duplicate digests, and the floor
	// check below needs the highest matching prefix length)
	k := -1
	for i := len(digests) - 1; i >= 0; i-- {
		if digests[i] == got {
			k = i
			break
		}
	}
	if k < 0 {
		return errors.New("recovered state matches no prefix of the committed history (partial transaction, reorder, or double-apply)")
	}
	// ...and under SyncAlways the prefix must cover every step that was
	// acknowledged before the power died.
	if floor && k < committed {
		return fmt.Errorf("durability violation: %d steps acknowledged, only %d recovered", committed, k)
	}
	return nil
}

// expectedCrashErr reports whether err is attributable to the simulated
// power cut (directly, or via the latch a mid-commit cut leaves behind).
func expectedCrashErr(err error) bool {
	return errors.Is(err, vfs.ErrPowerCut) || errors.Is(err, reldb.ErrFailed)
}
