package reldb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func reopen(t *testing.T, db *DB, dir string) *DB {
	t.Helper()
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return db2
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("parts", "ix_name", false, "name"); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"fender", "radio", "lamp"} {
		if _, err := db.Insert("parts", Row{nil, n, 1.5, true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Update("parts", 2, Row{int64(2), "radio mk2", 1.6, true}); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("parts", 3); err != nil {
		t.Fatal(err)
	}

	db = reopen(t, db, dir)
	defer db.Close()

	n, _ := db.Count("parts")
	if n != 2 {
		t.Fatalf("rows after reopen = %d, want 2", n)
	}
	row, ok := db.Get("parts", 2)
	if !ok || row[1].(string) != "radio mk2" {
		t.Fatalf("update lost: %v ok=%v", row, ok)
	}
	// Index is rebuilt on recovery.
	res, err := db.Select(Query{Table: "parts", Where: []Cond{Eq("name", "fender")}})
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("index after reopen: rows=%v err=%v", res, err)
	}
	// Auto id continues after recovery.
	id, err := db.Insert("parts", Row{nil, "new", 1.0, true})
	if err != nil {
		t.Fatal(err)
	}
	if id <= 3 {
		t.Fatalf("auto id after reopen = %d, want > 3", id)
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Insert("parts", Row{nil, "p", 1.0, true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("wal size after checkpoint = %d, want 0", fi.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFileName)); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}

	db = reopen(t, db, dir)
	defer db.Close()
	n, _ := db.Count("parts")
	if n != 50 {
		t.Fatalf("rows after checkpoint+reopen = %d, want 50", n)
	}
}

func TestTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("parts", Row{nil, "good", 1.0, true}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Close checkpoints, so the durable state is in the snapshot. Corrupt
	// the WAL with a torn record: recovery must ignore it.
	walPath := filepath.Join(dir, walFileName)
	if err := os.WriteFile(walPath, []byte{9, 0, 0, 0, 1, 2, 3, 4, 0xAA}, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer db2.Close()
	n, _ := db2.Count("parts")
	if n != 1 {
		t.Fatalf("rows = %d, want 1", n)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	sc := partsSchema()
	recs := []walRecord{
		{Op: opCreateTable, Schema: &sc},
		{Op: opCreateIndex, Table: "parts", Index: "ix", Unique: true, Cols: []string{"name", "weight"}},
		{Op: opInsert, Table: "parts", RowID: 7, Row: Row{int64(7), "x", 1.25, true}},
		{Op: opInsert, Table: "parts", RowID: 8, Row: Row{int64(8), "y", nil, false}},
		{Op: opUpdate, Table: "parts", RowID: 7, Row: Row{int64(7), "z", -2.5, false}},
		{Op: opDelete, Table: "parts", RowID: 8},
		{Op: opInsert, Table: "blobs", RowID: 1, Row: Row{[]byte{0, 1, 255}, "s", 0.0, true}},
	}
	for i, r := range recs {
		got, err := decodeRecord(bytes.NewReader(encodeRecord(r)))
		if err != nil {
			t.Fatalf("rec %d: decode: %v", i, err)
		}
		if got.Op != r.Op || got.Table != r.Table || got.Index != r.Index ||
			got.Unique != r.Unique || got.RowID != r.RowID {
			t.Fatalf("rec %d: header mismatch: %+v vs %+v", i, got, r)
		}
		if len(got.Cols) != len(r.Cols) {
			t.Fatalf("rec %d: cols mismatch", i)
		}
		if (got.Row == nil) != (r.Row == nil) || len(got.Row) != len(r.Row) {
			t.Fatalf("rec %d: row mismatch: %v vs %v", i, got.Row, r.Row)
		}
		for j := range r.Row {
			if b, ok := r.Row[j].([]byte); ok {
				gb := got.Row[j].([]byte)
				if string(gb) != string(b) {
					t.Fatalf("rec %d cell %d: %v vs %v", i, j, gb, b)
				}
				continue
			}
			if got.Row[j] != r.Row[j] {
				t.Fatalf("rec %d cell %d: %v vs %v", i, j, got.Row[j], r.Row[j])
			}
		}
		if (got.Schema == nil) != (r.Schema == nil) {
			t.Fatalf("rec %d: schema mismatch", i)
		}
		if r.Schema != nil && got.Schema.String() != r.Schema.String() {
			t.Fatalf("rec %d: schema %q vs %q", i, got.Schema, r.Schema)
		}
	}
}

func TestInMemoryCloseNoop(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close in-memory: %v", err)
	}
}
