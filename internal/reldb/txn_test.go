package reldb

import "testing"

func TestTxnCommitAppliesAll(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	tx.Insert("parts", Row{nil, "a", 1.0, true})
	tx.Insert("parts", Row{nil, "b", 2.0, true})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	n, _ := db.Count("parts")
	if n != 2 {
		t.Fatalf("rows = %d, want 2", n)
	}
}

func TestTxnAtomicRollbackOnFailure(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("parts", "ux_name", true, "name"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("parts", Row{nil, "exists", 0.0, true}); err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	tx.Insert("parts", Row{nil, "new1", 1.0, true})
	tx.Insert("parts", Row{nil, "exists", 2.0, true}) // violates unique index
	tx.Insert("parts", Row{nil, "new2", 3.0, true})
	if err := tx.Commit(); err == nil {
		t.Fatal("commit with unique violation succeeded")
	}
	n, _ := db.Count("parts")
	if n != 1 {
		t.Fatalf("rows after failed commit = %d, want 1", n)
	}
	res, _ := db.Select(Query{Table: "parts", Where: []Cond{Eq("name", "new1")}})
	if len(res.Rows) != 0 {
		t.Fatal("partial transaction state leaked")
	}
}

func TestTxnUpdateDeleteUndo(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	id1, _ := db.Insert("parts", Row{nil, "a", 1.0, true})
	id2, _ := db.Insert("parts", Row{nil, "b", 2.0, true})

	tx := db.Begin()
	tx.Update("parts", id1, Row{id1, "a2", 1.5, false})
	tx.Delete("parts", id2)
	tx.Update("parts", 999, Row{int64(999), "x", 0.0, true}) // fails: no such row
	if err := tx.Commit(); err == nil {
		t.Fatal("commit with bad update succeeded")
	}
	// Both earlier ops must be undone.
	r1, _ := db.Get("parts", id1)
	if r1[1].(string) != "a" {
		t.Fatalf("update not undone: %v", r1)
	}
	if _, ok := db.Get("parts", id2); !ok {
		t.Fatal("delete not undone")
	}
}

func TestTxnRollbackDiscards(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	tx.Insert("parts", Row{nil, "a", 1.0, true})
	tx.Rollback()
	if err := tx.Commit(); err == nil {
		t.Fatal("commit after rollback accepted")
	}
	n, _ := db.Count("parts")
	if n != 0 {
		t.Fatalf("rows = %d, want 0", n)
	}
}

func TestTxnDoubleCommit(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	tx.Insert("parts", Row{nil, "a", 1.0, true})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("second commit accepted")
	}
}

func TestTxnDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < 10; i++ {
		tx.Insert("parts", Row{nil, "p", float64(i), true})
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db = reopen(t, db, dir)
	defer db.Close()
	n, _ := db.Count("parts")
	if n != 10 {
		t.Fatalf("rows after reopen = %d, want 10", n)
	}
}
