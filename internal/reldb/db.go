package reldb

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/vfs"
)

// table holds the rows and indexes of one relation.
type table struct {
	schema  Schema
	rows    map[int64]Row
	nextID  int64
	indexes map[string]*index
	pkCol   int // position of the primary key column, -1 if none
}

func newTable(schema Schema) *table {
	t := &table{
		schema:  schema,
		rows:    make(map[int64]Row),
		nextID:  1,
		indexes: make(map[string]*index),
		pkCol:   -1,
	}
	if schema.PrimaryKey != "" {
		t.pkCol = schema.ColIndex(schema.PrimaryKey)
		t.indexes[pkIndexName(schema.Name)] = newIndex(pkIndexName(schema.Name), []int{t.pkCol}, true)
	}
	return t
}

func pkIndexName(table string) string { return "pk_" + table }

// ErrFailed is wrapped into every write rejected because the database has
// latched a prior fsync failure. Once an fsync fails the kernel may have
// dropped the dirty pages, so "retry the sync" would silently report old
// data as durable; the only honest move is to refuse further writes until
// the process re-opens the database and recovers from what is actually on
// disk.
var ErrFailed = errors.New("reldb: database failed")

// DefaultSyncEvery is the group-commit fsync interval used by
// SyncInterval when Options.SyncEvery is zero.
const DefaultSyncEvery = 2 * time.Millisecond

// Options configures durability for OpenWith.
type Options struct {
	// FS is the filesystem the database performs all I/O through.
	// Nil means the real filesystem.
	FS vfs.FS
	// Sync selects when the WAL is fsynced. The zero value is
	// SyncAlways: every commit is durable before the call returns.
	Sync SyncPolicy
	// SyncEvery is the group-commit interval under SyncInterval
	// (DefaultSyncEvery if zero). Ignored by the other policies.
	SyncEvery time.Duration
}

// DB is an embedded relational database. All exported methods are safe for
// concurrent use; writes are serialized by a single writer lock.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
	wal    *wal // nil for purely in-memory databases
	dir    string
	fs     vfs.FS
	opts   Options

	gen       uint64 // current snapshot generation
	staleWAL  bool   // recovery found a WAL predating the snapshot
	failed    error  //qatk:guardedby mu — latched fatal I/O error; non-nil refuses writes
	committer *committer

	// Observability, attached after Open via Instrument (all nil-safe).
	logger         *obs.Logger
	walRecords     *obs.Counter
	checkpoints    *obs.Counter
	fsyncSeconds   *obs.Histogram
	fsyncFailures  *obs.Counter
	walSyncedBytes *obs.Counter
	replayed       int // records replayed during recovery at Open

	// Flight recorder wiring (attached via WithFlight). flightMu is a
	// leaf below db.mu: latchLocked only records the pending trigger
	// under it, and fireLatchTrigger — called by the exported paths
	// AFTER releasing db.mu — performs the actual capture, because the
	// bundle's FlightInfo provider needs db.mu.RLock itself.
	flightMu     sync.Mutex
	flightRec    *flight.Recorder
	pendingLatch error //qatk:guardedby flightMu
}

// Open opens (or creates) a database in dir with default durability
// (SyncAlways on the real filesystem). If dir is empty the database is
// in-memory only and Close is a no-op for durability purposes.
func Open(dir string) (*DB, error) { return OpenWith(dir, Options{}) }

// OpenWith opens (or creates) a database in dir with explicit durability
// options. Recovery replays the newest snapshot plus the WAL frames of
// the matching generation, discards any torn or stale WAL tail, and
// removes a snapshot temp file left behind by a crash mid-checkpoint.
func OpenWith(dir string, opts Options) (*DB, error) {
	if opts.FS == nil {
		opts.FS = vfs.OS()
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	db := &DB{tables: make(map[string]*table), fs: opts.FS, opts: opts}
	if dir == "" {
		return db, nil
	}
	db.dir = dir
	if err := db.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("reldb: create dir: %w", err)
	}
	// A crash while checkpointLocked was still writing the temp snapshot
	// leaves it behind; it holds no committed state (the rename never
	// happened) and would otherwise sit there forever.
	tmp := filepath.Join(dir, snapshotTmpFileName)
	switch err := db.fs.Remove(tmp); {
	case err == nil:
		if err := db.fs.SyncDir(dir); err != nil {
			return nil, fmt.Errorf("reldb: sync dir after tmp cleanup: %w", err)
		}
	case !errors.Is(err, iofs.ErrNotExist):
		return nil, fmt.Errorf("reldb: remove stale snapshot tmp: %w", err)
	}
	w, err := openWAL(db.fs, dir)
	if err != nil {
		return nil, err
	}
	db.wal = w
	walValid, err := db.recover()
	if err != nil {
		w.close()
		return nil, err
	}
	size, err := w.size()
	if err != nil {
		w.close()
		return nil, fmt.Errorf("reldb: stat wal: %w", err)
	}
	if size > walValid {
		// Torn frame at the tail, or an entire stale-generation log:
		// cut it before new frames can follow garbage.
		if err := w.truncateTo(walValid); err != nil {
			w.close()
			return nil, fmt.Errorf("reldb: truncate wal tail: %w", err)
		}
	}
	if walValid == 0 {
		w.armHeader(db.gen)
	}
	if opts.Sync == SyncInterval {
		db.committer = newCommitter(db, opts.SyncEvery)
	}
	return db, nil
}

// commit runs apply (the in-memory mutation plus its WAL append) under
// the writer lock, then enforces the sync policy: under SyncAlways the
// append was already fsynced inside apply via logRecords; under
// SyncInterval the call blocks, outside the lock, until a group fsync
// covers the append.
func (db *DB) commit(apply func() error) error {
	db.mu.Lock()
	if err := db.writableLocked(); err != nil {
		db.mu.Unlock()
		return err
	}
	err := apply()
	wait := err == nil && db.committer != nil && db.wal != nil
	var gen uint64
	if wait {
		gen = db.committer.noteAppend()
	}
	db.mu.Unlock()
	db.fireLatchTrigger()
	if err != nil {
		return err
	}
	if wait {
		return db.committer.wait(gen)
	}
	return nil
}

// writableLocked reports the latched failure, if any. Caller holds db.mu.
func (db *DB) writableLocked() error {
	if db.failed != nil {
		return fmt.Errorf("%w: %w", ErrFailed, db.failed)
	}
	return nil
}

// latchLocked records a fatal I/O error. All subsequent writes fail with
// ErrFailed; reads keep working on the in-memory state. Caller holds
// db.mu.
func (db *DB) latchLocked(err error) {
	if db.failed != nil {
		return
	}
	db.failed = err
	db.logger.Error("database latched, refusing further writes",
		obs.L("dir", db.dir), obs.L("error", err.Error()))
	// Defer the flight trigger: capture needs db.mu.RLock (FlightInfo),
	// which this caller holds exclusively. The exported entry points fire
	// it once they have released db.mu.
	db.flightMu.Lock()
	db.pendingLatch = err
	db.flightMu.Unlock()
}

// fireLatchTrigger captures the diagnostic bundle for a latch recorded by
// latchLocked. Must be called WITHOUT db.mu held. Idempotent: the pending
// error is consumed by the first call.
func (db *DB) fireLatchTrigger() {
	db.flightMu.Lock()
	err, fr := db.pendingLatch, db.flightRec
	db.pendingLatch = nil
	db.flightMu.Unlock()
	if err == nil || fr == nil {
		return
	}
	fr.Trigger(flight.ReasonFsyncLatch,
		obs.L("dir", db.dir), obs.L("err", err.Error()))
}

// syncWALLocked fsyncs the WAL, recording latency, synced bytes, and —
// on failure — the latch. Caller holds db.mu.
func (db *DB) syncWALLocked() error {
	pending := db.wal.unsynced
	start := time.Now()
	err := db.wal.sync()
	db.fsyncSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		db.fsyncFailures.Inc()
		db.latchLocked(err)
		return fmt.Errorf("reldb: wal fsync: %w", err)
	}
	db.wal.unsynced = 0
	db.walSyncedBytes.Add(uint64(pending))
	return nil
}

// Close checkpoints (if durable and healthy) and releases the database.
// A latched database skips the checkpoint — its WAL may be missing
// records the kernel dropped — and reports the latched error.
func (db *DB) Close() error {
	if db.committer != nil {
		db.committer.stop()
	}
	db.mu.Lock()
	err := db.closeLocked()
	db.mu.Unlock()
	db.fireLatchTrigger()
	return err
}

// closeLocked is Close under db.mu.
func (db *DB) closeLocked() error {
	if db.wal == nil {
		return nil
	}
	if db.failed != nil {
		db.wal.close()
		return db.writableLocked()
	}
	if err := db.checkpointLocked(); err != nil {
		db.wal.close()
		return err
	}
	return db.wal.close()
}

// Checkpoint writes a snapshot of the full database state and truncates the
// write-ahead log.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	var err error
	if db.wal != nil {
		err = db.checkpointLocked()
	}
	db.mu.Unlock()
	db.fireLatchTrigger()
	return err
}

// Tables returns the names of all tables, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Schema returns a copy of the named table's schema.
func (db *DB) Schema(tableName string) (Schema, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return Schema{}, fmt.Errorf("reldb: no such table %q", tableName)
	}
	s := t.schema
	s.Columns = append([]Column(nil), t.schema.Columns...)
	return s, nil
}

// CreateTable creates a table from the schema. If the schema declares a
// primary key a unique index on it is created implicitly.
func (db *DB) CreateTable(schema Schema) error {
	if err := schema.validate(); err != nil {
		return err
	}
	return db.commit(func() error {
		if _, ok := db.tables[schema.Name]; ok {
			return fmt.Errorf("reldb: table %q already exists", schema.Name)
		}
		db.tables[schema.Name] = newTable(schema)
		return db.logRecords(walRecord{Op: opCreateTable, Schema: &schema})
	})
}

// CreateIndex builds a secondary index named name on the given columns of
// tableName, indexing all existing rows.
func (db *DB) CreateIndex(tableName, name string, unique bool, cols ...string) error {
	return db.commit(func() error {
		return db.createIndexLocked(tableName, name, unique, cols, true)
	})
}

func (db *DB) createIndexLocked(tableName, name string, unique bool, cols []string, logIt bool) error {
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("reldb: no such table %q", tableName)
	}
	if len(cols) == 0 {
		return fmt.Errorf("reldb: index %q has no columns", name)
	}
	if _, ok := t.indexes[name]; ok {
		return fmt.Errorf("reldb: index %q already exists on table %q", name, tableName)
	}
	positions := make([]int, len(cols))
	for i, c := range cols {
		p := t.schema.ColIndex(c)
		if p < 0 {
			return fmt.Errorf("reldb: table %q has no column %q", tableName, c)
		}
		positions[i] = p
	}
	ix := newIndex(name, positions, unique)
	for id, row := range t.rows {
		if err := ix.insert(row, id); err != nil {
			return err
		}
	}
	t.indexes[name] = ix
	if logIt {
		return db.logRecords(walRecord{
			Op: opCreateIndex, Table: tableName, Index: name,
			Unique: unique, Cols: cols,
		})
	}
	return nil
}

// Insert adds a row and returns its row id. If the table has an INT primary
// key and the corresponding cell is nil, the key is auto-assigned and
// written back into the stored row.
func (db *DB) Insert(tableName string, row Row) (int64, error) {
	var id int64
	err := db.commit(func() error {
		var err error
		id, err = db.insertLocked(tableName, row)
		if err != nil {
			return err
		}
		t := db.tables[tableName]
		return db.logRecords(walRecord{Op: opInsert, Table: tableName, RowID: id, Row: t.rows[id]})
	})
	if err != nil {
		return 0, err
	}
	return id, nil
}

func (db *DB) insertLocked(tableName string, row Row) (int64, error) {
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("reldb: no such table %q", tableName)
	}
	canon, err := t.schema.checkRow(row)
	if err != nil {
		return 0, err
	}
	id := t.nextID
	if t.pkCol >= 0 {
		pc := t.schema.Columns[t.pkCol]
		if canon[t.pkCol] == nil {
			if pc.Type != TInt {
				return 0, fmt.Errorf("reldb: table %q: primary key %q is NULL and not auto-assignable", tableName, pc.Name)
			}
			canon[t.pkCol] = id
		} else if pc.Type == TInt {
			// Keep row ids aligned with explicit INT primary keys.
			id = canon[t.pkCol].(int64)
			if _, exists := t.rows[id]; exists {
				return 0, fmt.Errorf("reldb: table %q: duplicate primary key %d", tableName, id)
			}
		}
	}
	for _, ix := range t.indexes {
		if err := ix.insert(canon, id); err != nil {
			// Roll back partial index insertions (remove is idempotent).
			db.removeFromIndexes(t, canon, id)
			return 0, err
		}
	}
	t.rows[id] = canon
	if id >= t.nextID {
		t.nextID = id + 1
	}
	return id, nil
}

// removeFromIndexes best-effort removes (row,id) from every index; used for
// rollback of partially applied index insertions.
func (db *DB) removeFromIndexes(t *table, row Row, id int64) {
	for _, ix := range t.indexes {
		ix.remove(row, id)
	}
}

// Get returns a copy of the row with the given row id.
func (db *DB) Get(tableName string, id int64) (Row, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, false
	}
	row, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return row.Clone(), true
}

// Update replaces the row with the given id.
func (db *DB) Update(tableName string, id int64, row Row) error {
	return db.commit(func() error {
		if err := db.updateLocked(tableName, id, row); err != nil {
			return err
		}
		t := db.tables[tableName]
		return db.logRecords(walRecord{Op: opUpdate, Table: tableName, RowID: id, Row: t.rows[id]})
	})
}

func (db *DB) updateLocked(tableName string, id int64, row Row) error {
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("reldb: no such table %q", tableName)
	}
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("reldb: table %q has no row %d", tableName, id)
	}
	canon, err := t.schema.checkRow(row)
	if err != nil {
		return err
	}
	if t.pkCol >= 0 && compareSameType(canon[t.pkCol], old[t.pkCol]) != 0 {
		return fmt.Errorf("reldb: table %q: primary key of row %d cannot change", tableName, id)
	}
	for _, ix := range t.indexes {
		ix.remove(old, id)
	}
	for _, ix := range t.indexes {
		if err := ix.insert(canon, id); err != nil {
			// Restore the previous index state (remove is idempotent).
			db.removeFromIndexes(t, canon, id)
			for _, rx := range t.indexes {
				_ = rx.insert(old, id)
			}
			return err
		}
	}
	t.rows[id] = canon
	return nil
}

// compareSameType compares two cells that may be nil or of equal type.
func compareSameType(a, b Value) int {
	if a == nil || b == nil {
		if a == nil && b == nil {
			return 0
		}
		return 1
	}
	return compareValues(a, b)
}

// Delete removes the row with the given id.
func (db *DB) Delete(tableName string, id int64) error {
	return db.commit(func() error {
		if err := db.deleteLocked(tableName, id); err != nil {
			return err
		}
		return db.logRecords(walRecord{Op: opDelete, Table: tableName, RowID: id})
	})
}

func (db *DB) deleteLocked(tableName string, id int64) error {
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("reldb: no such table %q", tableName)
	}
	row, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("reldb: table %q has no row %d", tableName, id)
	}
	for _, ix := range t.indexes {
		ix.remove(row, id)
	}
	delete(t.rows, id)
	return nil
}

// Count returns the number of rows in a table.
func (db *DB) Count(tableName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("reldb: no such table %q", tableName)
	}
	return len(t.rows), nil
}

// Scan visits every row of a table in unspecified order. Returning false
// from fn stops the scan. The row passed to fn must not be mutated.
func (db *DB) Scan(tableName string, fn func(id int64, row Row) bool) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("reldb: no such table %q", tableName)
	}
	for id, row := range t.rows {
		if !fn(id, row) {
			return nil
		}
	}
	return nil
}
