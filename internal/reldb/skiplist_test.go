package reldb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSkipListInsertGetDelete(t *testing.T) {
	sl := newSkipList()
	if !sl.insert([]byte("b"), 2) || !sl.insert([]byte("a"), 1) || !sl.insert([]byte("c"), 3) {
		t.Fatal("insert failed")
	}
	if sl.insert([]byte("a"), 9) {
		t.Fatal("duplicate insert accepted")
	}
	if v, ok := sl.get([]byte("b")); !ok || v != 2 {
		t.Fatalf("get b = %d,%v", v, ok)
	}
	if !sl.delete([]byte("b")) {
		t.Fatal("delete failed")
	}
	if _, ok := sl.get([]byte("b")); ok {
		t.Fatal("deleted key still present")
	}
	if sl.delete([]byte("b")) {
		t.Fatal("double delete reported success")
	}
	if sl.size != 2 {
		t.Fatalf("size = %d, want 2", sl.size)
	}
}

func TestSkipListOrderedIteration(t *testing.T) {
	sl := newSkipList()
	rng := rand.New(rand.NewSource(1))
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%06d", rng.Intn(1000000))
		sl.insert([]byte(keys[i]), int64(i))
	}
	var got []string
	for n := sl.first(); n != nil; n = n.next[0] {
		got = append(got, string(n.key))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("iteration not in key order")
	}
}

func TestSkipListSeek(t *testing.T) {
	sl := newSkipList()
	for _, k := range []string{"apple", "banana", "cherry"} {
		sl.insert([]byte(k), 1)
	}
	n := sl.seek([]byte("b"))
	if n == nil || string(n.key) != "banana" {
		t.Fatalf("seek(b) = %v", n)
	}
	n = sl.seek([]byte("cherry"))
	if n == nil || string(n.key) != "cherry" {
		t.Fatalf("seek(cherry) = %v", n)
	}
	if sl.seek([]byte("zzz")) != nil {
		t.Fatal("seek past end returned a node")
	}
}

// TestSkipListMatchesSortedMap is a model-based property test: a skip list
// under random inserts/deletes must behave exactly like a sorted map.
func TestSkipListMatchesSortedMap(t *testing.T) {
	f := func(ops []uint16) bool {
		sl := newSkipList()
		model := map[string]int64{}
		for i, op := range ops {
			key := fmt.Sprintf("%03d", op%512)
			if op%3 == 0 {
				delete(model, key)
				sl.delete([]byte(key))
			} else {
				if _, exists := model[key]; !exists {
					model[key] = int64(i)
					sl.insert([]byte(key), int64(i))
				}
			}
		}
		if sl.size != len(model) {
			return false
		}
		want := make([]string, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		i := 0
		for n := sl.first(); n != nil; n = n.next[0] {
			if i >= len(want) || string(n.key) != want[i] || n.val != model[want[i]] {
				return false
			}
			i++
		}
		return i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
