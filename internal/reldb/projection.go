package reldb

import "fmt"

// projection resolves a projection column list against a schema. A nil or
// empty list selects all columns (proj returned as nil).
func projection(s *Schema, cols []string) (outCols []string, proj []int, err error) {
	if len(cols) == 0 {
		outCols = make([]string, len(s.Columns))
		for i, c := range s.Columns {
			outCols[i] = c.Name
		}
		return outCols, nil, nil
	}
	proj = make([]int, len(cols))
	for i, name := range cols {
		p := s.ColIndex(name)
		if p < 0 {
			return nil, nil, fmt.Errorf("reldb: table %q has no column %q", s.Name, name)
		}
		proj[i] = p
	}
	return append([]string(nil), cols...), proj, nil
}
