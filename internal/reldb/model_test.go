package reldb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestQueryMatchesNaiveModel is a model-based property test: a database
// under a random workload of inserts, updates and deletes must answer
// every query exactly like a naive slice-of-rows model, regardless of
// which indexes exist and which access path the planner picks.
func TestQueryMatchesNaiveModel(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runModelWorkload(t, seed)
		})
	}
}

type modelRow struct {
	id  int64
	row Row
}

func runModelWorkload(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	db := mustOpenMem(t)
	schema := Schema{
		Name: "m",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "part", Type: TString, NotNull: true},
			{Name: "feature", Type: TString, NotNull: true},
			{Name: "score", Type: TFloat},
		},
		PrimaryKey: "id",
	}
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	// Random subset of secondary indexes: the answers must not depend on them.
	if rng.Intn(2) == 0 {
		if err := db.CreateIndex("m", "ix_part", false, "part"); err != nil {
			t.Fatal(err)
		}
	}
	if rng.Intn(2) == 0 {
		if err := db.CreateIndex("m", "ix_pf", false, "part", "feature"); err != nil {
			t.Fatal(err)
		}
	}

	var model []modelRow
	parts := []string{"P1", "P2", "P3"}
	features := []string{"fa", "fb", "fc", "fd"}

	for op := 0; op < 400; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // insert
			row := Row{nil, parts[rng.Intn(len(parts))], features[rng.Intn(len(features))], float64(rng.Intn(100))}
			id, err := db.Insert("m", row)
			if err != nil {
				t.Fatal(err)
			}
			stored := row.Clone()
			stored[0] = id
			model = append(model, modelRow{id: id, row: stored})
		case 6, 7: // update a random row
			if len(model) == 0 {
				continue
			}
			i := rng.Intn(len(model))
			updated := model[i].row.Clone()
			updated[2] = features[rng.Intn(len(features))]
			updated[3] = float64(rng.Intn(100))
			if err := db.Update("m", model[i].id, updated); err != nil {
				t.Fatal(err)
			}
			model[i].row = updated
		case 8: // delete a random row
			if len(model) == 0 {
				continue
			}
			i := rng.Intn(len(model))
			if err := db.Delete("m", model[i].id); err != nil {
				t.Fatal(err)
			}
			model = append(model[:i], model[i+1:]...)
		case 9: // query and compare against the model
			q := randomQuery(rng, parts, features)
			checkQuery(t, db, model, q)
		}
	}
	// Final full comparison.
	checkQuery(t, db, model, Query{Table: "m"})
	for _, p := range parts {
		checkQuery(t, db, model, Query{Table: "m", Where: []Cond{Eq("part", p)}, OrderBy: "score"})
	}
}

func randomQuery(rng *rand.Rand, parts, features []string) Query {
	q := Query{Table: "m"}
	if rng.Intn(2) == 0 {
		q.Where = append(q.Where, Eq("part", parts[rng.Intn(len(parts))]))
	}
	if rng.Intn(2) == 0 {
		q.Where = append(q.Where, Eq("feature", features[rng.Intn(len(features))]))
	}
	if rng.Intn(3) == 0 {
		q.Where = append(q.Where, Cond{Col: "score", Op: OpGe, Val: float64(rng.Intn(100))})
	}
	if rng.Intn(2) == 0 {
		q.OrderBy = "score"
		q.Desc = rng.Intn(2) == 0
	}
	return q
}

// checkQuery compares db.Select against a naive scan of the model.
func checkQuery(t *testing.T, db *DB, model []modelRow, q Query) {
	t.Helper()
	res, err := db.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	// Naive evaluation.
	var want []Row
	for _, m := range model {
		ok := true
		for _, c := range q.Where {
			var pos int
			switch c.Col {
			case "id":
				pos = 0
			case "part":
				pos = 1
			case "feature":
				pos = 2
			case "score":
				pos = 3
			}
			cell := m.row[pos]
			if cell == nil || c.Val == nil {
				ok = false
				break
			}
			cmp := compareValues(cell, mustCoerce(t, c.Val, pos))
			switch c.Op {
			case OpEq:
				ok = cmp == 0
			case OpGe:
				ok = cmp >= 0
			case OpGt:
				ok = cmp > 0
			case OpLe:
				ok = cmp <= 0
			case OpLt:
				ok = cmp < 0
			case OpNe:
				ok = cmp != 0
			}
			if !ok {
				break
			}
		}
		if ok {
			want = append(want, m.row)
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("query %+v: got %d rows, want %d", q, len(res.Rows), len(want))
	}
	// Compare as multisets keyed by the id column; verify ordering when
	// ORDER BY was requested.
	gotIDs := rowIDs(res.Rows)
	wantIDs := rowIDs(want)
	sort.Slice(wantIDs, func(i, j int) bool { return wantIDs[i] < wantIDs[j] })
	sortedGot := append([]int64(nil), gotIDs...)
	sort.Slice(sortedGot, func(i, j int) bool { return sortedGot[i] < sortedGot[j] })
	for i := range wantIDs {
		if sortedGot[i] != wantIDs[i] {
			t.Fatalf("query %+v: row sets differ: got %v want %v", q, sortedGot, wantIDs)
		}
	}
	if q.OrderBy == "score" {
		prev := res.Rows
		for i := 1; i < len(prev); i++ {
			c := compareValues(prev[i-1][3], prev[i][3])
			if q.Desc && c < 0 || !q.Desc && c > 0 {
				t.Fatalf("query %+v: ORDER BY violated at row %d", q, i)
			}
		}
	}
}

func rowIDs(rows []Row) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[0].(int64)
	}
	return out
}

func mustCoerce(t *testing.T, v Value, pos int) Value {
	t.Helper()
	types := []ColType{TInt, TString, TString, TFloat}
	out, err := coerce(types[pos], v)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
