// Package reldb implements the embedded relational database used by the
// QATK analytics toolkit for raw report data, knowledge bases and
// classification results (paper §4.5.1).
//
// The engine is deliberately small but complete: typed schemas, primary
// keys, hash and ordered secondary indexes, predicate scans with index
// selection, ORDER BY/LIMIT, single-writer transactions, write-ahead
// logging with snapshot checkpoints, and a minimal SQL subset. It stores
// knowledge-base instances "on disk with on-the-fly access", which is how
// the paper addresses the memory weakness of instance-based kNN (§2.2).
package reldb

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ColType identifies the declared type of a column.
type ColType uint8

// Column types supported by the engine.
const (
	TInt ColType = iota + 1
	TFloat
	TString
	TBool
	TBytes
)

// String returns the SQL name of the type.
func (t ColType) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "TEXT"
	case TBool:
		return "BOOL"
	case TBytes:
		return "BLOB"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// ParseColType converts a SQL type name to a ColType.
func ParseColType(s string) (ColType, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT":
		return TInt, nil
	case "FLOAT", "REAL", "DOUBLE":
		return TFloat, nil
	case "TEXT", "STRING", "VARCHAR":
		return TString, nil
	case "BOOL", "BOOLEAN":
		return TBool, nil
	case "BLOB", "BYTES":
		return TBytes, nil
	default:
		return 0, fmt.Errorf("reldb: unknown column type %q", s)
	}
}

// Value is a dynamically typed cell value. The concrete type must be one of
// int64, float64, string, bool, []byte, or nil.
type Value = any

// Row is one tuple. Cells are positionally aligned with the table schema.
type Row []Value

// Clone returns a deep copy of the row ([]byte cells are copied).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for i, v := range r {
		if b, ok := v.([]byte); ok {
			cp := make([]byte, len(b))
			copy(cp, b)
			out[i] = cp
			continue
		}
		out[i] = v
	}
	return out
}

// typeOf reports the ColType of a concrete value, or 0 for nil.
func typeOf(v Value) (ColType, error) {
	switch v.(type) {
	case nil:
		return 0, nil
	case int64:
		return TInt, nil
	case float64:
		return TFloat, nil
	case string:
		return TString, nil
	case bool:
		return TBool, nil
	case []byte:
		return TBytes, nil
	default:
		return 0, fmt.Errorf("reldb: unsupported value type %T", v)
	}
}

// coerce converts compatible Go values to the canonical cell representation
// for the given column type. int/int32 become int64, float32 becomes
// float64; everything else must already match.
func coerce(t ColType, v Value) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case TInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case int32:
			return int64(x), nil
		case uint32:
			return int64(x), nil
		}
	case TFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case float32:
			return float64(x), nil
		case int64:
			return float64(x), nil
		case int:
			return float64(x), nil
		}
	case TString:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case TBool:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	case TBytes:
		if x, ok := v.([]byte); ok {
			return x, nil
		}
	}
	return nil, fmt.Errorf("reldb: value %v (%T) not assignable to column type %s", v, v, t)
}

// compareValues orders two cell values of the same column type.
// nil sorts before every non-nil value.
func compareValues(a, b Value) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	switch x := a.(type) {
	case int64:
		y := b.(int64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case float64:
		y := b.(float64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case string:
		return strings.Compare(x, b.(string))
	case bool:
		y := b.(bool)
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
		return 0
	case []byte:
		return compareBytes(x, b.([]byte))
	}
	panic(fmt.Sprintf("reldb: compareValues on unsupported type %T", a))
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// encodeKey appends an order-preserving binary encoding of v to dst.
// The encoding is used for index keys: for any two values a, b of the same
// type, bytes.Compare(encodeKey(nil,a), encodeKey(nil,b)) has the same sign
// as compareValues(a, b). Each encoded value is prefixed with a type tag so
// nil (tag 0) sorts first.
func encodeKey(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, 0)
	case int64:
		dst = append(dst, 1)
		var buf [8]byte
		// Flip the sign bit so negative numbers sort before positive.
		binary.BigEndian.PutUint64(buf[:], uint64(x)^(1<<63))
		return append(dst, buf[:]...)
	case float64:
		dst = append(dst, 2)
		if x == 0 {
			x = 0 // normalize -0.0 so it encodes identically to +0.0
		}
		bits := math.Float64bits(x)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: invert all bits
		} else {
			bits |= 1 << 63 // non-negative: set sign bit
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		return append(dst, buf[:]...)
	case bool:
		dst = append(dst, 3)
		if x {
			return append(dst, 1)
		}
		return append(dst, 0)
	case string:
		dst = append(dst, 4)
		return appendEscaped(dst, []byte(x))
	case []byte:
		dst = append(dst, 5)
		return appendEscaped(dst, x)
	}
	panic(fmt.Sprintf("reldb: encodeKey on unsupported type %T", v))
}

// appendEscaped writes b with 0x00 escaped as 0x00 0xFF and a 0x00 0x01
// terminator, preserving lexicographic order across variable lengths.
func appendEscaped(dst, b []byte) []byte {
	for _, c := range b {
		if c == 0 {
			dst = append(dst, 0, 0xFF)
			continue
		}
		dst = append(dst, c)
	}
	return append(dst, 0, 1)
}

// FormatValue renders a cell as a SQL-ish literal, for diagnostics.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return "'" + strings.ReplaceAll(x, "'", "''") + "'"
	case bool:
		if x {
			return "TRUE"
		}
		return "FALSE"
	case []byte:
		return fmt.Sprintf("X'%x'", x)
	}
	return fmt.Sprintf("%v", v)
}
