package reldb

// Replication surface (ROADMAP item 2, second half): the pieces a log-
// shipping layer needs to ship this database's generation-stamped,
// CRC-framed WAL to read replicas without reaching into wal internals.
// A primary exports a point-in-time state (ExportState) plus the WAL
// position it corresponds to; a WALReader then streams every frame
// appended after that position, tolerating the torn final frame a
// concurrent writer leaves mid-append; a replica folds shipped frames
// into its own instance with ApplyFrame, which validates the whole frame
// before mutating so a truncated or corrupted frame can never apply
// partially. Divergence is therefore always detectable (CRC or decode
// failure) and the replication layer answers it with a snapshot re-sync,
// never a silent fork.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	iofs "io/fs"
	"path/filepath"

	"repro/internal/vfs"
)

// Replication errors. ErrTornFrame is retryable: the writer is mid-append
// and the frame will complete (or be truncated away) shortly.
// ErrCorruptFrame is terminal for the cursor position: the bytes at this
// offset will never parse, so the reader must re-sync from a snapshot.
var (
	// ErrNoWAL reports a replication call on an in-memory database, which
	// has no log to ship.
	ErrNoWAL = errors.New("reldb: in-memory database has no WAL to replicate")
	// ErrTornFrame reports a frame that has started but is not fully on
	// disk yet — retry after the writer makes progress.
	ErrTornFrame = errors.New("reldb: torn frame at wal tail")
	// ErrCorruptFrame reports a frame that is complete on disk but fails
	// its CRC or decode, or carries an implausible length.
	ErrCorruptFrame = errors.New("reldb: corrupt wal frame")
)

// ReplFrame is one CRC-framed WAL batch as shipped to replicas: the raw
// frame bytes (8-byte length+CRC header plus payload) and the byte range
// it occupies in the log. Header marks the opGen frame at the head of the
// log; Gen carries its generation.
type ReplFrame struct {
	Raw    []byte
	Start  int64
	End    int64
	Header bool
	Gen    uint64
}

// WALReader is a read-only cursor over the WAL file, safe to run beside a
// live writer: reads go through the same vfs.FS seam as the writer, and a
// frame is returned only once it is fully within the file's current size.
// The torn-tail tolerance crash recovery applies once at Open is thus
// available continuously, while the writer is mid-append.
type WALReader struct {
	fs     vfs.FS
	path   string
	f      vfs.File
	offset int64
}

// OpenWALReader builds a reader over the WAL in dir. The file is opened
// lazily on the first read, so a reader over a not-yet-created log simply
// reports io.EOF until the writer arrives.
func OpenWALReader(fsys vfs.FS, dir string) *WALReader {
	if fsys == nil {
		fsys = vfs.OS()
	}
	return &WALReader{fs: fsys, path: filepath.Join(dir, walFileName)}
}

// Offset reports the cursor position (the Start of the next frame).
func (r *WALReader) Offset() int64 { return r.offset }

// SeekTo moves the cursor to a frame boundary previously returned as a
// ReplFrame End (or 0 for the head of the log).
func (r *WALReader) SeekTo(offset int64) { r.offset = offset }

// Close releases the underlying file handle, if one is open.
func (r *WALReader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// dropHandle closes and forgets the handle after an I/O error so the next
// call reopens cleanly (the file may have been replaced under us).
func (r *WALReader) dropHandle() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// Next returns the frame starting at the cursor and advances past it.
// io.EOF means no frame starts here (clean end of log); ErrTornFrame
// means a frame has started but its bytes are not all on disk yet (the
// writer is mid-append — retry); ErrCorruptFrame means the bytes at this
// offset will never parse (CRC failure on a complete frame, implausible
// length, or the log shrank below the cursor) and the caller must
// re-sync. The size check makes the torn/corrupt distinction sound: the
// writer appends strictly in order, so a frame fully inside the current
// size has every byte visible.
func (r *WALReader) Next() (ReplFrame, error) {
	fi, err := r.fs.Stat(r.path)
	if errors.Is(err, iofs.ErrNotExist) {
		return ReplFrame{}, io.EOF
	}
	if err != nil {
		return ReplFrame{}, err
	}
	size := fi.Size()
	if size < r.offset {
		// The log was truncated below the cursor: a checkpoint reset it.
		return ReplFrame{}, fmt.Errorf("%w: log shrank to %d below offset %d", ErrCorruptFrame, size, r.offset)
	}
	if size == r.offset {
		return ReplFrame{}, io.EOF
	}
	if size-r.offset < 8 {
		return ReplFrame{}, ErrTornFrame
	}
	if r.f == nil {
		f, err := vfs.Open(r.fs, r.path)
		if err != nil {
			if errors.Is(err, iofs.ErrNotExist) {
				return ReplFrame{}, io.EOF
			}
			return ReplFrame{}, err
		}
		r.f = f
	}
	if _, err := r.f.Seek(r.offset, io.SeekStart); err != nil {
		r.dropHandle()
		return ReplFrame{}, err
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r.f, hdr[:]); err != nil {
		r.dropHandle()
		return ReplFrame{}, ErrTornFrame
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n > 1<<30 {
		return ReplFrame{}, fmt.Errorf("%w: implausible frame length %d at offset %d", ErrCorruptFrame, n, r.offset)
	}
	end := r.offset + 8 + int64(n)
	if end > size {
		return ReplFrame{}, ErrTornFrame
	}
	raw := make([]byte, 8+int(n))
	copy(raw, hdr[:])
	if _, err := io.ReadFull(r.f, raw[8:]); err != nil {
		r.dropHandle()
		return ReplFrame{}, ErrTornFrame
	}
	if crc32.ChecksumIEEE(raw[8:]) != want {
		return ReplFrame{}, fmt.Errorf("%w: crc mismatch at offset %d", ErrCorruptFrame, r.offset)
	}
	fr := ReplFrame{Raw: raw, Start: r.offset, End: end}
	if r.offset == 0 {
		// Only the head of the log may carry the generation frame.
		if rec, err := decodeRecord(bytes.NewReader(raw[8:])); err == nil && rec.Op == opGen {
			fr.Header = true
			fr.Gen = uint64(rec.RowID)
		}
	}
	r.offset = end
	return fr, nil
}

// StateExport is a point-in-time copy of the full logical state plus the
// WAL position it corresponds to: a replica that applies Frames and then
// tails the log from (Gen, WALOffset) holds exactly the primary's state.
type StateExport struct {
	Gen       uint64
	WALOffset int64
	// Frames holds the state as CRC-framed record batches, each ready for
	// ApplyFrame on a fresh instance.
	Frames [][]byte
}

// exportFrameSize bounds the payload of one exported state frame; each
// frame applies atomically on the replica, so the bound also caps the
// replica's per-commit batch during bootstrap.
const exportFrameSize = 64 << 10

// frameBytes wraps one payload in the WAL frame format (length + CRC
// header), producing bytes ApplyFrame and crash recovery both accept.
func frameBytes(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// ExportState snapshots the database for replica bootstrap: the current
// generation, the WAL offset a tailer must resume from, and the full
// logical state as framed record batches. The offset is exact — appends
// flush to the file under the writer lock this method shares, so the
// file size at read time is precisely the committed log length.
func (db *DB) ExportState() (*StateExport, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return nil, ErrNoWAL
	}
	off, err := db.wal.size()
	if err != nil {
		return nil, fmt.Errorf("reldb: stat wal for export: %w", err)
	}
	ex := &StateExport{Gen: db.gen, WALOffset: off}
	var payload bytes.Buffer
	flush := func() {
		if payload.Len() == 0 {
			return
		}
		ex.Frames = append(ex.Frames, frameBytes(payload.Bytes()))
		payload.Reset()
	}
	err = db.writeStateLocked(func(r walRecord) error {
		payload.Write(encodeRecord(r))
		if payload.Len() >= exportFrameSize {
			flush()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	flush()
	return ex, nil
}

// ApplyFrame applies one replicated frame (raw WAL frame bytes, as
// produced by ExportState or read by a WALReader) as a single atomic
// commit. The frame is CRC-checked and fully decoded before any mutation,
// so a truncated or corrupted frame returns ErrCorruptFrame and leaves
// the database untouched. A mid-batch apply failure (possible only when
// the frame disagrees with the replica's state — i.e. the replica has
// already diverged) returns an error; callers must treat it as
// divergence and re-sync from a snapshot.
func (db *DB) ApplyFrame(raw []byte) error {
	if len(raw) < 8 {
		return fmt.Errorf("%w: short frame (%d bytes)", ErrCorruptFrame, len(raw))
	}
	n := binary.LittleEndian.Uint32(raw[0:4])
	if int64(n) != int64(len(raw)-8) {
		return fmt.Errorf("%w: frame length %d does not match %d payload bytes", ErrCorruptFrame, n, len(raw)-8)
	}
	if crc32.ChecksumIEEE(raw[8:]) != binary.LittleEndian.Uint32(raw[4:8]) {
		return fmt.Errorf("%w: crc mismatch", ErrCorruptFrame)
	}
	var recs []walRecord
	br := bytes.NewReader(raw[8:])
	for br.Len() > 0 {
		rec, err := decodeRecord(br)
		if err != nil {
			return fmt.Errorf("%w: %w", ErrCorruptFrame, err)
		}
		if rec.Op == opGen {
			return fmt.Errorf("%w: generation record in replicated frame", ErrCorruptFrame)
		}
		recs = append(recs, rec)
	}
	return db.commit(func() error {
		for _, rec := range recs {
			if err := db.applyRecord(rec); err != nil {
				return fmt.Errorf("reldb: apply replicated record: %w", err)
			}
		}
		return db.logRecords(recs...)
	})
}

// Generation reports the current snapshot generation.
func (db *DB) Generation() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.gen
}

// Dir reports the database directory ("" for in-memory databases).
func (db *DB) Dir() string { return db.dir }

// FS reports the filesystem the database performs its I/O through.
func (db *DB) FS() vfs.FS { return db.fs }

// ResetDir removes the database files in dir so a replica can bootstrap
// from scratch into it. Missing files are fine; dir itself is kept.
func ResetDir(fsys vfs.FS, dir string) error {
	if fsys == nil {
		fsys = vfs.OS()
	}
	for _, name := range []string{walFileName, snapshotFileName, snapshotTmpFileName} {
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, iofs.ErrNotExist) {
			return fmt.Errorf("reldb: reset %s: %w", name, err)
		}
	}
	return nil
}
