package reldb

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/vfs"
)

func TestParseSyncPolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

// openFault opens a database on a fresh FaultFS with no faults armed.
func openFault(t *testing.T, opts Options) (*vfs.FaultFS, *DB) {
	t.Helper()
	fsys := vfs.NewFaultFS(vfs.FaultConfig{Seed: 42})
	opts.FS = fsys
	db, err := OpenWith("data/db", opts)
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	return fsys, db
}

func TestFsyncFailureLatchesDB(t *testing.T) {
	fsys, db := openFault(t, Options{})
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("parts", Row{nil, "durable", 1.0, true}); err != nil {
		t.Fatal(err)
	}

	fsys.SetRates(1, 0, 0)
	_, err := db.Insert("parts", Row{nil, "doomed", 2.0, true})
	if err == nil {
		t.Fatal("insert with failing fsync succeeded")
	}
	var fe *vfs.FaultError
	if !errors.As(err, &fe) || !errors.Is(err, vfs.ErrFsyncFailed) {
		t.Fatalf("error does not attribute the injected fsync failure: %v", err)
	}

	// The database is latched: even with a healthy disk again, every
	// write fails loudly and immediately.
	fsys.DisableFaults()
	if _, err := db.Insert("parts", Row{nil, "after", 3.0, true}); !errors.Is(err, ErrFailed) {
		t.Fatalf("write after latch: %v, want ErrFailed", err)
	}
	if err := db.Update("parts", 1, Row{int64(1), "x", 1.0, true}); !errors.Is(err, ErrFailed) {
		t.Fatalf("update after latch: %v, want ErrFailed", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrFailed) {
		t.Fatalf("checkpoint after latch: %v, want ErrFailed", err)
	}
	// Reads still serve the in-memory state.
	if _, ok := db.Get("parts", 1); !ok {
		t.Fatal("read failed on latched database")
	}
	// Close reports the latch instead of pretending the shutdown was clean.
	if err := db.Close(); !errors.Is(err, ErrFailed) {
		t.Fatalf("close after latch: %v, want ErrFailed", err)
	}

	// Re-opening recovers what is actually durable: the pre-failure commit.
	fsys.Crash(vfs.RetainNone)
	re, err := OpenWith("data/db", Options{FS: fsys})
	if err != nil {
		t.Fatalf("reopen after latch: %v", err)
	}
	defer re.Close()
	n, err := re.Count("parts")
	if err != nil || n != 1 {
		t.Fatalf("recovered rows = %d (%v), want 1", n, err)
	}
}

func TestSyncNeverLosesUnsyncedCommits(t *testing.T) {
	fsys, db := openFault(t, Options{Sync: SyncNever})
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Insert("parts", Row{nil, "p", 1.0, true}); err != nil {
			t.Fatal(err)
		}
	}
	// Power cut without any fsync: everything since Open is gone.
	fsys.Crash(vfs.RetainNone)
	re, err := OpenWith("data/db", Options{FS: fsys, Sync: SyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := re.Tables(); len(got) != 0 {
		t.Fatalf("tables survived SyncNever power cut: %v", got)
	}

	// A checkpoint is still a durability point under SyncNever.
	if err := re.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Insert("parts", Row{nil, "kept", 1.0, true}); err != nil {
		t.Fatal(err)
	}
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fsys.Crash(vfs.RetainNone)
	re2, err := OpenWith("data/db", Options{FS: fsys, Sync: SyncNever})
	if err != nil {
		t.Fatalf("reopen after checkpoint: %v", err)
	}
	defer re2.Close()
	n, err := re2.Count("parts")
	if err != nil || n != 1 {
		t.Fatalf("rows after checkpoint+cut = %d (%v), want 1", n, err)
	}
}

func TestGroupCommitDurableOnReturn(t *testing.T) {
	const writers = 16
	fsys, db := openFault(t, Options{Sync: SyncInterval, SyncEvery: 200 * time.Microsecond})
	reg := obs.NewRegistry()
	db.Instrument(nil, reg)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = db.Insert("parts", Row{nil, fmt.Sprintf("w%02d", i), 1.0, true})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	// Every Insert returned, so every row must survive the harshest cut
	// without a Close or Checkpoint.
	fsys.Crash(vfs.RetainNone)
	re, err := OpenWith("data/db", Options{FS: fsys})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	n, err := re.Count("parts")
	if err != nil || n != writers {
		t.Fatalf("recovered rows = %d (%v), want %d", n, err, writers)
	}
	// Group commit amortizes: the writers were covered by shared fsyncs.
	if got := reg.Histogram(MetricFsyncSeconds, obs.DefBuckets).Count(); got == 0 {
		t.Fatal("no group fsync recorded")
	}
	// The old handle's disk was rebooted out from under it; its Close must
	// not pretend to have shut down cleanly.
	if db.Close() == nil {
		t.Fatal("Close of the crashed handle's DB succeeded")
	}
}

func TestGroupCommitFsyncFailureFailsWaiters(t *testing.T) {
	fsys, db := openFault(t, Options{Sync: SyncInterval, SyncEvery: 100 * time.Microsecond})
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	fsys.SetRates(1, 0, 0)
	if _, err := db.Insert("parts", Row{nil, "x", 1.0, true}); err == nil {
		t.Fatal("insert acknowledged without a durable fsync")
	} else if !errors.Is(err, vfs.ErrFsyncFailed) && !errors.Is(err, ErrFailed) {
		t.Fatalf("unattributed group-commit failure: %v", err)
	}
	fsys.DisableFaults()
	if _, err := db.Insert("parts", Row{nil, "y", 1.0, true}); !errors.Is(err, ErrFailed) {
		t.Fatalf("write after latched group fsync: %v, want ErrFailed", err)
	}
}

func TestSyncMetrics(t *testing.T) {
	_, db := openFault(t, Options{})
	reg := obs.NewRegistry()
	db.Instrument(nil, reg)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("parts", Row{nil, "m", 1.0, true}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram(MetricFsyncSeconds, obs.DefBuckets).Count(); got < 2 {
		t.Fatalf("fsync observations = %d, want >= 2 (create table + insert)", got)
	}
	if got := reg.Counter(MetricWALSyncedBytesTotal).Value(); got == 0 {
		t.Fatal("no WAL bytes recorded as synced")
	}
	if got := reg.Counter(MetricFsyncFailuresTotal).Value(); got != 0 {
		t.Fatalf("fsync failures = %d on a healthy disk", got)
	}
}

// TestCheckpointStaleWALNotReplayed reconstructs the crash window between
// the snapshot rename and the WAL reset: the new snapshot is on disk while
// the old WAL (previous generation) still holds the same committed
// records. Recovery must not replay them on top of the snapshot.
func TestCheckpointStaleWALNotReplayed(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Insert("parts", Row{nil, fmt.Sprintf("p%d", i), 1.0, true}); err != nil {
			t.Fatal(err)
		}
	}
	preWAL, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, snapshotFileName))
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, err := db.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Fresh directory holding exactly the crash-window image.
	crashDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(crashDir, snapshotFileName), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(crashDir, walFileName), preWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(crashDir)
	if err != nil {
		t.Fatalf("reopen in crash window: %v", err)
	}
	defer re.Close()
	n, err := re.Count("parts")
	if err != nil {
		t.Fatalf("table lost: %v", err)
	}
	if n != 3 {
		t.Fatalf("rows = %d, want 3 (stale WAL must not double-apply)", n)
	}
	gotDigest, err := re.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != wantDigest {
		t.Fatal("recovered state differs from checkpointed state")
	}
	// The stale WAL was cut back to empty so new commits start clean.
	fi, err := os.Stat(filepath.Join(crashDir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("stale WAL still holds %d bytes after recovery", fi.Size())
	}
	if _, err := re.Insert("parts", Row{nil, "new", 1.0, true}); err != nil {
		t.Fatalf("insert after stale-WAL recovery: %v", err)
	}
}

// TestCheckpointWALTruncateDurable verifies the WAL reset after a
// checkpoint is itself fsynced: a power cut right after Checkpoint must
// not resurrect pre-checkpoint WAL bytes.
func TestCheckpointWALTruncateDurable(t *testing.T) {
	fsys, db := openFault(t, Options{})
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := db.Insert("parts", Row{nil, "p", 1.0, true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fsys.Crash(vfs.RetainNone)
	fi, err := fsys.Stat("data/db/" + walFileName)
	if err != nil {
		t.Fatalf("wal after cut: %v", err)
	}
	if fi.Size() != 0 {
		t.Fatalf("durable WAL size after checkpoint = %d, want 0", fi.Size())
	}
	re, err := OpenWith("data/db", Options{FS: fsys})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	n, err := re.Count("parts")
	if err != nil || n != 4 {
		t.Fatalf("rows = %d (%v), want 4", n, err)
	}
}

// TestStaleTmpSnapshotRemoved asserts Open deletes a leftover temp
// snapshot instead of letting it sit on disk forever.
func TestStaleTmpSnapshotRemoved(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	tmp := filepath.Join(dir, snapshotTmpFileName)
	if err := os.WriteFile(tmp, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with stale tmp: %v", err)
	}
	defer re.Close()
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale tmp still present: err=%v", err)
	}
}

// TestTxCommitIsOneFrame asserts a transaction's records land in a single
// WAL frame, the unit of atomic replay.
func TestTxCommitIsOneFrame(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	nBefore := len(walRecordOffsets(t, before))
	tx := db.Begin()
	tx.Insert("parts", Row{nil, "a", 1.0, true})
	tx.Insert("parts", Row{nil, "b", 2.0, true})
	tx.Insert("parts", Row{nil, "c", 3.0, true})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if nAfter := len(walRecordOffsets(t, after)); nAfter != nBefore+1 {
		t.Fatalf("transaction produced %d frames, want 1", nAfter-nBefore)
	}
	db.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	n, err := re.Count("parts")
	if err != nil || n != 3 {
		t.Fatalf("rows = %d (%v), want 3", n, err)
	}
}

// TestFsyncLatchTriggersFlightBundle: an fsync failure latching the
// database is a hard anomaly — the flight recorder attached via
// WithFlight captures a diagnostic bundle (fired after db.mu is
// released, so the bundle's own FlightInfo read cannot deadlock) whose
// reldb section reports the latched state.
func TestFsyncLatchTriggersFlightBundle(t *testing.T) {
	fsys, db := openFault(t, Options{})
	defer db.Close()
	fr := flight.New(flight.Config{
		Dir:         t.TempDir(),
		Logger:      obs.NewLogger(io.Discard, obs.LevelError),
		MinInterval: -1,
	})
	defer fr.Close()
	db.WithFlight(fr)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}

	fsys.SetRates(1, 0, 0)
	if _, err := db.Insert("parts", Row{nil, "doomed", 2.0, true}); err == nil {
		t.Fatal("insert with failing fsync succeeded")
	}
	bdir := fr.LastBundleDir()
	if bdir == "" {
		t.Fatal("fsync latch did not produce a flight bundle")
	}
	b, err := flight.ReadBundle(bdir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != flight.ReasonFsyncLatch {
		t.Fatalf("bundle reason = %q", b.Reason)
	}
	info := b.Extras["reldb"]
	if info == nil || info["latched_error"] == "" {
		t.Fatalf("bundle reldb extras missing latched state: %v", b.Extras)
	}
	if info["sync_policy"] != "always" {
		t.Errorf("sync_policy = %q", info["sync_policy"])
	}

	// The latch fires exactly once: further rejected writes add nothing.
	fsys.DisableFaults()
	_, _ = db.Insert("parts", Row{nil, "after", 3.0, true})
	entries, err := os.ReadDir(filepath.Dir(bdir))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "bundle-") {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("latch produced %d bundles, want 1", n)
	}
}
