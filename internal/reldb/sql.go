package reldb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// Minimal SQL subset, enough to inspect and script the QATK databases:
//
//	CREATE TABLE t (col TYPE [NOT NULL] [PRIMARY KEY], ...)
//	CREATE [UNIQUE] INDEX name ON t (col, ...)
//	INSERT INTO t [(col, ...)] VALUES (lit, ...)
//	SELECT * | col, ... | COUNT(*) FROM t
//	       [WHERE col op lit [AND ...]] [ORDER BY col [ASC|DESC]] [LIMIT n]
//	SELECT col, COUNT(*) FROM t [WHERE ...] GROUP BY col
//	       [ORDER BY count [DESC]] [LIMIT n]
//	UPDATE t SET col = lit [, ...] [WHERE ...]
//	DELETE FROM t [WHERE ...]
//
// Literals: integers, floats, 'strings' ('' escapes a quote), TRUE, FALSE,
// NULL, and ? placeholders bound to Exec arguments.

// Exec parses and executes one SQL statement. args bind ? placeholders in
// order. For SELECT the Result holds the rows; for other statements Result
// is nil and the int is the number of affected rows (or 0 for DDL).
func (db *DB) Exec(query string, args ...Value) (*Result, int, error) {
	p := &sqlParser{toks: lexSQL(query), args: args}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, 0, fmt.Errorf("reldb: parse %q: %w", query, err)
	}
	res, n, err := stmt.run(db)
	if err != nil {
		// Execution errors are attributed here, at the package boundary;
		// statement internals stay prefix-free (qatklint/errattr).
		return nil, 0, fmt.Errorf("reldb: exec %q: %w", query, err)
	}
	return res, n, nil
}

// MustExec is Exec that panics on error; for tests and fixtures.
func (db *DB) MustExec(query string, args ...Value) *Result {
	res, _, err := db.Exec(query, args...)
	if err != nil {
		panic(err)
	}
	return res
}

type sqlStmt interface {
	run(db *DB) (*Result, int, error)
}

// --- lexer --------------------------------------------------------------

type tokKind uint8

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkString
	tkPunct // ( ) , * = < > <= >= != ?
)

type token struct {
	kind tokKind
	text string
}

func lexSQL(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < len(s) {
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			toks = append(toks, token{tkString, sb.String()})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9':
			j := i + 1
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' || s[j] == 'e' || s[j] == 'E' || s[j] == '+' || s[j] == '-') {
				// Stop '-'/'+' unless preceded by exponent marker.
				if (s[j] == '-' || s[j] == '+') && !(s[j-1] == 'e' || s[j-1] == 'E') {
					break
				}
				j++
			}
			toks = append(toks, token{tkNumber, s[i:j]})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(s) && isIdentPart(rune(s[j])) {
				j++
			}
			toks = append(toks, token{tkIdent, s[i:j]})
			i = j
		case c == '<' || c == '>' || c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tkPunct, s[i : i+2]})
				i += 2
			} else {
				toks = append(toks, token{tkPunct, string(c)})
				i++
			}
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '=' || c == '?' || c == ';':
			toks = append(toks, token{tkPunct, string(c)})
			i++
		default:
			toks = append(toks, token{tkPunct, string(c)})
			i++
		}
	}
	toks = append(toks, token{tkEOF, ""})
	return toks
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

// --- parser -------------------------------------------------------------

type sqlParser struct {
	toks []token
	pos  int
	args []Value
	argi int
}

func (p *sqlParser) peek() token { return p.toks[p.pos] }
func (p *sqlParser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *sqlParser) acceptKw(kw string) bool {
	t := p.peek()
	if t.kind == tkIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *sqlParser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tkPunct || t.text != s {
		return fmt.Errorf("expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	t := p.next()
	if t.kind != tkIdent {
		return "", fmt.Errorf("expected identifier, got %q", t.text)
	}
	return t.text, nil
}

func (p *sqlParser) parseStatement() (sqlStmt, error) {
	switch {
	case p.acceptKw("CREATE"):
		if p.acceptKw("TABLE") {
			return p.parseCreateTable()
		}
		unique := p.acceptKw("UNIQUE")
		if p.acceptKw("INDEX") {
			return p.parseCreateIndex(unique)
		}
		return nil, fmt.Errorf("expected TABLE or INDEX after CREATE")
	case p.acceptKw("INSERT"):
		return p.parseInsert()
	case p.acceptKw("SELECT"):
		return p.parseSelect()
	case p.acceptKw("UPDATE"):
		return p.parseUpdate()
	case p.acceptKw("DELETE"):
		return p.parseDelete()
	}
	return nil, fmt.Errorf("unsupported statement starting with %q", p.peek().text)
}

func (p *sqlParser) parseEnd() error {
	if p.peek().kind == tkPunct && p.peek().text == ";" {
		p.pos++
	}
	if p.peek().kind != tkEOF {
		return fmt.Errorf("unexpected trailing input %q", p.peek().text)
	}
	return nil
}

type createTableStmt struct{ schema Schema }

func (s *createTableStmt) run(db *DB) (*Result, int, error) {
	return nil, 0, db.CreateTable(s.schema)
}

func (p *sqlParser) parseCreateTable() (sqlStmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	schema := Schema{Name: name}
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		typName, err := p.ident()
		if err != nil {
			return nil, err
		}
		ct, err := ParseColType(typName)
		if err != nil {
			return nil, err
		}
		col := Column{Name: colName, Type: ct}
		for {
			if p.acceptKw("NOT") {
				if err := p.expectKw("NULL"); err != nil {
					return nil, err
				}
				col.NotNull = true
				continue
			}
			if p.acceptKw("PRIMARY") {
				if err := p.expectKw("KEY"); err != nil {
					return nil, err
				}
				schema.PrimaryKey = colName
				continue
			}
			break
		}
		schema.Columns = append(schema.Columns, col)
		t := p.next()
		if t.kind == tkPunct && t.text == "," {
			continue
		}
		if t.kind == tkPunct && t.text == ")" {
			break
		}
		return nil, fmt.Errorf("expected , or ) in column list, got %q", t.text)
	}
	if err := p.parseEnd(); err != nil {
		return nil, err
	}
	return &createTableStmt{schema: schema}, nil
}

type createIndexStmt struct {
	name, table string
	unique      bool
	cols        []string
}

func (s *createIndexStmt) run(db *DB) (*Result, int, error) {
	return nil, 0, db.CreateIndex(s.table, s.name, s.unique, s.cols...)
}

func (p *sqlParser) parseCreateIndex(unique bool) (sqlStmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.parenIdentList()
	if err != nil {
		return nil, err
	}
	if err := p.parseEnd(); err != nil {
		return nil, err
	}
	return &createIndexStmt{name: name, table: table, unique: unique, cols: cols}, nil
}

func (p *sqlParser) parenIdentList() ([]string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		t := p.next()
		if t.kind == tkPunct && t.text == "," {
			continue
		}
		if t.kind == tkPunct && t.text == ")" {
			return cols, nil
		}
		return nil, fmt.Errorf("expected , or ), got %q", t.text)
	}
}

type insertStmt struct {
	table string
	cols  []string
	vals  []Value
}

func (s *insertStmt) run(db *DB) (*Result, int, error) {
	schema, err := db.Schema(s.table)
	if err != nil {
		return nil, 0, err
	}
	row := make(Row, len(schema.Columns))
	if s.cols == nil {
		if len(s.vals) != len(schema.Columns) {
			return nil, 0, fmt.Errorf("reldb: INSERT expects %d values, got %d", len(schema.Columns), len(s.vals))
		}
		copy(row, s.vals)
	} else {
		if len(s.cols) != len(s.vals) {
			return nil, 0, fmt.Errorf("reldb: INSERT column/value count mismatch")
		}
		for i, c := range s.cols {
			pos := schema.ColIndex(c)
			if pos < 0 {
				return nil, 0, fmt.Errorf("reldb: table %q has no column %q", s.table, c)
			}
			row[pos] = s.vals[i]
		}
	}
	if _, err := db.Insert(s.table, row); err != nil {
		return nil, 0, err
	}
	return nil, 1, nil
}

func (p *sqlParser) parseInsert() (sqlStmt, error) {
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.peek().kind == tkPunct && p.peek().text == "(" {
		if cols, err = p.parenIdentList(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var vals []Value
	for {
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		t := p.next()
		if t.kind == tkPunct && t.text == "," {
			continue
		}
		if t.kind == tkPunct && t.text == ")" {
			break
		}
		return nil, fmt.Errorf("expected , or ) in VALUES, got %q", t.text)
	}
	if err := p.parseEnd(); err != nil {
		return nil, err
	}
	return &insertStmt{table: table, cols: cols, vals: vals}, nil
}

func (p *sqlParser) literal() (Value, error) {
	t := p.next()
	switch t.kind {
	case tkString:
		return t.text, nil
	case tkNumber:
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, err
			}
			return f, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return n, nil
	case tkIdent:
		switch strings.ToUpper(t.text) {
		case "TRUE":
			return true, nil
		case "FALSE":
			return false, nil
		case "NULL":
			return nil, nil
		}
		return nil, fmt.Errorf("unexpected identifier %q, want literal", t.text)
	case tkPunct:
		if t.text == "?" {
			if p.argi >= len(p.args) {
				return nil, fmt.Errorf("not enough arguments for placeholders")
			}
			v := p.args[p.argi]
			p.argi++
			return v, nil
		}
	}
	return nil, fmt.Errorf("expected literal, got %q", t.text)
}

type selectStmt struct {
	q       Query
	count   bool
	groupBy string
	// Post-aggregation ordering/limits (ORDER BY count / group column).
	orderCount bool
	orderDesc  bool
	limit      int
}

func (s *selectStmt) run(db *DB) (*Result, int, error) {
	if s.groupBy != "" {
		return s.runGrouped(db)
	}
	res, err := db.Select(s.q)
	if err != nil {
		return nil, 0, err
	}
	if s.count {
		n := int64(len(res.Rows))
		return &Result{Cols: []string{"count"}, Rows: []Row{{n}}}, 0, nil
	}
	return res, len(res.Rows), nil
}

func (s *selectStmt) runGrouped(db *DB) (*Result, int, error) {
	base := Query{Table: s.q.Table, Where: s.q.Where, Cols: []string{s.groupBy}}
	res, err := db.Select(base)
	if err != nil {
		return nil, 0, err
	}
	counts := map[string]int64{}
	values := map[string]Value{}
	var order []string
	for _, row := range res.Rows {
		key := FormatValue(row[0])
		if _, ok := counts[key]; !ok {
			order = append(order, key)
			values[key] = row[0]
		}
		counts[key]++
	}
	out := &Result{Cols: []string{s.groupBy, "count"}}
	for _, key := range order {
		out.Rows = append(out.Rows, Row{values[key], counts[key]})
	}
	sort.SliceStable(out.Rows, func(i, j int) bool {
		var c int
		if s.orderCount {
			a, b := out.Rows[i][1].(int64), out.Rows[j][1].(int64)
			switch {
			case a < b:
				c = -1
			case a > b:
				c = 1
			}
		} else {
			c = compareOrder(out.Rows[i][0], out.Rows[j][0])
		}
		if s.orderDesc {
			return c > 0
		}
		return c < 0
	})
	if s.limit > 0 && len(out.Rows) > s.limit {
		out.Rows = out.Rows[:s.limit]
	}
	return out, len(out.Rows), nil
}

func (p *sqlParser) parseSelect() (sqlStmt, error) {
	var st selectStmt
	hasCountAgg := false
	if p.peek().kind == tkPunct && p.peek().text == "*" {
		p.pos++
	} else {
		for {
			if p.acceptKw("COUNT") {
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				if err := p.expectPunct("*"); err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				hasCountAgg = true
			} else {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				st.q.Cols = append(st.q.Cols, c)
			}
			if p.peek().kind == tkPunct && p.peek().text == "," {
				p.pos++
				continue
			}
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.q.Table = table
	if st.q.Where, err = p.parseWhere(); err != nil {
		return nil, err
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if !hasCountAgg || len(st.q.Cols) != 1 || st.q.Cols[0] != col {
			return nil, fmt.Errorf("GROUP BY requires the projection `%s, COUNT(*)`", col)
		}
		st.groupBy = col
		st.q.Cols = nil
	} else if hasCountAgg {
		if len(st.q.Cols) != 0 {
			return nil, fmt.Errorf("COUNT(*) mixed with columns requires GROUP BY")
		}
		st.count = true
	}
	var orderBy string
	var orderDesc bool
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		if orderBy, err = p.ident(); err != nil {
			return nil, err
		}
		if p.acceptKw("DESC") {
			orderDesc = true
		} else {
			p.acceptKw("ASC")
		}
	}
	limit := 0
	if p.acceptKw("LIMIT") {
		t := p.next()
		if t.kind != tkNumber {
			return nil, fmt.Errorf("expected number after LIMIT, got %q", t.text)
		}
		if limit, err = strconv.Atoi(t.text); err != nil {
			return nil, err
		}
	}
	if st.groupBy != "" {
		switch orderBy {
		case "":
		case "count":
			st.orderCount = true
		case st.groupBy:
		default:
			return nil, fmt.Errorf("ORDER BY %q not available after GROUP BY", orderBy)
		}
		st.orderDesc = orderDesc
		st.limit = limit
	} else {
		st.q.OrderBy = orderBy
		st.q.Desc = orderDesc
		st.q.Limit = limit
	}
	if err := p.parseEnd(); err != nil {
		return nil, err
	}
	return &st, nil
}

func (p *sqlParser) parseWhere() ([]Cond, error) {
	if !p.acceptKw("WHERE") {
		return nil, nil
	}
	var conds []Cond
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		opTok := p.next()
		var op CmpOp
		switch opTok.text {
		case "=":
			op = OpEq
		case "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			return nil, fmt.Errorf("unsupported operator %q", opTok.text)
		}
		val, err := p.literal()
		if err != nil {
			return nil, err
		}
		conds = append(conds, Cond{Col: col, Op: op, Val: val})
		if !p.acceptKw("AND") {
			return conds, nil
		}
	}
}

type updateStmt struct {
	table string
	sets  []struct {
		col string
		val Value
	}
	where []Cond
}

func (s *updateStmt) run(db *DB) (*Result, int, error) {
	res, err := db.Select(Query{Table: s.table, Where: s.where})
	if err != nil {
		return nil, 0, err
	}
	schema, err := db.Schema(s.table)
	if err != nil {
		return nil, 0, err
	}
	n := 0
	for i, id := range res.RowIDs {
		row := res.Rows[i]
		for _, set := range s.sets {
			pos := schema.ColIndex(set.col)
			if pos < 0 {
				return nil, 0, fmt.Errorf("reldb: table %q has no column %q", s.table, set.col)
			}
			row[pos] = set.val
		}
		if err := db.Update(s.table, id, row); err != nil {
			return nil, 0, err
		}
		n++
	}
	return nil, n, nil
}

func (p *sqlParser) parseUpdate() (sqlStmt, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	st := &updateStmt{table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.literal()
		if err != nil {
			return nil, err
		}
		st.sets = append(st.sets, struct {
			col string
			val Value
		}{col, val})
		if p.peek().kind == tkPunct && p.peek().text == "," {
			p.pos++
			continue
		}
		break
	}
	if st.where, err = p.parseWhere(); err != nil {
		return nil, err
	}
	if err := p.parseEnd(); err != nil {
		return nil, err
	}
	return st, nil
}

type deleteStmt struct {
	table string
	where []Cond
}

func (s *deleteStmt) run(db *DB) (*Result, int, error) {
	n, err := db.DeleteWhere(s.table, s.where...)
	return nil, n, err
}

func (p *sqlParser) parseDelete() (sqlStmt, error) {
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	if err := p.parseEnd(); err != nil {
		return nil, err
	}
	return &deleteStmt{table: table, where: where}, nil
}
