package reldb

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestInstrumentCountsWALAndCheckpoints: mutations, checkpoints and the
// replay at reopen all surface as counters and structured log lines.
func TestInstrumentCountsWALAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var logged strings.Builder
	db.Instrument(obs.NewLogger(&logged, obs.LevelInfo), reg)

	schema := Schema{Name: "t", Columns: []Column{
		{Name: "id", Type: TInt}, {Name: "v", Type: TString},
	}, PrimaryKey: "id"}
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if _, err := db.Insert("t", Row{i, "x"}); err != nil {
			t.Fatal(err)
		}
	}
	// 1 create-table + 3 inserts.
	if got := reg.Counter(MetricWALRecordsTotal).Value(); got != 4 {
		t.Errorf("wal records counter = %d, want 4", got)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricCheckpointsTotal).Value(); got != 1 {
		t.Errorf("checkpoints counter = %d, want 1", got)
	}
	if !strings.Contains(logged.String(), `msg="checkpoint written"`) {
		t.Errorf("missing checkpoint event:\n%s", logged.String())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the snapshot replays (schema + 3 rows + next-id high-water
	// mark) and Instrument surfaces the count retroactively.
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	reg2 := obs.NewRegistry()
	var logged2 strings.Builder
	db2.Instrument(obs.NewLogger(&logged2, obs.LevelInfo), reg2)
	if got := reg2.Counter(MetricWALReplayedTotal).Value(); got != 5 {
		t.Errorf("replayed counter = %d, want 5", got)
	}
	if !strings.Contains(logged2.String(), `msg="database recovered"`) ||
		!strings.Contains(logged2.String(), "replayed_records=5") {
		t.Errorf("missing recovery event:\n%s", logged2.String())
	}
}

// TestUninstrumentedDBStillWorks: a database without Instrument attached
// takes the same code paths with nil observability handles.
func TestUninstrumentedDBStillWorks(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := Schema{Name: "t", Columns: []Column{{Name: "v", Type: TString}}}
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("t", Row{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}
