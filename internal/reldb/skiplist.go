package reldb

// Ordered index storage. Like the memtables of log-structured engines, the
// ordered index is a skip list keyed by order-preserving encoded bytes
// (see encodeKey): simple, cache-friendly for the scan patterns the QATK
// knowledge base needs, and with none of the rebalancing subtleties of
// on-disk B-trees, which this embedded engine does not require.

const skipMaxLevel = 16

type skipNode struct {
	key  []byte
	val  int64
	next []*skipNode
}

type skipList struct {
	head *skipNode
	size int
	rng  uint64 // deterministic xorshift state for level draws
}

func newSkipList() *skipList {
	return &skipList{
		head: &skipNode{next: make([]*skipNode, skipMaxLevel)},
		rng:  0x9E3779B97F4A7C15,
	}
}

// randLevel draws a geometric level in [1, skipMaxLevel] from the
// deterministic generator, p = 1/4 per extra level.
func (s *skipList) randLevel() int {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	lvl := 1
	for lvl < skipMaxLevel && x&3 == 0 {
		lvl++
		x >>= 2
	}
	return lvl
}

// findPath fills update with, per level, the last node whose key is < key.
func (s *skipList) findPath(key []byte, update *[skipMaxLevel]*skipNode) *skipNode {
	n := s.head
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && compareBytes(n.next[lvl].key, key) < 0 {
			n = n.next[lvl]
		}
		update[lvl] = n
	}
	return n.next[0]
}

// insert adds key→val. Duplicate keys are rejected (the caller composes a
// unique suffix for non-unique indexes); it returns false if key exists.
func (s *skipList) insert(key []byte, val int64) bool {
	var update [skipMaxLevel]*skipNode
	n := s.findPath(key, &update)
	if n != nil && compareBytes(n.key, key) == 0 {
		return false
	}
	lvl := s.randLevel()
	node := &skipNode{key: key, val: val, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	s.size++
	return true
}

// delete removes key, reporting whether it was present.
func (s *skipList) delete(key []byte) bool {
	var update [skipMaxLevel]*skipNode
	n := s.findPath(key, &update)
	if n == nil || compareBytes(n.key, key) != 0 {
		return false
	}
	for i := 0; i < len(n.next); i++ {
		if update[i].next[i] == n {
			update[i].next[i] = n.next[i]
		}
	}
	s.size--
	return true
}

// get returns the value stored under key.
func (s *skipList) get(key []byte) (int64, bool) {
	n := s.seek(key)
	if n != nil && compareBytes(n.key, key) == 0 {
		return n.val, true
	}
	return 0, false
}

// seek returns the first node with key >= the argument (nil if none).
func (s *skipList) seek(key []byte) *skipNode {
	n := s.head
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && compareBytes(n.next[lvl].key, key) < 0 {
			n = n.next[lvl]
		}
	}
	return n.next[0]
}

// first returns the smallest node (nil if empty).
func (s *skipList) first() *skipNode { return s.head.next[0] }
