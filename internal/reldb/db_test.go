package reldb

import (
	"strings"
	"testing"
)

func partsSchema() Schema {
	return Schema{
		Name: "parts",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "name", Type: TString, NotNull: true},
			{Name: "weight", Type: TFloat},
			{Name: "active", Type: TBool},
		},
		PrimaryKey: "id",
	}
}

func mustOpenMem(t *testing.T) *DB {
	t.Helper()
	db, err := Open("")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func TestCreateTableAndInsert(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	id, err := db.Insert("parts", Row{nil, "fender", 2.5, true})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if id != 1 {
		t.Fatalf("auto id = %d, want 1", id)
	}
	row, ok := db.Get("parts", 1)
	if !ok {
		t.Fatal("Get: row missing")
	}
	if row[0].(int64) != 1 || row[1].(string) != "fender" {
		t.Fatalf("row = %v", row)
	}
}

func TestInsertExplicitPrimaryKey(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	id, err := db.Insert("parts", Row{int64(42), "radio", 1.0, false})
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 {
		t.Fatalf("id = %d, want 42", id)
	}
	// Next auto id continues after the explicit one.
	id2, err := db.Insert("parts", Row{nil, "lamp", 0.2, true})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != 43 {
		t.Fatalf("id2 = %d, want 43", id2)
	}
	// Duplicate explicit key rejected.
	if _, err := db.Insert("parts", Row{int64(42), "dup", 0.0, true}); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
}

func TestNotNullEnforced(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("parts", Row{nil, nil, 1.0, true}); err == nil {
		t.Fatal("NULL accepted for NOT NULL column")
	}
}

func TestTypeChecking(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("parts", Row{nil, "x", "not a float", true}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	// int is coerced to the declared FLOAT type.
	if _, err := db.Insert("parts", Row{nil, "x", 3, true}); err != nil {
		t.Fatalf("int->float coercion failed: %v", err)
	}
	row, _ := db.Get("parts", 1)
	if row[2].(float64) != 3.0 {
		t.Fatalf("coerced value = %v", row[2])
	}
}

func TestWrongArity(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("parts", Row{nil, "x"}); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestUpdateAndDelete(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	id, _ := db.Insert("parts", Row{nil, "fender", 2.5, true})
	if err := db.Update("parts", id, Row{id, "fender mk2", 2.7, false}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	row, _ := db.Get("parts", id)
	if row[1].(string) != "fender mk2" || row[3].(bool) {
		t.Fatalf("row after update = %v", row)
	}
	if err := db.Delete("parts", id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok := db.Get("parts", id); ok {
		t.Fatal("row still present after delete")
	}
	if err := db.Delete("parts", id); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestPrimaryKeyImmutable(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	id, _ := db.Insert("parts", Row{nil, "a", 1.0, true})
	if err := db.Update("parts", id, Row{id + 7, "a", 1.0, true}); err == nil {
		t.Fatal("primary key change accepted")
	}
}

func TestUniqueSecondaryIndex(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("parts", "ux_name", true, "name"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("parts", Row{nil, "fender", 1.0, true}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("parts", Row{nil, "fender", 2.0, true}); err == nil {
		t.Fatal("unique index violation accepted")
	}
	// The failed insert must not leave a phantom row.
	n, _ := db.Count("parts")
	if n != 1 {
		t.Fatalf("row count after failed insert = %d, want 1", n)
	}
	// And a different name is fine.
	if _, err := db.Insert("parts", Row{nil, "lamp", 2.0, true}); err != nil {
		t.Fatal(err)
	}
}

func TestCreateIndexOnExistingRows(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"c", "a", "b"} {
		if _, err := db.Insert("parts", Row{nil, name, 1.0, true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateIndex("parts", "ix_name", false, "name"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Select(Query{Table: "parts", Where: []Cond{Eq("name", "b")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].(string) != "b" {
		t.Fatalf("index lookup rows = %v", res.Rows)
	}
}

func TestErrorsOnUnknownTable(t *testing.T) {
	db := mustOpenMem(t)
	if _, err := db.Insert("nope", Row{}); err == nil {
		t.Fatal("insert into unknown table accepted")
	}
	if err := db.Update("nope", 1, Row{}); err == nil {
		t.Fatal("update of unknown table accepted")
	}
	if err := db.Delete("nope", 1); err == nil {
		t.Fatal("delete from unknown table accepted")
	}
	if _, err := db.Select(Query{Table: "nope"}); err == nil {
		t.Fatal("select from unknown table accepted")
	}
	if _, err := db.Count("nope"); err == nil {
		t.Fatal("count of unknown table accepted")
	}
}

func TestSchemaValidation(t *testing.T) {
	db := mustOpenMem(t)
	cases := []Schema{
		{},
		{Name: "t"},
		{Name: "t", Columns: []Column{{Name: "", Type: TInt}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: TInt}, {Name: "a", Type: TInt}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: 0}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: TInt}}, PrimaryKey: "zzz"},
	}
	for i, s := range cases {
		if err := db.CreateTable(s); err == nil {
			t.Errorf("case %d: invalid schema accepted: %v", i, s)
		}
	}
}

func TestDuplicateTable(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(partsSchema()); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	db := mustOpenMem(t)
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	id, _ := db.Insert("parts", Row{nil, "a", 1.0, true})
	row, _ := db.Get("parts", id)
	row[1] = "mutated"
	fresh, _ := db.Get("parts", id)
	if fresh[1].(string) != "a" {
		t.Fatal("Get exposed internal storage")
	}
}

func TestSchemaString(t *testing.T) {
	s := partsSchema()
	str := s.String()
	for _, want := range []string{"CREATE TABLE parts", "id INT PRIMARY KEY", "name TEXT NOT NULL"} {
		if !strings.Contains(str, want) {
			t.Errorf("schema string %q missing %q", str, want)
		}
	}
}

func TestTablesSorted(t *testing.T) {
	db := mustOpenMem(t)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := db.CreateTable(Schema{Name: n, Columns: []Column{{Name: "x", Type: TInt}}}); err != nil {
			t.Fatal(err)
		}
	}
	got := db.Tables()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tables() = %v, want %v", got, want)
		}
	}
}
