package reldb

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db, err := Open("")
	if err != nil {
		b.Fatal(err)
	}
	if err := db.CreateTable(Schema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "part", Type: TString, NotNull: true},
			{Name: "feature", Type: TString, NotNull: true},
			{Name: "score", Type: TFloat},
		},
		PrimaryKey: "id",
	}); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex("t", "ix_pf", false, "part", "feature"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Insert("t", Row{nil,
			fmt.Sprintf("P%02d", i%31),
			fmt.Sprintf("f%04d", i%500),
			float64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkInsert(b *testing.B) {
	db := benchDB(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Insert("t", Row{nil, "P01", fmt.Sprintf("f%06d", i), 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexedSelect(b *testing.B) {
	db := benchDB(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Select(Query{Table: "t", Where: []Cond{
			Eq("part", "P07"), Eq("feature", fmt.Sprintf("f%04d", i%500)),
		}})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkFullScanSelect(b *testing.B) {
	db := benchDB(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Select(Query{Table: "t", Where: []Cond{
			{Col: "score", Op: OpGt, Val: 9990.0},
		}})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkSQLExec(b *testing.B) {
	db := benchDB(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Exec("SELECT id FROM t WHERE part = ? AND feature = ? LIMIT 5",
			"P03", "f0042"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppend(b *testing.B) {
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable(Schema{Name: "t", Columns: []Column{
		{Name: "id", Type: TInt}, {Name: "x", Type: TString},
	}, PrimaryKey: "id"}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Insert("t", Row{nil, "payload payload payload"}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSyncDB opens an on-disk database under the given durability
// policy with a one-column table ready for commits.
func benchSyncDB(b *testing.B, sync SyncPolicy) *DB {
	b.Helper()
	db, err := OpenWith(b.TempDir(), Options{Sync: sync})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if err := db.CreateTable(Schema{Name: "t", Columns: []Column{
		{Name: "id", Type: TInt}, {Name: "x", Type: TString},
	}, PrimaryKey: "id"}); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkCommitSyncAlways measures the per-commit cost of the default
// policy: one fsync on every write before it returns.
func BenchmarkCommitSyncAlways(b *testing.B) {
	db := benchSyncDB(b, SyncAlways)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Insert("t", Row{nil, "payload payload payload"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommitGroupCommit measures SyncInterval under concurrent
// writers: commits from parallel goroutines share fsyncs, so per-commit
// cost amortizes toward the WAL-append cost as parallelism grows.
func BenchmarkCommitGroupCommit(b *testing.B) {
	db := benchSyncDB(b, SyncInterval)
	// 8 writers per core: batching is the point, and GOMAXPROCS may be 1.
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := db.Insert("t", Row{nil, "payload payload payload"}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCommitSyncNever is the durability-free upper bound: WAL
// appends reach the OS page cache but are never fsynced.
func BenchmarkCommitSyncNever(b *testing.B) {
	db := benchSyncDB(b, SyncNever)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Insert("t", Row{nil, "payload payload payload"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSkipListInsert(b *testing.B) {
	sl := newSkipList()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Pseudo-random key order via a multiplicative hash of i.
		h := uint64(i) * 0x9E3779B97F4A7C15
		key := []byte{
			byte(h >> 56), byte(h >> 48), byte(h >> 40), byte(h >> 32),
			byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h),
		}
		sl.insert(key, int64(i))
	}
}
