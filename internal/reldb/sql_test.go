package reldb

import (
	"strings"
	"testing"
)

func sqlFixture(t *testing.T) *DB {
	t.Helper()
	db := mustOpenMem(t)
	db.MustExec("CREATE TABLE parts (id INT PRIMARY KEY, name TEXT NOT NULL, weight FLOAT, active BOOL)")
	db.MustExec("CREATE INDEX ix_name ON parts (name)")
	db.MustExec("INSERT INTO parts (name, weight, active) VALUES ('fender', 2.5, TRUE)")
	db.MustExec("INSERT INTO parts (name, weight, active) VALUES ('radio', 1.0, FALSE)")
	db.MustExec("INSERT INTO parts (name, weight, active) VALUES ('lamp', 0.25, TRUE)")
	return db
}

func TestSQLCreateInsertSelect(t *testing.T) {
	db := sqlFixture(t)
	res, n, err := db.Exec("SELECT name, weight FROM parts WHERE active = TRUE ORDER BY weight DESC")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", n)
	}
	if res.Rows[0][0].(string) != "fender" || res.Rows[1][0].(string) != "lamp" {
		t.Fatalf("order wrong: %v", res.Rows)
	}
}

func TestSQLSelectStar(t *testing.T) {
	db := sqlFixture(t)
	res, _, err := db.Exec("SELECT * FROM parts LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Cols) != 4 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Cols)
	}
}

func TestSQLCount(t *testing.T) {
	db := sqlFixture(t)
	res, _, err := db.Exec("SELECT COUNT(*) FROM parts WHERE weight < 2.0")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestSQLPlaceholders(t *testing.T) {
	db := sqlFixture(t)
	res, _, err := db.Exec("SELECT id FROM parts WHERE name = ?", "radio")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if _, _, err := db.Exec("SELECT id FROM parts WHERE name = ?"); err == nil {
		t.Fatal("missing placeholder argument accepted")
	}
}

func TestSQLUpdate(t *testing.T) {
	db := sqlFixture(t)
	_, n, err := db.Exec("UPDATE parts SET weight = 9.9, active = FALSE WHERE name = 'lamp'")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("updated %d, want 1", n)
	}
	res := db.MustExec("SELECT weight FROM parts WHERE name = 'lamp'")
	if res.Rows[0][0].(float64) != 9.9 {
		t.Fatalf("weight = %v", res.Rows[0][0])
	}
}

func TestSQLDelete(t *testing.T) {
	db := sqlFixture(t)
	_, n, err := db.Exec("DELETE FROM parts WHERE active = FALSE")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("deleted %d, want 1", n)
	}
	res := db.MustExec("SELECT COUNT(*) FROM parts")
	if res.Rows[0][0].(int64) != 2 {
		t.Fatalf("remaining = %v", res.Rows[0][0])
	}
}

func TestSQLStringEscapes(t *testing.T) {
	db := sqlFixture(t)
	db.MustExec("INSERT INTO parts (name, weight, active) VALUES ('o''ring', 0.1, TRUE)")
	res := db.MustExec("SELECT name FROM parts WHERE name = 'o''ring'")
	if len(res.Rows) != 1 || res.Rows[0][0].(string) != "o'ring" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLNullLiteral(t *testing.T) {
	db := sqlFixture(t)
	db.MustExec("INSERT INTO parts (name, weight, active) VALUES ('x', NULL, TRUE)")
	res := db.MustExec("SELECT weight FROM parts WHERE name = 'x'")
	if res.Rows[0][0] != nil {
		t.Fatalf("weight = %v, want nil", res.Rows[0][0])
	}
}

func TestSQLUniqueIndexViaSQL(t *testing.T) {
	db := mustOpenMem(t)
	db.MustExec("CREATE TABLE t (a TEXT)")
	db.MustExec("CREATE UNIQUE INDEX ux ON t (a)")
	db.MustExec("INSERT INTO t VALUES ('x')")
	if _, _, err := db.Exec("INSERT INTO t VALUES ('x')"); err == nil {
		t.Fatal("unique violation accepted")
	}
}

func TestSQLNegativeNumbers(t *testing.T) {
	db := mustOpenMem(t)
	db.MustExec("CREATE TABLE t (a INT, b FLOAT)")
	db.MustExec("INSERT INTO t VALUES (-5, -1.5)")
	res := db.MustExec("SELECT a, b FROM t WHERE a < 0")
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != -5 || res.Rows[0][1].(float64) != -1.5 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLParseErrors(t *testing.T) {
	db := sqlFixture(t)
	bad := []string{
		"",
		"DROP TABLE parts",
		"SELECT FROM parts",
		"SELECT * parts",
		"INSERT INTO parts VALUES",
		"CREATE TABLE x",
		"SELECT * FROM parts WHERE name LIKE 'a%'",
		"SELECT * FROM parts ORDER BY",
		"SELECT * FROM parts LIMIT many",
		"SELECT * FROM parts extra tokens",
		"UPDATE parts SET",
	}
	for _, q := range bad {
		if _, _, err := db.Exec(q); err == nil {
			t.Errorf("bad SQL accepted: %q", q)
		}
	}
}

func TestSQLSemicolonTolerated(t *testing.T) {
	db := sqlFixture(t)
	if _, _, err := db.Exec("SELECT * FROM parts;"); err != nil {
		t.Fatalf("trailing semicolon rejected: %v", err)
	}
}

func TestSQLInsertAllColumns(t *testing.T) {
	db := sqlFixture(t)
	db.MustExec("INSERT INTO parts VALUES (77, 'explicit', 1.0, TRUE)")
	res := db.MustExec("SELECT id FROM parts WHERE name = 'explicit'")
	if res.Rows[0][0].(int64) != 77 {
		t.Fatalf("id = %v", res.Rows[0][0])
	}
}

func TestSQLGroupBy(t *testing.T) {
	db := mustOpenMem(t)
	db.MustExec("CREATE TABLE codes (part TEXT, code TEXT)")
	for _, r := range [][2]string{
		{"P1", "E1"}, {"P1", "E1"}, {"P1", "E2"}, {"P2", "E1"}, {"P1", "E1"},
	} {
		db.MustExec("INSERT INTO codes VALUES (?, ?)", r[0], r[1])
	}
	res := db.MustExec("SELECT code, COUNT(*) FROM codes WHERE part = 'P1' GROUP BY code ORDER BY count DESC")
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][0].(string) != "E1" || res.Rows[0][1].(int64) != 3 {
		t.Fatalf("top group = %v", res.Rows[0])
	}
	if res.Cols[0] != "code" || res.Cols[1] != "count" {
		t.Fatalf("cols = %v", res.Cols)
	}
	// ORDER BY the group column ascending, with LIMIT.
	res = db.MustExec("SELECT code, COUNT(*) FROM codes GROUP BY code ORDER BY code LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][0].(string) != "E1" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLGroupByErrors(t *testing.T) {
	db := mustOpenMem(t)
	db.MustExec("CREATE TABLE t (a TEXT, b TEXT)")
	bad := []string{
		"SELECT a FROM t GROUP BY a",                      // no COUNT(*)
		"SELECT a, b, COUNT(*) FROM t GROUP BY a",         // extra column
		"SELECT b, COUNT(*) FROM t GROUP BY a",            // projection mismatch
		"SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY b", // bad order column
		"SELECT a, COUNT(*) FROM t",                       // count mixed without group
	}
	for _, q := range bad {
		if _, _, err := db.Exec(q); err == nil {
			t.Errorf("bad SQL accepted: %q", q)
		}
	}
}

// Regression: execution errors (as opposed to parse errors) used to leave
// Exec without the reldb attribution prefix, so callers could not tell
// which layer failed (found by qatklint/errattr).
func TestSQLExecErrorsCarryAttribution(t *testing.T) {
	db := mustOpenMem(t)
	db.MustExec("CREATE TABLE t (a INT PRIMARY KEY)")
	db.MustExec("INSERT INTO t (a) VALUES (1)")
	_, _, err := db.Exec("INSERT INTO t (a) VALUES (1)") // duplicate key: runs, then fails
	if err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	if !strings.HasPrefix(err.Error(), "reldb: ") {
		t.Fatalf("execution error lacks package attribution: %v", err)
	}
}
