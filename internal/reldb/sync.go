package reldb

import (
	"fmt"
	"sync"
	"time"
)

// SyncPolicy selects when committed WAL frames are made durable with an
// fsync. It trades commit latency against the window of commits a power
// cut can lose; recovery is prefix-consistent under every policy (a
// crash never surfaces a partial or reordered transaction, only a clean
// prefix of committed ones).
type SyncPolicy int

const (
	// SyncAlways fsyncs inside every commit: a commit that returned nil
	// survives any later power cut. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval groups commits under a shared periodic fsync. A
	// commit still blocks until an fsync covers it — durability on
	// return is preserved — but concurrent committers amortize one
	// fsync between them.
	SyncInterval
	// SyncNever leaves fsync to checkpoints and the OS. A power cut may
	// lose every commit since the last checkpoint. For regenerable bulk
	// loads only.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the -db-sync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("reldb: unknown sync policy %q (want always, interval, or never)", s)
}

// committer implements group commit for SyncInterval. Commits register
// their WAL append under db.mu (noteAppend) and then block outside the
// lock (wait) until the background fsync loop has covered their
// generation; one fsync acknowledges every commit appended before it.
//
// Lock order is db.mu → c.mu; c.mu is only ever a leaf.
type committer struct {
	db       *DB
	interval time.Duration

	mu   sync.Mutex
	cond *sync.Cond
	head uint64 // generation of the latest registered append
	tail uint64 // generation covered by the latest successful fsync
	err  error  // latched group-fsync failure, reported to waiters

	quit     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

func newCommitter(db *DB, interval time.Duration) *committer {
	c := &committer{db: db, interval: interval, quit: make(chan struct{}), done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	go c.run()
	return c
}

// noteAppend registers one appended commit and returns its generation.
// Caller holds db.mu, which orders the generation with the append.
func (c *committer) noteAppend() uint64 {
	c.mu.Lock()
	c.head++
	g := c.head
	c.mu.Unlock()
	return g
}

// wait blocks until a group fsync covers generation g, or reports the
// fsync failure that latched the database instead.
func (c *committer) wait(g uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.tail < g && c.err == nil {
		c.cond.Wait()
	}
	if c.tail < g {
		return c.err
	}
	return nil
}

// coverAll marks every registered append durable — a checkpoint just
// persisted the full state, which subsumes any pending WAL fsync.
// Caller holds db.mu.
func (c *committer) coverAll() {
	c.mu.Lock()
	c.tail = c.head
	c.cond.Broadcast()
	c.mu.Unlock()
}

// stop ends the fsync loop after one final flush, so no waiter is left
// blocked. Safe to call more than once.
func (c *committer) stop() {
	c.stopOnce.Do(func() { close(c.quit) })
	<-c.done
}

func (c *committer) run() {
	defer close(c.done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-c.quit:
			c.flush()
			return
		case <-t.C:
			c.flush()
		}
	}
}

// flush fsyncs the WAL if any commit is waiting and advances tail to the
// generation the fsync covered.
func (c *committer) flush() {
	c.mu.Lock()
	pending := c.head > c.tail && c.err == nil
	c.mu.Unlock()
	if !pending {
		return
	}
	c.db.mu.Lock()
	// Appends happen under db.mu, so with db.mu held every registered
	// generation up to head is already in the WAL; re-read head here so
	// the fsync acknowledges late arrivals too.
	c.mu.Lock()
	target := c.head
	c.mu.Unlock()
	err := c.db.syncWALLocked()
	c.db.mu.Unlock()
	c.db.fireLatchTrigger()

	c.mu.Lock()
	if err != nil {
		c.err = err
	} else if target > c.tail {
		c.tail = target
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}
