package reldb

import (
	"fmt"
	"sort"
)

// CmpOp is a comparison operator in a predicate.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", uint8(op))
}

// Cond is one conjunct of a WHERE clause: Col Op Val.
type Cond struct {
	Col string
	Op  CmpOp
	Val Value
}

// Eq is shorthand for an equality condition.
func Eq(col string, val Value) Cond { return Cond{Col: col, Op: OpEq, Val: val} }

// Query describes a select over one table. Conditions are a conjunction.
type Query struct {
	Table   string
	Where   []Cond
	OrderBy string // empty = unspecified order
	Desc    bool
	Limit   int      // 0 = unlimited
	Cols    []string // projection; nil = all columns
}

// Result holds the rows produced by a query, along with their row ids and
// the projected column names.
type Result struct {
	Cols   []string
	RowIDs []int64
	Rows   []Row
}

// Select evaluates the query and returns all matching rows (copies).
func (db *DB) Select(q Query) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.selectLocked(q)
}

func (db *DB) selectLocked(q Query) (*Result, error) {
	t, ok := db.tables[q.Table]
	if !ok {
		return nil, fmt.Errorf("reldb: no such table %q", q.Table)
	}
	conds, err := resolveConds(t, q.Where)
	if err != nil {
		return nil, err
	}
	orderCol := -1
	if q.OrderBy != "" {
		orderCol = t.schema.ColIndex(q.OrderBy)
		if orderCol < 0 {
			return nil, fmt.Errorf("reldb: table %q has no column %q", q.Table, q.OrderBy)
		}
	}

	var ids []int64
	var rows []Row
	collect := func(id int64, row Row) bool {
		for _, c := range conds {
			if !c.match(row) {
				return true
			}
		}
		ids = append(ids, id)
		rows = append(rows, row)
		// Early exit only when no ordering is requested.
		return !(q.Limit > 0 && orderCol < 0 && len(rows) >= q.Limit)
	}

	if ix, eqVals := pickIndex(t, conds); ix != nil {
		for _, id := range ix.lookup(eqVals) {
			if row, ok := t.rows[id]; ok {
				if !collect(id, row) {
					break
				}
			}
		}
	} else if ix, lo, hi, loI, hiI := pickRangeIndex(t, conds); ix != nil {
		ix.scanRange(lo, hi, loI, hiI, func(id int64) bool {
			row, ok := t.rows[id]
			if !ok {
				return true
			}
			return collect(id, row)
		})
	} else {
		// Full scan in deterministic row-id order.
		allIDs := make([]int64, 0, len(t.rows))
		for id := range t.rows {
			allIDs = append(allIDs, id)
		}
		sort.Slice(allIDs, func(i, j int) bool { return allIDs[i] < allIDs[j] })
		for _, id := range allIDs {
			if !collect(id, t.rows[id]) {
				break
			}
		}
	}

	if orderCol >= 0 {
		// Sort ids and rows together so they stay aligned.
		type pair struct {
			id  int64
			row Row
		}
		pairs := make([]pair, len(rows))
		for i := range rows {
			pairs[i] = pair{ids[i], rows[i]}
		}
		sort.SliceStable(pairs, func(i, j int) bool {
			c := compareOrder(pairs[i].row[orderCol], pairs[j].row[orderCol])
			if q.Desc {
				return c > 0
			}
			return c < 0
		})
		for i := range pairs {
			ids[i], rows[i] = pairs[i].id, pairs[i].row
		}
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
		ids = ids[:q.Limit]
	}

	// Projection + defensive copies.
	outCols, proj, err := projection(&t.schema, q.Cols)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(rows))
	for i, r := range rows {
		if proj == nil {
			out[i] = r.Clone()
			continue
		}
		pr := make(Row, len(proj))
		for j, p := range proj {
			pr[j] = r[p]
		}
		out[i] = pr.Clone()
	}
	return &Result{Cols: outCols, RowIDs: ids, Rows: out}, nil
}

// SelectOne returns the single row matching the query, or ok=false when
// there is none. More than one match is an error.
func (db *DB) SelectOne(q Query) (Row, int64, bool, error) {
	q.Limit = 2
	res, err := db.Select(q)
	if err != nil {
		return nil, 0, false, err
	}
	switch len(res.Rows) {
	case 0:
		return nil, 0, false, nil
	case 1:
		return res.Rows[0], res.RowIDs[0], true, nil
	default:
		return nil, 0, false, fmt.Errorf("reldb: query on %q matched more than one row", q.Table)
	}
}

// DeleteWhere removes all rows matching the conditions, returning how many
// were deleted.
func (db *DB) DeleteWhere(tableName string, where ...Cond) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("reldb: no such table %q", tableName)
	}
	conds, err := resolveConds(t, where)
	if err != nil {
		return 0, err
	}
	var doomed []int64
	for id, row := range t.rows {
		match := true
		for _, c := range conds {
			if !c.match(row) {
				match = false
				break
			}
		}
		if match {
			doomed = append(doomed, id)
		}
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i] < doomed[j] })
	recs := make([]walRecord, 0, len(doomed))
	for _, id := range doomed {
		if err := db.deleteLocked(tableName, id); err != nil {
			return 0, err
		}
		recs = append(recs, walRecord{Op: opDelete, Table: tableName, RowID: id})
	}
	if err := db.logRecords(recs...); err != nil {
		return 0, err
	}
	return len(doomed), nil
}

// resolvedCond is a Cond with the column position resolved and the value
// coerced to the column type.
type resolvedCond struct {
	col int
	op  CmpOp
	val Value
}

func (c resolvedCond) match(row Row) bool {
	cell := row[c.col]
	if cell == nil || c.val == nil {
		// SQL-style: comparisons with NULL never match (even !=).
		return false
	}
	cmp := compareValues(cell, c.val)
	switch c.op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

func resolveConds(t *table, where []Cond) ([]resolvedCond, error) {
	out := make([]resolvedCond, 0, len(where))
	for _, c := range where {
		p := t.schema.ColIndex(c.Col)
		if p < 0 {
			return nil, fmt.Errorf("reldb: table %q has no column %q", t.schema.Name, c.Col)
		}
		v, err := coerce(t.schema.Columns[p].Type, c.Val)
		if err != nil {
			return nil, err
		}
		out = append(out, resolvedCond{col: p, op: c.Op, val: v})
	}
	return out, nil
}

// pickIndex chooses an index usable for equality lookup: the index whose
// leading columns are all covered by equality conditions, preferring the
// longest usable prefix. Returns the index and the prefix values.
func pickIndex(t *table, conds []resolvedCond) (*index, []Value) {
	eq := make(map[int]Value)
	for _, c := range conds {
		if c.op == OpEq {
			eq[c.col] = c.val
		}
	}
	if len(eq) == 0 {
		return nil, nil
	}
	var best *index
	var bestVals []Value
	names := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic choice
	for _, n := range names {
		ix := t.indexes[n]
		var vals []Value
		for _, col := range ix.cols {
			v, ok := eq[col]
			if !ok {
				break
			}
			vals = append(vals, v)
		}
		if len(vals) > len(bestVals) {
			best, bestVals = ix, vals
		}
	}
	return best, bestVals
}

// pickRangeIndex chooses an index whose first column has range conditions.
func pickRangeIndex(t *table, conds []resolvedCond) (ix *index, lo, hi Value, loIncl, hiIncl bool) {
	names := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		cand := t.indexes[n]
		first := cand.cols[0]
		var clo, chi Value
		var cloI, chiI, used bool
		for _, c := range conds {
			if c.col != first {
				continue
			}
			switch c.op {
			case OpGt:
				clo, cloI, used = c.val, false, true
			case OpGe:
				clo, cloI, used = c.val, true, true
			case OpLt:
				chi, chiI, used = c.val, false, true
			case OpLe:
				chi, chiI, used = c.val, true, true
			}
		}
		if used {
			return cand, clo, chi, cloI, chiI
		}
	}
	return nil, nil, nil, false, false
}

// Plan describes the access path Select would take for a query — the
// EXPLAIN of this engine, used to verify that the knowledge-base candidate
// retrieval really runs on the (part, feature) index (§4.3: "this
// selection is made via the indexes of the knowledge structure").
type Plan struct {
	Access string   // "index-lookup", "index-range" or "full-scan"
	Index  string   // index name, if any
	Prefix int      // number of leading index columns used (lookup only)
	Sorted bool     // whether an explicit sort step runs afterwards
	Conds  []string // rendered conditions
}

// String renders the plan in one line.
func (p Plan) String() string {
	s := p.Access
	if p.Index != "" {
		s += " " + p.Index
		if p.Prefix > 0 {
			s += fmt.Sprintf(" (prefix %d)", p.Prefix)
		}
	}
	if p.Sorted {
		s += " + sort"
	}
	return s
}

// Explain returns the access plan for a query without executing it.
func (db *DB) Explain(q Query) (Plan, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[q.Table]
	if !ok {
		return Plan{}, fmt.Errorf("reldb: no such table %q", q.Table)
	}
	conds, err := resolveConds(t, q.Where)
	if err != nil {
		return Plan{}, err
	}
	plan := Plan{Access: "full-scan", Sorted: q.OrderBy != ""}
	for _, c := range q.Where {
		plan.Conds = append(plan.Conds, fmt.Sprintf("%s %s %s", c.Col, c.Op, FormatValue(c.Val)))
	}
	if ix, eqVals := pickIndex(t, conds); ix != nil {
		plan.Access = "index-lookup"
		plan.Index = ix.name
		plan.Prefix = len(eqVals)
		return plan, nil
	}
	if ix, _, _, _, _ := pickRangeIndex(t, conds); ix != nil {
		plan.Access = "index-range"
		plan.Index = ix.name
	}
	return plan, nil
}

// compareOrder orders cells for ORDER BY; nil sorts first.
func compareOrder(a, b Value) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	return compareValues(a, b)
}
