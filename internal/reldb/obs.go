package reldb

import (
	"strconv"

	"repro/internal/obs"
)

// Metric names the storage layer emits, following the repository
// convention enforced by qatklint's metricname analyzer: snake_case,
// subsystem prefix, conventional unit suffix, declared as package-level
// constants.
const (
	// MetricWALRecordsTotal counts mutations appended to the write-ahead
	// log.
	MetricWALRecordsTotal = "reldb_wal_records_total"
	// MetricWALReplayedTotal counts records replayed from snapshot + WAL
	// during crash recovery at Open.
	MetricWALReplayedTotal = "reldb_wal_replayed_records_total"
	// MetricCheckpointsTotal counts completed snapshot checkpoints.
	MetricCheckpointsTotal = "reldb_checkpoints_total"
	// MetricFsyncSeconds observes WAL fsync latency (one observation per
	// physical fsync, so group commit shows fewer, larger syncs).
	MetricFsyncSeconds = "reldb_fsync_seconds"
	// MetricFsyncFailuresTotal counts failed WAL fsyncs; any non-zero
	// value means the database has latched and refuses writes.
	MetricFsyncFailuresTotal = "reldb_fsync_failures_total"
	// MetricWALSyncedBytesTotal counts WAL bytes made durable by
	// successful fsyncs.
	MetricWALSyncedBytesTotal = "reldb_wal_synced_bytes_total"
)

// Instrument attaches observability to an open database: WAL appends and
// checkpoints become counters, and recovery/checkpoint milestones become
// structured log lines. Open necessarily finishes recovery before any
// instrumentation can exist, so the records replayed during Open are
// surfaced here, retroactively. Either argument may be nil.
func (db *DB) Instrument(logger *obs.Logger, reg *obs.Registry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.logger = logger
	db.walRecords = reg.Counter(MetricWALRecordsTotal)
	db.checkpoints = reg.Counter(MetricCheckpointsTotal)
	db.fsyncSeconds = reg.Histogram(MetricFsyncSeconds, obs.DefBuckets)
	db.fsyncFailures = reg.Counter(MetricFsyncFailuresTotal)
	db.walSyncedBytes = reg.Counter(MetricWALSyncedBytesTotal)
	replayed := reg.Counter(MetricWALReplayedTotal)
	if db.replayed > 0 {
		replayed.Add(uint64(db.replayed))
	}
	if db.wal != nil {
		logger.Info("database recovered",
			obs.L("dir", db.dir),
			obs.L("replayed_records", strconv.Itoa(db.replayed)),
			obs.L("tables", strconv.Itoa(len(db.tables))))
	}
}
