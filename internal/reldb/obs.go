package reldb

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// Metric names the storage layer emits, following the repository
// convention enforced by qatklint's metricname analyzer: snake_case,
// subsystem prefix, conventional unit suffix, declared as package-level
// constants.
const (
	// MetricWALRecordsTotal counts mutations appended to the write-ahead
	// log.
	MetricWALRecordsTotal = "reldb_wal_records_total"
	// MetricWALReplayedTotal counts records replayed from snapshot + WAL
	// during crash recovery at Open.
	MetricWALReplayedTotal = "reldb_wal_replayed_records_total"
	// MetricCheckpointsTotal counts completed snapshot checkpoints.
	MetricCheckpointsTotal = "reldb_checkpoints_total"
	// MetricFsyncSeconds observes WAL fsync latency (one observation per
	// physical fsync, so group commit shows fewer, larger syncs).
	MetricFsyncSeconds = "reldb_fsync_seconds"
	// MetricFsyncFailuresTotal counts failed WAL fsyncs; any non-zero
	// value means the database has latched and refuses writes.
	MetricFsyncFailuresTotal = "reldb_fsync_failures_total"
	// MetricWALSyncedBytesTotal counts WAL bytes made durable by
	// successful fsyncs.
	MetricWALSyncedBytesTotal = "reldb_wal_synced_bytes_total"
)

// Instrument attaches observability to an open database: WAL appends and
// checkpoints become counters, and recovery/checkpoint milestones become
// structured log lines. Open necessarily finishes recovery before any
// instrumentation can exist, so the records replayed during Open are
// surfaced here, retroactively. Either argument may be nil.
func (db *DB) Instrument(logger *obs.Logger, reg *obs.Registry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.logger = logger
	db.walRecords = reg.Counter(MetricWALRecordsTotal)
	db.checkpoints = reg.Counter(MetricCheckpointsTotal)
	db.fsyncSeconds = reg.Histogram(MetricFsyncSeconds, obs.DefBuckets)
	db.fsyncFailures = reg.Counter(MetricFsyncFailuresTotal)
	db.walSyncedBytes = reg.Counter(MetricWALSyncedBytesTotal)
	replayed := reg.Counter(MetricWALReplayedTotal)
	if db.replayed > 0 {
		replayed.Add(uint64(db.replayed))
	}
	if db.wal != nil {
		logger.Info("database recovered",
			obs.L("dir", db.dir),
			obs.L("replayed_records", strconv.Itoa(db.replayed)),
			obs.L("tables", strconv.Itoa(len(db.tables))))
	}
}

// WithFlight attaches the black-box flight recorder: a latched fsync
// failure triggers a diagnostic bundle (fired outside db.mu — see
// fireLatchTrigger), and the database registers a "reldb" info provider
// so every bundle, whatever its trigger, embeds the WAL/sync state.
// Nil-safe on both sides.
func (db *DB) WithFlight(fr *flight.Recorder) {
	if db == nil {
		return
	}
	db.flightMu.Lock()
	db.flightRec = fr
	db.flightMu.Unlock()
	fr.AddInfo("reldb", db.FlightInfo)
}

// FlightInfo reports the storage state embedded in diagnostic bundles.
// Safe to call from any goroutine.
func (db *DB) FlightInfo() map[string]string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	info := map[string]string{
		"sync_policy":      db.opts.Sync.String(),
		"tables":           strconv.Itoa(len(db.tables)),
		"generation":       strconv.FormatUint(db.gen, 10),
		"replayed_records": strconv.Itoa(db.replayed),
	}
	if db.dir == "" {
		info["mode"] = "memory"
	} else {
		info["dir"] = db.dir
	}
	if db.opts.Sync == SyncInterval {
		info["sync_interval"] = db.opts.SyncEvery.String()
	}
	if db.wal != nil {
		info["wal_unsynced_bytes"] = strconv.FormatInt(db.wal.unsynced, 10)
	}
	if db.failed != nil {
		info["latched_error"] = db.failed.Error()
	}
	return info
}
