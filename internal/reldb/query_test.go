package reldb

import (
	"testing"
)

// fixture builds a table of error-code rows resembling the QATK result
// tables, with a non-unique index on part.
func fixture(t *testing.T) *DB {
	t.Helper()
	db := mustOpenMem(t)
	schema := Schema{
		Name: "codes",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "part", Type: TString, NotNull: true},
			{Name: "code", Type: TString, NotNull: true},
			{Name: "score", Type: TFloat},
		},
		PrimaryKey: "id",
	}
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("codes", "ix_part", false, "part"); err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{nil, "P1", "E100", 0.9},
		{nil, "P1", "E200", 0.5},
		{nil, "P2", "E100", 0.7},
		{nil, "P2", "E300", 0.2},
		{nil, "P3", "E400", 0.4},
		{nil, "P1", "E300", 0.1},
	}
	for _, r := range rows {
		if _, err := db.Insert("codes", r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestSelectAll(t *testing.T) {
	db := fixture(t)
	res, err := db.Select(Query{Table: "codes"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(res.Rows))
	}
	if len(res.Cols) != 4 || res.Cols[1] != "part" {
		t.Fatalf("cols = %v", res.Cols)
	}
}

func TestSelectEqUsesIndex(t *testing.T) {
	db := fixture(t)
	res, err := db.Select(Query{Table: "codes", Where: []Cond{Eq("part", "P1")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].(string) != "P1" {
			t.Fatalf("row %v does not match predicate", r)
		}
	}
}

func TestSelectConjunction(t *testing.T) {
	db := fixture(t)
	res, err := db.Select(Query{Table: "codes", Where: []Cond{
		Eq("part", "P1"),
		{Col: "score", Op: OpGt, Val: 0.3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (E100, E200)", len(res.Rows))
	}
}

func TestSelectOrderByDescLimit(t *testing.T) {
	db := fixture(t)
	res, err := db.Select(Query{Table: "codes", Where: []Cond{Eq("part", "P1")},
		OrderBy: "score", Desc: true, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	if res.Rows[0][2].(string) != "E100" || res.Rows[1][2].(string) != "E200" {
		t.Fatalf("order wrong: %v", res.Rows)
	}
}

func TestSelectOrderAsc(t *testing.T) {
	db := fixture(t)
	res, err := db.Select(Query{Table: "codes", OrderBy: "score"})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, r := range res.Rows {
		s := r[3].(float64)
		if s < prev {
			t.Fatalf("not ascending: %v", res.Rows)
		}
		prev = s
	}
}

func TestSelectProjection(t *testing.T) {
	db := fixture(t)
	res, err := db.Select(Query{Table: "codes", Cols: []string{"code", "score"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 || res.Cols[0] != "code" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if len(res.Rows[0]) != 2 {
		t.Fatalf("row arity = %d", len(res.Rows[0]))
	}
	if _, err := db.Select(Query{Table: "codes", Cols: []string{"nope"}}); err == nil {
		t.Fatal("projection of unknown column accepted")
	}
}

func TestSelectRangeOnPrimaryKey(t *testing.T) {
	db := fixture(t)
	res, err := db.Select(Query{Table: "codes", Where: []Cond{
		{Col: "id", Op: OpGe, Val: 2},
		{Col: "id", Op: OpLe, Val: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
}

func TestSelectNe(t *testing.T) {
	db := fixture(t)
	res, err := db.Select(Query{Table: "codes", Where: []Cond{{Col: "part", Op: OpNe, Val: "P1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
}

func TestSelectNullNeverMatches(t *testing.T) {
	db := fixture(t)
	// score is nullable; insert a NULL-score row.
	if _, err := db.Insert("codes", Row{nil, "P9", "E900", nil}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Select(Query{Table: "codes", Where: []Cond{{Col: "score", Op: OpNe, Val: 999.0}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r[1].(string) == "P9" {
			t.Fatal("NULL matched a comparison")
		}
	}
}

func TestSelectOne(t *testing.T) {
	db := fixture(t)
	row, id, ok, err := db.SelectOne(Query{Table: "codes", Where: []Cond{Eq("code", "E400")}})
	if err != nil || !ok {
		t.Fatalf("SelectOne: %v ok=%v", err, ok)
	}
	if row[1].(string) != "P3" || id == 0 {
		t.Fatalf("row=%v id=%d", row, id)
	}
	_, _, ok, err = db.SelectOne(Query{Table: "codes", Where: []Cond{Eq("code", "does-not-exist")}})
	if err != nil || ok {
		t.Fatalf("missing row: ok=%v err=%v", ok, err)
	}
	if _, _, _, err := db.SelectOne(Query{Table: "codes", Where: []Cond{Eq("part", "P1")}}); err == nil {
		t.Fatal("ambiguous SelectOne accepted")
	}
}

func TestDeleteWhere(t *testing.T) {
	db := fixture(t)
	n, err := db.DeleteWhere("codes", Eq("part", "P1"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("deleted %d, want 3", n)
	}
	total, _ := db.Count("codes")
	if total != 3 {
		t.Fatalf("remaining %d, want 3", total)
	}
	// Index reflects the deletion.
	res, _ := db.Select(Query{Table: "codes", Where: []Cond{Eq("part", "P1")}})
	if len(res.Rows) != 0 {
		t.Fatalf("index still returns deleted rows: %v", res.Rows)
	}
}

func TestSelectLimitWithoutOrder(t *testing.T) {
	db := fixture(t)
	res, err := db.Select(Query{Table: "codes", Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
}

func TestUpdateReflectedInIndex(t *testing.T) {
	db := fixture(t)
	res, _ := db.Select(Query{Table: "codes", Where: []Cond{Eq("code", "E400")}})
	id := res.RowIDs[0]
	row := res.Rows[0]
	row[1] = "P1" // move E400 from P3 to P1
	if err := db.Update("codes", id, row); err != nil {
		t.Fatal(err)
	}
	p1, _ := db.Select(Query{Table: "codes", Where: []Cond{Eq("part", "P1")}})
	if len(p1.Rows) != 4 {
		t.Fatalf("P1 rows = %d, want 4", len(p1.Rows))
	}
	p3, _ := db.Select(Query{Table: "codes", Where: []Cond{Eq("part", "P3")}})
	if len(p3.Rows) != 0 {
		t.Fatalf("P3 rows = %d, want 0", len(p3.Rows))
	}
}

func TestScanVisitsAll(t *testing.T) {
	db := fixture(t)
	n := 0
	if err := db.Scan("codes", func(id int64, row Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("scanned %d, want 6", n)
	}
	// Early stop.
	n = 0
	_ = db.Scan("codes", func(id int64, row Row) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early-stop scanned %d, want 2", n)
	}
}

func TestCompositeIndexPrefixLookup(t *testing.T) {
	db := fixture(t)
	if err := db.CreateIndex("codes", "ix_part_code", false, "part", "code"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Select(Query{Table: "codes", Where: []Cond{Eq("part", "P1"), Eq("code", "E300")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][2].(string) != "E300" {
		t.Fatalf("composite lookup rows = %v", res.Rows)
	}
}

func TestExplainAccessPaths(t *testing.T) {
	db := fixture(t)
	cases := []struct {
		q      Query
		access string
		index  string
	}{
		{Query{Table: "codes", Where: []Cond{Eq("part", "P1")}}, "index-lookup", "ix_part"},
		{Query{Table: "codes", Where: []Cond{Eq("id", 3)}}, "index-lookup", "pk_codes"},
		{Query{Table: "codes", Where: []Cond{{Col: "id", Op: OpGe, Val: 2}}}, "index-range", "pk_codes"},
		{Query{Table: "codes", Where: []Cond{{Col: "score", Op: OpGt, Val: 0.5}}}, "full-scan", ""},
		{Query{Table: "codes"}, "full-scan", ""},
	}
	for i, c := range cases {
		plan, err := db.Explain(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Access != c.access || plan.Index != c.index {
			t.Errorf("case %d: plan = %+v, want %s %s", i, plan, c.access, c.index)
		}
	}
	if _, err := db.Explain(Query{Table: "nope"}); err == nil {
		t.Error("explain of unknown table accepted")
	}
	// The composite index is preferred when both columns have equality conds.
	if err := db.CreateIndex("codes", "ix_part_code2", false, "part", "code"); err != nil {
		t.Fatal(err)
	}
	plan, _ := db.Explain(Query{Table: "codes", Where: []Cond{Eq("part", "P1"), Eq("code", "E100")}})
	if plan.Index != "ix_part_code2" || plan.Prefix != 2 {
		t.Errorf("composite plan = %+v", plan)
	}
	if plan.String() == "" {
		t.Error("plan string empty")
	}
}

// TestKnowledgeBaseQueriesUseIndex pins the §4.3 claim at the storage
// level: the candidate-retrieval query pattern of the knowledge base runs
// as an index lookup, not a scan.
func TestKnowledgeBaseQueriesUseIndex(t *testing.T) {
	db := fixture(t)
	if err := db.CreateIndex("codes", "ix_pf", false, "part", "code"); err != nil {
		t.Fatal(err)
	}
	plan, err := db.Explain(Query{Table: "codes", Where: []Cond{
		Eq("part", "P1"), Eq("code", "E100"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != "index-lookup" {
		t.Fatalf("candidate retrieval plan = %v", plan)
	}
}
