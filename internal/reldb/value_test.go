package reldb

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeKeyOrderInts(t *testing.T) {
	f := func(a, b int64) bool {
		ka := encodeKey(nil, a)
		kb := encodeKey(nil, b)
		return sign(bytes.Compare(ka, kb)) == sign(compareValues(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyOrderFloats(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := encodeKey(nil, a)
		kb := encodeKey(nil, b)
		return sign(bytes.Compare(ka, kb)) == sign(compareValues(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyOrderStrings(t *testing.T) {
	f := func(a, b string) bool {
		ka := encodeKey(nil, a)
		kb := encodeKey(nil, b)
		return sign(bytes.Compare(ka, kb)) == sign(compareValues(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyOrderBytesWithZeros(t *testing.T) {
	f := func(a, b []byte) bool {
		ka := encodeKey(nil, a)
		kb := encodeKey(nil, b)
		return sign(bytes.Compare(ka, kb)) == sign(compareValues(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Explicit embedded-zero cases (the escape path).
	pairs := [][2][]byte{
		{{0}, {0, 0}},
		{{0, 1}, {0, 0xFF}},
		{{1}, {1, 0}},
		{{}, {0}},
	}
	for _, p := range pairs {
		ka := encodeKey(nil, p[0])
		kb := encodeKey(nil, p[1])
		if sign(bytes.Compare(ka, kb)) != sign(compareBytes(p[0], p[1])) {
			t.Errorf("order violated for % x vs % x", p[0], p[1])
		}
	}
}

func TestEncodeKeyNilSortsFirst(t *testing.T) {
	kn := encodeKey(nil, nil)
	for _, v := range []Value{int64(math.MinInt64), -1e308, "", false, []byte{}} {
		if bytes.Compare(kn, encodeKey(nil, v)) >= 0 {
			t.Errorf("nil does not sort before %v", v)
		}
	}
}

func TestEncodeKeyNegativeZero(t *testing.T) {
	a := encodeKey(nil, math.Copysign(0, -1))
	b := encodeKey(nil, 0.0)
	if !bytes.Equal(a, b) {
		t.Error("-0.0 and +0.0 encode differently")
	}
}

func TestValueRoundTripQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool, by []byte) bool {
		if math.IsNaN(fl) {
			return true
		}
		row := Row{i, fl, s, b, by, nil}
		rec := walRecord{Op: opInsert, Table: "t", RowID: 1, Row: row}
		got, err := decodeRecord(bytes.NewReader(encodeRecord(rec)))
		if err != nil {
			return false
		}
		if got.Row[0] != i || got.Row[1] != fl || got.Row[2] != s || got.Row[3] != b || got.Row[5] != nil {
			return false
		}
		return bytes.Equal(got.Row[4].([]byte), by)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		t    ColType
		in   Value
		want Value
		ok   bool
	}{
		{TInt, 5, int64(5), true},
		{TInt, int64(5), int64(5), true},
		{TInt, "x", nil, false},
		{TFloat, 5, 5.0, true},
		{TFloat, 2.5, 2.5, true},
		{TString, "s", "s", true},
		{TString, 5, nil, false},
		{TBool, true, true, true},
		{TBytes, []byte{1}, []byte{1}, true},
		{TInt, nil, nil, true},
	}
	for i, c := range cases {
		got, err := coerce(c.t, c.in)
		if c.ok != (err == nil) {
			t.Errorf("case %d: err=%v, want ok=%v", i, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if b, isB := c.want.([]byte); isB {
			if !bytes.Equal(got.([]byte), b) {
				t.Errorf("case %d: got %v", i, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestParseColType(t *testing.T) {
	for s, want := range map[string]ColType{
		"INT": TInt, "integer": TInt, "TEXT": TString, "varchar": TString,
		"FLOAT": TFloat, "double": TFloat, "BOOL": TBool, "blob": TBytes,
	} {
		got, err := ParseColType(s)
		if err != nil || got != want {
			t.Errorf("ParseColType(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseColType("jsonb"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[string]Value{
		"NULL":    nil,
		"42":      int64(42),
		"'a''b'":  "a'b",
		"TRUE":    true,
		"FALSE":   false,
		"X'00ff'": []byte{0, 0xFF},
	}
	for want, v := range cases {
		if got := FormatValue(v); got != want {
			t.Errorf("FormatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}
