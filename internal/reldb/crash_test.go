package reldb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCrashRecoveryPrefix simulates power loss at arbitrary points in the
// write-ahead log: for every truncation length, reopening the database
// must succeed and yield a state equal to some prefix of the committed
// operations — never a corrupted or reordered state.
func TestCrashRecoveryPrefix(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(Schema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "v", Type: TString, NotNull: true},
		},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	const ops = 40
	for i := 0; i < ops; i++ {
		if _, err := db.Insert("t", Row{nil, fmt.Sprintf("v%03d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Flush without checkpoint so everything lives in the WAL, then stop
	// using this handle (simulated crash: no Close, no snapshot).
	walPath := filepath.Join(dir, walFileName)
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(walBytes) == 0 {
		t.Fatal("expected a non-empty WAL")
	}

	for cut := 0; cut <= len(walBytes); cut += 97 {
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, walFileName), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(crashDir)
		if err != nil {
			t.Fatalf("cut=%d: reopen failed: %v", cut, err)
		}
		n, err := re.Count("t")
		if err != nil {
			// The table itself may not have been created yet at this cut.
			if cut > 200 {
				t.Fatalf("cut=%d: table lost: %v", cut, err)
			}
			re.Close()
			continue
		}
		// The recovered rows must be exactly 1..n with the right values
		// (a prefix of the committed history).
		res, err := re.Select(Query{Table: "t", OrderBy: "id"})
		if err != nil {
			t.Fatalf("cut=%d: select: %v", cut, err)
		}
		if len(res.Rows) != n {
			t.Fatalf("cut=%d: count %d != rows %d", cut, n, len(res.Rows))
		}
		for i, row := range res.Rows {
			wantID, wantV := int64(i+1), fmt.Sprintf("v%03d", i)
			if row[0].(int64) != wantID || row[1].(string) != wantV {
				t.Fatalf("cut=%d: row %d = %v, want (%d, %s)", cut, i, row, wantID, wantV)
			}
		}
		re.Close()
	}
}

// walRecordOffsets parses the framing of a WAL image and returns the byte
// offset at which each record starts.
func walRecordOffsets(t *testing.T, walBytes []byte) []int {
	t.Helper()
	var offsets []int
	for off := 0; off < len(walBytes); {
		if off+8 > len(walBytes) {
			t.Fatalf("torn header at offset %d in a complete WAL", off)
		}
		offsets = append(offsets, off)
		n := int(uint32(walBytes[off]) | uint32(walBytes[off+1])<<8 |
			uint32(walBytes[off+2])<<16 | uint32(walBytes[off+3])<<24)
		off += 8 + n
	}
	return offsets
}

// TestCrashRecoveryTruncatedTail simulates power loss mid-append: a WAL
// whose final record is cut short (in its payload, in its header, or
// corrupted in place) must recover every earlier committed record and
// silently discard the partial tail.
func TestCrashRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(Schema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "v", Type: TString, NotNull: true},
		},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	const rows = 10
	for i := 0; i < rows; i++ {
		if _, err := db.Insert("t", Row{nil, fmt.Sprintf("v%03d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	offsets := walRecordOffsets(t, walBytes)
	if len(offsets) != rows+2 { // generation header + CREATE TABLE + the inserts
		t.Fatalf("WAL holds %d frames, want %d", len(offsets), rows+2)
	}
	last := offsets[len(offsets)-1]

	// checkRecovered opens a copy of the WAL cut/corrupted by mutate and
	// verifies exactly the first `want` inserts survive, values intact.
	checkRecovered := func(name string, mutate func([]byte) []byte, want int) {
		crashDir := t.TempDir()
		img := mutate(append([]byte(nil), walBytes...))
		if err := os.WriteFile(filepath.Join(crashDir, walFileName), img, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(crashDir)
		if err != nil {
			t.Fatalf("%s: reopen: %v", name, err)
		}
		defer re.Close()
		res, err := re.Select(Query{Table: "t", OrderBy: "id"})
		if err != nil {
			t.Fatalf("%s: select: %v", name, err)
		}
		if len(res.Rows) != want {
			t.Fatalf("%s: recovered %d rows, want %d", name, len(res.Rows), want)
		}
		for i, row := range res.Rows {
			if row[0].(int64) != int64(i+1) || row[1].(string) != fmt.Sprintf("v%03d", i) {
				t.Fatalf("%s: row %d = %v", name, i, row)
			}
		}
	}

	// Partial final record: cut three bytes into its payload.
	checkRecovered("payload cut", func(b []byte) []byte { return b[:last+8+3] }, rows-1)
	// Torn header: only half the length/CRC frame was written.
	checkRecovered("header cut", func(b []byte) []byte { return b[:last+4] }, rows-1)
	// Bit rot in the final payload: CRC mismatch discards the tail record.
	checkRecovered("payload corrupted", func(b []byte) []byte {
		b[last+8] ^= 0xff
		return b
	}, rows-1)
	// Control: the untouched WAL recovers everything.
	checkRecovered("intact", func(b []byte) []byte { return b }, rows)
}

// TestCrashDuringCheckpoint verifies that a leftover snapshot temp file
// (crash between snapshot write and rename) does not break recovery.
func TestCrashDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("parts", Row{nil, "a", 1.0, true}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that left a temp snapshot behind.
	if err := os.WriteFile(filepath.Join(dir, snapshotFileName+".tmp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with stale temp snapshot: %v", err)
	}
	defer re.Close()
	n, _ := re.Count("parts")
	if n != 1 {
		t.Fatalf("rows = %d, want 1", n)
	}
}
