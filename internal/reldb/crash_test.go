package reldb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCrashRecoveryPrefix simulates power loss at arbitrary points in the
// write-ahead log: for every truncation length, reopening the database
// must succeed and yield a state equal to some prefix of the committed
// operations — never a corrupted or reordered state.
func TestCrashRecoveryPrefix(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(Schema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "v", Type: TString, NotNull: true},
		},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	const ops = 40
	for i := 0; i < ops; i++ {
		if _, err := db.Insert("t", Row{nil, fmt.Sprintf("v%03d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Flush without checkpoint so everything lives in the WAL, then stop
	// using this handle (simulated crash: no Close, no snapshot).
	walPath := filepath.Join(dir, walFileName)
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(walBytes) == 0 {
		t.Fatal("expected a non-empty WAL")
	}

	for cut := 0; cut <= len(walBytes); cut += 97 {
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, walFileName), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(crashDir)
		if err != nil {
			t.Fatalf("cut=%d: reopen failed: %v", cut, err)
		}
		n, err := re.Count("t")
		if err != nil {
			// The table itself may not have been created yet at this cut.
			if cut > 200 {
				t.Fatalf("cut=%d: table lost: %v", cut, err)
			}
			re.Close()
			continue
		}
		// The recovered rows must be exactly 1..n with the right values
		// (a prefix of the committed history).
		res, err := re.Select(Query{Table: "t", OrderBy: "id"})
		if err != nil {
			t.Fatalf("cut=%d: select: %v", cut, err)
		}
		if len(res.Rows) != n {
			t.Fatalf("cut=%d: count %d != rows %d", cut, n, len(res.Rows))
		}
		for i, row := range res.Rows {
			wantID, wantV := int64(i+1), fmt.Sprintf("v%03d", i)
			if row[0].(int64) != wantID || row[1].(string) != wantV {
				t.Fatalf("cut=%d: row %d = %v, want (%d, %s)", cut, i, row, wantID, wantV)
			}
		}
		re.Close()
	}
}

// TestCrashDuringCheckpoint verifies that a leftover snapshot temp file
// (crash between snapshot write and rename) does not break recovery.
func TestCrashDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("parts", Row{nil, "a", 1.0, true}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that left a temp snapshot behind.
	if err := os.WriteFile(filepath.Join(dir, snapshotFileName+".tmp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with stale temp snapshot: %v", err)
	}
	defer re.Close()
	n, _ := re.Count("parts")
	if n != 1 {
		t.Fatalf("rows = %d, want 1", n)
	}
}
