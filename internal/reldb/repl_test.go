package reldb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vfs"
)

func mustOpenDir(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	return db
}

// drainFrames reads every complete frame currently in the log.
func drainFrames(t *testing.T, r *WALReader) []ReplFrame {
	t.Helper()
	var out []ReplFrame
	for {
		fr, err := r.Next()
		if errors.Is(err, io.EOF) || errors.Is(err, ErrTornFrame) {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, fr)
	}
}

func TestWALReaderStreamsFrames(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	defer db.Close()
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Insert("parts", Row{nil, fmt.Sprintf("p%d", i), 1.0, true}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}

	r := OpenWALReader(nil, dir)
	defer r.Close()
	frames := drainFrames(t, r)
	// Generation header + create table + 5 inserts.
	if len(frames) != 7 {
		t.Fatalf("got %d frames, want 7", len(frames))
	}
	if !frames[0].Header || frames[0].Gen != db.Generation() {
		t.Fatalf("head frame = %+v, want header frame of gen %d", frames[0], db.Generation())
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].Header {
			t.Fatalf("frame %d claims to be a header", i)
		}
		if frames[i].Start != frames[i-1].End {
			t.Fatalf("frame %d starts at %d, previous ended at %d", i, frames[i].Start, frames[i-1].End)
		}
	}

	// Applying every non-header frame to a fresh instance reproduces the
	// primary's state exactly.
	replica := mustOpenMem(t)
	for _, fr := range frames[1:] {
		if err := replica.ApplyFrame(fr.Raw); err != nil {
			t.Fatalf("ApplyFrame: %v", err)
		}
	}
	want, err := db.StateDigest()
	if err != nil {
		t.Fatalf("StateDigest: %v", err)
	}
	got, err := replica.StateDigest()
	if err != nil {
		t.Fatalf("replica StateDigest: %v", err)
	}
	if got != want {
		t.Fatalf("replica digest %s != primary digest %s", got, want)
	}
}

// TestWALReaderToleratesTornTail is the satellite regression: a torn
// final frame (the writer mid-append) must read as retryable ErrTornFrame
// — not EOF, not corruption — and resolve into the complete frame once
// the writer finishes.
func TestWALReaderToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	defer db.Close()
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := db.Insert("parts", Row{nil, "whole", 1.0, true}); err != nil {
		t.Fatalf("Insert: %v", err)
	}

	r := OpenWALReader(nil, dir)
	defer r.Close()
	complete := drainFrames(t, r)
	if len(complete) == 0 {
		t.Fatal("no complete frames before the torn tail")
	}

	// Hand-append a frame in three torn stages: partial header, full
	// header with partial payload, then the remainder.
	payload := encodeRecord(walRecord{Op: opInsert, Table: "parts", RowID: 99, Row: Row{int64(99), "torn", 2.0, false}})
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	walPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open wal for append: %v", err)
	}
	defer f.Close()

	expectTorn := func(stage string) {
		t.Helper()
		if _, err := r.Next(); !errors.Is(err, ErrTornFrame) {
			t.Fatalf("%s: Next err = %v, want ErrTornFrame", stage, err)
		}
	}
	if _, err := f.Write(hdr[:3]); err != nil {
		t.Fatalf("write partial header: %v", err)
	}
	expectTorn("3-byte header")
	if _, err := f.Write(hdr[3:]); err != nil {
		t.Fatalf("write rest of header: %v", err)
	}
	expectTorn("header only")
	if _, err := f.Write(payload[:len(payload)/2]); err != nil {
		t.Fatalf("write half payload: %v", err)
	}
	expectTorn("half payload")
	if _, err := f.Write(payload[len(payload)/2:]); err != nil {
		t.Fatalf("write rest of payload: %v", err)
	}
	fr, err := r.Next()
	if err != nil {
		t.Fatalf("Next after frame completed: %v", err)
	}
	if fr.Start != complete[len(complete)-1].End || int(fr.End-fr.Start) != 8+len(payload) {
		t.Fatalf("completed frame range [%d,%d), want [%d,%d)", fr.Start, fr.End,
			complete[len(complete)-1].End, complete[len(complete)-1].End+int64(8+len(payload)))
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next at clean end = %v, want io.EOF", err)
	}
}

// TestWALReaderConcurrentAppender runs the reader beside a live writer
// (the -race proof of the satellite fix): every committed insert must
// arrive as a complete frame, in order, with no torn read ever surfacing
// as corruption.
func TestWALReaderConcurrentAppender(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	defer db.Close()
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}

	const inserts = 200
	done := make(chan error, 1)
	go func() {
		for i := 0; i < inserts; i++ {
			if _, err := db.Insert("parts", Row{nil, fmt.Sprintf("p%d", i), float64(i), true}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	r := OpenWALReader(nil, dir)
	defer r.Close()
	replica := mustOpenMem(t)
	applied := 0
	writerDone := false
	for {
		fr, err := r.Next()
		switch {
		case err == nil:
			if fr.Header {
				continue
			}
			if err := replica.ApplyFrame(fr.Raw); err != nil {
				t.Fatalf("ApplyFrame: %v", err)
			}
			applied++
		case errors.Is(err, io.EOF) || errors.Is(err, ErrTornFrame):
			if writerDone {
				if applied >= 1+inserts { // create table + inserts
					goto drained
				}
				t.Fatalf("writer done but only %d frames applied", applied)
			}
			select {
			case werr := <-done:
				if werr != nil {
					t.Fatalf("writer: %v", werr)
				}
				writerDone = true
			default:
			}
		default:
			t.Fatalf("Next: %v", err)
		}
	}
drained:
	want, err := db.StateDigest()
	if err != nil {
		t.Fatalf("StateDigest: %v", err)
	}
	got, err := replica.StateDigest()
	if err != nil {
		t.Fatalf("replica StateDigest: %v", err)
	}
	if got != want {
		t.Fatalf("replica digest %s != primary digest %s after concurrent tail", got, want)
	}
}

// TestWALReaderDetectsReset proves the corruption arm: a checkpoint
// truncates the log under the cursor, which must surface as
// ErrCorruptFrame (re-sync), never as a silent EOF.
func TestWALReaderDetectsReset(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	defer db.Close()
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Insert("parts", Row{nil, fmt.Sprintf("p%d", i), 1.0, true}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	r := OpenWALReader(nil, dir)
	defer r.Close()
	if n := len(drainFrames(t, r)); n == 0 {
		t.Fatal("no frames before checkpoint")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("Next after checkpoint reset = %v, want ErrCorruptFrame", err)
	}
}

func TestExportStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	defer db.Close()
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if err := db.CreateIndex("parts", "by_name", false, "name"); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Insert("parts", Row{nil, fmt.Sprintf("p%d", i), float64(i), i%2 == 0}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}

	ex, err := db.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	if ex.Gen != db.Generation() {
		t.Fatalf("export gen %d, want %d", ex.Gen, db.Generation())
	}
	fi, err := os.Stat(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatalf("stat wal: %v", err)
	}
	if ex.WALOffset != fi.Size() {
		t.Fatalf("export offset %d, wal size %d", ex.WALOffset, fi.Size())
	}

	replica := mustOpenMem(t)
	for _, raw := range ex.Frames {
		if err := replica.ApplyFrame(raw); err != nil {
			t.Fatalf("ApplyFrame: %v", err)
		}
	}
	want, _ := db.StateDigest()
	got, _ := replica.StateDigest()
	if got != want {
		t.Fatalf("replica digest %s != primary digest %s", got, want)
	}
	// The export preserved auto-increment high-water marks: the next
	// insert on the replica picks the same ID the primary would.
	id, err := replica.Insert("parts", Row{nil, "next", 0, true})
	if err != nil {
		t.Fatalf("replica Insert: %v", err)
	}
	wantID, err := db.Insert("parts", Row{nil, "next", 0, true})
	if err != nil {
		t.Fatalf("primary Insert: %v", err)
	}
	if id != wantID {
		t.Fatalf("replica next id %d, primary %d", id, wantID)
	}
}

func TestExportStateInMemoryRefused(t *testing.T) {
	db := mustOpenMem(t)
	if _, err := db.ExportState(); !errors.Is(err, ErrNoWAL) {
		t.Fatalf("ExportState on in-memory db = %v, want ErrNoWAL", err)
	}
}

func TestApplyFrameRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	defer db.Close()
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := db.Insert("parts", Row{nil, "p", 1.0, true}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	r := OpenWALReader(nil, dir)
	defer r.Close()
	frames := drainFrames(t, r)
	raw := frames[len(frames)-1].Raw

	replica := mustOpenMem(t)
	if err := replica.CreateTable(partsSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	before, _ := replica.StateDigest()

	cases := map[string][]byte{
		"truncated mid-frame": raw[:len(raw)-3],
		"flipped payload bit": append(append([]byte(nil), raw[:len(raw)-1]...), raw[len(raw)-1]^0x40),
		"short frame":         raw[:5],
	}
	for name, bad := range cases {
		if err := replica.ApplyFrame(bad); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("%s: ApplyFrame = %v, want ErrCorruptFrame", name, err)
		}
	}
	after, _ := replica.StateDigest()
	if before != after {
		t.Fatal("corrupt frames mutated the replica")
	}
	// The pristine frame still applies.
	if err := replica.ApplyFrame(raw); err != nil {
		t.Fatalf("ApplyFrame(pristine): %v", err)
	}
}

func TestWALReaderThroughFaultFS(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.FaultConfig{Seed: 1})
	db, err := OpenWith("db", Options{FS: fsys})
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	defer db.Close()
	if err := db.CreateTable(partsSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := db.Insert("parts", Row{nil, "p", 1.0, true}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	r := OpenWALReader(fsys, "db")
	defer r.Close()
	frames := drainFrames(t, r)
	if len(frames) != 3 { // gen header + create + insert
		t.Fatalf("got %d frames through FaultFS, want 3", len(frames))
	}
}
