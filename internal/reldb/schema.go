package reldb

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a table.
type Column struct {
	Name    string
	Type    ColType
	NotNull bool
}

// Schema describes a table: its name, ordered columns, and optional
// single-column primary key. An INT primary key is auto-assigned on insert
// when the supplied value is nil.
type Schema struct {
	Name       string
	Columns    []Column
	PrimaryKey string
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// validate checks structural soundness of the schema.
func (s *Schema) validate() error {
	if s.Name == "" {
		return fmt.Errorf("reldb: table name must not be empty")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("reldb: table %q has no columns", s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("reldb: table %q has a column with empty name", s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("reldb: table %q has duplicate column %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		switch c.Type {
		case TInt, TFloat, TString, TBool, TBytes:
		default:
			return fmt.Errorf("reldb: table %q column %q has invalid type", s.Name, c.Name)
		}
	}
	if s.PrimaryKey != "" && s.ColIndex(s.PrimaryKey) < 0 {
		return fmt.Errorf("reldb: table %q primary key %q is not a column", s.Name, s.PrimaryKey)
	}
	return nil
}

// String renders the schema as a CREATE TABLE statement.
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", s.Name)
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
		if c.Name == s.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
		}
	}
	b.WriteString(")")
	return b.String()
}

// checkRow validates arity, types and NOT NULL constraints, returning the
// canonicalized row (with coerced cell types).
func (s *Schema) checkRow(row Row) (Row, error) {
	if len(row) != len(s.Columns) {
		return nil, fmt.Errorf("reldb: table %q expects %d columns, got %d", s.Name, len(s.Columns), len(row))
	}
	out := make(Row, len(row))
	for i, c := range s.Columns {
		v, err := coerce(c.Type, row[i])
		if err != nil {
			return nil, fmt.Errorf("reldb: table %q column %q: %w", s.Name, c.Name, err)
		}
		if v == nil && c.NotNull {
			return nil, fmt.Errorf("reldb: table %q column %q is NOT NULL", s.Name, c.Name)
		}
		out[i] = v
	}
	return out, nil
}
