package reldb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/obs"
)

// Write-ahead logging and snapshot checkpoints.
//
// Every mutation is encoded as a walRecord and appended to db.wal before
// the call returns. Checkpoint rewrites the full database state as a
// snapshot file (a stream of the same records) and truncates the log.
// Recovery replays snapshot then log; a torn record at the log tail is
// detected by CRC and discarded.

type walOp uint8

const (
	opCreateTable walOp = iota + 1
	opCreateIndex
	opInsert
	opUpdate
	opDelete
	opNextID // snapshot-only: restores a table's auto-increment high-water mark
)

type walRecord struct {
	Op     walOp
	Table  string
	Index  string
	Unique bool
	Cols   []string
	RowID  int64
	Row    Row
	Schema *Schema
}

const (
	walFileName      = "db.wal"
	snapshotFileName = "db.snapshot"
)

type wal struct {
	dir  string
	f    *os.File
	bw   *bufio.Writer
	path string
}

func openWAL(dir string) (*wal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("reldb: create dir: %w", err)
	}
	path := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("reldb: open wal: %w", err)
	}
	return &wal{dir: dir, f: f, bw: bufio.NewWriter(f), path: path}, nil
}

func (w *wal) append(recs ...walRecord) error {
	for _, r := range recs {
		payload := encodeRecord(r)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := w.bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.bw.Write(payload); err != nil {
			return err
		}
	}
	return w.bw.Flush()
}

func (w *wal) sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) truncate() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	_, err := w.f.Seek(0, io.SeekStart)
	return err
}

func (w *wal) close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// replayFile streams records from a snapshot or log file. A short or
// corrupt record at the tail terminates the replay without error (torn
// write); corruption elsewhere is indistinguishable and treated the same.
func replayFile(path string, apply func(walRecord) error) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil // clean EOF or torn header: stop
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 1<<30 {
			return nil // implausible length: torn record
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			return nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("reldb: corrupt record in %s: %w", path, err)
		}
		if err := apply(rec); err != nil {
			// Replay errors cross the package boundary through Open;
			// attribute them here (decode errors above already are).
			return fmt.Errorf("reldb: replay %s: %w", path, err)
		}
	}
}

// recover rebuilds in-memory state from snapshot + WAL. The replay count
// is kept on the DB so Instrument can surface it after Open returns.
func (db *DB) recover() error {
	apply := func(r walRecord) error {
		db.replayed++
		return db.applyRecord(r)
	}
	if err := replayFile(filepath.Join(db.dir, snapshotFileName), apply); err != nil {
		return err
	}
	return replayFile(db.wal.path, apply)
}

// applyRecord replays one logged mutation into memory (no re-logging).
func (db *DB) applyRecord(r walRecord) error {
	switch r.Op {
	case opCreateTable:
		if r.Schema == nil {
			return errors.New("create table record without schema")
		}
		if _, ok := db.tables[r.Schema.Name]; ok {
			return nil // idempotent replay
		}
		db.tables[r.Schema.Name] = newTable(*r.Schema)
		return nil
	case opCreateIndex:
		t, ok := db.tables[r.Table]
		if ok {
			if _, exists := t.indexes[r.Index]; exists {
				return nil
			}
		}
		return db.createIndexLocked(r.Table, r.Index, r.Unique, r.Cols, false)
	case opInsert:
		t, ok := db.tables[r.Table]
		if !ok {
			return fmt.Errorf("insert into unknown table %q", r.Table)
		}
		canon, err := t.schema.checkRow(r.Row)
		if err != nil {
			return err
		}
		for _, ix := range t.indexes {
			if err := ix.insert(canon, r.RowID); err != nil {
				return err
			}
		}
		t.rows[r.RowID] = canon
		if r.RowID >= t.nextID {
			t.nextID = r.RowID + 1
		}
		return nil
	case opUpdate:
		return db.updateLocked(r.Table, r.RowID, r.Row)
	case opDelete:
		return db.deleteLocked(r.Table, r.RowID)
	case opNextID:
		t, ok := db.tables[r.Table]
		if !ok {
			return fmt.Errorf("next-id record for unknown table %q", r.Table)
		}
		if r.RowID > t.nextID {
			t.nextID = r.RowID
		}
		return nil
	}
	return fmt.Errorf("unknown wal op %d", r.Op)
}

// logRecords appends mutations to the WAL (no-op for in-memory databases).
func (db *DB) logRecords(recs ...walRecord) error {
	if db.wal == nil || len(recs) == 0 {
		return nil
	}
	if err := db.wal.append(recs...); err != nil {
		return err
	}
	db.walRecords.Add(uint64(len(recs)))
	return nil
}

// checkpointLocked snapshots the full state and truncates the WAL.
// Caller holds db.mu.
func (db *DB) checkpointLocked() error {
	tmp := filepath.Join(db.dir, snapshotFileName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	write := func(r walRecord) error {
		payload := encodeRecord(r)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		_, err := bw.Write(payload)
		return err
	}
	tableNames := make([]string, 0, len(db.tables))
	for n := range db.tables {
		tableNames = append(tableNames, n)
	}
	sortStrings(tableNames)
	for _, name := range tableNames {
		t := db.tables[name]
		sc := t.schema
		if err := write(walRecord{Op: opCreateTable, Schema: &sc}); err != nil {
			f.Close()
			return err
		}
		ixNames := make([]string, 0, len(t.indexes))
		for in := range t.indexes {
			if in == pkIndexName(name) {
				continue // implicit with CREATE TABLE
			}
			ixNames = append(ixNames, in)
		}
		sortStrings(ixNames)
		for _, in := range ixNames {
			ix := t.indexes[in]
			cols := make([]string, len(ix.cols))
			for i, p := range ix.cols {
				cols[i] = t.schema.Columns[p].Name
			}
			if err := write(walRecord{Op: opCreateIndex, Table: name, Index: in, Unique: ix.unique, Cols: cols}); err != nil {
				f.Close()
				return err
			}
		}
		ids := make([]int64, 0, len(t.rows))
		for id := range t.rows {
			ids = append(ids, id)
		}
		sortInt64s(ids)
		for _, id := range ids {
			if err := write(walRecord{Op: opInsert, Table: name, RowID: id, Row: t.rows[id]}); err != nil {
				f.Close()
				return err
			}
		}
		if err := write(walRecord{Op: opNextID, Table: name, RowID: t.nextID}); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, snapshotFileName)); err != nil {
		return err
	}
	if err := db.wal.truncate(); err != nil {
		return err
	}
	db.checkpoints.Inc()
	db.logger.Info("checkpoint written", obs.L("dir", db.dir))
	return nil
}

// --- record encoding ---------------------------------------------------

func encodeRecord(r walRecord) []byte {
	var b bytes.Buffer
	b.WriteByte(byte(r.Op))
	writeString(&b, r.Table)
	writeString(&b, r.Index)
	if r.Unique {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	writeUvarint(&b, uint64(len(r.Cols)))
	for _, c := range r.Cols {
		writeString(&b, c)
	}
	writeVarint(&b, r.RowID)
	if r.Row == nil {
		b.WriteByte(0)
	} else {
		b.WriteByte(1)
		writeUvarint(&b, uint64(len(r.Row)))
		for _, v := range r.Row {
			writeValue(&b, v)
		}
	}
	if r.Schema == nil {
		b.WriteByte(0)
	} else {
		b.WriteByte(1)
		writeString(&b, r.Schema.Name)
		writeString(&b, r.Schema.PrimaryKey)
		writeUvarint(&b, uint64(len(r.Schema.Columns)))
		for _, c := range r.Schema.Columns {
			writeString(&b, c.Name)
			b.WriteByte(byte(c.Type))
			if c.NotNull {
				b.WriteByte(1)
			} else {
				b.WriteByte(0)
			}
		}
	}
	return b.Bytes()
}

func decodeRecord(p []byte) (walRecord, error) {
	var r walRecord
	br := bytes.NewReader(p)
	op, err := br.ReadByte()
	if err != nil {
		return r, err
	}
	r.Op = walOp(op)
	if r.Table, err = readString(br); err != nil {
		return r, err
	}
	if r.Index, err = readString(br); err != nil {
		return r, err
	}
	uniq, err := br.ReadByte()
	if err != nil {
		return r, err
	}
	r.Unique = uniq == 1
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return r, err
	}
	for i := uint64(0); i < ncols; i++ {
		c, err := readString(br)
		if err != nil {
			return r, err
		}
		r.Cols = append(r.Cols, c)
	}
	if r.RowID, err = binary.ReadVarint(br); err != nil {
		return r, err
	}
	hasRow, err := br.ReadByte()
	if err != nil {
		return r, err
	}
	if hasRow == 1 {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return r, err
		}
		r.Row = make(Row, n)
		for i := uint64(0); i < n; i++ {
			if r.Row[i], err = readValue(br); err != nil {
				return r, err
			}
		}
	}
	hasSchema, err := br.ReadByte()
	if err != nil {
		return r, err
	}
	if hasSchema == 1 {
		var s Schema
		if s.Name, err = readString(br); err != nil {
			return r, err
		}
		if s.PrimaryKey, err = readString(br); err != nil {
			return r, err
		}
		nc, err := binary.ReadUvarint(br)
		if err != nil {
			return r, err
		}
		for i := uint64(0); i < nc; i++ {
			var c Column
			if c.Name, err = readString(br); err != nil {
				return r, err
			}
			tb, err := br.ReadByte()
			if err != nil {
				return r, err
			}
			c.Type = ColType(tb)
			nn, err := br.ReadByte()
			if err != nil {
				return r, err
			}
			c.NotNull = nn == 1
			s.Columns = append(s.Columns, c)
		}
		r.Schema = &s
	}
	return r, nil
}

func writeUvarint(b *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	b.Write(buf[:n])
}

func writeVarint(b *bytes.Buffer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	b.Write(buf[:n])
}

func writeString(b *bytes.Buffer, s string) {
	writeUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

func readString(br *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > uint64(br.Len()) {
		return "", errors.New("string length exceeds buffer")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeValue(b *bytes.Buffer, v Value) {
	switch x := v.(type) {
	case nil:
		b.WriteByte(0)
	case int64:
		b.WriteByte(1)
		writeVarint(b, x)
	case float64:
		b.WriteByte(2)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		b.Write(buf[:])
	case string:
		b.WriteByte(3)
		writeString(b, x)
	case bool:
		b.WriteByte(4)
		if x {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	case []byte:
		b.WriteByte(5)
		writeUvarint(b, uint64(len(x)))
		b.Write(x)
	default:
		panic(fmt.Sprintf("reldb: writeValue on unsupported type %T", v))
	}
}

func readValue(br *bytes.Reader) (Value, error) {
	tag, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case 0:
		return nil, nil
	case 1:
		return binary.ReadVarint(br)
	case 2:
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	case 3:
		return readString(br)
	case 4:
		c, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		return c == 1, nil
	case 5:
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if n > uint64(br.Len()) {
			return nil, errors.New("bytes length exceeds buffer")
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	return nil, fmt.Errorf("unknown value tag %d", tag)
}

func sortStrings(s []string) { sort.Strings(s) }

func sortInt64s(s []int64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
