package reldb

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	iofs "io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/obs"
	"repro/internal/vfs"
)

// Write-ahead logging and snapshot checkpoints.
//
// Every committed mutation batch is encoded as one CRC-framed WAL frame
// holding all of the batch's records, appended to db.wal before the call
// returns; a frame is applied at recovery all-or-nothing, so a torn tail
// can never surface a partial transaction. Checkpoint rewrites the full
// database state as a snapshot file (a stream of single-record frames),
// makes it durable with an fsync plus a directory fsync across the
// rename, and resets the log. Both files carry a generation record at
// their head: a WAL whose generation does not match the snapshot's is
// stale (a crash hit the window between the snapshot rename and the log
// reset) and is skipped rather than double-applied. All file I/O goes
// through vfs.FS (enforced by qatklint/vfsonly) so the crash harness can
// enumerate every operation as a power-cut point.

type walOp uint8

const (
	opCreateTable walOp = iota + 1
	opCreateIndex
	opInsert
	opUpdate
	opDelete
	opNextID // snapshot-only: restores a table's auto-increment high-water mark
	opGen    // head-of-file only: the snapshot generation the file belongs to
)

type walRecord struct {
	Op     walOp
	Table  string
	Index  string
	Unique bool
	Cols   []string
	RowID  int64
	Row    Row
	Schema *Schema
}

const (
	walFileName         = "db.wal"
	snapshotFileName    = "db.snapshot"
	snapshotTmpFileName = snapshotFileName + ".tmp"
)

type wal struct {
	fs   vfs.FS
	dir  string
	f    vfs.File
	bw   *bufio.Writer
	path string

	gen           uint64 // generation stamped into the next header
	headerPending bool   // write an opGen frame before the next append
	unsynced      int64  // bytes appended since the last successful sync
}

// openWAL opens (creating if needed) the log file. A freshly created WAL
// gets its directory entry made durable immediately: a log that vanishes
// with its first power cut could silently lose every commit.
func openWAL(fsys vfs.FS, dir string) (*wal, error) {
	path := filepath.Join(dir, walFileName)
	_, statErr := fsys.Stat(path)
	created := errors.Is(statErr, iofs.ErrNotExist)
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("reldb: open wal: %w", err)
	}
	if created {
		if err := fsys.SyncDir(dir); err != nil {
			f.Close()
			return nil, fmt.Errorf("reldb: sync dir after wal create: %w", err)
		}
	}
	return &wal{fs: fsys, dir: dir, f: f, bw: bufio.NewWriter(f), path: path}, nil
}

// size reports the current length of the log file.
func (w *wal) size() (int64, error) {
	fi, err := w.fs.Stat(w.path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// armHeader schedules an opGen frame carrying gen to be written before
// the next appended frame. Only valid on an empty log.
func (w *wal) armHeader(gen uint64) {
	w.gen = gen
	w.headerPending = true
}

// writeFrame frames one payload with its length and CRC.
func (w *wal) writeFrame(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.unsynced += int64(len(hdr)) + int64(len(payload))
	return nil
}

// append writes one atomic batch of records as a single frame (plus the
// pending generation header, if armed) and flushes to the file.
func (w *wal) append(recs ...walRecord) error {
	if w.headerPending {
		w.headerPending = false
		if err := w.writeFrame(encodeRecord(walRecord{Op: opGen, RowID: int64(w.gen)})); err != nil {
			return err
		}
	}
	var payload bytes.Buffer
	for _, r := range recs {
		payload.Write(encodeRecord(r))
	}
	if err := w.writeFrame(payload.Bytes()); err != nil {
		return err
	}
	return w.bw.Flush()
}

// sync makes every appended frame durable.
func (w *wal) sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// truncateTo cuts the log to n bytes (discarding a torn or stale tail)
// and fsyncs so the shortened log is durable — otherwise a power cut
// could resurrect the discarded bytes.
func (w *wal) truncateTo(n int64) error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(n); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.unsynced = 0
	return nil
}

// reset empties the log after a checkpoint and arms the new generation
// header.
func (w *wal) reset(gen uint64) error {
	if err := w.truncateTo(0); err != nil {
		return err
	}
	w.armHeader(gen)
	return nil
}

func (w *wal) close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// errStopReplay is the internal sentinel an apply callback returns to end
// a replay early without error (e.g. a stale-generation WAL).
var errStopReplay = errors.New("reldb: stop replay")

// replayFile streams records from a snapshot or log file, calling apply
// for every record of every intact frame and returning the byte length of
// the valid prefix. A short or corrupt frame at the tail terminates the
// replay without error (torn write); corruption elsewhere is
// indistinguishable and treated the same.
func replayFile(fsys vfs.FS, path string, apply func(walRecord) error) (int64, error) {
	f, err := vfs.Open(fsys, path)
	if errors.Is(err, iofs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	valid := int64(0)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return valid, nil // clean EOF or torn header: stop
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 1<<30 {
			return valid, nil // implausible length: torn frame
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return valid, nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			return valid, nil
		}
		pr := bytes.NewReader(payload)
		for pr.Len() > 0 {
			rec, err := decodeRecord(pr)
			if err != nil {
				return valid, fmt.Errorf("reldb: corrupt record in %s: %w", path, err)
			}
			if err := apply(rec); err != nil {
				if errors.Is(err, errStopReplay) {
					return valid, errStopReplay
				}
				// Replay errors cross the package boundary through Open;
				// attribute them here (decode errors above already are).
				return valid, fmt.Errorf("reldb: replay %s: %w", path, err)
			}
		}
		valid += 8 + int64(n)
	}
}

// recover rebuilds in-memory state from snapshot + WAL and returns the
// length of the WAL's valid prefix (the tail beyond it is torn or stale
// and must be truncated before further appends). The replay count is
// kept on the DB so Instrument can surface it after Open returns.
func (db *DB) recover() (walValid int64, err error) {
	snapGen := uint64(0)
	firstSnap := true
	applySnap := func(r walRecord) error {
		if firstSnap {
			firstSnap = false
			if r.Op == opGen {
				snapGen = uint64(r.RowID)
				return nil
			}
		}
		if r.Op == opGen {
			return errors.New("generation record not at head of snapshot")
		}
		db.replayed++
		return db.applyRecord(r)
	}
	if _, err := replayFile(db.fs, filepath.Join(db.dir, snapshotFileName), applySnap); err != nil {
		return 0, err
	}
	db.gen = snapGen

	firstWAL := true
	applyWAL := func(r walRecord) error {
		if firstWAL {
			firstWAL = false
			if r.Op == opGen {
				if uint64(r.RowID) != snapGen {
					// The log predates the snapshot: a crash hit the window
					// between the snapshot rename and the log reset. Its
					// records are already folded into the snapshot; replaying
					// them would double-apply.
					db.staleWAL = true
					return errStopReplay
				}
				return nil
			}
			// Legacy log without a generation header: generation zero.
			if snapGen != 0 {
				db.staleWAL = true
				return errStopReplay
			}
		}
		if r.Op == opGen {
			return errors.New("generation record not at head of wal")
		}
		db.replayed++
		return db.applyRecord(r)
	}
	walValid, err = replayFile(db.fs, db.wal.path, applyWAL)
	if errors.Is(err, errStopReplay) {
		return 0, nil // stale WAL: valid prefix is empty, reset it entirely
	}
	return walValid, err
}

// applyRecord replays one logged mutation into memory (no re-logging).
func (db *DB) applyRecord(r walRecord) error {
	switch r.Op {
	case opCreateTable:
		if r.Schema == nil {
			return errors.New("create table record without schema")
		}
		if _, ok := db.tables[r.Schema.Name]; ok {
			return nil // idempotent replay
		}
		db.tables[r.Schema.Name] = newTable(*r.Schema)
		return nil
	case opCreateIndex:
		t, ok := db.tables[r.Table]
		if ok {
			if _, exists := t.indexes[r.Index]; exists {
				return nil
			}
		}
		return db.createIndexLocked(r.Table, r.Index, r.Unique, r.Cols, false)
	case opInsert:
		t, ok := db.tables[r.Table]
		if !ok {
			return fmt.Errorf("insert into unknown table %q", r.Table)
		}
		canon, err := t.schema.checkRow(r.Row)
		if err != nil {
			return err
		}
		for _, ix := range t.indexes {
			if err := ix.insert(canon, r.RowID); err != nil {
				return err
			}
		}
		t.rows[r.RowID] = canon
		if r.RowID >= t.nextID {
			t.nextID = r.RowID + 1
		}
		return nil
	case opUpdate:
		return db.updateLocked(r.Table, r.RowID, r.Row)
	case opDelete:
		return db.deleteLocked(r.Table, r.RowID)
	case opNextID:
		t, ok := db.tables[r.Table]
		if !ok {
			return fmt.Errorf("next-id record for unknown table %q", r.Table)
		}
		if r.RowID > t.nextID {
			t.nextID = r.RowID
		}
		return nil
	}
	return fmt.Errorf("unknown wal op %d", r.Op)
}

// logRecords appends one atomic batch of mutations to the WAL (no-op for
// in-memory databases) and, under SyncAlways, makes it durable before
// returning. Append and sync failures latch the database. Caller holds
// db.mu.
func (db *DB) logRecords(recs ...walRecord) error {
	if db.wal == nil || len(recs) == 0 {
		return nil
	}
	if err := db.wal.append(recs...); err != nil {
		db.latchLocked(err)
		return fmt.Errorf("reldb: wal append: %w", err)
	}
	db.walRecords.Add(uint64(len(recs)))
	if db.opts.Sync == SyncAlways {
		return db.syncWALLocked()
	}
	return nil
}

// writeStateLocked streams the full database state as snapshot records in
// deterministic order. Caller holds db.mu (read or write).
func (db *DB) writeStateLocked(write func(walRecord) error) error {
	tableNames := make([]string, 0, len(db.tables))
	for n := range db.tables {
		tableNames = append(tableNames, n)
	}
	sortStrings(tableNames)
	for _, name := range tableNames {
		t := db.tables[name]
		sc := t.schema
		if err := write(walRecord{Op: opCreateTable, Schema: &sc}); err != nil {
			return err
		}
		ixNames := make([]string, 0, len(t.indexes))
		for in := range t.indexes {
			if in == pkIndexName(name) {
				continue // implicit with CREATE TABLE
			}
			ixNames = append(ixNames, in)
		}
		sortStrings(ixNames)
		for _, in := range ixNames {
			ix := t.indexes[in]
			cols := make([]string, len(ix.cols))
			for i, p := range ix.cols {
				cols[i] = t.schema.Columns[p].Name
			}
			if err := write(walRecord{Op: opCreateIndex, Table: name, Index: in, Unique: ix.unique, Cols: cols}); err != nil {
				return err
			}
		}
		ids := make([]int64, 0, len(t.rows))
		for id := range t.rows {
			ids = append(ids, id)
		}
		sortInt64s(ids)
		for _, id := range ids {
			if err := write(walRecord{Op: opInsert, Table: name, RowID: id, Row: t.rows[id]}); err != nil {
				return err
			}
		}
		if err := write(walRecord{Op: opNextID, Table: name, RowID: t.nextID}); err != nil {
			return err
		}
	}
	return nil
}

// checkpointLocked snapshots the full state and resets the WAL. The
// sequence is crash-ordered: tmp snapshot written and fsynced, renamed
// over the live snapshot, the rename made durable with a directory fsync,
// and only then the WAL truncated (itself fsynced). A power cut anywhere
// in between recovers to exactly the pre- or post-checkpoint state; the
// generation stamps keep a surviving pre-checkpoint WAL from being
// replayed onto the new snapshot. Caller holds db.mu.
func (db *DB) checkpointLocked() error {
	if err := db.writableLocked(); err != nil {
		return err
	}
	newGen := db.gen + 1
	tmp := filepath.Join(db.dir, snapshotTmpFileName)
	f, err := vfs.Create(db.fs, tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	write := func(r walRecord) error {
		payload := encodeRecord(r)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		_, err := bw.Write(payload)
		return err
	}
	if err := write(walRecord{Op: opGen, RowID: int64(newGen)}); err != nil {
		f.Close()
		return err
	}
	if err := db.writeStateLocked(write); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		db.latchLocked(err)
		return fmt.Errorf("reldb: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := db.fs.Rename(tmp, filepath.Join(db.dir, snapshotFileName)); err != nil {
		return err
	}
	// From here on the new snapshot is (or may be) live; failures leave
	// the on-disk sequencing uncertain, so they latch the database.
	if err := db.fs.SyncDir(db.dir); err != nil {
		db.latchLocked(err)
		return fmt.Errorf("reldb: sync dir after snapshot rename: %w", err)
	}
	if err := db.wal.reset(newGen); err != nil {
		db.latchLocked(err)
		return fmt.Errorf("reldb: wal reset after checkpoint: %w", err)
	}
	db.gen = newGen
	if db.committer != nil {
		// The snapshot persisted every pending commit; release waiters.
		db.committer.coverAll()
	}
	db.checkpoints.Inc()
	db.logger.Info("checkpoint written", obs.L("dir", db.dir))
	return nil
}

// StateDigest returns a SHA-256 digest of the full logical database
// state (schemas, indexes, rows, auto-increment high-water marks) in the
// same deterministic order a checkpoint would write it. Two databases
// with equal digests hold identical state; the crash harness uses this
// to check recovered state against the per-commit digest trail.
func (db *DB) StateDigest() (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	h := sha256.New()
	err := db.writeStateLocked(func(r walRecord) error {
		h.Write(encodeRecord(r))
		return nil
	})
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// --- record encoding ---------------------------------------------------

func encodeRecord(r walRecord) []byte {
	var b bytes.Buffer
	b.WriteByte(byte(r.Op))
	writeString(&b, r.Table)
	writeString(&b, r.Index)
	if r.Unique {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	writeUvarint(&b, uint64(len(r.Cols)))
	for _, c := range r.Cols {
		writeString(&b, c)
	}
	writeVarint(&b, r.RowID)
	if r.Row == nil {
		b.WriteByte(0)
	} else {
		b.WriteByte(1)
		writeUvarint(&b, uint64(len(r.Row)))
		for _, v := range r.Row {
			writeValue(&b, v)
		}
	}
	if r.Schema == nil {
		b.WriteByte(0)
	} else {
		b.WriteByte(1)
		writeString(&b, r.Schema.Name)
		writeString(&b, r.Schema.PrimaryKey)
		writeUvarint(&b, uint64(len(r.Schema.Columns)))
		for _, c := range r.Schema.Columns {
			writeString(&b, c.Name)
			b.WriteByte(byte(c.Type))
			if c.NotNull {
				b.WriteByte(1)
			} else {
				b.WriteByte(0)
			}
		}
	}
	return b.Bytes()
}

// decodeRecord consumes exactly one record from br; records are
// self-delimiting, so a frame holding a whole transaction decodes by
// calling decodeRecord until the reader is empty.
func decodeRecord(br *bytes.Reader) (walRecord, error) {
	var r walRecord
	op, err := br.ReadByte()
	if err != nil {
		return r, err
	}
	r.Op = walOp(op)
	if r.Table, err = readString(br); err != nil {
		return r, err
	}
	if r.Index, err = readString(br); err != nil {
		return r, err
	}
	uniq, err := br.ReadByte()
	if err != nil {
		return r, err
	}
	r.Unique = uniq == 1
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return r, err
	}
	for i := uint64(0); i < ncols; i++ {
		c, err := readString(br)
		if err != nil {
			return r, err
		}
		r.Cols = append(r.Cols, c)
	}
	if r.RowID, err = binary.ReadVarint(br); err != nil {
		return r, err
	}
	hasRow, err := br.ReadByte()
	if err != nil {
		return r, err
	}
	if hasRow == 1 {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return r, err
		}
		r.Row = make(Row, n)
		for i := uint64(0); i < n; i++ {
			if r.Row[i], err = readValue(br); err != nil {
				return r, err
			}
		}
	}
	hasSchema, err := br.ReadByte()
	if err != nil {
		return r, err
	}
	if hasSchema == 1 {
		var s Schema
		if s.Name, err = readString(br); err != nil {
			return r, err
		}
		if s.PrimaryKey, err = readString(br); err != nil {
			return r, err
		}
		nc, err := binary.ReadUvarint(br)
		if err != nil {
			return r, err
		}
		for i := uint64(0); i < nc; i++ {
			var c Column
			if c.Name, err = readString(br); err != nil {
				return r, err
			}
			tb, err := br.ReadByte()
			if err != nil {
				return r, err
			}
			c.Type = ColType(tb)
			nn, err := br.ReadByte()
			if err != nil {
				return r, err
			}
			c.NotNull = nn == 1
			s.Columns = append(s.Columns, c)
		}
		r.Schema = &s
	}
	return r, nil
}

func writeUvarint(b *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	b.Write(buf[:n])
}

func writeVarint(b *bytes.Buffer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	b.Write(buf[:n])
}

func writeString(b *bytes.Buffer, s string) {
	writeUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

func readString(br *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > uint64(br.Len()) {
		return "", errors.New("string length exceeds buffer")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeValue(b *bytes.Buffer, v Value) {
	switch x := v.(type) {
	case nil:
		b.WriteByte(0)
	case int64:
		b.WriteByte(1)
		writeVarint(b, x)
	case float64:
		b.WriteByte(2)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		b.Write(buf[:])
	case string:
		b.WriteByte(3)
		writeString(b, x)
	case bool:
		b.WriteByte(4)
		if x {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	case []byte:
		b.WriteByte(5)
		writeUvarint(b, uint64(len(x)))
		b.Write(x)
	default:
		panic(fmt.Sprintf("reldb: writeValue on unsupported type %T", v))
	}
}

func readValue(br *bytes.Reader) (Value, error) {
	tag, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case 0:
		return nil, nil
	case 1:
		return binary.ReadVarint(br)
	case 2:
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	case 3:
		return readString(br)
	case 4:
		c, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		return c == 1, nil
	case 5:
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if n > uint64(br.Len()) {
			return nil, errors.New("bytes length exceeds buffer")
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	return nil, fmt.Errorf("unknown value tag %d", tag)
}

func sortStrings(s []string) { sort.Strings(s) }

func sortInt64s(s []int64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
