package reldb

import (
	"fmt"
)

// index is a secondary (or primary) index over one or more columns.
//
// Keys are the order-preserving encodings of the indexed column values.
// For unique indexes the skip-list key is exactly that encoding; for
// non-unique indexes the row id is appended so equal column values remain
// distinct skip-list entries while still clustering in key order.
type index struct {
	name   string
	cols   []int // column positions in the table schema
	unique bool
	list   *skipList
}

func newIndex(name string, cols []int, unique bool) *index {
	return &index{name: name, cols: cols, unique: unique, list: newSkipList()}
}

// colKey encodes the indexed columns of a row.
func (ix *index) colKey(row Row) []byte {
	key := make([]byte, 0, 16*len(ix.cols))
	for _, c := range ix.cols {
		key = encodeKey(key, row[c])
	}
	return key
}

// entryKey is the skip-list key for a row: colKey for unique indexes,
// colKey plus the row id for non-unique ones.
func (ix *index) entryKey(row Row, id int64) []byte {
	key := ix.colKey(row)
	if !ix.unique {
		key = encodeKey(key, id)
	}
	return key
}

// insert adds a row to the index, enforcing uniqueness.
func (ix *index) insert(row Row, id int64) error {
	if !ix.list.insert(ix.entryKey(row, id), id) {
		return fmt.Errorf("reldb: unique index %q violated by %s", ix.name, FormatValue(row[ix.cols[0]]))
	}
	return nil
}

// remove deletes a row from the index.
func (ix *index) remove(row Row, id int64) {
	ix.list.delete(ix.entryKey(row, id))
}

// lookup finds all row ids whose indexed columns equal vals (a full-prefix
// equality match over len(vals) leading index columns).
func (ix *index) lookup(vals []Value) []int64 {
	prefix := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		prefix = encodeKey(prefix, v)
	}
	var ids []int64
	for n := ix.list.seek(prefix); n != nil && hasPrefix(n.key, prefix); n = n.next[0] {
		ids = append(ids, n.val)
	}
	return ids
}

// scanRange walks entries whose first indexed column lies within the given
// bounds (nil bound = open). fn returning false stops the scan early.
func (ix *index) scanRange(lo, hi Value, loIncl, hiIncl bool, fn func(id int64) bool) {
	var start []byte
	if lo != nil {
		start = encodeKey(nil, lo)
	}
	n := ix.list.seek(start)
	if lo != nil && !loIncl {
		// Skip all entries whose first column equals lo.
		for n != nil && hasPrefix(n.key, start) {
			n = n.next[0]
		}
	}
	var hiKey []byte
	if hi != nil {
		hiKey = encodeKey(nil, hi)
	}
	for ; n != nil; n = n.next[0] {
		if hi != nil {
			if hiIncl {
				if compareBytes(n.key, hiKey) >= 0 && !hasPrefix(n.key, hiKey) {
					return
				}
			} else if compareBytes(n.key, hiKey) >= 0 {
				return
			}
		}
		if !fn(n.val) {
			return
		}
	}
}

// scanAll walks the whole index in key order.
func (ix *index) scanAll(fn func(id int64) bool) {
	for n := ix.list.first(); n != nil; n = n.next[0] {
		if !fn(n.val) {
			return
		}
	}
}

func hasPrefix(b, prefix []byte) bool {
	if len(b) < len(prefix) {
		return false
	}
	return compareBytes(b[:len(prefix)], prefix) == 0
}
