package qatk

import (
	"strings"
	"testing"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/reldb"
)

func corpus(t testing.TB) *datagen.Corpus {
	t.Helper()
	c, err := datagen.Generate(datagen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPipelineComposition(t *testing.T) {
	c := corpus(t)
	boc := New(c.Taxonomy)
	p, err := boc.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	names := p.Engines()
	if len(names) != 3 || names[2] != "concept-annotator" {
		t.Fatalf("bag-of-concepts pipeline = %v", names)
	}
	bow := New(c.Taxonomy, WithModel(kb.BagOfWords))
	p, err = bow.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Engines()) != 2 {
		t.Fatalf("bag-of-words pipeline = %v (must skip concept annotation)", p.Engines())
	}
}

func TestTrainAndRecommend(t *testing.T) {
	c := corpus(t)
	tk := New(c.Taxonomy, WithModel(kb.BagOfWords))
	filtered := bundle.FilterMultiOccurrence(c.Bundles)
	train := filtered[:len(filtered)-50]
	test := filtered[len(filtered)-50:]

	mem, err := tk.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if mem.NodeCount() == 0 || mem.BundleCount() != len(train) {
		t.Fatalf("kb: %d nodes, %d bundles", mem.NodeCount(), mem.BundleCount())
	}
	hits := 0
	for _, b := range test {
		list, err := tk.Recommend(mem, b)
		if err != nil {
			t.Fatal(err)
		}
		if r := core.Rank(list, b.ErrorCode); r > 0 && r <= 10 {
			hits++
		}
	}
	if hits < 30 { // well above chance on 50 held-out bundles
		t.Fatalf("top-10 hits = %d of %d", hits, len(test))
	}
}

func TestTrainRejectsUnassigned(t *testing.T) {
	c := corpus(t)
	tk := New(c.Taxonomy)
	bad := []*bundle.Bundle{{RefNo: "X", PartID: "P", Reports: []bundle.Report{
		{Source: bundle.SourceMechanic, Text: "whatever"},
	}}}
	if _, err := tk.Train(bad); err == nil {
		t.Fatal("training on unassigned bundle accepted")
	}
}

func TestClassifyAndPersist(t *testing.T) {
	c := corpus(t)
	tk := New(c.Taxonomy)
	filtered := bundle.FilterMultiOccurrence(c.Bundles)
	mem, err := tk.Train(filtered[:200])
	if err != nil {
		t.Fatal(err)
	}
	db, _ := reldb.Open("")
	if err := core.CreateResultsTable(db); err != nil {
		t.Fatal(err)
	}
	// Two pending bundles, one already assigned.
	pending1 := *filtered[200]
	pending1.ErrorCode = ""
	pending2 := *filtered[201]
	pending2.ErrorCode = ""
	assigned := *filtered[202]
	n, err := tk.ClassifyAndPersist(db, mem, []*bundle.Bundle{&pending1, &pending2, &assigned})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("classified %d, want 2", n)
	}
	list, err := core.LoadRecommendations(db, pending1.RefNo, 0)
	if err != nil || len(list) == 0 {
		t.Fatalf("recommendations: %v, %v", list, err)
	}
}

func TestPersistKBRoundTrip(t *testing.T) {
	c := corpus(t)
	tk := New(c.Taxonomy)
	mem, err := tk.Train(bundle.FilterMultiOccurrence(c.Bundles)[:150])
	if err != nil {
		t.Fatal(err)
	}
	db, _ := reldb.Open("")
	if err := tk.PersistKB(db, mem); err != nil {
		t.Fatal(err)
	}
	store, err := kb.OpenDB(db)
	if err != nil {
		t.Fatal(err)
	}
	if store.NodeCount() != mem.NodeCount() {
		t.Fatalf("persisted %d nodes, want %d", store.NodeCount(), mem.NodeCount())
	}
	// The relational store drives the same classifier.
	b := bundle.FilterMultiOccurrence(c.Bundles)[0]
	viaMem, err := tk.Recommend(mem, b)
	if err != nil {
		t.Fatal(err)
	}
	viaDB, err := tk.Recommend(store, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaMem) != len(viaDB) {
		t.Fatalf("recommendation lengths differ: %d vs %d", len(viaMem), len(viaDB))
	}
	for i := range viaMem {
		if viaMem[i].Code != viaDB[i].Code {
			t.Fatalf("rank %d differs: %s vs %s", i, viaMem[i].Code, viaDB[i].Code)
		}
	}
}

func TestStopwordOption(t *testing.T) {
	c := corpus(t)
	plain := New(c.Taxonomy, WithModel(kb.BagOfWords))
	nostop := New(c.Taxonomy, WithModel(kb.BagOfWords), WithStopwordRemoval())
	b := c.Bundles[0]
	f1, err := plain.Features(b, bundle.TestSources())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := nostop.Features(b, bundle.TestSources())
	if err != nil {
		t.Fatal(err)
	}
	if len(f2) >= len(f1) {
		t.Fatalf("stopword removal did not shrink features: %d vs %d", len(f2), len(f1))
	}
}

func TestCrossValidate(t *testing.T) {
	c := corpus(t)
	tk := New(c.Taxonomy, WithModel(kb.BagOfWords))
	res, err := tk.CrossValidate(c.Bundles, 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy[1] <= 0 || res.Accuracy[25] < res.Accuracy[1] {
		t.Fatalf("accuracy = %v", res.Accuracy)
	}
	if res.KBNodes == 0 || res.TestBundles == 0 {
		t.Fatalf("result metadata = %+v", res)
	}
	if res.Variant == "" {
		t.Fatal("variant unnamed")
	}
}

func TestCrossValidateWithPreprocessing(t *testing.T) {
	c := corpus(t)
	tk := New(c.Taxonomy, WithModel(kb.BagOfWords), WithSpellNormalization(), WithStemming())
	p, err := tk.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	names := p.Engines()
	want := []string{"tokenizer", "spell-normalizer", "language-detector", "stemmer"}
	if len(names) != len(want) {
		t.Fatalf("pipeline = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("pipeline = %v, want %v", names, want)
		}
	}
	res, err := tk.CrossValidate(c.Bundles, 3, 1, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy[10] <= 0.3 {
		t.Fatalf("preprocessed accuracy collapsed: %v", res.Accuracy)
	}
}

func TestTaxonomyVocabulary(t *testing.T) {
	c := corpus(t)
	v := TaxonomyVocabulary(c.Taxonomy)
	// Contains taxonomy tokens and stopwords.
	first := c.Taxonomy.Concepts()[0]
	tok := ""
	for _, lang := range first.Languages() {
		for _, syn := range first.Synonyms[lang] {
			for _, w := range strings.Fields(strings.ToLower(syn)) {
				tok = w
			}
		}
	}
	if tok != "" && !v[tok] {
		t.Fatalf("vocabulary missing taxonomy token %q", tok)
	}
	if !v["the"] || !v["der"] {
		t.Fatal("vocabulary missing stopwords")
	}
}
