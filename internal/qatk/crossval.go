package qatk

import (
	"strconv"
	"time"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/obs"
)

// Span names opened by CrossValidate.
const (
	spanCrossValidate = "qatk.crossvalidate"
	spanFold          = "qatk.fold"
)

// CrossValidate runs the §5.1 protocol — stratified k-fold CV with
// accuracy@k — for an arbitrarily configured Toolkit, including ones using
// the optional preprocessing engines that the eval package's fixed
// variants do not cover. Singleton-code bundles are filtered exactly as in
// the paper.
func (t *Toolkit) CrossValidate(bundles []*bundle.Bundle, folds int, seed int64, ks []int) (*eval.Result, error) {
	if len(ks) == 0 {
		ks = eval.DefaultKs
	}
	filtered := bundle.FilterMultiOccurrence(bundles)
	foldIdx := eval.StratifiedFolds(filtered, folds, seed)

	// Precompute features once per bundle for both phases.
	trainFeats := make([][]string, len(filtered))
	testFeats := make([][]string, len(filtered))
	for i, b := range filtered {
		f, err := t.Features(b, bundle.TrainingSources())
		if err != nil {
			return nil, err
		}
		trainFeats[i] = f
		if f, err = t.Features(b, bundle.TestSources()); err != nil {
			return nil, err
		}
		testFeats[i] = f
	}

	res := &eval.Result{Variant: t.variantName(), Accuracy: eval.AccuracyAtK{}}
	cv := t.Tracer.Start(nil, spanCrossValidate, obs.L("variant", res.Variant))
	defer cv.End(nil)
	hits := map[int]int{}
	total := 0
	var seconds float64
	for f := 0; f < folds; f++ {
		span := t.Tracer.Start(cv, spanFold, obs.L("fold", strconv.Itoa(f)))
		inTest := make(map[int]bool, len(foldIdx[f]))
		for _, idx := range foldIdx[f] {
			inTest[idx] = true
		}
		mem := newMemoryFrom(filtered, trainFeats, inTest)
		res.KBNodes += mem.NodeCount()
		clf := core.New(mem, t.Sim)
		start := time.Now()
		for _, idx := range foldIdx[f] {
			b := filtered[idx]
			r := core.Rank(clf.Recommend(b.PartID, testFeats[idx]), b.ErrorCode)
			for _, k := range ks {
				if r > 0 && r <= k {
					hits[k]++
				}
			}
			total++
		}
		seconds += time.Since(start).Seconds()
		span.End(nil)
	}
	for _, k := range ks {
		res.Accuracy[k] = float64(hits[k]) / float64(total)
	}
	res.SecPerBundle = seconds / float64(total)
	res.TestBundles = total / folds
	res.KBNodes /= folds
	return res, nil
}

func (t *Toolkit) variantName() string {
	name := t.Model.String() + " + " + t.Sim.Name()
	if t.Stopwords {
		name += " + stopword removal"
	}
	if t.SpellNorm {
		name += " + spell normalization"
	}
	if t.Stemming {
		name += " + stemming"
	}
	return name
}

// newMemoryFrom builds a knowledge base from the non-test bundles.
func newMemoryFrom(bundles []*bundle.Bundle, feats [][]string, inTest map[int]bool) *kb.Memory {
	mem := kb.NewMemory()
	for i, b := range bundles {
		if !inTest[i] {
			mem.AddBundle(b.PartID, b.ErrorCode, feats[i])
		}
	}
	return mem
}
