// Package qatk assembles the Quality Analytics Toolkit: the UIMA-style
// analytics pipeline of Fig. 8 wired end to end — data bundle preparation,
// tokenization, language recognition, concept annotation, knowledge-base
// extraction and persistence, candidate selection, classification, and
// result persistence. It is the programmatic API that the command-line
// tools, the QUEST server and the examples build on.
package qatk

import (
	"context"
	"fmt"

	"repro/internal/annotate"
	"repro/internal/bundle"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/reldb"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
)

// Toolkit is a configured QATK instance.
type Toolkit struct {
	Taxonomy  *taxonomy.Taxonomy
	Model     kb.FeatureModel
	Sim       core.Similarity
	Stopwords bool // bag-of-words stopword removal (§5.2.2)
	SpellNorm bool // spelling normalization against the taxonomy vocabulary
	Stemming  bool // language-dependent stemming of bag-of-words features
	// Tracer records cross-validation spans (one per CV run, one per
	// fold). Nil disables tracing.
	Tracer *obs.Tracer

	annotator *annotate.ConceptAnnotator
	extractor *kb.Extractor
	vocab     textproc.Vocabulary
}

// Option configures a Toolkit.
type Option func(*Toolkit)

// WithModel selects the feature model (default: bag-of-concepts, the
// domain-specific industrial choice).
func WithModel(m kb.FeatureModel) Option { return func(t *Toolkit) { t.Model = m } }

// WithSimilarity selects the similarity measure (default: Jaccard).
func WithSimilarity(s core.Similarity) Option { return func(t *Toolkit) { t.Sim = s } }

// WithStopwordRemoval enables the bag-of-words stopword optimization.
func WithStopwordRemoval() Option { return func(t *Toolkit) { t.Stopwords = true } }

// WithSpellNormalization adds the SpellNormalizer engine to the pipeline,
// with a vocabulary built from the taxonomy's surface forms: typo'd
// concept mentions ("electiral") are repaired before annotation and
// feature extraction (§6 future work: more linguistic preprocessing).
func WithSpellNormalization() Option { return func(t *Toolkit) { t.SpellNorm = true } }

// WithStemming adds the language detector + Stemmer engines and makes the
// bag-of-words extractor use stems, conflating inflectional variants.
func WithStemming() Option { return func(t *Toolkit) { t.Stemming = true } }

// WithTracer attaches a tracer recording cross-validation spans.
func WithTracer(tr *obs.Tracer) Option { return func(t *Toolkit) { t.Tracer = tr } }

// New builds a Toolkit over a taxonomy.
func New(tax *taxonomy.Taxonomy, opts ...Option) *Toolkit {
	t := &Toolkit{
		Taxonomy: tax,
		Model:    kb.BagOfConcepts,
		Sim:      core.Jaccard{},
	}
	for _, o := range opts {
		o(t)
	}
	t.annotator = annotate.NewConceptAnnotator(tax)
	t.extractor = &kb.Extractor{Model: t.Model}
	if t.Stopwords && t.Model == kb.BagOfWords {
		t.extractor.Stopwords = textproc.NewStopwordSet()
	}
	if t.SpellNorm {
		t.vocab = TaxonomyVocabulary(tax)
		t.extractor.UseCorrections = true
	}
	if t.Stemming {
		t.extractor.UseStems = true
	}
	return t
}

// TaxonomyVocabulary collects all surface-form tokens of a taxonomy (plus
// the stopword lists) as the trusted vocabulary for spelling correction.
func TaxonomyVocabulary(tax *taxonomy.Taxonomy) textproc.Vocabulary {
	v := textproc.Vocabulary{}
	for _, c := range tax.Concepts() {
		for _, lang := range c.Languages() {
			for _, syn := range c.Synonyms[lang] {
				for _, tok := range textproc.Tokens(syn) {
					v[tok] = true
				}
			}
		}
	}
	for w := range textproc.NewStopwordSet() {
		v[w] = true
	}
	return v
}

// Pipeline returns the analysis pipeline for this configuration: tokenizer
// and language detector always, the concept annotator only for the
// domain-specific model (the domain-ignorant variant "eliminates the
// concept annotation step", §4.4).
func (t *Toolkit) Pipeline() (*pipeline.Pipeline, error) {
	engines := []pipeline.Engine{textproc.Tokenizer{}}
	if t.SpellNorm {
		engines = append(engines, textproc.SpellNormalizer{Vocab: t.vocab})
	}
	engines = append(engines, textproc.LanguageDetector{})
	if t.Stemming {
		engines = append(engines, textproc.Stemmer{})
	}
	if t.Model == kb.BagOfConcepts {
		engines = append(engines, t.annotator)
	}
	return pipeline.New(engines...)
}

// Analyze runs the pipeline over one bundle's report sources and returns
// the analyzed CAS.
func (t *Toolkit) Analyze(b *bundle.Bundle, sources []bundle.Source) (*cas.CAS, error) {
	p, err := t.Pipeline()
	if err != nil {
		return nil, err
	}
	c := b.CAS(sources...)
	if err := p.Process(c); err != nil {
		return nil, err
	}
	return c, nil
}

// Features extracts the feature set of one bundle.
func (t *Toolkit) Features(b *bundle.Bundle, sources []bundle.Source) ([]string, error) {
	c, err := t.Analyze(b, sources)
	if err != nil {
		return nil, err
	}
	return t.extractor.Features(c), nil
}

// Train builds the in-memory knowledge base from training bundles (the
// training phase of §4.4: all report sources including the final OEM
// report and the error-code description are available). The first failing
// bundle aborts training; use TrainRun for fault-isolated training over
// messy collections.
func (t *Toolkit) Train(bundles []*bundle.Bundle) (*kb.Memory, error) {
	mem, _, err := t.TrainRun(context.Background(), bundles, pipeline.RunConfig{})
	if err != nil {
		return nil, err
	}
	return mem, nil
}

// TrainRun is Train with collection-level fault isolation: bundles that
// fail an engine (or arrive without an error code) are routed to the run
// config's dead-letter consumer instead of aborting training, and the
// run's statistics are returned alongside the knowledge base. ctx cancels
// the run at a bundle boundary.
func (t *Toolkit) TrainRun(ctx context.Context, bundles []*bundle.Bundle, cfg pipeline.RunConfig) (*kb.Memory, pipeline.Stats, error) {
	p, err := t.Pipeline()
	if err != nil {
		return nil, pipeline.Stats{}, err
	}
	mem := kb.NewMemory()
	reader := bundle.NewReader(bundles, bundle.TrainingSources())
	consumer := pipeline.ConsumerFunc(func(c *cas.CAS) error {
		code := c.Metadata(bundle.MetaErrorCode)
		if code == "" {
			return fmt.Errorf("qatk: training bundle %s without error code", c.Metadata(bundle.MetaRefNo))
		}
		mem.AddBundle(c.Metadata(bundle.MetaPartID), code, t.extractor.Features(c))
		return nil
	})
	stats, err := p.RunWithConfig(ctx, reader, consumer, cfg)
	if err != nil {
		return nil, stats, err
	}
	return mem, stats, nil
}

// Classifier builds the ranked-list classifier over a knowledge base.
func (t *Toolkit) Classifier(store kb.Store) *core.Classifier {
	return core.New(store, t.Sim)
}

// Recommend classifies one bundle against a knowledge base using the
// test-phase report sources and returns the ranked error-code suggestions.
func (t *Toolkit) Recommend(store kb.Store, b *bundle.Bundle) ([]core.ScoredCode, error) {
	feats, err := t.Features(b, bundle.TestSources())
	if err != nil {
		return nil, err
	}
	return t.Classifier(store).Recommend(b.PartID, feats), nil
}

// ClassifyAndPersist classifies every bundle without an assigned error code
// and stores the scored suggestions in the database for the QUEST web app
// (application phase, §4.4 step 3c). It returns how many bundles were
// classified.
func (t *Toolkit) ClassifyAndPersist(db *reldb.DB, store kb.Store, bundles []*bundle.Bundle) (int, error) {
	n := 0
	for _, b := range bundles {
		if b.ErrorCode != "" {
			continue
		}
		list, err := t.Recommend(store, b)
		if err != nil {
			return n, fmt.Errorf("qatk: classify %s: %w", b.RefNo, err)
		}
		if err := core.SaveRecommendations(db, b.RefNo, list); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// PersistKB writes a trained knowledge base into the database (training
// phase step 3b, Knowledge Base Persistence).
func (t *Toolkit) PersistKB(db *reldb.DB, mem *kb.Memory) error {
	if err := kb.CreateTables(db); err != nil {
		return err
	}
	return kb.Persist(db, mem)
}
