package repl_test

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"repro/internal/repl"
)

// TestApplyLoopCarriesPprofLabels: a started replica's apply loop shows
// up in the debug=1 goroutine profile labeled with its replica ID and
// role, so the continuous profiler (and any pprof consumer) can
// attribute replication work per replica. The loop is labeled via
// pprof.Do, so the labels also ride into CPU samples taken while it
// runs — the goroutine dump is just the cheapest place to observe them.
func TestApplyLoopCarriesPprofLabels(t *testing.T) {
	db := newPrimary(t)
	p, err := repl.NewPrimary(db)
	if err != nil {
		t.Fatalf("new primary: %v", err)
	}
	r := newReplica(t, p, repl.Config{ID: "label-probe"})
	r.Start()
	waitFor(t, "replica ready", r.Ready)

	// The goroutine profile is a point-in-time dump; the labeled loop is
	// long-lived, but give the scheduler a few tries anyway.
	var dump string
	waitFor(t, "labeled apply loop in goroutine profile", func() bool {
		var buf bytes.Buffer
		if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
			t.Fatalf("goroutine profile: %v", err)
		}
		dump = buf.String()
		return strings.Contains(dump, `"repl_id":"label-probe"`) &&
			strings.Contains(dump, `"repl_role":"apply"`)
	})

	// The bootstrap relabel is transient (it lasts one snapshot load), so
	// only assert it indirectly: the label set is installed via pprof.Do,
	// whose scoping guarantees the bootstrap labels were visible while
	// bootstrapOnce ran. What must NOT happen is the bootstrap label
	// leaking into the steady-state loop after bootstrap finished.
	for _, line := range strings.Split(dump, "\n") {
		if strings.Contains(line, `"repl_id":"label-probe"`) &&
			strings.Contains(line, `"repl_role":"bootstrap"`) {
			t.Fatalf("bootstrap label leaked into steady-state apply loop:\n%s", line)
		}
	}

	// Stopping the replica retires the labeled goroutine.
	r.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var buf bytes.Buffer
		if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
			t.Fatalf("goroutine profile: %v", err)
		}
		if !strings.Contains(buf.String(), `"repl_id":"label-probe"`) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("stopped replica's labeled goroutine still in profile")
}
