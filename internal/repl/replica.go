package repl

import (
	"context"
	"errors"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/reldb"
	"repro/internal/vfs"
)

// Defaults for zero Config fields.
const (
	DefaultPollInterval = 2 * time.Millisecond
	DefaultRetryBackoff = 5 * time.Millisecond
	DefaultMaxBackoff   = 250 * time.Millisecond
)

// neverSynced is the apply lag reported before the first successful
// bootstrap: effectively infinite, so any staleness bound excludes the
// replica until it has state.
const neverSynced = time.Duration(1 << 62)

// Config wires a Replica.
type Config struct {
	// ID names the replica in metrics, health, and logs.
	ID string
	// Link is the transport to the primary (required).
	Link Link
	// Dir places the replica's own reldb instance behind the vfs.FS seam;
	// empty means in-memory (the default — a replica's durability story IS
	// the primary's WAL plus re-sync, so local durability is optional).
	Dir string
	// FS is the filesystem for a dir-backed replica (default the real
	// one). Sync is its durability policy.
	FS   vfs.FS
	Sync reldb.SyncPolicy
	// PollInterval is the tail cadence when caught up; RetryBackoff is the
	// initial retry delay after a link fault, doubling up to MaxBackoff.
	PollInterval time.Duration
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// MaxBatch bounds frames per ReadWAL call (0 = DefaultMaxBatch).
	MaxBatch int
	// Clock is the injected time source (default time.Now); apply lag and
	// the staleness bound are judged through it.
	Clock func() time.Time
	// Observability, nil-safe: repl_* metrics (label "replica") and
	// structured events.
	Metrics *obs.Registry
	Logger  *obs.Logger
}

// Replica tails a primary's WAL into its own reldb instance and serves
// reads from it. The apply loop runs in one goroutine between Start and
// Stop; every serving accessor (Ready, Store, ApplyLag, Generation) is
// safe for concurrent use and keeps answering during a re-sync — the old
// state is an exact, merely stale, prefix of the primary's history, so
// serving it never violates the divergence contract.
type Replica struct {
	cfg   Config
	clock func() time.Time

	lagSeconds *obs.Gauge
	frames     *obs.Counter
	bytes      *obs.Counter
	resyncs    *obs.Counter
	linkErrs   *obs.Counter
	log        *obs.Logger

	mu       sync.Mutex
	db       *reldb.DB   //qatk:guardedby mu — current applied state (nil before first bootstrap / after Crash)
	store    *kb.DBStore //qatk:guardedby mu — serving view over db (nil when db has no KB tables)
	gen      uint64      //qatk:guardedby mu — generation being tailed
	offset   int64       //qatk:guardedby mu — last-applied WAL offset (the resume point)
	synced   bool        //qatk:guardedby mu — bootstrapped and not marked for re-sync
	caughtAt time.Time   //qatk:guardedby mu — last time the tail drained to the primary's head

	runMu  sync.Mutex
	cancel context.CancelFunc //qatk:guardedby runMu
	done   chan struct{}      //qatk:guardedby runMu
}

// New builds a replica over cfg. Call Start to begin replication.
func New(cfg Config) (*Replica, error) {
	if cfg.Link == nil {
		return nil, errors.New("repl: Config.Link required")
	}
	if cfg.ID == "" {
		cfg.ID = "replica"
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Metrics == nil {
		// A nil registry hands out nil (no-op) series, but the replica's own
		// counters double as state the loop and tests read back (Resyncs);
		// keep them real even when the caller doesn't export metrics.
		cfg.Metrics = obs.NewRegistry()
	}
	label := obs.L("replica", cfg.ID)
	return &Replica{
		cfg:        cfg,
		clock:      cfg.Clock,
		lagSeconds: cfg.Metrics.Gauge(MetricApplyLagSeconds, label),
		frames:     cfg.Metrics.Counter(MetricAppliedFramesTotal, label),
		bytes:      cfg.Metrics.Counter(MetricAppliedBytesTotal, label),
		resyncs:    cfg.Metrics.Counter(MetricResyncsTotal, label),
		linkErrs:   cfg.Metrics.Counter(MetricLinkErrorsTotal, label),
		log:        cfg.Logger,
	}, nil
}

// ID reports the replica's name.
func (r *Replica) ID() string { return r.cfg.ID }

// Ready reports whether the replica can serve knowledge-base reads: it
// has bootstrapped at least once and its state carries the KB tables.
// Staleness is a separate axis, reported by ApplyLag.
func (r *Replica) Ready() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store != nil
}

// Synced reports whether the replica is bootstrapped and tailing (false
// during a pending re-sync, even while old state still serves).
func (r *Replica) Synced() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.synced
}

// Generation reports the primary generation the replica last applied.
func (r *Replica) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// Offset reports the last-applied WAL offset (the resume point).
func (r *Replica) Offset() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.offset
}

// ApplyLag reports how far the applied state trails the primary: the
// time since the tail last drained the log on a successful poll. A
// replica that never bootstrapped reports an effectively infinite lag.
func (r *Replica) ApplyLag() time.Duration {
	r.mu.Lock()
	caughtAt := r.caughtAt
	r.mu.Unlock()
	if caughtAt.IsZero() {
		return neverSynced
	}
	return r.clock().Sub(caughtAt)
}

// Store returns the replica's current serving view (nil when not Ready).
// Re-syncs swap the backing state; callers must re-fetch per query rather
// than caching the returned store.
func (r *Replica) Store() kb.Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store == nil {
		return nil
	}
	return r.store
}

// DB returns the replica's current database (digest checks, tests).
func (r *Replica) DB() *reldb.DB {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.db
}

// Resyncs reports how many full snapshot re-syncs the replica performed.
func (r *Replica) Resyncs() uint64 { return r.resyncs.Value() }

// Start launches the apply loop: bootstrap from a snapshot, then tail.
// Idempotent while running.
func (r *Replica) Start() {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	if r.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	done := make(chan struct{})
	r.done = done
	//lint:ignore qatklint/goroleak the apply loop's join is the done channel closed on exit: Stop/Crash/Close cancel ctx and block on <-done before returning
	go func() {
		defer close(done)
		// Label the apply loop so the continuous profiler's goroutine and
		// CPU profiles attribute replication work to a concrete replica
		// (debug=1 goroutine dumps show `labels: {"repl_id":..., "repl_role":...}`).
		pprof.Do(ctx, pprof.Labels("repl_id", r.cfg.ID, "repl_role", "apply"), r.run)
	}()
}

// Stop halts the apply loop and waits for it to exit. The replica keeps
// its state and keeps serving (going stale); Start resumes tailing.
func (r *Replica) Stop() {
	r.runMu.Lock()
	cancel, done := r.cancel, r.done
	r.cancel, r.done = nil, nil
	r.runMu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-done
}

// Crash models kill -9 for the chaos matrix: the apply loop halts
// mid-whatever and the replica's state is discarded without a graceful
// close, so the only way back is a full snapshot re-sync via Start.
func (r *Replica) Crash() {
	r.Stop()
	r.mu.Lock()
	r.db, r.store = nil, nil
	r.gen, r.offset = 0, 0
	r.synced = false
	r.caughtAt = time.Time{}
	r.mu.Unlock()
}

// Close stops the apply loop and releases the replica's database.
func (r *Replica) Close() {
	r.Stop()
	r.mu.Lock()
	db := r.db
	r.db, r.store = nil, nil
	r.synced = false
	r.mu.Unlock()
	if db != nil {
		db.Close()
	}
}

// sleepCtx waits d or until ctx is cancelled; false means cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// run is the apply loop: (re-)bootstrap whenever unsynced, then tail.
// Link faults back off and retry at the same offset; re-sync conditions
// (generation mismatch, corruption, local apply failure) drop back to
// bootstrap while the old state keeps serving.
func (r *Replica) run(ctx context.Context) {
	backoff := r.cfg.RetryBackoff
	for ctx.Err() == nil {
		if !r.Synced() {
			if err := r.bootstrap(ctx); err != nil {
				if ctx.Err() != nil {
					return
				}
				r.linkErrs.Inc()
				r.log.Warn("replica bootstrap failed",
					obs.L("replica", r.cfg.ID), obs.L("err", err.Error()))
				if !sleepCtx(ctx, backoff) {
					return
				}
				backoff = min(backoff*2, r.cfg.MaxBackoff)
				continue
			}
			backoff = r.cfg.RetryBackoff
		}
		err := r.tailOnce(ctx)
		switch {
		case err == nil:
			backoff = r.cfg.RetryBackoff
		case ctx.Err() != nil:
			return
		case NeedsResync(err) || errors.Is(err, reldb.ErrCorruptFrame) || errors.Is(err, reldb.ErrFailed):
			// The log moved on without us, a shipped frame failed its local
			// CRC/decode (link-level truncation), or our own instance
			// latched: the tail position is dead. Mark for re-sync; the
			// current state is a consistent stale prefix and keeps serving
			// until the fresh snapshot swaps in.
			r.resyncs.Inc()
			r.log.Warn("replica re-syncing from snapshot",
				obs.L("replica", r.cfg.ID), obs.L("err", err.Error()))
			r.mu.Lock()
			r.synced = false
			r.mu.Unlock()
		default:
			r.linkErrs.Inc()
			r.log.Warn("replication link fault; retrying from last offset",
				obs.L("replica", r.cfg.ID), obs.L("err", err.Error()))
			if !sleepCtx(ctx, backoff) {
				return
			}
			backoff = min(backoff*2, r.cfg.MaxBackoff)
		}
	}
}

// bootstrap streams a snapshot into a fresh instance and swaps it in,
// relabeling the goroutine for the duration so profiles separate the
// bulk snapshot load from steady-state tailing.
func (r *Replica) bootstrap(ctx context.Context) (err error) {
	pprof.Do(ctx, pprof.Labels("repl_id", r.cfg.ID, "repl_role", "bootstrap"), func(ctx context.Context) {
		err = r.bootstrapOnce(ctx)
	})
	return err
}

func (r *Replica) bootstrapOnce(ctx context.Context) error {
	snap, err := r.cfg.Link.Snapshot(ctx)
	if err != nil {
		return err
	}
	db, err := r.openFreshDB()
	if err != nil {
		return err
	}
	for _, raw := range snap.Frames {
		if err := db.ApplyFrame(raw); err != nil {
			db.Close()
			return err
		}
	}
	// A replicated database without the KB tables still replicates; it
	// just has nothing to serve the classifier (store stays nil).
	store, err := kb.OpenDB(db)
	if err != nil {
		store = nil
	}
	now := r.clock()
	r.mu.Lock()
	r.db, r.store = db, store
	r.gen, r.offset = snap.Gen, snap.WALOffset
	r.synced = true
	r.caughtAt = now
	r.mu.Unlock()
	r.lagSeconds.Set(0)
	r.log.Info("replica bootstrapped",
		obs.L("replica", r.cfg.ID), obs.L("gen", formatUint(snap.Gen)))
	return nil
}

// openFreshDB produces the empty instance a bootstrap fills. A dir-backed
// replica retires its live instance first and restarts from clean files;
// an in-memory replica just builds a new one (the old keeps serving until
// the swap).
func (r *Replica) openFreshDB() (*reldb.DB, error) {
	if r.cfg.Dir == "" {
		return reldb.Open("")
	}
	r.mu.Lock()
	old := r.db
	r.db, r.store = nil, nil
	r.mu.Unlock()
	if old != nil {
		old.Close()
	}
	fsys := r.cfg.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	if err := reldb.ResetDir(fsys, r.cfg.Dir); err != nil {
		return nil, err
	}
	return reldb.OpenWith(r.cfg.Dir, reldb.Options{FS: fsys, Sync: r.cfg.Sync})
}

// tailOnce pulls one batch of frames and applies them. A short batch
// means the tail drained to the primary's current head: note the
// catch-up instant (the lag reference point) and idle one poll interval.
func (r *Replica) tailOnce(ctx context.Context) error {
	r.mu.Lock()
	gen, offset, db := r.gen, r.offset, r.db
	r.mu.Unlock()
	frames, err := r.cfg.Link.ReadWAL(ctx, gen, offset, r.cfg.MaxBatch)
	if err != nil {
		return err
	}
	for _, fr := range frames {
		if err := db.ApplyFrame(fr.Raw); err != nil {
			return err
		}
		r.mu.Lock()
		r.offset = fr.End
		r.mu.Unlock()
		r.noteApplied(len(fr.Raw))
	}
	if len(frames) < r.cfg.MaxBatch {
		now := r.clock()
		r.mu.Lock()
		r.caughtAt = now
		r.mu.Unlock()
		r.lagSeconds.Set(0)
		if len(frames) == 0 {
			sleepCtx(ctx, r.cfg.PollInterval)
		}
	} else {
		r.lagSeconds.Set(r.ApplyLag().Seconds())
	}
	return nil
}

// noteApplied records one applied frame on the replication counters.
// It sits on the apply hot path and must not allocate.
//
//qatk:hotpath
func (r *Replica) noteApplied(rawBytes int) {
	r.frames.Inc()
	r.bytes.Add(uint64(rawBytes))
}

// formatUint renders a generation without fmt (log labels want strings).
func formatUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
