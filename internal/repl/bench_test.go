package repl

import (
	"context"
	"testing"

	"repro/internal/obs"
)

type nopLink struct{}

func (nopLink) Snapshot(ctx context.Context) (*Snapshot, error) { return &Snapshot{}, nil }
func (nopLink) ReadWAL(ctx context.Context, gen uint64, offset int64, max int) ([]Frame, error) {
	return nil, nil
}

// BenchmarkHotReplProgress covers the per-frame accounting on the apply
// hot path; `make bench-alloc` asserts it stays at zero allocations.
func BenchmarkHotReplProgress(b *testing.B) {
	r, err := New(Config{ID: "bench", Link: nopLink{}, Metrics: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.noteApplied(4096)
	}
	if r.frames.Value() == 0 {
		b.Fatal("counter never advanced")
	}
}
