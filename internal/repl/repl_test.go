package repl_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kb"
	"repro/internal/repl"
	"repro/internal/reldb"
)

// newPrimary opens a durable primary in a temp dir with the KB schema and
// a small persisted knowledge base.
func newPrimary(t *testing.T) *reldb.DB {
	t.Helper()
	db, err := reldb.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	if err := kb.CreateTables(db); err != nil {
		t.Fatalf("create tables: %v", err)
	}
	m := kb.NewMemory()
	m.AddBundle("P100", "E1", []string{"f1", "f2"})
	m.AddBundle("P100", "E2", []string{"f2", "f3"})
	m.AddBundle("P200", "E1", []string{"f1"})
	if err := kb.Persist(db, m); err != nil {
		t.Fatalf("persist: %v", err)
	}
	return db
}

func newReplica(t *testing.T, link repl.Link, cfg repl.Config) *repl.Replica {
	t.Helper()
	cfg.Link = link
	if cfg.ID == "" {
		cfg.ID = "r0"
	}
	r, err := repl.New(cfg)
	if err != nil {
		t.Fatalf("new replica: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

func digest(t *testing.T, db *reldb.DB) string {
	t.Helper()
	d, err := db.StateDigest()
	if err != nil {
		t.Fatalf("state digest: %v", err)
	}
	return d
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// insertNodes appends n extra knowledge nodes to the primary, each its
// own commit (its own WAL frame).
func insertNodes(t *testing.T, db *reldb.DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := db.Insert(kb.TableNodes, reldb.Row{
			nil, fmt.Sprintf("P%03d", i%7), "E9", "fx",
		}); err != nil {
			t.Fatalf("insert node: %v", err)
		}
	}
}

// converged reports whether the replica has applied everything the
// primary committed (offset caught up) — digest equality is then checked
// once, outside the polling loop, to avoid racing the writer.
func converged(t *testing.T, r *repl.Replica, primary *reldb.DB) {
	t.Helper()
	ex, err := primary.ExportState()
	if err != nil {
		t.Fatalf("export state: %v", err)
	}
	waitFor(t, "replica to converge", func() bool {
		return r.Synced() && r.Generation() == ex.Gen && r.Offset() >= ex.WALOffset
	})
	if got, want := digest(t, r.DB()), digest(t, primary); got != want {
		t.Fatalf("replica digest %s != primary %s", got, want)
	}
}

func TestReplicaBootstrapServesKB(t *testing.T) {
	db := newPrimary(t)
	p, err := repl.NewPrimary(db)
	if err != nil {
		t.Fatalf("new primary: %v", err)
	}
	r := newReplica(t, p, repl.Config{})
	r.Start()
	waitFor(t, "replica ready", r.Ready)
	converged(t, r, db)
	store := r.Store()
	if store == nil {
		t.Fatal("Ready replica returned nil store")
	}
	if got, want := store.NodeCount(), 3; got != want {
		t.Fatalf("replica NodeCount = %d, want %d", got, want)
	}
	if !store.KnownPart("P100") || store.KnownPart("P999") {
		t.Fatal("replica KnownPart disagrees with primary KB")
	}
	if lag := r.ApplyLag(); lag > time.Minute {
		t.Fatalf("fresh replica reports lag %v", lag)
	}
}

func TestReplicaRefusesInMemoryPrimary(t *testing.T) {
	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := repl.NewPrimary(db); !errors.Is(err, reldb.ErrNoWAL) {
		t.Fatalf("NewPrimary(in-memory) = %v, want ErrNoWAL", err)
	}
}

func TestReplicaTailsLiveWrites(t *testing.T) {
	db := newPrimary(t)
	p, _ := repl.NewPrimary(db)
	r := newReplica(t, p, repl.Config{})
	r.Start()
	waitFor(t, "bootstrap", r.Synced)
	insertNodes(t, db, 120)
	converged(t, r, db)
	if r.Resyncs() != 0 {
		t.Fatalf("clean tailing performed %d re-syncs", r.Resyncs())
	}
}

func TestReplicaNeverSyncedLooksInfinitelyStale(t *testing.T) {
	db := newPrimary(t)
	p, _ := repl.NewPrimary(db)
	r := newReplica(t, p, repl.Config{})
	// Never started: not ready, and lag far beyond any plausible bound.
	if r.Ready() {
		t.Fatal("unstarted replica claims Ready")
	}
	if lag := r.ApplyLag(); lag < 24*time.Hour {
		t.Fatalf("unstarted replica lag = %v, want effectively infinite", lag)
	}
	if r.Store() != nil {
		t.Fatal("unstarted replica returned a store")
	}
}

// flakyLink fails every call whose ordinal matches failEvery, proving the
// replica retries at the same offset rather than re-syncing.
type flakyLink struct {
	inner     repl.Link
	calls     atomic.Int64
	failEvery int64
}

func (f *flakyLink) Snapshot(ctx context.Context) (*repl.Snapshot, error) {
	if f.calls.Add(1)%f.failEvery == 0 {
		return nil, errors.New("flaky: snapshot dropped")
	}
	return f.inner.Snapshot(ctx)
}

func (f *flakyLink) ReadWAL(ctx context.Context, gen uint64, offset int64, max int) ([]repl.Frame, error) {
	if f.calls.Add(1)%f.failEvery == 0 {
		return nil, errors.New("flaky: link dropped")
	}
	return f.inner.ReadWAL(ctx, gen, offset, max)
}

func TestReplicaRetriesLinkFaultsAtSameOffset(t *testing.T) {
	db := newPrimary(t)
	p, _ := repl.NewPrimary(db)
	link := &flakyLink{inner: p, failEvery: 2} // every other call fails
	r := newReplica(t, link, repl.Config{RetryBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	r.Start()
	waitFor(t, "bootstrap through flaky link", r.Synced)
	insertNodes(t, db, 60)
	converged(t, r, db)
	if r.Resyncs() != 0 {
		t.Fatalf("link faults caused %d re-syncs; want retry at same offset", r.Resyncs())
	}
}

func TestReplicaResyncsAfterCheckpoint(t *testing.T) {
	db := newPrimary(t)
	p, _ := repl.NewPrimary(db)
	r := newReplica(t, p, repl.Config{})
	r.Start()
	waitFor(t, "bootstrap", r.Synced)
	insertNodes(t, db, 10)
	converged(t, r, db)

	// A checkpoint bumps the generation and resets the log; the replica's
	// tail position is dead and must come back via snapshot re-sync.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	insertNodes(t, db, 10)
	waitFor(t, "re-sync", func() bool { return r.Resyncs() >= 1 })
	converged(t, r, db)
	if got, want := r.Generation(), db.Generation(); got != want {
		t.Fatalf("replica generation %d, primary %d", got, want)
	}
}

func TestReplicaCrashRestartsFromSnapshot(t *testing.T) {
	db := newPrimary(t)
	p, _ := repl.NewPrimary(db)
	r := newReplica(t, p, repl.Config{})
	r.Start()
	waitFor(t, "bootstrap", r.Synced)
	insertNodes(t, db, 20)
	converged(t, r, db)

	r.Crash()
	if r.Ready() {
		t.Fatal("crashed replica claims Ready")
	}
	if lag := r.ApplyLag(); lag < 24*time.Hour {
		t.Fatalf("crashed replica lag = %v, want effectively infinite", lag)
	}
	insertNodes(t, db, 20) // primary moves on while the replica is down

	r.Start()
	waitFor(t, "re-bootstrap", r.Ready)
	converged(t, r, db)
}

func TestReplicaDirBackedResync(t *testing.T) {
	db := newPrimary(t)
	p, _ := repl.NewPrimary(db)
	r := newReplica(t, p, repl.Config{Dir: t.TempDir(), Sync: reldb.SyncNever})
	r.Start()
	waitFor(t, "bootstrap", r.Synced)
	insertNodes(t, db, 10)
	converged(t, r, db)

	// Force the dir-backed re-sync path: the replica must retire its live
	// instance, reset its files, and rebuild from the snapshot.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	insertNodes(t, db, 10)
	waitFor(t, "re-sync", func() bool { return r.Resyncs() >= 1 })
	converged(t, r, db)
}

func TestReplicaStopIsIdempotentAndRestartable(t *testing.T) {
	db := newPrimary(t)
	p, _ := repl.NewPrimary(db)
	r := newReplica(t, p, repl.Config{})
	r.Stop() // never started: no-op
	r.Start()
	r.Start() // idempotent while running
	waitFor(t, "bootstrap", r.Synced)
	r.Stop()
	r.Stop()
	if !r.Ready() {
		t.Fatal("stopped replica should keep serving its (stale) state")
	}
	insertNodes(t, db, 5)
	r.Start()
	converged(t, r, db)
}
