package repl_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/reqlog"
	"repro/internal/repl"
	"repro/internal/reldb"
	"repro/internal/shard"
	"repro/internal/vfs"
)

// The replication chaos matrix (acceptance criteria): for each of {link
// drop, link delay, truncate-mid-frame, replica wedge, primary fsync
// latch, replica crash mid-apply}, the router keeps answering — degraded
// or flagged stale at worst, never divergent — and every replica that
// falls behind or loses state re-syncs to a state digest equal to the
// primary's at the same generation. Faults are assigned (not drawn)
// through faults.FaultyLink modes and the vfs fault filesystem, so every
// path is asserted, not sampled.

// chaosMaxLag is the router's staleness bound in this matrix: generous
// enough that healthy 1ms-poll replicas never trip it, small enough that
// a broken link crosses it within one sleep.
const chaosMaxLag = 100 * time.Millisecond

// chaosEventsTable is a non-KB table driven by the chaos writers: its
// inserts advance the primary's WAL (so replication has real frames to
// ship, tear, and re-sync) without changing the knowledge base — every
// query stays bit-comparable to the single classifier throughout.
const chaosEventsTable = "chaos_events"

// chaosFeatures is the fixed query feature set, as in the shard matrix.
var chaosFeatures = []string{"f01", "f07", "f21", "f33"}

// linkHook mirrors the shard matrix's switchable fault hook for the
// primary-shard attempts that replicas must rescue.
type linkHook struct {
	mu sync.Mutex
	fn func(ctx context.Context, shard, attempt int) error
}

func (s *linkHook) set(fn func(ctx context.Context, shard, attempt int) error) {
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
}

func (s *linkHook) hook(ctx context.Context, shardID, attempt int) error {
	s.mu.Lock()
	fn := s.fn
	s.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(ctx, shardID, attempt)
}

// chaosKB seeds the same deterministic knowledge base the shard matrix
// uses.
func chaosKB(seed int64, parts, codes, bundles int) *kb.Memory {
	rng := rand.New(rand.NewSource(seed))
	m := kb.NewMemory()
	for i := 0; i < bundles; i++ {
		part := fmt.Sprintf("P%03d", rng.Intn(parts))
		code := fmt.Sprintf("E%03d", rng.Intn(codes))
		n := 3 + rng.Intn(6)
		set := map[string]bool{}
		for len(set) < n {
			set[fmt.Sprintf("f%02d", rng.Intn(50))] = true
		}
		features := make([]string, 0, len(set))
		for f := range set {
			features = append(features, f)
		}
		sort.Strings(features)
		m.AddBundle(part, code, features)
	}
	return m
}

// chaosRig is one replication-chaos fixture: a durable primary on the
// fault filesystem, two in-memory replicas behind independently faultable
// links, and a 4-shard router using both as hedge/failover targets.
type chaosRig struct {
	ffs      *vfs.FaultFS
	db       *reldb.DB
	src      *kb.Memory
	links    [2]*faults.FaultyLink
	reps     [2]*repl.Replica
	router   *shard.Router
	hook     *linkHook
	reg      *obs.Registry
	recorder *flight.Recorder
	reqLog   *reqlog.Log
	seq      atomic.Uint64

	ownedPart string
	owner     int
}

func newChaosRig(t *testing.T) *chaosRig {
	t.Helper()
	rig := &chaosRig{
		src:  chaosKB(7, 20, 15, 400),
		hook: &linkHook{},
		reg:  obs.NewRegistry(),
		ffs:  vfs.NewFaultFS(vfs.FaultConfig{Seed: 1}),
	}
	db, err := reldb.OpenWith("primary", reldb.Options{FS: rig.ffs, Sync: reldb.SyncAlways})
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	rig.db = db
	t.Cleanup(func() { db.Close() })
	if err := kb.CreateTables(db); err != nil {
		t.Fatalf("create tables: %v", err)
	}
	if err := db.CreateTable(reldb.Schema{
		Name: chaosEventsTable,
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.TInt},
			{Name: "note", Type: reldb.TString},
		},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatalf("create %s: %v", chaosEventsTable, err)
	}
	if err := kb.Persist(db, rig.src); err != nil {
		t.Fatalf("persist: %v", err)
	}

	p, err := repl.NewPrimary(db)
	if err != nil {
		t.Fatalf("new primary link: %v", err)
	}
	for i := range rig.reps {
		rig.links[i] = faults.NewFaultyLink(p)
		rig.reps[i] = newReplica(t, rig.links[i], repl.Config{
			ID:           fmt.Sprintf("r%d", i),
			PollInterval: time.Millisecond,
			RetryBackoff: time.Millisecond,
			MaxBackoff:   5 * time.Millisecond,
			Metrics:      rig.reg,
		})
		rig.reps[i].Start()
	}
	for _, r := range rig.reps {
		waitFor(t, r.ID()+" fresh", func() bool {
			return r.Ready() && r.ApplyLag() < chaosMaxLag
		})
	}

	rig.recorder = flight.New(flight.Config{
		Dir:         t.TempDir(),
		Registry:    rig.reg,
		MinInterval: -1, // every trigger fires; tests assert exact counts
	})
	t.Cleanup(rig.recorder.Close)
	rig.reqLog = reqlog.New(reqlog.Config{SampleAll: true})
	t.Cleanup(func() {
		path := os.Getenv("CHAOS_ARTIFACT")
		if path == "" || !t.Failed() {
			return
		}
		// The dump is a single-file flight bundle so the standard reader
		// renders it: `qatk requests <path>`.
		dump := flight.Bundle{
			Schema:   flight.BundleSchema,
			Reason:   "chaos-test-failure",
			Time:     time.Now(),
			Requests: rig.reqLog.Snapshot(),
		}
		data, err := json.MarshalIndent(dump, "", "  ")
		if err != nil {
			t.Logf("chaos artifact: marshal ring: %v", err)
			return
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Logf("chaos artifact: write %s: %v", path, err)
			return
		}
		t.Logf("chaos artifact: tail-sample ring written to %s", path)
	})

	rig.router, err = shard.New(shard.Config{
		Stores:          shard.PartitionStores(rig.src, 4),
		ShardTimeout:    30 * time.Millisecond,
		HedgeAfter:      3 * time.Millisecond,
		BreakerBudget:   2,
		BreakerCooldown: time.Second,
		Hook:            rig.hook.hook,
		Metrics:         rig.reg,
		Flight:          rig.recorder,
		Replicas:        []shard.ReplicaTarget{rig.reps[0], rig.reps[1]},
		MaxApplyLag:     chaosMaxLag,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.router.Close)

	rig.ownedPart = "P003"
	if !rig.src.KnownPart(rig.ownedPart) {
		t.Fatalf("fixture part %s not in knowledge base", rig.ownedPart)
	}
	rig.owner = kb.PartOwner(rig.ownedPart, 4)
	return rig
}

// addEvents commits n WAL frames that leave the knowledge base untouched.
func (rig *chaosRig) addEvents(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := rig.db.Insert(chaosEventsTable, reldb.Row{nil, "event"}); err != nil {
			t.Fatalf("insert chaos event: %v", err)
		}
	}
}

// query runs one router query under a generous request budget, assembling
// a wide event for the CHAOS_ARTIFACT ring dump.
func (rig *chaosRig) query(t *testing.T, part string) (*shard.Result, error) {
	t.Helper()
	budget := 2 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	b := rig.reqLog.Begin("CHAOS", t.Name())
	b.Query(part, len(chaosFeatures))
	ctx = reqlog.NewContext(ctx, b)
	start := time.Now()
	res, err := rig.router.Query(ctx, part, chaosFeatures)
	elapsed := time.Since(start)
	status := 200
	if err != nil {
		status = 503
	}
	if res != nil {
		b.Outcome(res.Degraded, res.Hedged, res.Scatter, res.FailedShards)
		b.ReplicaServed(res.Replica, res.Stale)
	}
	b.Finish(status, rig.seq.Add(1), elapsed)
	if elapsed >= budget {
		t.Fatalf("query overran the request deadline: %v >= %v", elapsed, budget)
	}
	return res, err
}

// single is the healthy single-classifier ranking every chaos answer must
// stay bit-identical to.
func (rig *chaosRig) single(part string) []core.ScoredCode {
	return core.New(rig.src, core.Jaccard{}).Recommend(part, chaosFeatures)
}

func (rig *chaosRig) bundles(reason string) uint64 {
	return rig.reg.Counter(flight.MetricFlightBundlesTotal, obs.L("reason", reason)).Value()
}

// TestChaosReplLinkDrop: with both replication links severed and every
// primary attempt failing, the router still answers from a replica — the
// answer flagged stale (the replicas missed WAL frames beyond the bound)
// but bit-identical to the healthy ranking. Healing the links converges
// both replicas back to the primary's digest with zero re-syncs: a
// dropped link is retried at the same offset, never re-bootstrapped.
func TestChaosReplLinkDrop(t *testing.T) {
	rig := newChaosRig(t)
	for _, l := range rig.links {
		l.SetMode(faults.LinkDrop)
	}
	rig.addEvents(t, 3) // the log moves on without the replicas
	time.Sleep(2 * chaosMaxLag)
	rig.hook.set(func(ctx context.Context, shard, attempt int) error {
		return errors.New("chaos: primary down")
	})

	res, err := rig.query(t, rig.ownedPart)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replica || !res.Stale || res.Degraded {
		t.Fatalf("replica=%v stale=%v degraded=%v, want true/true/false",
			res.Replica, res.Stale, res.Degraded)
	}
	if want := rig.single(rig.ownedPart); !reflect.DeepEqual(res.Codes, want) {
		t.Errorf("stale rescue diverged from healthy ranking:\n got %v\nwant %v", res.Codes, want)
	}

	// Heal: links restore, primaries answer, replicas catch up in place.
	rig.hook.set(nil)
	for _, l := range rig.links {
		l.SetMode(faults.LinkHealthy)
	}
	for _, r := range rig.reps {
		converged(t, r, rig.db)
		if n := r.Resyncs(); n != 0 {
			t.Errorf("%s re-synced %d times over a dropped link; want retry at same offset", r.ID(), n)
		}
	}
	res, err = rig.query(t, rig.ownedPart)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale || res.Degraded {
		t.Fatalf("healed query: stale=%v degraded=%v, want false/false", res.Stale, res.Degraded)
	}
	if want := rig.single(rig.ownedPart); !reflect.DeepEqual(res.Codes, want) {
		t.Errorf("healed answer diverged:\n got %v\nwant %v", res.Codes, want)
	}
}

// TestChaosReplLinkDelay: a congested link slows shipping but corrupts
// nothing — the replicas converge to the primary's digest through the
// delay with zero re-syncs, and queries stay exact throughout.
func TestChaosReplLinkDelay(t *testing.T) {
	rig := newChaosRig(t)
	for _, l := range rig.links {
		l.SetMode(faults.LinkDelay)
		l.SetDelay(2 * time.Millisecond)
	}
	rig.addEvents(t, 40)
	res, err := rig.query(t, rig.ownedPart)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Stale {
		t.Fatalf("degraded=%v stale=%v under link delay, want false/false", res.Degraded, res.Stale)
	}
	if want := rig.single(rig.ownedPart); !reflect.DeepEqual(res.Codes, want) {
		t.Errorf("ranking diverged under link delay:\n got %v\nwant %v", res.Codes, want)
	}
	for _, r := range rig.reps {
		converged(t, r, rig.db)
		if n := r.Resyncs(); n != 0 {
			t.Errorf("%s re-synced %d times under pure delay", r.ID(), n)
		}
	}
}

// TestChaosReplTruncateMidFrame: a link tearing the final shipped frame
// must never half-apply — the replica detects the torn frame at its own
// CRC gate, answers with a full snapshot re-sync, and converges to the
// primary's exact digest once the link heals. The untouched replica never
// re-syncs, and the router keeps serving exact answers throughout.
func TestChaosReplTruncateMidFrame(t *testing.T) {
	rig := newChaosRig(t)
	rig.links[0].SetMode(faults.LinkTruncate)
	rig.addEvents(t, 5)
	waitFor(t, "torn frame to force a re-sync", func() bool {
		return rig.reps[0].Resyncs() >= 1
	})

	res, err := rig.query(t, rig.ownedPart)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("router degraded while one replication link tears frames")
	}
	if want := rig.single(rig.ownedPart); !reflect.DeepEqual(res.Codes, want) {
		t.Errorf("ranking diverged during replica re-sync:\n got %v\nwant %v", res.Codes, want)
	}

	rig.links[0].SetMode(faults.LinkHealthy)
	converged(t, rig.reps[0], rig.db)
	if got, want := rig.reps[0].Generation(), rig.db.Generation(); got != want {
		t.Errorf("re-synced replica generation %d, primary %d", got, want)
	}
	if n := rig.reps[1].Resyncs(); n != 0 {
		t.Errorf("healthy-link replica re-synced %d times", n)
	}
}

// TestChaosReplReplicaWedge: a black-holed link wedges r0's apply loop —
// its lag grows without bound, the replica-lag hard trigger fires after K
// consecutive breaching watchdog ticks, and a hedged query under wedged
// primaries is served by the *fresh* replica (never the wedged one, never
// flagged stale). An operator restart un-wedges r0 and it catches up.
func TestChaosReplReplicaWedge(t *testing.T) {
	rig := newChaosRig(t)
	rig.recorder.WatchReplicaLag(func() (time.Duration, string) {
		worst, id := time.Duration(0), ""
		for _, r := range rig.reps {
			if lag := r.ApplyLag(); lag > worst {
				worst, id = lag, r.ID()
			}
		}
		return worst, id
	}, chaosMaxLag, 3)

	rig.links[0].SetMode(faults.LinkWedge)
	rig.addEvents(t, 3)
	time.Sleep(2 * chaosMaxLag) // r0 is now beyond the staleness bound
	waitFor(t, "r1 to stay fresh", func() bool { return rig.reps[1].ApplyLag() < chaosMaxLag })

	// Three consecutive breaching ticks fire exactly one hard trigger.
	base := time.Unix(1_700_000_000, 0)
	for i := 0; i < 3; i++ {
		rig.recorder.Tick(base.Add(time.Duration(i) * time.Second))
	}
	if n := rig.bundles(flight.ReasonReplicaLag); n != 1 {
		t.Errorf("replica-lag flight bundles = %d, want 1", n)
	}

	// Wedge every primary attempt: the hedge must pick the fresh replica.
	rig.hook.set(faults.ShardHook(map[int]faults.ShardFault{
		0: {Mode: faults.ShardWedge}, 1: {Mode: faults.ShardWedge},
		2: {Mode: faults.ShardWedge}, 3: {Mode: faults.ShardWedge},
	}))
	res, err := rig.query(t, rig.ownedPart)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replica || res.Stale || res.Degraded {
		t.Fatalf("replica=%v stale=%v degraded=%v, want true/false/false",
			res.Replica, res.Stale, res.Degraded)
	}
	if want := rig.single(rig.ownedPart); !reflect.DeepEqual(res.Codes, want) {
		t.Errorf("fresh-replica answer diverged:\n got %v\nwant %v", res.Codes, want)
	}

	// Heal. The wedged ReadWAL only returns when its run context dies, so
	// recovery is an operator restart: stop (cancels the wedged call),
	// restart, catch up.
	rig.hook.set(nil)
	rig.links[0].SetMode(faults.LinkHealthy)
	rig.reps[0].Stop()
	rig.reps[0].Start()
	converged(t, rig.reps[0], rig.db)
}

// TestChaosReplPrimaryFsyncLatch: a failed fsync latches the primary —
// the interrupted commit's mutation stays in its in-memory state and its
// WAL, future writes are refused — and both replicas converge to a digest
// equal to the latched primary's at the same generation, while the router
// keeps serving exact answers. No divergence: the replicas mirror exactly
// what the primary's log holds.
func TestChaosReplPrimaryFsyncLatch(t *testing.T) {
	rig := newChaosRig(t)
	rig.ffs.SetRates(1, 0, 0)
	if _, err := rig.db.Insert(chaosEventsTable, reldb.Row{nil, "latching"}); err == nil {
		t.Fatal("insert under FsyncFailRate=1 succeeded; want a latching failure")
	}
	rig.ffs.SetRates(0, 0, 0)
	if _, err := rig.db.Insert(chaosEventsTable, reldb.Row{nil, "refused"}); !errors.Is(err, reldb.ErrFailed) {
		t.Fatalf("write after latch = %v, want ErrFailed", err)
	}

	for _, r := range rig.reps {
		converged(t, r, rig.db)
		if got, want := r.Generation(), rig.db.Generation(); got != want {
			t.Errorf("%s generation %d, latched primary %d", r.ID(), got, want)
		}
	}
	res, err := rig.query(t, rig.ownedPart)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Stale {
		t.Fatalf("degraded=%v stale=%v after primary latch, want false/false", res.Degraded, res.Stale)
	}
	if want := rig.single(rig.ownedPart); !reflect.DeepEqual(res.Codes, want) {
		t.Errorf("ranking diverged after primary latch:\n got %v\nwant %v", res.Codes, want)
	}
}

// TestChaosReplReplicaCrashMidApply: killing a replica in the middle of a
// live write stream loses its state entirely (kill -9, in-memory), the
// router keeps answering from the primaries and the surviving replica,
// and a restart re-bootstraps the crashed replica from a fresh snapshot
// to a digest equal to the primary's at the same generation.
func TestChaosReplReplicaCrashMidApply(t *testing.T) {
	rig := newChaosRig(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 80; i++ {
			if _, err := rig.db.Insert(chaosEventsTable, reldb.Row{nil, "stream"}); err != nil {
				t.Errorf("insert during stream: %v", err)
				return
			}
		}
	}()
	time.Sleep(2 * time.Millisecond) // land the crash inside the stream
	rig.reps[0].Crash()
	if rig.reps[0].Ready() {
		t.Fatal("crashed replica claims Ready")
	}

	res, err := rig.query(t, rig.ownedPart)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("router degraded with one crashed replica and healthy primaries")
	}
	if want := rig.single(rig.ownedPart); !reflect.DeepEqual(res.Codes, want) {
		t.Errorf("ranking diverged during replica crash:\n got %v\nwant %v", res.Codes, want)
	}

	<-done
	rig.reps[0].Start()
	waitFor(t, "crashed replica to re-bootstrap", rig.reps[0].Ready)
	for _, r := range rig.reps {
		converged(t, r, rig.db)
		if got, want := r.Generation(), rig.db.Generation(); got != want {
			t.Errorf("%s generation %d, primary %d", r.ID(), got, want)
		}
	}
}
