package repl

// Metric names the replication layer emits, following the repository
// convention enforced by qatklint's metricname analyzer: snake_case,
// subsystem prefix (repl_), conventional unit suffix, declared as
// package-level constants. All families carry a "replica" label.
const (
	// MetricApplyLagSeconds gauges how far a replica's applied state
	// trails the primary's log head (time since the replica last drained
	// the log on a successful poll).
	MetricApplyLagSeconds = "repl_apply_lag_seconds"
	// MetricAppliedFramesTotal counts WAL frames applied.
	MetricAppliedFramesTotal = "repl_applied_frames_total"
	// MetricAppliedBytesTotal counts raw WAL bytes applied.
	MetricAppliedBytesTotal = "repl_applied_bytes_total"
	// MetricResyncsTotal counts full snapshot re-syncs (bootstrap after a
	// generation mismatch, corruption, or crash — never the steady state).
	MetricResyncsTotal = "repl_resyncs_total"
	// MetricLinkErrorsTotal counts link faults the replica retried
	// through (drops, delays surfacing as deadline errors, wedges).
	MetricLinkErrorsTotal = "repl_link_errors_total"
)
