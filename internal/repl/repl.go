// Package repl is the WAL-shipping replication layer (ROADMAP item 2,
// second half): it streams reldb's generation-stamped, CRC-framed
// write-ahead log from a primary to N read replicas, each applying
// records into its own reldb instance behind the vfs.FS seam. The paper's
// QUEST tool serves classification interactively from a relational store
// (§4.5.1); replicas are what turn the sharded serving tier's in-process
// "second worker" stand-in into real failover targets with bounded
// staleness.
//
// The contract is pull-based and divergence-intolerant. A replica
// bootstraps by streaming the primary's full state at generation n plus
// the WAL offset that state corresponds to, then tails the log with
// retry/backoff, resuming from its last-applied offset after link
// disconnects. Torn final frames are retried (the writer is mid-append);
// a generation mismatch (the primary checkpointed and reset its log) or
// any CRC/decode failure is answered with a full snapshot re-sync, never
// by guessing. A replica therefore always holds an exact prefix of the
// primary's history — possibly stale, never wrong.
package repl

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/reldb"
	"repro/internal/vfs"
)

// Re-sync errors: a replica receiving one must discard its tail position
// and bootstrap from a fresh snapshot.
var (
	// ErrGenMismatch reports that the primary's log no longer carries the
	// generation the replica is tailing (a checkpoint reset it).
	ErrGenMismatch = errors.New("repl: wal generation mismatch")
	// ErrCorrupt reports a frame that can never parse at the replica's
	// offset — link-level truncation or on-disk corruption.
	ErrCorrupt = errors.New("repl: corrupt wal frame")
)

// NeedsResync reports whether err demands a snapshot re-sync rather than
// a retry at the same offset.
func NeedsResync(err error) bool {
	return errors.Is(err, ErrGenMismatch) || errors.Is(err, ErrCorrupt)
}

// Frame is one shipped WAL frame: the raw CRC-framed bytes plus the
// primary log offset just past it (the replica's resume point once the
// frame is applied).
type Frame struct {
	Raw []byte
	End int64
}

// Snapshot is the bootstrap payload: the primary's full logical state as
// framed record batches, the generation it belongs to, and the WAL offset
// a tailer must resume from to extend it.
type Snapshot struct {
	Gen       uint64
	WALOffset int64
	Frames    [][]byte
}

// Link is the transport a replica pulls from. Implementations must be
// safe for concurrent use (several replicas may share one link source);
// internal/faults wraps a Link with deterministic drop/delay/truncate/
// wedge faults for the chaos matrix.
type Link interface {
	// Snapshot streams the primary's current full state.
	Snapshot(ctx context.Context) (*Snapshot, error)
	// ReadWAL returns up to max complete frames of generation gen starting
	// at byte offset (max <= 0 selects DefaultMaxBatch). An empty result
	// with nil error means the replica is caught up. ErrGenMismatch and
	// ErrCorrupt demand a re-sync; any other error is a link fault the
	// replica retries at the same offset.
	ReadWAL(ctx context.Context, gen uint64, offset int64, max int) ([]Frame, error)
}

// DefaultMaxBatch bounds the frames one ReadWAL call ships.
const DefaultMaxBatch = 256

// Primary serves the Link interface over a local durable reldb instance,
// reading the live WAL through the same vfs.FS the writer appends
// through. It holds no state of its own: every ReadWAL re-verifies the
// log's head generation, so a checkpoint between polls surfaces as
// ErrGenMismatch on the next poll.
type Primary struct {
	db  *reldb.DB
	fs  vfs.FS
	dir string
}

// NewPrimary wraps db (which must be durable — an in-memory database has
// no log to ship) as a replication source.
func NewPrimary(db *reldb.DB) (*Primary, error) {
	if db.Dir() == "" {
		return nil, reldb.ErrNoWAL
	}
	return &Primary{db: db, fs: db.FS(), dir: db.Dir()}, nil
}

// DB returns the primary's underlying database (digest checks, tests).
func (p *Primary) DB() *reldb.DB { return p.db }

// Snapshot implements Link.
func (p *Primary) Snapshot(ctx context.Context) (*Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ex, err := p.db.ExportState()
	if err != nil {
		return nil, err
	}
	return &Snapshot{Gen: ex.Gen, WALOffset: ex.WALOffset, Frames: ex.Frames}, nil
}

// ReadWAL implements Link. Every call re-reads the head generation frame
// (a few dozen bytes) before shipping: the log only ever grows within a
// generation, so a matching head proves the replica's offset still
// addresses the same byte stream. A torn tail ends the batch without
// error — the writer is mid-append and the next poll picks the frame up.
func (p *Primary) ReadWAL(ctx context.Context, gen uint64, offset int64, max int) ([]Frame, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if max <= 0 {
		max = DefaultMaxBatch
	}
	r := reldb.OpenWALReader(p.fs, p.dir)
	defer r.Close()

	head, err := r.Next()
	switch {
	case errors.Is(err, io.EOF), errors.Is(err, reldb.ErrTornFrame):
		// The log is empty (or its header is mid-write). A replica with a
		// nonzero offset tailed bytes that no longer exist: re-sync.
		if offset == 0 {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: log reset under replica at offset %d", ErrGenMismatch, offset)
	case errors.Is(err, reldb.ErrCorruptFrame):
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	case err != nil:
		return nil, err
	}
	headGen := uint64(0)
	if head.Header {
		headGen = head.Gen
	}
	if headGen != gen {
		return nil, fmt.Errorf("%w: log is generation %d, replica tails %d", ErrGenMismatch, headGen, gen)
	}

	r.SeekTo(offset)
	var out []Frame
	for len(out) < max {
		fr, err := r.Next()
		switch {
		case errors.Is(err, io.EOF), errors.Is(err, reldb.ErrTornFrame):
			return out, nil
		case errors.Is(err, reldb.ErrCorruptFrame):
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		case err != nil:
			return nil, err
		}
		if fr.Header {
			continue // the replica's snapshot already covers this generation
		}
		out = append(out, Frame{Raw: fr.Raw, End: fr.End})
	}
	return out, nil
}
