package bundle

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cas"
	"repro/internal/reldb"
)

// Relational persistence of data bundles (paper §3.2: "These data,
// including the text reports, are stored across several tables in a
// relational database"). Two tables: bundles (one row per car part) and
// reports (one row per report text, keyed by reference number and source).

// Table names used by the bundle store.
const (
	TableBundles = "bundles"
	TableReports = "reports"
)

// CreateTables creates the bundle schema in db, with the indexes the
// loaders rely on.
func CreateTables(db *reldb.DB) error {
	if err := db.CreateTable(reldb.Schema{
		Name: TableBundles,
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.TInt},
			{Name: "ref_no", Type: reldb.TString, NotNull: true},
			{Name: "article_code", Type: reldb.TString, NotNull: true},
			{Name: "part_id", Type: reldb.TString, NotNull: true},
			{Name: "error_code", Type: reldb.TString},
			{Name: "responsibility_code", Type: reldb.TString},
		},
		PrimaryKey: "id",
	}); err != nil {
		return err
	}
	if err := db.CreateIndex(TableBundles, "ux_bundles_ref", true, "ref_no"); err != nil {
		return err
	}
	if err := db.CreateIndex(TableBundles, "ix_bundles_part", false, "part_id"); err != nil {
		return err
	}
	if err := db.CreateTable(reldb.Schema{
		Name: TableReports,
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.TInt},
			{Name: "ref_no", Type: reldb.TString, NotNull: true},
			{Name: "source", Type: reldb.TString, NotNull: true},
			{Name: "text", Type: reldb.TString, NotNull: true},
		},
		PrimaryKey: "id",
	}); err != nil {
		return err
	}
	return db.CreateIndex(TableReports, "ix_reports_ref", false, "ref_no")
}

// Store writes a bundle and its reports in one transaction.
func Store(db *reldb.DB, b *Bundle) error {
	if err := b.Validate(); err != nil {
		return err
	}
	tx := db.Begin()
	tx.Insert(TableBundles, reldb.Row{
		nil, b.RefNo, b.ArticleCode, b.PartID, b.ErrorCode, b.ResponsibilityCode,
	})
	for _, r := range b.Reports {
		tx.Insert(TableReports, reldb.Row{nil, b.RefNo, string(r.Source), r.Text})
	}
	return tx.Commit()
}

// StoreAll writes many bundles; it stops at the first error.
func StoreAll(db *reldb.DB, bundles []*Bundle) error {
	for _, b := range bundles {
		if err := Store(db, b); err != nil {
			return fmt.Errorf("bundle %s: %w", b.RefNo, err)
		}
	}
	return nil
}

// Load reads one bundle by reference number.
func Load(db *reldb.DB, refNo string) (*Bundle, error) {
	row, _, ok, err := db.SelectOne(reldb.Query{
		Table: TableBundles,
		Where: []reldb.Cond{reldb.Eq("ref_no", refNo)},
	})
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("bundle: no bundle %q", refNo)
	}
	b := bundleFromRow(row)
	res, err := db.Select(reldb.Query{
		Table:   TableReports,
		Where:   []reldb.Cond{reldb.Eq("ref_no", refNo)},
		OrderBy: "id",
	})
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rows {
		b.Reports = append(b.Reports, Report{Source: Source(r[2].(string)), Text: r[3].(string)})
	}
	return b, nil
}

// LoadAll reads every bundle, ordered by reference number.
func LoadAll(db *reldb.DB) ([]*Bundle, error) {
	res, err := db.Select(reldb.Query{Table: TableBundles, OrderBy: "ref_no"})
	if err != nil {
		return nil, err
	}
	byRef := make(map[string]*Bundle, len(res.Rows))
	bundles := make([]*Bundle, 0, len(res.Rows))
	for _, row := range res.Rows {
		b := bundleFromRow(row)
		byRef[b.RefNo] = b
		bundles = append(bundles, b)
	}
	// Pull all reports in one scan and attach them.
	reps, err := db.Select(reldb.Query{Table: TableReports, OrderBy: "id"})
	if err != nil {
		return nil, err
	}
	for _, row := range reps.Rows {
		ref := row[1].(string)
		b, ok := byRef[ref]
		if !ok {
			return nil, fmt.Errorf("bundle: orphan report for %q", ref)
		}
		b.Reports = append(b.Reports, Report{Source: Source(row[2].(string)), Text: row[3].(string)})
	}
	return bundles, nil
}

func bundleFromRow(row reldb.Row) *Bundle {
	b := &Bundle{
		RefNo:       row[1].(string),
		ArticleCode: row[2].(string),
		PartID:      row[3].(string),
	}
	if row[4] != nil {
		b.ErrorCode = row[4].(string)
	}
	if row[5] != nil {
		b.ResponsibilityCode = row[5].(string)
	}
	return b
}

// SetErrorCode assigns the final error code of a bundle in the database
// (the QUEST "Assign Final Error Code" action).
func SetErrorCode(db *reldb.DB, refNo, code string) error {
	row, id, ok, err := db.SelectOne(reldb.Query{
		Table: TableBundles,
		Where: []reldb.Cond{reldb.Eq("ref_no", refNo)},
	})
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("bundle: no bundle %q", refNo)
	}
	row[4] = code
	return db.Update(TableBundles, id, row)
}

// Reader streams bundles as CASes for pipeline collection processing,
// assembling each document from the given report sources.
type Reader struct {
	bundles []*Bundle
	sources []Source
	pos     int
}

// NewReader creates a pipeline reader over the bundles. sources selects
// which reports form the document text (nil = training sources).
func NewReader(bundles []*Bundle, sources []Source) *Reader {
	return &Reader{bundles: bundles, sources: sources}
}

// Next implements pipeline.Reader.
func (r *Reader) Next() (*cas.CAS, error) {
	if r.pos >= len(r.bundles) {
		return nil, io.EOF
	}
	b := r.bundles[r.pos]
	r.pos++
	return b.CAS(r.sources...), nil
}

// PartIDs returns the distinct part IDs of a bundle set, sorted.
func PartIDs(bundles []*Bundle) []string {
	set := map[string]bool{}
	for _, b := range bundles {
		set[b.PartID] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// CodeCounts returns error code frequencies over a bundle set.
func CodeCounts(bundles []*Bundle) map[string]int {
	out := map[string]int{}
	for _, b := range bundles {
		if b.ErrorCode != "" {
			out[b.ErrorCode]++
		}
	}
	return out
}

// FilterMultiOccurrence removes bundles whose error code appears only once
// in the set — "718 of these error codes only appear a single time, so we
// remove them for our experiments since nothing can be learned from them"
// (§3.2). It returns the kept bundles.
func FilterMultiOccurrence(bundles []*Bundle) []*Bundle {
	counts := CodeCounts(bundles)
	out := make([]*Bundle, 0, len(bundles))
	for _, b := range bundles {
		if counts[b.ErrorCode] > 1 {
			out = append(out, b)
		}
	}
	return out
}
