// Package bundle models the data bundles of the quality evaluation process
// (paper §3.1–3.2, Fig. 2/3): all data pertaining to an individual damaged
// car part — reference number, article code, part ID, the error code once
// assigned, and the textual reports that accumulate over the process
// (mechanic report, optional initial OEM report, supplier report, final OEM
// report) plus the standardized part and error code descriptions.
package bundle

import (
	"fmt"
	"strings"

	"repro/internal/cas"
)

// Source identifies where a report text comes from.
type Source string

// Report sources in process order (Fig. 2), plus the standardized
// descriptions usable as textual indicators.
const (
	SourceMechanic   Source = "mechanic"
	SourceInitialOEM Source = "initial_oem"
	SourceSupplier   Source = "supplier"
	SourceFinalOEM   Source = "final_oem"
	SourcePartDesc   Source = "part_desc"
	SourceErrorDesc  Source = "error_desc"
)

// TrainingSources are the texts available when building the knowledge base:
// all reports plus both descriptions (§3.2).
func TrainingSources() []Source {
	return []Source{
		SourceMechanic, SourceInitialOEM, SourceSupplier, SourceFinalOEM,
		SourcePartDesc, SourceErrorDesc,
	}
}

// TestSources are the texts available for a bundle that has not yet been
// assigned an error code: the final OEM report and the error code
// description do not exist yet (§3.2).
func TestSources() []Source {
	return []Source{
		SourceMechanic, SourceInitialOEM, SourceSupplier, SourcePartDesc,
	}
}

// Report is one text with its source.
type Report struct {
	Source Source
	Text   string
}

// Bundle is the full data bundle for one damaged car part.
type Bundle struct {
	RefNo              string // unique reference number
	ArticleCode        string
	PartID             string
	ErrorCode          string // final error code; empty if not yet assigned
	ResponsibilityCode string // damage responsibility code from the supplier
	Reports            []Report
}

// ReportText returns the text of the first report with the given source
// ("" if absent).
func (b *Bundle) ReportText(src Source) string {
	for _, r := range b.Reports {
		if r.Source == src {
			return r.Text
		}
	}
	return ""
}

// HasReport reports whether a report from the given source exists.
func (b *Bundle) HasReport(src Source) bool {
	for _, r := range b.Reports {
		if r.Source == src {
			return true
		}
	}
	return false
}

// Text concatenates the texts of the given sources in the given order,
// skipping absent reports. With no sources it concatenates all reports.
func (b *Bundle) Text(sources ...Source) string {
	var parts []string
	if len(sources) == 0 {
		for _, r := range b.Reports {
			parts = append(parts, r.Text)
		}
	} else {
		for _, s := range sources {
			if t := b.ReportText(s); t != "" {
				parts = append(parts, t)
			}
		}
	}
	return strings.Join(parts, "\n")
}

// CAS assembles a Common Analysis Structure from the given report sources
// (step 1 of the pipeline, "Creating Data Bundles": combine related reports
// into one document). Part ID, error code and reference number are attached
// as document metadata.
func (b *Bundle) CAS(sources ...Source) *cas.CAS {
	if len(sources) == 0 {
		sources = TrainingSources()
	}
	var segs []struct{ Source, Text string }
	for _, s := range sources {
		if t := b.ReportText(s); t != "" {
			segs = append(segs, struct{ Source, Text string }{string(s), t})
		}
	}
	c := cas.NewFromSegments(segs)
	c.SetMetadata(MetaRefNo, b.RefNo)
	c.SetMetadata(MetaPartID, b.PartID)
	c.SetMetadata(MetaErrorCode, b.ErrorCode)
	c.SetMetadata(MetaArticleCode, b.ArticleCode)
	return c
}

// CAS metadata keys used throughout the pipeline.
const (
	MetaRefNo       = "ref_no"
	MetaPartID      = "part_id"
	MetaErrorCode   = "error_code"
	MetaArticleCode = "article_code"
)

// Validate checks structural soundness.
func (b *Bundle) Validate() error {
	if b.RefNo == "" {
		return fmt.Errorf("bundle: empty reference number")
	}
	if b.PartID == "" {
		return fmt.Errorf("bundle %s: empty part ID", b.RefNo)
	}
	seen := map[Source]bool{}
	for _, r := range b.Reports {
		switch r.Source {
		case SourceMechanic, SourceInitialOEM, SourceSupplier, SourceFinalOEM,
			SourcePartDesc, SourceErrorDesc:
		default:
			return fmt.Errorf("bundle %s: unknown report source %q", b.RefNo, r.Source)
		}
		if seen[r.Source] {
			return fmt.Errorf("bundle %s: duplicate report source %q", b.RefNo, r.Source)
		}
		seen[r.Source] = true
	}
	return nil
}
