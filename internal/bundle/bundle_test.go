package bundle

import (
	"io"
	"strings"
	"testing"

	"repro/internal/reldb"
)

func sampleBundle() *Bundle {
	return &Bundle{
		RefNo:              "R001",
		ArticleCode:        "A123",
		PartID:             "P7",
		ErrorCode:          "E42",
		ResponsibilityCode: "S1",
		Reports: []Report{
			{Source: SourceMechanic, Text: "radio turns on and off by itself"},
			{Source: SourceSupplier, Text: "kontakt defekt, durchgeschmort"},
			{Source: SourceFinalOEM, Text: "confirmed contact failure"},
			{Source: SourcePartDesc, Text: "radio unit"},
		},
	}
}

func TestReportAccess(t *testing.T) {
	b := sampleBundle()
	if got := b.ReportText(SourceSupplier); got != "kontakt defekt, durchgeschmort" {
		t.Fatalf("supplier text = %q", got)
	}
	if b.ReportText(SourceInitialOEM) != "" {
		t.Fatal("absent report returned text")
	}
	if !b.HasReport(SourceMechanic) || b.HasReport(SourceErrorDesc) {
		t.Fatal("HasReport wrong")
	}
}

func TestTextAssembly(t *testing.T) {
	b := sampleBundle()
	all := b.Text()
	if all == "" || len(all) < 20 {
		t.Fatalf("all text = %q", all)
	}
	mech := b.Text(SourceMechanic)
	if mech != "radio turns on and off by itself" {
		t.Fatalf("mechanic text = %q", mech)
	}
	// Absent sources are skipped without extra separators.
	two := b.Text(SourceInitialOEM, SourceSupplier)
	if two != "kontakt defekt, durchgeschmort" {
		t.Fatalf("two = %q", two)
	}
}

func TestCASAssembly(t *testing.T) {
	b := sampleBundle()
	c := b.CAS(TestSources()...)
	if c.Metadata(MetaPartID) != "P7" || c.Metadata(MetaErrorCode) != "E42" || c.Metadata(MetaRefNo) != "R001" {
		t.Fatal("metadata missing")
	}
	segs := c.Segments()
	// mechanic, supplier, part_desc present among test sources.
	if len(segs) != 3 {
		t.Fatalf("segments = %d, want 3", len(segs))
	}
	if segs[0].Source != string(SourceMechanic) || segs[2].Source != string(SourcePartDesc) {
		t.Fatalf("segments = %v", segs)
	}
	// Training CAS also includes the final OEM report.
	tr := b.CAS()
	if len(tr.Segments()) != 4 {
		t.Fatalf("training segments = %d, want 4", len(tr.Segments()))
	}
}

func TestValidate(t *testing.T) {
	good := sampleBundle()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Bundle{
		{PartID: "P", Reports: nil},
		{RefNo: "R", Reports: nil},
		{RefNo: "R", PartID: "P", Reports: []Report{{Source: "weird"}}},
		{RefNo: "R", PartID: "P", Reports: []Report{
			{Source: SourceMechanic, Text: "a"}, {Source: SourceMechanic, Text: "b"},
		}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid bundle accepted", i)
		}
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := CreateTables(db); err != nil {
		t.Fatal(err)
	}
	b := sampleBundle()
	if err := Store(db, b); err != nil {
		t.Fatal(err)
	}
	got, err := Load(db, "R001")
	if err != nil {
		t.Fatal(err)
	}
	if got.PartID != b.PartID || got.ErrorCode != b.ErrorCode || got.ArticleCode != b.ArticleCode {
		t.Fatalf("bundle = %+v", got)
	}
	if len(got.Reports) != 4 || got.ReportText(SourceSupplier) != b.ReportText(SourceSupplier) {
		t.Fatalf("reports = %v", got.Reports)
	}
	// Duplicate reference numbers rejected by the unique index.
	if err := Store(db, b); err == nil {
		t.Fatal("duplicate ref accepted")
	}
	if _, err := Load(db, "missing"); err == nil {
		t.Fatal("missing bundle loaded")
	}
}

func TestLoadAllAndSetErrorCode(t *testing.T) {
	db, _ := reldb.Open("")
	if err := CreateTables(db); err != nil {
		t.Fatal(err)
	}
	for _, ref := range []string{"R2", "R1", "R3"} {
		b := sampleBundle()
		b.RefNo = ref
		b.ErrorCode = ""
		if err := Store(db, b); err != nil {
			t.Fatal(err)
		}
	}
	all, err := LoadAll(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0].RefNo != "R1" || all[2].RefNo != "R3" {
		t.Fatalf("order = %v", []string{all[0].RefNo, all[1].RefNo, all[2].RefNo})
	}
	if len(all[1].Reports) != 4 {
		t.Fatalf("reports not attached: %d", len(all[1].Reports))
	}
	if err := SetErrorCode(db, "R2", "E9"); err != nil {
		t.Fatal(err)
	}
	got, _ := Load(db, "R2")
	if got.ErrorCode != "E9" {
		t.Fatalf("code = %q", got.ErrorCode)
	}
	if err := SetErrorCode(db, "missing", "E9"); err == nil {
		t.Fatal("SetErrorCode on missing bundle accepted")
	}
}

func TestReaderStreamsCASes(t *testing.T) {
	bundles := []*Bundle{sampleBundle(), sampleBundle()}
	bundles[1].RefNo = "R002"
	r := NewReader(bundles, TestSources())
	c1, err := r.Next()
	if err != nil || c1.Metadata(MetaRefNo) != "R001" {
		t.Fatalf("first = %v %v", c1, err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestPartIDsAndCodeCounts(t *testing.T) {
	bundles := []*Bundle{
		{RefNo: "1", PartID: "B", ErrorCode: "X"},
		{RefNo: "2", PartID: "A", ErrorCode: "X"},
		{RefNo: "3", PartID: "B", ErrorCode: "Y"},
		{RefNo: "4", PartID: "B", ErrorCode: ""},
	}
	ids := PartIDs(bundles)
	if len(ids) != 2 || ids[0] != "A" || ids[1] != "B" {
		t.Fatalf("parts = %v", ids)
	}
	counts := CodeCounts(bundles)
	if counts["X"] != 2 || counts["Y"] != 1 || len(counts) != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestFilterMultiOccurrence(t *testing.T) {
	bundles := []*Bundle{
		{RefNo: "1", PartID: "P", ErrorCode: "X"},
		{RefNo: "2", PartID: "P", ErrorCode: "X"},
		{RefNo: "3", PartID: "P", ErrorCode: "Y"}, // singleton: removed
		{RefNo: "4", PartID: "P", ErrorCode: "Z"},
		{RefNo: "5", PartID: "P", ErrorCode: "Z"},
		{RefNo: "6", PartID: "P", ErrorCode: "Z"},
	}
	kept := FilterMultiOccurrence(bundles)
	if len(kept) != 5 {
		t.Fatalf("kept = %d, want 5", len(kept))
	}
	for _, b := range kept {
		if b.ErrorCode == "Y" {
			t.Fatal("singleton survived")
		}
	}
}

func TestTSVRoundTrip(t *testing.T) {
	bundles := []*Bundle{
		{
			RefNo: "R1", ArticleCode: "A1", PartID: "P1", ErrorCode: "E1",
			ResponsibilityCode: "SUP",
			Reports: []Report{
				{Source: SourceMechanic, Text: "line one\nline two\twith tab"},
				{Source: SourceSupplier, Text: `backslash \ inside`},
			},
		},
		{
			RefNo: "R2", ArticleCode: "A2", PartID: "P2",
			Reports: []Report{{Source: SourceMechanic, Text: "plain"}},
		},
	}
	var bb, rb strings.Builder
	if err := WriteTSV(&bb, &rb, bundles); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(strings.NewReader(bb.String()), strings.NewReader(rb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("bundles = %d", len(got))
	}
	if got[0].ReportText(SourceMechanic) != "line one\nline two\twith tab" {
		t.Fatalf("escaping broken: %q", got[0].ReportText(SourceMechanic))
	}
	if got[0].ReportText(SourceSupplier) != `backslash \ inside` {
		t.Fatalf("backslash broken: %q", got[0].ReportText(SourceSupplier))
	}
	if got[1].ErrorCode != "" || got[1].PartID != "P2" {
		t.Fatalf("bundle 2 = %+v", got[1])
	}
}

func TestReadTSVErrors(t *testing.T) {
	ok := "R1\tA1\tP1\tE1\tSUP\n"
	cases := []struct{ bundles, reports string }{
		{"R1\tA1\tP1\n", ""},             // short bundle row
		{ok + ok, ""},                    // duplicate reference
		{ok, "R9\tmechanic\ttext\n"},     // orphan report
		{ok, "R1\tmechanic\n"},           // short report row
		{ok, "R1\tweird-source\ttext\n"}, // invalid source fails Validate
	}
	for i, c := range cases {
		if _, err := ReadTSV(strings.NewReader(c.bundles), strings.NewReader(c.reports)); err == nil {
			t.Errorf("case %d: bad TSV accepted", i)
		}
	}
	// Blank lines are tolerated.
	got, err := ReadTSV(strings.NewReader("\n"+ok+"\n"), strings.NewReader("\nR1\tmechanic\tx\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank lines: %v %v", got, err)
	}
}
