package bundle

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Flat-file interchange. The paper's data arrive as exports from the
// evaluation documentation tool (§3.2); this two-file TSV layout lets a
// deployment load its own exports into the QATK database:
//
//	bundles.tsv:  ref_no <TAB> article_code <TAB> part_id <TAB> error_code <TAB> responsibility_code
//	reports.tsv:  ref_no <TAB> source <TAB> text (tabs and newlines escaped as \t and \n)

// WriteTSV writes bundle master data and report texts to two streams.
func WriteTSV(bundlesW, reportsW io.Writer, bundles []*Bundle) error {
	bw := bufio.NewWriter(bundlesW)
	rw := bufio.NewWriter(reportsW)
	for _, b := range bundles {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%s\t%s\n",
			b.RefNo, b.ArticleCode, b.PartID, b.ErrorCode, b.ResponsibilityCode); err != nil {
			return err
		}
		for _, r := range b.Reports {
			if _, err := fmt.Fprintf(rw, "%s\t%s\t%s\n",
				b.RefNo, r.Source, escapeTSV(r.Text)); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return rw.Flush()
}

// ReadTSV parses the two-stream layout back into bundles, in the order of
// the bundles stream.
func ReadTSV(bundlesR, reportsR io.Reader) ([]*Bundle, error) {
	var bundles []*Bundle
	byRef := map[string]*Bundle{}
	sc := bufio.NewScanner(bundlesR)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 5 {
			return nil, fmt.Errorf("bundle: bundles.tsv line %d: %d fields, want 5", line, len(parts))
		}
		b := &Bundle{
			RefNo: parts[0], ArticleCode: parts[1], PartID: parts[2],
			ErrorCode: parts[3], ResponsibilityCode: parts[4],
		}
		if byRef[b.RefNo] != nil {
			return nil, fmt.Errorf("bundle: bundles.tsv line %d: duplicate reference %s", line, b.RefNo)
		}
		byRef[b.RefNo] = b
		bundles = append(bundles, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rs := bufio.NewScanner(reportsR)
	rs.Buffer(make([]byte, 1<<20), 1<<20)
	line = 0
	for rs.Scan() {
		line++
		text := rs.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		parts := strings.SplitN(text, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("bundle: reports.tsv line %d: %d fields, want 3", line, len(parts))
		}
		b := byRef[parts[0]]
		if b == nil {
			return nil, fmt.Errorf("bundle: reports.tsv line %d: unknown reference %s", line, parts[0])
		}
		b.Reports = append(b.Reports, Report{
			Source: Source(parts[1]),
			Text:   unescapeTSV(parts[2]),
		})
	}
	if err := rs.Err(); err != nil {
		return nil, err
	}
	for _, b := range bundles {
		if err := b.Validate(); err != nil {
			return nil, err
		}
	}
	return bundles, nil
}

func escapeTSV(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\t", `\t`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func unescapeTSV(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 == len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
