package nhtsa

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/reldb"
)

func corpus(t testing.TB) *datagen.Corpus {
	t.Helper()
	c, err := datagen.Generate(datagen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateComplaints(t *testing.T) {
	c := corpus(t)
	cfg := GenerateConfig{Seed: 5, Complaints: 200, ZipfS: 1.1}
	complaints := Generate(cfg, c)
	if len(complaints) != 200 {
		t.Fatalf("complaints = %d", len(complaints))
	}
	seen := map[int64]bool{}
	for _, cm := range complaints {
		if seen[cm.ODINumber] {
			t.Fatalf("duplicate ODI number %d", cm.ODINumber)
		}
		seen[cm.ODINumber] = true
		if cm.CDescr == "" || cm.Make == "" || cm.Model == "" {
			t.Fatalf("incomplete complaint %+v", cm)
		}
		// ODI free text is upper-case English.
		if cm.CDescr != strings.ToUpper(cm.CDescr) {
			t.Fatalf("CDESCR not upper-case: %q", cm.CDescr)
		}
		if cm.Year < 2009 || cm.Year > 2016 {
			t.Fatalf("implausible year %d", cm.Year)
		}
	}
	if len(MakesIn(complaints)) < 2 {
		t.Fatal("complaints should cover several makes")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := corpus(t)
	cfg := GenerateConfig{Seed: 5, Complaints: 50, ZipfS: 1.1}
	a := Generate(cfg, c)
	b := Generate(cfg, c)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("complaint %d differs", i)
		}
	}
}

func TestGenerateNoInternalDetailVocabulary(t *testing.T) {
	c := corpus(t)
	complaints := Generate(GenerateConfig{Seed: 5, Complaints: 100, ZipfS: 1.1}, c)
	details := map[string]bool{}
	for _, spec := range c.Codes {
		for _, w := range spec.DetailWords {
			details[strings.ToUpper(w)] = true
		}
	}
	for _, cm := range complaints {
		for _, w := range strings.Fields(cm.CDescr) {
			if details[w] {
				t.Fatalf("consumer text leaks internal detail word %q", w)
			}
		}
	}
}

func TestFlatFileRoundTrip(t *testing.T) {
	c := corpus(t)
	complaints := Generate(GenerateConfig{Seed: 5, Complaints: 30, ZipfS: 1.1}, c)
	var buf bytes.Buffer
	if err := WriteFlat(&buf, complaints); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlat(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(complaints) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(complaints))
	}
	for i := range got {
		if got[i] != complaints[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], complaints[i])
		}
	}
}

func TestReadFlatErrors(t *testing.T) {
	if _, err := ReadFlat(strings.NewReader("only\tthree\tfields\n")); err == nil {
		t.Error("short record accepted")
	}
	if _, err := ReadFlat(strings.NewReader("x\tA\tB\t2010\tC\tD\n")); err == nil {
		t.Error("bad ODI number accepted")
	}
	if _, err := ReadFlat(strings.NewReader("1\tA\tB\tyear\tC\tD\n")); err == nil {
		t.Error("bad year accepted")
	}
	got, err := ReadFlat(strings.NewReader("\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("blank lines: %v, %v", got, err)
	}
}

func TestRelationalRoundTrip(t *testing.T) {
	c := corpus(t)
	complaints := Generate(GenerateConfig{Seed: 5, Complaints: 25, ZipfS: 1.1}, c)
	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := CreateTables(db); err != nil {
		t.Fatal(err)
	}
	if err := Store(db, complaints); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAll(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(complaints) {
		t.Fatalf("loaded %d of %d", len(got), len(complaints))
	}
	// LoadAll orders by ODI number; the generator already emits ascending.
	for i := range got {
		if got[i] != complaints[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}
