// Package nhtsa models the public data source of the use-case extension
// (§5.4): the complaints database of the NHTSA Office of Defects
// Investigation (ODI), available via safercar.gov as tab-separated flat
// files. The environment is offline, so the package also generates an
// ODI-style synthetic complaint corpus: English-only consumer language, a
// different text type from the internal reports, covering vehicles of
// several manufacturers. Complaints are classified through the internal
// knowledge base to compare error distributions across sources.
package nhtsa

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/datagen"
	"repro/internal/reldb"
)

// Complaint is one ODI record (the fields our use case needs; the real
// FLAT_CMPL file has 49 columns, of which these are the relevant subset).
type Complaint struct {
	ODINumber int64
	Make      string
	Model     string
	Year      int
	Component string // ODI component designation
	CDescr    string // consumer complaint free text
}

// Makes used by the synthetic generator: the OEM itself and competitors.
var Makes = []string{"OEM", "RIVALIS", "AUTOVIA", "MOTORWERK"}

var models = []string{"ALPHA", "BETA", "GRANDE", "COMPACT", "SPORT"}

var consumerPhrases = []string{
	"while driving at highway speed", "the contact owns a", "the vehicle was taken to the dealer",
	"the failure occurred without warning", "the manufacturer was notified",
	"the dealer could not duplicate the failure", "the vehicle was repaired",
	"the failure mileage was", "the contact stated that", "no injuries were reported",
}

// GenerateConfig drives the synthetic complaint generator.
type GenerateConfig struct {
	Seed       int64
	Complaints int
	// ZipfS skews which error profiles dominate the public source; it is
	// deliberately different from the internal corpus so the side-by-side
	// distributions differ (Fig. 14).
	ZipfS float64
}

// DefaultGenerateConfig matches the QUEST mockup scale.
func DefaultGenerateConfig() GenerateConfig {
	return GenerateConfig{Seed: 2, Complaints: 2500, ZipfS: 1.1}
}

// Generate synthesizes complaints against the error-code profiles of an
// internal corpus: each complaint is caused by some error code, mentions
// that code's symptoms in consumer English, and never contains the
// internal detail vocabulary (consumers do not know root causes).
func Generate(cfg GenerateConfig, corpus *datagen.Corpus) []Complaint {
	complaints, _ := GenerateLabeled(cfg, corpus)
	return complaints
}

// GenerateLabeled is Generate plus the ground-truth error code underlying
// each complaint — unavailable for the real ODI data, but exactly what the
// cross-source accuracy claim of §5.4 needs to be tested at all.
func GenerateLabeled(cfg GenerateConfig, corpus *datagen.Corpus) ([]Complaint, []string) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	specs := corpus.SortedCodes()
	// Re-rank the codes with a shuffled Zipf so the public distribution
	// differs from the internal one.
	perm := rng.Perm(len(specs))
	weights := make([]float64, len(specs))
	var wsum float64
	for i := range specs {
		weights[i] = 1.0 / math.Pow(float64(perm[i]+1), cfg.ZipfS)
		wsum += weights[i]
	}
	var out []Complaint
	var labels []string
	for i := 0; i < cfg.Complaints; i++ {
		spec := specs[weightedPick(rng, weights, wsum)]
		labels = append(labels, spec.Code)
		var words []string
		words = append(words, strings.Fields(pickStr(rng, consumerPhrases))...)
		for _, s := range spec.Symptoms {
			if c, ok := corpus.Taxonomy.Get(s); ok {
				syns := c.Synonyms["en"]
				if len(syns) > 0 {
					words = append(words, strings.Fields(syns[rng.Intn(len(syns))])...)
				}
			}
		}
		for _, comp := range spec.Components {
			if c, ok := corpus.Taxonomy.Get(comp); ok {
				syns := c.Synonyms["en"]
				if len(syns) > 0 && rng.Float64() < 0.7 {
					words = append(words, strings.Fields(syns[rng.Intn(len(syns))])...)
				}
			}
		}
		words = append(words, strings.Fields(pickStr(rng, consumerPhrases))...)
		out = append(out, Complaint{
			ODINumber: 10000000 + int64(i),
			Make:      pickStr(rng, Makes),
			Model:     pickStr(rng, models),
			Year:      2009 + rng.Intn(7),
			Component: strings.ToUpper(spec.PartID),
			CDescr:    strings.ToUpper(strings.Join(words, " ")),
		})
	}
	return out, labels
}

func weightedPick(rng *rand.Rand, weights []float64, wsum float64) int {
	x := rng.Float64() * wsum
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

func pickStr(rng *rand.Rand, items []string) string { return items[rng.Intn(len(items))] }

// --- flat-file I/O -------------------------------------------------------

// WriteFlat writes complaints in the ODI tab-separated layout subset.
func WriteFlat(w io.Writer, complaints []Complaint) error {
	bw := bufio.NewWriter(w)
	for _, c := range complaints {
		// Tabs inside the free text would break the format.
		desc := strings.ReplaceAll(c.CDescr, "\t", " ")
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%s\t%d\t%s\t%s\n",
			c.ODINumber, c.Make, c.Model, c.Year, c.Component, desc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFlat parses the tab-separated layout written by WriteFlat.
func ReadFlat(r io.Reader) ([]Complaint, error) {
	var out []Complaint
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 6 {
			return nil, fmt.Errorf("nhtsa: line %d: %d fields, want 6", line, len(parts))
		}
		var c Complaint
		if _, err := fmt.Sscanf(parts[0], "%d", &c.ODINumber); err != nil {
			return nil, fmt.Errorf("nhtsa: line %d: bad ODI number %q", line, parts[0])
		}
		if _, err := fmt.Sscanf(parts[3], "%d", &c.Year); err != nil {
			return nil, fmt.Errorf("nhtsa: line %d: bad year %q", line, parts[3])
		}
		c.Make, c.Model, c.Component, c.CDescr = parts[1], parts[2], parts[4], parts[5]
		out = append(out, c)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// --- relational persistence ----------------------------------------------

// TableComplaints is the reldb table for the imported public source.
const TableComplaints = "odi_complaints"

// CreateTables creates the complaints schema.
func CreateTables(db *reldb.DB) error {
	if err := db.CreateTable(reldb.Schema{
		Name: TableComplaints,
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.TInt},
			{Name: "odi_number", Type: reldb.TInt, NotNull: true},
			{Name: "make", Type: reldb.TString, NotNull: true},
			{Name: "model", Type: reldb.TString, NotNull: true},
			{Name: "year", Type: reldb.TInt, NotNull: true},
			{Name: "component", Type: reldb.TString, NotNull: true},
			{Name: "cdescr", Type: reldb.TString, NotNull: true},
		},
		PrimaryKey: "id",
	}); err != nil {
		return err
	}
	return db.CreateIndex(TableComplaints, "ix_odi_make", false, "make")
}

// Store writes complaints into the database.
func Store(db *reldb.DB, complaints []Complaint) error {
	tx := db.Begin()
	for _, c := range complaints {
		tx.Insert(TableComplaints, reldb.Row{
			nil, c.ODINumber, c.Make, c.Model, int64(c.Year), c.Component, c.CDescr,
		})
	}
	return tx.Commit()
}

// LoadAll reads all complaints, ordered by ODI number.
func LoadAll(db *reldb.DB) ([]Complaint, error) {
	res, err := db.Select(reldb.Query{Table: TableComplaints, OrderBy: "odi_number"})
	if err != nil {
		return nil, err
	}
	out := make([]Complaint, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, Complaint{
			ODINumber: row[1].(int64),
			Make:      row[2].(string),
			Model:     row[3].(string),
			Year:      int(row[4].(int64)),
			Component: row[5].(string),
			CDescr:    row[6].(string),
		})
	}
	return out, nil
}

// MakesIn returns the distinct makes present, sorted.
func MakesIn(complaints []Complaint) []string {
	set := map[string]bool{}
	for _, c := range complaints {
		set[c.Make] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
