// Package faults provides deterministic, seedable fault injection for the
// QATK's chaos tests. The paper targets *messy* industrial data (§1, §5.2);
// the pipeline and storage tiers must survive engines that fail, stall, or
// panic mid-collection. An Injector wraps any pipeline.Engine,
// pipeline.Reader, or arbitrary operation (e.g. a reldb call) and makes it
// misbehave at configured rates, reproducibly: the same seed yields the
// same fault schedule, so a chaos failure can be replayed exactly.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cas"
	"repro/internal/pipeline"
	"repro/internal/vfs"
)

// InjectedError is the error returned by injected failures. Seq is the
// injector-wide fault sequence number, making every injected fault
// distinguishable in dead letters and logs.
type InjectedError struct {
	Op        string // the wrapped engine/reader/operation name
	Seq       int    // 1-based fault sequence number within the injector
	Transient bool   // whether a retry could plausibly succeed
}

// Error describes the injected fault.
func (e *InjectedError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("faults: injected %s failure #%d in %s", kind, e.Seq, e.Op)
}

// InjectedPanic is the value raised by injected panics; chaos tests can
// recognize it in recovered *pipeline.PanicError values.
type InjectedPanic struct {
	Op  string
	Seq int
}

// String describes the injected panic.
func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic #%d in %s", p.Seq, p.Op)
}

// Config sets the per-call fault rates of an Injector. Rates are
// probabilities in [0, 1] and are evaluated independently in the order
// panic, error, stall: at most one fault fires per call.
//
// The disk rates configure storage-level chaos instead of call-level
// chaos; they take effect through DiskFS, which injects them below the
// database rather than around it.
type Config struct {
	ErrorRate float64       // probability of returning an *InjectedError
	PanicRate float64       // probability of panicking with InjectedPanic
	StallRate float64       // probability of sleeping Stall before running
	Stall     time.Duration // stall duration (default 1ms)
	Transient bool          // injected errors report themselves transient

	FsyncFailRate  float64 // probability an fsync fails (vfs.ErrFsyncFailed)
	ShortWriteRate float64 // probability a write is torn (vfs.ErrShortWrite)
	ENOSPCRate     float64 // probability a write fails with vfs.ErrNoSpace
}

// DiskFS builds a fault-injecting filesystem sharing the package's
// seeded-schedule discipline: the same seed and operation order reproduce
// the same disk faults. Plug it into reldb via Options.FS to run a
// storage workload on misbehaving media.
func DiskFS(seed int64, cfg Config) *vfs.FaultFS {
	return vfs.NewFaultFS(vfs.FaultConfig{
		Seed:           seed,
		FsyncFailRate:  cfg.FsyncFailRate,
		ShortWriteRate: cfg.ShortWriteRate,
		ENOSPCRate:     cfg.ENOSPCRate,
	})
}

// Injector draws faults from a seeded source. All methods are safe for
// concurrent use; the fault schedule is deterministic for a given seed and
// call order.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	seq    int // total faults injected
	errors int
	panics int
	stalls int
}

// NewInjector builds an injector with the given seed and configuration.
func NewInjector(seed int64, cfg Config) *Injector {
	if cfg.Stall <= 0 {
		cfg.Stall = time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Counts reports how many faults of each kind have been injected.
func (in *Injector) Counts() (errors, panics, stalls int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.errors, in.panics, in.stalls
}

type faultKind int

const (
	faultNone faultKind = iota
	faultError
	faultPanic
	faultStall
)

// draw decides the fault (if any) for one call and updates the counters.
func (in *Injector) draw() (faultKind, int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	switch {
	case in.rng.Float64() < in.cfg.PanicRate:
		in.seq++
		in.panics++
		return faultPanic, in.seq
	case in.rng.Float64() < in.cfg.ErrorRate:
		in.seq++
		in.errors++
		return faultError, in.seq
	case in.rng.Float64() < in.cfg.StallRate:
		in.seq++
		in.stalls++
		return faultStall, in.seq
	}
	return faultNone, 0
}

// inject applies the drawn fault for op, returning a non-nil error or
// panicking when a fault fires, and nil when the call should proceed.
func (in *Injector) inject(op string) error {
	kind, seq := in.draw()
	switch kind {
	case faultPanic:
		//lint:ignore qatklint/paniccontract injected panics are the product here: chaos tests exist to exercise the pipeline recovery layer
		panic(InjectedPanic{Op: op, Seq: seq})
	case faultError:
		return &InjectedError{Op: op, Seq: seq, Transient: in.cfg.Transient}
	case faultStall:
		//lint:ignore qatklint/ctxflow the stall IS the injected fault: chaos tests need a sleep that ignores cancellation to prove the watchdog catches wedged engines
		time.Sleep(in.cfg.Stall)
	}
	return nil
}

// Do wraps one arbitrary operation (e.g. a reldb Insert or Checkpoint):
// the fault, if drawn, preempts fn.
func (in *Injector) Do(op string, fn func() error) error {
	if err := in.inject(op); err != nil {
		return err
	}
	return fn()
}

// Engine wraps a pipeline engine: each Process call may fail, stall, or
// panic before the inner engine runs.
func (in *Injector) Engine(inner pipeline.Engine) pipeline.Engine {
	return &flakyEngine{in: in, inner: inner}
}

type flakyEngine struct {
	in    *Injector
	inner pipeline.Engine
}

func (e *flakyEngine) Name() string { return e.inner.Name() }

func (e *flakyEngine) Process(c *cas.CAS) error {
	if err := e.in.inject(e.inner.Name()); err != nil {
		return err
	}
	return e.inner.Process(c)
}

// Reader wraps a pipeline reader: each Next call may fail, stall, or panic
// before the inner reader is consulted. io.EOF from the inner reader is
// never replaced by a fault — collections still terminate.
func (in *Injector) Reader(inner pipeline.Reader) pipeline.Reader {
	return &flakyReader{in: in, inner: inner}
}

type flakyReader struct {
	in    *Injector
	inner pipeline.Reader
}

func (r *flakyReader) Next() (*cas.CAS, error) {
	if err := r.in.inject("reader"); err != nil {
		return nil, err
	}
	return r.inner.Next()
}
