package faults

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/kb"
	"repro/internal/reldb"
	"repro/internal/vfs"
)

// buildMemory assembles a small knowledge base: a few parts, each with a
// handful of error-code bundles and feature sets.
func buildMemory() *kb.Memory {
	m := kb.NewMemory()
	for p := 0; p < 4; p++ {
		part := fmt.Sprintf("P-%03d", p)
		for c := 0; c < 5; c++ {
			code := fmt.Sprintf("E%02d", (p+c)%7)
			feats := []string{
				fmt.Sprintf("feat_%d", c),
				fmt.Sprintf("feat_%d", (c+1)%5),
				"common",
			}
			m.AddBundle(part, code, feats)
		}
	}
	return m
}

// attributable reports whether err carries proper fault attribution: an
// injected disk fault (vfs.FaultError wrapping a kind sentinel) or the
// database's latch.
func attributable(err error) bool {
	var fe *vfs.FaultError
	if errors.As(err, &fe) {
		return errors.Is(err, vfs.ErrFsyncFailed) || errors.Is(err, vfs.ErrShortWrite) || errors.Is(err, vfs.ErrNoSpace)
	}
	return errors.Is(err, reldb.ErrFailed)
}

// TestDiskChaosKnowledgeBaseCycle drives the full knowledge-base
// store/query cycle — schema creation, bulk persist, concurrent
// queries — on a disk injecting fsync failures, torn writes, and ENOSPC,
// and requires that every failure is attributed, the process never
// corrupts in-memory serving, and after a power cut the database recovers
// to a usable state on healthy media.
func TestDiskChaosKnowledgeBaseCycle(t *testing.T) {
	mem := buildMemory()
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fsys := DiskFS(seed, Config{
				FsyncFailRate:  0.05,
				ShortWriteRate: 0.05,
				ENOSPCRate:     0.02,
			})
			db, err := reldb.OpenWith("data/db", reldb.Options{FS: fsys})
			if err != nil {
				t.Fatalf("open on empty disk must not fault-inject yet: %v", err)
			}

			persisted := true
			if err := kb.CreateTables(db); err != nil {
				if !attributable(err) {
					t.Fatalf("unattributed failure from CreateTables: %v", err)
				}
				persisted = false
			} else if err := kb.Persist(db, mem); err != nil {
				if !attributable(err) {
					t.Fatalf("unattributed failure from Persist: %v", err)
				}
				persisted = false
			}

			// Concurrent readers during (possibly failed) persistence: the
			// in-memory store must stay consistent under -race.
			var wg sync.WaitGroup
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					store, err := kb.OpenDB(db)
					if err != nil {
						return // snapshot may be empty mid-chaos; that's fine
					}
					for _, n := range store.AllNodes() {
						_ = store.Candidates(n.PartID, n.Features)
						_ = store.CodeFrequencies(n.PartID)
					}
				}()
			}
			wg.Wait()

			if persisted {
				store, err := kb.OpenDB(db)
				if err != nil {
					t.Fatalf("OpenDB after successful persist: %v", err)
				}
				if got, want := store.BundleCount(), mem.BundleCount(); got != want {
					t.Fatalf("bundles = %d, want %d", got, want)
				}
			}
			db.Close()

			// Power-cut the chaotic disk, then recover on healthy media:
			// whatever survived must be a readable, loadable database.
			fsys.Crash(vfs.RetainPrefix)
			fsys.DisableFaults()
			re, err := reldb.OpenWith("data/db", reldb.Options{FS: fsys})
			if err != nil {
				t.Fatalf("recovery open after chaos: %v", err)
			}
			defer re.Close()
			for _, table := range re.Tables() {
				if _, err := re.Count(table); err != nil {
					t.Fatalf("recovered table %q unreadable: %v", table, err)
				}
			}
			// The recovered database accepts new writes.
			if err := kb.CreateTables(re); err != nil && !alreadyExists(err) {
				t.Fatalf("recovered database refuses schema setup: %v", err)
			}
		})
	}
}

// alreadyExists matches reldb's duplicate-table error, expected when the
// chaotic run got far enough to persist the schema durably.
func alreadyExists(err error) bool {
	return err != nil && strings.Contains(err.Error(), "already exists")
}
