package faults

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/repl"
)

// LinkMode selects the failure behavior of a FaultyLink. Modes are
// switchable at runtime so one chaos scenario can break the link, observe
// the replica degrade, heal it, and observe recovery.
type LinkMode int

const (
	// LinkHealthy passes calls through untouched.
	LinkHealthy LinkMode = iota
	// LinkDrop fails every call with ErrLinkDropped (a severed network).
	LinkDrop
	// LinkDelay sleeps the configured delay before forwarding (a congested
	// or rerouted network); cancellation is honored during the sleep.
	LinkDelay
	// LinkTruncate cuts the final shipped frame short mid-frame: the
	// replica's ApplyFrame sees a CRC/length mismatch and must answer with
	// a re-sync, never a partial apply.
	LinkTruncate
	// LinkWedge blocks every call until its context is cancelled — the
	// connection is alive but nothing moves (a black-holed route).
	LinkWedge
)

// ErrLinkDropped is the error a dropped replication link returns; it is
// transient (retryable at the same offset), not a re-sync condition.
var ErrLinkDropped = errors.New("faults: replication link dropped")

// FaultyLink wraps a repl.Link with deterministic, runtime-switchable
// replication-path faults for the chaos matrix. The zero mode is healthy;
// all methods are safe for concurrent use.
type FaultyLink struct {
	inner repl.Link

	mu    sync.Mutex
	mode  LinkMode
	delay time.Duration
	calls int // calls observed since the last SetMode (scenario accounting)
}

// NewFaultyLink wraps inner, starting healthy.
func NewFaultyLink(inner repl.Link) *FaultyLink {
	return &FaultyLink{inner: inner, delay: time.Millisecond}
}

// SetMode switches the fault mode and resets the call counter.
func (l *FaultyLink) SetMode(mode LinkMode) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.mode = mode
	l.calls = 0
}

// SetDelay sets the LinkDelay sleep (default 1ms).
func (l *FaultyLink) SetDelay(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.delay = d
}

// Calls reports how many link calls ran since the last SetMode.
func (l *FaultyLink) Calls() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.calls
}

// gate applies the current mode before a call proceeds. It returns a
// non-nil error when the call must fail, and reports whether the payload
// should be truncated (LinkTruncate).
func (l *FaultyLink) gate(ctx context.Context) (truncate bool, err error) {
	l.mu.Lock()
	mode, delay := l.mode, l.delay
	l.calls++
	l.mu.Unlock()
	switch mode {
	case LinkDrop:
		return false, ErrLinkDropped
	case LinkDelay:
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return false, ctx.Err()
		case <-t.C:
		}
	case LinkWedge:
		<-ctx.Done()
		return false, ctx.Err()
	case LinkTruncate:
		return true, nil
	}
	return false, nil
}

// Snapshot implements repl.Link. A truncating link cuts the last snapshot
// frame short, so bootstrap fails loudly (and is retried) rather than
// building a silently partial replica.
func (l *FaultyLink) Snapshot(ctx context.Context) (*repl.Snapshot, error) {
	truncate, err := l.gate(ctx)
	if err != nil {
		return nil, err
	}
	snap, err := l.inner.Snapshot(ctx)
	if err != nil || !truncate || len(snap.Frames) == 0 {
		return snap, err
	}
	out := *snap
	out.Frames = append([][]byte(nil), snap.Frames...)
	out.Frames[len(out.Frames)-1] = truncateFrame(out.Frames[len(out.Frames)-1])
	return &out, nil
}

// ReadWAL implements repl.Link, truncating the final shipped frame
// mid-frame under LinkTruncate.
func (l *FaultyLink) ReadWAL(ctx context.Context, gen uint64, offset int64, max int) ([]repl.Frame, error) {
	truncate, err := l.gate(ctx)
	if err != nil {
		return nil, err
	}
	frames, err := l.inner.ReadWAL(ctx, gen, offset, max)
	if err != nil || !truncate || len(frames) == 0 {
		return frames, err
	}
	out := append([]repl.Frame(nil), frames...)
	last := out[len(out)-1]
	last.Raw = truncateFrame(last.Raw)
	out[len(out)-1] = last
	return out, nil
}

// truncateFrame cuts a shipped frame mid-payload (keeping the header, so
// the declared length no longer matches — the cheapest detectable tear).
func truncateFrame(raw []byte) []byte {
	cut := len(raw) - 1
	if cut < 0 {
		cut = 0
	}
	return append([]byte(nil), raw[:cut]...)
}
