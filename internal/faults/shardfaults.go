package faults

import (
	"context"
	"sync"
	"time"
)

// Shard-tier chaos: deterministic misbehavior modes for the sharded QUEST
// serving tier (internal/shard). Unlike the rate-based Injector, shard
// faults are assigned, not drawn — the chaos matrix pins a mode to a
// shard and the test knows exactly which sub-queries misbehave, so every
// failure path (hedge rescue, breaker trip, degraded merge) is asserted
// rather than sampled. The hook signature matches shard.FaultHook without
// either package importing the other.

// ShardMode is one misbehavior mode.
type ShardMode int

const (
	// ShardHealthy leaves the shard untouched.
	ShardHealthy ShardMode = iota
	// ShardSlow delays each affected attempt by Delay (respecting the
	// attempt context, like a slow replica that is eventually right).
	ShardSlow
	// ShardError fails each affected attempt with an *InjectedError.
	ShardError
	// ShardWedge blocks each affected attempt until its context is
	// cancelled, then returns the context error — a wedged worker whose
	// goroutine is reclaimed only by cancellation.
	ShardWedge
)

// ShardFault pins one mode to a shard.
type ShardFault struct {
	Mode  ShardMode
	Delay time.Duration // ShardSlow's delay (default 5ms)
	// FirstAttempts restricts the fault to each sub-query's first N
	// attempts (0 = every attempt). FirstAttempts=1 models a slow or
	// failing primary whose hedged second attempt reaches a healthy
	// replica.
	FirstAttempts int
}

// ShardHook builds a deterministic fault hook from a shard → fault
// assignment, suitable as shard.Config.Hook. Unassigned shards are
// healthy. Injected errors are transient *InjectedError values numbered
// by a hook-wide sequence, so dead letters and logs distinguish them.
func ShardHook(assign map[int]ShardFault) func(ctx context.Context, shard, attempt int) error {
	var mu sync.Mutex
	seq := 0
	return func(ctx context.Context, shard, attempt int) error {
		f, ok := assign[shard]
		if !ok || f.Mode == ShardHealthy {
			return nil
		}
		if f.FirstAttempts > 0 && attempt > f.FirstAttempts {
			return nil
		}
		switch f.Mode {
		case ShardSlow:
			d := f.Delay
			if d <= 0 {
				d = 5 * time.Millisecond
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		case ShardError:
			mu.Lock()
			seq++
			n := seq
			mu.Unlock()
			return &InjectedError{Op: "shard", Seq: n, Transient: true}
		case ShardWedge:
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}
}
