package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/pipeline"
	"repro/internal/reldb"
)

// makeDocs generates a synthetic collection with unique document IDs.
func makeDocs(n int) []*cas.CAS {
	docs := make([]*cas.CAS, n)
	for i := range docs {
		c := cas.New(fmt.Sprintf("report text %d", i))
		c.SetMetadata(pipeline.MetaDocID, fmt.Sprintf("D%05d", i))
		docs[i] = c
	}
	return docs
}

func markEngine(name string) pipeline.Engine {
	return pipeline.EngineFunc{EngineName: name, Fn: func(c *cas.CAS) error {
		c.SetMetadata("mark:"+name, "1")
		return nil
	}}
}

// TestChaosCollectionRun is the acceptance chaos test: with a 10% injected
// engine error rate (plus occasional panics) over 600 documents, the
// collection run completes, every failed document appears exactly once in
// the dead-letter consumer with engine attribution, and the run statistics
// reconcile (processed + dead-lettered = read).
func TestChaosCollectionRun(t *testing.T) {
	const nDocs = 600
	in := NewInjector(42, Config{ErrorRate: 0.10, PanicRate: 0.02})
	p, err := pipeline.New(
		in.Engine(markEngine("tokenizer")),
		in.Engine(markEngine("langdetect")),
		in.Engine(markEngine("annotator")),
	)
	if err != nil {
		t.Fatal(err)
	}

	engineNames := map[string]bool{"tokenizer": true, "langdetect": true, "annotator": true}
	var dead []pipeline.DeadLetter
	consumed := map[string]bool{}
	stats, err := p.RunWithConfig(
		context.Background(),
		&pipeline.SliceReader{CASes: makeDocs(nDocs)},
		pipeline.ConsumerFunc(func(c *cas.CAS) error {
			consumed[c.Metadata(pipeline.MetaDocID)] = true
			return nil
		}),
		pipeline.RunConfig{
			DeadLetter: func(d pipeline.DeadLetter) error { dead = append(dead, d); return nil },
			// A generous consecutive-failure budget: isolated chaos faults
			// must never trip it at a 12% combined fault rate.
			ErrorBudget: 50,
		})
	if err != nil {
		t.Fatalf("chaos run aborted: %v (stats %v)", err, stats)
	}

	if stats.Read != nDocs {
		t.Fatalf("read %d of %d documents", stats.Read, nDocs)
	}
	if stats.Processed+stats.DeadLettered != stats.Read {
		t.Fatalf("stats do not reconcile: %v", stats)
	}
	if stats.DeadLettered == 0 || stats.DeadLettered != len(dead) {
		t.Fatalf("dead-lettered %d, collected %d", stats.DeadLettered, len(dead))
	}
	// At a ~12% per-doc fault rate over 600 docs the dead-letter count is
	// concentrated far from 0 and far from everything.
	if stats.DeadLettered < nDocs/20 || stats.DeadLettered > nDocs/2 {
		t.Fatalf("implausible dead-letter count %d of %d", stats.DeadLettered, nDocs)
	}

	seen := map[string]bool{}
	for _, d := range dead {
		if d.DocID == "" {
			t.Fatalf("dead letter without document ID: %+v", d)
		}
		if seen[d.DocID] {
			t.Fatalf("document %s dead-lettered twice", d.DocID)
		}
		seen[d.DocID] = true
		if !engineNames[d.Engine] {
			t.Fatalf("dead letter for %s without engine attribution: %q", d.DocID, d.Engine)
		}
		if d.Err == nil || d.CAS == nil {
			t.Fatalf("dead letter for %s missing error or CAS", d.DocID)
		}
		var ie *InjectedError
		var pe *pipeline.PanicError
		if !errors.As(d.Err, &ie) && !errors.As(d.Err, &pe) {
			t.Fatalf("dead letter for %s carries unexpected error: %v", d.DocID, d.Err)
		}
		if consumed[d.DocID] {
			t.Fatalf("document %s both consumed and dead-lettered", d.DocID)
		}
	}
	if len(consumed) != stats.Processed {
		t.Fatalf("consumer saw %d documents, stats say %d", len(consumed), stats.Processed)
	}
}

// TestChaosRetryAbsorbsTransientFaults: with transient injection and a
// retry policy whose predicate trusts the error's own transience marker,
// virtually every document survives a 30% per-attempt error rate.
func TestChaosRetryAbsorbsTransientFaults(t *testing.T) {
	const nDocs = 500
	in := NewInjector(7, Config{ErrorRate: 0.30, Transient: true})
	retryTransient := func(err error) bool {
		var ie *InjectedError
		return errors.As(err, &ie) && ie.Transient
	}
	re := pipeline.Retry(in.Engine(markEngine("annotator")), pipeline.Policy{
		MaxAttempts: 8,
		Retryable:   retryTransient,
		Sleep:       func(time.Duration) {},
	})
	p, err := pipeline.New(re)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.RunWithConfig(
		context.Background(),
		&pipeline.SliceReader{CASes: makeDocs(nDocs)}, nil,
		pipeline.RunConfig{DeadLetter: func(pipeline.DeadLetter) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retried == 0 {
		t.Fatal("no retries recorded under 30% transient injection")
	}
	// 8 attempts at a 30% failure rate: per-document failure ~0.3^8 ≈ 7e-5.
	if stats.DeadLettered > nDocs/50 {
		t.Fatalf("retry failed to absorb transient faults: %v", stats)
	}
	if stats.Processed+stats.DeadLettered != stats.Read {
		t.Fatalf("stats do not reconcile: %v", stats)
	}
}

// TestChaosPersistenceConsumer drives a consumer that writes each document
// into reldb through injected faults: failing inserts dead-letter their
// document, the database keeps exactly the successfully consumed rows.
func TestChaosPersistenceConsumer(t *testing.T) {
	db, err := reldb.Open("") // in-memory
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable(reldb.Schema{
		Name: "processed",
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.TInt},
			{Name: "doc", Type: reldb.TString, NotNull: true},
		},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}

	const nDocs = 500
	in := NewInjector(11, Config{ErrorRate: 0.10})
	p, err := pipeline.New(markEngine("tokenizer"))
	if err != nil {
		t.Fatal(err)
	}
	var dead []pipeline.DeadLetter
	stats, err := p.RunWithConfig(
		context.Background(),
		&pipeline.SliceReader{CASes: makeDocs(nDocs)},
		pipeline.ConsumerFunc(func(c *cas.CAS) error {
			return in.Do("insert", func() error {
				_, err := db.Insert("processed", reldb.Row{nil, c.Metadata(pipeline.MetaDocID)})
				return err
			})
		}),
		pipeline.RunConfig{
			DeadLetter:  func(d pipeline.DeadLetter) error { dead = append(dead, d); return nil },
			ErrorBudget: 50,
		})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Count("processed")
	if err != nil {
		t.Fatal(err)
	}
	if rows != stats.Processed {
		t.Fatalf("database holds %d rows, stats processed %d", rows, stats.Processed)
	}
	if stats.Processed+stats.DeadLettered != nDocs {
		t.Fatalf("stats do not reconcile: %v", stats)
	}
	for _, d := range dead {
		if d.Engine != "(consumer)" {
			t.Fatalf("persistence failure attributed to %q", d.Engine)
		}
	}
}
