package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestShardHookModes(t *testing.T) {
	hook := ShardHook(map[int]ShardFault{
		1: {Mode: ShardError},
		2: {Mode: ShardSlow, Delay: 5 * time.Millisecond},
		3: {Mode: ShardWedge},
	})
	ctx := context.Background()

	if err := hook(ctx, 0, 1); err != nil {
		t.Fatalf("unassigned shard errored: %v", err)
	}

	err := hook(ctx, 1, 1)
	var inj *InjectedError
	if !errors.As(err, &inj) || !inj.Transient || inj.Op != "shard" {
		t.Fatalf("error shard returned %v, want transient shard *InjectedError", err)
	}

	start := time.Now()
	if err := hook(ctx, 2, 1); err != nil {
		t.Fatalf("slow shard errored: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("slow shard returned after %v, want >= 5ms", d)
	}

	// A wedged shard blocks until its context is cancelled.
	wctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- hook(wctx, 3, 1) }()
	select {
	case err := <-done:
		t.Fatalf("wedged shard returned early: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("wedged shard returned %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("wedged shard never observed cancellation")
	}
}

func TestShardHookFirstAttempts(t *testing.T) {
	hook := ShardHook(map[int]ShardFault{
		0: {Mode: ShardError, FirstAttempts: 1},
	})
	if err := hook(context.Background(), 0, 1); err == nil {
		t.Fatal("first attempt should fail")
	}
	if err := hook(context.Background(), 0, 2); err != nil {
		t.Fatalf("second attempt should be healthy, got %v", err)
	}
}

func TestShardSlowRespectsContext(t *testing.T) {
	hook := ShardHook(map[int]ShardFault{0: {Mode: ShardSlow, Delay: time.Second}})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := hook(ctx, 0, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("slow shard ignored context cancellation")
	}
}
