package faults

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/pipeline"
)

func okEngine(name string) pipeline.Engine {
	return pipeline.EngineFunc{EngineName: name, Fn: func(*cas.CAS) error { return nil }}
}

// TestDeterministicSchedule: two injectors with the same seed produce the
// same fault schedule; a different seed produces a different one.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := NewInjector(seed, Config{ErrorRate: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Do("op", func() error { return nil }) != nil
		}
		return out
	}
	a, b := schedule(1), schedule(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := schedule(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestDoInjectsAtConfiguredRate(t *testing.T) {
	in := NewInjector(7, Config{ErrorRate: 0.1})
	const calls = 5000
	failed := 0
	for i := 0; i < calls; i++ {
		if err := in.Do("op", func() error { return nil }); err != nil {
			failed++
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Op != "op" {
				t.Fatalf("err = %v", err)
			}
		}
	}
	if failed < calls/20 || failed > calls/5 {
		t.Fatalf("failed %d of %d calls at a 10%% rate", failed, calls)
	}
	errs, panics, stalls := in.Counts()
	if errs != failed || panics != 0 || stalls != 0 {
		t.Fatalf("counts = %d/%d/%d, want %d/0/0", errs, panics, stalls, failed)
	}
}

func TestDoPassesThroughOperation(t *testing.T) {
	in := NewInjector(1, Config{}) // no faults configured
	ran := false
	if err := in.Do("op", func() error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("ran=%v err=%v", ran, err)
	}
	opErr := errors.New("real failure")
	if err := in.Do("op", func() error { return opErr }); !errors.Is(err, opErr) {
		t.Fatalf("err = %v, want the operation's own error", err)
	}
}

func TestEngineWrapperInjectsWithAttribution(t *testing.T) {
	in := NewInjector(3, Config{ErrorRate: 1})
	e := in.Engine(okEngine("tokenizer"))
	if e.Name() != "tokenizer" {
		t.Fatalf("name = %q", e.Name())
	}
	err := e.Process(cas.New("d"))
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Op != "tokenizer" {
		t.Fatalf("err = %v", err)
	}
}

func TestEnginePanicInjection(t *testing.T) {
	in := NewInjector(3, Config{PanicRate: 1})
	e := in.Engine(okEngine("annotator"))
	p, err := pipeline.New(e)
	if err != nil {
		t.Fatal(err)
	}
	// The pipeline's panic recovery must convert the injected panic into
	// an attributed error instead of crashing the test process.
	perr := p.Process(cas.New("d"))
	var pe *pipeline.PanicError
	if !errors.As(perr, &pe) {
		t.Fatalf("err = %v, want recovered *pipeline.PanicError", perr)
	}
	if _, ok := pe.Value.(InjectedPanic); !ok {
		t.Fatalf("panic value = %#v, want InjectedPanic", pe.Value)
	}
}

func TestReaderWrapperInjects(t *testing.T) {
	in := NewInjector(9, Config{ErrorRate: 1})
	r := in.Reader(&pipeline.SliceReader{CASes: []*cas.CAS{cas.New("1")}})
	if _, err := r.Next(); err == nil {
		t.Fatal("expected injected reader error")
	}
}

func TestStallInjection(t *testing.T) {
	in := NewInjector(5, Config{StallRate: 1, Stall: 5 * time.Millisecond})
	start := time.Now()
	if err := in.Do("op", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("call returned after %v, want >= 5ms stall", d)
	}
	_, _, stalls := in.Counts()
	if stalls != 1 {
		t.Fatalf("stalls = %d", stalls)
	}
}

func TestTransientErrorsMarked(t *testing.T) {
	in := NewInjector(1, Config{ErrorRate: 1, Transient: true})
	err := in.Do("op", func() error { return nil })
	var ie *InjectedError
	if !errors.As(err, &ie) || !ie.Transient {
		t.Fatalf("err = %v, want transient InjectedError", err)
	}
}
