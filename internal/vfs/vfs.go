// Package vfs abstracts the filesystem operations the storage tier is
// allowed to perform. internal/reldb does all of its file I/O through a
// vfs.FS (enforced by qatklint's vfsonly analyzer), so a test can swap
// the real disk for a deterministic fault-injecting filesystem and prove
// crash consistency by simulation instead of assumption.
//
// The interface is deliberately narrow — open/create, rename, remove,
// mkdir, stat, per-file fsync and per-directory fsync — because those are
// exactly the operations whose durability semantics a write-ahead log
// depends on. Anything not needed by a WAL plus snapshot scheme is left
// out so the fault matrix stays enumerable.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// File is one open file handle. Durability is explicit: bytes written are
// not guaranteed to survive a power cut until Sync returns nil.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes the file's content to stable storage.
	Sync() error
	// Truncate changes the file's size. Like any other write it is not
	// durable until the next successful Sync.
	Truncate(size int64) error
}

// FS is a filesystem. Implementations must make Rename atomic with
// respect to crashes (either the old or the new entry survives, never
// neither) and must require SyncDir for directory-entry durability:
// a created, renamed or removed entry may be lost on power cut until the
// parent directory has been synced.
type FS interface {
	// OpenFile opens name with os.O_* flags.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// Stat describes the named file.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir makes the directory's entries (creates, renames, removes)
	// durable.
	SyncDir(dir string) error
}

// Open opens name read-only.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// Create creates or truncates name for writing.
func Create(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// osFS is the passthrough to the real filesystem.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		// Some filesystems refuse to fsync a directory handle; their
		// journal is then the only entry-durability guarantee available.
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return cerr
		}
		return fmt.Errorf("vfs: sync dir %s: %w", dir, err)
	}
	return cerr
}
