package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// FaultFS is a deterministic in-memory filesystem for crash-consistency
// and disk-chaos testing. It models the adversarial-but-realistic
// durability contract of a journaled filesystem:
//
//   - a file's durable content is whatever it held at its last successful
//     Sync; everything written since lives only in the "page cache",
//   - a created, renamed or removed directory entry is durable only once
//     the parent directory has been SyncDir'd,
//   - a power cut (Crash) discards all volatile state, optionally keeping
//     a seeded prefix of each file's unsynced bytes (the background
//     writeback / torn-write case), and then "reboots" into the surviving
//     image — stale handles from before the cut fail every operation.
//
// Every mutating operation (create, write, truncate, sync, sync-dir,
// rename, remove, mkdir) increments an operation counter; configuring
// CrashAt=k makes the k-th such operation the moment the power dies, so a
// harness can enumerate every possible cut point of a workload. Fault
// rates (fsync failure, short write, ENOSPC) draw from a seeded
// schedule: the same seed and call sequence yield the same faults.
type FaultFS struct {
	mu  sync.Mutex
	cfg FaultConfig
	rng *rand.Rand

	root  *memDir
	epoch int // bumped on Crash; invalidates pre-cut handles
	ops   int // mutating operations attempted
	dead  bool

	seq         int // injected fault sequence number
	fsyncFails  int
	shortWrites int
	enospcs     int
}

// FaultConfig configures a FaultFS. The zero value is a well-behaved
// in-memory filesystem (no faults, no crash).
type FaultConfig struct {
	// Seed drives the fault schedule and crash-retention draws.
	Seed int64
	// FsyncFailRate is the probability that a Sync or SyncDir fails,
	// leaving durability untransferred (the fsyncgate model).
	FsyncFailRate float64
	// ShortWriteRate is the probability that a Write persists only a
	// seeded prefix of its bytes and returns an error.
	ShortWriteRate float64
	// ENOSPCRate is the probability that a Write fails entirely with a
	// no-space error.
	ENOSPCRate float64
	// CrashAt, when > 0, makes the CrashAt-th mutating operation the
	// power-cut point: it and every later operation fail with ErrPowerCut
	// until Crash is called to reboot into the surviving image.
	CrashAt int
}

// RetainMode selects how much unsynced data survives a power cut.
type RetainMode int

const (
	// RetainNone keeps only explicitly fsynced bytes — the strictest disk.
	RetainNone RetainMode = iota
	// RetainPrefix keeps fsynced bytes plus a seeded-random prefix of each
	// file's unsynced suffix, modelling background writeback interrupted
	// mid-flush (torn writes).
	RetainPrefix
	// RetainAll keeps every written byte — the kindest disk, where the OS
	// flushed everything just before the cut.
	RetainAll
)

// Sentinel errors for injected failures.
var (
	// ErrPowerCut is returned by every operation at and after the
	// configured power-cut point, and by stale handles after a reboot.
	ErrPowerCut = errors.New("vfs: simulated power cut")
	// ErrFsyncFailed marks an injected fsync failure.
	ErrFsyncFailed = errors.New("vfs: fsync failure")
	// ErrShortWrite marks an injected torn write.
	ErrShortWrite = errors.New("vfs: short write")
	// ErrNoSpace marks an injected out-of-space failure.
	ErrNoSpace = errors.New("vfs: no space left on device")
)

// FaultError is one injected disk fault, attributable by operation, path
// and schedule sequence number; it unwraps to the kind sentinel.
type FaultError struct {
	Op   string
	Path string
	Seq  int
	Err  error
}

// Error describes the injected fault.
func (e *FaultError) Error() string {
	return fmt.Sprintf("vfs: injected %v during %s %s (fault #%d)", e.Err, e.Op, e.Path, e.Seq)
}

// Unwrap exposes the kind sentinel (ErrFsyncFailed, ErrShortWrite,
// ErrNoSpace).
func (e *FaultError) Unwrap() error { return e.Err }

// memFile is one file inode: volatile content plus the durable image as
// of the last successful sync.
type memFile struct {
	data    []byte
	durable []byte
}

// memDir is one directory. Subdirectories are durable on creation (a
// documented simplification); file entries become durable at SyncDir.
type memDir struct {
	dirs         map[string]*memDir
	files        map[string]*memFile
	durableFiles map[string]*memFile
}

func newMemDir() *memDir {
	return &memDir{
		dirs:         map[string]*memDir{},
		files:        map[string]*memFile{},
		durableFiles: map[string]*memFile{},
	}
}

// NewFaultFS builds an empty filesystem with the given configuration.
func NewFaultFS(cfg FaultConfig) *FaultFS {
	return &FaultFS{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		root: newMemDir(),
	}
}

// OpCount reports how many mutating operations have been attempted.
func (f *FaultFS) OpCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Counts reports how many faults of each kind have been injected.
func (f *FaultFS) Counts() (fsyncFails, shortWrites, enospcs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fsyncFails, f.shortWrites, f.enospcs
}

// SetRates replaces the fault rates mid-run, leaving the seed schedule
// position and crash configuration unchanged. Useful to set up state on a
// healthy disk and then turn the weather bad.
func (f *FaultFS) SetRates(fsyncFail, shortWrite, enospc float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg.FsyncFailRate = fsyncFail
	f.cfg.ShortWriteRate = shortWrite
	f.cfg.ENOSPCRate = enospc
}

// DisableFaults zeroes the fault rates (the crash point is unaffected),
// so recovery can be verified on a well-behaved disk.
func (f *FaultFS) DisableFaults() { f.SetRates(0, 0, 0) }

// gate accounts one mutating operation and trips the power cut when the
// configured operation index is reached. Caller holds f.mu.
func (f *FaultFS) gate() error {
	if f.dead {
		return ErrPowerCut
	}
	f.ops++
	if f.cfg.CrashAt > 0 && f.ops >= f.cfg.CrashAt {
		f.dead = true
		return ErrPowerCut
	}
	return nil
}

// draw decides whether a fault of the given kind fires. Caller holds f.mu.
func (f *FaultFS) draw(rate float64) bool {
	return rate > 0 && f.rng.Float64() < rate
}

// Crash simulates the power cut completing and the machine rebooting:
// volatile state is discarded per the durability model, retain decides
// how much unsynced file data the "page cache writeback" had managed to
// flush, handles from before the cut are invalidated, and the filesystem
// becomes usable again over the surviving image.
func (f *FaultFS) Crash(retain RetainMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	survivors := map[*memFile]bool{}
	f.crashDir(f.root, survivors)
	for file := range survivors {
		switch retain {
		case RetainAll:
			// Everything written made it to disk just before the cut.
			file.durable = append([]byte(nil), file.data...)
		case RetainPrefix:
			// Background writeback flushed a seeded prefix of the unsynced
			// suffix; an unsynced truncate below the durable size is lost.
			if n := len(file.data) - len(file.durable); n > 0 {
				keep := f.rng.Intn(n + 1)
				file.durable = append([]byte(nil), file.data[:len(file.durable)+keep]...)
			}
		}
		file.data = append([]byte(nil), file.durable...)
	}
	f.epoch++
	f.dead = false
	f.cfg.CrashAt = 0
}

// crashDir reverts one directory's entries to the durable set and
// collects the surviving inodes.
func (f *FaultFS) crashDir(d *memDir, survivors map[*memFile]bool) {
	d.files = map[string]*memFile{}
	for name, file := range d.durableFiles {
		d.files[name] = file
		survivors[file] = true
	}
	for _, sub := range d.dirs {
		f.crashDir(sub, survivors)
	}
}

// split normalizes a path into its directory components.
func split(name string) []string {
	clean := filepath.ToSlash(filepath.Clean(name))
	clean = strings.TrimPrefix(clean, "/")
	if clean == "." || clean == "" {
		return nil
	}
	return strings.Split(clean, "/")
}

// walk resolves the directory holding the last component of name.
// Caller holds f.mu.
func (f *FaultFS) walk(parts []string) (*memDir, error) {
	d := f.root
	for _, p := range parts {
		sub, ok := d.dirs[p]
		if !ok {
			return nil, fs.ErrNotExist
		}
		d = sub
	}
	return d, nil
}

// resolveParent returns the parent directory and base name of path.
func (f *FaultFS) resolveParent(name string) (*memDir, string, error) {
	parts := split(name)
	if len(parts) == 0 {
		return nil, "", fs.ErrInvalid
	}
	d, err := f.walk(parts[:len(parts)-1])
	if err != nil {
		return nil, "", err
	}
	return d, parts[len(parts)-1], nil
}

func pathErr(op, path string, err error) error {
	return &fs.PathError{Op: op, Path: path, Err: err}
}

// OpenFile implements FS.
func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return nil, pathErr("open", name, ErrPowerCut)
	}
	dir, base, err := f.resolveParent(name)
	if err != nil {
		return nil, pathErr("open", name, err)
	}
	if _, isDir := dir.dirs[base]; isDir {
		return nil, pathErr("open", name, errors.New("vfs: is a directory"))
	}
	file, ok := dir.files[base]
	writable := flag&(os.O_WRONLY|os.O_RDWR) != 0
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, pathErr("open", name, fs.ErrNotExist)
	case !ok:
		if err := f.gate(); err != nil {
			return nil, pathErr("create", name, err)
		}
		file = &memFile{}
		dir.files[base] = file
	case flag&os.O_TRUNC != 0 && writable:
		if err := f.gate(); err != nil {
			return nil, pathErr("truncate", name, err)
		}
		file.data = nil
	}
	return &faultFile{
		fs: f, file: file, name: name, epoch: f.epoch,
		append: flag&os.O_APPEND != 0, writable: writable,
	}, nil
}

// Rename implements FS. The new entry is volatile until SyncDir.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.gate(); err != nil {
		return pathErr("rename", oldpath, err)
	}
	od, ob, err := f.resolveParent(oldpath)
	if err != nil {
		return pathErr("rename", oldpath, err)
	}
	nd, nb, err := f.resolveParent(newpath)
	if err != nil {
		return pathErr("rename", newpath, err)
	}
	file, ok := od.files[ob]
	if !ok {
		return pathErr("rename", oldpath, fs.ErrNotExist)
	}
	delete(od.files, ob)
	nd.files[nb] = file
	return nil
}

// Remove implements FS. The removal is volatile until SyncDir.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.gate(); err != nil {
		return pathErr("remove", name, err)
	}
	dir, base, err := f.resolveParent(name)
	if err != nil {
		return pathErr("remove", name, err)
	}
	if _, ok := dir.files[base]; !ok {
		return pathErr("remove", name, fs.ErrNotExist)
	}
	delete(dir.files, base)
	return nil
}

// MkdirAll implements FS. Directories are durable on creation (a
// simplification: reldb only ever creates its root data directory).
func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	parts := split(path)
	d := f.root
	created := false
	for _, p := range parts {
		if _, clash := d.files[p]; clash {
			return pathErr("mkdir", path, errors.New("vfs: not a directory"))
		}
		sub, ok := d.dirs[p]
		if !ok {
			if !created {
				if err := f.gate(); err != nil {
					return pathErr("mkdir", path, err)
				}
				created = true
			}
			sub = newMemDir()
			d.dirs[p] = sub
		}
		d = sub
	}
	if !created && f.dead {
		return pathErr("mkdir", path, ErrPowerCut)
	}
	return nil
}

// Stat implements FS.
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return nil, pathErr("stat", name, ErrPowerCut)
	}
	parts := split(name)
	if len(parts) == 0 {
		return memInfo{name: "/", dir: true}, nil
	}
	dir, err := f.walk(parts[:len(parts)-1])
	if err != nil {
		return nil, pathErr("stat", name, err)
	}
	base := parts[len(parts)-1]
	if _, ok := dir.dirs[base]; ok {
		return memInfo{name: base, dir: true}, nil
	}
	if file, ok := dir.files[base]; ok {
		return memInfo{name: base, size: int64(len(file.data))}, nil
	}
	return nil, pathErr("stat", name, fs.ErrNotExist)
}

// SyncDir implements FS: the directory's current entries become durable.
// Subject to the injected fsync failure rate, like File.Sync.
func (f *FaultFS) SyncDir(dirPath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.gate(); err != nil {
		return pathErr("syncdir", dirPath, err)
	}
	d, err := f.walk(split(dirPath))
	if err != nil {
		return pathErr("syncdir", dirPath, err)
	}
	if f.draw(f.cfg.FsyncFailRate) {
		f.seq++
		f.fsyncFails++
		return &FaultError{Op: "syncdir", Path: dirPath, Seq: f.seq, Err: ErrFsyncFailed}
	}
	d.durableFiles = map[string]*memFile{}
	for name, file := range d.files {
		d.durableFiles[name] = file
	}
	return nil
}

// memInfo is the fs.FileInfo of an in-memory file or directory.
type memInfo struct {
	name string
	size int64
	dir  bool
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }

// faultFile is an open handle on a FaultFS file.
type faultFile struct {
	fs       *FaultFS
	file     *memFile
	name     string
	off      int64
	epoch    int
	append   bool
	writable bool
	closed   bool
}

// Name implements File.
func (h *faultFile) Name() string { return h.name }

// valid checks the handle against closure, reboot epoch and a dead disk.
// Caller holds h.fs.mu.
func (h *faultFile) valid() error {
	if h.closed {
		return fs.ErrClosed
	}
	if h.epoch != h.fs.epoch {
		return ErrPowerCut // handle predates the reboot
	}
	if h.fs.dead {
		return ErrPowerCut
	}
	return nil
}

// Read implements File.
func (h *faultFile) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.valid(); err != nil {
		return 0, pathErr("read", h.name, err)
	}
	if h.off >= int64(len(h.file.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.file.data[h.off:])
	h.off += int64(n)
	return n, nil
}

// Write implements File, subject to the injected ENOSPC and short-write
// rates. Written bytes are volatile until Sync.
func (h *faultFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.valid(); err != nil {
		return 0, pathErr("write", h.name, err)
	}
	if !h.writable {
		return 0, pathErr("write", h.name, fs.ErrInvalid)
	}
	if err := h.fs.gate(); err != nil {
		return 0, pathErr("write", h.name, err)
	}
	if h.fs.draw(h.fs.cfg.ENOSPCRate) {
		h.fs.seq++
		h.fs.enospcs++
		return 0, &FaultError{Op: "write", Path: h.name, Seq: h.fs.seq, Err: ErrNoSpace}
	}
	short := -1
	if h.fs.draw(h.fs.cfg.ShortWriteRate) && len(p) > 0 {
		h.fs.seq++
		h.fs.shortWrites++
		short = h.fs.rng.Intn(len(p))
	}
	if h.append {
		h.off = int64(len(h.file.data))
	}
	if end := h.off + int64(len(p)); end > int64(len(h.file.data)) {
		grown := make([]byte, end)
		copy(grown, h.file.data)
		h.file.data = grown
	}
	n := copy(h.file.data[h.off:], p)
	if short >= 0 {
		// Only the torn prefix made it; drop the rest again.
		h.file.data = h.file.data[:h.off+int64(short)]
		h.off += int64(short)
		return short, &FaultError{Op: "write", Path: h.name, Seq: h.fs.seq, Err: ErrShortWrite}
	}
	h.off += int64(n)
	return n, nil
}

// Seek implements File.
func (h *faultFile) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.valid(); err != nil {
		return 0, pathErr("seek", h.name, err)
	}
	switch whence {
	case io.SeekStart:
		h.off = offset
	case io.SeekCurrent:
		h.off += offset
	case io.SeekEnd:
		h.off = int64(len(h.file.data)) + offset
	default:
		return 0, pathErr("seek", h.name, fs.ErrInvalid)
	}
	if h.off < 0 {
		h.off = 0
		return 0, pathErr("seek", h.name, fs.ErrInvalid)
	}
	return h.off, nil
}

// Truncate implements File; the new size is volatile until Sync.
func (h *faultFile) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.valid(); err != nil {
		return pathErr("truncate", h.name, err)
	}
	if !h.writable {
		return pathErr("truncate", h.name, fs.ErrInvalid)
	}
	if err := h.fs.gate(); err != nil {
		return pathErr("truncate", h.name, err)
	}
	switch {
	case size < 0:
		return pathErr("truncate", h.name, fs.ErrInvalid)
	case size <= int64(len(h.file.data)):
		h.file.data = h.file.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, h.file.data)
		h.file.data = grown
	}
	return nil
}

// Sync implements File: on success the volatile content becomes the
// durable image; an injected failure (FsyncFailRate) transfers nothing.
func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.valid(); err != nil {
		return pathErr("sync", h.name, err)
	}
	if err := h.fs.gate(); err != nil {
		return pathErr("sync", h.name, err)
	}
	if h.fs.draw(h.fs.cfg.FsyncFailRate) {
		h.fs.seq++
		h.fs.fsyncFails++
		return &FaultError{Op: "sync", Path: h.name, Seq: h.fs.seq, Err: ErrFsyncFailed}
	}
	h.file.durable = append([]byte(nil), h.file.data...)
	return nil
}

// Close implements File.
func (h *faultFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return pathErr("close", h.name, fs.ErrClosed)
	}
	h.closed = true
	return nil
}
