package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func writeAll(t *testing.T, f File, p []byte) {
	t.Helper()
	if _, err := f.Write(p); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func readAll(t *testing.T, fsys FS, name string) []byte {
	t.Helper()
	f, err := Open(fsys, name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return b
}

func TestOSFSRoundTrip(t *testing.T) {
	fsys := OS()
	dir := t.TempDir()
	name := filepath.Join(dir, "a.txt")
	f, err := Create(fsys, name)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatalf("syncdir: %v", err)
	}
	renamed := filepath.Join(dir, "b.txt")
	if err := fsys.Rename(name, renamed); err != nil {
		t.Fatal(err)
	}
	fi, err := fsys.Stat(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 5 {
		t.Fatalf("size = %d, want 5", fi.Size())
	}
	if got := readAll(t, fsys, renamed); string(got) != "hello" {
		t.Fatalf("content = %q", got)
	}
	if err := fsys.Remove(renamed); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(renamed); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stat after remove: %v", err)
	}
}

// setupDurable creates dir/f with a durable directory entry.
func setupDurable(t *testing.T, fsys *FaultFS) File {
	t.Helper()
	if err := fsys.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := Create(fsys, "d/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFaultFSDurabilityModel(t *testing.T) {
	fsys := NewFaultFS(FaultConfig{Seed: 1})
	f := setupDurable(t, fsys)
	writeAll(t, f, []byte("synced."))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("volatile"))

	fsys.Crash(RetainNone)

	// The handle from before the cut is poisoned.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("stale handle write: %v, want ErrPowerCut", err)
	}
	// Only explicitly fsynced bytes survive.
	if got := readAll(t, fsys, "d/f"); string(got) != "synced." {
		t.Fatalf("after crash: %q, want %q", got, "synced.")
	}
}

func TestFaultFSEntryDurabilityNeedsSyncDir(t *testing.T) {
	fsys := NewFaultFS(FaultConfig{Seed: 1})
	if err := fsys.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := Create(fsys, "d/f")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("data"))
	// File content fsynced, but the directory entry never was: the whole
	// file is lost on power cut.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	fsys.Crash(RetainAll)
	if _, err := fsys.Stat("d/f"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unsynced dir entry survived the cut: %v", err)
	}
}

func TestFaultFSRetainModes(t *testing.T) {
	build := func(seed int64) (*FaultFS, File) {
		fsys := NewFaultFS(FaultConfig{Seed: seed})
		f := setupDurable(t, fsys)
		writeAll(t, f, []byte("dur"))
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		writeAll(t, f, []byte("+unsynced"))
		return fsys, f
	}

	fsys, _ := build(7)
	fsys.Crash(RetainAll)
	if got := readAll(t, fsys, "d/f"); string(got) != "dur+unsynced" {
		t.Fatalf("RetainAll: %q", got)
	}

	fsys, _ = build(7)
	fsys.Crash(RetainPrefix)
	got := string(readAll(t, fsys, "d/f"))
	if len(got) < len("dur") || len(got) > len("dur+unsynced") || got != "dur+unsynced"[:len(got)] {
		t.Fatalf("RetainPrefix: %q is not a prefix extension of the durable image", got)
	}
	// Same seed, same retention draw.
	fsys2, _ := build(7)
	fsys2.Crash(RetainPrefix)
	if got2 := string(readAll(t, fsys2, "d/f")); got2 != got {
		t.Fatalf("RetainPrefix not deterministic: %q vs %q", got2, got)
	}
}

func TestFaultFSCrashAtEnumerates(t *testing.T) {
	// The workload's mutating ops: mkdir(1) create(2) write(3) sync(4)
	// syncdir(5) rename(6).
	workload := func(fsys *FaultFS) error {
		if err := fsys.MkdirAll("d", 0o755); err != nil {
			return err
		}
		f, err := Create(fsys, "d/f")
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("x")); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := fsys.SyncDir("d"); err != nil {
			return err
		}
		return fsys.Rename("d/f", "d/g")
	}
	clean := NewFaultFS(FaultConfig{Seed: 1})
	if err := workload(clean); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	total := clean.OpCount()
	if total != 6 {
		t.Fatalf("clean run counted %d mutating ops, want 6", total)
	}
	for cut := 1; cut <= total; cut++ {
		fsys := NewFaultFS(FaultConfig{Seed: 1, CrashAt: cut})
		err := workload(fsys)
		if !errors.Is(err, ErrPowerCut) {
			t.Fatalf("cut=%d: workload error %v, want ErrPowerCut", cut, err)
		}
		// Every operation after the cut point also fails until reboot.
		if err := fsys.MkdirAll("late", 0o755); !errors.Is(err, ErrPowerCut) {
			t.Fatalf("cut=%d: op on dead disk: %v", cut, err)
		}
		fsys.Crash(RetainNone)
		// Rebooted: the disk works again over the surviving image.
		if err := fsys.MkdirAll("late", 0o755); err != nil {
			t.Fatalf("cut=%d: op after reboot: %v", cut, err)
		}
		// The rename is the last op; before it completes the durable view
		// must still be the old name (or no file at all), never both.
		_, oldErr := fsys.Stat("d/f")
		_, newErr := fsys.Stat("d/g")
		if oldErr == nil && newErr == nil {
			t.Fatalf("cut=%d: both rename source and target exist", cut)
		}
		if cut == total && newErr == nil {
			t.Fatalf("cut=%d: rename became durable without SyncDir", cut)
		}
	}
}

func TestFaultFSInjectedFaults(t *testing.T) {
	t.Run("fsync", func(t *testing.T) {
		fsys := NewFaultFS(FaultConfig{Seed: 3})
		f := setupDurable(t, fsys)
		writeAll(t, f, []byte("abc"))
		fsys.cfg.FsyncFailRate = 1
		err := f.Sync()
		var fe *FaultError
		if !errors.As(err, &fe) || !errors.Is(err, ErrFsyncFailed) {
			t.Fatalf("sync: %v, want FaultError{ErrFsyncFailed}", err)
		}
		// The failed sync transferred nothing.
		fsys.Crash(RetainNone)
		if got := readAll(t, fsys, "d/f"); len(got) != 0 {
			t.Fatalf("durable after failed sync: %q", got)
		}
	})
	t.Run("enospc", func(t *testing.T) {
		fsys := NewFaultFS(FaultConfig{Seed: 3})
		f := setupDurable(t, fsys)
		fsys.cfg.ENOSPCRate = 1
		n, err := f.Write([]byte("abc"))
		if n != 0 || !errors.Is(err, ErrNoSpace) {
			t.Fatalf("write: n=%d err=%v, want 0, ErrNoSpace", n, err)
		}
	})
	t.Run("short write", func(t *testing.T) {
		fsys := NewFaultFS(FaultConfig{Seed: 3})
		f := setupDurable(t, fsys)
		fsys.cfg.ShortWriteRate = 1
		n, err := f.Write([]byte("abcdefgh"))
		if !errors.Is(err, ErrShortWrite) {
			t.Fatalf("write: %v, want ErrShortWrite", err)
		}
		if n < 0 || n >= 8 {
			t.Fatalf("short write persisted n=%d of 8", n)
		}
		fsys.DisableFaults()
		if got := readAll(t, fsys, "d/f"); len(got) != n {
			t.Fatalf("file holds %d bytes after short write of %d", len(got), n)
		}
		_, sw, _ := fsys.Counts()
		if sw != 1 {
			t.Fatalf("short write count = %d", sw)
		}
	})
}

func TestFaultFSDeterministicSchedule(t *testing.T) {
	run := func() []int {
		fsys := NewFaultFS(FaultConfig{Seed: 11})
		f := setupDurable(t, fsys)
		fsys.cfg.FsyncFailRate = 0.3
		var fails []int
		for i := 0; i < 40; i++ {
			writeAll(t, f, []byte{byte(i)})
			if err := f.Sync(); err != nil {
				fails = append(fails, i)
			}
		}
		return fails
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("rate 0.3 over 40 syncs injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("schedules differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules differ at %d: %v vs %v", i, a, b)
		}
	}
}

func TestFaultFSRemoveVolatileUntilSyncDir(t *testing.T) {
	fsys := NewFaultFS(FaultConfig{Seed: 1})
	f := setupDurable(t, fsys)
	writeAll(t, f, []byte("keep"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove("d/f"); err != nil {
		t.Fatal(err)
	}
	// Removal never made durable: the file is resurrected by the cut.
	fsys.Crash(RetainNone)
	if got := readAll(t, fsys, "d/f"); string(got) != "keep" {
		t.Fatalf("after crash: %q, want %q", got, "keep")
	}
	// Now make the removal durable and crash again: the file stays gone.
	if err := fsys.Remove("d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fsys.Crash(RetainNone)
	if _, err := fsys.Stat("d/f"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("durably removed file survived: %v", err)
	}
}

func TestFaultFSAppendAndSeek(t *testing.T) {
	fsys := NewFaultFS(FaultConfig{Seed: 1})
	if err := fsys.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.OpenFile("d/log", os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("aa"))
	// Appending ignores the read offset.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("bb"))
	if err := f.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fsys.Crash(RetainNone)
	if got := readAll(t, fsys, "d/log"); string(got) != "aab" {
		t.Fatalf("append+truncate image: %q, want %q", got, "aab")
	}
}
