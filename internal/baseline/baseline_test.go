package baseline

import (
	"testing"

	"repro/internal/kb"
)

func store() *kb.Memory {
	m := kb.NewMemory()
	m.AddBundle("P1", "E_COMMON", []string{"a", "b"})
	m.AddBundle("P1", "E_COMMON", []string{"a", "c"})
	m.AddBundle("P1", "E_COMMON", []string{"b", "c"})
	m.AddBundle("P1", "E_MID", []string{"a", "d"})
	m.AddBundle("P1", "E_MID", []string{"d", "e"})
	m.AddBundle("P1", "E_RARE", []string{"f"})
	m.AddBundle("P2", "E_OTHER", []string{"g"})
	return m
}

func TestCodeFrequencyOrdering(t *testing.T) {
	b := CodeFrequency{Store: store()}
	got := b.Recommend("P1")
	if len(got) != 3 {
		t.Fatalf("list = %v", got)
	}
	if got[0].Code != "E_COMMON" || got[1].Code != "E_MID" || got[2].Code != "E_RARE" {
		t.Fatalf("order = %v", got)
	}
	if got[0].Score != 3 || got[1].Score != 2 || got[2].Score != 1 {
		t.Fatalf("scores = %v", got)
	}
}

func TestCodeFrequencyUnknownPartGlobal(t *testing.T) {
	b := CodeFrequency{Store: store()}
	got := b.Recommend("P_UNKNOWN")
	if len(got) != 4 || got[0].Code != "E_COMMON" {
		t.Fatalf("global list = %v", got)
	}
}

func TestCandidateSetUnsorted(t *testing.T) {
	b := CandidateSet{Store: store()}
	// Feature "a" touches E_COMMON (2 nodes) and E_MID (1 node).
	got := b.Recommend("P1", []string{"a"})
	if len(got) != 2 {
		t.Fatalf("candidates = %v", got)
	}
	codes := map[string]bool{}
	for _, sc := range got {
		codes[sc.Code] = true
		if sc.Score != 0 {
			t.Fatalf("candidate-set baseline must not score: %v", got)
		}
	}
	if !codes["E_COMMON"] || !codes["E_MID"] {
		t.Fatalf("codes = %v", codes)
	}
}

func TestCandidateSetNoSharedFeature(t *testing.T) {
	b := CandidateSet{Store: store()}
	if got := b.Recommend("P1", []string{"zzz"}); len(got) != 0 {
		t.Fatalf("candidates = %v", got)
	}
}

func TestCandidateSetUnknownPartAllNodes(t *testing.T) {
	b := CandidateSet{Store: store()}
	got := b.Recommend("P_UNKNOWN", []string{"a"})
	// Fallback: all nodes → all 4 distinct codes.
	if len(got) != 4 {
		t.Fatalf("fallback candidates = %v", got)
	}
}
