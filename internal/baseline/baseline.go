// Package baseline implements the two text-ignoring baselines of §5.1:
// the code-frequency baseline, which sorts the error codes available for a
// part ID by their frequency in the database, and the unsorted candidate-
// set baseline, which returns the error codes of all knowledge nodes that
// share the part ID and at least one feature with the data bundle, in no
// meaningful order.
package baseline

import (
	"sort"

	"repro/internal/core"
	"repro/internal/kb"
)

// CodeFrequency recommends a part's error codes by descending training
// frequency. "Sorting available codes by their frequency can be a first
// step towards supporting quality workers" (§5.1).
type CodeFrequency struct {
	Store kb.Store
}

// Recommend returns the frequency-ranked code list for a part ID; the
// score of each entry is its training-set count.
func (b CodeFrequency) Recommend(partID string) []core.ScoredCode {
	counts := b.Store.CodeFrequencies(partID)
	out := make([]core.ScoredCode, len(counts))
	for i, cc := range counts {
		out[i] = core.ScoredCode{Code: cc.Code, Score: float64(cc.Count)}
	}
	return out
}

// CandidateSet returns the unsorted candidate set (§4.3 selection, §5.1
// baseline 2): the distinct error codes of all candidate nodes, in no
// meaningful order. Every code gets score 0.
//
// "Unsorted" needs care: the raw insertion order of our inverted index
// accidentally correlates with code frequency (frequent codes own more
// nodes and surface earlier in the candidate list), which would flatter
// the baseline. To represent set semantics honestly the codes are ordered
// by a deterministic per-query hash — arbitrary, reproducible, and
// carrying no similarity information, exactly what iterating a set gives.
type CandidateSet struct {
	Store kb.Store
}

// Recommend returns the unranked candidate code list for a data bundle.
func (b CandidateSet) Recommend(partID string, features []string) []core.ScoredCode {
	cands := b.Store.Candidates(partID, features)
	seen := make(map[string]bool, len(cands))
	var codes []string
	for _, n := range cands {
		if !seen[n.ErrorCode] {
			seen[n.ErrorCode] = true
			codes = append(codes, n.ErrorCode)
		}
	}
	var sig uint64 = 14695981039346656037
	for _, f := range features {
		for i := 0; i < len(f); i++ {
			sig = (sig ^ uint64(f[i])) * 1099511628211
		}
	}
	sort.Slice(codes, func(i, j int) bool {
		return hashCode(codes[i], sig) < hashCode(codes[j], sig)
	})
	out := make([]core.ScoredCode, len(codes))
	for i, code := range codes {
		out[i] = core.ScoredCode{Code: code}
	}
	return out
}

// hashCode mixes a code with the query signature (FNV-1a).
func hashCode(code string, sig uint64) uint64 {
	h := sig
	for i := 0; i < len(code); i++ {
		h = (h ^ uint64(code[i])) * 1099511628211
	}
	return h
}
