package annotate

import (
	"reflect"
	"testing"

	"repro/internal/cas"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
)

func sampleTaxonomy(t *testing.T) *taxonomy.Taxonomy {
	t.Helper()
	tax := taxonomy.New()
	add := func(c taxonomy.Concept) {
		if err := tax.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	add(taxonomy.Concept{ID: 100, Kind: taxonomy.KindComponent, Path: "Body/Fender", Synonyms: map[string][]string{
		"de": {"kotflügel"},
		"en": {"fender", "mud guard", "splashboard"},
	}})
	add(taxonomy.Concept{ID: 200, Kind: taxonomy.KindSymptom, Path: "Noise/Squeak", Synonyms: map[string][]string{
		"de": {"quietschen"},
		"en": {"squeak", "squeaking noise"},
	}})
	add(taxonomy.Concept{ID: 300, Kind: taxonomy.KindSymptom, Path: "Noise", Synonyms: map[string][]string{
		"de": {"geräusch"},
		"en": {"noise"},
	}})
	add(taxonomy.Concept{ID: 400, Kind: taxonomy.KindComponent, Path: "Electric/Fan", Synonyms: map[string][]string{
		"de": {"lüfter"},
		"en": {"fan"},
	}})
	add(taxonomy.Concept{ID: 500, Kind: taxonomy.KindSolution, Path: "Replace", Synonyms: map[string][]string{
		"de": {"austauschen"},
		"en": {"replace"},
	}})
	return tax
}

func annotateText(t *testing.T, text string, a interface {
	Process(*cas.CAS) error
}) *cas.CAS {
	t.Helper()
	c := cas.New(text)
	if err := (textproc.Tokenizer{}).Process(c); err != nil {
		t.Fatal(err)
	}
	if err := a.Process(c); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConceptAnnotatorBasic(t *testing.T) {
	tax := sampleTaxonomy(t)
	a := NewConceptAnnotator(tax)
	c := annotateText(t, "The fender makes a squeak.", a)
	ids := ConceptIDs(c)
	if !reflect.DeepEqual(ids, []int{100, 200}) {
		t.Fatalf("concepts = %v", ids)
	}
}

func TestConceptAnnotatorMultiwordAndEnclosed(t *testing.T) {
	tax := sampleTaxonomy(t)
	a := NewConceptAnnotator(tax)
	// "squeaking noise" must match the multiword (concept 200); the
	// enclosed single-word "noise" (concept 300) must NOT be reported.
	c := annotateText(t, "customer reports squeaking noise from the mud guard", a)
	ids := ConceptIDs(c)
	if !reflect.DeepEqual(ids, []int{200, 100}) {
		t.Fatalf("concepts = %v, want [200 100]", ids)
	}
	anns := c.Select(TypeConcept)
	if len(anns) != 2 {
		t.Fatalf("annotations = %d", len(anns))
	}
	if c.CoveredText(anns[0]) != "squeaking noise" {
		t.Fatalf("covered = %q", c.CoveredText(anns[0]))
	}
	if c.CoveredText(anns[1]) != "mud guard" {
		t.Fatalf("covered = %q", c.CoveredText(anns[1]))
	}
}

func TestConceptAnnotatorSynonymCollapse(t *testing.T) {
	tax := sampleTaxonomy(t)
	a := NewConceptAnnotator(tax)
	// All three wordings map to the same concept ID (paper example).
	for _, text := range []string{"mud guard broken", "splashboard broken", "fender broken"} {
		c := annotateText(t, text, a)
		ids := ConceptIDs(c)
		if !reflect.DeepEqual(ids, []int{100}) {
			t.Fatalf("%q concepts = %v", text, ids)
		}
	}
}

func TestConceptAnnotatorMultilingual(t *testing.T) {
	tax := sampleTaxonomy(t)
	a := NewConceptAnnotator(tax)
	c := annotateText(t, "Lüfter quietschen beim Start, fan squeak on start", a)
	ids := ConceptIDs(c)
	if !reflect.DeepEqual(ids, []int{400, 200}) {
		t.Fatalf("concepts = %v (German and English should collapse)", ids)
	}
}

func TestConceptAnnotatorCaseInsensitive(t *testing.T) {
	tax := sampleTaxonomy(t)
	a := NewConceptAnnotator(tax)
	c := annotateText(t, "FENDER Fender fender", a)
	if got := len(c.Select(TypeConcept)); got != 3 {
		t.Fatalf("mentions = %d, want 3", got)
	}
}

func TestConceptAnnotatorKindFilter(t *testing.T) {
	tax := sampleTaxonomy(t)
	// Default: solutions not annotated.
	a := NewConceptAnnotator(tax)
	c := annotateText(t, "replace the fender", a)
	if ids := ConceptIDs(c); !reflect.DeepEqual(ids, []int{100}) {
		t.Fatalf("concepts = %v", ids)
	}
	// Explicitly include solutions.
	all := NewConceptAnnotator(tax, WithKinds(taxonomy.Kinds()...))
	c2 := annotateText(t, "replace the fender", all)
	if ids := ConceptIDs(c2); !reflect.DeepEqual(ids, []int{500, 100}) {
		t.Fatalf("concepts = %v", ids)
	}
}

func TestConceptAnnotatorKindFeature(t *testing.T) {
	tax := sampleTaxonomy(t)
	a := NewConceptAnnotator(tax)
	c := annotateText(t, "fender squeak", a)
	anns := c.Select(TypeConcept)
	if anns[0].Feature(FeatKind) != "component" || anns[1].Feature(FeatKind) != "symptom" {
		t.Fatalf("kinds = %q, %q", anns[0].Feature(FeatKind), anns[1].Feature(FeatKind))
	}
}

func TestLegacyAnnotatorLimitations(t *testing.T) {
	tax := sampleTaxonomy(t)
	legacy := NewLegacyAnnotator(tax)

	// Finds the exact lowercase German first synonym.
	c := annotateText(t, "lüfter defekt", legacy)
	if ids := ConceptIDs(c); !reflect.DeepEqual(ids, []int{400}) {
		t.Fatalf("concepts = %v", ids)
	}
	// Misses capitalized mentions (case-sensitive).
	c = annotateText(t, "Lüfter defekt", legacy)
	if ids := ConceptIDs(c); len(ids) != 0 {
		t.Fatalf("capitalized matched: %v", ids)
	}
	// Misses English entirely.
	c = annotateText(t, "fan squeak fender", legacy)
	if ids := ConceptIDs(c); len(ids) != 0 {
		t.Fatalf("english matched: %v", ids)
	}
	// The new annotator finds all of these.
	a := NewConceptAnnotator(tax)
	c = annotateText(t, "Lüfter defekt, fan squeak fender", a)
	if ids := ConceptIDs(c); len(ids) != 3 {
		t.Fatalf("new annotator concepts = %v", ids)
	}
}

func TestConceptIDsDeduplicates(t *testing.T) {
	tax := sampleTaxonomy(t)
	a := NewConceptAnnotator(tax)
	c := annotateText(t, "fender fender squeak fender", a)
	if ids := ConceptIDs(c); !reflect.DeepEqual(ids, []int{100, 200}) {
		t.Fatalf("concepts = %v", ids)
	}
}

func TestAnnotatorEngineNames(t *testing.T) {
	tax := sampleTaxonomy(t)
	if NewConceptAnnotator(tax).Name() == "" || NewLegacyAnnotator(tax).Name() == "" {
		t.Fatal("engines must be named")
	}
}
