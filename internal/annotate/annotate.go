// Package annotate marks up domain-specific concept mentions in report
// texts (paper §4.4 step 2b, §4.5.3). The optimized ConceptAnnotator
// compiles the multilingual taxonomy into a token trie and applies
// left-bounded greedy longest matching, eliminating concept matches that
// are completely enclosed by other matches and correctly capturing
// multiwords. The deliberately weak LegacyAnnotator reproduces the
// closed-source predecessor the paper measured against: it found no
// taxonomy concepts at all in 2,530 of the 7,500 data bundles, while the
// new annotator finds concepts in all of them.
package annotate

import (
	"strconv"
	"strings"

	"repro/internal/cas"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
	"repro/internal/trie"
)

// TypeConcept is the annotation type for taxonomy concept mentions.
const TypeConcept = "Concept"

// Features of TypeConcept annotations.
const (
	FeatConceptID = "concept" // numeric taxonomy concept ID
	FeatKind      = "kind"    // component / symptom / location / solution
)

// ConceptAnnotator is the optimized trie-based taxonomy annotator.
type ConceptAnnotator struct {
	trie  *trie.Trie
	kinds map[int]taxonomy.Kind
	// annotateKinds restricts which concept kinds are annotated; the
	// classifier uses components and symptoms (§4.5.3).
	annotateKinds map[taxonomy.Kind]bool
}

// Option configures a ConceptAnnotator.
type Option func(*ConceptAnnotator)

// WithKinds restricts annotation to the given concept kinds. The default
// follows the paper: components and symptoms only.
func WithKinds(kinds ...taxonomy.Kind) Option {
	return func(a *ConceptAnnotator) {
		a.annotateKinds = make(map[taxonomy.Kind]bool, len(kinds))
		for _, k := range kinds {
			a.annotateKinds[k] = true
		}
	}
}

// NewConceptAnnotator compiles the taxonomy into a trie covering all
// languages and all synonyms.
func NewConceptAnnotator(t *taxonomy.Taxonomy, opts ...Option) *ConceptAnnotator {
	a := &ConceptAnnotator{
		trie:  trie.New(),
		kinds: make(map[int]taxonomy.Kind, t.Len()),
		annotateKinds: map[taxonomy.Kind]bool{
			taxonomy.KindComponent: true,
			taxonomy.KindSymptom:   true,
		},
	}
	for _, o := range opts {
		o(a)
	}
	for _, c := range t.Concepts() {
		if !a.annotateKinds[c.Kind] {
			continue
		}
		a.kinds[c.ID] = c.Kind
		for _, lang := range c.Languages() {
			for _, syn := range c.Synonyms[lang] {
				tokens := textproc.Tokens(syn)
				if len(tokens) > 0 {
					a.trie.Insert(tokens, c.ID)
				}
			}
		}
	}
	return a
}

// Name implements pipeline.Engine.
func (a *ConceptAnnotator) Name() string { return "concept-annotator" }

// Process annotates concept mentions over the Token annotations of the
// CAS; the Tokenizer engine must have run first.
func (a *ConceptAnnotator) Process(c *cas.CAS) error {
	toks := c.Select(textproc.TypeToken)
	norms := make([]string, len(toks))
	for i, t := range toks {
		// Prefer the SpellNormalizer's corrected form when a normalizer
		// ran earlier in the pipeline: "electiral" then matches the
		// taxonomy term "electrical".
		if fixed := t.Feature(textproc.FeatCorrected); fixed != "" {
			norms[i] = fixed
			continue
		}
		norms[i] = t.Feature(textproc.FeatNorm)
	}
	i := 0
	for i < len(norms) {
		id, length := a.trie.LongestMatch(norms, i)
		if length == 0 {
			i++
			continue
		}
		ann := &cas.Annotation{
			Type:  TypeConcept,
			Begin: toks[i].Begin,
			End:   toks[i+length-1].End,
		}
		ann.SetFeature(FeatConceptID, strconv.Itoa(id))
		ann.SetFeature(FeatKind, string(a.kinds[id]))
		if err := c.Annotate(ann); err != nil {
			return err
		}
		// Left-bounded greedy: skip past the match, so matches enclosed
		// by this one are never emitted.
		i += length
	}
	return nil
}

// ConceptIDs extracts the distinct concept IDs annotated on a CAS, in
// first-occurrence order.
func ConceptIDs(c *cas.CAS) []int {
	var out []int
	seen := map[int]bool{}
	for _, a := range c.Select(TypeConcept) {
		id, err := strconv.Atoi(a.Feature(FeatConceptID))
		if err != nil {
			continue
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// LegacyAnnotator reproduces the original closed-source taxonomy
// annotator's limitations (§4.5.3): it only knows the first German synonym
// of each concept, only matches single words (multiword terms are dropped
// entirely), and performs exact case-sensitive matching, so capitalized or
// English mentions are missed.
type LegacyAnnotator struct {
	terms map[string]legacyEntry
}

type legacyEntry struct {
	id   int
	kind taxonomy.Kind
}

// NewLegacyAnnotator builds the weak matcher from the taxonomy.
func NewLegacyAnnotator(t *taxonomy.Taxonomy) *LegacyAnnotator {
	a := &LegacyAnnotator{terms: make(map[string]legacyEntry, t.Len())}
	for _, c := range t.Concepts() {
		if c.Kind != taxonomy.KindComponent && c.Kind != taxonomy.KindSymptom {
			continue
		}
		syns := c.Synonyms["de"]
		if len(syns) == 0 {
			continue
		}
		first := syns[0]
		if strings.ContainsRune(first, ' ') {
			continue // the legacy code failed on multiwords
		}
		a.terms[first] = legacyEntry{id: c.ID, kind: c.Kind}
	}
	return a
}

// Name implements pipeline.Engine.
func (a *LegacyAnnotator) Name() string { return "legacy-concept-annotator" }

// Process annotates exact, case-sensitive single-token matches only.
func (a *LegacyAnnotator) Process(c *cas.CAS) error {
	text := c.Text()
	for _, t := range c.Select(textproc.TypeToken) {
		surface := text[t.Begin:t.End] // original casing, not the norm
		e, ok := a.terms[surface]
		if !ok {
			continue
		}
		ann := &cas.Annotation{Type: TypeConcept, Begin: t.Begin, End: t.End}
		ann.SetFeature(FeatConceptID, strconv.Itoa(e.id))
		ann.SetFeature(FeatKind, string(e.kind))
		if err := c.Annotate(ann); err != nil {
			return err
		}
	}
	return nil
}
