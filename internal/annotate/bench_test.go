package annotate

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cas"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
)

// benchTaxonomy builds a synthetic taxonomy of paper-like size for
// annotator throughput measurement.
func benchTaxonomy(b *testing.B, concepts int) *taxonomy.Taxonomy {
	b.Helper()
	tax := taxonomy.New()
	for i := 0; i < concepts; i++ {
		kind := taxonomy.KindComponent
		if i%2 == 1 {
			kind = taxonomy.KindSymptom
		}
		c := taxonomy.Concept{
			ID: i + 1, Kind: kind, Path: fmt.Sprintf("X/C%d", i+1),
			Synonyms: map[string][]string{
				"de": {fmt.Sprintf("wortde%d", i)},
				"en": {fmt.Sprintf("worden%d", i), fmt.Sprintf("worden%d unit", i)},
			},
		}
		if err := tax.Add(c); err != nil {
			b.Fatal(err)
		}
	}
	return tax
}

func benchText(concepts int) string {
	var sb strings.Builder
	for i := 0; i < 70; i++ {
		if i%5 == 0 {
			fmt.Fprintf(&sb, "wortde%d ", (i*37)%concepts)
			continue
		}
		fmt.Fprintf(&sb, "filler%d ", i)
	}
	return sb.String()
}

func BenchmarkTrieAnnotator(b *testing.B) {
	tax := benchTaxonomy(b, 1800)
	ann := NewConceptAnnotator(tax)
	text := benchText(1800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cas.New(text)
		if err := (textproc.Tokenizer{}).Process(c); err != nil {
			b.Fatal(err)
		}
		if err := ann.Process(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLegacyAnnotator(b *testing.B) {
	tax := benchTaxonomy(b, 1800)
	ann := NewLegacyAnnotator(tax)
	text := benchText(1800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cas.New(text)
		if err := (textproc.Tokenizer{}).Process(c); err != nil {
			b.Fatal(err)
		}
		if err := ann.Process(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnnotatorBuild(b *testing.B) {
	tax := benchTaxonomy(b, 1800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewConceptAnnotator(tax)
	}
}
