package taxext

import (
	"repro/internal/annotate"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
)

// Evaluate cross-validates the bag-of-concepts classifier with per-fold
// taxonomy adaptation: in every fold the miner sees only the training
// bundles, the taxonomy is extended with its proposals, and the test fold
// is classified with the extended concept vocabulary. This answers the
// question §5.2.2 leaves open — how much of the bag-of-words advantage an
// improved domain-specific resource can recover — without leaking test
// data into the resource.
func Evaluate(tax *taxonomy.Taxonomy, bundles []*bundle.Bundle, cfg Config, sim core.Similarity, folds int, seed int64, ks []int) (eval.AccuracyAtK, int, error) {
	if len(ks) == 0 {
		ks = eval.DefaultKs
	}
	filtered := bundle.FilterMultiOccurrence(bundles)
	foldIdx := eval.StratifiedFolds(filtered, folds, seed)
	hits := map[int]int{}
	total := 0
	addedTotal := 0

	for f := 0; f < folds; f++ {
		inTest := make(map[int]bool, len(foldIdx[f]))
		for _, idx := range foldIdx[f] {
			inTest[idx] = true
		}
		var train []*bundle.Bundle
		for i, b := range filtered {
			if !inTest[i] {
				train = append(train, b)
			}
		}
		proposals, err := Mine(tax, train, cfg)
		if err != nil {
			return nil, 0, err
		}
		ext, added, err := Apply(tax, proposals)
		if err != nil {
			return nil, 0, err
		}
		addedTotal += added

		ann := annotate.NewConceptAnnotator(ext)
		extractor := &kb.Extractor{Model: kb.BagOfConcepts}
		features := func(b *bundle.Bundle, sources []bundle.Source) ([]string, error) {
			c := b.CAS(sources...)
			if err := (textproc.Tokenizer{}).Process(c); err != nil {
				return nil, err
			}
			if err := ann.Process(c); err != nil {
				return nil, err
			}
			return extractor.Features(c), nil
		}

		mem := kb.NewMemory()
		for _, b := range train {
			feats, err := features(b, bundle.TrainingSources())
			if err != nil {
				return nil, 0, err
			}
			mem.AddBundle(b.PartID, b.ErrorCode, feats)
		}
		clf := core.New(mem, sim)
		for _, idx := range foldIdx[f] {
			b := filtered[idx]
			feats, err := features(b, bundle.TestSources())
			if err != nil {
				return nil, 0, err
			}
			r := core.Rank(clf.Recommend(b.PartID, feats), b.ErrorCode)
			for _, k := range ks {
				if r > 0 && r <= k {
					hits[k]++
				}
			}
			total++
		}
	}
	acc := eval.AccuracyAtK{}
	for _, k := range ks {
		acc[k] = float64(hits[k]) / float64(total)
	}
	return acc, addedTotal / folds, nil
}
