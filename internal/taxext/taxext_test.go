package taxext

import (
	"strings"
	"testing"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/taxonomy"
)

func miniTaxonomy(t *testing.T) *taxonomy.Taxonomy {
	t.Helper()
	tax := taxonomy.New()
	if err := tax.Add(taxonomy.Concept{ID: 1, Kind: taxonomy.KindComponent, Path: "Radio",
		Synonyms: map[string][]string{"en": {"radio"}}}); err != nil {
		t.Fatal(err)
	}
	return tax
}

func mkBundle(refNo, code, text string) *bundle.Bundle {
	return &bundle.Bundle{
		RefNo: refNo, ArticleCode: "A", PartID: "P1", ErrorCode: code,
		Reports: []bundle.Report{{Source: bundle.SourceSupplier, Text: text}},
	}
}

func ref(i int) string { return "R" + string(rune('0'+i)) }

func TestMineFindsUncoveredCodeSpecificTerms(t *testing.T) {
	tax := miniTaxonomy(t)
	var bundles []*bundle.Bundle
	// "oxidation" is the habitual wording of E1, occurs in 4 E1 bundles.
	for i := 0; i < 4; i++ {
		bundles = append(bundles, mkBundle(ref(i), "E1", "radio unit shows heavy oxidation inside"))
	}
	// Generic word "inspected" spreads across codes.
	bundles = append(bundles,
		mkBundle("g1", "E2", "radio inspected, all fine inside"),
		mkBundle("g2", "E3", "radio inspected again inside"),
		mkBundle("g3", "E4", "radio inspected as well inside"),
	)
	props, err := Mine(tax, bundles, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var foundOx, foundInside, foundRadio, foundInspected bool
	for _, p := range props {
		switch p.Term {
		case "oxidation":
			foundOx = true
			if p.ErrorCode != "E1" || p.Support != 4 || p.Confidence != 1.0 {
				t.Fatalf("oxidation proposal = %+v", p)
			}
		case "inside":
			foundInside = true
		case "radio":
			foundRadio = true
		case "inspected":
			foundInspected = true
		}
	}
	if !foundOx {
		t.Fatalf("oxidation not mined: %v", props)
	}
	if foundRadio {
		t.Error("covered taxonomy term proposed")
	}
	if foundInspected {
		t.Error("low-confidence generic term proposed (spread over 3 codes)")
	}
	// "inside" occurs in 7 bundles, 4 of them E1 → confidence 4/7 < 0.6.
	if foundInside {
		t.Error("term below the confidence threshold proposed")
	}
}

func TestMineThresholds(t *testing.T) {
	tax := miniTaxonomy(t)
	bundles := []*bundle.Bundle{
		mkBundle("a", "E1", "rare seepage"),
		mkBundle("b", "E1", "rare seepage"),
	}
	// Support 2 < default 3: nothing proposed.
	props, err := Mine(tax, bundles, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 0 {
		t.Fatalf("proposals below support threshold: %v", props)
	}
	// Lowering the threshold surfaces them.
	props, err = Mine(tax, bundles, Config{MinSupport: 2, MinConfidence: 0.6, MinTermLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 2 { // "rare", "seepage"
		t.Fatalf("proposals = %v", props)
	}
}

func TestMineRejectsUnassigned(t *testing.T) {
	tax := miniTaxonomy(t)
	b := mkBundle("x", "", "text")
	if _, err := Mine(tax, []*bundle.Bundle{b}, DefaultConfig()); err == nil {
		t.Fatal("unassigned bundle accepted")
	}
}

func TestApplyExtendsCopy(t *testing.T) {
	tax := miniTaxonomy(t)
	props := []Proposal{
		{Term: "oxidation", ErrorCode: "E1", Support: 4, Confidence: 1},
		{Term: "seepage", ErrorCode: "E1", Support: 3, Confidence: 0.9},
		{Term: "shear", ErrorCode: "E2", Support: 3, Confidence: 0.8},
	}
	ext, added, err := Apply(tax, props)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 { // one concept per code
		t.Fatalf("added = %d, want 2", added)
	}
	if ext.Len() != tax.Len()+2 {
		t.Fatalf("extended len = %d", ext.Len())
	}
	if tax.Len() != 1 {
		t.Fatal("original taxonomy mutated")
	}
	// The E1 concept carries both terms as synonyms.
	var e1 *taxonomy.Concept
	for _, c := range ext.Concepts() {
		if strings.HasSuffix(c.Path, "E1") {
			e1 = c
		}
	}
	if e1 == nil || len(e1.Synonyms["und"]) != 2 {
		t.Fatalf("mined concept = %+v", e1)
	}
}

// TestAdaptationImprovesBagOfConcepts is the extension experiment: with
// per-fold taxonomy adaptation, bag-of-concepts accuracy must move toward
// bag-of-words — the outcome §5.2.2 predicts for an improved resource.
func TestAdaptationImprovesBagOfConcepts(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation in -short mode")
	}
	cfg := datagen.SmallConfig()
	cfg.Bundles = 800
	cfg.Singletons = 60
	cfg.CodesPerPart = []int{40, 30, 20, 14, 10}
	cfg.ArticleCodes = 60
	corpus, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := eval.New(corpus.Taxonomy, corpus.Bundles)
	plain, err := e.Run(eval.Variant{Name: "boc", Model: kb.BagOfConcepts, Sim: core.Jaccard{}})
	if err != nil {
		t.Fatal(err)
	}

	adapted, added, err := Evaluate(corpus.Taxonomy, corpus.Bundles, DefaultConfig(),
		core.Jaccard{}, 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("adaptation mined nothing")
	}
	if adapted[1] <= plain.Accuracy[1] {
		t.Errorf("adaptation did not improve acc@1: %.3f vs %.3f", adapted[1], plain.Accuracy[1])
	}
	t.Logf("bag-of-concepts acc@1: plain %.3f -> adapted %.3f (+%d mined concepts/fold)",
		plain.Accuracy[1], adapted[1], added)
}
