// Package taxext implements the taxonomy adaptation the paper names as its
// most important next step (§5.2.2: "Adapting the taxonomy thus suggests
// itself", §6: "enhancing the domain-specific taxonomy"; cf. the Taxonomy
// Transfer companion paper [12]): mining the classified data bundles for
// domain terms that the legacy taxonomy does not cover and proposing them
// as new concepts, so that the bag-of-concepts model recovers the
// discriminative vocabulary that currently only bag-of-words exploits.
//
// The miner is deliberately simple and transparent, in the spirit of the
// paper's classifier: an uncovered token becomes a proposal when it occurs
// in enough bundles (support) and concentrates on one error code
// (confidence) — generic complaint vocabulary spreads over many codes and
// fails the confidence test, error-specific habitual wordings pass it.
package taxext

import (
	"fmt"
	"sort"

	"repro/internal/annotate"
	"repro/internal/bundle"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
)

// Proposal is one mined candidate term.
type Proposal struct {
	Term       string  // the uncovered token
	ErrorCode  string  // the code it concentrates on
	Support    int     // bundles containing the term
	Confidence float64 // share of those bundles carrying ErrorCode
}

// Config tunes the miner.
type Config struct {
	MinSupport    int     // minimum bundles containing the term (default 3)
	MinConfidence float64 // minimum share of the top code (default 0.6)
	MinTermLength int     // minimum term length in bytes (default 4)
}

// DefaultConfig returns the miner defaults.
func DefaultConfig() Config {
	return Config{MinSupport: 3, MinConfidence: 0.6, MinTermLength: 4}
}

// Mine extracts proposals from classified training bundles. It tokenizes
// each bundle's training-phase text, removes everything the taxonomy
// already covers (via the trie annotator), stopwords and short tokens, and
// keeps terms whose occurrence concentrates on a single error code.
func Mine(tax *taxonomy.Taxonomy, bundles []*bundle.Bundle, cfg Config) ([]Proposal, error) {
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = 3
	}
	if cfg.MinConfidence <= 0 {
		cfg.MinConfidence = 0.6
	}
	if cfg.MinTermLength <= 0 {
		cfg.MinTermLength = 4
	}
	ann := annotate.NewConceptAnnotator(tax)
	stop := textproc.NewStopwordSet()

	// term → code → bundle count
	occur := map[string]map[string]int{}
	for _, b := range bundles {
		if b.ErrorCode == "" {
			return nil, fmt.Errorf("taxext: bundle %s has no error code", b.RefNo)
		}
		c := b.CAS(bundle.TrainingSources()...)
		if err := (textproc.Tokenizer{}).Process(c); err != nil {
			return nil, err
		}
		if err := ann.Process(c); err != nil {
			return nil, err
		}
		// Byte ranges covered by concept annotations.
		covered := make([]bool, len(c.Text()))
		for _, a := range c.Select(annotate.TypeConcept) {
			for i := a.Begin; i < a.End; i++ {
				covered[i] = true
			}
		}
		seen := map[string]bool{}
		for _, t := range c.Select(textproc.TypeToken) {
			if covered[t.Begin] {
				continue // the taxonomy already knows this mention
			}
			w := t.Feature(textproc.FeatNorm)
			if len(w) < cfg.MinTermLength || stop.Contains(w) || seen[w] {
				continue
			}
			seen[w] = true
			m := occur[w]
			if m == nil {
				m = map[string]int{}
				occur[w] = m
			}
			m[b.ErrorCode]++
		}
	}

	var out []Proposal
	for term, codes := range occur {
		support := 0
		bestCode, bestN := "", 0
		for code, n := range codes {
			support += n
			if n > bestN || (n == bestN && code < bestCode) {
				bestCode, bestN = code, n
			}
		}
		if support < cfg.MinSupport {
			continue
		}
		conf := float64(bestN) / float64(support)
		if conf < cfg.MinConfidence {
			continue
		}
		out = append(out, Proposal{Term: term, ErrorCode: bestCode, Support: support, Confidence: conf})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Term < out[j].Term
	})
	return out, nil
}

// Apply extends a copy of the taxonomy with the proposals: the terms
// proposed for one error code form the synonym set of one new symptom
// concept (the habitual wording of that problem). It returns the extended
// taxonomy and the number of concepts added. The input taxonomy is not
// modified.
func Apply(tax *taxonomy.Taxonomy, proposals []Proposal) (*taxonomy.Taxonomy, int, error) {
	ext := tax.Clone()
	byCode := map[string][]string{}
	var codes []string
	for _, p := range proposals {
		if len(byCode[p.ErrorCode]) == 0 {
			codes = append(codes, p.ErrorCode)
		}
		byCode[p.ErrorCode] = append(byCode[p.ErrorCode], p.Term)
	}
	sort.Strings(codes)
	nextID := ext.MaxID() + 1
	added := 0
	for _, code := range codes {
		c := taxonomy.Concept{
			ID:   nextID,
			Kind: taxonomy.KindSymptom,
			Path: "Mined/" + code,
			// The mined terms are messy-report vocabulary without a clear
			// language; "und" (undetermined) keeps them multilingual.
			Synonyms: map[string][]string{"und": byCode[code]},
		}
		if err := ext.Add(c); err != nil {
			return nil, added, err
		}
		nextID++
		added++
	}
	return ext, added, nil
}
