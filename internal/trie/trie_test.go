package trie

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestInsertGet(t *testing.T) {
	tr := New()
	tr.Insert([]string{"fender"}, 1)
	tr.Insert([]string{"mud", "guard"}, 1)
	tr.Insert([]string{"squeaking", "noise"}, 2)

	if v, ok := tr.Get([]string{"fender"}); !ok || v != 1 {
		t.Fatalf("get fender = %d,%v", v, ok)
	}
	if v, ok := tr.Get([]string{"mud", "guard"}); !ok || v != 1 {
		t.Fatalf("get mud guard = %d,%v", v, ok)
	}
	if _, ok := tr.Get([]string{"mud"}); ok {
		t.Fatal("prefix reported as stored sequence")
	}
	if _, ok := tr.Get([]string{"guard"}); ok {
		t.Fatal("suffix reported as stored sequence")
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestInsertOverwriteAndEmpty(t *testing.T) {
	tr := New()
	tr.Insert([]string{"x"}, 1)
	tr.Insert([]string{"x"}, 2)
	if v, _ := tr.Get([]string{"x"}); v != 2 {
		t.Fatalf("overwrite failed: %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
	tr.Insert(nil, 9)
	if tr.Len() != 1 {
		t.Fatal("empty sequence stored")
	}
}

func TestLongestMatch(t *testing.T) {
	tr := New()
	tr.Insert([]string{"noise"}, 1)
	tr.Insert([]string{"squeaking", "noise"}, 2)
	tr.Insert([]string{"squeaking", "noise", "rear"}, 3)

	toks := strings.Fields("loud squeaking noise rear left")
	v, l := tr.LongestMatch(toks, 1)
	if v != 3 || l != 3 {
		t.Fatalf("match = %d,%d; want 3,3", v, l)
	}
	// At "noise" position the single-token entry matches.
	v, l = tr.LongestMatch(toks, 2)
	if v != 1 || l != 1 {
		t.Fatalf("match = %d,%d; want 1,1", v, l)
	}
	// No match at "loud".
	if _, l := tr.LongestMatch(toks, 0); l != 0 {
		t.Fatalf("unexpected match length %d", l)
	}
	// Start beyond the end.
	if _, l := tr.LongestMatch(toks, 99); l != 0 {
		t.Fatalf("out-of-range match length %d", l)
	}
}

func TestLongestMatchPrefersLongerEvenWithGapsInTerminals(t *testing.T) {
	tr := New()
	// "a b c" stored but NOT "a b": the walk must still find "a b c".
	tr.Insert([]string{"a"}, 1)
	tr.Insert([]string{"a", "b", "c"}, 3)
	v, l := tr.LongestMatch([]string{"a", "b", "c", "d"}, 0)
	if v != 3 || l != 3 {
		t.Fatalf("match = %d,%d; want 3,3", v, l)
	}
	// When the long path dead-ends, fall back to the shorter terminal.
	v, l = tr.LongestMatch([]string{"a", "b", "x"}, 0)
	if v != 1 || l != 1 {
		t.Fatalf("match = %d,%d; want 1,1", v, l)
	}
}

func TestWalk(t *testing.T) {
	tr := New()
	tr.Insert([]string{"a"}, 1)
	tr.Insert([]string{"b", "c"}, 2)
	var got []string
	tr.Walk(func(tokens []string, value int) {
		got = append(got, strings.Join(tokens, " "))
	})
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"a", "b c"}) {
		t.Fatalf("walk = %v", got)
	}
}

// Property: anything inserted is found by Get and by LongestMatch at the
// start of its own sequence.
func TestInsertLookupProperty(t *testing.T) {
	f := func(words [][3]uint8, value int) bool {
		tr := New()
		var seqs [][]string
		for _, w := range words {
			seq := []string{
				string(rune('a' + w[0]%16)),
				string(rune('a' + w[1]%16)),
				string(rune('a' + w[2]%16)),
			}
			tr.Insert(seq, value)
			seqs = append(seqs, seq)
		}
		for _, seq := range seqs {
			if v, ok := tr.Get(seq); !ok || v != value {
				return false
			}
			// The full inserted sequence is terminal, so the longest match
			// over exactly that sequence is the sequence itself.
			if v, l := tr.LongestMatch(seq, 0); v != value || l != len(seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
