// Package trie implements the token-sequence trie that backs the optimized
// taxonomy annotator (paper §4.5.3): "We represent the taxonomy as a trie
// data structure, a tree structure which allows for fast search and
// retrieval." Keys are sequences of lowercase word tokens, so multiword
// taxonomy terms ("squeaking noise") occupy one path with one payload.
package trie

// Trie maps token sequences to integer payloads (concept IDs).
type Trie struct {
	root *node
	size int
}

type node struct {
	children map[string]*node
	value    int
	terminal bool
}

// New creates an empty trie.
func New() *Trie {
	return &Trie{root: &node{}}
}

// Len reports the number of stored token sequences.
func (t *Trie) Len() int { return t.size }

// Insert stores value under the token sequence. Re-inserting an existing
// sequence overwrites its value. Empty sequences are ignored.
func (t *Trie) Insert(tokens []string, value int) {
	if len(tokens) == 0 {
		return
	}
	n := t.root
	for _, tok := range tokens {
		if n.children == nil {
			n.children = make(map[string]*node, 2)
		}
		child, ok := n.children[tok]
		if !ok {
			child = &node{}
			n.children[tok] = child
		}
		n = child
	}
	if !n.terminal {
		t.size++
	}
	n.terminal = true
	n.value = value
}

// Get returns the value stored under exactly the token sequence.
func (t *Trie) Get(tokens []string) (int, bool) {
	n := t.root
	for _, tok := range tokens {
		child, ok := n.children[tok]
		if !ok {
			return 0, false
		}
		n = child
	}
	if !n.terminal {
		return 0, false
	}
	return n.value, true
}

// LongestMatch finds the longest stored sequence that is a prefix of
// tokens[start:]. It returns the payload and the number of tokens matched
// (0 if nothing matches at start). This is the left-bounded greedy
// longest-match step of the annotator: shorter matches fully enclosed by
// the returned one are never reported.
func (t *Trie) LongestMatch(tokens []string, start int) (value, length int) {
	n := t.root
	bestLen := 0
	bestVal := 0
	for i := start; i < len(tokens); i++ {
		child, ok := n.children[tokens[i]]
		if !ok {
			break
		}
		n = child
		if n.terminal {
			bestLen = i - start + 1
			bestVal = n.value
		}
	}
	return bestVal, bestLen
}

// Walk visits every stored sequence with its value, in unspecified order.
func (t *Trie) Walk(fn func(tokens []string, value int)) {
	var rec func(n *node, prefix []string)
	rec = func(n *node, prefix []string) {
		if n.terminal {
			fn(append([]string(nil), prefix...), n.value)
		}
		for tok, child := range n.children {
			rec(child, append(prefix, tok))
		}
	}
	rec(t.root, nil)
}
