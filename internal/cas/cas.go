// Package cas implements a Common Analysis Structure in the spirit of
// Apache UIMA (paper §4.5.2): a document text plus typed feature-structure
// annotations with start and end indexes relative to the text. One CAS
// holds one data bundle — all available reports and text descriptions plus
// the part ID and error code — and is handed from one analysis engine to
// the next so that annotators can build on previous findings.
package cas

import (
	"fmt"
	"sort"
	"strings"
)

// Segment records which report (source) contributed which span of the
// combined document text, so downstream engines can filter by source.
type Segment struct {
	Source string // e.g. "mechanic", "supplier", "part_desc"
	Begin  int
	End    int
}

// Annotation is a typed feature structure anchored to a text span.
// Begin is inclusive, End exclusive, both in bytes of the document text.
type Annotation struct {
	Type     string
	Begin    int
	End      int
	Features map[string]string
}

// Feature returns the named feature value ("" if unset).
func (a *Annotation) Feature(name string) string {
	if a.Features == nil {
		return ""
	}
	return a.Features[name]
}

// SetFeature sets a feature value, allocating the map on first use.
func (a *Annotation) SetFeature(name, value string) {
	if a.Features == nil {
		a.Features = make(map[string]string, 2)
	}
	a.Features[name] = value
}

// CAS is the analysis structure passed through a pipeline.
type CAS struct {
	text        string
	segments    []Segment
	annotations []*Annotation
	sorted      bool
	metadata    map[string]string
}

// New creates a CAS over the given document text.
func New(text string) *CAS {
	return &CAS{text: text, sorted: true}
}

// NewFromSegments assembles a document from labelled report texts, joining
// them with a newline and recording the segment boundaries.
func NewFromSegments(parts []struct{ Source, Text string }) *CAS {
	var b strings.Builder
	c := &CAS{sorted: true}
	for i, p := range parts {
		if i > 0 {
			b.WriteString("\n")
		}
		begin := b.Len()
		b.WriteString(p.Text)
		c.segments = append(c.segments, Segment{Source: p.Source, Begin: begin, End: b.Len()})
	}
	c.text = b.String()
	return c
}

// Text returns the full document text.
func (c *CAS) Text() string { return c.text }

// Segments returns the recorded source segments.
func (c *CAS) Segments() []Segment { return c.segments }

// SegmentFor returns the segment containing the byte offset, if any.
func (c *CAS) SegmentFor(offset int) (Segment, bool) {
	for _, s := range c.segments {
		if offset >= s.Begin && offset < s.End {
			return s, true
		}
	}
	return Segment{}, false
}

// SetMetadata attaches document-level metadata (e.g. part ID, language).
func (c *CAS) SetMetadata(key, value string) {
	if c.metadata == nil {
		c.metadata = make(map[string]string, 4)
	}
	c.metadata[key] = value
}

// Metadata returns a document-level metadata value ("" if unset).
func (c *CAS) Metadata(key string) string { return c.metadata[key] }

// Annotate adds an annotation after validating its span.
func (c *CAS) Annotate(a *Annotation) error {
	if a == nil {
		return fmt.Errorf("cas: nil annotation")
	}
	if a.Type == "" {
		return fmt.Errorf("cas: annotation without type")
	}
	if a.Begin < 0 || a.End < a.Begin || a.End > len(c.text) {
		return fmt.Errorf("cas: annotation span [%d,%d) out of range for text of length %d", a.Begin, a.End, len(c.text))
	}
	c.annotations = append(c.annotations, a)
	c.sorted = false
	return nil
}

// MustAnnotate is Annotate that panics on invalid spans; for annotators
// that compute offsets themselves and treat violations as bugs.
func (c *CAS) MustAnnotate(a *Annotation) {
	if err := c.Annotate(a); err != nil {
		panic(err)
	}
}

// ensureSorted orders annotations by (Begin asc, End desc, Type asc) —
// the usual UIMA order, where enclosing annotations precede enclosed ones.
func (c *CAS) ensureSorted() {
	if c.sorted {
		return
	}
	sort.SliceStable(c.annotations, func(i, j int) bool {
		a, b := c.annotations[i], c.annotations[j]
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		if a.End != b.End {
			return a.End > b.End
		}
		return a.Type < b.Type
	})
	c.sorted = true
}

// Select returns all annotations of the given type in document order.
func (c *CAS) Select(typeName string) []*Annotation {
	c.ensureSorted()
	var out []*Annotation
	for _, a := range c.annotations {
		if a.Type == typeName {
			out = append(out, a)
		}
	}
	return out
}

// SelectAll returns all annotations in document order.
func (c *CAS) SelectAll() []*Annotation {
	c.ensureSorted()
	return append([]*Annotation(nil), c.annotations...)
}

// SelectCovered returns annotations of the given type fully inside [begin,end).
func (c *CAS) SelectCovered(typeName string, begin, end int) []*Annotation {
	c.ensureSorted()
	var out []*Annotation
	for _, a := range c.annotations {
		if a.Type != typeName {
			continue
		}
		if a.Begin >= begin && a.End <= end {
			out = append(out, a)
		}
	}
	return out
}

// RemoveType deletes all annotations of the given type, returning how many
// were removed.
func (c *CAS) RemoveType(typeName string) int {
	kept := c.annotations[:0]
	n := 0
	for _, a := range c.annotations {
		if a.Type == typeName {
			n++
			continue
		}
		kept = append(kept, a)
	}
	c.annotations = kept
	return n
}

// CoveredText returns the text span of an annotation.
func (c *CAS) CoveredText(a *Annotation) string { return c.text[a.Begin:a.End] }

// Len reports the number of annotations.
func (c *CAS) Len() int { return len(c.annotations) }

// SelectOverlapping returns annotations of the given type whose span
// overlaps [begin, end) — e.g. the concept mentions touching a report
// segment regardless of exact containment.
func (c *CAS) SelectOverlapping(typeName string, begin, end int) []*Annotation {
	c.ensureSorted()
	var out []*Annotation
	for _, a := range c.annotations {
		if a.Type != typeName {
			continue
		}
		if a.Begin < end && a.End > begin {
			out = append(out, a)
		}
	}
	return out
}
