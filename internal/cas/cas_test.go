package cas

import (
	"testing"
	"testing/quick"
)

func TestAnnotateAndSelect(t *testing.T) {
	c := New("the radio crackles")
	if err := c.Annotate(&Annotation{Type: "Token", Begin: 0, End: 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.Annotate(&Annotation{Type: "Token", Begin: 4, End: 9}); err != nil {
		t.Fatal(err)
	}
	if err := c.Annotate(&Annotation{Type: "Concept", Begin: 4, End: 9}); err != nil {
		t.Fatal(err)
	}
	toks := c.Select("Token")
	if len(toks) != 2 {
		t.Fatalf("tokens = %d, want 2", len(toks))
	}
	if c.CoveredText(toks[1]) != "radio" {
		t.Fatalf("covered = %q", c.CoveredText(toks[1]))
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestAnnotateValidation(t *testing.T) {
	c := New("abc")
	bad := []*Annotation{
		nil,
		{Type: "", Begin: 0, End: 1},
		{Type: "T", Begin: -1, End: 1},
		{Type: "T", Begin: 2, End: 1},
		{Type: "T", Begin: 0, End: 4},
	}
	for i, a := range bad {
		if err := c.Annotate(a); err == nil {
			t.Errorf("case %d: invalid annotation accepted", i)
		}
	}
	// Zero-width and full-span annotations are legal.
	if err := c.Annotate(&Annotation{Type: "T", Begin: 1, End: 1}); err != nil {
		t.Errorf("zero-width rejected: %v", err)
	}
	if err := c.Annotate(&Annotation{Type: "T", Begin: 0, End: 3}); err != nil {
		t.Errorf("full-span rejected: %v", err)
	}
}

func TestDocumentOrder(t *testing.T) {
	c := New("aaaaaaaaaa")
	// Insert out of order; enclosing spans must come before enclosed ones.
	c.MustAnnotate(&Annotation{Type: "T", Begin: 4, End: 6})
	c.MustAnnotate(&Annotation{Type: "T", Begin: 0, End: 2})
	c.MustAnnotate(&Annotation{Type: "T", Begin: 0, End: 5})
	got := c.Select("T")
	wants := []struct{ b, e int }{{0, 5}, {0, 2}, {4, 6}}
	for i, w := range wants {
		if got[i].Begin != w.b || got[i].End != w.e {
			t.Fatalf("order[%d] = [%d,%d), want [%d,%d)", i, got[i].Begin, got[i].End, w.b, w.e)
		}
	}
}

func TestSelectCovered(t *testing.T) {
	c := New("one two three four")
	c.MustAnnotate(&Annotation{Type: "Token", Begin: 0, End: 3})
	c.MustAnnotate(&Annotation{Type: "Token", Begin: 4, End: 7})
	c.MustAnnotate(&Annotation{Type: "Token", Begin: 8, End: 13})
	got := c.SelectCovered("Token", 4, 13)
	if len(got) != 2 {
		t.Fatalf("covered = %d, want 2", len(got))
	}
}

func TestSegments(t *testing.T) {
	c := NewFromSegments([]struct{ Source, Text string }{
		{"mechanic", "radio dead"},
		{"supplier", "kontakt defekt"},
	})
	if c.Text() != "radio dead\nkontakt defekt" {
		t.Fatalf("text = %q", c.Text())
	}
	segs := c.Segments()
	if len(segs) != 2 || segs[0].Source != "mechanic" || segs[1].Source != "supplier" {
		t.Fatalf("segments = %v", segs)
	}
	if c.Text()[segs[1].Begin:segs[1].End] != "kontakt defekt" {
		t.Fatalf("segment span wrong: %v", segs[1])
	}
	s, ok := c.SegmentFor(segs[1].Begin)
	if !ok || s.Source != "supplier" {
		t.Fatalf("SegmentFor = %v, %v", s, ok)
	}
	if _, ok := c.SegmentFor(len(c.Text()) + 5); ok {
		t.Fatal("SegmentFor out of range succeeded")
	}
}

func TestMetadata(t *testing.T) {
	c := New("x")
	if c.Metadata("part") != "" {
		t.Fatal("unset metadata non-empty")
	}
	c.SetMetadata("part", "P7")
	if c.Metadata("part") != "P7" {
		t.Fatal("metadata not stored")
	}
}

func TestFeatures(t *testing.T) {
	a := &Annotation{Type: "T"}
	if a.Feature("x") != "" {
		t.Fatal("unset feature non-empty")
	}
	a.SetFeature("x", "1")
	a.SetFeature("y", "2")
	if a.Feature("x") != "1" || a.Feature("y") != "2" {
		t.Fatal("features not stored")
	}
}

func TestRemoveType(t *testing.T) {
	c := New("abcdef")
	c.MustAnnotate(&Annotation{Type: "A", Begin: 0, End: 1})
	c.MustAnnotate(&Annotation{Type: "B", Begin: 1, End: 2})
	c.MustAnnotate(&Annotation{Type: "A", Begin: 2, End: 3})
	if n := c.RemoveType("A"); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if len(c.Select("A")) != 0 || len(c.Select("B")) != 1 {
		t.Fatal("wrong annotations after removal")
	}
}

// Property: every annotation accepted by Annotate yields a CoveredText that
// is a substring of the document at the right place.
func TestCoveredTextProperty(t *testing.T) {
	f := func(text string, begin, end uint8) bool {
		c := New(text)
		b, e := int(begin), int(end)
		err := c.Annotate(&Annotation{Type: "T", Begin: b, End: e})
		if err != nil {
			return true // rejected spans are out of scope
		}
		covered := c.CoveredText(c.Select("T")[0])
		return covered == text[b:e]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelectOverlapping(t *testing.T) {
	c := New("0123456789")
	c.MustAnnotate(&Annotation{Type: "T", Begin: 0, End: 3})
	c.MustAnnotate(&Annotation{Type: "T", Begin: 2, End: 6})
	c.MustAnnotate(&Annotation{Type: "T", Begin: 7, End: 9})
	c.MustAnnotate(&Annotation{Type: "Other", Begin: 2, End: 6})
	got := c.SelectOverlapping("T", 2, 7)
	if len(got) != 2 {
		t.Fatalf("overlapping = %d, want 2", len(got))
	}
	// Zero-width probe at a boundary: [3,3) overlaps nothing ending at 3.
	if got := c.SelectOverlapping("T", 6, 7); len(got) != 0 {
		t.Fatalf("boundary overlap = %d, want 0", len(got))
	}
}
