package compare

import (
	"strings"
	"testing"

	"repro/internal/annotate"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/nhtsa"
	"repro/internal/textproc"
)

func corpusAndKB(t testing.TB) (*datagen.Corpus, *kb.Memory) {
	t.Helper()
	c, err := datagen.Generate(datagen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ann := annotate.NewConceptAnnotator(c.Taxonomy)
	ex := &kb.Extractor{Model: kb.BagOfConcepts}
	mem := kb.NewMemory()
	for _, b := range bundle.FilterMultiOccurrence(c.Bundles) {
		doc := b.CAS()
		if err := (textproc.Tokenizer{}).Process(doc); err != nil {
			t.Fatal(err)
		}
		if err := ann.Process(doc); err != nil {
			t.Fatal(err)
		}
		mem.AddBundle(b.PartID, b.ErrorCode, ex.Features(doc))
	}
	return c, mem
}

func TestDistributionBasics(t *testing.T) {
	d := FromCounts("src", map[string]int{"A": 6, "B": 3, "C": 1})
	if d.Total != 10 || len(d.Shares) != 3 {
		t.Fatalf("distribution = %+v", d)
	}
	if d.Shares[0].Code != "A" || d.Shares[0].Fraction != 0.6 {
		t.Fatalf("head = %+v", d.Shares[0])
	}
	top := d.Top(2)
	if len(top) != 3 || top[2].Code != "other" || top[2].Count != 1 {
		t.Fatalf("top = %v", top)
	}
	// Top with n >= len returns everything without "other".
	if got := d.Top(10); len(got) != 3 {
		t.Fatalf("top(10) = %v", got)
	}
}

func TestDistributionTieBreak(t *testing.T) {
	d := FromCounts("src", map[string]int{"B": 2, "A": 2})
	if d.Shares[0].Code != "A" {
		t.Fatalf("tie-break = %v", d.Shares)
	}
}

func TestInternalDistribution(t *testing.T) {
	c, _ := corpusAndKB(t)
	filtered := bundle.FilterMultiOccurrence(c.Bundles)
	d := InternalDistribution(filtered)
	if d.Total != len(filtered) {
		t.Fatalf("total = %d, want %d", d.Total, len(filtered))
	}
	if d.Shares[0].Count < d.Shares[len(d.Shares)-1].Count {
		t.Fatal("shares not sorted")
	}
}

func TestClassifyText(t *testing.T) {
	c, mem := corpusAndKB(t)
	clf := NewClassifier(mem, c.Taxonomy, kb.BagOfConcepts, core.Jaccard{})
	// Build a query from a known code's symptoms.
	spec := c.SortedCodes()[0]
	var words []string
	for _, s := range spec.Symptoms {
		if concept, ok := c.Taxonomy.Get(s); ok {
			words = append(words, concept.Synonyms["en"]...)
		}
	}
	words = append(words, "THE CONTACT STATED THAT THE FAILURE OCCURRED")
	code, err := clf.ClassifyText(spec.PartID, strings.ToUpper(strings.Join(words, " ")))
	if err != nil {
		t.Fatal(err)
	}
	if code == "" {
		t.Fatal("no code assigned to a symptom-bearing text")
	}
	// Empty text: no assignment, no error.
	code, err = clf.ClassifyText("NOPART", "")
	if err != nil {
		t.Fatal(err)
	}
	_ = code // may legitimately be "" or a fallback result
}

func TestComplaintDistribution(t *testing.T) {
	c, mem := corpusAndKB(t)
	clf := NewClassifier(mem, c.Taxonomy, kb.BagOfConcepts, core.Jaccard{})
	complaints := nhtsa.Generate(nhtsa.GenerateConfig{Seed: 9, Complaints: 120, ZipfS: 1.1}, c)
	d, err := clf.ComplaintDistribution(complaints)
	if err != nil {
		t.Fatal(err)
	}
	if d.Total != 120 {
		t.Fatalf("total = %d", d.Total)
	}
	// Most complaints must receive a real code (concept mentions exist).
	unassigned := 0
	for _, s := range d.Shares {
		if s.Code == "unassigned" {
			unassigned = s.Count
		}
	}
	if unassigned > 30 {
		t.Fatalf("unassigned = %d of 120", unassigned)
	}
}

func TestPrintSideBySideAndHeadOverlap(t *testing.T) {
	a := FromCounts("internal", map[string]int{"A": 5, "B": 3, "C": 2})
	b := FromCounts("public", map[string]int{"A": 4, "D": 4, "B": 1})
	var sb strings.Builder
	PrintSideBySide(&sb, a, b, 2)
	out := sb.String()
	for _, want := range []string{"internal", "public", "other"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if got := HeadOverlap(a, b, 2); got != 1 { // only "A" shared in top-2
		t.Fatalf("overlap = %d, want 1", got)
	}
}

// TestCrossSourceBagOfConceptsBeatsBagOfWords quantifies the §5.4 claim:
// on a foreign text type (consumer complaints) classified through the
// internal knowledge base, the language-independent bag-of-concepts model
// must beat bag-of-words, whose vocabulary does not transfer.
func TestCrossSourceBagOfConceptsBeatsBagOfWords(t *testing.T) {
	c, _ := corpusAndKB(t)
	filtered := bundle.FilterMultiOccurrence(c.Bundles)
	ann := annotate.NewConceptAnnotator(c.Taxonomy)

	build := func(model kb.FeatureModel) *kb.Memory {
		ex := &kb.Extractor{Model: model}
		mem := kb.NewMemory()
		for _, b := range filtered {
			doc := b.CAS()
			if err := (textproc.Tokenizer{}).Process(doc); err != nil {
				t.Fatal(err)
			}
			if model == kb.BagOfConcepts {
				if err := ann.Process(doc); err != nil {
					t.Fatal(err)
				}
			}
			mem.AddBundle(b.PartID, b.ErrorCode, ex.Features(doc))
		}
		return mem
	}

	complaints, labels := nhtsa.GenerateLabeled(
		nhtsa.GenerateConfig{Seed: 17, Complaints: 250, ZipfS: 1.1}, c)

	bocClf := NewClassifier(build(kb.BagOfConcepts), c.Taxonomy, kb.BagOfConcepts, core.Jaccard{})
	bocAcc, err := CrossSourceAccuracy(bocClf, complaints, labels)
	if err != nil {
		t.Fatal(err)
	}
	bowClf := NewClassifier(build(kb.BagOfWords), c.Taxonomy, kb.BagOfWords, core.Jaccard{})
	bowAcc, err := CrossSourceAccuracy(bowClf, complaints, labels)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cross-source top-1 accuracy: bag-of-concepts %.3f, bag-of-words %.3f", bocAcc, bowAcc)
	if bocAcc <= bowAcc {
		t.Errorf("bag-of-concepts (%.3f) should beat bag-of-words (%.3f) across sources", bocAcc, bowAcc)
	}
	if bocAcc < 0.1 {
		t.Errorf("bag-of-concepts cross-source accuracy collapsed: %.3f", bocAcc)
	}
}
