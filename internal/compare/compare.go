// Package compare implements the use-case extension of §5.4: assigning
// error codes from the internal classification schema to texts from a
// different data source (the NHTSA ODI complaints) using the knowledge
// bases built from the internal data, then contrasting the error-code
// distributions of both sources side by side — the pie charts of Fig. 14.
package compare

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/annotate"
	"repro/internal/bundle"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/nhtsa"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
)

// Share is one slice of a distribution.
type Share struct {
	Code     string
	Count    int
	Fraction float64
}

// Distribution is a source's error-code distribution.
type Distribution struct {
	Source string
	Total  int
	Shares []Share // sorted by descending count
}

// Top returns the n largest shares plus an aggregated "other" share.
func (d *Distribution) Top(n int) []Share {
	if n >= len(d.Shares) {
		return append([]Share(nil), d.Shares...)
	}
	out := append([]Share(nil), d.Shares[:n]...)
	other := Share{Code: "other"}
	for _, s := range d.Shares[n:] {
		other.Count += s.Count
	}
	if d.Total > 0 {
		other.Fraction = float64(other.Count) / float64(d.Total)
	}
	return append(out, other)
}

// FromCounts builds a distribution from code counts.
func FromCounts(source string, counts map[string]int) *Distribution {
	d := &Distribution{Source: source}
	for code, n := range counts {
		d.Total += n
		d.Shares = append(d.Shares, Share{Code: code, Count: n})
	}
	sort.Slice(d.Shares, func(i, j int) bool {
		if d.Shares[i].Count != d.Shares[j].Count {
			return d.Shares[i].Count > d.Shares[j].Count
		}
		return d.Shares[i].Code < d.Shares[j].Code
	})
	for i := range d.Shares {
		d.Shares[i].Fraction = float64(d.Shares[i].Count) / float64(d.Total)
	}
	return d
}

// InternalDistribution computes the distribution of assigned error codes in
// the internal bundle set.
func InternalDistribution(bundles []*bundle.Bundle) *Distribution {
	return FromCounts("internal OEM data", bundle.CodeCounts(bundles))
}

// Classifier assigns internal error codes to foreign complaint texts. The
// bag-of-concepts model is the natural choice here: it is "in principle
// independent of the document language or other text features" (§5.4),
// while bag-of-words degrades when training and test texts are different
// text types.
type Classifier struct {
	store     kb.Store
	clf       *core.Classifier
	annotator *annotate.ConceptAnnotator
	extractor *kb.Extractor
}

// NewClassifier builds the cross-source classifier over an internal
// knowledge base.
func NewClassifier(store kb.Store, tax *taxonomy.Taxonomy, model kb.FeatureModel, sim core.Similarity) *Classifier {
	return &Classifier{
		store:     store,
		clf:       core.New(store, sim),
		annotator: annotate.NewConceptAnnotator(tax),
		extractor: &kb.Extractor{Model: model},
	}
}

// ClassifyText assigns the best-ranked error code to one free text. The
// part ID of a complaint is generally unknown to the internal schema, so
// candidate selection falls back to the full knowledge base, exactly as
// §4.3 specifies for unknown part IDs. It returns "" when nothing matches.
func (c *Classifier) ClassifyText(partID, text string) (string, error) {
	doc := cas.New(strings.ToLower(text))
	if err := (textproc.Tokenizer{}).Process(doc); err != nil {
		return "", err
	}
	if err := c.annotator.Process(doc); err != nil {
		return "", err
	}
	feats := c.extractor.Features(doc)
	list := c.clf.Recommend(partID, feats)
	if len(list) == 0 {
		return "", nil
	}
	return list[0].Code, nil
}

// ComplaintDistribution classifies every complaint and aggregates the
// assigned codes into a distribution. Unclassifiable complaints are counted
// under "unassigned".
func (c *Classifier) ComplaintDistribution(complaints []nhtsa.Complaint) (*Distribution, error) {
	counts := map[string]int{}
	for _, cm := range complaints {
		code, err := c.ClassifyText(cm.Component, cm.CDescr)
		if err != nil {
			return nil, fmt.Errorf("compare: complaint %d: %w", cm.ODINumber, err)
		}
		if code == "" {
			code = "unassigned"
		}
		counts[code]++
	}
	return FromCounts("NHTSA ODI complaints", counts), nil
}

// PrintSideBySide renders the Fig. 14 comparison as text: the top-n error
// codes of both sources with their shares.
func PrintSideBySide(w io.Writer, a, b *Distribution, n int) {
	fmt.Fprintf(w, "%-28s | %-28s\n", a.Source, b.Source)
	fmt.Fprintf(w, "%-28s | %-28s\n", strings.Repeat("-", 28), strings.Repeat("-", 28))
	ta, tb := a.Top(n), b.Top(n)
	rows := len(ta)
	if len(tb) > rows {
		rows = len(tb)
	}
	for i := 0; i < rows; i++ {
		left, right := "", ""
		if i < len(ta) {
			left = fmt.Sprintf("%-10s %5.1f%%", ta[i].Code, 100*ta[i].Fraction)
		}
		if i < len(tb) {
			right = fmt.Sprintf("%-10s %5.1f%%", tb[i].Code, 100*tb[i].Fraction)
		}
		fmt.Fprintf(w, "%-28s | %-28s\n", left, right)
	}
}

// HeadOverlap reports how many of the top-n codes the two sources share —
// a scalar summary of how similar the distributions look.
func HeadOverlap(a, b *Distribution, n int) int {
	set := map[string]bool{}
	for _, s := range a.Top(n) {
		if s.Code != "other" {
			set[s.Code] = true
		}
	}
	overlap := 0
	for _, s := range b.Top(n) {
		if set[s.Code] {
			overlap++
		}
	}
	return overlap
}
