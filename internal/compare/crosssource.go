package compare

import (
	"repro/internal/nhtsa"
)

// CrossSourceAccuracy measures how often a classifier's top-ranked code
// matches the ground-truth code underlying each complaint. The real ODI
// data has no such labels; on the synthetic corpus this quantifies the
// §5.4 claim that "the bag-of-words approach suffers in accuracy as soon
// as test and training data are different text types or in different
// languages, whereas the bag-of-concepts approach is in principle
// independent of the document language or other text features".
func CrossSourceAccuracy(clf *Classifier, complaints []nhtsa.Complaint, labels []string) (topOne float64, err error) {
	if len(complaints) == 0 {
		return 0, nil
	}
	hits := 0
	for i, cm := range complaints {
		code, err := clf.ClassifyText(cm.Component, cm.CDescr)
		if err != nil {
			return 0, err
		}
		if code == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(complaints)), nil
}
