package kb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/reldb"
)

// Relational persistence of the knowledge base (paper §2.2/§4.5.1: the kNN
// instances are held "on disk, as is the case in our implementation", with
// on-the-fly indexed access, addressing the memory concerns of
// instance-based classification). The schema mirrors the in-memory
// structure: one row per knowledge node, one row per (node, feature) pair
// for the inverted index, and one row per (part, code) frequency.

// Table names used by the knowledge-base store.
const (
	TableNodes    = "kb_nodes"
	TableFeatures = "kb_features"
	TableCodeFreq = "kb_codefreq"
)

// CreateTables creates the knowledge-base schema.
func CreateTables(db *reldb.DB) error {
	if err := db.CreateTable(reldb.Schema{
		Name: TableNodes,
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.TInt},
			{Name: "part_id", Type: reldb.TString, NotNull: true},
			{Name: "error_code", Type: reldb.TString, NotNull: true},
			{Name: "features", Type: reldb.TString, NotNull: true}, // \x01-joined sorted list
		},
		PrimaryKey: "id",
	}); err != nil {
		return err
	}
	if err := db.CreateIndex(TableNodes, "ix_nodes_part", false, "part_id"); err != nil {
		return err
	}
	if err := db.CreateTable(reldb.Schema{
		Name: TableFeatures,
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.TInt},
			{Name: "node_id", Type: reldb.TInt, NotNull: true},
			{Name: "part_id", Type: reldb.TString, NotNull: true},
			{Name: "feature", Type: reldb.TString, NotNull: true},
		},
		PrimaryKey: "id",
	}); err != nil {
		return err
	}
	if err := db.CreateIndex(TableFeatures, "ix_feat_part_feature", false, "part_id", "feature"); err != nil {
		return err
	}
	if err := db.CreateTable(reldb.Schema{
		Name: TableCodeFreq,
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.TInt},
			{Name: "part_id", Type: reldb.TString, NotNull: true},
			{Name: "error_code", Type: reldb.TString, NotNull: true},
			{Name: "count", Type: reldb.TInt, NotNull: true},
		},
		PrimaryKey: "id",
	}); err != nil {
		return err
	}
	return db.CreateIndex(TableCodeFreq, "ix_freq_part", false, "part_id")
}

// Persist writes an in-memory knowledge base into db (Knowledge Base
// Persistence, pipeline step 3b).
func Persist(db *reldb.DB, m *Memory) error {
	tx := db.Begin()
	for _, n := range m.nodes {
		tx.Insert(TableNodes, reldb.Row{
			n.ID, n.PartID, n.ErrorCode, strings.Join(n.Features, "\x01"),
		})
		for _, f := range n.Features {
			tx.Insert(TableFeatures, reldb.Row{nil, n.ID, n.PartID, f})
		}
	}
	parts := make([]string, 0, len(m.freq))
	for p := range m.freq {
		parts = append(parts, p)
	}
	sort.Strings(parts)
	for _, p := range parts {
		for _, cc := range sortedCounts(m.freq[p]) {
			tx.Insert(TableCodeFreq, reldb.Row{nil, p, cc.Code, int64(cc.Count)})
		}
	}
	return tx.Commit()
}

// DBStore serves the knowledge base directly from a relational database,
// fetching candidate nodes on the fly through the (part, feature) index.
type DBStore struct {
	db *reldb.DB
}

// OpenDB wraps a database containing a persisted knowledge base.
func OpenDB(db *reldb.DB) (*DBStore, error) {
	for _, t := range []string{TableNodes, TableFeatures, TableCodeFreq} {
		if _, err := db.Count(t); err != nil {
			return nil, fmt.Errorf("kb: missing table %q: %w", t, err)
		}
	}
	return &DBStore{db: db}, nil
}

// NodeCount implements Store.
func (s *DBStore) NodeCount() int {
	n, _ := s.db.Count(TableNodes)
	return n
}

// BundleCount implements Store.
func (s *DBStore) BundleCount() int {
	res, err := s.db.Select(reldb.Query{Table: TableCodeFreq})
	if err != nil {
		return 0
	}
	total := 0
	for _, row := range res.Rows {
		total += int(row[3].(int64))
	}
	return total
}

// KnownPart implements Store.
func (s *DBStore) KnownPart(partID string) bool {
	res, err := s.db.Select(reldb.Query{
		Table: TableNodes,
		Where: []reldb.Cond{reldb.Eq("part_id", partID)},
		Limit: 1,
	})
	return err == nil && len(res.Rows) > 0
}

// Candidates implements Store.
func (s *DBStore) Candidates(partID string, features []string) []*Node {
	if !s.KnownPart(partID) {
		return s.AllNodes()
	}
	seen := map[int64]bool{}
	var ids []int64
	for _, f := range features {
		res, err := s.db.Select(reldb.Query{
			Table: TableFeatures,
			Where: []reldb.Cond{reldb.Eq("part_id", partID), reldb.Eq("feature", f)},
		})
		if err != nil {
			continue
		}
		for _, row := range res.Rows {
			id := row[1].(int64)
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	out := make([]*Node, 0, len(ids))
	for _, id := range ids {
		if n, ok := s.node(id); ok {
			out = append(out, n)
		}
	}
	return out
}

// AllNodes implements Store.
func (s *DBStore) AllNodes() []*Node {
	res, err := s.db.Select(reldb.Query{Table: TableNodes, OrderBy: "id"})
	if err != nil {
		return nil
	}
	out := make([]*Node, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, nodeFromRow(row))
	}
	return out
}

func (s *DBStore) node(id int64) (*Node, bool) {
	row, ok := s.db.Get(TableNodes, id)
	if !ok {
		return nil, false
	}
	return nodeFromRow(row), true
}

func nodeFromRow(row reldb.Row) *Node {
	n := &Node{
		ID:        row[0].(int64),
		PartID:    row[1].(string),
		ErrorCode: row[2].(string),
	}
	if fs := row[3].(string); fs != "" {
		n.Features = strings.Split(fs, "\x01")
	}
	return n
}

// CodeFrequencies implements Store.
func (s *DBStore) CodeFrequencies(partID string) []CodeCount {
	res, err := s.db.Select(reldb.Query{
		Table: TableCodeFreq,
		Where: []reldb.Cond{reldb.Eq("part_id", partID)},
	})
	if err != nil {
		return nil
	}
	if len(res.Rows) == 0 {
		// Unknown part: aggregate globally.
		res, err = s.db.Select(reldb.Query{Table: TableCodeFreq})
		if err != nil {
			return nil
		}
		agg := map[string]int{}
		for _, row := range res.Rows {
			agg[row[2].(string)] += int(row[3].(int64))
		}
		return sortedCounts(agg)
	}
	counts := make(map[string]int, len(res.Rows))
	for _, row := range res.Rows {
		counts[row[2].(string)] += int(row[3].(int64))
	}
	return sortedCounts(counts)
}

var _ Store = (*Memory)(nil)
var _ Store = (*DBStore)(nil)
