package kb

import (
	"sort"
	"strings"
)

// Node is one knowledge node (Fig. 9): a unique combination of part ID,
// error code and feature set. Features are sorted and duplicate-free.
type Node struct {
	ID        int64
	PartID    string
	ErrorCode string
	Features  []string
}

// CodeCount is an error code with its training-set frequency.
type CodeCount struct {
	Code  string
	Count int
}

// Store is the read interface the classifier and the baselines work
// against. Both the in-memory knowledge base and the relational one
// implement it.
type Store interface {
	// NodeCount reports the number of knowledge nodes.
	NodeCount() int
	// KnownPart reports whether any node carries this part ID.
	KnownPart(partID string) bool
	// Candidates returns the neighbor candidate set of §4.3/Fig. 5: nodes
	// with the same part ID sharing at least one feature with the query.
	// If the part ID is unknown, all nodes are returned.
	Candidates(partID string, features []string) []*Node
	// AllNodes returns every node (used by the candidate-set fallback and
	// diagnostics).
	AllNodes() []*Node
	// CodeFrequencies returns the error codes recorded for a part sorted
	// by descending data-bundle frequency (ties by code); for an unknown
	// part it returns global frequencies. This feeds the code-frequency
	// baseline (§5.1).
	CodeFrequencies(partID string) []CodeCount
	// BundleCount reports how many data bundles were added.
	BundleCount() int
}

// Memory is the in-memory knowledge base with inverted indexes for
// candidate retrieval.
type Memory struct {
	nodes   []*Node
	byPart  map[string][]int32
	byPF    map[string][]int32 // part+"\x00"+feature → node indexes
	dedup   map[string]int32   // node signature → index
	freq    map[string]map[string]int
	global  map[string]int
	bundles int
	nextID  int64
}

// NewMemory creates an empty in-memory knowledge base.
func NewMemory() *Memory {
	return &Memory{
		byPart: make(map[string][]int32),
		byPF:   make(map[string][]int32),
		dedup:  make(map[string]int32),
		freq:   make(map[string]map[string]int),
		global: make(map[string]int),
		nextID: 1,
	}
}

// AddBundle records one training data bundle: its code frequency always
// counts, and a knowledge node is created unless an identical configuration
// instance (part, code, features) already exists. Features must be sorted
// and duplicate-free (as produced by Extractor.Features).
func (m *Memory) AddBundle(partID, errorCode string, features []string) *Node {
	m.bundles++
	pf := m.freq[partID]
	if pf == nil {
		pf = make(map[string]int)
		m.freq[partID] = pf
	}
	pf[errorCode]++
	m.global[errorCode]++

	sig := partID + "\x00" + errorCode + "\x00" + strings.Join(features, "\x01")
	if idx, ok := m.dedup[sig]; ok {
		return m.nodes[idx]
	}
	n := &Node{ID: m.nextID, PartID: partID, ErrorCode: errorCode, Features: features}
	m.nextID++
	idx := int32(len(m.nodes))
	m.nodes = append(m.nodes, n)
	m.dedup[sig] = idx
	m.byPart[partID] = append(m.byPart[partID], idx)
	for _, f := range features {
		key := partID + "\x00" + f
		m.byPF[key] = append(m.byPF[key], idx)
	}
	return n
}

// NodeCount implements Store.
func (m *Memory) NodeCount() int { return len(m.nodes) }

// BundleCount implements Store.
func (m *Memory) BundleCount() int { return m.bundles }

// KnownPart implements Store.
func (m *Memory) KnownPart(partID string) bool {
	return len(m.byPart[partID]) > 0
}

// Candidates implements Store. Selection happens via the inverted
// part+feature index; each node appears once even when it shares several
// features with the query.
func (m *Memory) Candidates(partID string, features []string) []*Node {
	if !m.KnownPart(partID) {
		return m.AllNodes()
	}
	seen := make(map[int32]bool)
	var out []*Node
	for _, f := range features {
		for _, idx := range m.byPF[partID+"\x00"+f] {
			if !seen[idx] {
				seen[idx] = true
				out = append(out, m.nodes[idx])
			}
		}
	}
	return out
}

// AllNodes implements Store.
func (m *Memory) AllNodes() []*Node {
	return append([]*Node(nil), m.nodes...)
}

// CodeFrequencies implements Store.
func (m *Memory) CodeFrequencies(partID string) []CodeCount {
	src := m.freq[partID]
	if len(src) == 0 {
		src = m.global
	}
	return sortedCounts(src)
}

func sortedCounts(src map[string]int) []CodeCount {
	out := make([]CodeCount, 0, len(src))
	for code, n := range src {
		out = append(out, CodeCount{Code: code, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Code < out[j].Code
	})
	return out
}

// DistinctCodes reports the number of distinct error codes recorded.
func (m *Memory) DistinctCodes() int { return len(m.global) }
