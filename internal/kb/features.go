// Package kb builds and serves the knowledge base of the QATK (paper §4.3,
// §4.4 step 3, Fig. 9). Each knowledge node represents one configuration
// instance — a unique combination of part ID, error code and feature set —
// abstracting away from individual data instances, which both shrinks the
// knowledge base and speeds up similarity computation (the kNN-Model idea
// of Guo et al. the paper adopts). Features are either all words of the
// document (domain-ignorant bag-of-words) or the taxonomy concept mentions
// (domain-specific bag-of-concepts).
package kb

import (
	"sort"
	"strconv"

	"repro/internal/annotate"
	"repro/internal/cas"
	"repro/internal/textproc"
)

// FeatureModel selects how a document is abstracted into features.
type FeatureModel uint8

// The two feature models compared in experiment 1 (§5.2).
const (
	BagOfWords FeatureModel = iota + 1
	BagOfConcepts
)

// String names the model as in the paper.
func (m FeatureModel) String() string {
	switch m {
	case BagOfWords:
		return "bag-of-words"
	case BagOfConcepts:
		return "bag-of-concepts"
	}
	return "unknown"
}

// Extractor turns an analyzed CAS into a sorted, duplicate-free feature
// set. For BagOfWords it uses the lowercase forms of all Token annotations
// (optionally minus stopwords, the §5.2.2 runtime optimization); for
// BagOfConcepts it uses the numeric IDs of Concept annotations, without
// distinguishing concept types (§4.3).
type Extractor struct {
	Model     FeatureModel
	Stopwords textproc.StopwordSet // optional; BagOfWords only
	// UseCorrections substitutes the SpellNormalizer's corrected form for
	// a token when present ("more linguistic preprocessing", §6).
	UseCorrections bool
	// UseStems substitutes the Stemmer's language-dependent stem for a
	// token when present (skipped for tokens that were spell-corrected,
	// whose stem was computed from the uncorrected form).
	UseStems bool
}

// Features extracts the feature set of a CAS. The required annotations
// (Token, and Concept for BagOfConcepts) must already be present.
func (e *Extractor) Features(c *cas.CAS) []string {
	switch e.Model {
	case BagOfConcepts:
		ids := annotate.ConceptIDs(c)
		out := make([]string, len(ids))
		for i, id := range ids {
			out[i] = strconv.Itoa(id)
		}
		sort.Strings(out)
		return out
	default: // BagOfWords
		seen := map[string]bool{}
		var out []string
		for _, t := range c.Select(textproc.TypeToken) {
			w := t.Feature(textproc.FeatNorm)
			corrected := false
			if e.UseCorrections {
				if fixed := t.Feature(textproc.FeatCorrected); fixed != "" {
					w = fixed
					corrected = true
				}
			}
			if e.UseStems && !corrected {
				if stem := t.Feature(textproc.FeatStem); stem != "" {
					w = stem
				}
			}
			if w == "" || seen[w] {
				continue
			}
			if e.Stopwords != nil && e.Stopwords.Contains(w) {
				continue
			}
			seen[w] = true
			out = append(out, w)
		}
		sort.Strings(out)
		return out
	}
}

// SharedCount returns |a ∩ b| for two sorted string slices.
func SharedCount(a, b []string) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}
