package kb

import (
	"hash/fnv"
	"sort"
)

// Part-ID partitioning for the sharded serving tier. The paper's candidate
// selection (§4.3/Fig. 5) keys on part ID, so a knowledge base splits
// cleanly along part boundaries: every node, inverted-index entry and
// code-frequency row of one part lands on exactly one shard, and a query
// for a known part is answered completely by the shard owning that part.

// PartOwner returns the owning shard of a part ID under n-way partitioning
// (FNV-1a; stable across processes and restarts, so routing tables never
// need to be persisted). n <= 1 always owns everything at shard 0.
func PartOwner(partID string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(partID))
	return int(h.Sum32() % uint32(n))
}

// Subset materializes the slice of src owned by shard `shard` of `n` into
// an in-memory Store. Node IDs are preserved, so rankings merged across
// subsets tie-break exactly like a ranking over the whole store — the
// property the router's deterministic merge relies on. Code frequencies
// are restricted to the kept parts; BundleCount reports the kept share.
func Subset(src Store, shard, n int) Store {
	sub := &subsetStore{
		byPart: make(map[string][]int32),
		byPF:   make(map[string][]int32),
		freq:   make(map[string][]CodeCount),
	}
	for _, node := range src.AllNodes() {
		if PartOwner(node.PartID, n) != shard {
			continue
		}
		idx := int32(len(sub.nodes))
		sub.nodes = append(sub.nodes, node)
		sub.byPart[node.PartID] = append(sub.byPart[node.PartID], idx)
		for _, f := range node.Features {
			key := node.PartID + "\x00" + f
			sub.byPF[key] = append(sub.byPF[key], idx)
		}
	}
	parts := make([]string, 0, len(sub.byPart))
	for p := range sub.byPart {
		parts = append(parts, p)
	}
	sort.Strings(parts)
	for _, p := range parts {
		counts := src.CodeFrequencies(p)
		sub.freq[p] = counts
		for _, cc := range counts {
			sub.bundles += cc.Count
		}
	}
	return sub
}

// subsetStore is the in-memory partition view produced by Subset.
type subsetStore struct {
	nodes   []*Node
	byPart  map[string][]int32
	byPF    map[string][]int32
	freq    map[string][]CodeCount
	bundles int
}

// NodeCount implements Store.
func (s *subsetStore) NodeCount() int { return len(s.nodes) }

// BundleCount implements Store.
func (s *subsetStore) BundleCount() int { return s.bundles }

// KnownPart implements Store.
func (s *subsetStore) KnownPart(partID string) bool { return len(s.byPart[partID]) > 0 }

// Candidates implements Store with the standard contract: for a known part
// the (part, feature) inverted index drives selection; an unknown part
// falls back to every local node (the scatter path ranks all shards'
// nodes, reproducing the unsharded all-nodes fallback).
func (s *subsetStore) Candidates(partID string, features []string) []*Node {
	if !s.KnownPart(partID) {
		return s.AllNodes()
	}
	seen := make(map[int32]bool)
	var out []*Node
	for _, f := range features {
		for _, idx := range s.byPF[partID+"\x00"+f] {
			if !seen[idx] {
				seen[idx] = true
				out = append(out, s.nodes[idx])
			}
		}
	}
	return out
}

// AllNodes implements Store.
func (s *subsetStore) AllNodes() []*Node {
	return append([]*Node(nil), s.nodes...)
}

// CodeFrequencies implements Store. The global fallback for unknown parts
// aggregates over the kept parts only — the shard's view of the world.
func (s *subsetStore) CodeFrequencies(partID string) []CodeCount {
	if counts, ok := s.freq[partID]; ok {
		return append([]CodeCount(nil), counts...)
	}
	agg := map[string]int{}
	for _, counts := range s.freq {
		for _, cc := range counts {
			agg[cc.Code] += cc.Count
		}
	}
	return sortedCounts(agg)
}

var _ Store = (*subsetStore)(nil)
