package kb

import (
	"reflect"
	"testing"

	"repro/internal/annotate"
	"repro/internal/cas"
	"repro/internal/reldb"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
)

func TestExtractorBagOfWords(t *testing.T) {
	c := cas.New("The radio the RADIO crackles")
	if err := (textproc.Tokenizer{}).Process(c); err != nil {
		t.Fatal(err)
	}
	e := &Extractor{Model: BagOfWords}
	got := e.Features(c)
	want := []string{"crackles", "radio", "the"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("features = %v", got)
	}
}

func TestExtractorBagOfWordsStopwords(t *testing.T) {
	c := cas.New("The radio crackles and the fan hums")
	if err := (textproc.Tokenizer{}).Process(c); err != nil {
		t.Fatal(err)
	}
	e := &Extractor{Model: BagOfWords, Stopwords: textproc.NewStopwordSet()}
	got := e.Features(c)
	want := []string{"crackles", "fan", "hums", "radio"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("features = %v", got)
	}
}

func TestExtractorBagOfConcepts(t *testing.T) {
	tax := taxonomy.New()
	if err := tax.Add(taxonomy.Concept{ID: 11, Kind: taxonomy.KindComponent, Path: "Radio",
		Synonyms: map[string][]string{"en": {"radio"}}}); err != nil {
		t.Fatal(err)
	}
	if err := tax.Add(taxonomy.Concept{ID: 22, Kind: taxonomy.KindSymptom, Path: "Crackle",
		Synonyms: map[string][]string{"en": {"crackles", "crackling sound"}}}); err != nil {
		t.Fatal(err)
	}
	c := cas.New("radio crackles with crackling sound")
	if err := (textproc.Tokenizer{}).Process(c); err != nil {
		t.Fatal(err)
	}
	if err := annotate.NewConceptAnnotator(tax).Process(c); err != nil {
		t.Fatal(err)
	}
	e := &Extractor{Model: BagOfConcepts}
	got := e.Features(c)
	want := []string{"11", "22"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("features = %v", got)
	}
}

func TestSharedCount(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"a"}, nil, 0},
		{[]string{"a", "b", "c"}, []string{"b", "c", "d"}, 2},
		{[]string{"a", "b"}, []string{"a", "b"}, 2},
		{[]string{"a", "c", "e"}, []string{"b", "d", "f"}, 0},
	}
	for i, c := range cases {
		if got := SharedCount(c.a, c.b); got != c.want {
			t.Errorf("case %d: shared = %d, want %d", i, got, c.want)
		}
	}
}

func memFixture() *Memory {
	m := NewMemory()
	m.AddBundle("P1", "E1", []string{"crackle", "radio"})
	m.AddBundle("P1", "E1", []string{"crackle", "radio"}) // duplicate config instance
	m.AddBundle("P1", "E2", []string{"fan", "hum"})
	m.AddBundle("P1", "E1", []string{"radio", "smell"})
	m.AddBundle("P2", "E3", []string{"brake", "squeak"})
	return m
}

func TestMemoryDedupAndCounts(t *testing.T) {
	m := memFixture()
	if m.NodeCount() != 4 {
		t.Fatalf("nodes = %d, want 4 (dedup)", m.NodeCount())
	}
	if m.BundleCount() != 5 {
		t.Fatalf("bundles = %d, want 5", m.BundleCount())
	}
	if m.DistinctCodes() != 3 {
		t.Fatalf("codes = %d", m.DistinctCodes())
	}
}

func TestMemoryCandidates(t *testing.T) {
	m := memFixture()
	// Shares "radio": both E1 nodes, not the fan node.
	cands := m.Candidates("P1", []string{"radio"})
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
	for _, n := range cands {
		if n.ErrorCode != "E1" {
			t.Fatalf("unexpected candidate %+v", n)
		}
	}
	// Multiple query features do not duplicate nodes.
	cands = m.Candidates("P1", []string{"radio", "crackle"})
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
	// No shared feature: empty.
	if got := m.Candidates("P1", []string{"zzz"}); len(got) != 0 {
		t.Fatalf("candidates = %v", got)
	}
	// Unknown part: all nodes (paper fallback).
	if got := m.Candidates("P99", []string{"radio"}); len(got) != m.NodeCount() {
		t.Fatalf("fallback candidates = %d", len(got))
	}
}

func TestMemoryCodeFrequencies(t *testing.T) {
	m := memFixture()
	freqs := m.CodeFrequencies("P1")
	if len(freqs) != 2 || freqs[0].Code != "E1" || freqs[0].Count != 3 || freqs[1].Code != "E2" {
		t.Fatalf("freqs = %v", freqs)
	}
	// Unknown part falls back to global counts.
	global := m.CodeFrequencies("P99")
	if len(global) != 3 || global[0].Code != "E1" {
		t.Fatalf("global = %v", global)
	}
}

func TestCodeFrequencyTieBreak(t *testing.T) {
	m := NewMemory()
	m.AddBundle("P", "B", []string{"x"})
	m.AddBundle("P", "A", []string{"y"})
	freqs := m.CodeFrequencies("P")
	if freqs[0].Code != "A" || freqs[1].Code != "B" {
		t.Fatalf("tie-break order = %v", freqs)
	}
}

func TestDBStoreMatchesMemory(t *testing.T) {
	m := memFixture()
	db, _ := reldb.Open("")
	if err := CreateTables(db); err != nil {
		t.Fatal(err)
	}
	if err := Persist(db, m); err != nil {
		t.Fatal(err)
	}
	s, err := OpenDB(db)
	if err != nil {
		t.Fatal(err)
	}
	if s.NodeCount() != m.NodeCount() {
		t.Fatalf("node count = %d vs %d", s.NodeCount(), m.NodeCount())
	}
	if s.BundleCount() != m.BundleCount() {
		t.Fatalf("bundle count = %d vs %d", s.BundleCount(), m.BundleCount())
	}
	if !s.KnownPart("P1") || s.KnownPart("P99") {
		t.Fatal("KnownPart wrong")
	}
	// Same candidates (set equality on node IDs).
	want := map[int64]bool{}
	for _, n := range m.Candidates("P1", []string{"radio"}) {
		want[n.ID] = true
	}
	got := s.Candidates("P1", []string{"radio"})
	if len(got) != len(want) {
		t.Fatalf("candidates = %d vs %d", len(got), len(want))
	}
	for _, n := range got {
		if !want[n.ID] {
			t.Fatalf("unexpected candidate %+v", n)
		}
		if len(n.Features) == 0 {
			t.Fatal("features not round-tripped")
		}
	}
	// Same frequencies.
	if !reflect.DeepEqual(s.CodeFrequencies("P1"), m.CodeFrequencies("P1")) {
		t.Fatalf("freqs differ: %v vs %v", s.CodeFrequencies("P1"), m.CodeFrequencies("P1"))
	}
	if !reflect.DeepEqual(s.CodeFrequencies("P99"), m.CodeFrequencies("P99")) {
		t.Fatalf("global freqs differ")
	}
	// Unknown part: all nodes.
	if got := s.Candidates("P99", []string{"radio"}); len(got) != m.NodeCount() {
		t.Fatalf("fallback = %d", len(got))
	}
}

func TestOpenDBRequiresSchema(t *testing.T) {
	db, _ := reldb.Open("")
	if _, err := OpenDB(db); err == nil {
		t.Fatal("OpenDB without schema accepted")
	}
}

func TestFeatureModelString(t *testing.T) {
	if BagOfWords.String() != "bag-of-words" || BagOfConcepts.String() != "bag-of-concepts" {
		t.Fatal("model names wrong")
	}
	if FeatureModel(99).String() != "unknown" {
		t.Fatal("unknown model name wrong")
	}
}
