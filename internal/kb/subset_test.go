package kb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func buildSubsetKB(t *testing.T) *Memory {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	m := NewMemory()
	for i := 0; i < 300; i++ {
		part := fmt.Sprintf("P%03d", rng.Intn(15))
		code := fmt.Sprintf("E%03d", rng.Intn(12))
		n := 3 + rng.Intn(5)
		set := map[string]bool{}
		for len(set) < n {
			set[fmt.Sprintf("f%02d", rng.Intn(40))] = true
		}
		feats := make([]string, 0, len(set))
		for f := range set {
			feats = append(feats, f)
		}
		sort.Strings(feats)
		m.AddBundle(part, code, feats)
	}
	return m
}

// TestPartOwnerStable: the partitioning rule is a pure function of the
// part ID and shard count, and n<=1 collapses to shard 0.
func TestPartOwnerStable(t *testing.T) {
	for _, part := range []string{"P000", "P007", "weird part", ""} {
		for _, n := range []int{1, 2, 4, 7} {
			a, b := PartOwner(part, n), PartOwner(part, n)
			if a != b {
				t.Fatalf("PartOwner(%q,%d) unstable: %d vs %d", part, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("PartOwner(%q,%d) = %d out of range", part, n, a)
			}
		}
		if PartOwner(part, 0) != 0 || PartOwner(part, -3) != 0 {
			t.Fatalf("PartOwner(%q, n<=1) must be 0", part)
		}
	}
}

// TestSubsetPartition: subsets cover the store exactly once — every node
// lands on its part's owner with its global node ID preserved, and the
// per-part views are identical to the source store's.
func TestSubsetPartition(t *testing.T) {
	src := buildSubsetKB(t)
	const n = 4
	shards := make([]Store, n)
	total, bundles := 0, 0
	for i := 0; i < n; i++ {
		shards[i] = Subset(src, i, n)
		total += shards[i].NodeCount()
		bundles += shards[i].BundleCount()
	}
	if total != src.NodeCount() {
		t.Fatalf("partitioned nodes = %d, want %d", total, src.NodeCount())
	}
	if bundles != src.BundleCount() {
		t.Fatalf("partitioned bundles = %d, want %d", bundles, src.BundleCount())
	}

	seen := map[int64]bool{}
	for i := 0; i < n; i++ {
		for _, node := range shards[i].AllNodes() {
			if seen[node.ID] {
				t.Fatalf("node %d appears in more than one shard", node.ID)
			}
			seen[node.ID] = true
			if owner := PartOwner(node.PartID, n); owner != i {
				t.Fatalf("node %d (part %s) on shard %d, owner is %d", node.ID, node.PartID, i, owner)
			}
		}
	}

	for p := 0; p < 15; p++ {
		part := fmt.Sprintf("P%03d", p)
		if !src.KnownPart(part) {
			continue
		}
		owner := PartOwner(part, n)
		for i := 0; i < n; i++ {
			if got := shards[i].KnownPart(part); got != (i == owner) {
				t.Fatalf("shard %d KnownPart(%s) = %v, owner is %d", i, part, got, owner)
			}
		}
		feats := make([]string, 40)
		for f := range feats {
			feats[f] = fmt.Sprintf("f%02d", f)
		}
		got := nodeIDs(shards[owner].Candidates(part, feats))
		want := nodeIDs(src.Candidates(part, feats))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("part %s: owner candidates %v, want %v", part, got, want)
		}
	}
}

// TestSubsetUnknownPartFallback: a subset keeps the store contract —
// Candidates for a part it does not own falls back to its own AllNodes,
// and CodeFrequencies aggregates only the kept partition.
func TestSubsetUnknownPartFallback(t *testing.T) {
	src := buildSubsetKB(t)
	s := Subset(src, 1, 4)
	got := nodeIDs(s.Candidates("PXXX", []string{"f01"}))
	want := nodeIDs(s.AllNodes())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unknown-part candidates = %v, want local AllNodes %v", got, want)
	}

	counts := map[string]int{}
	for _, node := range s.AllNodes() {
		counts[node.ErrorCode]++
	}
	freq := s.CodeFrequencies("PXXX")
	if len(freq) != len(counts) {
		t.Fatalf("fallback code frequencies: %d entries, want %d", len(freq), len(counts))
	}
	for _, cc := range freq {
		if cc.Count != counts[cc.Code] {
			t.Errorf("code %s count = %d, want %d", cc.Code, cc.Count, counts[cc.Code])
		}
	}
}

func nodeIDs(nodes []*Node) []int64 {
	out := make([]int64, len(nodes))
	for i, n := range nodes {
		out[i] = n.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
