package textproc

import (
	"repro/internal/cas"
)

// Language codes produced by the detector.
const (
	LangGerman  = "de"
	LangEnglish = "en"
	LangUnknown = "unk"
)

// MetaLanguage is the CAS metadata key set by the detector.
const MetaLanguage = "lang"

// TypeLanguage is the annotation type covering each detected segment.
const TypeLanguage = "Language"

// FeatLang is the language feature of TypeLanguage annotations.
const FeatLang = "lang"

var (
	markersDE = buildMarkerSet(stopwordsDE, []string{
		"nicht", "defekt", "funktioniert", "beim", "wurde", "ausgetauscht",
		"geprüft", "keine", "kunde", "fehler", "und", "ist",
	})
	markersEN = buildMarkerSet(stopwordsEN, []string{
		"not", "defective", "works", "replaced", "checked", "customer",
		"failure", "and", "is", "the", "no",
	})
)

func buildMarkerSet(base, extra []string) map[string]bool {
	m := make(map[string]bool, len(base)+len(extra))
	for _, w := range base {
		m[w] = true
	}
	for _, w := range extra {
		m[w] = true
	}
	return m
}

// DetectLanguage guesses the dominant language of a token sequence by
// counting closed-class marker words. The reports are "mostly a mix of
// German and English" (§3.2); the detector therefore only distinguishes
// those two, answering LangUnknown when the evidence is balanced or absent.
func DetectLanguage(tokens []string) string {
	de, en := 0, 0
	for _, t := range tokens {
		// A word can be a marker in both languages (e.g. "an"); count both.
		if markersDE[t] {
			de++
		}
		if markersEN[t] {
			en++
		}
	}
	switch {
	case de > en:
		return LangGerman
	case en > de:
		return LangEnglish
	default:
		return LangUnknown
	}
}

// LanguageDetector is a pipeline engine. It requires the Tokenizer to have
// run, sets MetaLanguage on the CAS to the document-level guess, and adds
// one TypeLanguage annotation per source segment with the per-segment
// guess, so later engines can treat a German supplier report differently
// from an English mechanic report within the same bundle.
type LanguageDetector struct{}

// Name implements pipeline.Engine.
func (LanguageDetector) Name() string { return "language-detector" }

// Process detects document and segment languages.
func (LanguageDetector) Process(c *cas.CAS) error {
	tokens := c.Select(TypeToken)
	var all []string
	for _, t := range tokens {
		all = append(all, t.Feature(FeatNorm))
	}
	c.SetMetadata(MetaLanguage, DetectLanguage(all))

	for _, seg := range c.Segments() {
		var segTokens []string
		for _, t := range c.SelectCovered(TypeToken, seg.Begin, seg.End) {
			segTokens = append(segTokens, t.Feature(FeatNorm))
		}
		a := &cas.Annotation{Type: TypeLanguage, Begin: seg.Begin, End: seg.End}
		a.SetFeature(FeatLang, DetectLanguage(segTokens))
		if err := c.Annotate(a); err != nil {
			return err
		}
	}
	return nil
}
