package textproc

import (
	"strings"

	"repro/internal/cas"
)

// Light suffix-stripping stemmers for German and English — the "more
// linguistic preprocessing" the paper schedules as future work (§6),
// designed for the pipeline's modularity: the Stemmer engine adds a "stem"
// feature to tokens, and feature extractors may choose to use it. The
// rules follow the first steps of the classic Porter (English) and
// CISTEM-style (German) algorithms: aggressive enough to conflate
// inflection ("crackles"/"crackling", "quietscht"/"quietschen"), cheap and
// language-conditioned but with safe fallbacks for unknown languages.

// FeatStem is the token feature carrying the stem.
const FeatStem = "stem"

// StemEnglish strips common English inflectional suffixes.
func StemEnglish(w string) string {
	if len(w) <= 3 {
		return w
	}
	switch {
	case strings.HasSuffix(w, "ations") && len(w) > 7:
		return w[:len(w)-4] // vibrations → vibrat
	case strings.HasSuffix(w, "ingly") && len(w) > 7:
		return w[:len(w)-5]
	case strings.HasSuffix(w, "iness") && len(w) > 7:
		return w[:len(w)-5]
	case strings.HasSuffix(w, "ation") && len(w) > 6:
		return w[:len(w)-3] // vibration → vibrat
	case strings.HasSuffix(w, "edly") && len(w) > 6:
		return w[:len(w)-4]
	case strings.HasSuffix(w, "ing") && len(w) > 5:
		return dedupFinal(w[:len(w)-3])
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "ed") && len(w) > 4:
		return dedupFinal(w[:len(w)-2])
	case strings.HasSuffix(w, "les") && len(w) > 5:
		return w[:len(w)-1] // crackles → crackle
	case strings.HasSuffix(w, "es") && len(w) > 4:
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ly") && len(w) > 4:
		return w[:len(w)-2]
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && len(w) > 3:
		return w[:len(w)-1]
	}
	return w
}

// dedupFinal removes a doubled final consonant ("stopp" → "stop").
func dedupFinal(w string) string {
	n := len(w)
	if n >= 2 && w[n-1] == w[n-2] && !isVowelByte(w[n-1]) {
		return w[:n-1]
	}
	return w
}

func isVowelByte(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// StemGerman strips common German inflectional suffixes (CISTEM-style
// order, without the umlaut handling a full implementation would add).
func StemGerman(w string) string {
	if len(w) <= 4 {
		return w
	}
	for _, suf := range []string{"ungen", "heiten", "keiten"} {
		if strings.HasSuffix(w, suf) && len(w) > len(suf)+3 {
			return w[:len(w)-len(suf)]
		}
	}
	for _, suf := range []string{"ung", "heit", "keit", "isch", "lich", "end", "ern", "em", "en", "er", "es", "e", "s", "n", "t"} {
		if strings.HasSuffix(w, suf) && len(w)-len(suf) >= 4 {
			return w[:len(w)-len(suf)]
		}
	}
	return w
}

// Stem applies the stemmer for the given language code; unknown languages
// pass through unchanged (the safe choice for the multilingual corpus).
func Stem(w, lang string) string {
	switch lang {
	case LangEnglish:
		return StemEnglish(w)
	case LangGerman:
		return StemGerman(w)
	default:
		return w
	}
}

// Stemmer is a pipeline engine that adds the FeatStem feature to every
// token, using the segment language detected by the LanguageDetector
// (which must run earlier in the pipeline). Tokens in segments without a
// detected language keep their norm as stem.
type Stemmer struct{}

// Name implements pipeline.Engine.
func (Stemmer) Name() string { return "stemmer" }

// Process stems every token according to its segment language.
func (Stemmer) Process(c *cas.CAS) error {
	// Map each language annotation onto the tokens it covers.
	langs := c.Select(TypeLanguage)
	for _, t := range c.Select(TypeToken) {
		lang := LangUnknown
		for _, l := range langs {
			if t.Begin >= l.Begin && t.End <= l.End {
				lang = l.Feature(FeatLang)
				break
			}
		}
		t.SetFeature(FeatStem, Stem(t.Feature(FeatNorm), lang))
	}
	return nil
}
