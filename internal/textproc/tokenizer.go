// Package textproc provides the language-independent linguistic
// preprocessing of the QATK pipeline (paper §4.4 step 2a): a simple custom
// whitespace-/punctuation tokenizer, a German/English language detector and
// stopword filtering. The paper deliberately relies on steps that work for
// the mixed-language "messy" reports without language-specific tooling.
package textproc

import (
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/cas"
)

// TypeToken is the annotation type produced by the tokenizer.
const TypeToken = "Token"

// FeatNorm is the token feature holding the lowercased form.
const FeatNorm = "norm"

// Span is a half-open byte range [Begin, End) in a document text.
type Span struct {
	Begin, End int
}

// Tokenizer is a pipeline engine that segments the document text into word
// tokens at whitespace and punctuation, without further normalization
// beyond lowercasing the "norm" feature (the paper works on whitespace- and
// punctuation-tokenized text without stemming, §5.1).
type Tokenizer struct{}

// Name implements pipeline.Engine.
func (Tokenizer) Name() string { return "tokenizer" }

// Process annotates every token with TypeToken.
func (Tokenizer) Process(c *cas.CAS) error {
	text := c.Text()
	for _, s := range TokenSpans(text) {
		a := &cas.Annotation{Type: TypeToken, Begin: s.Begin, End: s.End}
		a.SetFeature(FeatNorm, strings.ToLower(text[s.Begin:s.End]))
		if err := c.Annotate(a); err != nil {
			return err
		}
	}
	return nil
}

// TokenSpans returns the byte spans of all tokens in text, in document
// order. A token is a maximal run of letters and digits, where a single
// hyphen or apostrophe between word runes stays inside the token
// ("o-ring", "don't") — the behaviour of the custom tokenizer of §4.5.2.
func TokenSpans(text string) []Span {
	var spans []Span
	i := 0
	for i < len(text) {
		r, size := utf8.DecodeRuneInString(text[i:])
		if !isWordRune(r) {
			i += size
			continue
		}
		begin := i
		j := i + size
		for j < len(text) {
			r, size := utf8.DecodeRuneInString(text[j:])
			if isWordRune(r) {
				j += size
				continue
			}
			if r == '-' || r == '\'' {
				r2, size2 := utf8.DecodeRuneInString(text[j+size:])
				if isWordRune(r2) {
					j += size + size2
					continue
				}
			}
			break
		}
		spans = append(spans, Span{begin, j})
		i = j
	}
	return spans
}

// Tokens returns the lowercased token strings of text in document order.
func Tokens(text string) []string {
	spans := TokenSpans(text)
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = strings.ToLower(text[s.Begin:s.End])
	}
	return out
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}
