package textproc

import (
	"repro/internal/cas"
)

// German compound splitting — the most impactful language-specific step
// for automotive German, where part names agglutinate ("kotflügelhalter" =
// "kotflügel" + "halter"). The CompoundSplitter tries to decompose unknown
// long tokens into two known vocabulary words (optionally joined by the
// linking element "s" or "n") and annotates the parts, so the concept
// annotator and feature extractors can also see the constituents.

// TypeCompoundPart is the annotation type for compound constituents.
const TypeCompoundPart = "CompoundPart"

// FeatPart carries the lowercase constituent word.
const FeatPart = "part"

// SplitCompound decomposes w into two vocabulary words (the second at
// least 4 bytes), allowing the German linking elements "s" and "n" between
// them. It returns nil if no split exists or w itself is known.
func SplitCompound(w string, vocab Vocabulary) []string {
	if len(w) < 8 || vocab[w] {
		return nil
	}
	for i := 4; i <= len(w)-4; i++ {
		head, tail := w[:i], w[i:]
		if !vocab[head] {
			continue
		}
		if vocab[tail] {
			return []string{head, tail}
		}
		// Linking elements: "s"/"n" after the head.
		if (tail[0] == 's' || tail[0] == 'n') && len(tail) > 4 && vocab[tail[1:]] {
			return []string{head, tail[1:]}
		}
	}
	return nil
}

// CompoundSplitter is a pipeline engine annotating compound constituents
// of German tokens. It must run after the Tokenizer.
type CompoundSplitter struct {
	Vocab Vocabulary
}

// Name implements pipeline.Engine.
func (CompoundSplitter) Name() string { return "compound-splitter" }

// Process adds TypeCompoundPart annotations covering the whole compound
// token, one per constituent.
func (s CompoundSplitter) Process(c *cas.CAS) error {
	if s.Vocab == nil {
		return nil
	}
	for _, t := range c.Select(TypeToken) {
		parts := SplitCompound(t.Feature(FeatNorm), s.Vocab)
		for _, p := range parts {
			a := &cas.Annotation{Type: TypeCompoundPart, Begin: t.Begin, End: t.End}
			a.SetFeature(FeatPart, p)
			if err := c.Annotate(a); err != nil {
				return err
			}
		}
	}
	return nil
}
