package textproc

// Stopword lists. Experiment 1 (§5.2.2) removes "German and English
// stopwords (articles and personal pronouns)" as an optional extra step of
// the bag-of-words approach: accuracy is unchanged, runtime drops. The
// lists below follow that scope — determiners, personal pronouns, and the
// small closed-class glue words that dominate the reports.

var stopwordsEN = []string{
	"the", "a", "an", "this", "that", "these", "those",
	"i", "you", "he", "she", "it", "we", "they",
	"me", "him", "her", "us", "them",
	"my", "your", "his", "its", "our", "their",
	"is", "are", "was", "were", "be", "been", "being",
	"and", "or", "but", "of", "to", "in", "on", "at", "by", "with",
	"for", "from", "as", "into", "after", "before",
	"not", "no", "so", "very", "then", "than",
	"has", "have", "had", "do", "does", "did",
	"will", "would", "can", "could", "says", "said",
}

var stopwordsDE = []string{
	"der", "die", "das", "den", "dem", "des",
	"ein", "eine", "einen", "einem", "einer", "eines",
	"ich", "du", "er", "sie", "es", "wir", "ihr",
	"mich", "dich", "ihn", "uns", "euch", "ihnen",
	"mein", "dein", "sein", "unser", "euer",
	"ist", "sind", "war", "waren", "sein", "gewesen", "wird", "werden", "wurde",
	"und", "oder", "aber", "von", "zu", "im", "am", "an", "auf", "bei", "mit",
	"für", "aus", "nach", "vor", "über", "unter", "durch",
	"nicht", "kein", "keine", "sehr", "dann", "als", "auch", "noch",
	"hat", "habe", "haben", "hatte", "kann", "konnte", "sagt", "laut",
}

// StopwordSet holds lowercase stopwords for fast membership tests.
type StopwordSet map[string]bool

// NewStopwordSet builds a set from the built-in German and English lists
// plus any extra words.
func NewStopwordSet(extra ...string) StopwordSet {
	s := make(StopwordSet, len(stopwordsEN)+len(stopwordsDE)+len(extra))
	for _, w := range stopwordsEN {
		s[w] = true
	}
	for _, w := range stopwordsDE {
		s[w] = true
	}
	for _, w := range extra {
		s[w] = true
	}
	return s
}

// Contains reports whether the lowercased word is a stopword.
func (s StopwordSet) Contains(word string) bool { return s[word] }

// Filter returns tokens with stopwords removed (input must be lowercase).
func (s StopwordSet) Filter(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if !s[t] {
			out = append(out, t)
		}
	}
	return out
}
