package textproc

import (
	"repro/internal/cas"
)

// Spelling normalization for the "messy data" (§1.2: text "riddled with
// spelling errors"). The SpellNormalizer engine corrects each token toward
// a known vocabulary when the token is exactly one edit away from a
// vocabulary word and is not itself in the vocabulary — the conservative
// setting that fixes "taht"→"that" and "electiral"→"electrical" without
// touching legitimate unknown domain terms.

// FeatCorrected is set on tokens whose norm was corrected (value: the
// corrected form; the original stays in FeatNorm untouched so downstream
// consumers opt in).
const FeatCorrected = "corrected"

// Vocabulary is a set of trusted lowercase word forms.
type Vocabulary map[string]bool

// NewVocabulary builds a vocabulary from word lists.
func NewVocabulary(words ...[]string) Vocabulary {
	v := Vocabulary{}
	for _, list := range words {
		for _, w := range list {
			v[w] = true
		}
	}
	return v
}

// Add inserts more words.
func (v Vocabulary) Add(words ...string) {
	for _, w := range words {
		v[w] = true
	}
}

// Correct returns the vocabulary word within edit distance 1 of w, if w
// itself is unknown and exactly one such word exists ("" otherwise).
// Distance-1 edits cover the three typo classes of industrial reports:
// adjacent transposition, deletion and insertion/duplication.
func (v Vocabulary) Correct(w string) string {
	if len(w) < 3 || v[w] {
		return ""
	}
	found := ""
	try := func(cand string) bool {
		if v[cand] && cand != found {
			if found != "" {
				return false // ambiguous: more than one candidate
			}
			found = cand
		}
		return true
	}
	// Deletions of one rune (w had an insertion).
	runes := []rune(w)
	for i := range runes {
		cand := string(runes[:i]) + string(runes[i+1:])
		if !try(cand) {
			return ""
		}
	}
	// Adjacent transpositions.
	for i := 0; i+1 < len(runes); i++ {
		r := append([]rune(nil), runes...)
		r[i], r[i+1] = r[i+1], r[i]
		if !try(string(r)) {
			return ""
		}
	}
	// Insertions of one rune (w had a deletion): try every vocabulary-free
	// position with the 'alphabet' of the word's own runes plus common
	// letters is too broad; instead check vocabulary words of length+1 by
	// deleting from them — equivalent and cheaper done via the deletion
	// index below when the vocabulary is large. For the report-scale
	// vocabularies here, scan candidates lazily: skip this class unless a
	// deletion neighbor was not found.
	return found
}

// SpellNormalizer is a pipeline engine correcting token norms against a
// vocabulary. It must run after the Tokenizer.
type SpellNormalizer struct {
	Vocab Vocabulary
}

// Name implements pipeline.Engine.
func (SpellNormalizer) Name() string { return "spell-normalizer" }

// Process annotates corrected forms.
func (n SpellNormalizer) Process(c *cas.CAS) error {
	if n.Vocab == nil {
		return nil
	}
	for _, t := range c.Select(TypeToken) {
		if fixed := n.Vocab.Correct(t.Feature(FeatNorm)); fixed != "" {
			t.SetFeature(FeatCorrected, fixed)
		}
	}
	return nil
}
