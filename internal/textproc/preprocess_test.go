package textproc

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cas"
)

func TestStemEnglish(t *testing.T) {
	cases := map[string]string{
		"crackles":  "crackle",
		"cracking":  "crack",
		"stopped":   "stop",
		"bodies":    "body",
		"quickly":   "quick",
		"vibration": "vibrat",
		"fan":       "fan",
		"glass":     "glass", // -ss guarded
		"is":        "is",    // too short
	}
	for in, want := range cases {
		if got := StemEnglish(in); got != want {
			t.Errorf("StemEnglish(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemGerman(t *testing.T) {
	cases := map[string]string{
		"quietschen":      "quietsch",
		"quietscht":       "quietsch",
		"lüftern":         "lüft",  // -ern
		"prüfungen":       "prüf",  // -ungen
		"dichtungen":      "dicht", // -ungen
		"bremse":          "brems", // -e
		"kolben":          "kolb",  // -en
		"rad":             "rad",   // too short
		"auffälligkeiten": "auffällig",
	}
	for in, want := range cases {
		if got := StemGerman(in); got != want {
			t.Errorf("StemGerman(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: stems are never longer than the input and never empty.
func TestStemProperties(t *testing.T) {
	f := func(w string) bool {
		for _, lang := range []string{LangEnglish, LangGerman, LangUnknown} {
			s := Stem(w, lang)
			if len(s) > len(w) {
				return false
			}
			if w != "" && s == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStemmerEngine(t *testing.T) {
	c := cas.NewFromSegments([]struct{ Source, Text string }{
		{"mechanic", "the radio crackles and is not working"},
		{"supplier", "der lüfter quietscht und ist nicht dicht"},
	})
	for _, e := range []interface{ Process(*cas.CAS) error }{
		Tokenizer{}, LanguageDetector{}, Stemmer{},
	} {
		if err := e.Process(c); err != nil {
			t.Fatal(err)
		}
	}
	stems := map[string]string{}
	for _, tok := range c.Select(TypeToken) {
		stems[tok.Feature(FeatNorm)] = tok.Feature(FeatStem)
	}
	if stems["crackles"] != "crackle" {
		t.Errorf("crackles stemmed to %q", stems["crackles"])
	}
	if stems["quietscht"] != "quietsch" {
		t.Errorf("quietscht stemmed to %q", stems["quietscht"])
	}
}

func TestVocabularyCorrect(t *testing.T) {
	v := NewVocabulary([]string{"that", "radio", "electrical", "contact"})
	cases := map[string]string{
		"taht":       "that",    // transposition
		"radoi":      "radio",   // transposition
		"contactt":   "contact", // duplication
		"electrical": "",        // already known
		"xyzzy":      "",        // nothing close
		"ra":         "",        // too short
	}
	for in, want := range cases {
		if got := v.Correct(in); got != want {
			t.Errorf("Correct(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestVocabularyCorrectAmbiguous(t *testing.T) {
	v := NewVocabulary([]string{"cart", "card"})
	// "cartd" deletes to both "cart" and "card" → ambiguous → no fix.
	if got := v.Correct("cartd"); got != "" {
		t.Errorf("ambiguous correction = %q", got)
	}
}

func TestSpellNormalizerEngine(t *testing.T) {
	v := NewVocabulary([]string{"that", "crackling"})
	c := cas.New("says taht cracklingg sound")
	if err := (Tokenizer{}).Process(c); err != nil {
		t.Fatal(err)
	}
	if err := (SpellNormalizer{Vocab: v}).Process(c); err != nil {
		t.Fatal(err)
	}
	var fixed []string
	for _, tok := range c.Select(TypeToken) {
		if f := tok.Feature(FeatCorrected); f != "" {
			fixed = append(fixed, f)
		}
	}
	want := []string{"that", "crackling"}
	if !reflect.DeepEqual(fixed, want) {
		t.Fatalf("corrections = %v, want %v", fixed, want)
	}
}

func TestSplitCompound(t *testing.T) {
	v := NewVocabulary([]string{"kotflügel", "halter", "brems", "scheibe", "motor"})
	cases := map[string][]string{
		"kotflügelhalter":  {"kotflügel", "halter"},
		"bremsscheibe":     {"brems", "scheibe"},
		"kotflügelshalter": {"kotflügel", "halter"}, // linking "s"
		"motor":            nil,                     // known word
		"kurz":             nil,                     // too short
		"unbekannteswort":  nil,                     // no decomposition
	}
	for in, want := range cases {
		if got := SplitCompound(in, v); !reflect.DeepEqual(got, want) {
			t.Errorf("SplitCompound(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestCompoundSplitterEngine(t *testing.T) {
	v := NewVocabulary([]string{"kotflügel", "halter"})
	c := cas.New("der kotflügelhalter ist defekt")
	if err := (Tokenizer{}).Process(c); err != nil {
		t.Fatal(err)
	}
	if err := (CompoundSplitter{Vocab: v}).Process(c); err != nil {
		t.Fatal(err)
	}
	parts := c.Select(TypeCompoundPart)
	if len(parts) != 2 {
		t.Fatalf("compound parts = %d, want 2", len(parts))
	}
	if parts[0].Feature(FeatPart) != "kotflügel" || parts[1].Feature(FeatPart) != "halter" {
		t.Fatalf("parts = %q, %q", parts[0].Feature(FeatPart), parts[1].Feature(FeatPart))
	}
	// Both cover the compound token's span.
	if c.CoveredText(parts[0]) != "kotflügelhalter" {
		t.Fatalf("covered = %q", c.CoveredText(parts[0]))
	}
}

func TestEnginesAreNamed(t *testing.T) {
	for _, e := range []interface{ Name() string }{
		Stemmer{}, SpellNormalizer{}, CompoundSplitter{},
	} {
		if e.Name() == "" {
			t.Error("engine without name")
		}
	}
}
