package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cas"
)

func TestTokensBasic(t *testing.T) {
	got := Tokens("Kleint says taht radio turns on and off, by itself!")
	want := []string{"kleint", "says", "taht", "radio", "turns", "on", "and", "off", "by", "itself"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestTokensHyphenAndApostrophe(t *testing.T) {
	got := Tokens("o-ring doesn't fit - at all")
	want := []string{"o-ring", "doesn't", "fit", "at", "all"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestTokensUmlauts(t *testing.T) {
	got := Tokens("Lüfter funktioniert nicht, durchgeschmort.")
	want := []string{"lüfter", "funktioniert", "nicht", "durchgeschmort"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestTokensEmptyAndPunctOnly(t *testing.T) {
	if got := Tokens(""); len(got) != 0 {
		t.Fatalf("tokens of empty = %v", got)
	}
	if got := Tokens("... --- !!!"); len(got) != 0 {
		t.Fatalf("tokens of punctuation = %v", got)
	}
}

func TestTokensNumbers(t *testing.T) {
	got := Tokens("id test470, error B2 at 12.5V")
	want := []string{"id", "test470", "error", "b2", "at", "12", "5v"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens = %v", got)
	}
}

// Property: every span returned by TokenSpans is in range, non-empty,
// non-overlapping and in document order.
func TestTokenSpansProperty(t *testing.T) {
	f := func(text string) bool {
		spans := TokenSpans(text)
		prevEnd := 0
		for _, s := range spans {
			if s.Begin < prevEnd || s.End <= s.Begin || s.End > len(text) {
				return false
			}
			prevEnd = s.End
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the concatenation of covered spans contains exactly the word
// runes of the text (no token material is lost by the tokenizer).
func TestTokenSpansCoverWordRunes(t *testing.T) {
	f := func(text string) bool {
		spans := TokenSpans(text)
		var b strings.Builder
		for _, s := range spans {
			b.WriteString(text[s.Begin:s.End])
		}
		joined := b.String()
		for _, r := range text {
			if isWordRune(r) && !strings.ContainsRune(joined, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizerEngine(t *testing.T) {
	c := cas.New("Unit non-functional. Lüfter defekt.")
	if err := (Tokenizer{}).Process(c); err != nil {
		t.Fatal(err)
	}
	toks := c.Select(TypeToken)
	if len(toks) != 4 {
		t.Fatalf("tokens = %d, want 4", len(toks))
	}
	if toks[2].Feature(FeatNorm) != "lüfter" {
		t.Fatalf("norm = %q", toks[2].Feature(FeatNorm))
	}
	if c.CoveredText(toks[1]) != "non-functional" {
		t.Fatalf("covered = %q", c.CoveredText(toks[1]))
	}
}

func TestDetectLanguage(t *testing.T) {
	cases := []struct {
		text string
		want string
	}{
		{"der lüfter funktioniert nicht und ist durchgeschmort", LangGerman},
		{"the radio turns on and off by itself", LangEnglish},
		{"radio kaputt", LangUnknown},
		{"", LangUnknown},
	}
	for _, c := range cases {
		if got := DetectLanguage(Tokens(c.text)); got != c.want {
			t.Errorf("DetectLanguage(%q) = %q, want %q", c.text, got, c.want)
		}
	}
}

func TestLanguageDetectorEngine(t *testing.T) {
	c := cas.NewFromSegments([]struct{ Source, Text string }{
		{"mechanic", "the radio turns on and off by itself, customer says it crackles"},
		{"supplier", "der kontakt ist defekt und durchgeschmort, lüfter funktioniert nicht"},
	})
	if err := (Tokenizer{}).Process(c); err != nil {
		t.Fatal(err)
	}
	if err := (LanguageDetector{}).Process(c); err != nil {
		t.Fatal(err)
	}
	langs := c.Select(TypeLanguage)
	if len(langs) != 2 {
		t.Fatalf("language annotations = %d, want 2", len(langs))
	}
	if langs[0].Feature(FeatLang) != LangEnglish {
		t.Errorf("mechanic segment lang = %q, want en", langs[0].Feature(FeatLang))
	}
	if langs[1].Feature(FeatLang) != LangGerman {
		t.Errorf("supplier segment lang = %q, want de", langs[1].Feature(FeatLang))
	}
	if got := c.Metadata(MetaLanguage); got != LangEnglish && got != LangGerman {
		t.Errorf("document lang = %q", got)
	}
}

func TestStopwordSet(t *testing.T) {
	s := NewStopwordSet("custom")
	for _, w := range []string{"the", "der", "it", "sie", "custom"} {
		if !s.Contains(w) {
			t.Errorf("stopword %q missing", w)
		}
	}
	if s.Contains("radio") {
		t.Error("content word flagged as stopword")
	}
	got := s.Filter([]string{"the", "radio", "ist", "defekt"})
	want := []string{"radio", "defekt"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("filtered = %v", got)
	}
}

func TestStopwordFilterPreservesOrder(t *testing.T) {
	s := NewStopwordSet()
	in := []string{"unit", "is", "broken", "the", "fan", "der", "motor"}
	got := s.Filter(in)
	want := []string{"unit", "broken", "fan", "motor"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("filtered = %v", got)
	}
}
