package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Structured key=value logging. One event is one line:
//
//	ts=2026-08-06T12:00:00Z level=info msg="dead letter" engine=tokenizer doc=R000042
//
// Values are quoted only when they need it, keys come out in the order
// given, and a logger derived with WithSpan stamps trace/span IDs so log
// lines correlate with trace data. A nil *Logger is a no-op, which is the
// sanctioned "logging disabled" state.

// Level is a log severity.
type Level int

// Severities, lowest first. A logger emits events at its level and above.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "unknown"
}

// ParseLevel maps a -log-level flag value onto a severity.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// Logger writes structured events to one writer. Derived loggers (With,
// WithSpan) share the writer and its mutex, so lines never interleave.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level Level
	clock func() time.Time
	base  string // pre-rendered context fields, "" or " k=v ..."
}

// NewLogger builds a logger emitting events at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, clock: time.Now}
}

// WithClock returns a logger reading timestamps from clock (a test seam,
// and the determinism seam for reproducibility-critical callers).
func (l *Logger) WithClock(clock func() time.Time) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	d.clock = clock
	return &d
}

// With returns a logger that stamps the given fields on every event.
func (l *Logger) With(kv ...Label) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	var b strings.Builder
	b.WriteString(l.base)
	appendFields(&b, kv)
	d.base = b.String()
	return &d
}

// WithSpan returns a logger that stamps the span's trace and span IDs on
// every event; a nil span returns the logger unchanged.
func (l *Logger) WithSpan(s *Span) *Logger {
	if l == nil || s == nil {
		return l
	}
	return l.With(
		L("trace", strconv.FormatUint(s.TraceID(), 16)),
		L("span", strconv.FormatUint(s.SpanID(), 16)),
	)
}

// Debug emits a debug event.
func (l *Logger) Debug(msg string, kv ...Label) { l.log(LevelDebug, msg, kv) }

// Info emits an info event.
func (l *Logger) Info(msg string, kv ...Label) { l.log(LevelInfo, msg, kv) }

// Warn emits a warning event.
func (l *Logger) Warn(msg string, kv ...Label) { l.log(LevelWarn, msg, kv) }

// Error emits an error event.
func (l *Logger) Error(msg string, kv ...Label) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []Label) {
	if l == nil || level < l.level {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.clock().UTC().Format(time.RFC3339))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	b.WriteString(l.base)
	appendFields(&b, kv)
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = io.WriteString(l.w, b.String())
}

// appendFields renders " k=v" pairs onto b.
func appendFields(b *strings.Builder, kv []Label) {
	for _, f := range kv {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		b.WriteString(quoteValue(f.Value))
	}
}

// quoteValue quotes a value only when it contains characters that would
// break the key=value grammar.
func quoteValue(v string) string {
	if v == "" {
		return `""`
	}
	if strings.ContainsAny(v, " \t\n\"=") {
		return strconv.Quote(v)
	}
	return v
}
