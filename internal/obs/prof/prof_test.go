package prof

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// Canned debug=1 texts exercising every quirk of the grammar: the
// header line, heap's four-value samples, the MemStats tail, goroutine
// label lines, and the mutex preamble.
const heapTextA = `heap profile: 3: 4096 [10: 20480] @ heap/1048576
2: 2048 [4: 8192] @ 0x4a2b10 0x4a0f22 0x4632c1
#	0x4a2b0f	repro/internal/kb.Build+0x2ef	/root/repo/internal/kb/kb.go:120
#	0x4a0f21	repro/internal/pipeline.Run+0x101	/root/repo/internal/pipeline/run.go:55
1: 2048 [6: 12288] @ 0x52aa10 0x4632c1
#	0x52aa0f	runtime.allocm+0x10f	/usr/local/go/src/runtime/proc.go:1932
#	0x4632c0	repro/internal/quest.Serve+0x40	/root/repo/internal/quest/serve.go:10

# runtime.MemStats
# Alloc = 2148304
# Sys = 12624143
`

const heapTextB = `heap profile: 4: 73728 [12: 94208] @ heap/1048576
3: 71680 [5: 81920] @ 0x4a2b10 0x4a0f22 0x4632c1
#	0x4a2b0f	repro/internal/kb.Build+0x2ef	/root/repo/internal/kb/kb.go:120
#	0x4a0f21	repro/internal/pipeline.Run+0x101	/root/repo/internal/pipeline/run.go:55
1: 2048 [7: 12288] @ 0x52aa10 0x4632c1
#	0x52aa0f	runtime.allocm+0x10f	/usr/local/go/src/runtime/proc.go:1932
#	0x4632c0	repro/internal/quest.Serve+0x40	/root/repo/internal/quest/serve.go:10
`

const goroutineText = `goroutine profile: total 7
5 @ 0x4632c1 0x462f18
# labels: {"replica":"r0", "role":"apply"}
#	0x4632c0	repro/internal/repl.(*Replica).run+0x40	/root/repo/internal/repl/replica.go:273
2 @ 0x46f2a8
#	0x46f2a7	runtime.gopark+0x107	/usr/local/go/src/runtime/proc.go:381
`

const mutexText = `--- mutex:
cycles/second=1000000000
sampling period=1
18718 1 @ 0x46df05 0x46f2a8
#	0x46df04	sync.(*Mutex).Unlock+0x64	/usr/local/go/src/sync/mutex.go:223
#	0x46f2a7	repro/internal/obs.(*Registry).WriteProm+0x87	/root/repo/internal/obs/metrics.go:357
`

// cannedProfiles hands out one fixed text per profile name, switching
// the heap between A and B across calls so deltas are non-trivial.
type cannedProfiles struct {
	mu    sync.Mutex
	heaps []string
	calls int
}

func (c *cannedProfiles) profile(name string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch name {
	case "heap":
		text := c.heaps[min(c.calls, len(c.heaps)-1)]
		c.calls++
		return []byte(text), nil
	case "goroutine":
		return []byte(goroutineText), nil
	case "mutex":
		return []byte(mutexText), nil
	default: // block
		return []byte("--- contention:\ncycles/second=1000000000\n"), nil
	}
}

// newTestSampler builds a sampler on canned profiles and a fake clock.
func newTestSampler(t *testing.T, mutate func(*Config)) (*Sampler, *obs.Registry) {
	t.Helper()
	canned := &cannedProfiles{heaps: []string{heapTextA, heapTextB}}
	now := time.Unix(1700000000, 0)
	reg := obs.NewRegistry()
	cfg := Config{
		Ring:       3,
		WindowSize: 50 * time.Millisecond,
		Clock:      func() time.Time { now = now.Add(time.Second); return now },
		Registry:   reg,
		Logger:     obs.NewLogger(io.Discard, obs.LevelError),
		CaptureCPU: func(time.Duration) ([]byte, error) { return []byte("cpu-pprof-gz"), nil },
		Profile:    canned.profile,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s, reg
}

func TestSummarizeHeapProfile(t *testing.T) {
	sum := SummarizeDebugProfile("heap", heapTextA, 10)
	if sum.Total != 3 || sum.TotalBytes != 4096 {
		t.Fatalf("heap totals = %d objs / %d bytes, want 3 / 4096", sum.Total, sum.TotalBytes)
	}
	if len(sum.Top) != 2 {
		t.Fatalf("top frames = %d, want 2: %+v", len(sum.Top), sum.Top)
	}
	// Leaf attribution skips runtime frames: the second sample lands on
	// quest.Serve, not runtime.allocm. Equal bytes tie-break by name.
	if sum.Top[0].Func != "repro/internal/kb.Build" || sum.Top[0].Bytes != 2048 {
		t.Fatalf("top[0] = %+v", sum.Top[0])
	}
	if sum.Top[1].Func != "repro/internal/quest.Serve" {
		t.Fatalf("top[1] = %+v", sum.Top[1])
	}
}

func TestSummarizeGoroutineProfileCountsAndLabels(t *testing.T) {
	sum := SummarizeDebugProfile("goroutine", goroutineText, 10)
	if sum.Total != 7 {
		t.Fatalf("goroutine total = %d, want 7", sum.Total)
	}
	if sum.Top[0].Func != "repro/internal/repl.(*Replica).run" || sum.Top[0].Value != 5 {
		t.Fatalf("top[0] = %+v", sum.Top[0])
	}
	// The pure-runtime stack falls back to its true leaf.
	if sum.Top[1].Func != "runtime.gopark" || sum.Top[1].Value != 2 {
		t.Fatalf("top[1] = %+v", sum.Top[1])
	}
}

func TestSummarizeMutexProfileSkipsPreamble(t *testing.T) {
	sum := SummarizeDebugProfile("mutex", mutexText, 10)
	if sum.Total != 18718 {
		t.Fatalf("mutex total = %d, want 18718 (cycles)", sum.Total)
	}
	if sum.Top[0].Func != "sync.(*Mutex).Unlock" {
		t.Fatalf("top[0] = %+v", sum.Top[0])
	}
}

func TestSampleNowComputesHeapDeltaAndBoundsRing(t *testing.T) {
	s, reg := newTestSampler(t, nil)
	first := s.SampleNow()
	if len(first.HeapDelta) != 0 {
		t.Fatalf("first snapshot has a heap delta: %+v", first.HeapDelta)
	}
	if string(first.CPUPprof) != "cpu-pprof-gz" {
		t.Fatalf("cpu profile not captured: %q", first.CPUPprof)
	}
	second := s.SampleNow()
	if len(second.HeapDelta) == 0 {
		t.Fatalf("second snapshot has no heap delta")
	}
	// kb.Build grew 2048 -> 71680: the biggest mover comes first.
	d := second.HeapDelta[0]
	if d.Func != "repro/internal/kb.Build" || d.DeltaBytes != 71680-2048 || d.DeltaValue != 1 {
		t.Fatalf("heap delta[0] = %+v", d)
	}
	if d.NowBytes != 71680 {
		t.Fatalf("heap delta now bytes = %d, want 71680", d.NowBytes)
	}

	// Ring is bounded at 3: five samples retain the newest three.
	s.SampleNow()
	s.SampleNow()
	s.SampleNow()
	ring := s.Ring()
	if len(ring) != 3 {
		t.Fatalf("ring length = %d, want 3", len(ring))
	}
	if !ring[0].Time.Before(ring[2].Time) {
		t.Fatalf("ring not oldest-first: %v .. %v", ring[0].Time, ring[2].Time)
	}
	if got := reg.Counter(MetricCapturesTotal).Value(); got != 5 {
		t.Fatalf("prof_captures_total = %d, want 5", got)
	}
}

func TestFreezeAddsBreachCPUOnlyWhenAsked(t *testing.T) {
	s, _ := newTestSampler(t, nil)
	s.SampleNow()
	plain := s.Freeze(false)
	if plain == nil || len(plain.Ring) != 1 || plain.BreachCPU != nil {
		t.Fatalf("plain freeze = %+v", plain)
	}
	breach := s.Freeze(true)
	if string(breach.BreachCPU) != "cpu-pprof-gz" {
		t.Fatalf("breach freeze missing CPU capture: %+v", breach)
	}
}

func TestHandlerServesParseableCapture(t *testing.T) {
	s, _ := newTestSampler(t, nil)
	s.SampleNow()
	s.SampleNow()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/prof", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var c Capture
	if err := json.Unmarshal(rec.Body.Bytes(), &c); err != nil {
		t.Fatalf("response not a Capture: %v", err)
	}
	if len(c.Ring) != 2 || len(c.Ring[1].HeapDelta) == 0 {
		t.Fatalf("capture ring = %+v", c.Ring)
	}
	// ?cpu=1 adds the breach-window capture.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/prof?cpu=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &c); err != nil {
		t.Fatalf("cpu=1 response not a Capture: %v", err)
	}
	if len(c.BreachCPU) == 0 {
		t.Fatalf("cpu=1 capture has no breach CPU profile")
	}
}

func TestNilSamplerIsNoOp(t *testing.T) {
	var s *Sampler
	if s.SampleNow() != nil || s.Ring() != nil || s.Freeze(true) != nil {
		t.Fatalf("nil sampler produced data")
	}
	s.Start()
	s.Close()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/prof", nil))
	if rec.Code != 503 {
		t.Fatalf("nil handler status = %d, want 503", rec.Code)
	}
}

func TestWriteReportRendersDeltasAndGrowth(t *testing.T) {
	s, _ := newTestSampler(t, nil)
	s.SampleNow()
	s.SampleNow()
	var buf bytes.Buffer
	if err := WriteReport(&buf, s.Freeze(true), true); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"CONTINUOUS PROFILE",
		"GOROUTINE GROWTH",
		"HEAP DELTA",
		"repro/internal/kb.Build",
		"MUTEX CONTENTION",
		"breach_cpu",
		"RING HISTORY",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteReportEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, nil, false); err != nil {
		t.Fatalf("WriteReport(nil): %v", err)
	}
	if !strings.Contains(buf.String(), "no profile snapshots") {
		t.Fatalf("empty report: %q", buf.String())
	}
}

// TestRealRuntimeProfiles exercises the non-injected capture path once:
// real heap/goroutine/mutex/block profiles parse and the CPU window
// produces bytes.
func TestRealRuntimeProfiles(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{
		Ring:       2,
		WindowSize: 20 * time.Millisecond,
		Registry:   reg,
		Logger:     obs.NewLogger(io.Discard, obs.LevelError),
	})
	defer s.Close()
	snap := s.SampleNow()
	if snap == nil {
		t.Fatal("SampleNow returned nil")
	}
	if snap.Heap.Total <= 0 || snap.Heap.TotalBytes <= 0 {
		t.Fatalf("real heap summary empty: %+v", snap.Heap)
	}
	if snap.Goroutines <= 0 {
		t.Fatalf("real goroutine count = %d", snap.Goroutines)
	}
	if len(snap.CPUPprof) == 0 {
		t.Fatalf("real CPU window produced no bytes")
	}
}
