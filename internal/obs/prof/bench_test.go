package prof

import "testing"

// BenchmarkFreezeDisabled is the flight-capture path with profiling off
// (nil *Sampler): the cost every bundle capture pays when no sampler is
// wired. Must stay 0 allocs/op.
func BenchmarkFreezeDisabled(b *testing.B) {
	var s *Sampler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := s.Freeze(true); c != nil {
			b.Fatal("nil sampler froze a capture")
		}
	}
}

// BenchmarkRingDisabled is the debug-read path with profiling off — a
// nil check only. Must stay 0 allocs/op.
func BenchmarkRingDisabled(b *testing.B) {
	var s *Sampler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := s.Ring(); r != nil {
			b.Fatal("nil sampler returned a ring")
		}
	}
}

// BenchmarkSampleNowDisabled is the sampling path with profiling off.
// Must stay 0 allocs/op.
func BenchmarkSampleNowDisabled(b *testing.B) {
	var s *Sampler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if snap := s.SampleNow(); snap != nil {
			b.Fatal("nil sampler produced a snapshot")
		}
	}
}

// BenchmarkSummarizeHeapProfile measures the debug=1 parser on the
// canned heap fixture — the per-snapshot parsing cost.
func BenchmarkSummarizeHeapProfile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum := SummarizeDebugProfile("heap", heapTextA, 10)
		if sum.Total == 0 {
			b.Fatal("empty summary")
		}
	}
}

// BenchmarkHeapDelta measures the consecutive-snapshot diff.
func BenchmarkHeapDelta(b *testing.B) {
	prev := SummarizeDebugProfile("heap", heapTextA, 10)
	now := SummarizeDebugProfile("heap", heapTextB, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d := heapDelta(&prev, &now, 10); len(d) == 0 {
			b.Fatal("empty delta")
		}
	}
}
