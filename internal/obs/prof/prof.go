// Package prof is the QATK/QUEST continuous profiler: a background
// sampler that periodically captures the process's runtime profiles —
// CPU (the raw gzipped pprof protobuf), heap, mutex, block, and
// goroutine — into a bounded in-memory ring, computes heap *deltas*
// between consecutive snapshots, and parses the debug=1 text formats
// into top-N frame summaries so a report needs no external tooling.
//
// The ring is the profiling analogue of the flight recorder's span and
// log rings: it retains the recent past cheaply, and when an anomaly
// fires the flight recorder freezes it (plus a fresh CPU capture of the
// breach window) into the diagnostic bundle as the `profiles` section.
// A live questd additionally serves the ring at GET /debug/prof, and
// `qatk prof <url|bundle>` renders either source identically.
//
// Everything is nil-safe: a nil *Sampler (profiling disabled) makes
// every method a cheap no-op, mirroring the obs package contract. The
// ring lock is split from the capture path, so readers (the debug
// handler, a flight freeze) never wait on an in-flight CPU window.
package prof

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// Metric names the profiler emits (qatklint/metricname: constants,
// snake_case, prof_ prefix, unit suffix).
const (
	// MetricCapturesTotal counts completed snapshot captures.
	MetricCapturesTotal = "prof_captures_total"
	// MetricCaptureErrorsTotal counts failed profile captures (a CPU
	// window that could not start, a runtime profile that failed to
	// render).
	MetricCaptureErrorsTotal = "prof_capture_errors_total"
	// MetricCaptureSeconds observes how long one full snapshot capture
	// takes (dominated by the CPU window).
	MetricCaptureSeconds = "prof_capture_seconds"
	// MetricRingBytes gauges the raw profile bytes currently retained in
	// the ring.
	MetricRingBytes = "prof_ring_bytes"
	// MetricFreezesTotal counts ring freezes into flight bundles or
	// debug-handler responses.
	MetricFreezesTotal = "prof_freezes_total"
)

// Defaults for zero Config fields.
const (
	DefaultInterval   = 30 * time.Second
	DefaultWindowSize = 250 * time.Millisecond
	DefaultRing       = 8
	DefaultTopN       = 10
)

// Config wires a Sampler.
type Config struct {
	// Interval is the cadence of the background sampling loop started by
	// Start (default 30s). Tests drive SampleNow directly instead.
	Interval time.Duration
	// WindowSize is how long each CPU capture runs (default 250ms). It
	// is also the breach-window length of the fresh CPU capture a flight
	// freeze requests.
	WindowSize time.Duration
	// Ring bounds how many snapshots are retained (default 8, oldest
	// evicted first).
	Ring int
	// TopN bounds the frames kept per profile summary (default 10).
	TopN int

	// Clock is the injected time source (default time.Now).
	Clock func() time.Time

	// MutexFraction and BlockRate, when positive, are installed via
	// runtime.SetMutexProfileFraction / SetBlockProfileRate at New so the
	// mutex and block profiles actually collect samples. Zero leaves the
	// process settings untouched.
	MutexFraction int
	BlockRate     int

	// Observability, nil-safe.
	Registry *obs.Registry
	Logger   *obs.Logger

	// CaptureCPU overrides the CPU capture (tests inject canned pprof
	// bytes; the default runs pprof.StartCPUProfile for the window).
	CaptureCPU func(window time.Duration) ([]byte, error)
	// Profile overrides the runtime text-profile capture, keyed by the
	// runtime/pprof profile name at debug=1 (tests inject canned text).
	Profile func(name string) ([]byte, error)
}

// Sampler is the continuous profiler. A nil *Sampler is disabled and
// every method is a no-op.
type Sampler struct {
	cfg   Config
	clock func() time.Time
	log   *obs.Logger

	captures    *obs.Counter
	capErrors   *obs.Counter
	capSeconds  *obs.Histogram
	ringBytes   *obs.Gauge
	freezes     *obs.Counter

	// cpuMu serializes CPU windows: the runtime allows one CPU profile at
	// a time, and a flight freeze's breach-window capture must wait for
	// an in-flight sampling window rather than fail.
	cpuMu sync.Mutex

	// ringMu guards only the ring slice — split from the capture path so
	// Ring/Freeze readers never block behind a 250ms CPU window.
	ringMu sync.Mutex
	ring   []Snapshot //qatk:guardedby ringMu

	watchOnce sync.Once
	closeOnce sync.Once
	quit      chan struct{}
	done      chan struct{}
}

// New builds a Sampler. Zero Config fields take the package defaults.
func New(cfg Config) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = DefaultWindowSize
	}
	if cfg.Ring <= 0 {
		cfg.Ring = DefaultRing
	}
	if cfg.TopN <= 0 {
		cfg.TopN = DefaultTopN
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(cfg.MutexFraction)
	}
	if cfg.BlockRate > 0 {
		runtime.SetBlockProfileRate(cfg.BlockRate)
	}
	s := &Sampler{
		cfg:   cfg,
		clock: cfg.Clock,
		log:   cfg.Logger,
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if s.cfg.CaptureCPU == nil {
		s.cfg.CaptureCPU = s.captureCPUWindow
	}
	if s.cfg.Profile == nil {
		s.cfg.Profile = captureRuntimeProfile
	}
	reg := cfg.Registry
	s.captures = reg.Counter(MetricCapturesTotal)
	s.capErrors = reg.Counter(MetricCaptureErrorsTotal)
	s.capSeconds = reg.Histogram(MetricCaptureSeconds, obs.DefBuckets)
	s.ringBytes = reg.Gauge(MetricRingBytes)
	s.freezes = reg.Counter(MetricFreezesTotal)
	return s
}

// captureCPUWindow runs the real runtime CPU profiler for the window and
// returns the gzipped pprof protobuf.
func (s *Sampler) captureCPUWindow(window time.Duration) ([]byte, error) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return nil, fmt.Errorf("prof: start cpu profile: %w", err)
	}
	// The window is wall-clock sleep, not the injected clock: the runtime
	// samples in real time regardless of what tests pretend time is.
	timer := time.NewTimer(window)
	select {
	case <-timer.C:
	case <-s.quit:
		timer.Stop()
	}
	pprof.StopCPUProfile()
	return buf.Bytes(), nil
}

// captureRuntimeProfile renders one named runtime profile at debug=1
// (the parseable text form).
func captureRuntimeProfile(name string) ([]byte, error) {
	p := pprof.Lookup(name)
	if p == nil {
		return nil, fmt.Errorf("prof: unknown profile %q", name)
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return nil, fmt.Errorf("prof: render %s profile: %w", name, err)
	}
	return buf.Bytes(), nil
}

// SampleNow captures one complete snapshot — CPU window, heap, mutex,
// block, and goroutine profiles — appends it to the ring, and returns
// it. The background loop calls it every Interval; deterministic tests
// call it directly.
func (s *Sampler) SampleNow() *Snapshot {
	if s == nil {
		return nil
	}
	start := s.clock()
	snap := Snapshot{Time: start, CPUWindowNs: s.cfg.WindowSize.Nanoseconds()}

	s.cpuMu.Lock()
	cpu, err := s.cfg.CaptureCPU(s.cfg.WindowSize)
	s.cpuMu.Unlock()
	if err != nil {
		s.capErrors.Inc()
		s.log.Warn("cpu profile capture failed", obs.L("err", err.Error()))
	} else {
		snap.CPUPprof = cpu
	}

	snap.Heap = s.summarize("heap")
	snap.Mutex = s.summarize("mutex")
	snap.Block = s.summarize("block")
	snap.Goroutine = s.summarize("goroutine")
	snap.Goroutines = int(snap.Goroutine.Total)

	s.ringMu.Lock()
	if n := len(s.ring); n > 0 {
		snap.HeapDelta = heapDelta(&s.ring[n-1].Heap, &snap.Heap, s.cfg.TopN)
	}
	s.ring = append(s.ring, snap)
	if n := len(s.ring); n > s.cfg.Ring {
		s.ring = append(s.ring[:0], s.ring[n-s.cfg.Ring:]...)
	}
	var raw int64
	for i := range s.ring {
		raw += s.ring[i].rawBytes()
	}
	s.ringMu.Unlock()

	s.ringBytes.Set(float64(raw))
	s.captures.Inc()
	s.capSeconds.Observe(s.clock().Sub(start).Seconds())
	return &snap
}

// summarize captures one named runtime profile and reduces it to a
// top-N frame summary.
func (s *Sampler) summarize(name string) ProfileSummary {
	data, err := s.cfg.Profile(name)
	if err != nil {
		s.capErrors.Inc()
		s.log.Warn("profile capture failed",
			obs.L("profile", name), obs.L("err", err.Error()))
		return ProfileSummary{}
	}
	return SummarizeDebugProfile(name, string(data), s.cfg.TopN)
}

// Ring returns a copy of the retained snapshots, oldest first.
func (s *Sampler) Ring() []Snapshot {
	if s == nil {
		return nil
	}
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	return append([]Snapshot(nil), s.ring...)
}

// Freeze snapshots the ring for a bundle or debug response. When
// breachCPU is true it additionally runs a fresh CPU capture of one
// WindowSize — the breach window — so the bundle carries the cycles of
// the incident itself, not just the last periodic sample. A nil sampler
// returns nil (the bundle simply omits the section).
func (s *Sampler) Freeze(breachCPU bool) *Capture {
	if s == nil {
		return nil
	}
	c := &Capture{Ring: s.Ring(), WindowNs: s.cfg.WindowSize.Nanoseconds()}
	if breachCPU {
		s.cpuMu.Lock()
		cpu, err := s.cfg.CaptureCPU(s.cfg.WindowSize)
		s.cpuMu.Unlock()
		if err != nil {
			s.capErrors.Inc()
			s.log.Warn("breach-window cpu capture failed", obs.L("err", err.Error()))
		} else {
			c.BreachCPU = cpu
		}
	}
	s.freezes.Inc()
	return c
}

// Start launches the background sampling loop, capturing every Interval
// until Close. Call at most once; tests use SampleNow directly.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.watchOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-s.quit:
					return
				case <-t.C:
					s.SampleNow()
				}
			}
		}()
	})
}

// Close stops the sampling loop, if one was started. Idempotent.
func (s *Sampler) Close() {
	if s == nil {
		return
	}
	// Claim the start slot: if no loop ever started, mark it finished.
	s.watchOnce.Do(func() { close(s.done) })
	s.closeOnce.Do(func() { close(s.quit) })
	<-s.done
}
