package prof

import (
	"encoding/json"
	"net/http"
)

// Handler serves the current ring as a frozen Capture in JSON:
//
//	GET /debug/prof          the retained ring
//	GET /debug/prof?cpu=1    plus a fresh breach-window CPU capture
//
// The body is the same Capture a flight bundle freezes into its
// profiles section, so `qatk prof` reads a live server and a bundle
// identically. A nil sampler answers 503 so probes can tell "disabled"
// from "broken".
func (s *Sampler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s == nil {
			http.Error(w, "continuous profiler disabled", http.StatusServiceUnavailable)
			return
		}
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		c := s.Freeze(r.URL.Query().Get("cpu") == "1")
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c)
	})
}
